file(REMOVE_RECURSE
  "CMakeFiles/synthetic_sweep_test.dir/synthetic_sweep_test.cc.o"
  "CMakeFiles/synthetic_sweep_test.dir/synthetic_sweep_test.cc.o.d"
  "synthetic_sweep_test"
  "synthetic_sweep_test.pdb"
  "synthetic_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
