# Empty compiler generated dependencies file for report_sweep_test.
# This may be replaced when dependencies are built.
