file(REMOVE_RECURSE
  "CMakeFiles/report_sweep_test.dir/report_sweep_test.cc.o"
  "CMakeFiles/report_sweep_test.dir/report_sweep_test.cc.o.d"
  "report_sweep_test"
  "report_sweep_test.pdb"
  "report_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
