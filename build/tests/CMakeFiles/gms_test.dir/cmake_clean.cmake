file(REMOVE_RECURSE
  "CMakeFiles/gms_test.dir/gms_test.cc.o"
  "CMakeFiles/gms_test.dir/gms_test.cc.o.d"
  "gms_test"
  "gms_test.pdb"
  "gms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
