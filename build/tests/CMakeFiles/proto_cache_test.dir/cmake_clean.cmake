file(REMOVE_RECURSE
  "CMakeFiles/proto_cache_test.dir/proto_cache_test.cc.o"
  "CMakeFiles/proto_cache_test.dir/proto_cache_test.cc.o.d"
  "proto_cache_test"
  "proto_cache_test.pdb"
  "proto_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
