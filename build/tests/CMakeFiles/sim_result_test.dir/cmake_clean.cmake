file(REMOVE_RECURSE
  "CMakeFiles/sim_result_test.dir/sim_result_test.cc.o"
  "CMakeFiles/sim_result_test.dir/sim_result_test.cc.o.d"
  "sim_result_test"
  "sim_result_test.pdb"
  "sim_result_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_result_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
