file(REMOVE_RECURSE
  "CMakeFiles/gms_capacity_test.dir/gms_capacity_test.cc.o"
  "CMakeFiles/gms_capacity_test.dir/gms_capacity_test.cc.o.d"
  "gms_capacity_test"
  "gms_capacity_test.pdb"
  "gms_capacity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gms_capacity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
