# Empty compiler generated dependencies file for gms_capacity_test.
# This may be replaced when dependencies are built.
