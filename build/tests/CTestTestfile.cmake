# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/gms_capacity_test[1]_include.cmake")
include("/root/repo/build/tests/gms_test[1]_include.cmake")
include("/root/repo/build/tests/golden_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/misc_coverage_test[1]_include.cmake")
include("/root/repo/build/tests/net_property_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/options_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/proto_cache_test[1]_include.cmake")
include("/root/repo/build/tests/report_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/sim_result_test[1]_include.cmake")
include("/root/repo/build/tests/synthetic_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
add_test(reproduction_test "/root/repo/build/tests/reproduction_test")
set_tests_properties(reproduction_test PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;0;")
