# Empty dependencies file for fig5_fault_wait.
# This may be replaced when dependencies are built.
