file(REMOVE_RECURSE
  "CMakeFiles/fig5_fault_wait.dir/fig5_fault_wait.cc.o"
  "CMakeFiles/fig5_fault_wait.dir/fig5_fault_wait.cc.o.d"
  "fig5_fault_wait"
  "fig5_fault_wait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_fault_wait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
