# Empty compiler generated dependencies file for ablation_cluster_load.
# This may be replaced when dependencies are built.
