file(REMOVE_RECURSE
  "CMakeFiles/ablation_cluster_load.dir/ablation_cluster_load.cc.o"
  "CMakeFiles/ablation_cluster_load.dir/ablation_cluster_load.cc.o.d"
  "ablation_cluster_load"
  "ablation_cluster_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cluster_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
