file(REMOVE_RECURSE
  "CMakeFiles/fig7_distance.dir/fig7_distance.cc.o"
  "CMakeFiles/fig7_distance.dir/fig7_distance.cc.o.d"
  "fig7_distance"
  "fig7_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
