# Empty dependencies file for fig7_distance.
# This may be replaced when dependencies are built.
