# Empty dependencies file for ablation_future_network.
# This may be replaced when dependencies are built.
