file(REMOVE_RECURSE
  "CMakeFiles/ablation_future_network.dir/ablation_future_network.cc.o"
  "CMakeFiles/ablation_future_network.dir/ablation_future_network.cc.o.d"
  "ablation_future_network"
  "ablation_future_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_future_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
