file(REMOVE_RECURSE
  "CMakeFiles/ablation_pipeline_schemes.dir/ablation_pipeline_schemes.cc.o"
  "CMakeFiles/ablation_pipeline_schemes.dir/ablation_pipeline_schemes.cc.o.d"
  "ablation_pipeline_schemes"
  "ablation_pipeline_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pipeline_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
