# Empty dependencies file for ablation_pipeline_schemes.
# This may be replaced when dependencies are built.
