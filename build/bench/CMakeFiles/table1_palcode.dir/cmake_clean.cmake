file(REMOVE_RECURSE
  "CMakeFiles/table1_palcode.dir/table1_palcode.cc.o"
  "CMakeFiles/table1_palcode.dir/table1_palcode.cc.o.d"
  "table1_palcode"
  "table1_palcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_palcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
