# Empty dependencies file for table1_palcode.
# This may be replaced when dependencies are built.
