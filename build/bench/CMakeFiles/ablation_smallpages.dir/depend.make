# Empty dependencies file for ablation_smallpages.
# This may be replaced when dependencies are built.
