file(REMOVE_RECURSE
  "CMakeFiles/ablation_smallpages.dir/ablation_smallpages.cc.o"
  "CMakeFiles/ablation_smallpages.dir/ablation_smallpages.cc.o.d"
  "ablation_smallpages"
  "ablation_smallpages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smallpages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
