# Empty compiler generated dependencies file for ablation_smallpages.
# This may be replaced when dependencies are built.
