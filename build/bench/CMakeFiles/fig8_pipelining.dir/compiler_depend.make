# Empty compiler generated dependencies file for fig8_pipelining.
# This may be replaced when dependencies are built.
