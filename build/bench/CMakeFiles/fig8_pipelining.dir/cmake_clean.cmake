file(REMOVE_RECURSE
  "CMakeFiles/fig8_pipelining.dir/fig8_pipelining.cc.o"
  "CMakeFiles/fig8_pipelining.dir/fig8_pipelining.cc.o.d"
  "fig8_pipelining"
  "fig8_pipelining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
