# Empty compiler generated dependencies file for fig3_memsizes.
# This may be replaced when dependencies are built.
