file(REMOVE_RECURSE
  "CMakeFiles/fig3_memsizes.dir/fig3_memsizes.cc.o"
  "CMakeFiles/fig3_memsizes.dir/fig3_memsizes.cc.o.d"
  "fig3_memsizes"
  "fig3_memsizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_memsizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
