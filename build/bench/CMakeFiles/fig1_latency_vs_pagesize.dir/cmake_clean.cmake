file(REMOVE_RECURSE
  "CMakeFiles/fig1_latency_vs_pagesize.dir/fig1_latency_vs_pagesize.cc.o"
  "CMakeFiles/fig1_latency_vs_pagesize.dir/fig1_latency_vs_pagesize.cc.o.d"
  "fig1_latency_vs_pagesize"
  "fig1_latency_vs_pagesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_latency_vs_pagesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
