# Empty dependencies file for fig10_clustering_apps.
# This may be replaced when dependencies are built.
