file(REMOVE_RECURSE
  "CMakeFiles/fig10_clustering_apps.dir/fig10_clustering_apps.cc.o"
  "CMakeFiles/fig10_clustering_apps.dir/fig10_clustering_apps.cc.o.d"
  "fig10_clustering_apps"
  "fig10_clustering_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_clustering_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
