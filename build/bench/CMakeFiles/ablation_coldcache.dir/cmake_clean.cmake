file(REMOVE_RECURSE
  "CMakeFiles/ablation_coldcache.dir/ablation_coldcache.cc.o"
  "CMakeFiles/ablation_coldcache.dir/ablation_coldcache.cc.o.d"
  "ablation_coldcache"
  "ablation_coldcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coldcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
