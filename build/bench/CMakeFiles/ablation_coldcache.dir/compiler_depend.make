# Empty compiler generated dependencies file for ablation_coldcache.
# This may be replaced when dependencies are built.
