file(REMOVE_RECURSE
  "CMakeFiles/ablation_global_capacity.dir/ablation_global_capacity.cc.o"
  "CMakeFiles/ablation_global_capacity.dir/ablation_global_capacity.cc.o.d"
  "ablation_global_capacity"
  "ablation_global_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_global_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
