# Empty compiler generated dependencies file for ablation_global_capacity.
# This may be replaced when dependencies are built.
