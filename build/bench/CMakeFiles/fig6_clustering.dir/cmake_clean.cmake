file(REMOVE_RECURSE
  "CMakeFiles/fig6_clustering.dir/fig6_clustering.cc.o"
  "CMakeFiles/fig6_clustering.dir/fig6_clustering.cc.o.d"
  "fig6_clustering"
  "fig6_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
