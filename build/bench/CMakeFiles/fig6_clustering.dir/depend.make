# Empty dependencies file for fig6_clustering.
# This may be replaced when dependencies are built.
