# Empty dependencies file for export_grid.
# This may be replaced when dependencies are built.
