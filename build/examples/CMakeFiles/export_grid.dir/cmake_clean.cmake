file(REMOVE_RECURSE
  "CMakeFiles/export_grid.dir/export_grid.cpp.o"
  "CMakeFiles/export_grid.dir/export_grid.cpp.o.d"
  "export_grid"
  "export_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
