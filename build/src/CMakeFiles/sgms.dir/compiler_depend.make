# Empty compiler generated dependencies file for sgms.
# This may be replaced when dependencies are built.
