file(REMOVE_RECURSE
  "libsgms.a"
)
