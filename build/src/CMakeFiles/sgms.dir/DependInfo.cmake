
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache_sim.cc" "src/CMakeFiles/sgms.dir/cache/cache_sim.cc.o" "gcc" "src/CMakeFiles/sgms.dir/cache/cache_sim.cc.o.d"
  "/root/repo/src/common/chart.cc" "src/CMakeFiles/sgms.dir/common/chart.cc.o" "gcc" "src/CMakeFiles/sgms.dir/common/chart.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/sgms.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/sgms.dir/common/logging.cc.o.d"
  "/root/repo/src/common/options.cc" "src/CMakeFiles/sgms.dir/common/options.cc.o" "gcc" "src/CMakeFiles/sgms.dir/common/options.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/sgms.dir/common/random.cc.o" "gcc" "src/CMakeFiles/sgms.dir/common/random.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/sgms.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/sgms.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/sgms.dir/common/table.cc.o" "gcc" "src/CMakeFiles/sgms.dir/common/table.cc.o.d"
  "/root/repo/src/common/units.cc" "src/CMakeFiles/sgms.dir/common/units.cc.o" "gcc" "src/CMakeFiles/sgms.dir/common/units.cc.o.d"
  "/root/repo/src/core/config_override.cc" "src/CMakeFiles/sgms.dir/core/config_override.cc.o" "gcc" "src/CMakeFiles/sgms.dir/core/config_override.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/sgms.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/sgms.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/json_report.cc" "src/CMakeFiles/sgms.dir/core/json_report.cc.o" "gcc" "src/CMakeFiles/sgms.dir/core/json_report.cc.o.d"
  "/root/repo/src/core/sim_result.cc" "src/CMakeFiles/sgms.dir/core/sim_result.cc.o" "gcc" "src/CMakeFiles/sgms.dir/core/sim_result.cc.o.d"
  "/root/repo/src/core/simulator.cc" "src/CMakeFiles/sgms.dir/core/simulator.cc.o" "gcc" "src/CMakeFiles/sgms.dir/core/simulator.cc.o.d"
  "/root/repo/src/core/sweep.cc" "src/CMakeFiles/sgms.dir/core/sweep.cc.o" "gcc" "src/CMakeFiles/sgms.dir/core/sweep.cc.o.d"
  "/root/repo/src/gms/cluster_load.cc" "src/CMakeFiles/sgms.dir/gms/cluster_load.cc.o" "gcc" "src/CMakeFiles/sgms.dir/gms/cluster_load.cc.o.d"
  "/root/repo/src/gms/gms.cc" "src/CMakeFiles/sgms.dir/gms/gms.cc.o" "gcc" "src/CMakeFiles/sgms.dir/gms/gms.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/CMakeFiles/sgms.dir/mem/page_table.cc.o" "gcc" "src/CMakeFiles/sgms.dir/mem/page_table.cc.o.d"
  "/root/repo/src/mem/replacement.cc" "src/CMakeFiles/sgms.dir/mem/replacement.cc.o" "gcc" "src/CMakeFiles/sgms.dir/mem/replacement.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/CMakeFiles/sgms.dir/mem/tlb.cc.o" "gcc" "src/CMakeFiles/sgms.dir/mem/tlb.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/sgms.dir/net/network.cc.o" "gcc" "src/CMakeFiles/sgms.dir/net/network.cc.o.d"
  "/root/repo/src/net/params.cc" "src/CMakeFiles/sgms.dir/net/params.cc.o" "gcc" "src/CMakeFiles/sgms.dir/net/params.cc.o.d"
  "/root/repo/src/net/resource.cc" "src/CMakeFiles/sgms.dir/net/resource.cc.o" "gcc" "src/CMakeFiles/sgms.dir/net/resource.cc.o.d"
  "/root/repo/src/policy/fetch_policy.cc" "src/CMakeFiles/sgms.dir/policy/fetch_policy.cc.o" "gcc" "src/CMakeFiles/sgms.dir/policy/fetch_policy.cc.o.d"
  "/root/repo/src/trace/apps.cc" "src/CMakeFiles/sgms.dir/trace/apps.cc.o" "gcc" "src/CMakeFiles/sgms.dir/trace/apps.cc.o.d"
  "/root/repo/src/trace/synthetic.cc" "src/CMakeFiles/sgms.dir/trace/synthetic.cc.o" "gcc" "src/CMakeFiles/sgms.dir/trace/synthetic.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/sgms.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/sgms.dir/trace/trace.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/CMakeFiles/sgms.dir/trace/trace_file.cc.o" "gcc" "src/CMakeFiles/sgms.dir/trace/trace_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
