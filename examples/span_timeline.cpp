/**
 * @file
 * Figure 2 from a live run: record one simulation's spans and print
 * the per-fault fetch timelines they contain.
 *
 * Where bench/fig2_timeline constructs the paper's Figure-2 diagram
 * from a hand-built single fault, this tool derives the same view
 * from the span tracer attached to a full trace-driven simulation:
 * each fault block shows the demand stall interval and the network
 * stages (Req-CPU, Req-DMA, Wire, Srv-DMA, Srv-CPU) its messages
 * occupied.
 *
 * Usage:
 *   span_timeline [app] [policy] [subpage] [faults] [flags]
 *     app      modula3|ld|atom|render|gdb   (default gdb)
 *     policy   fetch policy name            (default eager)
 *     subpage  subpage size in bytes        (default 1024)
 *     faults   timeline blocks to print     (default 3)
 * Flags: --scale=S --seed=N, config overrides (--mem-pages=N, ...),
 * and the observability flags (--trace-out=PATH writes the same run
 * as Chrome trace JSON).
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/options.h"
#include "common/units.h"
#include "core/config_override.h"
#include "core/experiment.h"
#include "obs/chrome_trace.h"
#include "obs/session.h"
#include "obs/tracer.h"

using namespace sgms;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    if (opts.has("help")) {
        std::printf("usage: span_timeline [app] [policy] [subpage] "
                    "[faults] [flags]\n%s\n%s\n",
                    config_override_help(), obs::ObsSession::help());
        return 0;
    }
    obs::ObsSession obs(opts);
    const auto &pos = opts.positional();

    Experiment ex;
    ex.app = pos.size() > 0 ? pos[0] : "gdb";
    ex.policy = pos.size() > 1 ? pos[1] : "eager";
    ex.subpage_size =
        pos.size() > 2 ? static_cast<uint32_t>(parse_bytes(pos[2]))
                       : 1024;
    size_t max_faults =
        pos.size() > 3 ? std::strtoull(pos[3].c_str(), nullptr, 10) : 3;
    ex.scale = opts.get_double("scale", scale_from_env(0.5));
    ex.seed = opts.get_u64("seed", 7);
    apply_config_overrides(ex.base, opts);
    ex.base.policy = ex.policy;

    // Always trace this run, whether or not --trace-out was given.
    obs::Tracer local(opts.get_u64("trace-spans",
                                   obs::Tracer::DEFAULT_CAPACITY));
    obs::Tracer *tracer = obs.tracer() ? obs.tracer() : &local;

    for (const auto &typo : opts.unused())
        warn("unrecognized option --%s (see --help)", typo.c_str());

    SimConfig cfg = ex.config();
    cfg.tracer = tracer;
    auto trace = make_app_trace(ex.app, ex.scale, ex.seed);
    Simulator sim(cfg);
    SimResult r = sim.run(*trace);
    r.app = ex.app;

    std::printf("app=%s policy=%s subpage=%u: %llu faults, "
                "runtime %s (sp_latency %s)\n\n",
                ex.app.c_str(), ex.policy.c_str(), cfg.subpage_size,
                static_cast<unsigned long long>(r.page_faults),
                format_ms(r.runtime).c_str(),
                format_ms(r.sp_latency).c_str());
    write_fault_timeline(std::cout, *tracer, max_faults);
    obs.finish(r);
    return 0;
}
