/**
 * @file
 * Trace format converter and bake tool for the SGMB binary format.
 *
 * Usage:
 *   trace_convert to-bin <in> <out> [--app=NAME] [--scale=S] [--seed=N]
 *       convert any readable trace (text, legacy SGMT, SGMB) to SGMB,
 *       recording the given provenance metadata in the header
 *   trace_convert to-text <in> <out>
 *       convert any readable trace to the text format
 *   trace_convert bake <app> [--scale=S] [--seed=N] [--dir=DIR]
 *       write the synthetic generator's output for (app, scale,
 *       seed) as a content-named SGMB file under DIR (default:
 *       SGMS_TRACE_DIR, else .sgms-traces) — the same file the
 *       trace store's mapped tier uses, so a pre-baked sweep starts
 *       replaying instantly
 *   trace_convert info <file>
 *       dump an SGMB header and verify the payload hash
 *
 * SGMB files replay zero-copy through mmap (trace/mmap_trace.h):
 * point any driver at one with --trace-bin=FILE, or set
 * SGMS_TRACE_DIR to have synthetic traces baked and mapped
 * automatically.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/options.h"
#include "common/units.h"
#include "trace/apps.h"
#include "trace/binfmt.h"
#include "trace/mmap_trace.h"
#include "trace/trace_file.h"
#include "trace/trace_store.h"

using namespace sgms;

namespace
{

int
cmd_to_bin(const Options &opts)
{
    const auto &pos = opts.positional();
    if (pos.size() < 3)
        fatal("usage: trace_convert to-bin <in> <out> [--app=NAME] "
              "[--scale=S] [--seed=N]");
    auto in = open_trace(pos[1]);
    uint64_t n = write_bin_trace(*in, pos[2], opts.get("app", pos[1]),
                                 opts.get_double("scale", 0.0),
                                 opts.get_u64("seed", 0));
    std::printf("wrote %llu records to %s\n",
                static_cast<unsigned long long>(n), pos[2].c_str());
    return 0;
}

int
cmd_to_text(const Options &opts)
{
    const auto &pos = opts.positional();
    if (pos.size() < 3)
        fatal("usage: trace_convert to-text <in> <out>");
    auto in = open_trace(pos[1]);
    write_trace_text(*in, pos[2]);
    std::printf("wrote %llu references to %s\n",
                static_cast<unsigned long long>(in->size_hint()),
                pos[2].c_str());
    return 0;
}

int
cmd_bake(const Options &opts)
{
    const auto &pos = opts.positional();
    if (pos.size() < 2)
        fatal("usage: trace_convert bake <app> [--scale=S] [--seed=N] "
              "[--dir=DIR]");
    std::string dir = opts.get("dir", env_string("SGMS_TRACE_DIR",
                                                 ".sgms-traces"));
    double scale = opts.get_double("scale", 1.0);
    uint64_t seed = opts.get_u64("seed", 1);
    std::string path = bake_app_trace(pos[1], scale, seed, dir);
    BinTraceHeader hdr;
    std::string error;
    if (!read_bin_header(path, hdr, error))
        fatal("baked file '%s' failed validation: %s", path.c_str(),
              error.c_str());
    std::printf("baked %s scale=%g seed=%llu: %llu refs, %s\n",
                pos[1].c_str(), scale,
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(hdr.ref_count),
                path.c_str());
    return 0;
}

int
cmd_info(const Options &opts)
{
    const auto &pos = opts.positional();
    if (pos.size() < 2)
        fatal("usage: trace_convert info <file>");
    BinTraceHeader hdr;
    std::string error;
    if (!read_bin_header(pos[1], hdr, error))
        fatal("'%s': %s", pos[1].c_str(), error.c_str());
    auto file = MappedTraceFile::open(pos[1]);
    uint64_t actual = file->payload_hash();
    std::printf("file:          %s\n", pos[1].c_str());
    std::printf("format:        SGMB v%u\n", hdr.version);
    std::printf("references:    %llu\n",
                static_cast<unsigned long long>(hdr.ref_count));
    std::printf("payload:       %s\n",
                format_bytes(hdr.ref_count * kBinTraceRecordBytes)
                    .c_str());
    std::printf("app:           %s\n",
                hdr.app.empty() ? "(unknown)" : hdr.app.c_str());
    std::printf("scale:         %g\n", hdr.scale);
    std::printf("seed:          %llu\n",
                static_cast<unsigned long long>(hdr.seed));
    std::printf("payload hash:  %016llx (%s)\n",
                static_cast<unsigned long long>(hdr.payload_hash),
                actual == hdr.payload_hash ? "verified" : "MISMATCH");
    if (actual != hdr.payload_hash)
        fatal("payload hash mismatch: records are corrupted");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    const auto &pos = opts.positional();
    if (pos.empty() || opts.has("help")) {
        std::printf(
            "usage: trace_convert to-bin <in> <out> [--app=] [--scale=]"
            " [--seed=]\n"
            "       trace_convert to-text <in> <out>\n"
            "       trace_convert bake <app> [--scale=] [--seed=] "
            "[--dir=]\n"
            "       trace_convert info <file>\n");
        return pos.empty() && !opts.has("help") ? 1 : 0;
    }
    if (pos[0] == "to-bin")
        return cmd_to_bin(opts);
    if (pos[0] == "to-text")
        return cmd_to_text(opts);
    if (pos[0] == "bake")
        return cmd_bake(opts);
    if (pos[0] == "info")
        return cmd_info(opts);
    fatal("unknown command '%s'", pos[0].c_str());
}
