/**
 * @file
 * Domain scenario: an out-of-core renderer on a workstation cluster.
 *
 * The paper's motivating Render application displays scenes from a
 * >100 MB precomputed database that cannot fit in one workstation's
 * memory. This example sizes the local memory at several fractions
 * of the database and asks, for each: how much does network memory
 * help over disk, and how much more do 1K subpages buy? It then
 * sweeps the subpage size at the tightest memory to find the best
 * choice (the paper: 1-2K).
 */

#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "core/experiment.h"

using namespace sgms;

int
main()
{
    double scale = scale_from_env(0.5);
    std::printf("render farm scenario (scale %g)\n", scale);
    uint64_t fp = app_footprint_pages("render", scale);
    std::printf("scene database footprint: %llu pages (%s)\n\n",
                static_cast<unsigned long long>(fp),
                format_bytes(fp * 8192).c_str());

    std::printf("== how much memory does the render node need? ==\n");
    Table t({"local memory", "disk paging", "GMS fullpage",
             "GMS + 1K subpages", "subpage speedup vs disk"});
    for (MemConfig mem :
         {MemConfig::Full, MemConfig::Half, MemConfig::Quarter}) {
        Experiment ex;
        ex.app = "render";
        ex.scale = scale;
        ex.mem = mem;
        ex.policy = "disk";
        SimResult disk = ex.run();
        ex.policy = "fullpage";
        SimResult full = ex.run();
        ex.policy = "eager";
        ex.subpage_size = 1024;
        SimResult sub = ex.run();
        t.add_row({mem_config_name(mem), format_ms(disk.runtime),
                   format_ms(full.runtime), format_ms(sub.runtime),
                   Table::fmt(sub.speedup_vs(disk), 2) + "x"});
    }
    t.print(std::cout);

    std::printf("\n== choosing the transfer unit (1/4 memory) ==\n");
    Table t2({"config", "runtime", "vs fullpage", "frame stall "
              "(sp_latency+page_wait)"});
    Experiment ex;
    ex.app = "render";
    ex.scale = scale;
    ex.mem = MemConfig::Quarter;
    ex.policy = "fullpage";
    SimResult base = ex.run();
    t2.add_row({ex.label(), format_ms(base.runtime), "0%",
                format_ms(base.sp_latency + base.page_wait)});
    ex.policy = "eager";
    for (uint32_t sp : {4096u, 2048u, 1024u, 512u, 256u}) {
        ex.subpage_size = sp;
        SimResult r = ex.run();
        t2.add_row({ex.label(), format_ms(r.runtime),
                    Table::fmt_pct(r.reduction_vs(base)),
                    format_ms(r.sp_latency + r.page_wait)});
    }
    t2.print(std::cout);
    std::printf("\nOn the paper's hardware the sweet spot is 1-2K: "
                "smaller subpages cut\nthe restart latency but stall "
                "more on the rest of the page.\n");
    return 0;
}
