/**
 * @file
 * Trace utility: generate, convert, and analyze reference traces.
 *
 * Usage:
 *   trace_tool gen <app> <file> [scale] [seed]   write a synthetic
 *                                                trace (binary SGMB;
 *                                                .txt suffix = text)
 *   trace_tool info <file>                       summarize a trace
 *   trace_tool sim <file> [policy] [subpage] [mem_pages]
 *                                                simulate a trace
 *
 * All commands read any trace format (SGMB via zero-copy mmap,
 * legacy SGMT, text); see trace_convert for conversion and baking.
 *
 * `sim` also understands the observability flags (--trace-out,
 * --trace-timeline, --metrics, --debug-flags; see obs/session.h).
 *
 * Demonstrates the file-based TraceSource API, which is the hook for
 * feeding real (e.g. Valgrind/Pin-derived) traces into the
 * simulator in place of the synthetic application models.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/options.h"
#include "common/table.h"
#include "common/units.h"
#include "core/simulator.h"
#include "obs/session.h"
#include "trace/apps.h"
#include "trace/binfmt.h"
#include "trace/trace_file.h"

using namespace sgms;

namespace
{

int
cmd_gen(int argc, char **argv)
{
    if (argc < 4)
        fatal("usage: trace_tool gen <app> <file> [scale] [seed]");
    std::string app = argv[2];
    std::string path = argv[3];
    double scale = argc > 4 ? std::atof(argv[4]) : 0.02;
    uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;

    auto trace = make_app_trace(app, scale, seed);
    bool text = path.size() > 4 &&
                path.compare(path.size() - 4, 4, ".txt") == 0;
    if (text)
        write_trace_text(*trace, path);
    else
        write_bin_trace(*trace, path, app, scale, seed);
    std::printf("wrote %llu events (%s format) to %s\n",
                static_cast<unsigned long long>(trace->size_hint()),
                text ? "text" : "binary SGMB", path.c_str());
    return 0;
}

int
cmd_info(int argc, char **argv)
{
    if (argc < 3)
        fatal("usage: trace_tool info <file>");
    auto trace = open_trace(argv[2]);
    uint64_t refs = 0, writes = 0;
    Addr min_addr = ~0ULL, max_addr = 0;
    TraceEvent ev;
    while (trace->next(ev)) {
        ++refs;
        writes += ev.write;
        min_addr = std::min(min_addr, ev.addr);
        max_addr = std::max(max_addr, ev.addr);
    }
    uint64_t footprint = measure_footprint_pages(*trace, 8192);

    Table t({"metric", "value"});
    t.add_row({"events", Table::fmt_int(refs)});
    t.add_row({"writes", refs ? Table::fmt_pct(
                                    static_cast<double>(writes) / refs)
                              : "0%"});
    t.add_row({"address range",
               format_bytes(refs ? max_addr - min_addr + 1 : 0)});
    t.add_row({"footprint (8K pages)", Table::fmt_int(footprint)});
    t.print(std::cout);
    return 0;
}

int
cmd_sim(int argc, char **argv)
{
    Options opts(argc, argv);
    obs::ObsSession obs(opts);
    // positional()[0] is the subcommand ("sim") itself.
    const auto &pos = opts.positional();
    if (pos.size() < 2)
        fatal("usage: trace_tool sim <file> [policy] [subpage] "
              "[mem_pages] [obs flags]");
    auto trace = open_trace(pos[1]);
    SimConfig cfg;
    cfg.policy = pos.size() > 2 ? pos[2] : "eager";
    cfg.subpage_size =
        pos.size() > 3 ? static_cast<uint32_t>(parse_bytes(pos[3]))
                       : 1024;
    if (cfg.policy == "fullpage" || cfg.policy == "disk")
        cfg.subpage_size = cfg.page_size;
    cfg.mem_pages =
        pos.size() > 4 ? std::strtoull(pos[4].c_str(), nullptr, 10) : 0;
    obs.configure(cfg);

    Simulator sim(cfg);
    SimResult r = sim.run(*trace);

    Table t({"metric", "value"});
    t.add_row({"references", Table::fmt_int(r.refs)});
    t.add_row({"page faults", Table::fmt_int(r.page_faults)});
    t.add_row({"runtime", format_ms(r.runtime)});
    t.add_row({"exec", format_ms(r.exec_time)});
    t.add_row({"sp_latency", format_ms(r.sp_latency)});
    t.add_row({"page_wait", format_ms(r.page_wait)});
    t.print(std::cout);
    obs.finish(r);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        fatal("usage: trace_tool gen|info|sim ...");
    if (std::strcmp(argv[1], "gen") == 0)
        return cmd_gen(argc, argv);
    if (std::strcmp(argv[1], "info") == 0)
        return cmd_info(argc, argv);
    if (std::strcmp(argv[1], "sim") == 0)
        return cmd_sim(argc, argv);
    fatal("unknown command '%s'", argv[1]);
}
