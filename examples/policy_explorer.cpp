/**
 * @file
 * Explore any (application x policy x subpage size x memory
 * configuration) point of the design space from the command line and
 * print the full result breakdown.
 *
 * Usage:
 *   policy_explorer [app] [policy] [subpage] [mem] [scale] [seed]
 *                   [--config-overrides...]
 *     app     modula3|ld|atom|render|gdb      (default modula3)
 *     policy  disk|fullpage|lazy|eager|pipelining|pipelining-all|
 *             pipelining-doubled|pipelining-initial2x|
 *             pipelining-adaptive               (default eager)
 *     subpage bytes, e.g. 1024 or 1K          (default 1024)
 *     mem     full|half|quarter               (default half)
 *     scale   trace scale factor              (default SGMS_SCALE or 1)
 *     seed    RNG seed                        (default 1)
 *
 * Any SimConfig knob can be overridden with --key=value flags; run
 * with --help for the list.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/options.h"
#include "common/table.h"
#include "common/units.h"
#include "core/config_override.h"
#include "core/experiment.h"

using namespace sgms;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    if (opts.has("help")) {
        std::printf("usage: policy_explorer [app] [policy] [subpage] "
                    "[mem] [scale] [seed] [overrides]\n%s\n%s\n",
                    config_override_help(), obs::ObsSession::help());
        return 0;
    }
    obs::ObsSession obs(opts);
    const auto &pos = opts.positional();

    Experiment ex;
    ex.app = pos.size() > 0 ? pos[0] : "modula3";
    ex.policy = pos.size() > 1 ? pos[1] : "eager";
    ex.subpage_size =
        pos.size() > 2 ? static_cast<uint32_t>(parse_bytes(pos[2]))
                       : 1024;
    std::string mem = pos.size() > 3 ? pos[3] : "half";
    ex.mem = mem == "full"      ? MemConfig::Full
             : mem == "quarter" ? MemConfig::Quarter
                                : MemConfig::Half;
    ex.scale = pos.size() > 4 ? std::atof(pos[4].c_str())
                              : scale_from_env(1.0);
    ex.seed = pos.size() > 5
                  ? std::strtoull(pos[5].c_str(), nullptr, 10)
                  : 1;
    apply_config_overrides(ex.base, opts);
    // Positional policy/subpage win over --policy/--subpage given to
    // the override layer; re-assert them.
    ex.base.policy = ex.policy;

    for (const auto &typo : opts.unused())
        warn("unrecognized option --%s (see --help)", typo.c_str());

    std::printf("app=%s policy=%s (%s) mem=%s scale=%g footprint=%llu "
                "pages\n",
                ex.app.c_str(), ex.policy.c_str(), ex.label().c_str(),
                mem_config_name(ex.mem), ex.scale,
                static_cast<unsigned long long>(app_footprint_pages(
                    ex.app, ex.scale, ex.base.page_size)));

    SimResult r = ex.run(obs);

    Table t({"metric", "value"});
    auto row = [&](const char *k, const std::string &v) {
        t.add_row({k, v});
    };
    row("references", Table::fmt_int(r.refs));
    row("page faults", Table::fmt_int(r.page_faults));
    row("lazy subpage faults", Table::fmt_int(r.lazy_subpage_faults));
    row("evictions", Table::fmt_int(r.evictions));
    row("putpages", Table::fmt_int(r.putpages));
    row("global discards", Table::fmt_int(r.global_discards));
    row("runtime", format_ms(r.runtime));
    row("  exec", format_ms(r.exec_time));
    row("  sp_latency", format_ms(r.sp_latency));
    row("  page_wait", format_ms(r.page_wait));
    row("  recv_overhead", format_ms(r.recv_overhead));
    row("  emulation", format_ms(r.emulation_overhead));
    row("  tlb", format_ms(r.tlb_overhead));
    row("io_overlap", format_ms(r.io_overlap));
    row("comp_overlap", format_ms(r.comp_overlap));
    row("io_overlap share", Table::fmt_pct(r.io_overlap_share()));
    row("best-case faults", Table::fmt_pct(r.best_case_fraction()));
    row("messages", Table::fmt_int(r.net_stats.messages));
    row("bytes", Table::fmt_int(r.net_stats.bytes));
    row("inbound wire utilization",
        Table::fmt_pct(r.wire_utilization()));
    if (r.tlb_stats.accesses())
        row("tlb miss rate",
            Table::fmt_pct(r.tlb_stats.miss_rate(), 2));
    t.print(std::cout);

    if (!r.next_subpage_distance.empty()) {
        std::printf("next-subpage distance (top bins):\n");
        for (const auto &[d, c] : r.next_subpage_distance.bins()) {
            double f = r.next_subpage_distance.fraction(d);
            if (f >= 0.02)
                std::printf("  %+3lld : %5.1f%%\n",
                            static_cast<long long>(d), f * 100);
        }
    }
    return 0;
}
