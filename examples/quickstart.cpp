/**
 * @file
 * Quickstart: the smallest complete use of the SGMS library.
 *
 * Builds a tiny synthetic workload, runs it against the global
 * memory system under three configurations — disk paging, classic
 * fullpage GMS, and eager fullpage fetch with 1K subpages — and
 * prints the comparison. This is the paper's experiment in
 * miniature.
 */

#include <cstdio>
#include <iostream>

#include "common/options.h"
#include "common/table.h"
#include "common/units.h"
#include "core/config_override.h"
#include "core/simulator.h"
#include "obs/session.h"
#include "trace/mmap_trace.h"
#include "trace/synthetic.h"
#include "trace/trace.h"

using namespace sgms;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    if (opts.has("help")) {
        std::printf("usage: quickstart [--trace-bin=FILE] [flags]\n"
                    "%s\n%s\n",
                    obs::ObsSession::help(),
                    config_override_help());
        return 0;
    }
    obs::ObsSession obs(opts);
    // --trace-bin replays a baked SGMB file (zero-copy mmap) in
    // place of the built-in synthetic workload.
    std::string trace_bin = opts.get("trace-bin", "");
    std::unique_ptr<TraceSource> file_trace;
    uint64_t mem_pages = 44; // half of the built-in 88-page footprint
    if (!trace_bin.empty()) {
        file_trace = make_mapped_trace(trace_bin);
        uint64_t fp = measure_footprint_pages(*file_trace, 8192);
        mem_pages = std::max<uint64_t>(2, fp / 2);
    }
    // 1. Describe a workload: a hot set plus two phases — a sweep
    //    that touches one subpage per page (overlappable faults) and
    //    a dense scan that consumes whole pages (blocking faults).
    WorkloadSpec spec;
    spec.name = "quickstart";
    spec.hot_pages = 8;

    PhaseSpec sweep;
    sweep.kind = PhaseSpec::Kind::SweepScan;
    sweep.page_lo = 8;
    sweep.page_hi = 72;
    sweep.refs = 64 * 10000;
    sweep.hot_frac = 1.0 - 1.0 / 10000;
    spec.phases.push_back(sweep);

    PhaseSpec dense;
    dense.kind = PhaseSpec::Kind::DenseScan;
    dense.page_lo = 72;
    dense.page_hi = 88;
    dense.stride = 64;
    dense.hot_frac = 0.9;
    dense.refs = 16 * 128 * 10;
    spec.phases.push_back(dense);

    // 2. Run it under three backing-store configurations.
    Table t({"config", "runtime", "faults", "sp_latency", "page_wait",
             "speedup vs disk"});
    SimResult disk_result;
    SimResult last;
    for (const char *policy : {"disk", "fullpage", "eager"}) {
        SimConfig cfg;
        cfg.policy = policy;
        cfg.subpage_size =
            std::string(policy) == "eager" ? 1024 : 8192;
        cfg.mem_pages = mem_pages;
        // Honor the shared overrides (--faults, --servers, ...) but
        // keep this run's policy/subpage/memory choices.
        std::string keep_policy = cfg.policy;
        uint32_t keep_subpage = cfg.subpage_size;
        uint64_t keep_mem = cfg.mem_pages;
        apply_config_overrides(cfg, opts);
        cfg.policy = keep_policy;
        cfg.subpage_size = keep_subpage;
        cfg.mem_pages = keep_mem;
        // The tracer is shared across the three configurations;
        // keep only the final (eager) run's spans.
        if (obs.tracer())
            obs.tracer()->clear();
        obs.configure(cfg);

        Simulator sim(cfg);
        SimResult r;
        if (file_trace) {
            r = sim.run(*file_trace);
        } else {
            SyntheticTrace trace(spec, /*seed=*/42);
            r = sim.run(trace);
        }
        if (std::string(policy) == "disk")
            disk_result = r;
        last = r;

        t.add_row({policy, format_ms(r.runtime),
                   Table::fmt_int(r.page_faults),
                   format_ms(r.sp_latency), format_ms(r.page_wait),
                   Table::fmt(r.speedup_vs(disk_result), 2) + "x"});
    }
    t.print(std::cout);
    obs.finish(last);

    std::printf("\nEager fullpage fetch restarts the program after "
                "only the faulted 1K\nsubpage arrives (~0.55 ms) and "
                "streams the rest of the page behind it —\nthe "
                "mechanism of Jamrozik et al., ASPLOS 1996.\n");
    return 0;
}
