/**
 * @file
 * Batch data export: run a configurable experiment grid and emit the
 * results as JSON (for notebooks / plotting) and a CSV summary.
 *
 * Usage:
 *   export_grid [--apps=a,b,..] [--policies=p,q,..]
 *               [--subpages=1024,2048] [--mems=half,quarter]
 *               [--clients=1,16,..] [--metrics-per-client]
 *               [--scale=S] [--json=FILE] [--csv=FILE]
 *               [--jobs=N] [--workers=N] [--point-timeout=MS]
 *               [--cache-dir=DIR] [--no-cache] [--cache-max-mb=N]
 *               [--cache-gc] [--trace-bin=FILE] [--trace-dir=DIR]
 *               [--config-overrides...]
 *
 * Defaults reproduce the Figure 9 grid (all apps, fullpage + eager +
 * pipelining at 1K, 1/2-mem).
 *
 * --jobs=N shards the grid across N worker threads (0 = all cores;
 * SGMS_JOBS env). --workers=N forks N worker *processes* instead
 * (SGMS_WORKERS env), which additionally buys a per-point watchdog
 * (--point-timeout=MS) and crash isolation. Either way, output is
 * byte-identical to --jobs=1: results are merged back into serial
 * grid order, and the progress lines are mutex-guarded (they may
 * print in completion order). --cache-dir enables the content-
 * addressed result cache, so a re-run recomputes only points whose
 * configuration changed; --cache-max-mb bounds the cache directory
 * with LRU eviction, and --cache-gc runs one eviction pass up front.
 *
 * --trace-bin=FILE replays a baked SGMB trace (zero-copy mmap) in
 * place of the synthetic app models; the app axis collapses to the
 * file. --trace-dir=DIR (SGMS_TRACE_DIR env) enables the trace
 * store's mapped tier: synthetic traces are baked there once and
 * mmap'd on every later run.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

#include "common/options.h"
#include "common/table.h"
#include "common/units.h"
#include "core/config_override.h"
#include "core/json_report.h"
#include "core/sweep.h"
#include "exec/parallel_runner.h"
#include "trace/trace_store.h"

using namespace sgms;

namespace
{

std::vector<std::string>
split_csv(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    if (opts.has("help")) {
        std::printf("usage: export_grid [--apps=..] [--policies=..] "
                    "[--subpages=..] [--mems=..]\n"
                    "  [--clients=1,16,..] [--metrics-per-client]"
                    "\n  [--scale=S] "
                    "[--json=FILE] [--csv=FILE] [--jobs=N] "
                    "[--workers=N] [--point-timeout=MS]\n"
                    "  [--cache-dir=DIR] [--no-cache] "
                    "[--cache-max-mb=N] [--cache-gc]\n"
                    "  [--trace-bin=FILE] [--trace-dir=DIR] "
                    "[overrides]\n"
                    "%s\n%s\n",
                    config_override_help(), exec::ExecOptions::help());
        return 0;
    }

    SweepSpec spec;
    spec.apps = split_csv(
        opts.get("apps", "modula3,ld,atom,render,gdb"));
    spec.policies = split_csv(
        opts.get("policies", "fullpage,eager,pipelining"));
    spec.subpage_sizes.clear();
    for (const auto &s : split_csv(opts.get("subpages", "1024")))
        spec.subpage_sizes.push_back(
            static_cast<uint32_t>(parse_bytes(s)));
    spec.mems.clear();
    for (const auto &m : split_csv(opts.get("mems", "half"))) {
        spec.mems.push_back(m == "full"      ? MemConfig::Full
                            : m == "quarter" ? MemConfig::Quarter
                                             : MemConfig::Half);
    }
    spec.clients.clear();
    for (const auto &c : split_csv(opts.get("clients", "1")))
        spec.clients.push_back(
            static_cast<uint32_t>(std::stoul(c)));
    if (opts.has("metrics-per-client"))
        spec.base.metrics_per_client = true;
    spec.scale = opts.get_double("scale", scale_from_env(1.0));
    if (opts.has("trace-dir"))
        trace_store_set_dir(opts.get("trace-dir"));
    spec.trace_bin = opts.get("trace-bin", "");
    if (!spec.trace_bin.empty()) {
        // One file = one trace: the app axis only labels the points.
        size_t slash = spec.trace_bin.find_last_of('/');
        spec.apps = {slash == std::string::npos
                         ? spec.trace_bin
                         : spec.trace_bin.substr(slash + 1)};
    }
    apply_config_overrides(spec.base, opts);

    exec::ExecOptions eo = exec::ExecOptions::from_options(opts);
    std::printf("running %zu experiment points (scale %g, jobs %u, "
                "workers %u, cache %s)\n",
                spec.point_count(), spec.scale, eo.jobs, eo.workers,
                eo.cache_enabled ? eo.cache_dir.c_str() : "off");
    // Progress may fire from worker threads (sweep.h contract); the
    // mutex keeps each line atomic instead of interleaving.
    std::mutex progress_mutex;
    exec::Engine engine(eo);
    auto results =
        engine.run_sweep(spec, [&](const Experiment &ex) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            std::printf("  %s %s %s\n", ex.app.c_str(),
                        ex.label().c_str(), mem_config_name(ex.mem));
            std::fflush(stdout);
        });
    exec::ExecStats es = engine.stats();
    std::printf("engine: %llu simulated, %llu from cache\n",
                static_cast<unsigned long long>(es.points_run),
                static_cast<unsigned long long>(es.points_cached));

    // CSV summary.
    Table t({"app", "policy", "subpage", "mem_pages", "faults",
             "runtime_ms", "exec_ms", "sp_latency_ms",
             "page_wait_ms"});
    for (const auto &r : results) {
        t.add_row({r.app, r.policy, Table::fmt_int(r.subpage_size),
                   Table::fmt_int(r.mem_pages),
                   Table::fmt_int(r.page_faults),
                   Table::fmt(ticks::to_ms(r.runtime), 3),
                   Table::fmt(ticks::to_ms(r.exec_time), 3),
                   Table::fmt(ticks::to_ms(r.sp_latency), 3),
                   Table::fmt(ticks::to_ms(r.page_wait), 3)});
    }

    std::string csv_path = opts.get("csv", "");
    if (!csv_path.empty()) {
        std::ofstream f(csv_path);
        t.print_csv(f);
        std::printf("wrote %s\n", csv_path.c_str());
    } else {
        t.print_csv(std::cout);
    }

    std::string json_path = opts.get("json", "");
    if (!json_path.empty()) {
        std::ofstream f(json_path);
        write_results_json(f, results);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
