#!/usr/bin/env bash
# Tier-1 verification plus a strict warnings pass.
#
#   scripts/check.sh          configure + build + ctest (tier 1, run
#                             twice: under SGMS_JOBS=2 for the
#                             thread-pool engine path and under
#                             SGMS_WORKERS=2 for the forked process
#                             fleet), a multi-process byte-identity
#                             smoke, then a -Wall -Wextra -Werror
#                             rebuild in a separate tree
#                             (build-strict/), an ASan+UBSan build +
#                             ctest (build-asan/), a TSan build +
#                             ctest (build-tsan/), the
#                             exec_throughput bench (emits
#                             results/BENCH_exec.json), and the
#                             sim_hotpath bench with a perf smoke
#                             against the committed
#                             results/BENCH_sim_hotpath.json
#                             (>25% warm-mix regression fails;
#                             SGMS_PERF_SMOKE=0 skips), the
#                             cluster_scale bench with a multi-client
#                             perf smoke against the committed
#                             results/BENCH_cluster.json (>25%
#                             events/sec regression fails; same skip
#                             knob), and the
#                             trace_io bench (binary trace pipeline;
#                             fails when mmap startup-to-first-ref
#                             is not at least 5x faster than heap)
#   scripts/check.sh --quick  tier 1 only
#
# Exits non-zero on the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "== tier 1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

echo "== tier 1: ctest (SGMS_JOBS=2) =="
# SGMS_JOBS=2 routes every run_sweep/bench batch in the suite through
# the work-stealing engine; results must stay byte-identical.
(cd build && SGMS_JOBS=2 ctest --output-on-failure -j "$(nproc)")

echo "== tier 1: ctest (SGMS_WORKERS=2, process fleet) =="
# Same suite again with env-configured sweeps sharded across forked
# worker processes instead of pool threads.
(cd build && SGMS_WORKERS=2 ctest --output-on-failure -j "$(nproc)")

tmp_trace="$(mktemp /tmp/sgms-trace.XXXXXX.json)"
tmp_grid="$(mktemp -d /tmp/sgms-grid.XXXXXX)"
trap 'rm -rf "$tmp_trace" "$tmp_grid"' EXIT

echo "== smoke: multi-process sweep is byte-identical =="
./build/examples/export_grid --scale=0.05 --jobs=1 \
    --json="$tmp_grid/serial.json" --csv="$tmp_grid/serial.csv" \
    >/dev/null
./build/examples/export_grid --scale=0.05 --workers=2 \
    --json="$tmp_grid/workers.json" --csv="$tmp_grid/workers.csv" \
    >/dev/null
cmp "$tmp_grid/serial.json" "$tmp_grid/workers.json"
cmp "$tmp_grid/serial.csv" "$tmp_grid/workers.csv"
echo "   workers=2 output matches jobs=1 byte for byte"

echo "== smoke: mapped trace tier is byte-identical =="
# Same grid with SGMS_TRACE_DIR: traces are baked once and replayed
# through mmap by a forked worker fleet sharing the baked files.
SGMS_TRACE_DIR="$tmp_grid/traces" \
    ./build/examples/export_grid --scale=0.05 --workers=2 \
    --json="$tmp_grid/mapped.json" --csv="$tmp_grid/mapped.csv" \
    >/dev/null
cmp "$tmp_grid/serial.json" "$tmp_grid/mapped.json"
cmp "$tmp_grid/serial.csv" "$tmp_grid/mapped.csv"
baked=$(ls "$tmp_grid/traces"/*.sgmb | wc -l)
echo "   mapped replay matches heap byte for byte ($baked baked files)"

echo "== smoke: trace export =="
./build/examples/quickstart --trace-out="$tmp_trace" >/dev/null
python3 - "$tmp_trace" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
cats = {e.get("cat") for e in events}
want = {"fault", "page_wait", "block", "net", "gms", "policy"}
missing = want - cats
assert not missing, f"trace missing categories: {missing}"
print(f"   {len(events)} events, all {len(want)} span categories present")
EOF

if [[ $quick -eq 0 ]]; then
    echo "== strict: -Wall -Wextra -Werror rebuild =="
    # -Wno-restrict: GCC 12 emits a false-positive -Wrestrict from
    # std::string::operator=(const char*) at -O2 (GCC PR105329).
    cmake -B build-strict -S . \
        -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror -Wno-restrict" >/dev/null
    cmake --build build-strict -j "$(nproc)"

    echo "== sanitizers: ASan+UBSan build + ctest =="
    cmake -B build-asan -S . \
        -DSGMS_SANITIZE=address,undefined >/dev/null
    cmake --build build-asan -j "$(nproc)"
    (cd build-asan &&
        ASAN_OPTIONS=detect_leaks=0 \
        UBSAN_OPTIONS=halt_on_error=1 \
        ctest --output-on-failure -j "$(nproc)")

    echo "== sanitizers: TSan build + ctest (SGMS_JOBS=2) =="
    # TSan is incompatible with ASan/LSan, hence its own tree; run
    # with the engine forced parallel so worker/submitter/cache races
    # actually get exercised.
    cmake -B build-tsan -S . -DSGMS_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "$(nproc)"
    (cd build-tsan &&
        SGMS_JOBS=2 \
        TSAN_OPTIONS=halt_on_error=1 \
        ctest --output-on-failure -j "$(nproc)")

    echo "== bench: exec engine throughput =="
    mkdir -p results
    SGMS_SCALE="${SGMS_SCALE:-0.05}" \
        ./build/bench/exec_throughput --out=results/BENCH_exec.json

    echo "== bench: simulator hot path + perf smoke =="
    # Re-measure the hot path and compare the warm-mix refs/sec
    # against the committed baseline JSON; a drop of more than 25%
    # fails the check. SGMS_PERF_SMOKE=0 skips the comparison (for
    # boxes not comparable to the one that recorded the baseline);
    # the fresh measurement is always written for CI upload.
    ./build/bench/sim_hotpath \
        --out=results/BENCH_sim_hotpath_current.json
    if [[ "${SGMS_PERF_SMOKE:-1}" != "0" ]]; then
        python3 - <<'EOF'
import json
committed = json.load(open("results/BENCH_sim_hotpath.json"))
current = json.load(open("results/BENCH_sim_hotpath_current.json"))
ref = committed["mix_warm_refs_per_sec"]
got = current["mix_warm_refs_per_sec"]
ratio = got / ref
print(f"   warm mix: {got:.0f} refs/s vs committed {ref:.0f} "
      f"({ratio:.2f}x)")
assert ratio >= 0.75, (
    f"hot-path regression: warm mix {got:.0f} refs/s is more than "
    f"25% below the committed {ref:.0f} (set SGMS_PERF_SMOKE=0 to "
    f"skip on incomparable hardware)")
print("   perf smoke passed")
EOF
    fi

    echo "== bench: multi-client cluster scaling + perf smoke =="
    # Sweep the multi-client kernel (capped at 256 clients here; the
    # committed curve goes to 1024) and compare its kernel dispatch
    # rate (mc_events_per_sec, measured at the largest N <= 256)
    # against the committed results/BENCH_cluster.json; a drop of
    # more than 25% fails. SGMS_PERF_SMOKE=0 skips the comparison.
    ./build/bench/cluster_scale --max-clients=256 \
        --out=results/BENCH_cluster_current.json
    if [[ "${SGMS_PERF_SMOKE:-1}" != "0" ]]; then
        python3 - <<'EOF'
import json
committed = json.load(open("results/BENCH_cluster.json"))
current = json.load(open("results/BENCH_cluster_current.json"))
ref = committed["mc_events_per_sec"]
got = current["mc_events_per_sec"]
ratio = got / ref
print(f"   multi-client kernel: {got:.0f} events/s vs committed "
      f"{ref:.0f} ({ratio:.2f}x)")
assert ratio >= 0.75, (
    f"multi-client regression: {got:.0f} events/s is more than 25% "
    f"below the committed {ref:.0f} (set SGMS_PERF_SMOKE=0 to skip "
    f"on incomparable hardware)")
assert current["heap_fallbacks"] == 0, (
    f"{current['heap_fallbacks']} inline-callback heap fallbacks in "
    f"the sweep; fault-path closures must stay inline")
print("   cluster perf smoke passed")
EOF
    fi

    echo "== bench: binary trace pipeline =="
    # Bake + replay a 10M+-ref trace and require the mapped tier's
    # startup-to-first-ref to beat heap materialization by >= 5x.
    # Self-relative, so it holds on any hardware; no skip knob.
    SGMS_TRACE_DIR="$tmp_grid/traces" \
        ./build/bench/trace_io --out=results/BENCH_trace_io_current.json
    python3 - <<'EOF'
import json
current = json.load(open("results/BENCH_trace_io_current.json"))
speedup = current["startup_speedup"]
print(f"   startup-to-first-ref: heap {current['startup_heap_ms']:.1f} ms, "
      f"mmap {current['startup_mmap_ms']:.3f} ms ({speedup:.0f}x)")
assert speedup >= 5.0, (
    f"mapped-tier startup speedup {speedup:.1f}x is below the 5x floor")
print("   trace_io smoke passed")
EOF
fi

echo "== all checks passed =="
