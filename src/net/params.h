/**
 * @file
 * Network and disk latency parameters.
 *
 * The AN2 preset is calibrated against the paper's prototype
 * measurements (Table 2 and Figure 2): a remote page fetch passes
 * through Send-CPU -> Send-DMA -> Wire -> Recv-DMA -> Recv-CPU stages,
 * each store-and-forward per message, with successive messages
 * pipelining across stages. See DESIGN.md section 5 for the fit.
 */

#ifndef SGMS_NET_PARAMS_H
#define SGMS_NET_PARAMS_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace sgms
{

/** What a message is carrying; affects stage costs and priority. */
enum class MsgKind : uint8_t
{
    Request,        ///< getpage request from faulting node to server
    DemandData,     ///< the faulted subpage (program blocks on it)
    BackgroundData, ///< rest-of-page / pipelined follow-on subpages
    PutPage,        ///< eviction traffic to global memory
    // When adding a kind: keep kLastMsgKind below in sync, name it in
    // msg_kind_name(), and give it a priority in Network::priority_of.
};

/** Last enumerator of MsgKind; update together with the enum. */
inline constexpr MsgKind kLastMsgKind = MsgKind::PutPage;

/**
 * Number of MsgKind enumerators. Every per-kind array (NetStats,
 * Network's per-kind counters, FaultPlan probabilities) is sized by
 * this, so a new kind can never silently index out of bounds.
 */
inline constexpr size_t kMsgKindCount =
    static_cast<size_t>(kLastMsgKind) + 1;

static_assert(kMsgKindCount >= 1 && kMsgKindCount <= 64,
              "MsgKind count out of sane range");

/** Pipeline components, for timeline capture (Figure 2 rows). */
enum class Component : uint8_t
{
    ReqCpu, ///< faulting-node CPU (fault handling, receive interrupt)
    ReqDma, ///< faulting-node controller DMA
    Wire,   ///< network interconnect occupancy
    SrvDma, ///< serving-node controller DMA
    SrvCpu, ///< serving-node CPU (request processing, send setup)
};

const char *component_name(Component c);
const char *msg_kind_name(MsgKind k);

/** Per-stage latency parameters of the remote-memory network path. */
struct NetParams
{
    /**
     * Fixed faulting-node cost charged before the request message is
     * injected: trap handling, GMS directory lookup, restart setup.
     */
    Tick fault_handle = ticks::from_us(120);

    /** Size of a getpage request message. */
    uint32_t request_bytes = 64;

    /** Sender CPU cost to issue the request message. */
    Tick send_cpu_request = ticks::from_us(15);

    /** Server CPU cost to set up each outgoing data message. */
    Tick send_cpu_data = ticks::from_us(10);

    /** Controller DMA: fixed per message + per byte (both nodes). */
    Tick dma_fixed = ticks::from_us(10);
    Tick dma_per_byte = ticks::from_ns(18);

    /** Wire occupancy: fixed per message + per byte. */
    Tick wire_fixed = ticks::from_us(5);
    Tick wire_per_byte = ticks::from_ns(51.6); // 155 Mb/s AN2

    /** Server CPU cost to process a getpage request (lookup + map). */
    Tick request_proc = ticks::from_us(160);

    /**
     * Faulting-node CPU receive cost per data message: interrupt +
     * protocol handling (fixed) plus the copy into the frame.
     */
    Tick recv_fixed = ticks::from_us(55);
    Tick recv_per_byte = ticks::from_ns(40);

    /**
     * Receive cost for *pipelined follow-on* subpages. The paper's
     * simulations assume an intelligent controller that deposits
     * subpages and updates valid bits with no CPU work (zero cost);
     * its AN2 prototype instead pays ~68-91 us per subpage. Both are
     * expressible here.
     */
    Tick pipelined_recv_fixed = 0;
    Tick pipelined_recv_per_byte = 0;

    /**
     * Serve queued demand traffic (requests and faulted subpages)
     * before queued background traffic at every stage. On by
     * default: the GMS server software can order its send queue, and
     * the switch arbitrates per-VC. The FIFO ablation turns it off.
     */
    bool priority_scheduling = true;

    /**
     * Let demand traffic preempt an *in-flight* background occupancy
     * (the remainder is requeued). This approximates ATM cell
     * interleaving: the cells of a small demand transfer pass a
     * large rest-of-page transfer already in progress, so a burst of
     * faults sees near-idle demand latency while background data
     * still consumes the same total bandwidth. Without it, every
     * demand fetch in a fault burst queues behind a full
     * rest-of-page transfer, which contradicts the best-case-
     * dominated per-fault waits the paper measures (Figure 5).
     */
    bool preemptive_demand = true;

    /**
     * Analytic single-message latency through all five stages,
     * excluding fault_handle and request-path time. Used by Figure 1
     * and for quick estimates; the simulator itself uses the staged
     * resources.
     */
    Tick data_message_latency(uint32_t bytes) const;

    /**
     * Analytic latency from fault to program restart for a demand
     * fetch of @p bytes on an idle network (fault handling + request
     * path + data message).
     */
    Tick demand_fetch_latency(uint32_t bytes) const;

    /** AN2 ATM calibrated against the paper's Table 2. */
    static NetParams an2();

    /**
     * A faster future network derived from the AN2 calibration:
     * wire and DMA per-byte rates divided by @p bandwidth_factor,
     * per-message fixed costs divided by @p fixed_factor (software
     * and controller overheads improve more slowly than raw
     * bandwidth). Used to test the paper's closing prediction that
     * the optimal subpage size *shrinks* as the network-to-memory
     * speed ratio grows.
     */
    static NetParams future(double bandwidth_factor,
                            double fixed_factor = 1.0);

    /** Lightly-loaded 10 Mb/s Ethernet with mid-90s stack overheads. */
    static NetParams ethernet();

    /** Heavily-loaded 10 Mb/s Ethernet (contention-inflated). */
    static NetParams loaded_ethernet();
};

/** Disk access model: fixed positioning cost plus transfer rate. */
struct DiskParams
{
    Tick base = ticks::from_ms(8);          ///< seek + rotation + driver
    Tick per_byte = ticks::from_ns(180);    ///< media/bus transfer

    Tick
    access_latency(uint32_t bytes) const
    {
        return base + per_byte * bytes;
    }

    /** Paper: "average local disk access takes 4 ms" (sequential). */
    static DiskParams sequential();

    /** Paper: "... to 14 ms" (random access). */
    static DiskParams random_access();

    /** Default backing-store model used for the disk_8192 bars. */
    static DiskParams default_local();
};

} // namespace sgms

#endif // SGMS_NET_PARAMS_H
