#include "net/params.h"

namespace sgms
{

const char *
component_name(Component c)
{
    switch (c) {
      case Component::ReqCpu:
        return "Req-CPU";
      case Component::ReqDma:
        return "Req-DMA";
      case Component::Wire:
        return "Wire";
      case Component::SrvDma:
        return "Srv-DMA";
      case Component::SrvCpu:
        return "Srv-CPU";
    }
    return "?";
}

const char *
msg_kind_name(MsgKind k)
{
    switch (k) {
      case MsgKind::Request:
        return "request";
      case MsgKind::DemandData:
        return "demand";
      case MsgKind::BackgroundData:
        return "background";
      case MsgKind::PutPage:
        return "putpage";
    }
    return "?";
}

Tick
NetParams::data_message_latency(uint32_t bytes) const
{
    return send_cpu_data + (dma_fixed + dma_per_byte * bytes) +
           (wire_fixed + wire_per_byte * bytes) +
           (dma_fixed + dma_per_byte * bytes) +
           (recv_fixed + recv_per_byte * bytes);
}

Tick
NetParams::demand_fetch_latency(uint32_t bytes) const
{
    Tick request_path = send_cpu_request +
                        (dma_fixed + dma_per_byte * request_bytes) +
                        (wire_fixed + wire_per_byte * request_bytes) +
                        (dma_fixed + dma_per_byte * request_bytes) +
                        request_proc;
    return fault_handle + request_path + data_message_latency(bytes);
}

NetParams
NetParams::an2()
{
    return NetParams{}; // defaults are the AN2 calibration
}

NetParams
NetParams::future(double bandwidth_factor, double fixed_factor)
{
    NetParams p; // start from the AN2 calibration
    auto scale = [](Tick t, double f) {
        return static_cast<Tick>(t / f);
    };
    p.wire_per_byte = scale(p.wire_per_byte, bandwidth_factor);
    p.dma_per_byte = scale(p.dma_per_byte, bandwidth_factor);
    p.fault_handle = scale(p.fault_handle, fixed_factor);
    p.send_cpu_request = scale(p.send_cpu_request, fixed_factor);
    p.send_cpu_data = scale(p.send_cpu_data, fixed_factor);
    p.dma_fixed = scale(p.dma_fixed, fixed_factor);
    p.wire_fixed = scale(p.wire_fixed, fixed_factor);
    p.request_proc = scale(p.request_proc, fixed_factor);
    p.recv_fixed = scale(p.recv_fixed, fixed_factor);
    // The memory-copy rate (recv_per_byte) deliberately stays put:
    // the paper's prediction is about the *ratio* of network to
    // memory speed.
    return p;
}

NetParams
NetParams::ethernet()
{
    NetParams p;
    p.fault_handle = ticks::from_us(250);
    p.send_cpu_request = ticks::from_us(80);
    p.send_cpu_data = ticks::from_us(60);
    p.dma_fixed = ticks::from_us(30);
    p.dma_per_byte = ticks::from_ns(25);
    p.wire_fixed = ticks::from_us(50);
    p.wire_per_byte = ticks::from_ns(800); // 10 Mb/s
    p.request_proc = ticks::from_us(250);
    p.recv_fixed = ticks::from_us(120);
    p.recv_per_byte = ticks::from_ns(60);
    return p;
}

NetParams
NetParams::loaded_ethernet()
{
    NetParams p = ethernet();
    // Contention roughly triples effective wire occupancy and adds
    // queueing delay ahead of each message.
    p.wire_fixed = ticks::from_us(1500);
    p.wire_per_byte = ticks::from_ns(2400);
    return p;
}

DiskParams
DiskParams::sequential()
{
    return DiskParams{ticks::from_ms(3.4), ticks::from_ns(80)};
}

DiskParams
DiskParams::random_access()
{
    return DiskParams{ticks::from_ms(13.3), ticks::from_ns(80)};
}

DiskParams
DiskParams::default_local()
{
    // Effective per-fault disk service time of the paper's Figure 3
    // disk_8192 baseline: its reported 1.7-2.2x GMS speedups over
    // disk, combined with the 1.48 ms remote-fault time and the
    // traces' execution times, imply ~3.45 ms per 8K fault (between
    // the 4-14 ms raw access numbers and what an OS gets with
    // request sorting and track locality).
    return DiskParams{ticks::from_ms(2.79), ticks::from_ns(80)};
}

} // namespace sgms
