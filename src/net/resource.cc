#include "net/resource.h"

namespace sgms
{

void
StageResource::submit(Tick now, Tick duration, int priority,
                      uint64_t msg_id, MsgKind kind, Done done)
{
    Item item{duration, priority, seq_++, msg_id, kind,
              std::move(done)};

    if (busy_ && preemption_ && priority > cur_prio_ &&
        preemptible(cur_kind_)) {
        // Preempt the in-flight background item: requeue its
        // remaining occupancy (keeping its original arrival order
        // within its priority level) and start the demand item. This
        // models ATM cell interleaving: a small demand transfer's
        // cells pass a large background transfer in progress.
        Tick remaining = busy_until_ - now;
        SGMS_ASSERT(remaining >= 0); // callers submit at current time
        total_busy_ -= remaining; // will be re-added when it resumes
        ++generation_;            // orphan the scheduled completion
        queue_.push(Item{remaining, cur_prio_, cur_seq_, cur_msg_id_,
                         cur_kind_, std::move(cur_done_)});
        busy_ = false;
    }

    if (busy_) {
        queue_.push(std::move(item));
        return;
    }
    start(now, std::move(item));
}

bool
StageResource::preemptible(MsgKind kind)
{
    return kind == MsgKind::BackgroundData || kind == MsgKind::PutPage;
}

void
StageResource::start(Tick now, Item item)
{
    busy_ = true;
    Tick end = now + item.duration;
    busy_until_ = end;
    cur_prio_ = item.priority;
    cur_kind_ = item.kind;
    cur_seq_ = item.seq;
    cur_msg_id_ = item.msg_id;
    cur_done_ = std::move(item.done);
    total_busy_ += item.duration;

    uint64_t gen = generation_;
    Tick duration = item.duration;
    eq_.schedule(end, [this, gen, end, duration]() {
        if (gen != generation_)
            return; // this occupancy was preempted; ignore
        busy_ = false;
        ++completed_;
        if (recorder_ && duration > 0) {
            recorder_->record(comp_, node_, cur_msg_id_, cur_kind_,
                              end - duration, end);
        }
        if (duration > 0) {
            // One Net span per stage occupancy: the track is the
            // pipeline component, the name the message kind.
            SGMS_TRACE_SPAN(tracer_, Net, msg_kind_name(cur_kind_),
                            component_name(comp_), end - duration, end,
                            cur_msg_id_, static_cast<int64_t>(node_),
                            static_cast<int64_t>(cur_kind_));
        }
        Done done = std::move(cur_done_);
        done(end - duration, end);
        // The completion callback may have submitted new work and
        // restarted the stage; only pull from the queue if still idle.
        if (!busy_ && !queue_.empty()) {
            Item next = std::move(const_cast<Item &>(queue_.top()));
            queue_.pop();
            this->start(end, std::move(next));
        }
    });
}

} // namespace sgms
