/**
 * @file
 * The staged network model.
 *
 * A message from node S to node D passes through five serially-owned
 * resources: CPU(S) -> DMA(S) -> Wire(D's inbound link) -> DMA(D) ->
 * CPU(D). Each message occupies each stage store-and-forward, while
 * different messages overlap across stages; that reproduces both the
 * paper's Figure 2 pipelining and its "sender pipelining" effect
 * (two 4K messages complete before one 8K message).
 */

#ifndef SGMS_NET_NETWORK_H
#define SGMS_NET_NETWORK_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/inline_function.h"
#include "common/types.h"
#include "net/params.h"
#include "net/resource.h"
#include "net/timeline.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/event_queue.h"

namespace sgms
{

namespace fault
{
class FaultInjector;
} // namespace fault

/** Aggregate traffic statistics kept by the network. */
struct NetStats
{
    uint64_t messages = 0;
    uint64_t bytes = 0;
    uint64_t messages_by_kind[kMsgKindCount] = {};
    uint64_t bytes_by_kind[kMsgKindCount] = {};
    /** Messages lost or discarded by fault injection. */
    uint64_t dropped = 0;
    uint64_t corrupted = 0;
    uint64_t duplicated = 0;
};

/** Cluster interconnect plus per-node CPU/DMA contention model. */
class Network
{
  public:
    /** Parameters of one message injection. */
    struct SendArgs
    {
        NodeId src;
        NodeId dst;
        uint32_t bytes;
        MsgKind kind;
        /** Use the intelligent-controller receive cost. */
        bool pipelined_recv = false;
        /**
         * Called at delivery (end of the receive-CPU stage).
         * @p recv_cpu_cost is the receiver CPU time the message
         * consumed, which the simulator may charge to the program.
         * Inline capacity sized for the simulator's largest delivery
         * closures (run state + page identity + a FetchPlan copy).
         */
        InlineFunction<void(Tick delivered, Tick recv_cpu_cost), 120>
            on_delivered;
    };

    /**
     * @param eq        shared event queue
     * @param params    latency parameters
     * @param requester node the traced program runs on (used only to
     *                  label components in timeline capture)
     * @param recorder  optional Figure-2 timeline capture
     * @param tracer    optional span tracer (per-stage Net spans)
     * @param metrics   optional registry for net.* counters
     * @param faults    optional fault injector; when set, each send
     *                  consults it for a message fate (drop on the
     *                  wire, corrupt on arrival, duplicate delivery)
     */
    Network(EventQueue &eq, NetParams params, NodeId requester = 0,
            TimelineRecorder *recorder = nullptr,
            obs::Tracer *tracer = nullptr,
            obs::MetricsRegistry *metrics = nullptr,
            fault::FaultInjector *faults = nullptr);

    /** Inject a message at simulated time @p now; returns its id. */
    uint64_t send(Tick now, SendArgs args);

    const NetParams &params() const { return params_; }
    const NetStats &stats() const { return stats_; }

    /** Per-node CPU resource (lazily created). */
    StageResource &cpu(NodeId node);
    /** Per-node DMA engine resource (lazily created). */
    StageResource &dma(NodeId node);
    /** Inbound wire link of @p node (lazily created). */
    StageResource &wire_to(NodeId node);

  private:
    int priority_of(MsgKind kind) const;
    Tick recv_cpu_cost(const SendArgs &args) const;
    void run_stage(std::shared_ptr<void> msg, int stage, Tick now);

    EventQueue &eq_;
    NetParams params_;
    NodeId requester_;
    TimelineRecorder *recorder_;
    obs::Tracer *tracer_ = nullptr;
    fault::FaultInjector *faults_ = nullptr;
    NetStats stats_;
    uint64_t next_msg_id_ = 1;

    // Registered metrics (null when no registry was attached).
    obs::Counter *c_messages_ = nullptr;
    obs::Counter *c_bytes_ = nullptr;
    obs::Counter *c_by_kind_[kMsgKindCount] = {};

    // Per-node stage resources, indexed directly by NodeId. Node ids
    // are small and dense (requester 0, servers 1..N), and these
    // lookups sit on the per-message hot path — five stage hops per
    // send — so a flat vector beats a red-black tree walk. Slots are
    // still created lazily; the vectors grow on first touch of a node.
    std::vector<std::unique_ptr<StageResource>> cpus_;
    std::vector<std::unique_ptr<StageResource>> dmas_;
    std::vector<std::unique_ptr<StageResource>> wires_;
};

} // namespace sgms

#endif // SGMS_NET_NETWORK_H
