/**
 * @file
 * Capture of per-component busy intervals for Figure 2 timelines.
 */

#ifndef SGMS_NET_TIMELINE_H
#define SGMS_NET_TIMELINE_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "net/params.h"

namespace sgms
{

/** One busy interval of one component, attributed to a message. */
struct TimelineEntry
{
    Component comp;
    NodeId node;
    uint64_t msg_id;
    MsgKind kind;
    Tick start;
    Tick end;
};

/** Collects TimelineEntry records when attached to a Network. */
class TimelineRecorder
{
  public:
    void
    record(Component comp, NodeId node, uint64_t msg_id, MsgKind kind,
           Tick start, Tick end)
    {
        entries_.push_back({comp, node, msg_id, kind, start, end});
    }

    const std::vector<TimelineEntry> &entries() const { return entries_; }

    void clear() { entries_.clear(); }

  private:
    std::vector<TimelineEntry> entries_;
};

} // namespace sgms

#endif // SGMS_NET_TIMELINE_H
