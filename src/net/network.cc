#include "net/network.h"

#include <string>

#include "fault/fault_injector.h"
#include "obs/debug.h"

namespace sgms
{

Network::Network(EventQueue &eq, NetParams params, NodeId requester,
                 TimelineRecorder *recorder, obs::Tracer *tracer,
                 obs::MetricsRegistry *metrics,
                 fault::FaultInjector *faults)
    : eq_(eq), params_(params), requester_(requester),
      recorder_(recorder), tracer_(tracer), faults_(faults)
{
    if (metrics) {
        c_messages_ = &metrics->counter("net.messages");
        c_bytes_ = &metrics->counter("net.bytes");
        for (size_t k = 0; k < kMsgKindCount; ++k) {
            c_by_kind_[k] = &metrics->counter(
                std::string("net.") +
                msg_kind_name(static_cast<MsgKind>(k)) + "_messages");
        }
    }
}

StageResource &
Network::cpu(NodeId node)
{
    if (node >= cpus_.size())
        cpus_.resize(node + 1);
    auto &slot = cpus_[node];
    if (!slot) {
        Component comp = node == requester_ ? Component::ReqCpu
                                            : Component::SrvCpu;
        slot = std::make_unique<StageResource>(
            eq_, comp, node, recorder_, params_.preemptive_demand,
            tracer_);
    }
    return *slot;
}

StageResource &
Network::dma(NodeId node)
{
    if (node >= dmas_.size())
        dmas_.resize(node + 1);
    auto &slot = dmas_[node];
    if (!slot) {
        Component comp = node == requester_ ? Component::ReqDma
                                            : Component::SrvDma;
        slot = std::make_unique<StageResource>(
            eq_, comp, node, recorder_, params_.preemptive_demand,
            tracer_);
    }
    return *slot;
}

StageResource &
Network::wire_to(NodeId node)
{
    if (node >= wires_.size())
        wires_.resize(node + 1);
    auto &slot = wires_[node];
    if (!slot) {
        slot = std::make_unique<StageResource>(
            eq_, Component::Wire, node, recorder_,
            params_.preemptive_demand, tracer_);
    }
    return *slot;
}

int
Network::priority_of(MsgKind kind) const
{
    if (!params_.priority_scheduling)
        return 0;
    switch (kind) {
      case MsgKind::Request:
        return 3;
      case MsgKind::DemandData:
        return 2;
      case MsgKind::PutPage:
        return 1;
      case MsgKind::BackgroundData:
        return 0;
    }
    return 0;
}

Tick
Network::recv_cpu_cost(const SendArgs &args) const
{
    switch (args.kind) {
      case MsgKind::Request:
        return params_.request_proc;
      case MsgKind::DemandData:
        return params_.recv_fixed + params_.recv_per_byte * args.bytes;
      case MsgKind::BackgroundData:
        if (args.pipelined_recv) {
            return params_.pipelined_recv_fixed +
                   params_.pipelined_recv_per_byte * args.bytes;
        }
        return params_.recv_fixed + params_.recv_per_byte * args.bytes;
      case MsgKind::PutPage:
        return params_.recv_fixed + params_.recv_per_byte * args.bytes;
    }
    return 0;
}

namespace
{

/** Per-message in-flight state; owned by the stage callbacks. */
struct MsgState
{
    uint64_t id;
    MsgKind kind;
    int prio;
    NodeId src;
    NodeId dst;
    /** Occupancy of the five stages, in pipeline order. */
    Tick cost[5];
    Tick recv_cost;
    fault::MsgFate fate = fault::MsgFate::Deliver;
    InlineFunction<void(Tick delivered, Tick recv_cpu_cost), 120>
        delivered;
};

} // namespace

/**
 * Submit stage @p stage of message @p m at time @p now; the stage's
 * completion submits the next one.
 */
void
Network::run_stage(std::shared_ptr<void> opaque, int stage, Tick now)
{
    auto m = std::static_pointer_cast<MsgState>(opaque);
    StageResource *res = nullptr;
    switch (stage) {
      case 0:
        res = &cpu(m->src);
        break;
      case 1:
        res = &dma(m->src);
        break;
      case 2:
        res = &wire_to(m->dst);
        break;
      case 3:
        res = &dma(m->dst);
        break;
      case 4:
        res = &cpu(m->dst);
        break;
      default:
        panic("bad network stage %d", stage);
    }
    res->submit(now, m->cost[stage], m->prio, m->id, m->kind,
                [this, m, stage](Tick, Tick end) {
                    // Injected losses take effect after the wire
                    // stage: the message burned sender CPU, DMA and
                    // wire time, then vanished.
                    if (stage == 2 && m->fate == fault::MsgFate::Drop) {
                        ++stats_.dropped;
                        SGMS_TRACE_INSTANT(tracer_, Net, "drop",
                                           "faults", end, m->id,
                                           static_cast<int64_t>(m->dst),
                                           static_cast<int64_t>(m->kind));
                        SGMS_DPRINTF(Net, "msg %llu dropped on wire",
                                     static_cast<unsigned long long>(
                                         m->id));
                        return;
                    }
                    if (stage == 4) {
                        if (m->fate == fault::MsgFate::Corrupt) {
                            // Full delivery cost paid, payload
                            // discarded by the receiver.
                            ++stats_.corrupted;
                            SGMS_TRACE_INSTANT(
                                tracer_, Net, "corrupt", "faults", end,
                                m->id, static_cast<int64_t>(m->dst),
                                static_cast<int64_t>(m->kind));
                            return;
                        }
                        if (m->delivered) {
                            m->delivered(end, m->recv_cost);
                            if (m->fate == fault::MsgFate::Duplicate) {
                                // The same payload lands again
                                // back-to-back; the duplicate costs
                                // no extra receive CPU in this model
                                // and must be suppressed upstream.
                                ++stats_.duplicated;
                                SGMS_TRACE_INSTANT(
                                    tracer_, Net, "duplicate",
                                    "faults", end, m->id,
                                    static_cast<int64_t>(m->dst),
                                    static_cast<int64_t>(m->kind));
                                m->delivered(end, 0);
                            }
                        }
                    } else {
                        run_stage(m, stage + 1, end);
                    }
                });
}

uint64_t
Network::send(Tick now, SendArgs args)
{
    uint64_t id = next_msg_id_++;
    ++stats_.messages;
    stats_.bytes += args.bytes;
    ++stats_.messages_by_kind[static_cast<int>(args.kind)];
    stats_.bytes_by_kind[static_cast<int>(args.kind)] += args.bytes;
    if (c_messages_) {
        c_messages_->inc();
        c_bytes_->inc(args.bytes);
        c_by_kind_[static_cast<int>(args.kind)]->inc();
    }
    SGMS_DPRINTF(Net, "inject msg %llu %s %u->%u %u bytes",
                 static_cast<unsigned long long>(id),
                 msg_kind_name(args.kind), args.src, args.dst,
                 args.bytes);

    auto m = std::make_shared<MsgState>();
    m->id = id;
    m->kind = args.kind;
    if (faults_ && faults_->enabled()) {
        m->fate = faults_->fate(now, args.kind, args.src, args.dst);
        if (m->fate != fault::MsgFate::Deliver) {
            SGMS_DPRINTF(Net, "msg %llu fated to %s",
                         static_cast<unsigned long long>(id),
                         fault::msg_fate_name(m->fate));
        }
    }
    m->prio = priority_of(args.kind);
    m->src = args.src;
    m->dst = args.dst;
    m->cost[0] = args.kind == MsgKind::Request ? params_.send_cpu_request
                                               : params_.send_cpu_data;
    m->cost[1] = params_.dma_fixed + params_.dma_per_byte * args.bytes;
    m->cost[2] = params_.wire_fixed + params_.wire_per_byte * args.bytes;
    m->cost[3] = params_.dma_fixed + params_.dma_per_byte * args.bytes;
    m->recv_cost = recv_cpu_cost(args);
    m->cost[4] = m->recv_cost;
    m->delivered = std::move(args.on_delivered);

    run_stage(m, 0, now);
    return id;
}

} // namespace sgms
