/**
 * @file
 * A serially-occupied pipeline stage (CPU, DMA engine, or wire link).
 *
 * Work items queue at the stage and are served one at a time; among
 * queued items, higher priority wins (FIFO within a priority level).
 * This is what produces both congestion delay and the cross-message
 * pipelining that the paper's Figure 2 shows: message 2's server DMA
 * runs while message 1 occupies the wire, because they are different
 * resources.
 */

#ifndef SGMS_NET_RESOURCE_H
#define SGMS_NET_RESOURCE_H

#include <cstdint>
#include <queue>
#include <vector>

#include "common/inline_function.h"
#include "common/types.h"
#include "net/params.h"
#include "net/timeline.h"
#include "obs/tracer.h"
#include "sim/event_queue.h"

namespace sgms
{

/** One pipeline stage; serves queued work items in priority order. */
class StageResource
{
  public:
    /**
     * Called when the item's occupancy [start, end) completes.
     * Inline capacity covers the network's stage-chaining closures
     * (this + shared_ptr message state + stage index); larger
     * captures fall back to the heap, counted by
     * inline_function_heap_fallbacks().
     */
    using Done = InlineFunction<void(Tick start, Tick end), 64>;

    /**
     * @param preemption when true, a higher-priority submission
     *        preempts an in-flight background/putpage occupancy
     *        (ATM-cell-interleaving approximation); the preempted
     *        remainder is requeued.
     */
    StageResource(EventQueue &eq, Component comp, NodeId node,
                  TimelineRecorder *recorder, bool preemption = false,
                  obs::Tracer *tracer = nullptr)
        : eq_(eq), comp_(comp), node_(node), recorder_(recorder),
          tracer_(tracer), preemption_(preemption)
    {}

    /**
     * Submit a work item at simulated time @p now. If the stage is
     * idle it begins immediately; otherwise it queues.
     *
     * @param now      current simulated time
     * @param duration stage occupancy for this item
     * @param priority larger values served first among queued items
     * @param msg_id   message id for timeline capture
     * @param kind     message kind for timeline capture
     * @param done     completion callback
     */
    void submit(Tick now, Tick duration, int priority, uint64_t msg_id,
                MsgKind kind, Done done);

    /** True if currently serving an item. */
    bool busy() const { return busy_; }

    /** Time the current item completes (valid only when busy). */
    Tick busy_until() const { return busy_until_; }

    /** Items served to completion so far. */
    uint64_t completed() const { return completed_; }

    /** Total occupancy ticks accumulated across served items. */
    Tick total_busy() const { return total_busy_; }

  private:
    struct Item
    {
        Tick duration;
        int priority;
        uint64_t seq;
        uint64_t msg_id;
        MsgKind kind;
        Done done;
    };

    struct ItemLess
    {
        bool
        operator()(const Item &a, const Item &b) const
        {
            // priority_queue: "less" means a served after b.
            if (a.priority != b.priority)
                return a.priority < b.priority;
            return a.seq > b.seq;
        }
    };

    void start(Tick now, Item item);

    /** Kinds that may be preempted by higher-priority traffic. */
    static bool preemptible(MsgKind kind);

    EventQueue &eq_;
    Component comp_;
    NodeId node_;
    TimelineRecorder *recorder_;
    obs::Tracer *tracer_;
    bool preemption_;

    bool busy_ = false;
    Tick busy_until_ = 0;
    uint64_t seq_ = 0;
    uint64_t completed_ = 0;
    Tick total_busy_ = 0;
    uint64_t generation_ = 0;

    // The in-flight item (valid while busy_).
    int cur_prio_ = 0;
    MsgKind cur_kind_ = MsgKind::Request;
    uint64_t cur_seq_ = 0;
    uint64_t cur_msg_id_ = 0;
    Done cur_done_;

    std::priority_queue<Item, std::vector<Item>, ItemLess> queue_;
};

} // namespace sgms

#endif // SGMS_NET_RESOURCE_H
