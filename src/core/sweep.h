/**
 * @file
 * Grid-sweep driver: run a cross product of applications, policies,
 * subpage sizes and memory configurations, collecting SimResults.
 * Used by the data-export tooling and sensitivity studies.
 */

#ifndef SGMS_CORE_SWEEP_H
#define SGMS_CORE_SWEEP_H

#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace sgms
{

/** A grid of experiments. */
struct SweepSpec
{
    std::vector<std::string> apps = {"modula3"};
    std::vector<std::string> policies = {"fullpage", "eager"};
    /** Used only for policies that take a subpage size. */
    std::vector<uint32_t> subpage_sizes = {1024};
    std::vector<MemConfig> mems = {MemConfig::Half};
    double scale = 1.0;
    uint64_t seed = 1;
    /** Base configuration applied to every point. */
    SimConfig base;

    /** Number of experiment points the grid expands to. */
    size_t point_count() const;
};

/**
 * Run the whole grid. Policies without a subpage dimension
 * ("fullpage", "disk") run once per (app, mem) regardless of the
 * subpage list. @p progress, if set, is called before each run.
 */
std::vector<SimResult>
run_sweep(const SweepSpec &spec,
          const std::function<void(const Experiment &)> &progress =
              nullptr);

} // namespace sgms

#endif // SGMS_CORE_SWEEP_H
