/**
 * @file
 * Grid-sweep driver: run a cross product of applications, policies,
 * subpage sizes and memory configurations, collecting SimResults.
 * Used by the data-export tooling and sensitivity studies.
 *
 * Since the exec engine landed, run_sweep is a thin front end over
 * exec::Engine (exec/parallel_runner.h): points are sharded across a
 * work-stealing pool — or, with SGMS_WORKERS set, a fleet of forked
 * worker processes — and merged back into serial order, so the
 * result vector is byte-identical whatever the parallelism.
 */

#ifndef SGMS_CORE_SWEEP_H
#define SGMS_CORE_SWEEP_H

#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace sgms
{

namespace exec
{
struct ExecOptions;
} // namespace exec

/** A grid of experiments. */
struct SweepSpec
{
    std::vector<std::string> apps = {"modula3"};
    std::vector<std::string> policies = {"fullpage", "eager"};
    /** Used only for policies that take a subpage size. */
    std::vector<uint32_t> subpage_sizes = {1024};
    std::vector<MemConfig> mems = {MemConfig::Half};
    /**
     * Client-count axis (--clients): each entry runs the point with
     * that many concurrent faulting clients sharing the cluster
     * (Experiment::clients). {1} (the default) is the paper's
     * single-client setup.
     */
    std::vector<uint32_t> clients = {1};
    double scale = 1.0;
    uint64_t seed = 1;
    /**
     * When non-empty, every point replays this baked SGMB file
     * instead of the synthetic app models (Experiment::trace_bin);
     * apps then only label the points, so callers usually collapse
     * the app axis to one entry.
     */
    std::string trace_bin;
    /** Base configuration applied to every point. */
    SimConfig base;

    /** Number of experiment points the grid expands to. */
    size_t point_count() const;
};

/**
 * Run the whole grid. Policies without a subpage dimension
 * ("fullpage", "disk") run once per (app, mem) regardless of the
 * subpage list.
 *
 * Execution is governed by the environment (SGMS_JOBS, SGMS_WORKERS,
 * SGMS_POINT_TIMEOUT_MS, SGMS_CACHE, SGMS_CACHE_DIR,
 * SGMS_CACHE_MAX_MB — see exec/exec_options.h); the default is the
 * serial fast path. Results always come back in serial grid order.
 *
 * Progress-callback CONTRACT: @p progress, if set, fires exactly
 * once per point, before that point runs — but when jobs > 1 it
 * fires from WORKER threads, concurrently and in completion order.
 * Callbacks must be thread-safe: guard printing with a mutex, count
 * with atomics. (Enforced: the engine asserts one call per point.)
 * In multi-process mode (workers >= 1) callbacks fire on the calling
 * thread, in dispatch order.
 */
std::vector<SimResult>
run_sweep(const SweepSpec &spec,
          const std::function<void(const Experiment &)> &progress =
              nullptr);

/** run_sweep with explicit execution options (--jobs/--cache-dir). */
std::vector<SimResult>
run_sweep(const SweepSpec &spec, const exec::ExecOptions &eo,
          const std::function<void(const Experiment &)> &progress =
              nullptr);

} // namespace sgms

#endif // SGMS_CORE_SWEEP_H
