#include "core/sim_result.h"

#include <algorithm>

namespace sgms
{

double
SimResult::best_case_fraction(double slack) const
{
    if (faults.empty())
        return 0.0;
    Tick min_wait = TICK_MAX;
    for (const auto &f : faults)
        min_wait = std::min(min_wait, f.total_wait());
    uint64_t best = 0;
    for (const auto &f : faults)
        if (f.total_wait() <= static_cast<Tick>(min_wait * slack))
            ++best;
    return static_cast<double>(best) / faults.size();
}

double
SimResult::burst_fault_fraction(uint64_t window_refs,
                                double rate_multiplier) const
{
    if (faults.empty() || window_refs == 0 || refs == 0)
        return 0.0;
    // A window qualifies as a burst when its fault count exceeds the
    // multiplier times the average per-window count; also require at
    // least 2 faults so single isolated faults never qualify.
    double avg = static_cast<double>(faults.size()) * window_refs /
                 static_cast<double>(refs);
    double threshold = std::max(2.0, rate_multiplier * avg);
    uint64_t in_bursts = 0;
    size_t i = 0;
    while (i < faults.size()) {
        uint64_t window_start = faults[i].ref_index;
        size_t j = i;
        while (j < faults.size() &&
               faults[j].ref_index < window_start + window_refs) {
            ++j;
        }
        if (static_cast<double>(j - i) >= threshold)
            in_bursts += j - i;
        i = j;
    }
    return static_cast<double>(in_bursts) / faults.size();
}

} // namespace sgms
