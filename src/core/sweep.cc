#include "core/sweep.h"

#include <algorithm>

#include "exec/parallel_runner.h"

namespace sgms
{

namespace
{

bool
has_subpage_dimension(const std::string &policy)
{
    return policy != "fullpage" && policy != "disk";
}

} // namespace

size_t
SweepSpec::point_count() const
{
    size_t n = 0;
    for (const auto &policy : policies) {
        size_t per_mem =
            has_subpage_dimension(policy) ? subpage_sizes.size() : 1;
        n += apps.size() * mems.size() * per_mem;
    }
    return n * std::max<size_t>(1, clients.size());
}

std::vector<SimResult>
run_sweep(const SweepSpec &spec,
          const std::function<void(const Experiment &)> &progress)
{
    return run_sweep(spec, exec::ExecOptions::from_env(), progress);
}

std::vector<SimResult>
run_sweep(const SweepSpec &spec, const exec::ExecOptions &eo,
          const std::function<void(const Experiment &)> &progress)
{
    exec::Engine engine(eo);
    return engine.run_sweep(spec, progress);
}

} // namespace sgms
