#include "core/sweep.h"

namespace sgms
{

namespace
{

bool
has_subpage_dimension(const std::string &policy)
{
    return policy != "fullpage" && policy != "disk";
}

} // namespace

size_t
SweepSpec::point_count() const
{
    size_t n = 0;
    for (const auto &policy : policies) {
        size_t per_mem =
            has_subpage_dimension(policy) ? subpage_sizes.size() : 1;
        n += apps.size() * mems.size() * per_mem;
    }
    return n;
}

std::vector<SimResult>
run_sweep(const SweepSpec &spec,
          const std::function<void(const Experiment &)> &progress)
{
    std::vector<SimResult> out;
    out.reserve(spec.point_count());
    for (const auto &app : spec.apps) {
        for (MemConfig mem : spec.mems) {
            for (const auto &policy : spec.policies) {
                std::vector<uint32_t> sizes =
                    has_subpage_dimension(policy)
                        ? spec.subpage_sizes
                        : std::vector<uint32_t>{spec.base.page_size};
                for (uint32_t sp : sizes) {
                    Experiment ex;
                    ex.app = app;
                    ex.scale = spec.scale;
                    ex.seed = spec.seed;
                    ex.policy = policy;
                    ex.subpage_size = sp;
                    ex.mem = mem;
                    ex.base = spec.base;
                    if (progress)
                        progress(ex);
                    SimResult r = ex.run();
                    out.push_back(std::move(r));
                }
            }
        }
    }
    return out;
}

} // namespace sgms
