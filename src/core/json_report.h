/**
 * @file
 * JSON serialization of simulation results, for archiving runs and
 * regression-diffing experiment outputs outside the C++ tooling.
 * (Hand-rolled emitter; the output is small and flat.)
 */

#ifndef SGMS_CORE_JSON_REPORT_H
#define SGMS_CORE_JSON_REPORT_H

#include <ostream>
#include <string>
#include <vector>

#include "core/sim_result.h"

namespace sgms
{

/**
 * Emit @p result as a JSON object. @p include_faults controls
 * whether the (potentially large) per-fault record array is written.
 */
void write_result_json(std::ostream &os, const SimResult &result,
                       bool include_faults = false);

/** Emit several results as a JSON array. */
void write_results_json(std::ostream &os,
                        const std::vector<SimResult> &results,
                        bool include_faults = false);

/** Escape a string for inclusion in JSON output. */
std::string json_escape(const std::string &s);

} // namespace sgms

#endif // SGMS_CORE_JSON_REPORT_H
