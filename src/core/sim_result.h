/**
 * @file
 * Results of one simulation run.
 *
 * The time components partition the runtime exactly:
 *   runtime = exec_time + sp_latency + page_wait
 *           + recv_overhead + emulation_overhead + tlb_overhead
 * matching the paper's Figure 4 decomposition (exec / sp_latency /
 * page_wait), plus the overhead buckets it folds into exec.
 */

#ifndef SGMS_CORE_SIM_RESULT_H
#define SGMS_CORE_SIM_RESULT_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "mem/tlb.h"
#include "net/network.h"
#include "obs/metrics.h"

namespace sgms
{

/** Per-page-fault record (Figure 5's unit of analysis). */
struct FaultRecord
{
    PageId page;
    uint64_t ref_index;  ///< trace position of the fault
    Tick at;             ///< simulated time of the fault
    Tick sp_wait;        ///< stall until the demand transfer arrived
    Tick page_wait;      ///< later stalls on this page's in-flight data
    bool from_disk;

    /** Total waiting attributable to this fault. */
    Tick total_wait() const { return sp_wait + page_wait; }
};

/** Everything a run produces. */
struct SimResult
{
    // Identification (filled by the runner for reports).
    std::string app;
    std::string policy;
    uint32_t page_size = 0;
    uint32_t subpage_size = 0;
    size_t mem_pages = 0;

    // Counters.
    uint64_t refs = 0;
    uint64_t page_faults = 0;
    uint64_t lazy_subpage_faults = 0;
    uint64_t evictions = 0;
    uint64_t putpages = 0;
    uint64_t emulated_accesses = 0;

    // Time decomposition (ticks).
    Tick runtime = 0;
    Tick exec_time = 0;
    Tick sp_latency = 0;
    Tick page_wait = 0;
    Tick recv_overhead = 0;
    Tick emulation_overhead = 0;
    Tick tlb_overhead = 0;

    // Overlap attribution for background transfers: how much of
    // their transfer time coincided with the program being blocked
    // on other faults (I/O overlap) vs executing (computational
    // overlap). Section 4.2's 53-83% measurement.
    Tick io_overlap = 0;
    Tick comp_overlap = 0;

    // Detailed records.
    std::vector<FaultRecord> faults;
    Series clustering; ///< (ref index, cumulative faults): Figs 6/10
    Histogram next_subpage_distance; ///< Figure 7

    // Substrate stats.
    NetStats net_stats;
    TlbStats tlb_stats;
    uint64_t global_discards = 0; ///< pages dropped from global memory

    // Reliability stats (all zero when fault injection is off).
    uint64_t retries = 0;           ///< fetch attempts beyond the first
    uint64_t timeouts = 0;          ///< attempts that timed out
    uint64_t degraded_fetches = 0;  ///< fetches that fell back to disk
    uint64_t duplicate_deliveries = 0; ///< suppressed duplicate data
    uint64_t server_failures = 0;   ///< directory invalidations

    /**
     * Uniform end-of-run snapshot of every metric the run's
     * components registered (obs/metrics.h), name-sorted. The named
     * fields above remain the stable accessors; this carries the
     * full "<module>.<name>" registry into reports and JSON.
     */
    std::vector<obs::MetricSample> metrics;

    // Resource occupancy (ticks busy over the run), for utilization
    // analysis: the requester's inbound link is the usual bottleneck.
    Tick requester_wire_busy = 0;
    Tick requester_dma_busy = 0;
    Tick requester_cpu_busy = 0;

    /** Utilization of the requester's inbound link. */
    double
    wire_utilization() const
    {
        return runtime ? static_cast<double>(requester_wire_busy) /
                             runtime
                       : 0.0;
    }

    /** base.runtime / runtime (>1 means this run is faster). */
    double
    speedup_vs(const SimResult &base) const
    {
        return runtime ? static_cast<double>(base.runtime) / runtime
                       : 0.0;
    }

    /** 1 - runtime/base.runtime: the paper's "% improvement". */
    double
    reduction_vs(const SimResult &base) const
    {
        return base.runtime
                   ? 1.0 - static_cast<double>(runtime) / base.runtime
                   : 0.0;
    }

    /** Share of background-transfer overlap that was I/O overlap. */
    double
    io_overlap_share() const
    {
        Tick total = io_overlap + comp_overlap;
        return total ? static_cast<double>(io_overlap) / total : 0.0;
    }

    /**
     * Fraction of faults that saw (close to) the best case: their
     * total wait within @p slack of the minimum demand wait observed.
     */
    double best_case_fraction(double slack = 1.15) const;

    /**
     * Clustering metric: fraction of faults that land in windows of
     * @p window_refs references whose fault count is at least
     * @p rate_multiplier times the trace-wide average for a window
     * of that size (i.e. faults arriving in high-fault-rate periods,
     * the quantity Figures 6/10 visualize).
     */
    double burst_fault_fraction(uint64_t window_refs,
                                double rate_multiplier = 3.0) const;
};

} // namespace sgms

#endif // SGMS_CORE_SIM_RESULT_H
