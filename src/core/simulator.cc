#include "core/simulator.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "obs/debug.h"

namespace sgms
{

namespace
{
/** Minimum references between replacement-policy touches per page. */
constexpr uint64_t TOUCH_GRANULARITY = 64;

/**
 * References consumed from the trace per next_batch call. Also the
 * granularity of the wall-budget check: one clock read per batch is
 * noise (~20 ns per ~1024 references).
 */
constexpr size_t TRACE_BATCH = 1024;
} // namespace

Simulator::Simulator(SimConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.mem_pages == 1)
        fatal("simulator: mem_pages must be 0 (unlimited) or >= 2");
    if (cfg_.subpage_size > cfg_.page_size)
        fatal("simulator: subpage larger than page");
    if (cfg_.clients > 1)
        fatal("simulator: clients > 1 requires MultiClientSimulator "
              "(sim/multi_client.h)");
}

Simulator::Run::Run(const SimConfig &cfg)
    : tracer(cfg.tracer),
      finj(cfg.faults.enabled()
               ? std::make_unique<fault::FaultInjector>(cfg.faults,
                                                        &metrics)
               : nullptr),
      net(eq, cfg.net, /*requester=*/0, cfg.timeline, cfg.tracer,
          &metrics, finj.get()),
      gms(net, cfg.gms, /*requester=*/0, cfg.tracer, &metrics),
      geo(cfg.page_size, cfg.subpage_size),
      pt(geo, cfg.mem_pages, cfg.replacement),
      policy(make_fetch_policy(cfg.policy, &metrics)), pal(cfg.pal),
      c_page_faults(&metrics.counter("sim.page_faults")),
      c_subpage_faults(&metrics.counter("sim.lazy_subpage_faults")),
      c_evictions(&metrics.counter("gms.evictions")),
      c_disk_faults(&metrics.counter("sim.disk_faults")),
      d_fault_wait(&metrics.distribution("sim.fault_wait_ns"))
{
    pal.bind_metrics(metrics);
    if (finj) {
        // Registered only under fault injection so that fault-free
        // runs keep a byte-identical metrics snapshot.
        c_retries = &metrics.counter("gms.retries");
        c_timeouts = &metrics.counter("gms.timeouts");
        c_degraded = &metrics.counter("gms.degraded_fetches");
        c_duplicates = &metrics.counter("gms.duplicate_deliveries");
        d_retry_delay = &metrics.distribution("gms.retry_delay_ns");
    }
    if (cfg.footprint_pages_hint)
        pt.reserve(cfg.footprint_pages_hint);
    if (cfg.tlb_enabled)
        tlb = std::make_unique<Tlb>(cfg.tlb_entries, cfg.tlb_assoc,
                                    cfg.page_size);
    if (cfg.cluster_load.server_utilization > 0.0) {
        cluster_load = std::make_unique<ClusterLoad>(
            eq, net, cfg.cluster_load, cfg.gms.servers, 0);
    }
    res.policy = cfg.policy;
    res.page_size = cfg.page_size;
    res.subpage_size = cfg.subpage_size;
    res.mem_pages = cfg.mem_pages;
}

void
Simulator::drain_due_events(Run &r)
{
    if (r.eq.next_time() <= r.now)
        r.eq.run_until(r.now);
    if (r.pending_steal) {
        r.now += r.pending_steal;
        r.res.recv_overhead += r.pending_steal;
        r.pending_steal = 0;
        // The steal may have pushed us past more event times.
        if (r.eq.next_time() <= r.now)
            r.eq.run_until(r.now);
    }
}

Tick
Simulator::wait_until(Run &r, const std::function<bool()> &pred)
{
    Tick start = r.now;
    r.blocked = true;
    r.wait_start = r.now;
    while (!pred()) {
        SGMS_ASSERT(!r.eq.empty()); // otherwise the wait can never end
        Tick t = r.eq.run_one();
        if (t > r.now)
            r.now = t;
    }
    r.blocked = false;
    Tick waited = r.now - start;
    r.total_blocked += waited;
    // Anything that arrived while blocked cannot also steal CPU.
    r.pending_steal = 0;
    if (waited > 0) {
        SGMS_TRACE_SPAN(r.tracer, Block, "blocked", "program", start,
                        r.now, r.wait_seq++,
                        static_cast<int64_t>(r.ref_index), 0);
    }
    return waited;
}

void
Simulator::disk_wait(Run &r, Tick latency)
{
    Tick target = r.now + latency;
    r.blocked = true;
    r.wait_start = r.now;
    r.eq.run_until(target);
    r.now = target;
    r.blocked = false;
    r.total_blocked += latency;
    r.pending_steal = 0;
    if (latency > 0) {
        SGMS_TRACE_SPAN(r.tracer, Block, "disk", "program",
                        target - latency, target, r.wait_seq++,
                        static_cast<int64_t>(r.ref_index), 0);
    }
}

void
Simulator::resolve_watch(Run &r, PageTable::Frame &frame,
                         SubpageIndex touched)
{
    if (frame.watch_from < 0)
        return;
    if (static_cast<SubpageIndex>(frame.watch_from) == touched)
        return;
    int distance = static_cast<int>(touched) - frame.watch_from;
    if (cfg_.record_faults)
        r.res.next_subpage_distance.add(distance);
    // Adaptive policies learn the follow-on order from this signal.
    r.policy->observe_distance(distance);
    frame.watch_from = -1;
}

void
Simulator::deliver(Run &r, PageId page, uint64_t fault_id,
                   uint64_t mask, bool demand, Tick issued,
                   Tick blocked_at_issue, Tick delivered, Tick recv_cpu)
{
    PageTable::Frame *frame = r.pt.find(page);
    // Drop late arrivals for pages that were evicted (and possibly
    // refaulted, which changes the fault id) while in flight.
    if (!frame || frame->fault_id != fault_id)
        return;

    // Duplicate-delivery suppression: with retries and injected
    // duplicates the same subpage can arrive more than once; bits
    // that are already valid are counted and otherwise ignored
    // (mark_valid is idempotent).
    if (r.finj) {
        uint64_t already = mask & frame->valid.raw();
        if (already) {
            uint64_t n = __builtin_popcountll(already);
            r.res.duplicate_deliveries += n;
            r.c_duplicates->inc(n);
        }
    }

    uint64_t m = mask;
    while (m) {
        SubpageIndex idx = __builtin_ctzll(m);
        m &= m - 1;
        r.pt.mark_valid(page, idx);
    }
    if (frame->complete)
        r.pal.page_completed(page);

    if (recv_cpu && !r.blocked)
        r.pending_steal += recv_cpu;

    if (!demand) {
        // Attribute this background transfer's duration to I/O vs
        // computational overlap (section 4.2).
        Tick dur = delivered - issued;
        Tick blocked_during = r.blocked_at(delivered) - blocked_at_issue;
        blocked_during = std::clamp<Tick>(blocked_during, 0, dur);
        r.res.io_overlap += blocked_during;
        r.res.comp_overlap += dur - blocked_during;
    }
}

void
Simulator::issue_transfers(Run &r, PageId page, uint64_t fault_id,
                           const FetchPlan &plan, SubpageIndex faulted,
                           uint32_t byte_in_sub)
{
    if (r.finj) {
        issue_transfers_reliable(r, page, fault_id, plan, faulted,
                                 byte_in_sub);
        return;
    }
    NodeId srv = r.gms.server_of(page);
    // Mark everything the plan covers as in flight immediately; the
    // program is blocked on the demand segment until it arrives, so
    // nothing can observe the gap before the server starts sending.
    if (PageTable::Frame *frame = r.pt.find(page)) {
        for (const auto &seg : plan.segments)
            frame->inflight |= seg.subpage_mask;
    }

    // The fault-handling fixed cost elapses on the (blocked) faulting
    // CPU before the request message is injected. Injection must
    // happen *at* t0, via the event queue — injecting early with a
    // future timestamp would race the stage resources' bookkeeping.
    Tick t0 = r.now + cfg_.net.fault_handle;
    // Copy the plan into the request-completion closure: the server
    // sends the demand segment and everything behind it back-to-back.
    // Init-captures, not [plan]: copy-capturing a const reference
    // gives the closure a const member whose "move" is a throwing
    // vector copy, which forces InlineFunction's heap fallback on
    // every fault.
    r.eq.schedule(t0, [this, &r, page, fault_id, srv, plan = plan,
                       t0] {
        r.net.send(t0,
               {0, srv, cfg_.net.request_bytes, MsgKind::Request, false,
                [this, &r, page, fault_id, srv,
                 plan = plan](Tick when, Tick) {
                    for (const auto &seg : plan.segments) {
                        Tick blocked_at_issue = r.blocked_at(when);
                        r.net.send(
                            when,
                            {srv, 0, seg.bytes,
                             seg.demand ? MsgKind::DemandData
                                        : MsgKind::BackgroundData,
                             seg.pipelined_recv,
                             [this, &r, page, fault_id,
                              mask = seg.subpage_mask,
                              demand = seg.demand, issued = when,
                              blocked_at_issue](Tick d, Tick rc) {
                                 deliver(r, page, fault_id, mask,
                                         demand, issued,
                                         blocked_at_issue, d, rc);
                             }});
                    }
                }});
    });
}

/**
 * State of one reliable fetch (fault injection enabled): which
 * subpages it owes, which attempt is live, and whether it is
 * finished. Shared between the attempt, timeout, and delivery
 * closures; `generation` invalidates stale timeout events.
 */
struct Simulator::PendingFetch
{
    PageId page = 0;
    uint64_t fault_id = 0;
    NodeId srv = 0;
    /** All subpages this fetch must land (union of plan segments). */
    uint64_t expected = 0;
    /** Subpage the program blocks on (replan anchor for retries). */
    SubpageIndex demand_sp = 0;
    uint32_t byte_in_sub = 0;
    uint32_t attempt = 1;
    uint64_t generation = 0;
    bool done = false;
};

bool
Simulator::server_unavailable(Run &r, NodeId srv) const
{
    return r.finj && (r.finj->server_down(srv, r.now) ||
                      r.gms.server_failed(srv, r.now));
}

/** Propagate an observed outage into the GMS directory. */
void
Simulator::note_server_down(Run &r, NodeId srv)
{
    if (r.finj->server_down(srv, r.now)) {
        r.gms.mark_server_failed(r.now, srv,
                                 r.finj->recovery_time(srv, r.now));
    }
}

void
Simulator::finish_if_complete(Run &r, PendingFetch &st)
{
    if (st.done)
        return;
    PageTable::Frame *frame = r.pt.find(st.page);
    if (!frame || frame->fault_id != st.fault_id) {
        st.done = true; // page evicted; late arrivals are dropped
        return;
    }
    if ((st.expected & ~frame->valid.raw()) == 0)
        st.done = true;
}

void
Simulator::issue_transfers_reliable(Run &r, PageId page,
                                    uint64_t fault_id,
                                    const FetchPlan &plan,
                                    SubpageIndex faulted,
                                    uint32_t byte_in_sub)
{
    auto st = std::make_shared<PendingFetch>();
    st->page = page;
    st->fault_id = fault_id;
    st->srv = r.gms.server_of(page);
    st->demand_sp = faulted;
    st->byte_in_sub = byte_in_sub;
    if (PageTable::Frame *frame = r.pt.find(page)) {
        for (const auto &seg : plan.segments) {
            frame->inflight |= seg.subpage_mask;
            st->expected |= seg.subpage_mask;
        }
    }
    // As in the unreliable path, the fault-handling fixed cost
    // elapses on the faulting CPU before the request goes out.
    start_attempt(r, std::move(st), plan, r.now + cfg_.net.fault_handle);
}

/**
 * Schedule one fetch attempt: inject the request at @p when, and arm
 * the attempt's timeout. The server answers the request by sending
 * every plan segment back-to-back; each arrival marks its subpages
 * and may complete the fetch.
 */
void
Simulator::start_attempt(Run &r, std::shared_ptr<PendingFetch> st,
                         FetchPlan plan, Tick when)
{
    Tick timeout = cfg_.retry.timeout_for(cfg_.net, plan.total_bytes());
    r.eq.schedule(when, [this, &r, st, plan = std::move(plan), when,
                         timeout] {
        if (st->done)
            return;
        uint64_t gen = st->generation;
        r.net.send(
            when,
            {0, st->srv, cfg_.net.request_bytes, MsgKind::Request,
             false,
             [this, &r, st, plan = plan](Tick at, Tick) {
                 if (st->done)
                     return;
                 for (const auto &seg : plan.segments) {
                     Tick blocked_at_issue = r.blocked_at(at);
                     r.net.send(
                         at,
                         {st->srv, 0, seg.bytes,
                          seg.demand ? MsgKind::DemandData
                                     : MsgKind::BackgroundData,
                          seg.pipelined_recv,
                          [this, &r, st, mask = seg.subpage_mask,
                           demand = seg.demand, issued = at,
                           blocked_at_issue](Tick d, Tick rc) {
                              deliver(r, st->page, st->fault_id,
                                      mask, demand, issued,
                                      blocked_at_issue, d, rc);
                              finish_if_complete(r, *st);
                          }});
                 }
             }});
        r.eq.schedule(when + timeout, [this, &r, st, gen,
                                       at = when + timeout] {
            on_fetch_timeout(r, st, gen, at);
        });
    });
}

/**
 * An attempt's timer fired at @p when. If the fetch still owes data,
 * either retry with exponential backoff + seeded jitter, or — when
 * attempts are exhausted or the server is down — degrade to disk.
 */
void
Simulator::on_fetch_timeout(Run &r, std::shared_ptr<PendingFetch> st,
                            uint64_t generation, Tick when)
{
    if (st->done || st->generation != generation)
        return;
    finish_if_complete(r, *st);
    if (st->done)
        return;
    PageTable::Frame *frame = r.pt.find(st->page);
    SGMS_ASSERT(frame); // finish_if_complete marks done otherwise
    uint64_t missing = st->expected & ~frame->valid.raw();

    ++r.res.timeouts;
    r.c_timeouts->inc();
    SGMS_TRACE_INSTANT(r.tracer, Gms, "timeout", "reliability", when,
                       st->fault_id, static_cast<int64_t>(st->page),
                       static_cast<int64_t>(st->attempt));
    SGMS_DPRINTF(Gms,
                 "fetch timeout page %llu attempt %u missing %llx",
                 static_cast<unsigned long long>(st->page), st->attempt,
                 static_cast<unsigned long long>(missing));

    if (st->attempt >= cfg_.retry.max_attempts ||
        r.finj->server_down(st->srv, when)) {
        degrade_to_disk(r, st, missing, when);
        return;
    }

    ++st->attempt;
    ++st->generation;
    ++r.res.retries;
    r.c_retries->inc();

    // Replan for what is still missing, anchored on the subpage the
    // program blocks on (or the lowest missing one once it landed).
    SubpageIndex anchor =
        (missing >> st->demand_sp) & 1
            ? st->demand_sp
            : static_cast<SubpageIndex>(__builtin_ctzll(missing));
    uint32_t byte = anchor == st->demand_sp ? st->byte_in_sub : 0;
    FetchPlan plan = r.policy->plan(r.geo, anchor, byte, missing);
    SGMS_ASSERT(!plan.from_disk);
    if (PageTable::Frame *f = r.pt.find(st->page)) {
        for (const auto &seg : plan.segments)
            f->inflight |= seg.subpage_mask;
    }

    Tick base_timeout =
        cfg_.retry.timeout_for(cfg_.net, plan.total_bytes());
    Tick delay = cfg_.retry.backoff_delay(st->attempt, base_timeout,
                                          r.finj->jitter_draw());
    r.d_retry_delay->add(ticks::to_ns(delay));
    SGMS_TRACE_SPAN(r.tracer, Gms, "retry_backoff", "reliability",
                    when, when + delay, st->fault_id,
                    static_cast<int64_t>(st->page),
                    static_cast<int64_t>(st->attempt));
    start_attempt(r, st, std::move(plan), when + delay);
}

/**
 * Retries exhausted (or the server died): mark the server failed in
 * the directory and satisfy the missing subpages from the local
 * disk. The paper's GMS premise — remote memory is only a cache
 * whose loss degrades to disk — as a live protocol transition.
 */
void
Simulator::degrade_to_disk(Run &r, std::shared_ptr<PendingFetch> st,
                           uint64_t missing, Tick when)
{
    st->done = true;
    ++r.res.degraded_fetches;
    r.c_degraded->inc();

    Tick failed_until = r.finj->server_down(st->srv, when)
                            ? r.finj->recovery_time(st->srv, when)
                            : when + cfg_.retry.quarantine;
    r.gms.mark_server_failed(when, st->srv, failed_until);

    uint32_t bytes = static_cast<uint32_t>(
        __builtin_popcountll(missing) * cfg_.subpage_size);
    Tick latency = cfg_.disk.access_latency(bytes);
    SGMS_TRACE_SPAN(r.tracer, Gms, "degraded_disk", "reliability",
                    when, when + latency, st->fault_id,
                    static_cast<int64_t>(st->page),
                    static_cast<int64_t>(bytes));
    SGMS_DPRINTF(Gms, "degrading fetch of page %llu to disk (%u bytes)",
                 static_cast<unsigned long long>(st->page), bytes);

    r.eq.schedule(when + latency, [&r, st, missing] {
        PageTable::Frame *frame = r.pt.find(st->page);
        if (!frame || frame->fault_id != st->fault_id)
            return;
        uint64_t m = missing;
        while (m) {
            SubpageIndex idx = __builtin_ctzll(m);
            m &= m - 1;
            r.pt.mark_valid(st->page, idx);
        }
        if (frame->complete)
            r.pal.page_completed(st->page);
    });
}

void
Simulator::handle_page_fault(Run &r, PageId page, const TraceEvent &ev)
{
    ++r.res.page_faults;
    r.c_page_faults->inc();
    if (cfg_.record_faults) {
        r.res.clustering.add(static_cast<double>(r.ref_index),
                             static_cast<double>(r.res.page_faults));
    }
    SGMS_DPRINTF(Sim, "page fault #%llu on page %llu at ref %llu",
                 static_cast<unsigned long long>(r.res.page_faults),
                 static_cast<unsigned long long>(page),
                 static_cast<unsigned long long>(r.ref_index));

    // Make room, shipping the victim to global memory.
    if (r.pt.full()) {
        PageTable::Frame victim_state;
        PageId victim = r.pt.evict(&victim_state);
        r.c_evictions->inc();
        SGMS_TRACE_INSTANT(r.tracer, Gms, "evict", "gms", r.now,
                           static_cast<int64_t>(victim),
                           static_cast<int64_t>(cfg_.page_size),
                           static_cast<int64_t>(r.gms.server_of(victim)));
        r.gms.put_page(r.now, victim, cfg_.page_size,
                       victim_state.dirty);
    }

    PageTable::Frame &frame = r.pt.install(page);
    uint64_t fault_id = r.res.faults.size();
    frame.fault_id = fault_id;
    frame.last_touch = r.ref_index;

    SubpageIndex sp = r.geo.subpage_of(ev.addr);
    uint32_t byte_in_sub =
        ev.addr & (cfg_.subpage_size - 1);
    uint64_t missing = ~0ULL;
    if (r.geo.subpages_per_page() < 64)
        missing = (1ULL << r.geo.subpages_per_page()) - 1;

    FaultRecord rec{page, r.ref_index, r.now, 0, 0, false};

    FetchPlan plan =
        r.policy->plan(r.geo, sp, byte_in_sub, missing);
    SGMS_TRACE_INSTANT(r.tracer, Policy, "plan", "policy", r.now,
                       static_cast<int64_t>(fault_id),
                       static_cast<int64_t>(plan.segments.size()),
                       static_cast<int64_t>(plan.total_bytes()));
    // Server-lookup boundary of the reliability layer: a fault whose
    // owning server is down (or invalidated in the directory) goes
    // straight to disk instead of timing out on the network.
    bool degraded = false;
    if (!plan.from_disk && server_unavailable(r, r.gms.server_of(page))) {
        note_server_down(r, r.gms.server_of(page));
        degraded = true;
        ++r.res.degraded_fetches;
        r.c_degraded->inc();
        SGMS_TRACE_INSTANT(r.tracer, Gms, "degraded_lookup",
                           "reliability", r.now,
                           static_cast<int64_t>(fault_id),
                           static_cast<int64_t>(page),
                           static_cast<int64_t>(r.gms.server_of(page)));
    }
    if (plan.from_disk || degraded || !r.gms.in_global_memory(page)) {
        Tick lat = cfg_.disk.access_latency(cfg_.page_size);
        r.c_disk_faults->inc();
        disk_wait(r, lat);
        r.res.sp_latency += lat;
        rec.sp_wait = lat;
        rec.from_disk = true;
        r.pt.mark_all_valid(page);
        r.d_fault_wait->add(ticks::to_ns(lat));
        SGMS_TRACE_SPAN(r.tracer, Fault, "demand", "fault",
                        r.now - lat, r.now,
                        static_cast<int64_t>(fault_id),
                        static_cast<int64_t>(page),
                        static_cast<int64_t>(cfg_.page_size));
    } else {
        issue_transfers(r, page, fault_id, plan, sp, byte_in_sub);
        Tick waited = wait_until(r, [&r, page, sp] {
            PageTable::Frame *f = r.pt.find(page);
            return f && f->valid.test(sp);
        });
        r.res.sp_latency += waited;
        rec.sp_wait = waited;
        r.d_fault_wait->add(ticks::to_ns(waited));
        SGMS_TRACE_SPAN(r.tracer, Fault, "demand", "fault",
                        r.now - waited, r.now,
                        static_cast<int64_t>(fault_id),
                        static_cast<int64_t>(page),
                        static_cast<int64_t>(plan.segments[0].bytes));
    }

    // Start watching for the next access to a different subpage
    // (Figure 7), unless the whole page just arrived at once.
    PageTable::Frame *f = r.pt.find(page);
    SGMS_ASSERT(f);
    if (!f->complete)
        f->watch_from = static_cast<int16_t>(sp);
    else if (r.geo.subpages_per_page() > 1)
        f->watch_from = static_cast<int16_t>(sp);
    if (ev.write)
        f->dirty = true;

    if (cfg_.record_faults)
        r.res.faults.push_back(rec);
}

void
Simulator::handle_subpage_fault(Run &r, PageId page,
                                PageTable::Frame &frame,
                                const TraceEvent &ev)
{
    // Only the lazy policy leaves resident pages with missing,
    // not-in-flight subpages.
    ++r.res.lazy_subpage_faults;
    r.c_subpage_faults->inc();

    SubpageIndex sp = r.geo.subpage_of(ev.addr);
    uint32_t byte_in_sub = ev.addr & (cfg_.subpage_size - 1);
    uint64_t missing = ~frame.valid.raw();
    if (r.geo.subpages_per_page() < 64)
        missing &= (1ULL << r.geo.subpages_per_page()) - 1;
    SGMS_DPRINTF(Sim, "subpage fault on page %llu subpage %u at ref %llu",
                 static_cast<unsigned long long>(page), sp,
                 static_cast<unsigned long long>(r.ref_index));

    FetchPlan plan = r.policy->plan(r.geo, sp, byte_in_sub, missing);
    SGMS_ASSERT(!plan.from_disk);
    SGMS_TRACE_INSTANT(r.tracer, Policy, "plan", "policy", r.now,
                       static_cast<int64_t>(frame.fault_id),
                       static_cast<int64_t>(plan.segments.size()),
                       static_cast<int64_t>(plan.total_bytes()));
    if (server_unavailable(r, r.gms.server_of(page))) {
        // Degrade the lazy subpage fetch: one disk access brings in
        // the whole page (the disk path has no subpage granularity).
        note_server_down(r, r.gms.server_of(page));
        ++r.res.degraded_fetches;
        r.c_degraded->inc();
        Tick lat = cfg_.disk.access_latency(cfg_.page_size);
        r.c_disk_faults->inc();
        disk_wait(r, lat);
        r.res.sp_latency += lat;
        r.pt.mark_all_valid(page);
        r.d_fault_wait->add(ticks::to_ns(lat));
        SGMS_TRACE_SPAN(r.tracer, Gms, "degraded_disk", "reliability",
                        r.now - lat, r.now,
                        static_cast<int64_t>(frame.fault_id),
                        static_cast<int64_t>(page),
                        static_cast<int64_t>(cfg_.page_size));
        if (frame.fault_id < r.res.faults.size())
            r.res.faults[frame.fault_id].page_wait += lat;
        return;
    }
    issue_transfers(r, page, frame.fault_id, plan, sp, byte_in_sub);
    Tick waited = wait_until(r, [&r, page, sp] {
        PageTable::Frame *f = r.pt.find(page);
        return f && f->valid.test(sp);
    });
    r.res.sp_latency += waited;
    r.d_fault_wait->add(ticks::to_ns(waited));
    SGMS_TRACE_SPAN(r.tracer, Fault, "demand", "fault", r.now - waited,
                    r.now, static_cast<int64_t>(frame.fault_id),
                    static_cast<int64_t>(page),
                    static_cast<int64_t>(plan.segments[0].bytes));
    if (frame.fault_id < r.res.faults.size())
        r.res.faults[frame.fault_id].page_wait += waited;
}

SimResult
Simulator::run(TraceSource &trace)
{
    Run r(cfg_);
    trace.reset();

    const Tick step = cfg_.ns_per_ref;
    const bool software_pal =
        cfg_.protection == ProtectionMode::SoftwarePal;

    PageId last_page = ~0ULL;
    bool last_fast = false;
    // Valid while last_fast: no page can be installed (and thus no
    // frame storage can move) without a fault, which goes through
    // the slow path and refreshes this.
    PageTable::Frame *last_frame = nullptr;

    // Cooperative cancellation: the budget is checked once per
    // consumed batch, so a runaway point aborts within one batch of
    // references past its deadline no matter how slow each reference
    // simulates.
    using wall_clock = std::chrono::steady_clock;
    const bool budgeted = cfg_.wall_budget_ms > 0;
    wall_clock::time_point deadline;
    if (budgeted) {
        deadline = wall_clock::now() +
                   std::chrono::milliseconds(cfg_.wall_budget_ms);
    }

    TraceEvent batch[TRACE_BATCH];
    size_t batch_n = 0;
    size_t batch_i = 0;
    for (;;) {
        if (batch_i == batch_n) {
            batch_n = trace.next_batch(batch, TRACE_BATCH);
            if (batch_n == 0)
                break;
            batch_i = 0;
            if (budgeted && wall_clock::now() >= deadline)
                throw SimTimeoutError(cfg_.wall_budget_ms,
                                      r.ref_index);
        }
        const TraceEvent ev = batch[batch_i++];
        drain_due_events(r);

        if (r.tlb && !r.tlb->access(ev.addr)) {
            r.now += cfg_.tlb_miss_cost;
            r.res.tlb_overhead += cfg_.tlb_miss_cost;
            // The refill may have pushed us past pending events;
            // they must run before any fault handling injects new
            // messages (stage resources assume submissions at the
            // current time).
            if (r.eq.next_time() <= r.now)
                r.eq.run_until(r.now);
        }

        PageId page = r.geo.page_of(ev.addr);
        if (page != last_page || !last_fast) {
            PageTable::Frame *frame = r.pt.find(page);
            if (!frame) {
                handle_page_fault(r, page, ev);
                frame = r.pt.find(page);
                SGMS_ASSERT(frame);
            } else {
                // Refresh the replacement policy's recency, but only
                // every TOUCH_GRANULARITY references per page: exact
                // per-reference LRU ordering costs a list splice per
                // reference and is indistinguishable at page-fault
                // reuse distances.
                if (page != last_page &&
                    r.ref_index - frame->last_touch >=
                        TOUCH_GRANULARITY) {
                    r.pt.touch(page);
                    frame->last_touch = r.ref_index;
                }
                SubpageIndex sp = r.geo.subpage_of(ev.addr);
                if (!frame->valid.test(sp)) {
                    if (frame->subpage_inflight(sp)) {
                        // Stall until the in-flight transfer lands:
                        // the page_wait component of Figure 4.
                        uint64_t fid = frame->fault_id;
                        Tick waited =
                            wait_until(r, [&r, page, sp] {
                                PageTable::Frame *f = r.pt.find(page);
                                return f && f->valid.test(sp);
                            });
                        r.res.page_wait += waited;
                        SGMS_TRACE_SPAN(r.tracer, PageWait,
                                        "page_wait", "fault",
                                        r.now - waited, r.now,
                                        static_cast<int64_t>(fid),
                                        static_cast<int64_t>(page),
                                        static_cast<int64_t>(sp));
                        if (fid < r.res.faults.size())
                            r.res.faults[fid].page_wait += waited;
                    } else {
                        handle_subpage_fault(r, page, *frame, ev);
                    }
                    frame = r.pt.find(page);
                    SGMS_ASSERT(frame);
                } else if (software_pal && !frame->complete) {
                    Tick cost = r.pal.access_cost(page, ev.write);
                    r.now += cost;
                    r.res.emulation_overhead += cost;
                }
                resolve_watch(r, *frame, r.geo.subpage_of(ev.addr));
                if (ev.write)
                    frame->dirty = true;
            }
            last_page = page;
            last_fast = frame->complete && frame->watch_from < 0;
            last_frame = frame;
        } else if (ev.write) {
            // Fast path: same complete page — only the dirty bit can
            // change.
            last_frame->dirty = true;
        }

        r.now += step;
        r.res.exec_time += step;
        ++r.ref_index;
    }

    r.res.refs = r.ref_index;
    r.res.runtime = r.now;
    r.res.evictions = r.pt.evictions();
    r.res.putpages = r.gms.putpages();
    r.res.global_discards = r.gms.global_discards();
    r.res.net_stats = r.net.stats();
    r.res.requester_wire_busy = r.net.wire_to(0).total_busy();
    r.res.requester_dma_busy = r.net.dma(0).total_busy();
    r.res.requester_cpu_busy = r.net.cpu(0).total_busy();
    if (r.tlb)
        r.res.tlb_stats = r.tlb->stats();
    r.res.emulated_accesses = r.pal.emulated();
    r.res.server_failures = r.gms.server_failures();
    if (r.finj) {
        r.metrics.counter("gms.server_failures")
            .inc(r.res.server_failures);
    }

    // End-of-run gauges (times in ns; utilizations as fractions),
    // then freeze the whole registry into the result.
    double runtime_ns = ticks::to_ns(r.now);
    r.metrics.gauge("sim.runtime_ns").set(runtime_ns);
    r.metrics.gauge("sim.exec_ns").set(ticks::to_ns(r.res.exec_time));
    r.metrics.gauge("sim.blocked_ns").set(ticks::to_ns(r.total_blocked));
    r.metrics.gauge("sim.sp_latency_ns")
        .set(ticks::to_ns(r.res.sp_latency));
    if (r.now > 0) {
        r.metrics.gauge("net.wire_busy")
            .set(static_cast<double>(r.res.requester_wire_busy) /
                 static_cast<double>(r.now));
        r.metrics.gauge("net.req_dma_busy")
            .set(static_cast<double>(r.res.requester_dma_busy) /
                 static_cast<double>(r.now));
        r.metrics.gauge("net.req_cpu_busy")
            .set(static_cast<double>(r.res.requester_cpu_busy) /
                 static_cast<double>(r.now));
    }
    if (r.tlb) {
        r.metrics.counter("tlb.hits").inc(r.res.tlb_stats.hits);
        r.metrics.counter("tlb.misses").inc(r.res.tlb_stats.misses);
    }
    r.res.metrics = r.metrics.snapshot();
    return r.res;
}

} // namespace sgms
