#include "core/experiment.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "common/logging.h"
#include "common/units.h"
#include "sim/multi_client.h"
#include "trace/mmap_trace.h"
#include "trace/trace_store.h"

namespace sgms
{

const char *
mem_config_name(MemConfig m)
{
    switch (m) {
      case MemConfig::Full:
        return "full-mem";
      case MemConfig::Half:
        return "1/2-mem";
      case MemConfig::Quarter:
        return "1/4-mem";
    }
    return "?";
}

size_t
mem_pages_for(MemConfig mem, uint64_t footprint_pages)
{
    switch (mem) {
      case MemConfig::Full:
        return 0; // unlimited
      case MemConfig::Half:
        return std::max<size_t>(2, footprint_pages / 2);
      case MemConfig::Quarter:
        return std::max<size_t>(2, footprint_pages / 4);
    }
    return 0;
}

uint64_t
app_footprint_pages(const std::string &app, double scale,
                    uint32_t page_size)
{
    // Exec-engine workers hit this concurrently; the lock is held
    // across the measurement so the first caller of a key computes
    // it once and the rest wait for the memo instead of redundantly
    // streaming the same trace on every worker.
    static std::mutex mutex;
    static std::map<std::tuple<std::string, double, uint32_t>, uint64_t>
        cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto key = std::make_tuple(app, scale, page_size);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    // Route through the trace store: the default-seed trace this
    // measures is the one run() replays, so the materialization is
    // paid once for both.
    auto trace = make_stored_app_trace(app, scale);
    uint64_t fp = measure_footprint_pages(*trace, page_size);
    cache[key] = fp;
    return fp;
}

uint64_t
file_footprint_pages(const std::string &path, uint32_t page_size)
{
    // Same memo discipline as app_footprint_pages: baked files are
    // immutable (content-named, atomic rename), so path+page_size
    // identifies the measurement.
    static std::mutex mutex;
    static std::map<std::pair<std::string, uint32_t>, uint64_t> cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto key = std::make_pair(path, page_size);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    auto trace = make_mapped_trace(path);
    uint64_t fp = measure_footprint_pages(*trace, page_size);
    cache[key] = fp;
    return fp;
}

std::string
Experiment::label() const
{
    if (policy == "disk")
        return "disk_" + std::to_string(base.page_size);
    if (policy == "fullpage")
        return "p_" + std::to_string(base.page_size);
    std::string l = "sp_" + std::to_string(subpage_size);
    if (policy != "eager")
        l += " (" + policy + ")";
    return l;
}

SimConfig
Experiment::config() const
{
    SimConfig cfg = base;
    cfg.policy = policy;
    if (policy == "disk" || policy == "fullpage")
        cfg.subpage_size = cfg.page_size;
    else
        cfg.subpage_size = subpage_size;
    uint64_t fp = trace_bin.empty()
                      ? app_footprint_pages(app, scale, cfg.page_size)
                      : file_footprint_pages(trace_bin, cfg.page_size);
    cfg.mem_pages = mem_pages_for(mem, fp);
    cfg.footprint_pages_hint = fp;
    if (clients > 1)
        cfg.clients = clients;
    return cfg;
}

std::unique_ptr<TraceSource>
Experiment::trace() const
{
    if (!trace_bin.empty())
        return make_mapped_trace(trace_bin);
    return make_stored_app_trace(app, scale, seed);
}

std::vector<std::unique_ptr<TraceSource>>
Experiment::client_traces(uint32_t n) const
{
    std::vector<std::unique_ptr<TraceSource>> out;
    out.reserve(n);
    out.push_back(trace());
    if (n <= 1)
        return out;
    uint64_t len = out[0]->size_hint();
    for (uint32_t c = 1; c < n; ++c) {
        // len*c/n in 64 bits is safe: traces are far below 2^54
        // events, so the product cannot overflow for any sane n.
        uint64_t offset = len ? len * c / n : 0;
        out.push_back(
            std::make_unique<RotatedTrace>(trace(), offset));
    }
    return out;
}

namespace
{

SimResult
run_with_config(const Experiment &ex, const SimConfig &cfg)
{
    if (cfg.clients > 1) {
        auto traces = ex.client_traces(cfg.clients);
        std::vector<TraceSource *> ptrs;
        ptrs.reserve(traces.size());
        for (auto &t : traces)
            ptrs.push_back(t.get());
        MultiClientSimulator sim(cfg);
        return sim.run(ptrs);
    }
    auto trace_src = ex.trace();
    Simulator sim(cfg);
    return sim.run(*trace_src);
}

} // namespace

SimResult
Experiment::run() const
{
    SimResult res = run_with_config(*this, config());
    res.app = app;
    return res;
}

SimResult
Experiment::run(const obs::ObsSession &obs) const
{
    SimConfig cfg = config();
    obs.configure(cfg);
    SimResult res = run_with_config(*this, cfg);
    res.app = app;
    obs.finish(res);
    return res;
}

double
scale_from_env(double fallback)
{
    const char *env = std::getenv("SGMS_SCALE");
    if (!env || !*env)
        return fallback;
    char *end = nullptr;
    double v = std::strtod(env, &end);
    if (end == env || v <= 0)
        fatal("bad SGMS_SCALE value '%s'", env);
    return v;
}

} // namespace sgms
