/**
 * @file
 * Configuration of one simulation run.
 */

#ifndef SGMS_CORE_SIM_CONFIG_H
#define SGMS_CORE_SIM_CONFIG_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "fault/fault_plan.h"
#include "gms/cluster_load.h"
#include "gms/gms.h"
#include "net/params.h"
#include "net/timeline.h"
#include "proto/palcode.h"

namespace sgms
{

namespace obs
{
class Tracer;
} // namespace obs

/** Everything that parameterizes a Simulator run. */
struct SimConfig
{
    /** Full page size (bytes, power of two). */
    uint32_t page_size = 8192;

    /** Subpage size (bytes, power of two, <= page_size). */
    uint32_t subpage_size = 8192;

    /**
     * Local memory capacity in pages; 0 means unlimited (the paper's
     * "full-mem" configuration, where all faults are initial faults).
     */
    size_t mem_pages = 0;

    /** Replacement policy: "lru" (default), "fifo", "clock". */
    std::string replacement = "lru";

    /**
     * Fetch policy: "fullpage", "eager", "pipelining",
     * "pipelining-all", "pipelining-doubled", "pipelining-initial2x",
     * "lazy", "disk".
     */
    std::string policy = "fullpage";

    /**
     * Simulation clock: CPU time per trace event. The paper
     * calibrated ~12 ns/event with its cache simulator (section 3.2);
     * cache/cache_sim.h reproduces that number.
     */
    Tick ns_per_ref = ticks::from_ns(12);

    /** Network latency parameters (default: calibrated AN2). */
    NetParams net = NetParams::an2();

    /** Disk model for disk-policy runs and cold-cache misses. */
    DiskParams disk = DiskParams::default_local();

    /** Global memory cluster configuration. */
    GmsConfig gms;

    /**
     * Foreign GMS traffic at the servers (other active nodes);
     * disabled by default, as in the paper's single-client setup.
     */
    ClusterLoadConfig cluster_load;

    /** Subpage protection: hardware TLB bits or PALcode emulation. */
    ProtectionMode protection = ProtectionMode::HardwareTlb;

    /** Emulation costs when protection == SoftwarePal. */
    PalCosts pal;

    /**
     * Fault-injection schedule (fault/fault_plan.h). Disabled by
     * default; with the default plan the simulator takes exactly the
     * fault-free code paths and results are byte-identical to a
     * build without the reliability layer.
     */
    fault::FaultPlan faults;

    /**
     * Timeout/retry/degradation policy of the reliable fetch
     * protocol; consulted only when `faults` is enabled.
     */
    fault::RetryPolicy retry;

    /** Model a TLB (needed for the small-pages comparison). */
    bool tlb_enabled = false;
    uint32_t tlb_entries = 32;
    uint32_t tlb_assoc = 32; ///< fully associative by default
    Tick tlb_miss_cost = ticks::from_ns(200);

    /** Keep per-fault records (Figure 5) and distance stats (Fig 7). */
    bool record_faults = true;

    /**
     * Number of concurrent faulting client nodes sharing the cluster.
     * 1 (the default, the paper's setup) runs the single-client
     * simulator; >1 runs the multi-client kernel (sim/multi_client.h)
     * which interleaves one trace cursor per client in a single
     * simulated timeline, faulting against shared network stage
     * resources and GMS servers so contention is emergent. Clients
     * occupy nodes 0..clients-1 and servers start at node clients.
     */
    uint32_t clients = 1;

    /**
     * With clients > 1, additionally publish per-client gauge
     * breakdowns (`client.<id>.*`) next to the aggregated metrics.
     * Off by default so a 10k-client run does not explode the
     * registry or the JSON report.
     */
    bool metrics_per_client = false;

    /**
     * Expected trace footprint in pages; 0 = unknown. Purely a
     * pre-sizing hint for the page table and replacement policy —
     * never affects results, and excluded from the result-cache
     * fingerprint.
     */
    size_t footprint_pages_hint = 0;

    /**
     * Wall-clock budget for one run in milliseconds; 0 = unlimited.
     * Checked at trace-batch boundaries: when exceeded, the run
     * aborts with SimTimeoutError (core/simulator.h) so the
     * execution engine can degrade the point instead of hanging a
     * sweep. Affects only whether a result is produced, never its
     * contents, and is excluded from the result-cache fingerprint.
     */
    uint64_t wall_budget_ms = 0;

    /** Optional capture of component busy spans (Figure 2). */
    TimelineRecorder *timeline = nullptr;

    /**
     * Optional span tracer (obs/tracer.h): records fault, network-
     * stage, GMS, and block spans in simulated time for Chrome-trace
     * export. Null disables tracing (the default; instrumentation
     * then costs one pointer test per site).
     */
    obs::Tracer *tracer = nullptr;
};

} // namespace sgms

#endif // SGMS_CORE_SIM_CONFIG_H
