#include "core/json_report.h"

#include <cstdio>

namespace sgms
{

std::string
json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

void
field(std::ostream &os, const char *name, uint64_t v, bool comma = true)
{
    os << "\"" << name << "\":" << v;
    if (comma)
        os << ",";
}

void
field_ms(std::ostream &os, const char *name, Tick t, bool comma = true)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", ticks::to_ms(t));
    os << "\"" << name << "_ms\":" << buf;
    if (comma)
        os << ",";
}

} // namespace

void
write_result_json(std::ostream &os, const SimResult &r,
                  bool include_faults)
{
    os << "{";
    os << "\"app\":\"" << json_escape(r.app) << "\",";
    os << "\"policy\":\"" << json_escape(r.policy) << "\",";
    field(os, "page_size", r.page_size);
    field(os, "subpage_size", r.subpage_size);
    field(os, "mem_pages", r.mem_pages);
    field(os, "refs", r.refs);
    field(os, "page_faults", r.page_faults);
    field(os, "lazy_subpage_faults", r.lazy_subpage_faults);
    field(os, "evictions", r.evictions);
    field(os, "putpages", r.putpages);
    field(os, "global_discards", r.global_discards);
    field_ms(os, "runtime", r.runtime);
    field_ms(os, "exec", r.exec_time);
    field_ms(os, "sp_latency", r.sp_latency);
    field_ms(os, "page_wait", r.page_wait);
    field_ms(os, "recv_overhead", r.recv_overhead);
    field_ms(os, "emulation_overhead", r.emulation_overhead);
    field_ms(os, "tlb_overhead", r.tlb_overhead);
    field_ms(os, "io_overlap", r.io_overlap);
    field_ms(os, "comp_overlap", r.comp_overlap);
    field(os, "net_messages", r.net_stats.messages);
    field(os, "net_bytes", r.net_stats.bytes);
    field(os, "msgs_dropped", r.net_stats.dropped);
    field(os, "msgs_corrupted", r.net_stats.corrupted);
    field(os, "retries", r.retries);
    field(os, "timeouts", r.timeouts);
    field(os, "degraded_fetches", r.degraded_fetches);
    field(os, "duplicate_deliveries", r.duplicate_deliveries);
    field(os, "server_failures", r.server_failures);
    os << "\"metrics\":";
    obs::write_metrics_json(os, r.metrics);
    os << ",";
    os << "\"distance_histogram\":{";
    bool first = true;
    for (const auto &[d, c] : r.next_subpage_distance.bins()) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << d << "\":" << c;
    }
    os << "}";
    if (include_faults) {
        os << ",\"faults\":[";
        for (size_t i = 0; i < r.faults.size(); ++i) {
            const auto &f = r.faults[i];
            if (i)
                os << ",";
            os << "{";
            field(os, "page", f.page);
            field(os, "ref_index", f.ref_index);
            field_ms(os, "sp_wait", f.sp_wait);
            field_ms(os, "page_wait", f.page_wait);
            os << "\"from_disk\":" << (f.from_disk ? "true" : "false")
               << "}";
        }
        os << "]";
    }
    os << "}";
}

void
write_results_json(std::ostream &os,
                   const std::vector<SimResult> &results,
                   bool include_faults)
{
    os << "[";
    for (size_t i = 0; i < results.size(); ++i) {
        if (i)
            os << ",\n";
        write_result_json(os, results[i], include_faults);
    }
    os << "]\n";
}

} // namespace sgms
