#include "core/config_override.h"

#include <cstdlib>

namespace sgms
{

void
apply_config_overrides(SimConfig &cfg, const Options &opts)
{
    cfg.page_size = static_cast<uint32_t>(
        opts.get_bytes("page", cfg.page_size));
    cfg.subpage_size = static_cast<uint32_t>(
        opts.get_bytes("subpage", cfg.subpage_size));
    cfg.policy = opts.get("policy", cfg.policy);
    cfg.mem_pages = opts.get_u64("mem-pages", cfg.mem_pages);
    cfg.replacement = opts.get("replacement", cfg.replacement);
    cfg.gms.servers = static_cast<uint32_t>(
        opts.get_u64("servers", cfg.gms.servers));
    if (opts.get_bool("cold"))
        cfg.gms.warm = false;
    if (opts.get_bool("no-putpage"))
        cfg.gms.putpage_traffic = false;
    cfg.gms.server_capacity_pages = opts.get_u64(
        "global-capacity", cfg.gms.server_capacity_pages);
    cfg.cluster_load.server_utilization = opts.get_double(
        "cluster-load", cfg.cluster_load.server_utilization);
    if (opts.get_bool("software-pal"))
        cfg.protection = ProtectionMode::SoftwarePal;
    if (opts.has("tlb")) {
        cfg.tlb_enabled = true;
        uint64_t entries = opts.get_u64("tlb", 0);
        if (entries > 1) {
            cfg.tlb_entries = static_cast<uint32_t>(entries);
            cfg.tlb_assoc = cfg.tlb_entries;
        }
    }
    if (opts.get_bool("fifo-network")) {
        cfg.net.priority_scheduling = false;
        cfg.net.preemptive_demand = false;
    }
    if (opts.get_bool("proto-controller")) {
        cfg.net.pipelined_recv_fixed = ticks::from_us(60);
        cfg.net.pipelined_recv_per_byte = ticks::from_ns(31);
    }
    if (opts.has("ns-per-ref")) {
        cfg.ns_per_ref =
            ticks::from_ns(opts.get_double("ns-per-ref", 12.0));
    }
    // Fault injection: the --faults flag wins over the SGMS_FAULTS
    // environment variable (same spec syntax; fault/fault_plan.h).
    if (opts.has("faults")) {
        cfg.faults = fault::FaultPlan::parse(opts.get("faults"));
    } else if (const char *env = std::getenv("SGMS_FAULTS");
               env && *env) {
        cfg.faults = fault::FaultPlan::parse(env);
    }
    cfg.retry.max_attempts = static_cast<uint32_t>(
        opts.get_u64("fault-retries", cfg.retry.max_attempts));
    cfg.retry.timeout_multiplier = opts.get_double(
        "fault-timeout-mult", cfg.retry.timeout_multiplier);
}

const char *
config_override_help()
{
    return "config overrides: --page=N --subpage=N --policy=P "
           "--mem-pages=N --replacement=R\n  --servers=N --cold "
           "--no-putpage --global-capacity=N --cluster-load=U\n"
           "  --software-pal --tlb[=entries] --fifo-network "
           "--proto-controller --ns-per-ref=NS\n"
           "  --faults=SPEC (or SGMS_FAULTS; e.g. "
           "loss=0.05,seed=7,down=1:10:50)\n"
           "  --fault-retries=N --fault-timeout-mult=X";
}

} // namespace sgms
