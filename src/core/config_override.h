/**
 * @file
 * Map command-line options onto a SimConfig, so every tool exposes
 * the simulator's full configuration surface uniformly.
 *
 * Recognized keys (all optional):
 *   --page=<bytes>           full page size (default 8K)
 *   --subpage=<bytes>        subpage size
 *   --policy=<name>          fetch policy
 *   --mem-pages=<n>          resident capacity (0 = unlimited)
 *   --replacement=<name>     lru | fifo | clock
 *   --servers=<n>            GMS server count
 *   --cold                   cold global cache
 *   --no-putpage             suppress putpage traffic
 *   --global-capacity=<n>    per-server global memory pages
 *   --cluster-load=<u>       foreign server utilization 0..0.8
 *   --software-pal           PALcode protection instead of TLB bits
 *   --tlb[=entries]          enable the TLB model
 *   --fifo-network           disable demand priority + preemption
 *   --proto-controller       AN2 per-subpage interrupt costs for
 *                            pipelined transfers
 *   --ns-per-ref=<ns>        simulation clock
 *   --faults=<spec>          fault-injection plan (fault_plan.h);
 *                            SGMS_FAULTS env is an alternative
 *                            spelling, the flag wins
 *   --fault-retries=<n>      max fetch attempts under faults
 *   --fault-timeout-mult=<x> timeout margin over the calibrated
 *                            fetch latency
 */

#ifndef SGMS_CORE_CONFIG_OVERRIDE_H
#define SGMS_CORE_CONFIG_OVERRIDE_H

#include "common/options.h"
#include "core/sim_config.h"

namespace sgms
{

/** Apply recognized option keys onto @p cfg. */
void apply_config_overrides(SimConfig &cfg, const Options &opts);

/** One-line help text for the recognized keys. */
const char *config_override_help();

} // namespace sgms

#endif // SGMS_CORE_CONFIG_OVERRIDE_H
