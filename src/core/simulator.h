/**
 * @file
 * The trace-driven global-memory simulator (the paper's section 3.2).
 *
 * The traced program is the simulation's main thread: it consumes
 * references, advancing the clock by ns_per_ref each, and blocks when
 * it touches non-resident data. Page fetches run through the staged
 * network model as asynchronous events, so transfer pipelining,
 * congestion, receive-interrupt stealing, and the overlap of
 * transfers with execution and with each other all emerge from the
 * event interleaving rather than from closed-form approximations.
 */

#ifndef SGMS_CORE_SIMULATOR_H
#define SGMS_CORE_SIMULATOR_H

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/sim_config.h"
#include "core/sim_result.h"
#include "fault/fault_injector.h"
#include "gms/cluster_load.h"
#include "gms/gms.h"
#include "mem/page.h"
#include "mem/page_table.h"
#include "mem/tlb.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "policy/fetch_policy.h"
#include "proto/palcode.h"
#include "sim/event_queue.h"
#include "trace/trace.h"

namespace sgms
{

/**
 * Thrown by Simulator::run when SimConfig::wall_budget_ms is set and
 * the run exceeds it. Checked at trace-batch boundaries, so the
 * simulator unwinds from a consistent point (no partially-applied
 * reference); the execution engine catches this and substitutes the
 * deterministic degraded result shape.
 */
class SimTimeoutError : public std::runtime_error
{
  public:
    SimTimeoutError(uint64_t budget_ms, uint64_t refs_done)
        : std::runtime_error("simulation exceeded wall budget of " +
                             std::to_string(budget_ms) + " ms"),
          budget_ms_(budget_ms), refs_done_(refs_done)
    {}

    uint64_t budget_ms() const { return budget_ms_; }
    /** References consumed before the budget fired. */
    uint64_t refs_done() const { return refs_done_; }

  private:
    uint64_t budget_ms_;
    uint64_t refs_done_;
};

/** Runs one trace under one configuration. */
class Simulator
{
  public:
    explicit Simulator(SimConfig cfg);

    /** Simulate the whole trace; reusable (state is per-run). */
    SimResult run(TraceSource &trace);

    const SimConfig &config() const { return cfg_; }

  private:
    /** All mutable state of one run. */
    struct Run
    {
        Run(const SimConfig &cfg);

        // Declared before the components below, which register their
        // counters with it during construction.
        obs::MetricsRegistry metrics;
        obs::Tracer *tracer;

        // Fault injector (null when the plan is disabled); declared
        // before net, which holds a pointer to it.
        std::unique_ptr<fault::FaultInjector> finj;

        EventQueue eq;
        Network net;
        GmsCluster gms;
        PageGeometry geo;
        PageTable pt;
        std::unique_ptr<FetchPolicy> policy;
        PalEmulator pal;
        std::unique_ptr<Tlb> tlb;
        std::unique_ptr<ClusterLoad> cluster_load;

        // Simulator-owned counters/distributions (bound once here so
        // the per-fault paths skip the registry's name lookup).
        obs::Counter *c_page_faults;
        obs::Counter *c_subpage_faults;
        obs::Counter *c_evictions;
        obs::Counter *c_disk_faults;
        obs::Distribution *d_fault_wait;

        // Reliability metrics; registered (and non-null) only when
        // fault injection is enabled, so fault-free runs keep a
        // byte-identical metrics snapshot.
        obs::Counter *c_retries = nullptr;
        obs::Counter *c_timeouts = nullptr;
        obs::Counter *c_degraded = nullptr;
        obs::Counter *c_duplicates = nullptr;
        obs::Distribution *d_retry_delay = nullptr;

        Tick now = 0;
        uint64_t ref_index = 0;
        uint64_t wait_seq = 0;

        // Blocking bookkeeping (for overlap attribution).
        bool blocked = false;
        Tick wait_start = 0;
        Tick total_blocked = 0;

        // Receive-CPU time arriving while the program runs.
        Tick pending_steal = 0;

        SimResult res;

        /** Cumulative blocked time as of time @p t. */
        Tick
        blocked_at(Tick t) const
        {
            return blocked ? total_blocked + (t - wait_start)
                           : total_blocked;
        }
    };

    /** In-flight reliable fetch (reliability layer); see simulator.cc. */
    struct PendingFetch;

    void drain_due_events(Run &r);
    Tick wait_until(Run &r, const std::function<bool()> &pred);
    void handle_page_fault(Run &r, PageId page, const TraceEvent &ev);
    void handle_subpage_fault(Run &r, PageId page,
                              PageTable::Frame &frame,
                              const TraceEvent &ev);
    void issue_transfers(Run &r, PageId page, uint64_t fault_id,
                         const FetchPlan &plan, SubpageIndex faulted,
                         uint32_t byte_in_sub);
    void deliver(Run &r, PageId page, uint64_t fault_id, uint64_t mask,
                 bool demand, Tick issued, Tick blocked_at_issue,
                 Tick delivered, Tick recv_cpu);
    void disk_wait(Run &r, Tick latency);
    void resolve_watch(Run &r, PageTable::Frame &frame,
                       SubpageIndex touched);

    // Reliability layer (active only when cfg_.faults is enabled).
    bool server_unavailable(Run &r, NodeId srv) const;
    void note_server_down(Run &r, NodeId srv);
    void issue_transfers_reliable(Run &r, PageId page,
                                  uint64_t fault_id,
                                  const FetchPlan &plan,
                                  SubpageIndex faulted,
                                  uint32_t byte_in_sub);
    void start_attempt(Run &r, std::shared_ptr<PendingFetch> st,
                       FetchPlan plan, Tick when);
    void on_fetch_timeout(Run &r, std::shared_ptr<PendingFetch> st,
                          uint64_t generation, Tick when);
    void degrade_to_disk(Run &r, std::shared_ptr<PendingFetch> st,
                         uint64_t missing, Tick when);
    void finish_if_complete(Run &r, PendingFetch &st);

    SimConfig cfg_;
};

} // namespace sgms

#endif // SGMS_CORE_SIMULATOR_H
