/**
 * @file
 * Experiment runner helpers shared by the benches and examples.
 *
 * Encapsulates the paper's experimental conventions: memory
 * configurations are expressed as fractions of an application's
 * footprint ("full-mem", "1/2-mem", "1/4-mem"), policies are labelled
 * disk_8192 / p_8192 / sp_<size>, and the global cache is warm.
 */

#ifndef SGMS_CORE_EXPERIMENT_H
#define SGMS_CORE_EXPERIMENT_H

#include <string>
#include <vector>

#include "core/sim_config.h"
#include "core/sim_result.h"
#include "core/simulator.h"
#include "obs/session.h"
#include "trace/apps.h"

namespace sgms
{

/** The paper's three memory configurations. */
enum class MemConfig
{
    Full,    ///< as much memory as the program needs
    Half,    ///< half the maximum
    Quarter, ///< one quarter of the maximum
};

const char *mem_config_name(MemConfig m);

/** Resident-set capacity in pages for @p mem given a footprint. */
size_t mem_pages_for(MemConfig mem, uint64_t footprint_pages);

/**
 * Footprint (pages) of an application model at a scale; memoized,
 * since measuring it means streaming the whole trace once.
 */
uint64_t app_footprint_pages(const std::string &app, double scale,
                             uint32_t page_size = 8192);

/**
 * Footprint (pages) of a baked SGMB trace file; memoized by path,
 * since measuring it means replaying the mapping once.
 */
uint64_t file_footprint_pages(const std::string &path,
                              uint32_t page_size = 8192);

/** One experiment: app x policy x subpage size x memory config. */
struct Experiment
{
    std::string app = "modula3";
    double scale = 1.0;
    uint64_t seed = 1;

    /**
     * When non-empty: replay this baked SGMB trace file (zero-copy
     * mmap, trace/mmap_trace.h) instead of the synthetic model named
     * by app/scale/seed, which then serve only as labels. This is
     * the real-trace ingestion path (`--trace-bin=FILE`); the result
     * cache keys on the file's header hash, so a re-baked file is a
     * different point. Must be SGMB (bake with trace_convert).
     */
    std::string trace_bin;

    /** "disk", "fullpage", "eager", "pipelining", ... */
    std::string policy = "eager";

    /** Subpage size; ignored for disk/fullpage (always 8K). */
    uint32_t subpage_size = 1024;

    MemConfig mem = MemConfig::Half;

    /**
     * Concurrent faulting clients sharing the simulated cluster
     * (base.clients mirrored up for sweeps). 1 runs the classic
     * single-client simulator; >1 runs the multi-client kernel, each
     * client replaying the same trace rotated to a different starting
     * offset (client c starts at event len*c/N) so the working sets
     * collide without being lock-step identical.
     */
    uint32_t clients = 1;

    /**
     * Base configuration; policy/subpage/mem fields are filled in by
     * run(). Lets callers override network parameters, protection
     * mode, replacement policy, etc.
     */
    SimConfig base;

    /** Paper-style label, e.g. "sp_1024", "p_8192", "disk_8192". */
    std::string label() const;

    /** Build the final SimConfig. */
    SimConfig config() const;

    /**
     * The trace this experiment replays: an mmap cursor when
     * trace_bin is set, the shared trace store otherwise.
     */
    std::unique_ptr<TraceSource> trace() const;

    /**
     * Per-client trace cursors for the multi-client kernel: client c
     * gets the experiment trace rotated to offset len*c/N. At n=1
     * this is the unrotated trace() in a one-element vector.
     */
    std::vector<std::unique_ptr<TraceSource>> client_traces(uint32_t n) const;

    /** Run it. */
    SimResult run() const;

    /**
     * Run it under an observability session: the session's tracer is
     * attached for the run and its end-of-run reporting (metrics
     * table, fault timeline, trace file) fires before returning.
     */
    SimResult run(const obs::ObsSession &obs) const;
};

/**
 * Read the trace scale from SGMS_SCALE (for quick bench runs),
 * falling back to @p fallback.
 */
double scale_from_env(double fallback = 1.0);

} // namespace sgms

#endif // SGMS_CORE_EXPERIMENT_H
