/**
 * @file
 * PALcode software subpage-protection cost model.
 *
 * The prototype implements subpage valid bits in software by editing
 * the Alpha's PALcode: accesses to pages whose subpages are not all
 * valid trap, and the PALcode emulates the load or store after
 * checking the valid bits. The paper's Table 1 reports the measured
 * emulation costs; this model charges them during simulation when
 * software protection is selected (the default simulation mode is
 * TLB-based hardware support with zero overhead, as in the paper).
 */

#ifndef SGMS_PROTO_PALCODE_H
#define SGMS_PROTO_PALCODE_H

#include <cstdint>

#include "common/types.h"
#include "obs/metrics.h"

namespace sgms
{

/** How accesses to resident subpages of incomplete pages trap. */
enum class ProtectionMode
{
    /** Per-subpage TLB valid bits; no overhead on valid accesses. */
    HardwareTlb,

    /** PALcode emulation of loads/stores on incomplete pages. */
    SoftwarePal,
};

/** Table 1 costs (DEC Alpha 250, 266 MHz). */
struct PalCosts
{
    Tick fast_load = ticks::from_ns(195);   ///< 52 cycles
    Tick slow_load = ticks::from_ns(361);   ///< 95 cycles
    Tick fast_store = ticks::from_ns(241);  ///< 64 cycles
    Tick slow_store = ticks::from_ns(383);  ///< 102 cycles
    Tick null_pal_call = ticks::from_ns(56); ///< 15 cycles
    Tick l1_hit = ticks::from_ns(11);       ///< 3 cycles
    Tick l2_hit = ticks::from_ns(30);       ///< 8 cycles
    Tick l2_miss = ticks::from_ns(315);     ///< 84 cycles

    static PalCosts alpha250() { return PalCosts{}; }
};

/**
 * Stateful emulation-cost model: an access is "fast" when the
 * PALcode's cached valid bits are for the same page as the previous
 * emulated access, "slow" otherwise.
 */
class PalEmulator
{
  public:
    explicit PalEmulator(PalCosts costs = PalCosts::alpha250())
        : costs_(costs)
    {}

    /**
     * Cost of emulating an access to a valid subpage of an
     * incomplete page.
     */
    Tick
    access_cost(PageId page, bool write)
    {
        bool fast = page == last_page_;
        last_page_ = page;
        ++emulated_;
        if (c_fast_)
            (fast ? c_fast_ : c_slow_)->inc();
        if (write)
            return fast ? costs_.fast_store : costs_.slow_store;
        return fast ? costs_.fast_load : costs_.slow_load;
    }

    /**
     * Register the emulation counters: tlb.emulation_hits counts
     * accesses served with the PALcode's cached valid bits (the
     * Table 1 "fast" case), tlb.emulation_misses the "slow" case.
     */
    void
    bind_metrics(obs::MetricsRegistry &m)
    {
        c_fast_ = &m.counter("tlb.emulation_hits");
        c_slow_ = &m.counter("tlb.emulation_misses");
    }

    /** A page completed; drop the cached-valid-bits affinity. */
    void
    page_completed(PageId page)
    {
        if (last_page_ == page)
            last_page_ = NO_PAGE;
    }

    uint64_t emulated() const { return emulated_; }

    const PalCosts &costs() const { return costs_; }

  private:
    static constexpr PageId NO_PAGE = ~0ULL;

    PalCosts costs_;
    PageId last_page_ = NO_PAGE;
    uint64_t emulated_ = 0;
    obs::Counter *c_fast_ = nullptr;
    obs::Counter *c_slow_ = nullptr;
};

} // namespace sgms

#endif // SGMS_PROTO_PALCODE_H
