#include "trace/trace.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace sgms
{

uint64_t
measure_footprint_pages(TraceSource &trace, uint32_t page_size)
{
    SGMS_ASSERT(is_pow2(page_size));
    uint32_t shift = log2_exact(page_size);

    // Trace address spaces are dense from 0, so a growable bitmap
    // covers essentially every page in one bit; a hash set only
    // backstops pathological ids (e.g. hand-written text traces).
    // This runs once per (app, scale, page_size) to size the memory
    // configurations, over the full trace — per-reference hashing
    // made it as expensive as a simulation pass.
    constexpr uint64_t BITMAP_LIMIT = 1ULL << 26; // 8 MiB of bits
    std::vector<uint64_t> bits;
    std::unordered_set<PageId> overflow;

    TraceEvent batch[512];
    trace.reset();
    size_t n;
    while ((n = trace.next_batch(batch, 512)) > 0) {
        for (size_t i = 0; i < n; ++i) {
            PageId page = batch[i].addr >> shift;
            if (page < BITMAP_LIMIT) {
                size_t word = page >> 6;
                if (word >= bits.size()) {
                    size_t cap = std::max<size_t>(
                        std::max<size_t>(64, word + 1),
                        bits.size() * 2);
                    bits.resize(cap, 0);
                }
                bits[word] |= 1ULL << (page & 63);
            } else {
                overflow.insert(page);
            }
        }
    }
    trace.reset();

    uint64_t count = overflow.size();
    for (uint64_t word : bits)
        count += static_cast<uint64_t>(__builtin_popcountll(word));
    return count;
}

} // namespace sgms
