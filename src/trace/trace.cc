#include "trace/trace.h"

#include <unordered_set>

#include "common/logging.h"

namespace sgms
{

uint64_t
measure_footprint_pages(TraceSource &trace, uint32_t page_size)
{
    SGMS_ASSERT(is_pow2(page_size));
    uint32_t shift = log2_exact(page_size);
    std::unordered_set<PageId> pages;
    TraceEvent ev;
    trace.reset();
    while (trace.next(ev))
        pages.insert(ev.addr >> shift);
    trace.reset();
    return pages.size();
}

} // namespace sgms
