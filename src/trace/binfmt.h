/**
 * @file
 * SGMB: the compact binary memref trace format.
 *
 * Layout (all multi-byte fields in the writing host's byte order,
 * gated by the endianness tag; see below):
 *
 *   offset  size  field
 *   ------  ----  -----------------------------------------------
 *        0     4  magic "SGMB"
 *        4     4  format version (currently 1)
 *        8     4  endianness tag 0x01020304
 *       12     4  record size in bytes (currently 8)
 *       16     8  reference count
 *       24     8  payload hash (FNV-1a 64 over the record bytes)
 *       32     8  generator seed (0 when unknown)
 *       40     8  generator scale (IEEE-754 double bits; 0 = unknown)
 *       48    16  application name, NUL-padded
 *       64     -  records
 *
 * Each record is one 64-bit word, (addr << 1) | write — the same
 * packing the in-memory trace store uses (trace/trace_store.h), so a
 * mapped file replays through the exact unpack loop a heap buffer
 * does and the two are byte-equivalent by construction. The header
 * is exactly 64 bytes, so records in a mapped file are 8-byte
 * aligned.
 *
 * Versioning rules (DESIGN.md §14): the record layout of a given
 * version never changes. Any incompatible change (record width, new
 * mandatory header semantics) bumps the version, and readers reject
 * versions they do not know. The endianness tag is written in native
 * byte order; a reader whose native order disagrees (file written on
 * a BE machine, or vice versa) sees a scrambled tag and rejects the
 * file instead of silently replaying byte-swapped addresses.
 *
 * Readers never trust the header: magic, version, endianness,
 * record size, and payload length against the actual file size are
 * all validated before any record is touched, so a truncated,
 * corrupted, or alien file is a clean error, never UB.
 */

#ifndef SGMS_TRACE_BINFMT_H
#define SGMS_TRACE_BINFMT_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "trace/trace.h"

namespace sgms
{

/** Current SGMB format version. */
inline constexpr uint32_t kBinTraceVersion = 1;

/** Fixed header size; records start at this offset. */
inline constexpr size_t kBinTraceHeaderBytes = 64;

/** Fixed record width of version 1. */
inline constexpr size_t kBinTraceRecordBytes = sizeof(uint64_t);

/** Pack an event into its on-disk (and in-store) word. */
inline uint64_t
pack_trace_event(const TraceEvent &ev)
{
    return (ev.addr << 1) | (ev.write ? 1u : 0u);
}

/** Unpack an on-disk record word. */
inline TraceEvent
unpack_trace_event(uint64_t packed)
{
    return {packed >> 1, (packed & 1) != 0};
}

/** Decoded and validated SGMB header metadata. */
struct BinTraceHeader
{
    uint32_t version = kBinTraceVersion;
    uint64_t ref_count = 0;
    uint64_t payload_hash = 0;
    uint64_t seed = 0;
    double scale = 0.0;
    std::string app;
};

/**
 * FNV-1a 64 over a byte range (the payload-hash function). Pass the
 * previous return value as @p basis to hash incrementally.
 */
uint64_t fnv1a_bytes(const void *data, size_t len,
                     uint64_t basis = 14695981039346656037ull);

/**
 * Stream @p src into @p path as SGMB (one pass; the count and
 * payload hash are patched into the header afterwards). @p app,
 * @p scale and @p seed are recorded as provenance metadata. Leaves
 * @p src rewound. fatal() on I/O errors or on an address that uses
 * the top bit (the packing reserves it).
 *
 * @return the number of records written.
 */
uint64_t write_bin_trace(TraceSource &src, const std::string &path,
                         const std::string &app = "", double scale = 0.0,
                         uint64_t seed = 0);

/**
 * Validate an in-memory header block. @p len is the number of bytes
 * available at @p data; @p file_size is the total file size used to
 * check the payload for truncation. On failure returns false and
 * puts a one-line reason in @p error.
 */
bool parse_bin_header(const void *data, size_t len, uint64_t file_size,
                      BinTraceHeader &hdr, std::string &error);

/**
 * Read and validate the header of @p path (64-byte read; the payload
 * is length-checked but not hashed). False + @p error on any problem
 * including an unreadable file.
 */
bool read_bin_header(const std::string &path, BinTraceHeader &hdr,
                     std::string &error);

/** True if @p path starts with the SGMB magic (not a full validation). */
bool is_bin_trace(const std::string &path);

} // namespace sgms

#endif // SGMS_TRACE_BINFMT_H
