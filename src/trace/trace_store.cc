#include "trace/trace_store.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <tuple>

#include "common/logging.h"
#include "trace/apps.h"

namespace sgms
{

namespace
{

struct Store
{
    std::mutex mutex;
    std::map<std::tuple<std::string, double, uint64_t>,
             std::shared_ptr<const PackedTrace>>
        traces;
    uint64_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t fallbacks = 0;
};

Store &
store()
{
    static Store s;
    return s;
}

bool
store_enabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("SGMS_TRACE_STORE");
        if (!env || !*env)
            return true;
        return !(env[0] == '0' && env[1] == '\0');
    }();
    return enabled;
}

uint64_t
store_budget_bytes()
{
    static const uint64_t budget = [] {
        const char *env = std::getenv("SGMS_TRACE_STORE_MAX_MB");
        uint64_t mb = 256;
        if (env && *env) {
            char *end = nullptr;
            unsigned long long v = std::strtoull(env, &end, 10);
            if (end == env)
                fatal("bad SGMS_TRACE_STORE_MAX_MB value '%s'", env);
            mb = v;
        }
        return mb * 1024 * 1024;
    }();
    return budget;
}

std::shared_ptr<const PackedTrace>
materialize(const std::string &app, double scale, uint64_t seed)
{
    auto gen = make_app_trace(app, scale, seed);
    auto packed = std::make_shared<PackedTrace>();
    packed->reserve(gen->size_hint());
    TraceEvent batch[512];
    size_t n;
    while ((n = gen->next_batch(batch, 512)) > 0) {
        for (size_t i = 0; i < n; ++i) {
            // The top address bit carries the write flag; synthetic
            // (and any sane) traces never use it.
            SGMS_ASSERT(batch[i].addr < (1ULL << 63));
            packed->push_back((batch[i].addr << 1) |
                              (batch[i].write ? 1 : 0));
        }
    }
    return packed;
}

} // namespace

std::unique_ptr<TraceSource>
make_stored_app_trace(const std::string &app, double scale,
                      uint64_t seed)
{
    if (!store_enabled())
        return make_app_trace(app, scale, seed);

    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    auto key = std::make_tuple(app, scale, seed);
    auto it = s.traces.find(key);
    if (it != s.traces.end()) {
        ++s.hits;
        return std::make_unique<ReplayTrace>(it->second);
    }

    // Size is known exactly up front (synthetic traces declare their
    // reference count), so the budget check precedes the expensive
    // generation pass.
    uint64_t need =
        make_app_spec(app, scale).total_refs() * sizeof(uint64_t);
    if (s.bytes + need > store_budget_bytes()) {
        ++s.fallbacks;
        return make_app_trace(app, scale, seed);
    }

    // Materialize under the lock: concurrent requesters of the same
    // trace wait for one generation pass instead of racing through
    // their own (same discipline as the footprint memo).
    auto packed = materialize(app, scale, seed);
    s.bytes += packed->size() * sizeof(uint64_t);
    ++s.misses;
    s.traces[key] = packed;
    return std::make_unique<ReplayTrace>(std::move(packed));
}

TraceStoreStats
trace_store_stats()
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    TraceStoreStats stats;
    stats.hits = s.hits;
    stats.misses = s.misses;
    stats.fallbacks = s.fallbacks;
    stats.bytes = s.bytes;
    return stats;
}

void
trace_store_clear()
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.traces.clear();
    s.bytes = 0;
}

} // namespace sgms
