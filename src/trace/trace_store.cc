#include "trace/trace_store.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <tuple>

#include <unistd.h>

#include "common/logging.h"
#include "trace/apps.h"
#include "trace/binfmt.h"
#include "trace/mmap_trace.h"

namespace sgms
{

namespace
{

using TraceKey = std::tuple<std::string, double, uint64_t>;

struct Store
{
    std::mutex mutex;
    std::map<TraceKey, std::shared_ptr<const PackedTrace>> traces;
    std::map<TraceKey, std::shared_ptr<const MappedTraceFile>> mapped;
    uint64_t bytes = 0;
    uint64_t mapped_bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t fallbacks = 0;
    uint64_t baked_files = 0;
    uint64_t mapped_files = 0;

    // Env-initialized, test-overridable configuration. Guarded by
    // the same mutex as the maps.
    std::optional<bool> enabled_override;
    std::optional<std::string> dir_override;
    std::optional<uint64_t> budget_override;
};

Store &
store()
{
    static Store s;
    return s;
}

bool
env_enabled()
{
    const char *env = std::getenv("SGMS_TRACE_STORE");
    if (!env || !*env)
        return true;
    return !(env[0] == '0' && env[1] == '\0');
}

std::string
env_dir()
{
    const char *env = std::getenv("SGMS_TRACE_DIR");
    return env ? env : "";
}

uint64_t
env_budget_bytes()
{
    const char *env = std::getenv("SGMS_TRACE_STORE_MAX_MB");
    uint64_t mb = 256;
    if (env && *env) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (end == env)
            fatal("bad SGMS_TRACE_STORE_MAX_MB value '%s'", env);
        mb = v;
    }
    return mb * 1024 * 1024;
}

// The callers below hold s.mutex.

bool
store_enabled(Store &s)
{
    return s.enabled_override ? *s.enabled_override : env_enabled();
}

std::string
store_dir(Store &s)
{
    return s.dir_override ? *s.dir_override : env_dir();
}

uint64_t
store_budget_bytes(Store &s)
{
    return s.budget_override ? *s.budget_override : env_budget_bytes();
}

std::shared_ptr<const PackedTrace>
materialize(const std::string &app, double scale, uint64_t seed)
{
    auto gen = make_app_trace(app, scale, seed);
    auto packed = std::make_shared<PackedTrace>();
    packed->reserve(gen->size_hint());
    TraceEvent batch[512];
    size_t n;
    while ((n = gen->next_batch(batch, 512)) > 0) {
        for (size_t i = 0; i < n; ++i) {
            // The top address bit carries the write flag; synthetic
            // (and any sane) traces never use it.
            SGMS_ASSERT(batch[i].addr < (1ULL << 63));
            packed->push_back((batch[i].addr << 1) |
                              (batch[i].write ? 1 : 0));
        }
    }
    return packed;
}

/**
 * An existing baked file is reusable only if its provenance matches
 * the request exactly; anything else (a stale copy under a colliding
 * name, a truncation) is re-baked over.
 */
bool
bake_matches(const BinTraceHeader &hdr, const std::string &app,
             double scale, uint64_t seed)
{
    // The header stores at most 15 name bytes.
    std::string app15 = app.substr(0, 15);
    return hdr.app == app15 && hdr.scale == scale && hdr.seed == seed;
}

/** Bake (app, scale, seed) to @p path via tmp+rename; fatal on I/O. */
void
bake_to(const std::string &app, double scale, uint64_t seed,
        const std::string &dir, const std::string &path)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        fatal("cannot create trace directory '%s': %s", dir.c_str(),
              ec.message().c_str());
    static std::atomic<uint64_t> counter{0};
    std::string tmp = dir + "/.tmp." + std::to_string(::getpid()) +
                      "." + std::to_string(counter++) + ".sgmb";
    auto gen = make_app_trace(app, scale, seed);
    write_bin_trace(*gen, tmp, app, scale, seed);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        fatal("cannot rename baked trace into '%s'", path.c_str());
    }
}

/**
 * Serve (app, scale, seed) from the mapped tier: open a valid
 * existing bake or write one, map it, and account for it. Returns
 * nullptr (and warns) if the directory is unusable, in which case
 * the caller falls through to the heap tier.
 */
std::shared_ptr<const MappedTraceFile>
map_baked(Store &s, const std::string &app, double scale, uint64_t seed,
          const std::string &dir)
{
    std::string path = baked_trace_path(dir, app, scale, seed);

    BinTraceHeader hdr;
    std::string error;
    bool have = read_bin_header(path, hdr, error) &&
                bake_matches(hdr, app, scale, seed);
    if (!have) {
        bake_to(app, scale, seed, dir, path);
        ++s.baked_files;
    }
    auto file = MappedTraceFile::try_open(path, error);
    if (!file) {
        warn("baked trace '%s' unusable (%s); falling back to the "
             "heap store",
             path.c_str(), error.c_str());
        return nullptr;
    }
    ++s.mapped_files;
    s.mapped_bytes += file->mapped_bytes();
    return file;
}

} // namespace

std::string
baked_trace_path(const std::string &dir, const std::string &app,
                 double scale, uint64_t seed)
{
    // Content-style naming (exec::ResultCache discipline): the hash
    // covers everything that determines the bytes, so a format bump
    // or a different scale/seed is a different file, never a stale
    // read.
    char meta[128];
    std::snprintf(meta, sizeof(meta), "sgmb|v%u|%.17g|%llu|",
                  kBinTraceVersion, scale,
                  static_cast<unsigned long long>(seed));
    uint64_t h = fnv1a_bytes(meta, std::strlen(meta));
    h = fnv1a_bytes(app.data(), app.size(), h);
    char name[160];
    std::snprintf(name, sizeof(name), "%s-%016llx.sgmb", app.c_str(),
                  static_cast<unsigned long long>(h));
    return dir + "/" + name;
}

std::string
bake_app_trace(const std::string &app, double scale, uint64_t seed,
               const std::string &dir)
{
    std::string path = baked_trace_path(dir, app, scale, seed);
    BinTraceHeader hdr;
    std::string error;
    if (read_bin_header(path, hdr, error) &&
        bake_matches(hdr, app, scale, seed))
        return path;
    bake_to(app, scale, seed, dir, path);
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    ++s.baked_files;
    return path;
}

std::unique_ptr<TraceSource>
make_stored_app_trace(const std::string &app, double scale,
                      uint64_t seed)
{
    Store &s = store();
    std::unique_lock<std::mutex> lock(s.mutex);
    if (!store_enabled(s)) {
        lock.unlock();
        return make_app_trace(app, scale, seed);
    }
    auto key = std::make_tuple(app, scale, seed);
    auto mit = s.mapped.find(key);
    if (mit != s.mapped.end()) {
        ++s.hits;
        return std::make_unique<MmapReplayTrace>(mit->second);
    }
    auto it = s.traces.find(key);
    if (it != s.traces.end()) {
        ++s.hits;
        return std::make_unique<ReplayTrace>(it->second);
    }

    // Mapped tier first: a bake costs one generation pass ever
    // (across processes), the mapping is shared physically with
    // workers, and mapped bytes are file-backed so the heap budget
    // does not apply.
    std::string dir = store_dir(s);
    if (!dir.empty()) {
        auto file = map_baked(s, app, scale, seed, dir);
        if (file) {
            ++s.misses;
            s.mapped[key] = file;
            return std::make_unique<MmapReplayTrace>(std::move(file));
        }
    }

    // Heap tier. Size is known exactly up front (synthetic traces
    // declare their reference count), so the budget check precedes
    // the expensive generation pass. Only resident heap
    // materializations count against the budget.
    uint64_t need =
        make_app_spec(app, scale).total_refs() * sizeof(uint64_t);
    if (s.bytes + need > store_budget_bytes(s)) {
        ++s.fallbacks;
        lock.unlock();
        return make_app_trace(app, scale, seed);
    }

    // Materialize under the lock: concurrent requesters of the same
    // trace wait for one generation pass instead of racing through
    // their own (same discipline as the footprint memo).
    auto packed = materialize(app, scale, seed);
    s.bytes += packed->size() * sizeof(uint64_t);
    ++s.misses;
    s.traces[key] = packed;
    return std::make_unique<ReplayTrace>(std::move(packed));
}

TraceStoreStats
trace_store_stats()
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    TraceStoreStats stats;
    stats.hits = s.hits;
    stats.misses = s.misses;
    stats.fallbacks = s.fallbacks;
    stats.bytes = s.bytes;
    stats.mapped_bytes = s.mapped_bytes;
    stats.baked_files = s.baked_files;
    stats.mapped_files = s.mapped_files;
    return stats;
}

void
trace_store_clear()
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.traces.clear();
    s.mapped.clear();
    s.bytes = 0;
    s.mapped_bytes = 0;
}

void
trace_store_set_enabled(bool enabled)
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.enabled_override = enabled;
}

void
trace_store_set_dir(const std::string &dir)
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.dir_override = dir;
}

void
trace_store_set_budget_bytes(uint64_t bytes)
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.budget_override = bytes;
}

std::string
trace_store_dir()
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    return store_dir(s);
}

} // namespace sgms
