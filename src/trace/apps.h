/**
 * @file
 * Workload models of the paper's five traced applications.
 *
 * Each builder returns a WorkloadSpec tuned to reproduce the trace
 * properties the paper reports (Section 4):
 *
 *   app       refs    faults (full-mem .. 1/4-mem)   character
 *   -------   -----   ----------------------------   ------------------
 *   modula3    87M     773 .. 5655   compile units; bursty phases
 *   ld        102M    6807 .. 10629  streaming link; big footprint
 *   atom       73M    1175 .. 5275   smooth, uniform fault rate
 *   render    245M    1433 .. 6145   scene traversal of a large DB
 *   gdb        .5M     138 .. 882    tiny init trace; highly bursty
 *
 * @p scale scales both reference counts and region sizes, so scaled
 * runs keep the same fault-per-reference structure while running
 * proportionally faster. scale=1 matches the paper's trace sizes.
 */

#ifndef SGMS_TRACE_APPS_H
#define SGMS_TRACE_APPS_H

#include <memory>
#include <string>
#include <vector>

#include "trace/synthetic.h"

namespace sgms
{

/** DEC SRC Modula-3 compiler compiling the smalldb library. */
WorkloadSpec make_modula3_spec(double scale = 1.0);

/** Unix object-file linker linking Digital Unix. */
WorkloadSpec make_ld_spec(double scale = 1.0);

/** ATOM instrumenting the gzip binary. */
WorkloadSpec make_atom_spec(double scale = 1.0);

/** Graphics renderer walking a >100MB precomputed scene database. */
WorkloadSpec make_render_spec(double scale = 1.0);

/** GNU debugger initialization phase. */
WorkloadSpec make_gdb_spec(double scale = 1.0);

/** Names of all five application models. */
const std::vector<std::string> &app_names();

/** Build a spec by name ("modula3", "ld", "atom", "render", "gdb"). */
WorkloadSpec make_app_spec(const std::string &name, double scale = 1.0);

/** Convenience: construct the generator directly. */
std::unique_ptr<SyntheticTrace>
make_app_trace(const std::string &name, double scale = 1.0,
               uint64_t seed = 1);

} // namespace sgms

#endif // SGMS_TRACE_APPS_H
