/**
 * @file
 * Phase-structured synthetic trace generation.
 *
 * The paper's traces came from instrumenting real applications with
 * ATOM; we do not have those binaries or machines, so we generate
 * traces from workload models that reproduce the properties the paper
 * documents and that its conclusions rest on:
 *
 *  - footprint and fault counts per memory configuration (Section 4),
 *  - spatial locality within pages: the next subpage accessed after a
 *    fault is overwhelmingly the +1 neighbour (Figure 7),
 *  - temporal clustering of faults: bursts at phase changes for most
 *    programs, smooth accumulation for Atom (Figures 6 and 10).
 *
 * A workload is a list of phases; each phase interleaves accesses to
 * a "hot" region (stack / globals / code, always recently used) with
 * one of three patterns over a page region:
 *
 *  - DenseScan: sequential small-stride sweep that touches every
 *    word before leaving a page (drives rest-of-page blocking: the
 *    worst-case segment of the paper's Figure 5),
 *  - SweepScan: one touch per page per pass, the touch offset
 *    advancing by one subpage each pass (iterative processing; this
 *    produces fault bursts that overlap their transfers — best-case
 *    Figure 5 — while the *next* access to a faulted page still
 *    lands on the +1 neighbouring subpage, Figure 7),
 *  - SparseScan: a few random touches per page in page order,
 *  - Compute: Zipf-distributed references within a working set
 *    (drives execution time with few faults).
 */

#ifndef SGMS_TRACE_SYNTHETIC_H
#define SGMS_TRACE_SYNTHETIC_H

#include <string>
#include <vector>

#include "common/random.h"
#include "trace/trace.h"

namespace sgms
{

/** One phase of a synthetic workload. */
struct PhaseSpec
{
    enum class Kind
    {
        DenseScan,
        SweepScan,
        SparseScan,
        Compute,
    };

    Kind kind = Kind::Compute;

    /** Page region [page_lo, page_hi) the pattern covers. */
    uint64_t page_lo = 0;
    uint64_t page_hi = 0;

    /** Total references emitted (pattern + hot interleave). */
    uint64_t refs = 0;

    /** Fraction of references that go to the hot region instead. */
    double hot_frac = 0.5;

    /** Fraction of references that are writes. */
    double write_frac = 0.3;

    /** DenseScan: stride in bytes. */
    uint32_t stride = 8;

    /** SparseScan: touches emitted per visited page. */
    uint32_t touches_per_page = 3;

    /** Compute: Zipf skew over the region's pages. */
    double zipf_skew = 0.7;

    /**
     * SweepScan: which pass of the overall iteration this phase
     * represents; the per-page touch offset is
     * (sweep_pass * sweep_step) % page_size, plus jitter.
     */
    uint32_t sweep_pass = 0;

    /** SweepScan: offset advance per pass, in bytes. */
    uint32_t sweep_step = 1024;

    /** SweepScan: random jitter added to the touch offset. */
    uint32_t sweep_jitter = 64;

    /**
     * SweepScan: number of *consecutive* subpage-stride offsets
     * touched back-to-back per page visit. With 1 (default) a visit
     * touches a single subpage — a fault that overlaps its
     * rest-of-page transfer completely. With 2-3 the program blocks
     * on the +1 neighbour right after the fault: the class of fault
     * that eager fullpage fetch cannot help but subpage pipelining
     * can (the paper's Figure 8 page_wait reduction).
     */
    uint32_t sweep_touches = 1;

    /**
     * SweepScan: when nonzero, each visit ends with one extra
     * reference @p sweep_record_bytes past its last touch — reading
     * a small record. Whether that tail crosses into the next
     * subpage depends on where the jittered offset landed, so the
     * crossing probability grows as subpages shrink. This is the
     * *spatial* cost of small subpages (paper section 4.1: "smaller
     * subpages increase the probability of accessing another
     * subpage"), and it is what makes 256-byte subpages lose to 1-2K
     * ones.
     */
    uint32_t sweep_record_bytes = 0;
};

/** A complete synthetic workload description. */
struct WorkloadSpec
{
    std::string name;

    /** Page size the region layout assumes. */
    uint32_t page_size = 8192;

    /** Hot region is pages [0, hot_pages). */
    uint64_t hot_pages = 0;

    /**
     * Skew of the Zipf distribution over hot-region cache lines.
     * Real stack/global accesses are highly concentrated; this is
     * what makes the cache-simulator calibration land near the
     * paper's 12 ns per reference.
     */
    double hot_zipf_skew = 1.1;

    std::vector<PhaseSpec> phases;

    /** Sum of phase reference counts. */
    uint64_t total_refs() const;

    /** One past the highest page any phase (or the hot set) touches. */
    uint64_t page_span() const;
};

/** Deterministic trace generator executing a WorkloadSpec. */
class SyntheticTrace : public TraceSource
{
  public:
    SyntheticTrace(WorkloadSpec spec, uint64_t seed = 1);

    bool next(TraceEvent &ev) override;
    size_t next_batch(TraceEvent *out, size_t n) override;
    void reset() override;
    uint64_t size_hint() const override { return spec_.total_refs(); }

    const WorkloadSpec &spec() const { return spec_; }

  private:
    /** next() without the virtual dispatch, for next_batch's loop. */
    bool generate(TraceEvent &ev);
    /** Emit the next pattern (non-hot) address for the active phase. */
    Addr pattern_addr(const PhaseSpec &ph);
    /** A Zipf-over-lines address in the hot region. */
    Addr hot_addr();
    void enter_phase(size_t idx);

    WorkloadSpec spec_;
    uint64_t seed_;
    Rng rng_;

    // Precomputed Zipf samplers (pow() per draw is too slow for
    // hundred-million-reference traces).
    ZipfTable hot_table_;
    std::vector<ZipfTable> phase_tables_; // indexed by phase

    size_t phase_idx_ = 0;
    uint64_t phase_left_ = 0;   // refs remaining in active phase

    // DenseScan state.
    Addr scan_addr_ = 0;

    // SparseScan / SweepScan state.
    uint64_t sparse_page_ = 0;
    uint32_t sparse_touch_ = 0;
    uint64_t sweep_last_offset_ = 0;
};

} // namespace sgms

#endif // SGMS_TRACE_SYNTHETIC_H
