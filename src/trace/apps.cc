#include "trace/apps.h"

#include <algorithm>
#include <tuple>
#include <cmath>

#include "common/logging.h"

namespace sgms
{

namespace
{

/** Scale a page count, keeping at least a couple of pages. */
uint64_t
spages(double pages, double scale)
{
    return std::max<uint64_t>(2, std::llround(pages * scale));
}

/** Scale a reference count. */
uint64_t
srefs(double refs, double scale)
{
    return std::max<uint64_t>(16, std::llround(refs * scale));
}

/**
 * Page range of chunk @p i of @p n over [lo, lo+total). Guaranteed
 * non-empty even when total < n (chunks then overlap, which just
 * means extra revisits at tiny scales).
 */
std::pair<uint64_t, uint64_t>
chunk(uint64_t lo, uint64_t total, int i, int n)
{
    uint64_t a = lo + static_cast<uint64_t>(i) * total / n;
    uint64_t b = lo + static_cast<uint64_t>(i + 1) * total / n;
    if (b <= a)
        b = a + 1;
    return {a, b};
}

/**
 * One sweep pass over [lo, hi): each page is visited once per pass,
 * spending ~@p gap references per visit (the visit's pattern touches
 * plus its record tail, interleaved with hot compute). The gap sets
 * the inter-fault spacing during the pass's fault burst, and with it
 * how much of the rest-of-page transfers overlap waiting on other
 * faults (I/O overlap) versus execution (computational overlap) —
 * the paper's 53-83% split.
 */
PhaseSpec
sweep_pass(uint64_t lo, uint64_t hi, uint32_t pass, double gap,
           uint32_t touches = 1)
{
    PhaseSpec ph;
    ph.kind = PhaseSpec::Kind::SweepScan;
    ph.page_lo = lo;
    ph.page_hi = hi;
    ph.sweep_pass = pass;
    ph.sweep_touches = touches;
    // Jitter across the whole pass window plus a short record tail:
    // the tail crosses a subpage boundary with probability
    // record/subpage, the spatial penalty that grows as subpages
    // shrink (paper section 4.1).
    ph.sweep_jitter = 1016;
    ph.sweep_record_bytes = 160;
    double per_visit = touches + 1.0; // touches + record tail
    gap = std::max(gap, per_visit);
    ph.hot_frac = 1.0 - per_visit / gap;
    ph.refs = static_cast<uint64_t>((hi - lo) * gap);
    return ph;
}

} // namespace

/*
 * Modula-3 compile of smalldb: 87M refs, 773 faults at full memory
 * rising to 5655 at 1/4. Modelled as 16 compilation units. Each unit
 * sweeps the shared front-end structures (S1), loads its own fresh
 * pages (U), and computes over a sliding window; every fourth unit
 * densely re-reads the larger shared back-end region (S2). S1 sweeps
 * thrash only at 1/4 memory; S2 re-reads thrash at 1/2 as well.
 */
WorkloadSpec
make_modula3_spec(double scale)
{
    WorkloadSpec w;
    w.name = "modula3";
    w.hot_pages = spages(100, scale);

    uint64_t s1_lo = w.hot_pages;
    uint64_t s1_hi = s1_lo + spages(190, scale);
    uint64_t s2_lo = s1_hi;
    uint64_t s2_hi = s2_lo + spages(260, scale);
    uint64_t u_lo = s2_hi;
    uint64_t u_pages = spages(256, scale);
    const int units = 16;

    uint64_t compute_refs = srefs(87e6, scale); // trimmed below
    uint64_t scan_refs = 0;

    std::vector<PhaseSpec> phases;
    for (int i = 0; i < units; ++i) {
        // Shared front-end sweep: one touch per S1 page, offset
        // advancing one subpage per unit, ~20k references of compute
        // between page visits (faults 0.24 ms apart during the pass).
        PhaseSpec sweep = sweep_pass(s1_lo, s1_hi, i, 20e3);
        scan_refs += sweep.refs;
        phases.push_back(sweep);

        // This unit's fresh pages: two interleaved passes, one touch
        // per page per pass (parse then analyse), so the fresh-page
        // fault bursts overlap their rest-of-page transfers too.
        auto [u_chunk_lo, u_chunk_hi] = chunk(u_lo, u_pages, i, units);
        for (uint32_t pass = 0; pass < 2; ++pass) {
            PhaseSpec unit =
                sweep_pass(u_chunk_lo, u_chunk_hi, pass, 5e3);
            scan_refs += unit.refs;
            phases.push_back(unit);
        }

        // Back-end re-read every fourth unit: twice as a dense scan
        // that consumes whole pages (the worst-case, rest-of-page-
        // blocking faults of Figure 5) and twice as a sweep.
        if (i % 4 == 3) {
            if (i == 3) {
                // One true dense re-read: full-page consumers whose
                // faults block until the rest of the page arrives no
                // matter what (Figure 5's worst-case segment).
                PhaseSpec dense;
                dense.kind = PhaseSpec::Kind::DenseScan;
                dense.page_lo = s2_lo;
                dense.page_hi = s2_hi;
                dense.stride = 64;
                dense.hot_frac = 0.95;
                dense.refs = srefs(
                    (s2_hi - s2_lo) * (8192.0 / 64) / 0.05, 1.0);
                scan_refs += dense.refs;
                phases.push_back(dense);
            } else {
                // Re-reads touching 1-2 consecutive subpages per
                // page: the 2-touch passes block on the +1 neighbour
                // (helped by pipelining, not by eager fetch).
                uint32_t touches = i == 15 ? 1 : 2;
                PhaseSpec s2s =
                    sweep_pass(s2_lo, s2_hi, i / 4, 8e3, touches);
                scan_refs += s2s.refs;
                phases.push_back(s2s);
            }
        }

        // Compute over a sliding 60-page window of S1 (small enough
        // to stay resident even in the 1/4-mem configuration).
        PhaseSpec comp;
        comp.kind = PhaseSpec::Kind::Compute;
        uint64_t win = spages(60, scale);
        uint64_t s1_span = s1_hi - s1_lo;
        uint64_t base =
            s1_lo + (i * spages(20, scale)) %
                        std::max<uint64_t>(1, s1_span > win
                                                  ? s1_span - win
                                                  : 1);
        comp.page_lo = base;
        comp.page_hi = std::min(base + win, s1_hi);
        comp.zipf_skew = 0.6;
        comp.hot_frac = 0.6;
        comp.refs = 0; // filled below
        phases.push_back(comp);
    }

    // Distribute the remaining references over the compute phases.
    uint64_t fill = compute_refs > scan_refs
                        ? (compute_refs - scan_refs) / units
                        : srefs(1e5, scale);
    for (auto &ph : phases)
        if (ph.kind == PhaseSpec::Kind::Compute && ph.refs == 0)
            ph.refs = fill;

    w.phases = std::move(phases);
    return w;
}

/*
 * ld linking Digital Unix: 102M refs, 6807 faults at full memory
 * (huge streamed footprint) rising only 1.56x to 10629 at 1/4.
 * Modelled as a dense single-pass stream over the input objects,
 * sparse writes to the output image, and two re-reads of a large
 * symbol region that only thrashes in the 1/4 configuration.
 */
WorkloadSpec
make_ld_spec(double scale)
{
    WorkloadSpec w;
    w.name = "ld";
    w.hot_pages = spages(100, scale);

    uint64_t sym_lo = w.hot_pages;
    uint64_t sym_hi = sym_lo + spages(1800, scale);
    uint64_t in_lo = sym_hi;
    uint64_t in_hi = in_lo + spages(4200, scale);
    uint64_t out_lo = in_hi;
    uint64_t out_hi = out_lo + spages(707, scale);
    const int chunks = 20;

    std::vector<PhaseSpec> phases;
    uint64_t scan_refs = 0;
    for (int i = 0; i < chunks; ++i) {
        // Stream a chunk of the input objects, densely.
        PhaseSpec in;
        in.kind = PhaseSpec::Kind::DenseScan;
        std::tie(in.page_lo, in.page_hi) =
            chunk(in_lo, in_hi - in_lo, i, chunks);
        in.stride = 64;
        in.hot_frac = 0.75;
        in.write_frac = 0.1;
        in.refs = srefs((in.page_hi - in.page_lo) * 128 / 0.25, 1.0);
        scan_refs += in.refs;
        phases.push_back(in);

        // Emit a chunk of the output image.
        PhaseSpec out;
        out.kind = PhaseSpec::Kind::SparseScan;
        std::tie(out.page_lo, out.page_hi) =
            chunk(out_lo, out_hi - out_lo, i, chunks);
        out.touches_per_page = 8;
        out.hot_frac = 0.5;
        out.write_frac = 0.9;
        out.refs =
            srefs((out.page_hi - out.page_lo) * 8 / 0.5, 1.0);
        scan_refs += out.refs;
        phases.push_back(out);

        // Symbol-table sweeps: first pass early, re-read passes
        // mid-run and late (the re-reads are the 1/4-mem thrash).
        if (i == 0 || i == 9 || i == 16) {
            PhaseSpec sym = sweep_pass(sym_lo, sym_hi,
                                       i == 0 ? 0 : (i == 9 ? 1 : 2),
                                       8e3);
            scan_refs += sym.refs;
            phases.push_back(sym);
        }

        // Hot compute between chunks (symbol resolution CPU work).
        PhaseSpec comp;
        comp.kind = PhaseSpec::Kind::Compute;
        comp.page_lo = comp.page_hi = 0; // hot region only
        comp.refs = 0;
        phases.push_back(comp);
    }

    uint64_t total = srefs(102e6, scale);
    uint64_t fill =
        total > scan_refs ? (total - scan_refs) / chunks
                          : srefs(1e5, scale);
    for (auto &ph : phases)
        if (ph.kind == PhaseSpec::Kind::Compute)
            ph.refs = fill;

    w.phases = std::move(phases);
    return w;
}

/*
 * ATOM instrumenting gzip: 73M refs, 1175 -> 5275 faults. The paper
 * singles ATOM out for its *smooth* fault accumulation (Figure 10):
 * no big bursts, faults spread evenly. Modelled as many small
 * alternating sweep passes over two regions (R1 thrashes only at
 * 1/4 memory, R2 at 1/2 as well) with compute interleaved.
 */
WorkloadSpec
make_atom_spec(double scale)
{
    WorkloadSpec w;
    w.name = "atom";
    w.hot_pages = spages(75, scale);

    uint64_t r1_lo = w.hot_pages;
    uint64_t r1_hi = r1_lo + spages(400, scale);
    uint64_t r2_lo = r1_hi;
    uint64_t r2_hi = r2_lo + spages(700, scale);

    std::vector<PhaseSpec> phases;
    uint64_t scan_refs = 0;
    const int rounds = 14;
    int r1_pass = 0, r2_pass = 0;
    for (int i = 0; i < rounds; ++i) {
        // Sweeps with wide inter-visit gaps: ATOM's faults come
        // steadily rather than in bursts, so each fault is far from
        // the next and relatively more of its rest-of-page transfer
        // overlaps execution (lowest I/O-overlap share: 53%).
        if (i % 2 == 0) {
            PhaseSpec r1 = sweep_pass(r1_lo, r1_hi, r1_pass++, 12e3);
            scan_refs += r1.refs;
            phases.push_back(r1);
        }

        if (i == 4 || i == 11) {
            // R2 visits touch 3 consecutive subpages: these faults
            // block on their neighbours, which is why ATOM gets the
            // least benefit from eager fetch and relatively more
            // from pipelining.
            PhaseSpec r2 =
                sweep_pass(r2_lo, r2_hi, r2_pass++, 8e3, 3);
            scan_refs += r2.refs;
            phases.push_back(r2);
        }

        PhaseSpec comp;
        comp.kind = PhaseSpec::Kind::Compute;
        comp.page_lo = comp.page_hi = 0;
        comp.refs = 0;
        phases.push_back(comp);
    }

    uint64_t total = srefs(73e6, scale);
    uint64_t fill =
        total > scan_refs ? (total - scan_refs) / rounds
                          : srefs(1e5, scale);
    for (auto &ph : phases)
        if (ph.kind == PhaseSpec::Kind::Compute)
            ph.refs = fill;

    w.phases = std::move(phases);
    return w;
}

/*
 * Render displaying a scene from a >100MB precomputed database:
 * 245M refs, 1433 -> 6145 faults. Modelled as per-frame traversals:
 * the near scene (R1, fits in 1/2 memory) is swept every frame, the
 * far scene (R2, fits only in full memory) every third frame.
 */
WorkloadSpec
make_render_spec(double scale)
{
    WorkloadSpec w;
    w.name = "render";
    w.hot_pages = spages(100, scale);

    uint64_t r1_lo = w.hot_pages;
    uint64_t r1_hi = r1_lo + spages(500, scale);
    uint64_t r2_lo = r1_hi;
    uint64_t r2_hi = r2_lo + spages(830, scale);

    std::vector<PhaseSpec> phases;
    uint64_t scan_refs = 0;
    const int frames = 6;
    int r2_pass = 0;
    for (int i = 0; i < frames; ++i) {
        // Per-frame traversals do a lot of shading work per visited
        // page, so the inter-fault gaps are the widest of the five
        // applications.
        PhaseSpec near = sweep_pass(r1_lo, r1_hi, i, 40e3);
        scan_refs += near.refs;
        phases.push_back(near);

        if (i % 3 == 1) {
            PhaseSpec far =
                sweep_pass(r2_lo, r2_hi, r2_pass++, 20e3, 2);
            scan_refs += far.refs;
            phases.push_back(far);
        }

        // Shading / rasterization compute over the near scene.
        PhaseSpec comp;
        comp.kind = PhaseSpec::Kind::Compute;
        comp.page_lo = r1_lo;
        comp.page_hi = r1_lo + spages(120, scale);
        comp.zipf_skew = 0.8;
        comp.hot_frac = 0.7;
        comp.refs = 0;
        phases.push_back(comp);
    }

    uint64_t total = srefs(245e6, scale);
    uint64_t fill =
        total > scan_refs ? (total - scan_refs) / frames
                          : srefs(1e5, scale);
    for (auto &ph : phases)
        if (ph.kind == PhaseSpec::Kind::Compute && ph.refs == 0)
            ph.refs = fill;

    w.phases = std::move(phases);
    return w;
}

/*
 * gdb initialization: only 0.5M refs, 138 -> 882 faults, and the
 * paper's most bursty fault pattern (Figure 10): nearly all faults
 * land in a few steep jumps. Modelled as dense bursts over a small
 * region plus sparse re-reads of a larger one, with almost no
 * compute between bursts.
 */
WorkloadSpec
make_gdb_spec(double scale)
{
    WorkloadSpec w;
    w.name = "gdb";
    w.hot_pages = spages(20, scale);

    uint64_t r1_lo = w.hot_pages;
    uint64_t r1_hi = r1_lo + spages(40, scale);
    uint64_t r2_lo = r1_hi;
    uint64_t r2_hi = r2_lo + spages(78, scale);

    std::vector<PhaseSpec> phases;
    uint64_t scan_refs = 0;
    const int bursts = 8;
    for (int i = 0; i < bursts; ++i) {
        // gdb's bursts are nearly back-to-back (the trace only has
        // half a million references for ~880 faults), which is why it
        // gets the highest I/O-overlap share (83%) in the paper.
        PhaseSpec r1 = sweep_pass(r1_lo, r1_hi, i, 1.4);
        scan_refs += r1.refs;
        phases.push_back(r1);

        if (i % 2 == 1) {
            PhaseSpec r2;
            r2.kind = PhaseSpec::Kind::SparseScan;
            r2.page_lo = r2_lo;
            r2.page_hi = r2_hi;
            r2.touches_per_page = 3;
            r2.hot_frac = 0.3;
            r2.refs = srefs((r2_hi - r2_lo) * 3 / 0.7, 1.0);
            scan_refs += r2.refs;
            phases.push_back(r2);
        }

        PhaseSpec comp;
        comp.kind = PhaseSpec::Kind::Compute;
        comp.page_lo = comp.page_hi = 0;
        comp.refs = 0;
        phases.push_back(comp);
    }

    uint64_t total = srefs(0.5e6, scale);
    uint64_t fill =
        total > scan_refs ? (total - scan_refs) / bursts
                          : srefs(1e3, scale);
    for (auto &ph : phases)
        if (ph.kind == PhaseSpec::Kind::Compute)
            ph.refs = fill;

    w.phases = std::move(phases);
    return w;
}

const std::vector<std::string> &
app_names()
{
    static const std::vector<std::string> names = {
        "modula3", "ld", "atom", "render", "gdb"};
    return names;
}

WorkloadSpec
make_app_spec(const std::string &name, double scale)
{
    if (name == "modula3")
        return make_modula3_spec(scale);
    if (name == "ld")
        return make_ld_spec(scale);
    if (name == "atom")
        return make_atom_spec(scale);
    if (name == "render")
        return make_render_spec(scale);
    if (name == "gdb")
        return make_gdb_spec(scale);
    fatal("unknown application model '%s'", name.c_str());
}

std::unique_ptr<SyntheticTrace>
make_app_trace(const std::string &name, double scale, uint64_t seed)
{
    return std::make_unique<SyntheticTrace>(make_app_spec(name, scale),
                                            seed);
}

} // namespace sgms
