/**
 * @file
 * Trace file I/O.
 *
 * Two formats:
 *  - binary ("SGMT"): compact 9-byte records, for large traces;
 *  - text: one "R <hex-addr>" or "W <hex-addr>" per line, '#'
 *    comments allowed, for hand-written traces and interop.
 */

#ifndef SGMS_TRACE_TRACE_FILE_H
#define SGMS_TRACE_TRACE_FILE_H

#include <cstdio>
#include <string>

#include "trace/trace.h"

namespace sgms
{

/** Write @p trace to @p path in binary SGMT format. */
void write_trace_binary(TraceSource &trace, const std::string &path);

/** Write @p trace to @p path as text. */
void write_trace_text(TraceSource &trace, const std::string &path);

/**
 * Streaming reader for both formats (sniffs the magic). Fails fatally
 * on unreadable or corrupt files.
 */
class FileTrace : public TraceSource
{
  public:
    explicit FileTrace(const std::string &path);
    ~FileTrace() override;

    FileTrace(const FileTrace &) = delete;
    FileTrace &operator=(const FileTrace &) = delete;

    bool next(TraceEvent &ev) override;
    size_t next_batch(TraceEvent *out, size_t n) override;
    void reset() override;
    uint64_t size_hint() const override { return count_; }

  private:
    bool next_binary(TraceEvent &ev);
    bool next_text(TraceEvent &ev);

    std::string path_;
    std::FILE *file_ = nullptr;
    bool binary_ = false;
    uint64_t count_ = 0;    // declared count (binary) or 0
    long data_start_ = 0;   // offset of first record
};

} // namespace sgms

#endif // SGMS_TRACE_TRACE_FILE_H
