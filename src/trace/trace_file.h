/**
 * @file
 * Trace file I/O.
 *
 * Three formats:
 *  - binary "SGMB" (trace/binfmt.h): versioned fixed-width records,
 *    mmap-replayed — the format for large and real traces; read it
 *    through open_trace() below;
 *  - binary "SGMT": the legacy compact 9-byte-record stream format,
 *    still read and written for compatibility;
 *  - text: one "R <hex-addr>" or "W <hex-addr>" per line, '#'
 *    comments allowed, for hand-written traces and interop.
 */

#ifndef SGMS_TRACE_TRACE_FILE_H
#define SGMS_TRACE_TRACE_FILE_H

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace sgms
{

/** Write @p trace to @p path in legacy binary SGMT format. */
void write_trace_binary(TraceSource &trace, const std::string &path);

/** Write @p trace to @p path as text. */
void write_trace_text(TraceSource &trace, const std::string &path);

/**
 * Open any trace file by sniffing its magic: SGMB files get a
 * zero-copy mmap replay cursor (trace/mmap_trace.h), everything else
 * a streaming FileTrace. Fails fatally on unreadable or corrupt
 * files.
 */
std::unique_ptr<TraceSource> open_trace(const std::string &path);

/**
 * Streaming reader for the legacy SGMT and text formats (sniffs the
 * magic). Reads the file in 64 KiB blocks, so next_batch parses
 * records straight out of the read buffer instead of paying two
 * stdio calls per reference. Fails fatally on unreadable or corrupt
 * files; SGMB files are rejected with a pointer to open_trace().
 */
class FileTrace : public TraceSource
{
  public:
    explicit FileTrace(const std::string &path);
    ~FileTrace() override;

    FileTrace(const FileTrace &) = delete;
    FileTrace &operator=(const FileTrace &) = delete;

    bool next(TraceEvent &ev) override;
    size_t next_batch(TraceEvent *out, size_t n) override;
    void reset() override;
    uint64_t size_hint() const override { return count_; }

  private:
    size_t batch_binary(TraceEvent *out, size_t n);
    size_t batch_text(TraceEvent *out, size_t n);
    /** Compact the buffer and read more; sets eof_ at end of file. */
    void refill();

    std::string path_;
    std::FILE *file_ = nullptr;
    bool binary_ = false;
    uint64_t count_ = 0;    // declared count (binary) or 0
    long data_start_ = 0;   // offset of first record

    // Block-read buffer. One spare byte is always kept free so the
    // text parser can NUL-terminate a final unterminated line.
    std::vector<char> buf_;
    size_t bpos_ = 0; // next unconsumed byte
    size_t blen_ = 0; // valid bytes in buf_
    bool eof_ = false;
};

} // namespace sgms

#endif // SGMS_TRACE_TRACE_FILE_H
