/**
 * @file
 * Process-wide store of materialized synthetic traces.
 *
 * A sweep runs the same (app, scale, seed) trace under dozens of
 * configurations, and with `--jobs` several threads replay it at
 * once. Regenerating the trace per point costs about as much as
 * simulating it (the generator draws 2-3 RNG samples per reference),
 * so the store materializes each trace once per process into an
 * immutable packed buffer and hands out cheap per-point cursors
 * (ReplayTrace) that share it by shared_ptr.
 *
 * Lifetime rules (DESIGN.md §13):
 *  - the packed buffer is immutable after materialization; cursors
 *    carry only their own position, so concurrent replay from many
 *    threads needs no locking;
 *  - the store keeps one shared_ptr per trace for the life of the
 *    process, bounded by a cumulative byte budget
 *    (SGMS_TRACE_STORE_MAX_MB, default 256); traces that would
 *    exceed it fall back to streaming generation per point;
 *  - SGMS_TRACE_STORE=0 disables materialization entirely
 *    (every caller gets a streaming generator, the pre-store
 *    behavior).
 *
 * Events pack to 8 bytes ((addr << 1) | write), half the footprint
 * of TraceEvent, so a full-scale five-app mix fits the default
 * budget's neighborhood; replay unpacks in the batch copy.
 */

#ifndef SGMS_TRACE_TRACE_STORE_H
#define SGMS_TRACE_TRACE_STORE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace sgms
{

/** Immutable packed trace: each event is (addr << 1) | write. */
using PackedTrace = std::vector<uint64_t>;

/** Cursor over a shared packed trace; cheap to create per point. */
class ReplayTrace : public TraceSource
{
  public:
    explicit ReplayTrace(std::shared_ptr<const PackedTrace> events)
        : events_(std::move(events))
    {}

    bool
    next(TraceEvent &ev) override
    {
        if (pos_ >= events_->size())
            return false;
        uint64_t packed = (*events_)[pos_++];
        ev.addr = packed >> 1;
        ev.write = packed & 1;
        return true;
    }

    size_t
    next_batch(TraceEvent *out, size_t n) override
    {
        const PackedTrace &ev = *events_;
        size_t avail = ev.size() - pos_;
        size_t got = n < avail ? n : avail;
        for (size_t i = 0; i < got; ++i) {
            uint64_t packed = ev[pos_ + i];
            out[i].addr = packed >> 1;
            out[i].write = packed & 1;
        }
        pos_ += got;
        return got;
    }

    void reset() override { pos_ = 0; }

    uint64_t size_hint() const override { return events_->size(); }

    /** The shared buffer (for tests asserting sharing). */
    const std::shared_ptr<const PackedTrace> &buffer() const
    {
        return events_;
    }

  private:
    std::shared_ptr<const PackedTrace> events_;
    size_t pos_ = 0;
};

/**
 * An app trace ready to replay: a ReplayTrace cursor over the shared
 * store when the trace is (or can be) materialized within budget, a
 * streaming SyntheticTrace otherwise. Thread-safe; concurrent
 * callers of the same key block on one materialization.
 */
std::unique_ptr<TraceSource>
make_stored_app_trace(const std::string &app, double scale,
                      uint64_t seed = 1);

/** Store observability (tests, bench/sim_hotpath). */
struct TraceStoreStats
{
    /** Requests served from an already-materialized buffer. */
    uint64_t hits = 0;
    /** Requests that materialized a new buffer. */
    uint64_t misses = 0;
    /** Requests that fell back to streaming generation. */
    uint64_t fallbacks = 0;
    /** Bytes held by materialized buffers. */
    uint64_t bytes = 0;
};

TraceStoreStats trace_store_stats();

/** Drop every stored trace (tests; not thread-safe vs. replayers). */
void trace_store_clear();

} // namespace sgms

#endif // SGMS_TRACE_TRACE_STORE_H
