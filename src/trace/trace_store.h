/**
 * @file
 * Process-wide store of replayable synthetic traces.
 *
 * A sweep runs the same (app, scale, seed) trace under dozens of
 * configurations, and with `--jobs` several threads replay it at
 * once. Regenerating the trace per point costs about as much as
 * simulating it (the generator draws 2-3 RNG samples per reference),
 * so the store serves each trace from one immutable copy and hands
 * out cheap per-point cursors. Two tiers:
 *
 *  - **mapped tier** (SGMS_TRACE_DIR set): the trace is baked once
 *    into a content-named SGMB file in the directory (atomic
 *    tmp+rename, like exec::ResultCache blobs) and subsequently
 *    mmap'd (trace/mmap_trace.h). Process start is an open+mmap
 *    instead of a generation pass, traces bigger than RAM replay
 *    through the page cache, forked worker fleets (--workers=N)
 *    share one physical copy, and a later process reuses the bake.
 *    Mapped bytes are file-backed and evictable by the kernel, so
 *    they do NOT count against the heap budget below; they are
 *    reported separately as TraceStoreStats::mapped_bytes.
 *
 *  - **heap tier** (default): the trace is materialized once per
 *    process into an immutable shared buffer, bounded by a
 *    cumulative byte budget (SGMS_TRACE_STORE_MAX_MB, default 256);
 *    traces that would exceed it fall back to streaming generation
 *    per point.
 *
 * SGMS_TRACE_STORE=0 disables the store entirely (every caller gets
 * a streaming generator, the pre-store behavior).
 *
 * Lifetime rules (DESIGN.md §13-14): buffers and mappings are
 * immutable after creation; cursors carry only their own position,
 * so concurrent replay from many threads needs no locking. Both
 * tiers replay the identical packed words ((addr << 1) | write,
 * trace/binfmt.h), so heap, mapped, and streamed replay are
 * byte-equivalent through full Experiment::run results (tested).
 */

#ifndef SGMS_TRACE_TRACE_STORE_H
#define SGMS_TRACE_TRACE_STORE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace sgms
{

/** Immutable packed trace: each event is (addr << 1) | write. */
using PackedTrace = std::vector<uint64_t>;

/** Cursor over a shared packed trace; cheap to create per point. */
class ReplayTrace : public TraceSource
{
  public:
    explicit ReplayTrace(std::shared_ptr<const PackedTrace> events)
        : events_(std::move(events))
    {}

    bool
    next(TraceEvent &ev) override
    {
        if (pos_ >= events_->size())
            return false;
        uint64_t packed = (*events_)[pos_++];
        ev.addr = packed >> 1;
        ev.write = packed & 1;
        return true;
    }

    size_t
    next_batch(TraceEvent *out, size_t n) override
    {
        const PackedTrace &ev = *events_;
        size_t avail = ev.size() - pos_;
        size_t got = n < avail ? n : avail;
        for (size_t i = 0; i < got; ++i) {
            uint64_t packed = ev[pos_ + i];
            out[i].addr = packed >> 1;
            out[i].write = packed & 1;
        }
        pos_ += got;
        return got;
    }

    void reset() override { pos_ = 0; }

    void
    skip(uint64_t n) override
    {
        uint64_t avail = events_->size() - pos_;
        pos_ += static_cast<size_t>(n < avail ? n : avail);
    }

    uint64_t size_hint() const override { return events_->size(); }

    /** The shared buffer (for tests asserting sharing). */
    const std::shared_ptr<const PackedTrace> &buffer() const
    {
        return events_;
    }

  private:
    std::shared_ptr<const PackedTrace> events_;
    size_t pos_ = 0;
};

/**
 * An app trace ready to replay: an mmap cursor over the baked file
 * when the mapped tier is configured, a ReplayTrace cursor over the
 * shared heap store when the trace is (or can be) materialized
 * within budget, a streaming SyntheticTrace otherwise. Thread-safe;
 * concurrent callers of the same key block on one materialization.
 */
std::unique_ptr<TraceSource>
make_stored_app_trace(const std::string &app, double scale,
                      uint64_t seed = 1);

/**
 * The content-addressed file the mapped tier uses for
 * (app, scale, seed) under @p dir. The name embeds the app and a
 * hash of (format version, app, scale, seed), so distinct traces
 * never collide and a format bump never aliases old bakes.
 */
std::string baked_trace_path(const std::string &dir,
                             const std::string &app, double scale,
                             uint64_t seed);

/**
 * Ensure (app, scale, seed) is baked under @p dir and return its
 * path. The bake streams the generator straight to disk (no heap
 * materialization, so bigger-than-RAM traces bake fine) into a temp
 * file renamed into place, so concurrent bakers and killed runs
 * never leave a half-written file under the live name. An existing
 * valid file is reused untouched; an invalid one (truncated copy,
 * foreign format) is re-baked over. fatal() on I/O errors.
 */
std::string bake_app_trace(const std::string &app, double scale,
                           uint64_t seed, const std::string &dir);

/** Store observability (tests, bench/sim_hotpath, bench/trace_io). */
struct TraceStoreStats
{
    /** Requests served from an already-materialized buffer or map. */
    uint64_t hits = 0;
    /** Requests that materialized or mapped a new trace. */
    uint64_t misses = 0;
    /** Requests that fell back to streaming generation. */
    uint64_t fallbacks = 0;
    /** Bytes held by heap-materialized buffers (budgeted). */
    uint64_t bytes = 0;
    /** Bytes mmap'd from baked files (file-backed, NOT budgeted). */
    uint64_t mapped_bytes = 0;
    /** Baked files written by this process. */
    uint64_t baked_files = 0;
    /** Baked files mapped (whether baked here or found on disk). */
    uint64_t mapped_files = 0;
};

TraceStoreStats trace_store_stats();

/** Drop every stored trace (tests; not thread-safe vs. replayers). */
void trace_store_clear();

// Test/config hooks. Each overrides the corresponding environment
// variable (SGMS_TRACE_STORE / SGMS_TRACE_DIR /
// SGMS_TRACE_STORE_MAX_MB) for the rest of the process; they do not
// drop traces already stored, so tests usually call
// trace_store_clear() alongside.

/** Enable/disable the store (env: SGMS_TRACE_STORE=0 disables). */
void trace_store_set_enabled(bool enabled);

/** Set the mapped-tier directory; "" disables the mapped tier. */
void trace_store_set_dir(const std::string &dir);

/** Set the heap-tier budget in bytes. */
void trace_store_set_budget_bytes(uint64_t bytes);

/** The active mapped-tier directory ("" when disabled). */
std::string trace_store_dir();

} // namespace sgms

#endif // SGMS_TRACE_TRACE_STORE_H
