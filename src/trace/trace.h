/**
 * @file
 * Memory-reference trace abstractions.
 *
 * The paper drives its simulator with ATOM-generated reference traces
 * of five applications. We model a trace as a stream of (address,
 * is-write) events; sources include files (for real traces) and the
 * synthetic application models in trace/apps.h.
 */

#ifndef SGMS_TRACE_TRACE_H
#define SGMS_TRACE_TRACE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sgms
{

/** One memory reference. */
struct TraceEvent
{
    Addr addr = 0;
    bool write = false;
};

/** A restartable stream of trace events. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next event; false at end of trace. */
    virtual bool next(TraceEvent &ev) = 0;

    /**
     * Fill @p out with up to @p n events; returns the number
     * produced (0 only at end of trace, for n > 0). The simulator's
     * inner loop consumes references through this call so a source
     * pays one virtual dispatch per batch, not per reference;
     * sources with cheap bulk access override it (DESIGN.md §13).
     */
    virtual size_t
    next_batch(TraceEvent *out, size_t n)
    {
        size_t got = 0;
        while (got < n && next(out[got]))
            ++got;
        return got;
    }

    /** Rewind to the beginning. */
    virtual void reset() = 0;

    /** Expected number of events (0 if unknown). */
    virtual uint64_t size_hint() const { return 0; }
};

/** In-memory trace, mainly for tests and tiny examples. */
class VectorTrace : public TraceSource
{
  public:
    VectorTrace() = default;
    explicit VectorTrace(std::vector<TraceEvent> events)
        : events_(std::move(events))
    {}

    /**
     * Materialize @p src into memory, honoring its size_hint to
     * avoid growth reallocations on load. @p src is left rewound.
     */
    explicit VectorTrace(TraceSource &src)
    {
        events_.reserve(src.size_hint());
        src.reset();
        TraceEvent ev;
        while (src.next(ev))
            events_.push_back(ev);
        src.reset();
    }

    /** Pre-size for @p n pushes. */
    void reserve(size_t n) { events_.reserve(n); }

    void
    push(Addr addr, bool write = false)
    {
        events_.push_back({addr, write});
    }

    bool
    next(TraceEvent &ev) override
    {
        if (pos_ >= events_.size())
            return false;
        ev = events_[pos_++];
        return true;
    }

    size_t
    next_batch(TraceEvent *out, size_t n) override
    {
        size_t avail = events_.size() - pos_;
        size_t got = n < avail ? n : avail;
        for (size_t i = 0; i < got; ++i)
            out[i] = events_[pos_ + i];
        pos_ += got;
        return got;
    }

    void reset() override { pos_ = 0; }

    uint64_t size_hint() const override { return events_.size(); }

    const std::vector<TraceEvent> &events() const { return events_; }

  private:
    std::vector<TraceEvent> events_;
    size_t pos_ = 0;
};

/**
 * Count the distinct pages a trace touches (its footprint), used to
 * size the full / half / quarter memory configurations exactly as the
 * paper does ("the program is given as much memory as it needs").
 */
uint64_t measure_footprint_pages(TraceSource &trace, uint32_t page_size);

} // namespace sgms

#endif // SGMS_TRACE_TRACE_H
