/**
 * @file
 * Memory-reference trace abstractions.
 *
 * The paper drives its simulator with ATOM-generated reference traces
 * of five applications. We model a trace as a stream of (address,
 * is-write) events; sources include files (for real traces) and the
 * synthetic application models in trace/apps.h.
 */

#ifndef SGMS_TRACE_TRACE_H
#define SGMS_TRACE_TRACE_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"

namespace sgms
{

/** One memory reference. */
struct TraceEvent
{
    Addr addr = 0;
    bool write = false;
};

/** A restartable stream of trace events. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next event; false at end of trace. */
    virtual bool next(TraceEvent &ev) = 0;

    /**
     * Fill @p out with up to @p n events; returns the number
     * produced (0 only at end of trace, for n > 0). The simulator's
     * inner loop consumes references through this call so a source
     * pays one virtual dispatch per batch, not per reference;
     * sources with cheap bulk access override it (DESIGN.md §13).
     */
    virtual size_t
    next_batch(TraceEvent *out, size_t n)
    {
        size_t got = 0;
        while (got < n && next(out[got]))
            ++got;
        return got;
    }

    /** Rewind to the beginning. */
    virtual void reset() = 0;

    /**
     * Discard the next @p n events (stopping early at end of trace).
     * The generic implementation reads and drops batches; sources
     * with random access override it with an O(1) cursor move, which
     * is what makes per-client rotated cursors over one shared trace
     * cheap (multi-client kernel, DESIGN.md §15).
     */
    virtual void
    skip(uint64_t n)
    {
        TraceEvent scratch[256];
        while (n > 0) {
            size_t want =
                n < 256 ? static_cast<size_t>(n) : size_t{256};
            size_t got = next_batch(scratch, want);
            if (got == 0)
                return;
            n -= got;
        }
    }

    /** Expected number of events (0 if unknown). */
    virtual uint64_t size_hint() const { return 0; }
};

/** In-memory trace, mainly for tests and tiny examples. */
class VectorTrace : public TraceSource
{
  public:
    VectorTrace() = default;
    explicit VectorTrace(std::vector<TraceEvent> events)
        : events_(std::move(events))
    {}

    /**
     * Materialize @p src into memory, honoring its size_hint to
     * avoid growth reallocations on load. @p src is left rewound.
     */
    explicit VectorTrace(TraceSource &src)
    {
        events_.reserve(src.size_hint());
        src.reset();
        TraceEvent ev;
        while (src.next(ev))
            events_.push_back(ev);
        src.reset();
    }

    /** Pre-size for @p n pushes. */
    void reserve(size_t n) { events_.reserve(n); }

    void
    push(Addr addr, bool write = false)
    {
        events_.push_back({addr, write});
    }

    bool
    next(TraceEvent &ev) override
    {
        if (pos_ >= events_.size())
            return false;
        ev = events_[pos_++];
        return true;
    }

    size_t
    next_batch(TraceEvent *out, size_t n) override
    {
        size_t avail = events_.size() - pos_;
        size_t got = n < avail ? n : avail;
        for (size_t i = 0; i < got; ++i)
            out[i] = events_[pos_ + i];
        pos_ += got;
        return got;
    }

    void reset() override { pos_ = 0; }

    void
    skip(uint64_t n) override
    {
        uint64_t avail = events_.size() - pos_;
        pos_ += static_cast<size_t>(n < avail ? n : avail);
    }

    uint64_t size_hint() const override { return events_.size(); }

    const std::vector<TraceEvent> &events() const { return events_; }

  private:
    std::vector<TraceEvent> events_;
    size_t pos_ = 0;
};

/**
 * A view of another trace rotated left by @p offset references: it
 * yields [offset, L) then wraps to [0, offset), so every client of a
 * multi-client run streams the same L references but starts at a
 * different phase of the program. Offset 0 is a pass-through. The
 * rotation relies on an exact size_hint from the base source; when
 * the base cannot report its length the trace degrades to a plain
 * pass-through (offset forced to 0).
 */
class RotatedTrace : public TraceSource
{
  public:
    RotatedTrace(std::unique_ptr<TraceSource> base, uint64_t offset)
        : base_(std::move(base)), length_(base_->size_hint()),
          offset_(length_ ? offset % length_ : 0)
    {
        RotatedTrace::reset();
    }

    bool
    next(TraceEvent &ev) override
    {
        return next_batch(&ev, 1) == 1;
    }

    size_t
    next_batch(TraceEvent *out, size_t n) override
    {
        if (length_ == 0)
            return base_->next_batch(out, n);
        size_t total = 0;
        while (total < n && produced_ < length_) {
            uint64_t left = length_ - produced_;
            size_t want = n - total < left
                              ? n - total
                              : static_cast<size_t>(left);
            size_t got = base_->next_batch(out + total, want);
            if (got == 0) {
                if (wrapped_)
                    break; // base shorter than its size_hint
                wrapped_ = true;
                base_->reset();
                continue;
            }
            total += got;
            produced_ += got;
        }
        return total;
    }

    void
    reset() override
    {
        base_->reset();
        base_->skip(offset_);
        wrapped_ = offset_ == 0;
        produced_ = 0;
    }

    uint64_t size_hint() const override
    {
        return length_ ? length_ : base_->size_hint();
    }

    uint64_t offset() const { return offset_; }

  private:
    std::unique_ptr<TraceSource> base_;
    uint64_t length_ = 0;
    uint64_t offset_ = 0;
    uint64_t produced_ = 0;
    bool wrapped_ = false;
};

/**
 * Count the distinct pages a trace touches (its footprint), used to
 * size the full / half / quarter memory configurations exactly as the
 * paper does ("the program is given as much memory as it needs").
 */
uint64_t measure_footprint_pages(TraceSource &trace, uint32_t page_size);

} // namespace sgms

#endif // SGMS_TRACE_TRACE_H
