#include "trace/mmap_trace.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.h"

namespace sgms
{

std::shared_ptr<const MappedTraceFile>
MappedTraceFile::try_open(const std::string &path, std::string &error)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        error = std::string("cannot open: ") + std::strerror(errno);
        return nullptr;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        error = std::string("cannot stat: ") + std::strerror(errno);
        ::close(fd);
        return nullptr;
    }
    uint64_t file_size = static_cast<uint64_t>(st.st_size);

    // Validate the header before mapping: a file shorter than the
    // header must not even be mapped at header size.
    unsigned char hdr_buf[kBinTraceHeaderBytes];
    ssize_t n = ::pread(fd, hdr_buf, sizeof(hdr_buf), 0);
    BinTraceHeader hdr;
    if (n < 0 ||
        !parse_bin_header(hdr_buf, static_cast<size_t>(n), file_size,
                          hdr, error)) {
        if (n < 0)
            error = std::string("read error: ") + std::strerror(errno);
        ::close(fd);
        return nullptr;
    }

    void *base =
        ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    // The fd is not needed once mapped; the mapping keeps the file
    // alive even if it is later unlinked (e.g. store gc).
    ::close(fd);
    if (base == MAP_FAILED) {
        error = std::string("mmap failed: ") + std::strerror(errno);
        return nullptr;
    }
    // Replay is (multi-cursor) sequential; tell the kernel so
    // readahead stays aggressive on bigger-than-RAM traces.
    ::madvise(base, file_size, MADV_SEQUENTIAL);

    auto file = std::shared_ptr<MappedTraceFile>(new MappedTraceFile());
    file->path_ = path;
    file->header_ = hdr;
    file->base_ = base;
    file->mapped_bytes_ = file_size;
    return file;
}

std::shared_ptr<const MappedTraceFile>
MappedTraceFile::open(const std::string &path)
{
    std::string error;
    auto file = try_open(path, error);
    if (!file)
        fatal("trace file '%s': %s", path.c_str(), error.c_str());
    return file;
}

MappedTraceFile::~MappedTraceFile()
{
    if (base_)
        ::munmap(base_, mapped_bytes_);
}

uint64_t
MappedTraceFile::payload_hash() const
{
    return fnv1a_bytes(records(), size() * kBinTraceRecordBytes);
}

std::unique_ptr<TraceSource>
make_mapped_trace(const std::string &path)
{
    return std::make_unique<MmapReplayTrace>(MappedTraceFile::open(path));
}

} // namespace sgms
