#include "trace/synthetic.h"

#include <algorithm>

#include "common/logging.h"

namespace sgms
{

uint64_t
WorkloadSpec::total_refs() const
{
    uint64_t total = 0;
    for (const auto &ph : phases)
        total += ph.refs;
    return total;
}

uint64_t
WorkloadSpec::page_span() const
{
    uint64_t hi = hot_pages;
    for (const auto &ph : phases)
        hi = std::max(hi, ph.page_hi);
    return hi;
}

SyntheticTrace::SyntheticTrace(WorkloadSpec spec, uint64_t seed)
    : spec_(std::move(spec)), seed_(seed), rng_(seed)
{
    if (!is_pow2(spec_.page_size))
        fatal("workload '%s': page size must be a power of two",
              spec_.name.c_str());
    for (const auto &ph : spec_.phases) {
        if (ph.page_hi < ph.page_lo)
            fatal("workload '%s': malformed phase region",
                  spec_.name.c_str());
        if (ph.kind != PhaseSpec::Kind::Compute &&
            ph.page_hi == ph.page_lo && ph.refs) {
            fatal("workload '%s': scan phase over empty region",
                  spec_.name.c_str());
        }
    }

    if (spec_.hot_pages > 0) {
        hot_table_ = ZipfTable(
            std::max<uint64_t>(spec_.hot_pages, 1) *
                (spec_.page_size / 64),
            spec_.hot_zipf_skew);
    }
    phase_tables_.resize(spec_.phases.size());
    for (size_t i = 0; i < spec_.phases.size(); ++i) {
        const auto &ph = spec_.phases[i];
        if (ph.kind == PhaseSpec::Kind::Compute &&
            ph.page_hi > ph.page_lo) {
            phase_tables_[i] =
                ZipfTable(ph.page_hi - ph.page_lo, ph.zipf_skew);
        }
    }

    reset();
}

void
SyntheticTrace::reset()
{
    rng_.reseed(seed_);
    phase_idx_ = 0;
    phase_left_ = 0;
    if (!spec_.phases.empty())
        enter_phase(0);
}

void
SyntheticTrace::enter_phase(size_t idx)
{
    phase_idx_ = idx;
    const PhaseSpec &ph = spec_.phases[idx];
    phase_left_ = ph.refs;
    scan_addr_ = ph.page_lo * spec_.page_size;
    sparse_page_ = ph.page_lo;
    sparse_touch_ = 0;
}

Addr
SyntheticTrace::pattern_addr(const PhaseSpec &ph)
{
    const uint64_t psize = spec_.page_size;
    switch (ph.kind) {
      case PhaseSpec::Kind::DenseScan: {
        Addr a = scan_addr_;
        scan_addr_ += ph.stride;
        if (scan_addr_ >= ph.page_hi * psize)
            scan_addr_ = ph.page_lo * psize; // wrap: next pass
        return a;
      }
      case PhaseSpec::Kind::SweepScan: {
        uint32_t touches = std::max<uint32_t>(ph.sweep_touches, 1);
        uint32_t per_visit =
            touches + (ph.sweep_record_bytes ? 1 : 0);
        Addr a;
        if (sparse_touch_ < touches) {
            uint64_t offset =
                (static_cast<uint64_t>(ph.sweep_pass) * touches +
                 sparse_touch_) *
                ph.sweep_step % psize;
            if (ph.sweep_jitter)
                offset += rng_.below(ph.sweep_jitter);
            if (offset >= psize)
                offset = psize - 1;
            sweep_last_offset_ = offset;
            a = sparse_page_ * psize + offset;
        } else {
            // Record tail: may cross into the next subpage.
            uint64_t offset =
                sweep_last_offset_ + ph.sweep_record_bytes;
            if (offset >= psize)
                offset = psize - 1;
            a = sparse_page_ * psize + offset;
        }
        if (++sparse_touch_ >= per_visit) {
            sparse_touch_ = 0;
            if (++sparse_page_ >= ph.page_hi)
                sparse_page_ = ph.page_lo; // wrap: next pass
        }
        return a;
      }
      case PhaseSpec::Kind::SparseScan: {
        Addr a = sparse_page_ * psize + rng_.below(psize);
        if (++sparse_touch_ >= ph.touches_per_page) {
            sparse_touch_ = 0;
            if (++sparse_page_ >= ph.page_hi)
                sparse_page_ = ph.page_lo; // wrap: next pass
        }
        return a;
      }
      case PhaseSpec::Kind::Compute: {
        uint64_t span = ph.page_hi - ph.page_lo;
        if (span == 0)
            return hot_addr();
        uint64_t rank = phase_tables_[phase_idx_].sample(rng_);
        // Scatter ranks across the region so popularity is not
        // correlated with position.
        uint64_t page =
            ph.page_lo + (rank * 2654435761ULL) % span;
        return page * psize + rng_.below(psize);
      }
    }
    panic("unreachable phase kind");
}

Addr
SyntheticTrace::hot_addr()
{
    uint64_t hot_pages = std::max<uint64_t>(spec_.hot_pages, 1);
    uint64_t lines = hot_pages * (spec_.page_size / 64);
    uint64_t rank = hot_table_.valid() ? hot_table_.sample(rng_)
                                       : rng_.zipf(lines,
                                                   spec_.hot_zipf_skew);
    // Scatter popularity across the hot pages so every hot page
    // stays recently used.
    uint64_t line = (rank * 2654435761ULL) % lines;
    return line * 64 + rng_.below(64);
}

bool
SyntheticTrace::generate(TraceEvent &ev)
{
    while (phase_left_ == 0) {
        if (phase_idx_ + 1 >= spec_.phases.size())
            return false;
        enter_phase(phase_idx_ + 1);
    }
    --phase_left_;

    const PhaseSpec &ph = spec_.phases[phase_idx_];
    bool hot = spec_.hot_pages > 0 && rng_.chance(ph.hot_frac);
    if (hot) {
        ev.addr = hot_addr();
    } else {
        ev.addr = pattern_addr(ph);
    }
    ev.write = rng_.chance(ph.write_frac);
    return true;
}

bool
SyntheticTrace::next(TraceEvent &ev)
{
    return generate(ev);
}

size_t
SyntheticTrace::next_batch(TraceEvent *out, size_t n)
{
    size_t got = 0;
    while (got < n && generate(out[got]))
        ++got;
    return got;
}

} // namespace sgms
