#include "trace/trace_file.h"

#include <algorithm>
#include <cinttypes>
#include <cstring>

#include "common/logging.h"
#include "trace/binfmt.h"
#include "trace/mmap_trace.h"

namespace sgms
{

namespace
{
constexpr char MAGIC[4] = {'S', 'G', 'M', 'T'};
constexpr uint32_t VERSION = 1;
constexpr size_t RECORD_BYTES = 9; // 1 flag byte + 8 address bytes
constexpr size_t BUF_BYTES = 64 * 1024;

void
put_u32(std::FILE *f, uint32_t v)
{
    unsigned char b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = (v >> (8 * i)) & 0xff;
    std::fwrite(b, 1, 4, f);
}

void
put_u64(std::FILE *f, uint64_t v)
{
    unsigned char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = (v >> (8 * i)) & 0xff;
    std::fwrite(b, 1, 8, f);
}

bool
get_u32(std::FILE *f, uint32_t &v)
{
    unsigned char b[4];
    if (std::fread(b, 1, 4, f) != 4)
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(b[i]) << (8 * i);
    return true;
}

bool
get_u64(std::FILE *f, uint64_t &v)
{
    unsigned char b[8];
    if (std::fread(b, 1, 8, f) != 8)
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(b[i]) << (8 * i);
    return true;
}
} // namespace

void
write_trace_binary(TraceSource &trace, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    std::fwrite(MAGIC, 1, 4, f);
    put_u32(f, VERSION);
    // Count goes in a fixed slot; fill after the pass.
    long count_pos = std::ftell(f);
    put_u64(f, 0);
    uint64_t count = 0;
    TraceEvent ev;
    trace.reset();
    while (trace.next(ev)) {
        unsigned char flags = ev.write ? 1 : 0;
        std::fwrite(&flags, 1, 1, f);
        put_u64(f, ev.addr);
        ++count;
    }
    std::fseek(f, count_pos, SEEK_SET);
    put_u64(f, count);
    if (std::fclose(f) != 0)
        fatal("error writing trace file '%s'", path.c_str());
    trace.reset();
}

void
write_trace_text(TraceSource &trace, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    std::fprintf(f, "# sgms text trace\n");
    TraceEvent ev;
    trace.reset();
    while (trace.next(ev))
        std::fprintf(f, "%c %" PRIx64 "\n", ev.write ? 'W' : 'R',
                     ev.addr);
    if (std::fclose(f) != 0)
        fatal("error writing trace file '%s'", path.c_str());
    trace.reset();
}

std::unique_ptr<TraceSource>
open_trace(const std::string &path)
{
    if (is_bin_trace(path))
        return make_mapped_trace(path);
    return std::make_unique<FileTrace>(path);
}

FileTrace::FileTrace(const std::string &path)
    : path_(path), buf_(BUF_BYTES)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        fatal("cannot open trace file '%s'", path.c_str());
    char magic[4];
    size_t n = std::fread(magic, 1, 4, file_);
    if (n == 4 && std::memcmp(magic, MAGIC, 4) == 0) {
        binary_ = true;
        uint32_t version = 0;
        if (!get_u32(file_, version) || version != VERSION)
            fatal("trace file '%s': unsupported version", path.c_str());
        if (!get_u64(file_, count_))
            fatal("trace file '%s': truncated header", path.c_str());
        data_start_ = std::ftell(file_);
    } else if (n == 4 && std::memcmp(magic, "SGMB", 4) == 0) {
        fatal("trace file '%s' is an SGMB binary trace; open it with "
              "open_trace() / make_mapped_trace()",
              path.c_str());
    } else {
        binary_ = false;
        data_start_ = 0;
        std::fseek(file_, 0, SEEK_SET);
    }
}

FileTrace::~FileTrace()
{
    if (file_)
        std::fclose(file_);
}

bool
FileTrace::next(TraceEvent &ev)
{
    return next_batch(&ev, 1) == 1;
}

size_t
FileTrace::next_batch(TraceEvent *out, size_t n)
{
    return binary_ ? batch_binary(out, n) : batch_text(out, n);
}

void
FileTrace::refill()
{
    if (bpos_ > 0) {
        std::memmove(buf_.data(), buf_.data() + bpos_, blen_ - bpos_);
        blen_ -= bpos_;
        bpos_ = 0;
    }
    if (eof_)
        return;
    // Keep one spare byte for the text parser's terminator.
    size_t want = buf_.size() - 1 - blen_;
    size_t got = std::fread(buf_.data() + blen_, 1, want, file_);
    blen_ += got;
    if (got < want)
        eof_ = true;
}

size_t
FileTrace::batch_binary(TraceEvent *out, size_t n)
{
    size_t got = 0;
    while (got < n) {
        if (blen_ - bpos_ < RECORD_BYTES) {
            refill();
            if (blen_ - bpos_ == 0)
                break; // clean end of trace
            if (blen_ - bpos_ < RECORD_BYTES)
                fatal("trace file '%s': truncated record",
                      path_.c_str());
        }
        // Decode as many whole records as the buffer holds (or the
        // caller wants) without re-checking the buffer per record.
        size_t runnable = (blen_ - bpos_) / RECORD_BYTES;
        size_t run = std::min(n - got, runnable);
        const unsigned char *p =
            reinterpret_cast<const unsigned char *>(buf_.data()) + bpos_;
        for (size_t r = 0; r < run; ++r) {
            uint64_t addr = 0;
            for (int i = 0; i < 8; ++i)
                addr |= static_cast<uint64_t>(p[1 + i]) << (8 * i);
            out[got].addr = addr;
            out[got].write = p[0] & 1;
            ++got;
            p += RECORD_BYTES;
        }
        bpos_ += run * RECORD_BYTES;
    }
    return got;
}

size_t
FileTrace::batch_text(TraceEvent *out, size_t n)
{
    size_t got = 0;
    while (got < n) {
        char *base = buf_.data();
        char *nl = static_cast<char *>(
            std::memchr(base + bpos_, '\n', blen_ - bpos_));
        if (!nl) {
            if (!eof_) {
                // A line longer than the buffer cannot appear in a
                // sane trace, but grow rather than misparse it as
                // two lines (the old fgets reader did the latter).
                if (bpos_ == 0 && blen_ == buf_.size() - 1)
                    buf_.resize(buf_.size() * 2);
                refill();
                continue;
            }
            if (bpos_ == blen_)
                break; // clean end of trace
            // Final line without a trailing newline: terminate it in
            // the spare byte.
            base[blen_] = '\0';
            nl = base + blen_;
        } else {
            *nl = '\0';
        }
        const char *line = base + bpos_;
        bpos_ = static_cast<size_t>(nl - base);
        if (bpos_ < blen_)
            ++bpos_; // consume the newline itself
        // Skip blank lines and comments.
        while (*line == ' ' || *line == '\t' || *line == '\r')
            ++line;
        if (*line == '\0' || *line == '#')
            continue;
        char kind = 0;
        uint64_t addr = 0;
        if (std::sscanf(line, " %c %" SCNx64, &kind, &addr) != 2)
            fatal("trace file '%s': bad line '%s'", path_.c_str(),
                  line);
        if (kind != 'R' && kind != 'W' && kind != 'r' && kind != 'w')
            fatal("trace file '%s': bad access kind '%c'",
                  path_.c_str(), kind);
        out[got].addr = addr;
        out[got].write = kind == 'W' || kind == 'w';
        ++got;
    }
    return got;
}

void
FileTrace::reset()
{
    std::fseek(file_, data_start_, SEEK_SET);
    bpos_ = 0;
    blen_ = 0;
    eof_ = false;
}

} // namespace sgms
