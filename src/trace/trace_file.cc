#include "trace/trace_file.h"

#include <cinttypes>
#include <cstring>

#include "common/logging.h"

namespace sgms
{

namespace
{
constexpr char MAGIC[4] = {'S', 'G', 'M', 'T'};
constexpr uint32_t VERSION = 1;

void
put_u32(std::FILE *f, uint32_t v)
{
    unsigned char b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = (v >> (8 * i)) & 0xff;
    std::fwrite(b, 1, 4, f);
}

void
put_u64(std::FILE *f, uint64_t v)
{
    unsigned char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = (v >> (8 * i)) & 0xff;
    std::fwrite(b, 1, 8, f);
}

bool
get_u32(std::FILE *f, uint32_t &v)
{
    unsigned char b[4];
    if (std::fread(b, 1, 4, f) != 4)
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(b[i]) << (8 * i);
    return true;
}

bool
get_u64(std::FILE *f, uint64_t &v)
{
    unsigned char b[8];
    if (std::fread(b, 1, 8, f) != 8)
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(b[i]) << (8 * i);
    return true;
}
} // namespace

void
write_trace_binary(TraceSource &trace, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    std::fwrite(MAGIC, 1, 4, f);
    put_u32(f, VERSION);
    // Count goes in a fixed slot; fill after the pass.
    long count_pos = std::ftell(f);
    put_u64(f, 0);
    uint64_t count = 0;
    TraceEvent ev;
    trace.reset();
    while (trace.next(ev)) {
        unsigned char flags = ev.write ? 1 : 0;
        std::fwrite(&flags, 1, 1, f);
        put_u64(f, ev.addr);
        ++count;
    }
    std::fseek(f, count_pos, SEEK_SET);
    put_u64(f, count);
    if (std::fclose(f) != 0)
        fatal("error writing trace file '%s'", path.c_str());
    trace.reset();
}

void
write_trace_text(TraceSource &trace, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    std::fprintf(f, "# sgms text trace\n");
    TraceEvent ev;
    trace.reset();
    while (trace.next(ev))
        std::fprintf(f, "%c %" PRIx64 "\n", ev.write ? 'W' : 'R',
                     ev.addr);
    if (std::fclose(f) != 0)
        fatal("error writing trace file '%s'", path.c_str());
    trace.reset();
}

FileTrace::FileTrace(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        fatal("cannot open trace file '%s'", path.c_str());
    char magic[4];
    size_t n = std::fread(magic, 1, 4, file_);
    if (n == 4 && std::memcmp(magic, MAGIC, 4) == 0) {
        binary_ = true;
        uint32_t version = 0;
        if (!get_u32(file_, version) || version != VERSION)
            fatal("trace file '%s': unsupported version", path.c_str());
        if (!get_u64(file_, count_))
            fatal("trace file '%s': truncated header", path.c_str());
        data_start_ = std::ftell(file_);
    } else {
        binary_ = false;
        data_start_ = 0;
        std::fseek(file_, 0, SEEK_SET);
    }
}

FileTrace::~FileTrace()
{
    if (file_)
        std::fclose(file_);
}

bool
FileTrace::next(TraceEvent &ev)
{
    return binary_ ? next_binary(ev) : next_text(ev);
}

size_t
FileTrace::next_batch(TraceEvent *out, size_t n)
{
    size_t got = 0;
    if (binary_) {
        while (got < n && next_binary(out[got]))
            ++got;
    } else {
        while (got < n && next_text(out[got]))
            ++got;
    }
    return got;
}

bool
FileTrace::next_binary(TraceEvent &ev)
{
    unsigned char flags;
    if (std::fread(&flags, 1, 1, file_) != 1)
        return false;
    uint64_t addr;
    if (!get_u64(file_, addr))
        fatal("trace file '%s': truncated record", path_.c_str());
    ev.addr = addr;
    ev.write = flags & 1;
    return true;
}

bool
FileTrace::next_text(TraceEvent &ev)
{
    char line[256];
    while (std::fgets(line, sizeof(line), file_)) {
        char kind = 0;
        uint64_t addr = 0;
        if (line[0] == '#' || line[0] == '\n' || line[0] == '\0')
            continue;
        if (std::sscanf(line, " %c %" SCNx64, &kind, &addr) != 2)
            fatal("trace file '%s': bad line '%s'", path_.c_str(), line);
        if (kind != 'R' && kind != 'W' && kind != 'r' && kind != 'w')
            fatal("trace file '%s': bad access kind '%c'", path_.c_str(),
                  kind);
        ev.addr = addr;
        ev.write = kind == 'W' || kind == 'w';
        return true;
    }
    return false;
}

void
FileTrace::reset()
{
    std::fseek(file_, data_start_, SEEK_SET);
}

} // namespace sgms
