#include "trace/binfmt.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace sgms
{

namespace
{

constexpr char kMagic[4] = {'S', 'G', 'M', 'B'};
constexpr uint32_t kEndianTag = 0x01020304;
constexpr size_t kAppBytes = 16;

// Header field offsets (see binfmt.h layout table).
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 4;
constexpr size_t kOffEndian = 8;
constexpr size_t kOffRecordSize = 12;
constexpr size_t kOffRefCount = 16;
constexpr size_t kOffPayloadHash = 24;
constexpr size_t kOffSeed = 32;
constexpr size_t kOffScale = 40;
constexpr size_t kOffApp = 48;

template <typename T>
void
put(unsigned char *hdr, size_t off, T v)
{
    std::memcpy(hdr + off, &v, sizeof(T));
}

template <typename T>
T
get(const unsigned char *hdr, size_t off)
{
    T v;
    std::memcpy(&v, hdr + off, sizeof(T));
    return v;
}

} // namespace

uint64_t
fnv1a_bytes(const void *data, size_t len, uint64_t basis)
{
    constexpr uint64_t kPrime = 1099511628211ull;
    uint64_t h = basis;
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= kPrime;
    }
    return h;
}

uint64_t
write_bin_trace(TraceSource &src, const std::string &path,
                const std::string &app, double scale, uint64_t seed)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open trace file '%s' for writing", path.c_str());

    unsigned char hdr[kBinTraceHeaderBytes] = {};
    std::memcpy(hdr + kOffMagic, kMagic, sizeof(kMagic));
    put<uint32_t>(hdr, kOffVersion, kBinTraceVersion);
    put<uint32_t>(hdr, kOffEndian, kEndianTag);
    put<uint32_t>(hdr, kOffRecordSize,
                  static_cast<uint32_t>(kBinTraceRecordBytes));
    // ref_count and payload_hash are patched in after the pass.
    put<uint64_t>(hdr, kOffSeed, seed);
    put<double>(hdr, kOffScale, scale);
    std::memcpy(hdr + kOffApp, app.c_str(),
                std::min(app.size(), kAppBytes - 1));
    if (std::fwrite(hdr, 1, sizeof(hdr), f) != sizeof(hdr))
        fatal("error writing trace file '%s'", path.c_str());

    // One pass: pack a batch, hash it, write it.
    constexpr size_t kBatch = 4096;
    TraceEvent events[kBatch];
    uint64_t packed[kBatch];
    uint64_t count = 0;
    uint64_t hash = fnv1a_bytes(nullptr, 0); // offset basis
    src.reset();
    size_t n;
    while ((n = src.next_batch(events, kBatch)) > 0) {
        for (size_t i = 0; i < n; ++i) {
            if (events[i].addr >= (1ull << 63))
                fatal("trace file '%s': address 0x%llx uses the "
                      "reserved top bit",
                      path.c_str(),
                      static_cast<unsigned long long>(events[i].addr));
            packed[i] = pack_trace_event(events[i]);
        }
        hash = fnv1a_bytes(packed, n * sizeof(uint64_t), hash);
        if (std::fwrite(packed, sizeof(uint64_t), n, f) != n)
            fatal("error writing trace file '%s'", path.c_str());
        count += n;
    }

    if (std::fseek(f, static_cast<long>(kOffRefCount), SEEK_SET) != 0)
        fatal("error writing trace file '%s'", path.c_str());
    unsigned char patch[16];
    put<uint64_t>(patch, 0, count);
    put<uint64_t>(patch, 8, hash);
    if (std::fwrite(patch, 1, sizeof(patch), f) != sizeof(patch) ||
        std::fclose(f) != 0)
        fatal("error writing trace file '%s'", path.c_str());
    src.reset();
    return count;
}

bool
parse_bin_header(const void *data, size_t len, uint64_t file_size,
                 BinTraceHeader &hdr, std::string &error)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    if (len < kBinTraceHeaderBytes) {
        error = "truncated header (" + std::to_string(len) + " of " +
                std::to_string(kBinTraceHeaderBytes) + " bytes)";
        return false;
    }
    if (std::memcmp(p + kOffMagic, kMagic, sizeof(kMagic)) != 0) {
        error = "bad magic (not an SGMB trace)";
        return false;
    }
    uint32_t version = get<uint32_t>(p, kOffVersion);
    if (version != kBinTraceVersion) {
        error = "unsupported format version " + std::to_string(version) +
                " (expected " + std::to_string(kBinTraceVersion) + ")";
        return false;
    }
    if (get<uint32_t>(p, kOffEndian) != kEndianTag) {
        error = "endianness mismatch (file written on a machine with "
                "different byte order)";
        return false;
    }
    uint32_t record_size = get<uint32_t>(p, kOffRecordSize);
    if (record_size != kBinTraceRecordBytes) {
        error = "unexpected record size " + std::to_string(record_size);
        return false;
    }
    hdr.version = version;
    hdr.ref_count = get<uint64_t>(p, kOffRefCount);
    hdr.payload_hash = get<uint64_t>(p, kOffPayloadHash);
    hdr.seed = get<uint64_t>(p, kOffSeed);
    hdr.scale = get<double>(p, kOffScale);
    const char *app = reinterpret_cast<const char *>(p + kOffApp);
    hdr.app.assign(app, strnlen(app, kAppBytes));

    // Overflow-safe payload length check: ref_count is attacker
    // (well, file-) controlled, so validate against the actual size
    // before anyone computes record offsets from it.
    if (hdr.ref_count > (UINT64_MAX - kBinTraceHeaderBytes) /
                            kBinTraceRecordBytes) {
        error = "implausible reference count " +
                std::to_string(hdr.ref_count);
        return false;
    }
    uint64_t expected =
        kBinTraceHeaderBytes + hdr.ref_count * kBinTraceRecordBytes;
    if (file_size != expected) {
        error = "payload size mismatch (file is " +
                std::to_string(file_size) + " bytes, header declares " +
                std::to_string(expected) + ")";
        return false;
    }
    return true;
}

bool
read_bin_header(const std::string &path, BinTraceHeader &hdr,
                std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        error = "cannot open file";
        return false;
    }
    unsigned char buf[kBinTraceHeaderBytes];
    size_t n = std::fread(buf, 1, sizeof(buf), f);
    long long size = -1;
    if (std::fseek(f, 0, SEEK_END) == 0)
        size = std::ftell(f);
    std::fclose(f);
    if (size < 0) {
        error = "cannot determine file size";
        return false;
    }
    return parse_bin_header(buf, n, static_cast<uint64_t>(size), hdr,
                            error);
}

bool
is_bin_trace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    char magic[4];
    size_t n = std::fread(magic, 1, 4, f);
    std::fclose(f);
    return n == 4 && std::memcmp(magic, kMagic, 4) == 0;
}

} // namespace sgms
