/**
 * @file
 * Zero-copy replay of SGMB trace files through mmap(2).
 *
 * A MappedTraceFile is one immutable read-only mapping of a baked
 * trace, shared by shared_ptr exactly like the heap store's
 * PackedTrace buffers. Cursors (MmapReplayTrace) carry only their
 * own position, so any number of threads replay one mapping
 * concurrently with no locking and no per-reference copy or
 * allocation: next_batch unpacks records straight from the mapping
 * into the simulator's batch buffer.
 *
 * Because the mapping is backed by the file, replay throughput of a
 * cold trace is bounded by the page cache, not by a load pass:
 * startup to first reference is an open+mmap (microseconds, however
 * large the trace), traces far bigger than RAM replay with the
 * kernel paging the window in and out, and forked worker fleets
 * share one physical copy of every baked trace.
 */

#ifndef SGMS_TRACE_MMAP_TRACE_H
#define SGMS_TRACE_MMAP_TRACE_H

#include <memory>
#include <string>

#include "trace/binfmt.h"
#include "trace/trace.h"

namespace sgms
{

/** One shared read-only mapping of an SGMB file. */
class MappedTraceFile
{
  public:
    /**
     * Map @p path, validating the header first. Returns nullptr and
     * sets @p error on any problem (missing file, bad magic, wrong
     * version or endianness, truncation, mmap failure).
     */
    static std::shared_ptr<const MappedTraceFile>
    try_open(const std::string &path, std::string &error);

    /** Map @p path; fatal() with the validation error on failure. */
    static std::shared_ptr<const MappedTraceFile>
    open(const std::string &path);

    ~MappedTraceFile();

    MappedTraceFile(const MappedTraceFile &) = delete;
    MappedTraceFile &operator=(const MappedTraceFile &) = delete;

    const BinTraceHeader &header() const { return header_; }
    const std::string &path() const { return path_; }

    /** The record array inside the mapping (header().ref_count long). */
    const uint64_t *
    records() const
    {
        return reinterpret_cast<const uint64_t *>(
            static_cast<const unsigned char *>(base_) +
            kBinTraceHeaderBytes);
    }

    uint64_t size() const { return header_.ref_count; }

    /** Total bytes mapped (header + records). */
    uint64_t mapped_bytes() const { return mapped_bytes_; }

    /** FNV-1a over the mapped payload; compare to header().payload_hash. */
    uint64_t payload_hash() const;

  private:
    MappedTraceFile() = default;

    std::string path_;
    BinTraceHeader header_;
    void *base_ = nullptr;
    uint64_t mapped_bytes_ = 0;
};

/** Cursor over a shared mapping; cheap to create per point. */
class MmapReplayTrace : public TraceSource
{
  public:
    explicit MmapReplayTrace(std::shared_ptr<const MappedTraceFile> file)
        : file_(std::move(file))
    {}

    bool
    next(TraceEvent &ev) override
    {
        if (pos_ >= file_->size())
            return false;
        ev = unpack_trace_event(file_->records()[pos_++]);
        return true;
    }

    size_t
    next_batch(TraceEvent *out, size_t n) override
    {
        const uint64_t *rec = file_->records();
        uint64_t avail = file_->size() - pos_;
        size_t got = n < avail ? n : static_cast<size_t>(avail);
        for (size_t i = 0; i < got; ++i)
            out[i] = unpack_trace_event(rec[pos_ + i]);
        pos_ += got;
        return got;
    }

    void reset() override { pos_ = 0; }

    void
    skip(uint64_t n) override
    {
        uint64_t avail = file_->size() - pos_;
        pos_ += n < avail ? n : avail;
    }

    uint64_t size_hint() const override { return file_->size(); }

    /** Position the cursor (multi-cursor replay windows). */
    void seek(uint64_t ref_index) { pos_ = ref_index; }
    uint64_t position() const { return pos_; }

    /** The shared mapping (for tests asserting sharing). */
    const std::shared_ptr<const MappedTraceFile> &file() const
    {
        return file_;
    }

  private:
    std::shared_ptr<const MappedTraceFile> file_;
    uint64_t pos_ = 0;
};

/** Map @p path and return a replay cursor; fatal() on invalid files. */
std::unique_ptr<TraceSource> make_mapped_trace(const std::string &path);

} // namespace sgms

#endif // SGMS_TRACE_MMAP_TRACE_H
