/**
 * @file
 * Two-level cache simulator used to calibrate the simulation clock.
 *
 * Section 3.2 of the paper: "we traced those applications and ran the
 * traces through a cache simulator to model memory accesses. Using
 * the results of the cache simulator, we then calculated the average
 * time per trace event ... about 12 nanoseconds". This module is that
 * cache simulator: the default geometry matches the DEC Alpha 250
 * (16K direct-mapped L1, 2M direct-mapped board cache) and latencies
 * come from Table 1.
 */

#ifndef SGMS_CACHE_CACHE_SIM_H
#define SGMS_CACHE_CACHE_SIM_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "proto/palcode.h"
#include "trace/trace.h"

namespace sgms
{

/** Geometry of one cache level. */
struct CacheLevelConfig
{
    uint32_t size_bytes;
    uint32_t line_bytes;
    uint32_t associativity;
};

/** Where an access was satisfied. */
enum class CacheLevel : uint8_t
{
    L1,
    L2,
    Memory,
};

/** Per-level hit counters. */
struct CacheStats
{
    uint64_t l1_hits = 0;
    uint64_t l2_hits = 0;
    uint64_t misses = 0;

    uint64_t accesses() const { return l1_hits + l2_hits + misses; }

    /**
     * Average memory-access time in ticks using Table 1 latencies:
     * this is the paper's "time per trace event" calibration.
     */
    Tick average_access_time(const PalCosts &costs =
                                 PalCosts::alpha250()) const;
};

/** One set-associative (LRU) cache level. */
class CacheArray
{
  public:
    explicit CacheArray(CacheLevelConfig cfg);

    /** Access @p addr; fills on miss. True on hit. */
    bool access(Addr addr);

    const CacheLevelConfig &config() const { return cfg_; }

  private:
    struct Way
    {
        uint64_t tag = 0;
        uint64_t lru = 0;
        bool valid = false;
    };

    CacheLevelConfig cfg_;
    uint32_t sets_;
    uint32_t line_shift_;
    uint64_t tick_ = 0;
    std::vector<Way> ways_;
};

/** Two-level cache hierarchy. */
class CacheSim
{
  public:
    CacheSim(CacheLevelConfig l1, CacheLevelConfig l2);

    /** DEC Alpha 250 configuration. */
    static CacheSim alpha250();

    /** Access @p addr; returns the level that satisfied it. */
    CacheLevel access(Addr addr);

    const CacheStats &stats() const { return stats_; }

    /**
     * Run a whole trace and return the average access time — the
     * "ns per simulation event" the main simulator uses as its clock.
     */
    Tick calibrate(TraceSource &trace,
                   const PalCosts &costs = PalCosts::alpha250());

  private:
    CacheArray l1_;
    CacheArray l2_;
    CacheStats stats_;
};

} // namespace sgms

#endif // SGMS_CACHE_CACHE_SIM_H
