#include "cache/cache_sim.h"

#include "common/logging.h"

namespace sgms
{

Tick
CacheStats::average_access_time(const PalCosts &costs) const
{
    uint64_t n = accesses();
    if (n == 0)
        return 0;
    double total =
        static_cast<double>(l1_hits) * costs.l1_hit +
        static_cast<double>(l2_hits) * costs.l2_hit +
        static_cast<double>(misses) * costs.l2_miss;
    return static_cast<Tick>(total / n);
}

CacheArray::CacheArray(CacheLevelConfig cfg) : cfg_(cfg)
{
    if (!is_pow2(cfg.size_bytes) || !is_pow2(cfg.line_bytes) ||
        !is_pow2(cfg.associativity)) {
        fatal("cache: geometry must be powers of two");
    }
    uint32_t lines = cfg.size_bytes / cfg.line_bytes;
    if (cfg.associativity > lines)
        fatal("cache: associativity exceeds line count");
    sets_ = lines / cfg.associativity;
    line_shift_ = log2_exact(cfg.line_bytes);
    ways_.resize(static_cast<size_t>(sets_) * cfg.associativity);
}

bool
CacheArray::access(Addr addr)
{
    uint64_t line = addr >> line_shift_;
    uint32_t set = sets_ > 1 ? line & (sets_ - 1) : 0;
    uint64_t tag = line / sets_;
    Way *base = &ways_[static_cast<size_t>(set) * cfg_.associativity];
    ++tick_;

    for (uint32_t w = 0; w < cfg_.associativity; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lru = tick_;
            return true;
        }
    }
    Way *victim = nullptr;
    for (uint32_t w = 0; w < cfg_.associativity; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (!victim || base[w].lru < victim->lru)
            victim = &base[w];
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = tick_;
    return false;
}

CacheSim::CacheSim(CacheLevelConfig l1, CacheLevelConfig l2)
    : l1_(l1), l2_(l2)
{}

CacheSim
CacheSim::alpha250()
{
    // Alpha 21064A: 16K direct-mapped on-chip D-cache with 32-byte
    // lines; 2M direct-mapped board cache with 64-byte lines.
    return CacheSim({16 * 1024, 32, 1}, {2 * 1024 * 1024, 64, 1});
}

CacheLevel
CacheSim::access(Addr addr)
{
    if (l1_.access(addr)) {
        ++stats_.l1_hits;
        return CacheLevel::L1;
    }
    if (l2_.access(addr)) {
        ++stats_.l2_hits;
        return CacheLevel::L2;
    }
    ++stats_.misses;
    return CacheLevel::Memory;
}

Tick
CacheSim::calibrate(TraceSource &trace, const PalCosts &costs)
{
    TraceEvent ev;
    trace.reset();
    while (trace.next(ev))
        access(ev.addr);
    trace.reset();
    return stats_.average_access_time(costs);
}

} // namespace sgms
