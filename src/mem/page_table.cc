#include "mem/page_table.h"

#include <algorithm>

namespace sgms
{

PageTable::Frame &
PageTable::install(PageId page)
{
    SGMS_ASSERT(!full());
    SGMS_ASSERT(!find(page));
    ++resident_;
    policy_->insert(page);
    if (page < DENSE_LIMIT) {
        if (page >= dense_.size()) {
            size_t cap =
                std::max<size_t>(std::max<size_t>(64, page + 1),
                                 dense_.size() * 2);
            cap = std::min<size_t>(cap, DENSE_LIMIT);
            dense_.resize(cap);
            dense_present_.resize(cap, 0);
        }
        dense_present_[page] = 1;
        dense_[page] = Frame{};
        return dense_[page];
    }
    auto [it, inserted] = overflow_.try_emplace(page);
    SGMS_ASSERT(inserted);
    return it->second;
}

void
PageTable::touch(PageId page)
{
    policy_->touch(page);
}

void
PageTable::remove_storage(PageId page)
{
    if (page < DENSE_LIMIT) {
        SGMS_ASSERT(page < dense_.size() && dense_present_[page]);
        dense_present_[page] = 0;
    } else {
        size_t n = overflow_.erase(page);
        SGMS_ASSERT(n == 1);
    }
    --resident_;
}

PageId
PageTable::evict(Frame *state)
{
    PageId victim = policy_->victim();
    Frame *f = find(victim);
    SGMS_ASSERT(f);
    if (state)
        *state = *f;
    remove_storage(victim);
    ++evictions_;
    return victim;
}

void
PageTable::erase(PageId page)
{
    SGMS_ASSERT(find(page));
    policy_->erase(page);
    remove_storage(page);
}

bool
PageTable::mark_valid(PageId page, SubpageIndex idx)
{
    Frame *f = find(page);
    if (!f)
        return false;
    f->valid.set(idx);
    f->inflight &= ~(1ULL << idx);
    if (f->valid.complete(geo_.subpages_per_page()))
        f->complete = true;
    return true;
}

bool
PageTable::mark_all_valid(PageId page)
{
    Frame *f = find(page);
    if (!f)
        return false;
    f->valid.fill(geo_.subpages_per_page());
    f->inflight = 0;
    f->complete = true;
    return true;
}

} // namespace sgms
