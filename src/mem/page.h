/**
 * @file
 * Page and subpage geometry, and per-page subpage valid bits.
 *
 * Mirrors the prototype in the paper: a 64-bit valid-bit vector per
 * page (the Alpha prototype kept 32 bits for 256-byte blocks of an 8K
 * page; we allow any power-of-two subpage count up to 64).
 */

#ifndef SGMS_MEM_PAGE_H
#define SGMS_MEM_PAGE_H

#include <cstdint>

#include "common/logging.h"
#include "common/types.h"

namespace sgms
{

/** Geometry of the page/subpage split; immutable per simulation. */
class PageGeometry
{
  public:
    /**
     * @param page_size    full page size in bytes (power of two)
     * @param subpage_size subpage size in bytes (power of two,
     *                     <= page_size). Equal sizes mean "no
     *                     subpaging" (one subpage per page).
     */
    PageGeometry(uint32_t page_size, uint32_t subpage_size)
        : page_size_(page_size), subpage_size_(subpage_size),
          page_shift_(log2_exact(page_size)),
          subpage_shift_(log2_exact(subpage_size)),
          subpages_per_page_(page_size / subpage_size)
    {
        if (!is_pow2(page_size) || !is_pow2(subpage_size))
            fatal("page geometry: sizes must be powers of two");
        if (subpage_size > page_size)
            fatal("page geometry: subpage larger than page");
        if (subpages_per_page_ > 64)
            fatal("page geometry: more than 64 subpages per page");
    }

    uint32_t page_size() const { return page_size_; }
    uint32_t subpage_size() const { return subpage_size_; }
    uint32_t subpages_per_page() const { return subpages_per_page_; }

    PageId
    page_of(Addr addr) const
    {
        return addr >> page_shift_;
    }

    /** Subpage index of @p addr within its page. */
    SubpageIndex
    subpage_of(Addr addr) const
    {
        return static_cast<SubpageIndex>((addr >> subpage_shift_) &
                                         (subpages_per_page_ - 1));
    }

    Addr
    page_base(PageId page) const
    {
        return static_cast<Addr>(page) << page_shift_;
    }

    /** Byte offset of subpage @p idx within the page. */
    uint32_t
    subpage_offset(SubpageIndex idx) const
    {
        return idx << subpage_shift_;
    }

  private:
    uint32_t page_size_;
    uint32_t subpage_size_;
    uint32_t page_shift_;
    uint32_t subpage_shift_;
    uint32_t subpages_per_page_;
};

/** Per-page subpage valid bits (up to 64 subpages). */
class SubpageBitmap
{
  public:
    SubpageBitmap() = default;

    void
    set(SubpageIndex idx)
    {
        bits_ |= 1ULL << idx;
    }

    void
    clear(SubpageIndex idx)
    {
        bits_ &= ~(1ULL << idx);
    }

    bool
    test(SubpageIndex idx) const
    {
        return bits_ & (1ULL << idx);
    }

    /** Set all @p count subpages valid. */
    void
    fill(uint32_t count)
    {
        bits_ = count >= 64 ? ~0ULL : (1ULL << count) - 1;
    }

    void reset() { bits_ = 0; }

    /** True if all of the first @p count subpages are valid. */
    bool
    complete(uint32_t count) const
    {
        uint64_t mask = count >= 64 ? ~0ULL : (1ULL << count) - 1;
        return (bits_ & mask) == mask;
    }

    /** Number of valid subpages. */
    uint32_t popcount() const { return __builtin_popcountll(bits_); }

    uint64_t raw() const { return bits_; }

  private:
    uint64_t bits_ = 0;
};

} // namespace sgms

#endif // SGMS_MEM_PAGE_H
