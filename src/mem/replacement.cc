#include "mem/replacement.h"

#include "common/logging.h"
#include "obs/debug.h"

namespace sgms
{

PageId
LruPolicy::victim()
{
    SGMS_ASSERT(!order_.empty());
    PageId page = order_.pop_back();
    SGMS_DPRINTF(Mem, "lru: evict page %llu",
                 static_cast<unsigned long long>(page));
    return page;
}

void
FifoPolicy::insert(PageId page)
{
    SGMS_ASSERT(!order_.contains(page));
    order_.push_back(page);
}

PageId
FifoPolicy::victim()
{
    SGMS_ASSERT(!order_.empty());
    PageId page = order_.pop_front();
    SGMS_DPRINTF(Mem, "fifo: evict page %llu",
                 static_cast<unsigned long long>(page));
    return page;
}

void
ClockPolicy::insert(PageId page)
{
    SGMS_ASSERT(!map_.count(page));
    // Reuse a dead slot if the ring has one at the hand; otherwise
    // grow. Growth keeps this simple; rings stay small (resident set).
    for (size_t probe = 0; probe < ring_.size(); ++probe) {
        size_t i = (hand_ + probe) % ring_.size();
        if (!ring_[i].valid) {
            ring_[i] = {page, true, true};
            map_[page] = i;
            ++live_;
            return;
        }
    }
    map_[page] = ring_.size();
    ring_.push_back({page, true, true});
    ++live_;
}

void
ClockPolicy::touch(PageId page)
{
    auto it = map_.find(page);
    SGMS_ASSERT(it != map_.end());
    ring_[it->second].referenced = true;
}

void
ClockPolicy::erase(PageId page)
{
    auto it = map_.find(page);
    SGMS_ASSERT(it != map_.end());
    ring_[it->second].valid = false;
    map_.erase(it);
    --live_;
}

void
ClockPolicy::reserve(size_t pages)
{
    ring_.reserve(pages);
    map_.reserve(pages);
}

PageId
ClockPolicy::victim()
{
    SGMS_ASSERT(live_ > 0);
    for (;;) {
        Entry &e = ring_[hand_];
        hand_ = (hand_ + 1) % ring_.size();
        if (!e.valid)
            continue;
        if (e.referenced) {
            e.referenced = false;
            continue;
        }
        e.valid = false;
        map_.erase(e.page);
        --live_;
        SGMS_DPRINTF(Mem, "clock: evict page %llu",
                     static_cast<unsigned long long>(e.page));
        return e.page;
    }
}

std::unique_ptr<ReplacementPolicy>
make_replacement_policy(const std::string &name)
{
    if (name == "lru")
        return std::make_unique<LruPolicy>();
    if (name == "fifo")
        return std::make_unique<FifoPolicy>();
    if (name == "clock")
        return std::make_unique<ClockPolicy>();
    fatal("unknown replacement policy '%s'", name.c_str());
}

} // namespace sgms
