#include "mem/replacement.h"

#include "common/logging.h"
#include "obs/debug.h"

namespace sgms
{

LruPolicy::Iter
LruPolicy::find_iter(PageId page)
{
    if (page < DENSE_LIMIT) {
        SGMS_ASSERT(page < dense_.size() && dense_present_[page]);
        return dense_[page];
    }
    auto it = overflow_.find(page);
    SGMS_ASSERT(it != overflow_.end());
    return it->second;
}

void
LruPolicy::store_iter(PageId page, Iter it)
{
    if (page < DENSE_LIMIT) {
        if (page >= dense_.size()) {
            size_t cap = std::max<size_t>(
                std::max<size_t>(64, page + 1), dense_.size() * 2);
            cap = std::min<size_t>(cap, DENSE_LIMIT);
            dense_.resize(cap);
            dense_present_.resize(cap, 0);
        }
        dense_[page] = it;
        dense_present_[page] = 1;
    } else {
        overflow_[page] = it;
    }
}

void
LruPolicy::drop_iter(PageId page)
{
    if (page < DENSE_LIMIT) {
        SGMS_ASSERT(page < dense_.size() && dense_present_[page]);
        dense_present_[page] = 0;
    } else {
        size_t n = overflow_.erase(page);
        SGMS_ASSERT(n == 1);
    }
}

void
LruPolicy::insert(PageId page)
{
    order_.push_front(page);
    store_iter(page, order_.begin());
    ++size_;
}

void
LruPolicy::touch(PageId page)
{
    order_.splice(order_.begin(), order_, find_iter(page));
}

void
LruPolicy::erase(PageId page)
{
    order_.erase(find_iter(page));
    drop_iter(page);
    --size_;
}

PageId
LruPolicy::victim()
{
    SGMS_ASSERT(!order_.empty());
    PageId page = order_.back();
    order_.pop_back();
    drop_iter(page);
    --size_;
    SGMS_DPRINTF(Mem, "lru: evict page %llu",
                 static_cast<unsigned long long>(page));
    return page;
}

void
FifoPolicy::insert(PageId page)
{
    SGMS_ASSERT(!map_.count(page));
    order_.push_back(page);
    map_[page] = std::prev(order_.end());
}

void
FifoPolicy::erase(PageId page)
{
    auto it = map_.find(page);
    SGMS_ASSERT(it != map_.end());
    order_.erase(it->second);
    map_.erase(it);
}

PageId
FifoPolicy::victim()
{
    SGMS_ASSERT(!order_.empty());
    PageId page = order_.front();
    order_.pop_front();
    map_.erase(page);
    SGMS_DPRINTF(Mem, "fifo: evict page %llu",
                 static_cast<unsigned long long>(page));
    return page;
}

void
ClockPolicy::insert(PageId page)
{
    SGMS_ASSERT(!map_.count(page));
    // Reuse a dead slot if the ring has one at the hand; otherwise
    // grow. Growth keeps this simple; rings stay small (resident set).
    for (size_t probe = 0; probe < ring_.size(); ++probe) {
        size_t i = (hand_ + probe) % ring_.size();
        if (!ring_[i].valid) {
            ring_[i] = {page, true, true};
            map_[page] = i;
            ++live_;
            return;
        }
    }
    map_[page] = ring_.size();
    ring_.push_back({page, true, true});
    ++live_;
}

void
ClockPolicy::touch(PageId page)
{
    auto it = map_.find(page);
    SGMS_ASSERT(it != map_.end());
    ring_[it->second].referenced = true;
}

void
ClockPolicy::erase(PageId page)
{
    auto it = map_.find(page);
    SGMS_ASSERT(it != map_.end());
    ring_[it->second].valid = false;
    map_.erase(it);
    --live_;
}

PageId
ClockPolicy::victim()
{
    SGMS_ASSERT(live_ > 0);
    for (;;) {
        Entry &e = ring_[hand_];
        hand_ = (hand_ + 1) % ring_.size();
        if (!e.valid)
            continue;
        if (e.referenced) {
            e.referenced = false;
            continue;
        }
        e.valid = false;
        map_.erase(e.page);
        --live_;
        SGMS_DPRINTF(Mem, "clock: evict page %llu",
                     static_cast<unsigned long long>(e.page));
        return e.page;
    }
}

std::unique_ptr<ReplacementPolicy>
make_replacement_policy(const std::string &name)
{
    if (name == "lru")
        return std::make_unique<LruPolicy>();
    if (name == "fifo")
        return std::make_unique<FifoPolicy>();
    if (name == "clock")
        return std::make_unique<ClockPolicy>();
    fatal("unknown replacement policy '%s'", name.c_str());
}

} // namespace sgms
