/**
 * @file
 * Resident-set tracking: which pages are in local memory, which of
 * their subpages are valid, and what is still in flight.
 *
 * Storage is hybrid: pages below a dense limit live in a flat array
 * indexed by page id (the common case — trace address spaces are
 * small and dense, and the simulator does a lookup per reference);
 * pages above it fall back to a hash map, so arbitrary 64-bit trace
 * addresses still work.
 */

#ifndef SGMS_MEM_PAGE_TABLE_H
#define SGMS_MEM_PAGE_TABLE_H

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/page.h"
#include "mem/replacement.h"

namespace sgms
{

/**
 * Capacity-limited table of resident pages with subpage state and a
 * replacement policy. The simulator owns the transfer machinery; the
 * table only records state.
 */
class PageTable
{
  public:
    /** Per-resident-page state. */
    struct Frame
    {
        /** Which subpages hold valid data. */
        SubpageBitmap valid;
        /** Subpages with a transfer in flight (bitmask). */
        uint64_t inflight = 0;
        /** All subpages valid: fast-path flag. */
        bool complete = false;
        /** The page has been written since installation. */
        bool dirty = false;
        /**
         * Subpage faulted on most recently, while the simulator is
         * watching for the first access to a *different* subpage
         * (Figure 7's distance metric); -1 when not watching.
         */
        int16_t watch_from = -1;
        /** Id of the fault that brought this page in (accounting). */
        uint64_t fault_id = 0;
        /** Reference index of the last replacement-policy touch. */
        uint64_t last_touch = 0;

        /** True if subpage @p idx has a transfer in flight. */
        bool
        subpage_inflight(SubpageIndex idx) const
        {
            return inflight & (1ULL << idx);
        }
    };

    /**
     * @param geo      page/subpage geometry
     * @param capacity max resident pages (0 = unlimited, "full-mem")
     * @param policy   replacement policy name (lru/fifo/clock)
     */
    PageTable(const PageGeometry &geo, size_t capacity,
              const std::string &policy = "lru")
        : geo_(geo), capacity_(capacity),
          policy_(make_replacement_policy(policy))
    {}

    /** Frame of @p page, or nullptr if not resident. */
    Frame *
    find(PageId page)
    {
        if (page < dense_.size())
            return dense_present_[page] ? &dense_[page] : nullptr;
        if (page < DENSE_LIMIT)
            return nullptr;
        auto it = overflow_.find(page);
        return it == overflow_.end() ? nullptr : &it->second;
    }

    /** True when installing a page requires an eviction first. */
    bool
    full() const
    {
        return capacity_ != 0 && resident_ >= capacity_;
    }

    /** Number of currently resident pages. */
    size_t resident() const { return resident_; }

    size_t capacity() const { return capacity_; }

    /**
     * Install @p page (must not be resident; table must not be full).
     * The new frame starts with no valid subpages.
     */
    Frame &install(PageId page);

    /** Record a reference for the replacement policy. */
    void touch(PageId page);

    /**
     * Evict the policy's victim; returns its id. If @p state is
     * non-null, the victim's frame state is copied out first (the
     * caller needs the dirty bit for putpage).
     */
    PageId evict(Frame *state = nullptr);

    /** Remove a specific page (testing / invalidation). */
    void erase(PageId page);

    /**
     * Mark subpage @p idx of @p page valid (arrival); updates the
     * complete flag and clears the in-flight bit. The page may have
     * been evicted while the transfer was in flight; returns false in
     * that case (late arrival dropped).
     */
    bool mark_valid(PageId page, SubpageIndex idx);

    /** Mark every subpage of @p page valid. */
    bool mark_all_valid(PageId page);

    const PageGeometry &geometry() const { return geo_; }

    /** Eviction count since construction. */
    uint64_t evictions() const { return evictions_; }

    /**
     * Pre-size storage for a trace expected to touch @p pages pages
     * (trace address spaces are dense from 0, so the footprint also
     * bounds the dense id range). Purely an optimization hint.
     */
    void
    reserve(size_t pages)
    {
        policy_->reserve(pages);
        size_t cap = std::min<size_t>(pages, DENSE_LIMIT);
        if (cap > dense_.size()) {
            dense_.resize(cap);
            dense_present_.resize(cap, 0);
        }
    }

  private:
    /** Pages below this id use the flat array. */
    static constexpr PageId DENSE_LIMIT = 1ULL << 17;

    void remove_storage(PageId page);

    PageGeometry geo_;
    size_t capacity_;
    std::unique_ptr<ReplacementPolicy> policy_;

    std::vector<Frame> dense_;
    std::vector<uint8_t> dense_present_;
    std::unordered_map<PageId, Frame> overflow_;
    size_t resident_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace sgms

#endif // SGMS_MEM_PAGE_TABLE_H
