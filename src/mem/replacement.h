/**
 * @file
 * Pluggable page replacement policies for the resident set.
 *
 * The paper's simulator uses "a configurable memory management
 * module; an LRU policy is used by default". LRU is the default here
 * too; FIFO and Clock are provided for the replacement ablation.
 */

#ifndef SGMS_MEM_REPLACEMENT_H
#define SGMS_MEM_REPLACEMENT_H

#include <algorithm>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace sgms
{

/** Interface for page replacement policies. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** A page became resident. */
    virtual void insert(PageId page) = 0;

    /** A resident page was referenced. */
    virtual void touch(PageId page) = 0;

    /** A page was explicitly removed (not via victim()). */
    virtual void erase(PageId page) = 0;

    /** Choose and remove the replacement victim. */
    virtual PageId victim() = 0;

    /** Number of tracked pages. */
    virtual size_t size() const = 0;

    virtual const char *name() const = 0;
};

/**
 * Exact LRU via intrusive list. Iterators for small page ids live in
 * a flat array (one lookup per simulated reference makes this hot);
 * large ids fall back to a hash map.
 */
class LruPolicy : public ReplacementPolicy
{
  public:
    void insert(PageId page) override;
    void touch(PageId page) override;
    void erase(PageId page) override;
    PageId victim() override;
    size_t size() const override { return size_; }
    const char *name() const override { return "lru"; }

  private:
    using Iter = std::list<PageId>::iterator;
    static constexpr PageId DENSE_LIMIT = 1ULL << 17;

    Iter find_iter(PageId page);
    void store_iter(PageId page, Iter it);
    void drop_iter(PageId page);

    std::list<PageId> order_; // front = most recent
    std::vector<Iter> dense_;
    std::vector<uint8_t> dense_present_;
    std::unordered_map<PageId, Iter> overflow_;
    size_t size_ = 0;
};

/** FIFO: evict in arrival order; references don't matter. */
class FifoPolicy : public ReplacementPolicy
{
  public:
    void insert(PageId page) override;
    void touch(PageId /* page */) override {}
    void erase(PageId page) override;
    PageId victim() override;
    size_t size() const override { return map_.size(); }
    const char *name() const override { return "fifo"; }

  private:
    std::list<PageId> order_; // front = oldest
    std::unordered_map<PageId, std::list<PageId>::iterator> map_;
};

/** Second-chance Clock. */
class ClockPolicy : public ReplacementPolicy
{
  public:
    void insert(PageId page) override;
    void touch(PageId page) override;
    void erase(PageId page) override;
    PageId victim() override;
    size_t size() const override { return map_.size(); }
    const char *name() const override { return "clock"; }

  private:
    struct Entry
    {
        PageId page;
        bool referenced;
        bool valid;
    };

    std::vector<Entry> ring_;
    size_t hand_ = 0;
    size_t live_ = 0;
    std::unordered_map<PageId, size_t> map_;
};

/** Factory: "lru", "fifo", or "clock". */
std::unique_ptr<ReplacementPolicy>
make_replacement_policy(const std::string &name);

} // namespace sgms

#endif // SGMS_MEM_REPLACEMENT_H
