/**
 * @file
 * Pluggable page replacement policies for the resident set.
 *
 * The paper's simulator uses "a configurable memory management
 * module; an LRU policy is used by default". LRU is the default here
 * too; FIFO and Clock are provided for the replacement ablation.
 *
 * LRU and FIFO share an intrusive order list (DESIGN.md §13): nodes
 * live in a contiguous pool linked by 32-bit indices, and a dense
 * page-indexed array maps a page id to its node in one array load —
 * no hashing and no per-insert allocation for pages below the dense
 * limit. A policy touch is the single hottest non-trace operation in
 * the simulator (one per TOUCH_GRANULARITY references).
 */

#ifndef SGMS_MEM_REPLACEMENT_H
#define SGMS_MEM_REPLACEMENT_H

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace sgms
{

/** Interface for page replacement policies. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** A page became resident. */
    virtual void insert(PageId page) = 0;

    /** A resident page was referenced. */
    virtual void touch(PageId page) = 0;

    /** A page was explicitly removed (not via victim()). */
    virtual void erase(PageId page) = 0;

    /** Choose and remove the replacement victim. */
    virtual PageId victim() = 0;

    /** Number of tracked pages. */
    virtual size_t size() const = 0;

    /** Pre-size internal storage for @p pages resident pages. */
    virtual void reserve(size_t /* pages */) {}

    virtual const char *name() const = 0;
};

/**
 * Recency/arrival order list over pooled nodes.
 *
 * Pages below DENSE_LIMIT resolve to their node through a flat
 * array indexed by page id (NIL when absent); larger ids fall back
 * to a hash map. Nodes are recycled through a free list, so a
 * policy at steady state (insert/touch/victim churn) performs no
 * allocation at all.
 */
class PageOrderList
{
  public:
    /** O(1): link @p page at the front (most-recent end). */
    void
    push_front(PageId page)
    {
        uint32_t n = acquire(page);
        link_front(n);
        store_index(page, n);
        ++size_;
    }

    /** O(1): link @p page at the back (oldest end). */
    void
    push_back(PageId page)
    {
        uint32_t n = acquire(page);
        link_back(n);
        store_index(page, n);
        ++size_;
    }

    /** O(1), allocation-free: move @p page to the front. */
    void
    move_front(PageId page)
    {
        uint32_t n = find_index(page);
        if (n == head_)
            return;
        unlink(n);
        link_front(n);
    }

    /** O(1): unlink @p page (must be present). */
    void
    remove(PageId page)
    {
        uint32_t n = find_index(page);
        unlink(n);
        release(page, n);
        --size_;
    }

    /** Unlink and return the page at the back. */
    PageId
    pop_back()
    {
        SGMS_ASSERT(tail_ != NIL);
        uint32_t n = tail_;
        PageId page = nodes_[n].page;
        unlink(n);
        release(page, n);
        --size_;
        return page;
    }

    /** Unlink and return the page at the front. */
    PageId
    pop_front()
    {
        SGMS_ASSERT(head_ != NIL);
        uint32_t n = head_;
        PageId page = nodes_[n].page;
        unlink(n);
        release(page, n);
        --size_;
        return page;
    }

    bool
    contains(PageId page) const
    {
        if (page < DENSE_LIMIT)
            return page < dense_.size() && dense_[page] != NIL;
        return overflow_.count(page) != 0;
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Pre-size the pool and index for @p pages entries. */
    void
    reserve(size_t pages)
    {
        nodes_.reserve(pages);
        free_.reserve(pages);
        if (pages > dense_.size() && pages <= DENSE_LIMIT)
            dense_.resize(pages, NIL);
    }

  private:
    static constexpr uint32_t NIL = UINT32_MAX;
    static constexpr PageId DENSE_LIMIT = 1ULL << 17;

    struct Node
    {
        PageId page;
        uint32_t prev;
        uint32_t next;
    };

    uint32_t
    acquire(PageId page)
    {
        uint32_t n;
        if (!free_.empty()) {
            n = free_.back();
            free_.pop_back();
        } else {
            n = static_cast<uint32_t>(nodes_.size());
            nodes_.push_back(Node{});
        }
        nodes_[n].page = page;
        return n;
    }

    void
    release(PageId page, uint32_t n)
    {
        free_.push_back(n);
        drop_index(page);
    }

    void
    link_front(uint32_t n)
    {
        nodes_[n].prev = NIL;
        nodes_[n].next = head_;
        if (head_ != NIL)
            nodes_[head_].prev = n;
        head_ = n;
        if (tail_ == NIL)
            tail_ = n;
    }

    void
    link_back(uint32_t n)
    {
        nodes_[n].next = NIL;
        nodes_[n].prev = tail_;
        if (tail_ != NIL)
            nodes_[tail_].next = n;
        tail_ = n;
        if (head_ == NIL)
            head_ = n;
    }

    void
    unlink(uint32_t n)
    {
        Node &node = nodes_[n];
        if (node.prev != NIL)
            nodes_[node.prev].next = node.next;
        else
            head_ = node.next;
        if (node.next != NIL)
            nodes_[node.next].prev = node.prev;
        else
            tail_ = node.prev;
    }

    uint32_t
    find_index(PageId page) const
    {
        if (page < DENSE_LIMIT) {
            SGMS_ASSERT(page < dense_.size() && dense_[page] != NIL);
            return dense_[page];
        }
        auto it = overflow_.find(page);
        SGMS_ASSERT(it != overflow_.end());
        return it->second;
    }

    void
    store_index(PageId page, uint32_t n)
    {
        if (page < DENSE_LIMIT) {
            if (page >= dense_.size()) {
                size_t cap = std::max<size_t>(
                    std::max<size_t>(64, page + 1), dense_.size() * 2);
                cap = std::min<size_t>(cap, DENSE_LIMIT);
                dense_.resize(cap, NIL);
            }
            dense_[page] = n;
        } else {
            overflow_[page] = n;
        }
    }

    void
    drop_index(PageId page)
    {
        if (page < DENSE_LIMIT) {
            dense_[page] = NIL;
        } else {
            size_t n = overflow_.erase(page);
            SGMS_ASSERT(n == 1);
        }
    }

    std::vector<Node> nodes_;
    std::vector<uint32_t> free_;
    std::vector<uint32_t> dense_; // page id -> node, NIL when absent
    std::unordered_map<PageId, uint32_t> overflow_;
    uint32_t head_ = NIL; // most recent (LRU) / newest (FIFO back)
    uint32_t tail_ = NIL;
    size_t size_ = 0;
};

/** Exact LRU over the intrusive order list; front = most recent. */
class LruPolicy : public ReplacementPolicy
{
  public:
    void insert(PageId page) override { order_.push_front(page); }
    void touch(PageId page) override { order_.move_front(page); }
    void erase(PageId page) override { order_.remove(page); }
    PageId victim() override;
    size_t size() const override { return order_.size(); }
    void reserve(size_t pages) override { order_.reserve(pages); }
    const char *name() const override { return "lru"; }

  private:
    PageOrderList order_;
};

/** FIFO: evict in arrival order; references don't matter. */
class FifoPolicy : public ReplacementPolicy
{
  public:
    void insert(PageId page) override;
    void touch(PageId /* page */) override {}
    void erase(PageId page) override { order_.remove(page); }
    PageId victim() override;
    size_t size() const override { return order_.size(); }
    void reserve(size_t pages) override { order_.reserve(pages); }
    const char *name() const override { return "fifo"; }

  private:
    PageOrderList order_; // front = oldest
};

/** Second-chance Clock. */
class ClockPolicy : public ReplacementPolicy
{
  public:
    void insert(PageId page) override;
    void touch(PageId page) override;
    void erase(PageId page) override;
    PageId victim() override;
    size_t size() const override { return map_.size(); }
    void reserve(size_t pages) override;
    const char *name() const override { return "clock"; }

  private:
    struct Entry
    {
        PageId page;
        bool referenced;
        bool valid;
    };

    std::vector<Entry> ring_;
    size_t hand_ = 0;
    size_t live_ = 0;
    std::unordered_map<PageId, size_t> map_;
};

/** Factory: "lru", "fifo", or "clock". */
std::unique_ptr<ReplacementPolicy>
make_replacement_policy(const std::string &name);

} // namespace sgms

#endif // SGMS_MEM_REPLACEMENT_H
