#include "mem/tlb.h"

#include <cstddef>

namespace sgms
{

Tlb::Tlb(uint32_t entries, uint32_t associativity, uint32_t page_size)
    : entries_(entries), assoc_(associativity),
      sets_(entries / associativity), page_size_(page_size),
      page_shift_(log2_exact(page_size))
{
    if (!is_pow2(entries) || !is_pow2(associativity) ||
        !is_pow2(page_size)) {
        fatal("tlb: entries, associativity and page size must be "
              "powers of two");
    }
    if (associativity > entries)
        fatal("tlb: associativity exceeds entry count");
    ways_.resize(static_cast<size_t>(sets_) * assoc_);
}

bool
Tlb::access(Addr addr)
{
    uint64_t vpn = addr >> page_shift_;
    uint32_t set = sets_ > 1 ? vpn & (sets_ - 1) : 0;
    Way *base = &ways_[static_cast<size_t>(set) * assoc_];
    ++tick_;

    for (uint32_t w = 0; w < assoc_; ++w) {
        Way &way = base[w];
        if (way.valid && way.vpn == vpn) {
            way.lru = tick_;
            ++stats_.hits;
            return true;
        }
    }

    // Miss: fill into an invalid way if any, else the LRU way.
    Way *victim = nullptr;
    for (uint32_t w = 0; w < assoc_; ++w) {
        Way &way = base[w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (!victim || way.lru < victim->lru)
            victim = &way;
    }
    ++stats_.misses;
    victim->valid = true;
    victim->vpn = vpn;
    victim->lru = tick_;
    return false;
}

void
Tlb::flush()
{
    for (auto &w : ways_)
        w.valid = false;
}

} // namespace sgms
