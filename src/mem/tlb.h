/**
 * @file
 * Set-associative TLB model.
 *
 * Used for the small-pages-vs-subpages comparison (paper section
 * 2.1): shrinking the page size multiplies the number of translations
 * a fixed-size TLB must cover, raising the miss rate. Subpages keep
 * full-page translations, so they do not pay this cost.
 */

#ifndef SGMS_MEM_TLB_H
#define SGMS_MEM_TLB_H

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace sgms
{

/** TLB statistics. */
struct TlbStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;

    uint64_t accesses() const { return hits + misses; }

    double
    miss_rate() const
    {
        return accesses() ? static_cast<double>(misses) / accesses()
                          : 0.0;
    }
};

/** LRU set-associative TLB keyed by virtual page number. */
class Tlb
{
  public:
    /**
     * @param entries       total entries (power of two)
     * @param associativity ways per set (power of two, <= entries)
     * @param page_size     translation granularity in bytes
     */
    Tlb(uint32_t entries, uint32_t associativity, uint32_t page_size);

    /**
     * Look up the translation for @p addr, updating LRU state and
     * filling on miss. Returns true on hit.
     */
    bool access(Addr addr);

    /** Drop every entry (context switch / page-size change). */
    void flush();

    const TlbStats &stats() const { return stats_; }

    uint32_t entries() const { return entries_; }
    uint32_t page_size() const { return page_size_; }

    /** Total address space one fill covers: entries * page_size. */
    uint64_t
    coverage() const
    {
        return static_cast<uint64_t>(entries_) * page_size_;
    }

  private:
    struct Way
    {
        uint64_t vpn = ~0ULL;
        uint64_t lru = 0; // higher = more recent
        bool valid = false;
    };

    uint32_t entries_;
    uint32_t assoc_;
    uint32_t sets_;
    uint32_t page_size_;
    uint32_t page_shift_;
    uint64_t tick_ = 0;
    std::vector<Way> ways_; // sets_ x assoc_, row-major
    TlbStats stats_;
};

} // namespace sgms

#endif // SGMS_MEM_TLB_H
