#include "gms/gms.h"

namespace sgms
{

void
GmsCluster::put_page(Tick now, PageId page, uint32_t page_bytes,
                     bool dirty)
{
    bool newly_stored = evicted_.insert(page).second;
    if (cfg_.server_capacity_pages != 0 && newly_stored) {
        ServerStore &store = per_server_[server_of(page)];
        store.fifo.push_back(page);
        if (store.fifo.size() > cfg_.server_capacity_pages) {
            PageId dropped = store.fifo.front();
            store.fifo.pop_front();
            evicted_.erase(dropped);
            ++discards_;
        }
    }
    if (!cfg_.putpage_traffic || !dirty)
        return;
    ++putpages_;
    net_.send(now, {requester_, server_of(page), page_bytes,
                    MsgKind::PutPage, false, nullptr});
}

} // namespace sgms
