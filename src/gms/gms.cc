#include "gms/gms.h"

#include "obs/debug.h"

namespace sgms
{

void
GmsCluster::put_page(Tick now, PageId page, uint32_t page_bytes,
                     bool dirty, NodeId from)
{
    bool newly_stored = evicted_.insert(page).second;
    if (cfg_.server_capacity_pages != 0 && newly_stored) {
        ServerStore &store = per_server_[server_of(page)];
        store.fifo.push_back(page);
        if (store.fifo.size() > cfg_.server_capacity_pages) {
            PageId dropped = store.fifo.front();
            store.fifo.pop_front();
            evicted_.erase(dropped);
            ++discards_;
            if (c_discards_)
                c_discards_->inc();
            SGMS_DPRINTF(Gms, "server %u full, discarding page %llu",
                         server_of(dropped),
                         static_cast<unsigned long long>(dropped));
            SGMS_TRACE_INSTANT(tracer_, Gms, "discard", "gms", now,
                               dropped, 0,
                               static_cast<int64_t>(server_of(dropped)));
        }
    }
    if (!cfg_.putpage_traffic || !dirty)
        return;
    ++putpages_;
    if (c_putpages_)
        c_putpages_->inc();
    SGMS_DPRINTF(Gms, "putpage page %llu -> server %u (%u bytes)",
                 static_cast<unsigned long long>(page), server_of(page),
                 page_bytes);
    SGMS_TRACE_INSTANT(tracer_, Gms, "putpage", "gms", now, page,
                       static_cast<int64_t>(page_bytes),
                       static_cast<int64_t>(server_of(page)));
    net_.send(now, {from, server_of(page), page_bytes,
                    MsgKind::PutPage, false, nullptr});
}

} // namespace sgms
