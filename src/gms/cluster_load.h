/**
 * @file
 * Background cluster load: other active GMS clients.
 *
 * The paper's experiments run a single active node against idle
 * servers. In a deployed global memory system the servers also field
 * getpage traffic from other nodes, which contends with the traced
 * program at the server CPU and DMA stages. This injector models
 * that: each server periodically serves a synthetic remote fetch
 * (demand subpage + rest of page) to a phantom node, at a rate set
 * by a target utilization.
 */

#ifndef SGMS_GMS_CLUSTER_LOAD_H
#define SGMS_GMS_CLUSTER_LOAD_H

#include <cstdint>

#include "common/random.h"
#include "common/types.h"
#include "net/network.h"
#include "sim/event_queue.h"

namespace sgms
{

/** Configuration of the background cluster load. */
struct ClusterLoadConfig
{
    /**
     * Target utilization of each server's DMA engine by foreign
     * traffic, 0..~0.8. Zero disables the injector.
     */
    double server_utilization = 0.0;

    /** Subpage size foreign clients use for their demand fetches. */
    uint32_t subpage_bytes = 1024;

    /** Page size foreign clients fetch. */
    uint32_t page_bytes = 8192;

    uint64_t seed = 12345;
};

/** Drives synthetic foreign fetches through the servers. */
class ClusterLoad
{
  public:
    /**
     * @param eq        shared event queue
     * @param net       cluster network
     * @param cfg       load parameters
     * @param servers   number of GMS servers (nodes 1..servers when
     *                  the requester is node 0)
     * @param requester the traced node (phantom destinations are
     *                  placed far above it)
     */
    ClusterLoad(EventQueue &eq, Network &net, ClusterLoadConfig cfg,
                uint32_t servers, NodeId requester = 0);

    /** Foreign fetches injected so far. */
    uint64_t injected() const { return injected_; }

  private:
    void schedule_next(NodeId server, Tick now);
    void inject(NodeId server, Tick now);
    Tick mean_interval() const;

    EventQueue &eq_;
    Network &net_;
    ClusterLoadConfig cfg_;
    NodeId requester_;
    Rng rng_;
    uint64_t injected_ = 0;
};

} // namespace sgms

#endif // SGMS_GMS_CLUSTER_LOAD_H
