/**
 * @file
 * Global memory system: the network-wide page cache.
 *
 * Models the GMS substrate of [Feeley et al., SOSP'95] at the level
 * this paper's simulator needs: a directory mapping each page to the
 * idle node storing it, a warm/cold global cache, and putpage
 * (eviction) traffic. Faulted pages whose data is not in any remote
 * memory are serviced from disk.
 */

#ifndef SGMS_GMS_GMS_H
#define SGMS_GMS_GMS_H

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/types.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace sgms
{

/** Configuration of the global memory cluster. */
struct GmsConfig
{
    /** Number of idle nodes storing global pages. */
    uint32_t servers = 4;

    /**
     * Warm global cache: every page starts out stored in network
     * memory (the paper's experimental setup). When false, a page is
     * only in global memory after the faulting node evicts it there.
     */
    bool warm = true;

    /**
     * Send putpage messages for evicted dirty pages (they occupy the
     * network as background traffic).
     */
    bool putpage_traffic = true;

    /**
     * Idle memory available per server for evicted pages, in pages;
     * 0 = unlimited (the paper's assumption). With a finite
     * capacity, the oldest evicted page is discarded from global
     * memory when a server fills up, and a later fault on it must go
     * to disk (only observable in cold-cache mode, since a warm
     * cache by definition holds everything).
     */
    uint64_t server_capacity_pages = 0;
};

/** Directory + server placement for the global page cache. */
class GmsCluster
{
  public:
    /**
     * @param net       cluster interconnect
     * @param cfg       cluster configuration
     * @param requester node id of the faulting (traced) node;
     *                  servers get ids requester+1 ... requester+N
     * @param tracer    optional span tracer (putpage/discard events)
     * @param metrics   optional registry for gms.* counters
     */
    GmsCluster(Network &net, GmsConfig cfg, NodeId requester = 0,
               obs::Tracer *tracer = nullptr,
               obs::MetricsRegistry *metrics = nullptr)
        : net_(net), cfg_(cfg), requester_(requester), tracer_(tracer)
    {
        if (cfg_.servers == 0)
            fatal("gms: need at least one server node");
        // Server-keyed maps hold at most one entry per server; one
        // up-front reserve keeps the put_page path rehash-free.
        per_server_.reserve(cfg_.servers);
        failed_until_.reserve(cfg_.servers);
        if (metrics) {
            c_putpages_ = &metrics->counter("gms.putpages");
            c_discards_ = &metrics->counter("gms.global_discards");
        }
    }

    /** Node storing @p page's global copy (stable hash placement). */
    NodeId
    server_of(PageId page) const
    {
        // SplitMix64 finalizer as a page->server hash.
        uint64_t z = page + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
        return requester_ + 1 + static_cast<NodeId>(z % cfg_.servers);
    }

    /** True if a fault on @p page can be serviced from network memory. */
    bool
    in_global_memory(PageId page) const
    {
        return cfg_.warm || evicted_.count(page) > 0;
    }

    /**
     * The faulting node evicted @p page; if configured, ship it to
     * its server as background putpage traffic. After this the page
     * is in global memory even in cold-cache mode — unless the
     * server is full, in which case its oldest stored page is
     * discarded (and will have to come back from disk).
     */
    void
    put_page(Tick now, PageId page, uint32_t page_bytes, bool dirty)
    {
        put_page(now, page, page_bytes, dirty, requester_);
    }

    /**
     * Multi-client form: @p from is the evicting client node, so the
     * putpage traffic occupies that client's CPU/DMA stages rather
     * than the default requester's.
     */
    void put_page(Tick now, PageId page, uint32_t page_bytes,
                  bool dirty, NodeId from);

    /**
     * Pre-size the directory for @p pages stored pages; keeps the
     * eviction path rehash-free during a steady-state window.
     */
    void
    reserve_pages(size_t pages)
    {
        if (pages)
            evicted_.reserve(pages);
    }

    /**
     * Mark @p server failed until @p until (directory invalidation):
     * the directory treats its stored pages as unreachable, so
     * faults on them degrade straight to disk until recovery. Used
     * by the reliability layer after a fetch from @p server
     * exhausted its retries or its outage schedule fired.
     */
    void
    mark_server_failed(Tick now, NodeId server, Tick until)
    {
        Tick &t = failed_until_[server];
        if (until > t) {
            t = until;
            ++server_failures_;
            SGMS_TRACE_INSTANT(tracer_, Gms, "server_failed", "gms",
                               now, static_cast<int64_t>(server), 0,
                               static_cast<int64_t>(server));
        }
    }

    /** True if @p server is marked failed in the directory at @p now. */
    bool
    server_failed(NodeId server, Tick now) const
    {
        auto it = failed_until_.find(server);
        return it != failed_until_.end() && now < it->second;
    }

    /** Directory invalidations recorded by mark_server_failed. */
    uint64_t server_failures() const { return server_failures_; }

    NodeId requester() const { return requester_; }
    const GmsConfig &config() const { return cfg_; }
    uint64_t putpages() const { return putpages_; }

    /** Pages dropped from global memory due to server capacity. */
    uint64_t global_discards() const { return discards_; }

    /** Pages currently stored on @p server (cold-cache tracking). */
    uint64_t
    stored_on(NodeId server) const
    {
        auto it = per_server_.find(server);
        return it == per_server_.end() ? 0 : it->second.fifo.size();
    }

  private:
    /** Per-server store of evicted pages, FIFO for capacity. */
    struct ServerStore
    {
        std::deque<PageId> fifo;
    };

    Network &net_;
    GmsConfig cfg_;
    NodeId requester_;
    obs::Tracer *tracer_ = nullptr;
    obs::Counter *c_putpages_ = nullptr;
    obs::Counter *c_discards_ = nullptr;
    uint64_t putpages_ = 0;
    uint64_t discards_ = 0;
    uint64_t server_failures_ = 0;
    std::unordered_set<PageId> evicted_;
    std::unordered_map<NodeId, ServerStore> per_server_;
    /** Servers marked failed, and when the mark expires. */
    std::unordered_map<NodeId, Tick> failed_until_;
};

} // namespace sgms

#endif // SGMS_GMS_GMS_H
