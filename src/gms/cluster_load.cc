#include "gms/cluster_load.h"

#include "common/logging.h"

namespace sgms
{

ClusterLoad::ClusterLoad(EventQueue &eq, Network &net,
                         ClusterLoadConfig cfg, uint32_t servers,
                         NodeId requester)
    : eq_(eq), net_(net), cfg_(cfg), requester_(requester),
      rng_(cfg.seed)
{
    if (cfg_.server_utilization <= 0.0)
        return;
    if (cfg_.server_utilization > 0.85)
        fatal("cluster load: utilization %.2f would saturate servers",
              cfg_.server_utilization);
    for (uint32_t s = 1; s <= servers; ++s)
        schedule_next(requester_ + s, 0);
}

Tick
ClusterLoad::mean_interval() const
{
    // Work one foreign fetch puts on the server's DMA engine: the
    // demand subpage plus the rest of the page.
    const NetParams &p = net_.params();
    Tick dma_work = 2 * p.dma_fixed +
                    p.dma_per_byte * cfg_.page_bytes;
    return static_cast<Tick>(dma_work / cfg_.server_utilization);
}

void
ClusterLoad::schedule_next(NodeId server, Tick now)
{
    // Exponential-ish inter-arrivals (sum of two uniforms keeps it
    // deterministic and bounded, close enough to Poisson for the
    // contention effect).
    Tick mean = mean_interval();
    Tick gap = rng_.range(mean / 2, mean + mean / 2);
    eq_.schedule(now + gap, [this, server, at = now + gap] {
        inject(server, at);
        schedule_next(server, at);
    });
}

void
ClusterLoad::inject(NodeId server, Tick now)
{
    ++injected_;
    // Phantom destination: unique per server, far from real nodes,
    // so foreign traffic contends only at the server stages.
    NodeId phantom = requester_ + 1000 + server;
    uint32_t rest = cfg_.page_bytes - cfg_.subpage_bytes;
    net_.send(now, {server, phantom, cfg_.subpage_bytes,
                    MsgKind::DemandData, false, nullptr});
    if (rest) {
        net_.send(now, {server, phantom, rest,
                        MsgKind::BackgroundData, false, nullptr});
    }
}

} // namespace sgms
