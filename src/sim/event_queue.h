/**
 * @file
 * Discrete-event kernel for the SGMS simulator.
 *
 * The trace-driven program is the "main thread" of the simulation; it
 * advances its own clock reference-by-reference and drains this queue
 * whenever simulated time passes an event, or whenever it blocks
 * waiting for a transfer (see core/simulator.h). Everything
 * asynchronous — DMA stage completions, wire occupancy, message
 * deliveries — is an event.
 */

#ifndef SGMS_SIM_EVENT_QUEUE_H
#define SGMS_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace sgms
{

/** Time-ordered event queue with FIFO tie-breaking. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p fn to run at absolute time @p when. */
    void
    schedule(Tick when, Callback fn)
    {
        SGMS_ASSERT(when >= last_popped_);
        heap_.push(Entry{when, seq_++, std::move(fn)});
    }

    /** True if no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    size_t size() const { return heap_.size(); }

    /** Time of the next event, or TICK_MAX if none. */
    Tick
    next_time() const
    {
        return heap_.empty() ? TICK_MAX : heap_.top().when;
    }

    /**
     * Pop and run the next event; returns its time.
     * Must not be called on an empty queue.
     */
    Tick
    run_one()
    {
        SGMS_ASSERT(!heap_.empty());
        // Move out the entry before running: callbacks may schedule.
        Entry e = heap_.top();
        heap_.pop();
        last_popped_ = e.when;
        e.fn();
        return e.when;
    }

    /** Run all events with time <= @p now. */
    void
    run_until(Tick now)
    {
        while (!heap_.empty() && heap_.top().when <= now)
            run_one();
    }

    /** Drain every pending event; returns time of the last one run. */
    Tick
    run_all()
    {
        Tick last = last_popped_;
        while (!heap_.empty())
            last = run_one();
        return last;
    }

    /** Total events executed (for stats / debugging). */
    uint64_t executed() const { return seq_ - heap_.size(); }

  private:
    struct Entry
    {
        Tick when;
        uint64_t seq;
        Callback fn;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    uint64_t seq_ = 0;
    Tick last_popped_ = 0;
};

} // namespace sgms

#endif // SGMS_SIM_EVENT_QUEUE_H
