/**
 * @file
 * Discrete-event kernel for the SGMS simulator.
 *
 * The trace-driven program is the "main thread" of the simulation; it
 * advances its own clock reference-by-reference and drains this queue
 * whenever simulated time passes an event, or whenever it blocks
 * waiting for a transfer (see core/simulator.h). Everything
 * asynchronous — DMA stage completions, wire occupancy, message
 * deliveries — is an event.
 *
 * Layout (DESIGN.md §13): callbacks live in fixed-size pool slots
 * (InlineFunction small-buffer storage, recycled through a free
 * list), and ordering is a 4-ary heap of 16-byte (when, seq|slot)
 * records. Scheduling an event in steady state touches no allocator:
 * the slot comes from the free list and the capture is constructed
 * in place. FIFO tie-breaking between equal-time events is preserved
 * via the monotonically increasing sequence number.
 */

#ifndef SGMS_SIM_EVENT_QUEUE_H
#define SGMS_SIM_EVENT_QUEUE_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/inline_function.h"
#include "common/logging.h"
#include "common/types.h"

namespace sgms
{

/** Time-ordered event queue with FIFO tie-breaking. */
class EventQueue
{
  public:
    /**
     * Inline capture budget. The largest steady-state closures are
     * the simulator's fetch-request/delivery callbacks (~80 bytes:
     * this, run state, page identity, a FetchPlan); anything larger
     * spills to a counted heap fallback instead of failing.
     */
    static constexpr size_t kInlineCallbackBytes = 120;

    using Callback = InlineFunction<void(), kInlineCallbackBytes>;

    /** Schedule @p fn to run at absolute time @p when. */
    void
    schedule(Tick when, Callback fn)
    {
        SGMS_ASSERT(when >= last_popped_);
        uint32_t slot;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
            pool_[slot] = std::move(fn);
        } else {
            slot = static_cast<uint32_t>(pool_.size());
            pool_.push_back(std::move(fn));
        }
        SGMS_ASSERT(slot < (1u << SLOT_BITS));
        heap_.push_back(Entry{when, (seq_++ << SLOT_BITS) | slot});
        sift_up(heap_.size() - 1);
    }

    /** True if no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    size_t size() const { return heap_.size(); }

    /** Time of the next event, or TICK_MAX if none. */
    Tick
    next_time() const
    {
        return heap_.empty() ? TICK_MAX : heap_[0].when;
    }

    /**
     * Pop and run the next event; returns its time.
     * Must not be called on an empty queue.
     */
    Tick
    run_one()
    {
        SGMS_ASSERT(!heap_.empty());
        Entry top = heap_[0];
        uint32_t slot = top.slot();
        // Move the callback out of its slot before running: the
        // callback may schedule (growing the pool) or recursively
        // drain the queue.
        Callback fn = std::move(pool_[slot]);
        free_.push_back(slot);
        pop_root();
        last_popped_ = top.when;
        ++executed_;
        fn();
        return top.when;
    }

    /** Run all events with time <= @p now. */
    void
    run_until(Tick now)
    {
        while (!heap_.empty() && heap_[0].when <= now)
            run_one();
    }

    /** Drain every pending event; returns time of the last one run. */
    Tick
    run_all()
    {
        Tick last = last_popped_;
        while (!heap_.empty())
            last = run_one();
        return last;
    }

    /** Total events executed (for stats / debugging). */
    uint64_t executed() const { return executed_; }

    /** High-water mark of pool slots (fixed-size event records). */
    size_t pool_capacity() const { return pool_.size(); }

  private:
    static constexpr unsigned SLOT_BITS = 24;

    /** Heap record: 16 bytes, ordering state only (callback in pool). */
    struct Entry
    {
        Tick when;
        /**
         * (seq << SLOT_BITS) | slot. seq increases monotonically, so
         * comparing the packed word breaks when-ties FIFO; the slot
         * in the low bits never affects order between distinct seqs.
         */
        uint64_t seq_slot;

        uint32_t
        slot() const
        {
            return static_cast<uint32_t>(seq_slot &
                                         ((1u << SLOT_BITS) - 1));
        }

        bool
        before(const Entry &o) const
        {
            return when != o.when ? when < o.when
                                  : seq_slot < o.seq_slot;
        }
    };
    static_assert(sizeof(Entry) == 16, "heap entries stay compact");

    static constexpr size_t ARITY = 4;

    void
    sift_up(size_t i)
    {
        Entry e = heap_[i];
        while (i > 0) {
            size_t parent = (i - 1) / ARITY;
            if (!e.before(heap_[parent]))
                break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = e;
    }

    void
    pop_root()
    {
        Entry last = heap_.back();
        heap_.pop_back();
        if (heap_.empty())
            return;
        // Sift the former tail down from the root.
        size_t i = 0;
        size_t n = heap_.size();
        for (;;) {
            size_t first_child = i * ARITY + 1;
            if (first_child >= n)
                break;
            size_t best = first_child;
            size_t end = std::min(first_child + ARITY, n);
            for (size_t c = first_child + 1; c < end; ++c) {
                if (heap_[c].before(heap_[best]))
                    best = c;
            }
            if (!heap_[best].before(last))
                break;
            heap_[i] = heap_[best];
            i = best;
        }
        heap_[i] = last;
    }

    std::vector<Entry> heap_;
    std::vector<Callback> pool_;
    std::vector<uint32_t> free_;
    uint64_t seq_ = 0;
    uint64_t executed_ = 0;
    Tick last_popped_ = 0;
};

} // namespace sgms

#endif // SGMS_SIM_EVENT_QUEUE_H
