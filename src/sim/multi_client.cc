#include "sim/multi_client.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/logging.h"
#include "core/simulator.h"
#include "obs/debug.h"

namespace sgms
{

namespace
{
/** Minimum references between replacement-policy touches per page. */
constexpr uint64_t TOUCH_GRANULARITY = 64;

/** References consumed from a client's trace per next_batch call. */
constexpr size_t TRACE_BATCH = 1024;
} // namespace

/**
 * Where a parked client resumes. A reference is split at its yield
 * points (steal applied / TLB charged / body), so a client that
 * yields to pending events re-enters exactly where it left off.
 */
enum class MultiClientSimulator::Phase : uint8_t
{
    RefSteal, ///< cur_ev loaded; apply pending receive-CPU steal
    RefTlb,   ///< steal applied; charge the TLB
    RefBody,  ///< TLB charged; page handling
    DiskWake, ///< sleeping on a disk access; cont says which kind
};

/** Which accounting runs when a parked client wakes. */
enum class MultiClientSimulator::Cont : uint8_t
{
    None,
    NetPageFault,        ///< demand fetch of a freshly-installed page
    NetSubpageFault,     ///< lazy fetch into a resident page
    PageWaitInflight,    ///< stalled on an already-in-flight subpage
    DiskPageFault,       ///< whole-page disk fault (cold / degraded)
    DiskSubpageDegraded, ///< degraded lazy fetch served by disk
};

/** One client node: its own paging state plus a parked continuation. */
struct MultiClientSimulator::Client
{
    Client(uint32_t cid, const SimConfig &cfg, const PageGeometry &geo,
           obs::MetricsRegistry &metrics)
        : id(cid), pt(geo, cfg.mem_pages, cfg.replacement),
          policy(make_fetch_policy(cfg.policy, &metrics)), pal(cfg.pal)
    {
        pal.bind_metrics(metrics);
        if (cfg.footprint_pages_hint)
            pt.reserve(cfg.footprint_pages_hint);
        if (cfg.tlb_enabled)
            tlb = std::make_unique<Tlb>(cfg.tlb_entries, cfg.tlb_assoc,
                                        cfg.page_size);
    }

    uint32_t id;
    TraceSource *trace = nullptr;

    // Per-client paging machinery; the policy's counters resolve to
    // the shared registry entries, so metrics aggregate across
    // clients by construction.
    PageTable pt;
    std::unique_ptr<FetchPolicy> policy;
    PalEmulator pal;
    std::unique_ptr<Tlb> tlb;

    // Program clock and blocking bookkeeping (one single-client Run
    // worth of state each).
    Tick now = 0;
    uint64_t ref_index = 0;
    uint64_t wait_seq = 0;
    bool blocked = false;
    Tick wait_start = 0;
    Tick total_blocked = 0;
    Tick pending_steal = 0;

    // Batched trace cursor into the run's flat buffer.
    size_t batch_i = 0;
    size_t batch_n = 0;

    // Current reference and the same-complete-page fast path as the
    // single-client simulator.
    TraceEvent cur_ev{};
    PageId last_page = ~0ULL;
    bool last_fast = false;
    PageTable::Frame *last_frame = nullptr;

    // Parked continuation.
    Phase phase = Phase::RefSteal;
    Cont cont = Cont::None;
    PageId wait_page = 0;
    SubpageIndex wait_sp = 0;
    uint64_t wait_fault_id = 0;
    Tick sleep_lat = 0;
    int64_t wait_plan_bytes = 0;
    bool finished = false;

    // Per-client tallies, summed (in client order) into the
    // aggregate result; integer sums, so N=1 is bit-exact.
    Tick exec_time = 0;
    Tick sp_latency = 0;
    Tick page_wait = 0;
    Tick recv_overhead = 0;
    Tick emulation_overhead = 0;
    Tick tlb_overhead = 0;
    uint64_t page_faults = 0;
    uint64_t sub_faults = 0;

    /** Cumulative blocked time as of time @p t. */
    Tick
    blocked_at(Tick t) const
    {
        return blocked ? total_blocked + (t - wait_start)
                       : total_blocked;
    }
};

/** All mutable state of one multi-client run. */
struct MultiClientSimulator::Run
{
    Run(const SimConfig &cfg, uint32_t nclients)
        : n(nclients), tracer(cfg.tracer),
          finj(cfg.faults.enabled()
                   ? std::make_unique<fault::FaultInjector>(cfg.faults,
                                                            &metrics)
                   : nullptr),
          net(eq, cfg.net, /*requester=*/0, cfg.timeline, cfg.tracer,
              &metrics, finj.get()),
          gms(net, cfg.gms, /*requester=*/nclients - 1, cfg.tracer,
              &metrics),
          geo(cfg.page_size, cfg.subpage_size),
          c_page_faults(&metrics.counter("sim.page_faults")),
          c_subpage_faults(&metrics.counter("sim.lazy_subpage_faults")),
          c_evictions(&metrics.counter("gms.evictions")),
          c_disk_faults(&metrics.counter("sim.disk_faults")),
          d_fault_wait(&metrics.distribution("sim.fault_wait_ns")),
          step_len(cfg.ns_per_ref),
          software_pal(cfg.protection == ProtectionMode::SoftwarePal)
    {
        if (finj) {
            // Registered only under fault injection so that
            // fault-free runs keep a byte-identical snapshot.
            c_retries = &metrics.counter("gms.retries");
            c_timeouts = &metrics.counter("gms.timeouts");
            c_degraded = &metrics.counter("gms.degraded_fetches");
            c_duplicates =
                &metrics.counter("gms.duplicate_deliveries");
            d_retry_delay =
                &metrics.distribution("gms.retry_delay_ns");
        }
        if (cfg.cluster_load.server_utilization > 0.0) {
            cluster_load = std::make_unique<ClusterLoad>(
                eq, net, cfg.cluster_load, cfg.gms.servers,
                nclients - 1);
        }
        res.policy = cfg.policy;
        res.page_size = cfg.page_size;
        res.subpage_size = cfg.subpage_size;
        res.mem_pages = cfg.mem_pages;

        clients.reserve(nclients);
        for (uint32_t i = 0; i < nclients; ++i)
            clients.emplace_back(i, cfg, geo, metrics);
        batch_buf.resize(static_cast<size_t>(nclients) * TRACE_BATCH);
        heap.reserve(nclients + 1);
    }

    uint32_t n;

    // Same declaration order as the single-client Run: components
    // register counters with `metrics` during construction.
    obs::MetricsRegistry metrics;
    obs::Tracer *tracer;
    std::unique_ptr<fault::FaultInjector> finj;
    EventQueue eq;
    Network net;
    GmsCluster gms;
    PageGeometry geo;
    std::unique_ptr<ClusterLoad> cluster_load;

    obs::Counter *c_page_faults;
    obs::Counter *c_subpage_faults;
    obs::Counter *c_evictions;
    obs::Counter *c_disk_faults;
    obs::Distribution *d_fault_wait;
    obs::Counter *c_retries = nullptr;
    obs::Counter *c_timeouts = nullptr;
    obs::Counter *c_degraded = nullptr;
    obs::Counter *c_duplicates = nullptr;
    obs::Distribution *d_retry_delay = nullptr;

    SimResult res;

    // Dense per-client state plus one flat batch buffer (client i
    // owns slots [i*TRACE_BATCH, (i+1)*TRACE_BATCH)); nothing here
    // allocates after construction.
    std::vector<Client> clients;
    std::vector<TraceEvent> batch_buf;

    /** Runnable-client min-heap entry, ordered by (at, id). */
    struct Runnable
    {
        Tick at;
        uint32_t id;
    };
    std::vector<Runnable> heap;
    uint32_t active = 0;

    bool budgeted = false;
    std::chrono::steady_clock::time_point deadline{};

    const Tick step_len;
    const bool software_pal;

    /**
     * Namespace a client-local page id on the shared cluster.
     * Identity at n == 1, so directory hashing, warm/cold state, and
     * server placement are bit-exact vs the single-client kernel.
     */
    PageId
    gpage(PageId page, uint32_t client) const
    {
        return page * n + client;
    }

    static bool
    later(const Runnable &a, const Runnable &b)
    {
        return a.at != b.at ? a.at > b.at : a.id > b.id;
    }

    void
    push_runnable(const Client &c, Tick at)
    {
        heap.push_back({at, c.id});
        std::push_heap(heap.begin(), heap.end(), later);
    }

    Runnable
    pop_runnable()
    {
        std::pop_heap(heap.begin(), heap.end(), later);
        Runnable top = heap.back();
        heap.pop_back();
        return top;
    }
};

/**
 * State of one reliable fetch (fault injection enabled); the
 * multi-client twin of Simulator::PendingFetch with the owning
 * client's id added.
 */
struct MultiClientSimulator::PendingFetch
{
    uint32_t client = 0;
    PageId page = 0;
    uint64_t fault_id = 0;
    NodeId srv = 0;
    uint64_t expected = 0;
    SubpageIndex demand_sp = 0;
    uint32_t byte_in_sub = 0;
    uint32_t attempt = 1;
    uint64_t generation = 0;
    bool done = false;
};

MultiClientSimulator::MultiClientSimulator(SimConfig cfg)
    : cfg_(std::move(cfg))
{
    if (cfg_.mem_pages == 1)
        fatal("multi-client: mem_pages must be 0 (unlimited) or >= 2");
    if (cfg_.subpage_size > cfg_.page_size)
        fatal("multi-client: subpage larger than page");
    if (cfg_.clients == 0)
        cfg_.clients = 1;
}

MultiClientSimulator::~MultiClientSimulator() = default;

uint64_t
MultiClientSimulator::events_executed() const
{
    return run_ ? run_->eq.executed() : last_events_executed_;
}

uint64_t
MultiClientSimulator::events_pending() const
{
    return run_ ? run_->eq.size() : 0;
}

uint64_t
MultiClientSimulator::refs_executed() const
{
    if (!run_)
        return 0;
    uint64_t refs = 0;
    for (const Client &c : run_->clients)
        refs += c.ref_index;
    return refs;
}

void
MultiClientSimulator::begin(const std::vector<TraceSource *> &traces)
{
    SGMS_ASSERT(!run_);
    SGMS_ASSERT(!traces.empty());
    run_ = std::make_unique<Run>(
        cfg_, static_cast<uint32_t>(traces.size()));
    Run &r = *run_;
    r.budgeted = cfg_.wall_budget_ms > 0;
    if (r.budgeted) {
        r.deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(cfg_.wall_budget_ms);
    }
    for (uint32_t i = 0; i < r.n; ++i) {
        Client &c = r.clients[i];
        c.trace = traces[i];
        c.trace->reset();
        prime_client(r, c);
    }
}

void
MultiClientSimulator::prime_client(Run &r, Client &c)
{
    TraceEvent *buf =
        r.batch_buf.data() + static_cast<size_t>(c.id) * TRACE_BATCH;
    size_t got = c.trace->next_batch(buf, TRACE_BATCH);
    if (got == 0) {
        c.finished = true;
        return;
    }
    c.batch_n = got;
    c.cur_ev = buf[0];
    c.batch_i = 1;
    c.phase = Phase::RefSteal;
    r.push_runnable(c, 0);
    ++r.active;
}

bool
MultiClientSimulator::drive(uint64_t rounds)
{
    SGMS_ASSERT(run_);
    Run &r = *run_;
    while (r.active > 0 && rounds > 0) {
        --rounds;
        if (r.heap.empty()) {
            // Every unfinished client is blocked on a fetch; only an
            // event can wake one (same invariant wait_until asserts).
            SGMS_ASSERT(!r.eq.empty());
            r.eq.run_one();
            continue;
        }
        // Events win ties so a client resuming at t sees every
        // delivery at <= t applied first — exactly the single-client
        // drain/run_until(t) semantics.
        if (r.eq.next_time() <= r.heap.front().at) {
            r.eq.run_one();
            continue;
        }
        Run::Runnable top = r.pop_runnable();
        step(r, r.clients[top.id]);
    }
    return r.active > 0;
}

SimResult
MultiClientSimulator::run(const std::vector<TraceSource *> &traces)
{
    begin(traces);
    while (drive(UINT64_MAX)) {
    }
    return finish();
}

void
MultiClientSimulator::finish_client(Run &r, Client &c)
{
    c.finished = true;
    SGMS_ASSERT(r.active > 0);
    --r.active;
}

/**
 * Charge one executed reference, then load the next one (finishing
 * the client at end of trace). Returns true when the caller's step
 * loop should keep running this client inline; false when the client
 * parked (or finished) and the caller must return to the scheduler.
 * Wake paths pass in_step=false: they run inside an event callback,
 * so the client always re-enters through the scheduler, which first
 * drains any events due at its resume time.
 */
bool
MultiClientSimulator::advance_after_ref(Run &r, Client &c, bool in_step)
{
    c.now += r.step_len;
    c.exec_time += r.step_len;
    ++c.ref_index;
    if (c.batch_i == c.batch_n) {
        TraceEvent *buf = r.batch_buf.data() +
                          static_cast<size_t>(c.id) * TRACE_BATCH;
        size_t got = c.trace->next_batch(buf, TRACE_BATCH);
        if (got == 0) {
            // End of this client's trace: like the single-client
            // kernel, pending events are abandoned, and no event due
            // at or before c.now runs on its account.
            finish_client(r, c);
            return false;
        }
        c.batch_n = got;
        c.batch_i = 0;
        if (r.budgeted &&
            std::chrono::steady_clock::now() >= r.deadline)
            throw SimTimeoutError(cfg_.wall_budget_ms,
                                  refs_executed());
    }
    c.cur_ev = r.batch_buf[static_cast<size_t>(c.id) * TRACE_BATCH +
                           c.batch_i++];
    c.phase = Phase::RefSteal;
    if (!in_step) {
        r.push_runnable(c, c.now);
        return false;
    }
    if (r.eq.next_time() <= c.now) {
        r.push_runnable(c, c.now);
        return false;
    }
    return true;
}

void
MultiClientSimulator::step(Run &r, Client &c)
{
    for (;;) {
        switch (c.phase) {
        case Phase::RefSteal:
            if (c.pending_steal) {
                c.now += c.pending_steal;
                c.recv_overhead += c.pending_steal;
                c.pending_steal = 0;
                c.phase = Phase::RefTlb;
                // The steal may have pushed us past more event times.
                if (r.eq.next_time() <= c.now) {
                    r.push_runnable(c, c.now);
                    return;
                }
            }
            c.phase = Phase::RefTlb;
            [[fallthrough]];
        case Phase::RefTlb:
            if (c.tlb && !c.tlb->access(c.cur_ev.addr)) {
                c.now += cfg_.tlb_miss_cost;
                c.tlb_overhead += cfg_.tlb_miss_cost;
                c.phase = Phase::RefBody;
                // The refill may have pushed us past pending events;
                // they must run before any fault handling injects
                // new messages.
                if (r.eq.next_time() <= c.now) {
                    r.push_runnable(c, c.now);
                    return;
                }
            }
            c.phase = Phase::RefBody;
            [[fallthrough]];
        case Phase::RefBody: {
            const TraceEvent ev = c.cur_ev;
            PageId page = r.geo.page_of(ev.addr);
            if (page == c.last_page && c.last_fast) {
                // Fast path: same complete page — only the dirty bit
                // can change.
                if (ev.write)
                    c.last_frame->dirty = true;
            } else {
                PageTable::Frame *frame = c.pt.find(page);
                if (!frame) {
                    if (yield_for_slow_path(r, c))
                        return;
                    page_fault(r, c, page);
                    return; // parked on the fetch / disk sleep
                }
                if (page != c.last_page &&
                    c.ref_index - frame->last_touch >=
                        TOUCH_GRANULARITY) {
                    c.pt.touch(page);
                    frame->last_touch = c.ref_index;
                }
                SubpageIndex sp = r.geo.subpage_of(ev.addr);
                if (!frame->valid.test(sp)) {
                    if (yield_for_slow_path(r, c))
                        return;
                    if (frame->subpage_inflight(sp)) {
                        park_fetch_wait(r, c, page, sp,
                                        frame->fault_id,
                                        Cont::PageWaitInflight, 0);
                    } else {
                        subpage_fault(r, c, *frame, page);
                    }
                    return; // parked
                }
                if (r.software_pal && !frame->complete) {
                    Tick cost = c.pal.access_cost(page, ev.write);
                    c.now += cost;
                    c.emulation_overhead += cost;
                }
                resolve_watch(r, c, *frame, sp);
                if (ev.write)
                    frame->dirty = true;
                c.last_page = page;
                c.last_fast =
                    frame->complete && frame->watch_from < 0;
                c.last_frame = frame;
            }
            if (!advance_after_ref(r, c, /*in_step=*/true))
                return;
            break;
        }
        case Phase::DiskWake:
            finish_disk_wake(r, c);
            if (!complete_ref_after_slow(r, c, /*in_step=*/true))
                return;
            break;
        }
    }
}

/**
 * Gate in front of every slow path (anything touching the shared
 * cluster). A client may run pure fast-path references arbitrarily
 * far ahead of its peers — they only touch client-local state — but
 * a fault must be issued in global time order or the stage resources
 * and event queue would see non-monotone submissions. Yield when any
 * event is due or any runnable peer precedes (c.now, c.id); the
 * client re-enters RefBody at the same reference and re-evaluates
 * (deliveries during the yield may have made it a fast hit). Never
 * triggers at N=1.
 */
bool
MultiClientSimulator::yield_for_slow_path(Run &r, Client &c)
{
    bool need = r.eq.next_time() <= c.now;
    if (!need && !r.heap.empty()) {
        const Run::Runnable &top = r.heap.front();
        need = top.at < c.now || (top.at == c.now && top.id < c.id);
    }
    if (!need)
        return false;
    c.phase = Phase::RefBody;
    r.push_runnable(c, c.now);
    return true;
}

void
MultiClientSimulator::park_fetch_wait(Run &r, Client &c, PageId page,
                                      SubpageIndex sp,
                                      uint64_t fault_id, Cont cont,
                                      int64_t demand_bytes)
{
    (void)r;
    c.blocked = true;
    c.wait_start = c.now;
    c.wait_page = page;
    c.wait_sp = sp;
    c.wait_fault_id = fault_id;
    c.wait_plan_bytes = demand_bytes;
    c.cont = cont;
    // Not pushed on the runnable heap: only a delivery (or degraded
    // disk completion) can make progress, and it wakes the client
    // from inside the event via maybe_wake().
}

void
MultiClientSimulator::begin_disk_sleep(Run &r, Client &c, Tick lat,
                                       Cont cont)
{
    c.blocked = true;
    c.wait_start = c.now;
    c.sleep_lat = lat;
    c.cont = cont;
    c.phase = Phase::DiskWake;
    // Parked *on* the heap: the wake time is known. Events due at or
    // before the target run first (the run_until(target) semantics).
    r.push_runnable(c, c.now + lat);
}

void
MultiClientSimulator::resolve_watch(Run &r, Client &c,
                                    PageTable::Frame &frame,
                                    SubpageIndex touched)
{
    if (frame.watch_from < 0)
        return;
    if (static_cast<SubpageIndex>(frame.watch_from) == touched)
        return;
    int distance = static_cast<int>(touched) - frame.watch_from;
    if (cfg_.record_faults)
        r.res.next_subpage_distance.add(distance);
    c.policy->observe_distance(distance);
    frame.watch_from = -1;
}

void
MultiClientSimulator::post_fault_epilogue(Run &r, Client &c,
                                          PageTable::Frame &f)
{
    // Start watching for the next access to a different subpage
    // (Figure 7), unless the whole page just arrived at once.
    SubpageIndex sp = r.geo.subpage_of(c.cur_ev.addr);
    if (!f.complete)
        f.watch_from = static_cast<int16_t>(sp);
    else if (r.geo.subpages_per_page() > 1)
        f.watch_from = static_cast<int16_t>(sp);
    if (c.cur_ev.write)
        f.dirty = true;
}

void
MultiClientSimulator::resolve_epilogue(Run &r, Client &c,
                                       PageTable::Frame &f)
{
    resolve_watch(r, c, f, r.geo.subpage_of(c.cur_ev.addr));
    if (c.cur_ev.write)
        f.dirty = true;
}

/** Shared tail of every slow path: refresh last_*, charge the ref. */
bool
MultiClientSimulator::complete_ref_after_slow(Run &r, Client &c,
                                              bool in_step)
{
    PageId page = r.geo.page_of(c.cur_ev.addr);
    PageTable::Frame *f = c.pt.find(page);
    SGMS_ASSERT(f);
    c.last_page = page;
    c.last_fast = f->complete && f->watch_from < 0;
    c.last_frame = f;
    return advance_after_ref(r, c, in_step);
}

void
MultiClientSimulator::maybe_wake(Run &r, Client &c, Tick at)
{
    if (c.cont != Cont::NetPageFault &&
        c.cont != Cont::NetSubpageFault &&
        c.cont != Cont::PageWaitInflight)
        return;
    PageTable::Frame *f = c.pt.find(c.wait_page);
    if (!f || !f->valid.test(c.wait_sp))
        return;
    wake_from_fetch(r, c, at);
}

/**
 * The subpage the client blocks on just landed (we are inside the
 * delivering event, at its timestamp @p at). Run the whole wake
 * continuation inline — pure bookkeeping, no sends — then park the
 * client runnable at its new now; remaining events due at that time
 * still run before it steps, matching the single-client order of
 * [waking event][epilogue][other due events][next ref].
 */
void
MultiClientSimulator::wake_from_fetch(Run &r, Client &c, Tick at)
{
    if (at > c.now)
        c.now = at;
    c.blocked = false;
    Tick waited = c.now - c.wait_start;
    c.total_blocked += waited;
    // Anything that arrived while blocked cannot also steal CPU.
    c.pending_steal = 0;
    if (waited > 0) {
        SGMS_TRACE_SPAN(r.tracer, Block, "blocked", "program",
                        c.wait_start, c.now, c.wait_seq++,
                        static_cast<int64_t>(c.ref_index), 0);
    }
    PageId page = c.wait_page;
    PageTable::Frame *f = c.pt.find(page);
    SGMS_ASSERT(f);
    switch (c.cont) {
    case Cont::NetPageFault:
        c.sp_latency += waited;
        if (cfg_.record_faults)
            r.res.faults[c.wait_fault_id].sp_wait = waited;
        r.d_fault_wait->add(ticks::to_ns(waited));
        SGMS_TRACE_SPAN(r.tracer, Fault, "demand", "fault",
                        c.now - waited, c.now,
                        static_cast<int64_t>(c.wait_fault_id),
                        static_cast<int64_t>(page),
                        c.wait_plan_bytes);
        post_fault_epilogue(r, c, *f);
        break;
    case Cont::NetSubpageFault:
        c.sp_latency += waited;
        r.d_fault_wait->add(ticks::to_ns(waited));
        SGMS_TRACE_SPAN(r.tracer, Fault, "demand", "fault",
                        c.now - waited, c.now,
                        static_cast<int64_t>(c.wait_fault_id),
                        static_cast<int64_t>(page),
                        c.wait_plan_bytes);
        if (c.wait_fault_id < r.res.faults.size())
            r.res.faults[c.wait_fault_id].page_wait += waited;
        resolve_epilogue(r, c, *f);
        break;
    case Cont::PageWaitInflight:
        c.page_wait += waited;
        SGMS_TRACE_SPAN(r.tracer, PageWait, "page_wait", "fault",
                        c.now - waited, c.now,
                        static_cast<int64_t>(c.wait_fault_id),
                        static_cast<int64_t>(page),
                        static_cast<int64_t>(c.wait_sp));
        if (c.wait_fault_id < r.res.faults.size())
            r.res.faults[c.wait_fault_id].page_wait += waited;
        resolve_epilogue(r, c, *f);
        break;
    default:
        SGMS_ASSERT(false);
    }
    c.cont = Cont::None;
    complete_ref_after_slow(r, c, /*in_step=*/false);
}

/** A disk sleep reached its target time (scheduler popped us). */
void
MultiClientSimulator::finish_disk_wake(Run &r, Client &c)
{
    Tick lat = c.sleep_lat;
    c.now = c.wait_start + lat;
    c.blocked = false;
    c.total_blocked += lat;
    c.pending_steal = 0;
    if (lat > 0) {
        SGMS_TRACE_SPAN(r.tracer, Block, "disk", "program",
                        c.now - lat, c.now, c.wait_seq++,
                        static_cast<int64_t>(c.ref_index), 0);
    }
    PageId page = c.wait_page;
    if (c.cont == Cont::DiskPageFault) {
        c.sp_latency += lat;
        if (cfg_.record_faults) {
            FaultRecord &rec = r.res.faults[c.wait_fault_id];
            rec.sp_wait = lat;
            rec.from_disk = true;
        }
        c.pt.mark_all_valid(page);
        r.d_fault_wait->add(ticks::to_ns(lat));
        SGMS_TRACE_SPAN(r.tracer, Fault, "demand", "fault",
                        c.now - lat, c.now,
                        static_cast<int64_t>(c.wait_fault_id),
                        static_cast<int64_t>(page),
                        static_cast<int64_t>(cfg_.page_size));
        PageTable::Frame *f = c.pt.find(page);
        SGMS_ASSERT(f);
        post_fault_epilogue(r, c, *f);
    } else {
        SGMS_ASSERT(c.cont == Cont::DiskSubpageDegraded);
        c.sp_latency += lat;
        c.pt.mark_all_valid(page);
        r.d_fault_wait->add(ticks::to_ns(lat));
        SGMS_TRACE_SPAN(r.tracer, Gms, "degraded_disk", "reliability",
                        c.now - lat, c.now,
                        static_cast<int64_t>(c.wait_fault_id),
                        static_cast<int64_t>(page),
                        static_cast<int64_t>(cfg_.page_size));
        if (c.wait_fault_id < r.res.faults.size())
            r.res.faults[c.wait_fault_id].page_wait += lat;
        PageTable::Frame *f = c.pt.find(page);
        SGMS_ASSERT(f);
        resolve_epilogue(r, c, *f);
    }
    c.cont = Cont::None;
}

void
MultiClientSimulator::deliver(Run &r, Client &c, PageId page,
                              uint64_t fault_id, uint64_t mask,
                              bool demand, Tick issued,
                              Tick blocked_at_issue, Tick delivered,
                              Tick recv_cpu)
{
    PageTable::Frame *frame = c.pt.find(page);
    if (!frame || frame->fault_id != fault_id)
        return;

    if (r.finj) {
        uint64_t already = mask & frame->valid.raw();
        if (already) {
            uint64_t n = __builtin_popcountll(already);
            r.res.duplicate_deliveries += n;
            r.c_duplicates->inc(n);
        }
    }

    uint64_t m = mask;
    while (m) {
        SubpageIndex idx = __builtin_ctzll(m);
        m &= m - 1;
        c.pt.mark_valid(page, idx);
    }
    if (frame->complete)
        c.pal.page_completed(page);

    if (recv_cpu && !c.blocked)
        c.pending_steal += recv_cpu;

    if (!demand) {
        Tick dur = delivered - issued;
        Tick blocked_during =
            c.blocked_at(delivered) - blocked_at_issue;
        blocked_during = std::clamp<Tick>(blocked_during, 0, dur);
        r.res.io_overlap += blocked_during;
        r.res.comp_overlap += dur - blocked_during;
    }

    maybe_wake(r, c, delivered);
}

void
MultiClientSimulator::issue_transfers(Run &r, Client &c, PageId page,
                                      uint64_t fault_id,
                                      const FetchPlan &plan,
                                      SubpageIndex faulted,
                                      uint32_t byte_in_sub)
{
    if (r.finj) {
        issue_transfers_reliable(r, c, page, fault_id, plan, faulted,
                                 byte_in_sub);
        return;
    }
    NodeId srv = r.gms.server_of(r.gpage(page, c.id));
    if (PageTable::Frame *frame = c.pt.find(page)) {
        for (const auto &seg : plan.segments)
            frame->inflight |= seg.subpage_mask;
    }

    // The fault-handling fixed cost elapses on the (blocked) faulting
    // CPU before the request message is injected.
    Tick t0 = c.now + cfg_.net.fault_handle;
    uint32_t cid = c.id;
    // Init-captures, not [plan]: copy-capturing a const reference
    // gives the closure a const member whose "move" is a throwing
    // vector copy, which forces InlineFunction's heap fallback on
    // every fault.
    r.eq.schedule(t0, [this, &r, cid, page, fault_id, srv,
                       plan = plan, t0] {
        r.net.send(
            t0,
            {cid, srv, cfg_.net.request_bytes, MsgKind::Request, false,
             [this, &r, cid, page, fault_id, srv,
              plan = plan](Tick when, Tick) {
                 for (const auto &seg : plan.segments) {
                     Client &cc = r.clients[cid];
                     Tick blocked_at_issue = cc.blocked_at(when);
                     r.net.send(
                         when,
                         {srv, cid, seg.bytes,
                          seg.demand ? MsgKind::DemandData
                                     : MsgKind::BackgroundData,
                          seg.pipelined_recv,
                          [this, &r, cid, page, fault_id,
                           mask = seg.subpage_mask,
                           demand = seg.demand, issued = when,
                           blocked_at_issue](Tick d, Tick rc) {
                              deliver(r, r.clients[cid], page,
                                      fault_id, mask, demand, issued,
                                      blocked_at_issue, d, rc);
                          }});
                 }
             }});
    });
}

bool
MultiClientSimulator::server_unavailable(Run &r, const Client &c,
                                         NodeId srv) const
{
    return r.finj && (r.finj->server_down(srv, c.now) ||
                      r.gms.server_failed(srv, c.now));
}

void
MultiClientSimulator::note_server_down(Run &r, Client &c, NodeId srv)
{
    if (r.finj->server_down(srv, c.now)) {
        r.gms.mark_server_failed(c.now, srv,
                                 r.finj->recovery_time(srv, c.now));
    }
}

void
MultiClientSimulator::finish_if_complete(Run &r, PendingFetch &st)
{
    if (st.done)
        return;
    Client &c = r.clients[st.client];
    PageTable::Frame *frame = c.pt.find(st.page);
    if (!frame || frame->fault_id != st.fault_id) {
        st.done = true;
        return;
    }
    if ((st.expected & ~frame->valid.raw()) == 0)
        st.done = true;
}

void
MultiClientSimulator::issue_transfers_reliable(
    Run &r, Client &c, PageId page, uint64_t fault_id,
    const FetchPlan &plan, SubpageIndex faulted, uint32_t byte_in_sub)
{
    auto st = std::make_shared<PendingFetch>();
    st->client = c.id;
    st->page = page;
    st->fault_id = fault_id;
    st->srv = r.gms.server_of(r.gpage(page, c.id));
    st->demand_sp = faulted;
    st->byte_in_sub = byte_in_sub;
    if (PageTable::Frame *frame = c.pt.find(page)) {
        for (const auto &seg : plan.segments) {
            frame->inflight |= seg.subpage_mask;
            st->expected |= seg.subpage_mask;
        }
    }
    start_attempt(r, std::move(st), plan,
                  c.now + cfg_.net.fault_handle);
}

void
MultiClientSimulator::start_attempt(Run &r,
                                    std::shared_ptr<PendingFetch> st,
                                    FetchPlan plan, Tick when)
{
    Tick timeout =
        cfg_.retry.timeout_for(cfg_.net, plan.total_bytes());
    r.eq.schedule(when, [this, &r, st, plan = std::move(plan), when,
                         timeout] {
        if (st->done)
            return;
        uint64_t gen = st->generation;
        r.net.send(
            when,
            {st->client, st->srv, cfg_.net.request_bytes,
             MsgKind::Request, false,
             [this, &r, st, plan = plan](Tick at, Tick) {
                 if (st->done)
                     return;
                 for (const auto &seg : plan.segments) {
                     Tick blocked_at_issue =
                         r.clients[st->client].blocked_at(at);
                     r.net.send(
                         at,
                         {st->srv, st->client, seg.bytes,
                          seg.demand ? MsgKind::DemandData
                                     : MsgKind::BackgroundData,
                          seg.pipelined_recv,
                          [this, &r, st, mask = seg.subpage_mask,
                           demand = seg.demand, issued = at,
                           blocked_at_issue](Tick d, Tick rc) {
                              deliver(r, r.clients[st->client],
                                      st->page, st->fault_id, mask,
                                      demand, issued,
                                      blocked_at_issue, d, rc);
                              finish_if_complete(r, *st);
                          }});
                 }
             }});
        r.eq.schedule(when + timeout, [this, &r, st, gen,
                                       at = when + timeout] {
            on_fetch_timeout(r, st, gen, at);
        });
    });
}

void
MultiClientSimulator::on_fetch_timeout(Run &r,
                                       std::shared_ptr<PendingFetch> st,
                                       uint64_t generation, Tick when)
{
    if (st->done || st->generation != generation)
        return;
    finish_if_complete(r, *st);
    if (st->done)
        return;
    Client &c = r.clients[st->client];
    PageTable::Frame *frame = c.pt.find(st->page);
    SGMS_ASSERT(frame); // finish_if_complete marks done otherwise
    uint64_t missing = st->expected & ~frame->valid.raw();

    ++r.res.timeouts;
    r.c_timeouts->inc();
    SGMS_TRACE_INSTANT(r.tracer, Gms, "timeout", "reliability", when,
                       st->fault_id,
                       static_cast<int64_t>(st->page),
                       static_cast<int64_t>(st->attempt));
    SGMS_DPRINTF(Gms,
                 "client %u fetch timeout page %llu attempt %u "
                 "missing %llx",
                 st->client,
                 static_cast<unsigned long long>(st->page),
                 st->attempt,
                 static_cast<unsigned long long>(missing));

    if (st->attempt >= cfg_.retry.max_attempts ||
        r.finj->server_down(st->srv, when)) {
        degrade_to_disk(r, st, missing, when);
        return;
    }

    ++st->attempt;
    ++st->generation;
    ++r.res.retries;
    r.c_retries->inc();

    SubpageIndex anchor =
        (missing >> st->demand_sp) & 1
            ? st->demand_sp
            : static_cast<SubpageIndex>(__builtin_ctzll(missing));
    uint32_t byte = anchor == st->demand_sp ? st->byte_in_sub : 0;
    FetchPlan plan = c.policy->plan(r.geo, anchor, byte, missing);
    SGMS_ASSERT(!plan.from_disk);
    if (PageTable::Frame *f = c.pt.find(st->page)) {
        for (const auto &seg : plan.segments)
            f->inflight |= seg.subpage_mask;
    }

    Tick base_timeout =
        cfg_.retry.timeout_for(cfg_.net, plan.total_bytes());
    Tick delay = cfg_.retry.backoff_delay(st->attempt, base_timeout,
                                          r.finj->jitter_draw());
    r.d_retry_delay->add(ticks::to_ns(delay));
    SGMS_TRACE_SPAN(r.tracer, Gms, "retry_backoff", "reliability",
                    when, when + delay, st->fault_id,
                    static_cast<int64_t>(st->page),
                    static_cast<int64_t>(st->attempt));
    start_attempt(r, st, std::move(plan), when + delay);
}

void
MultiClientSimulator::degrade_to_disk(Run &r,
                                      std::shared_ptr<PendingFetch> st,
                                      uint64_t missing, Tick when)
{
    st->done = true;
    ++r.res.degraded_fetches;
    r.c_degraded->inc();

    Tick failed_until = r.finj->server_down(st->srv, when)
                            ? r.finj->recovery_time(st->srv, when)
                            : when + cfg_.retry.quarantine;
    r.gms.mark_server_failed(when, st->srv, failed_until);

    uint32_t bytes = static_cast<uint32_t>(
        __builtin_popcountll(missing) * cfg_.subpage_size);
    Tick latency = cfg_.disk.access_latency(bytes);
    SGMS_TRACE_SPAN(r.tracer, Gms, "degraded_disk", "reliability",
                    when, when + latency, st->fault_id,
                    static_cast<int64_t>(st->page),
                    static_cast<int64_t>(bytes));

    r.eq.schedule(when + latency, [this, &r, st, missing,
                                   at = when + latency] {
        Client &c = r.clients[st->client];
        PageTable::Frame *frame = c.pt.find(st->page);
        if (!frame || frame->fault_id != st->fault_id)
            return;
        uint64_t m = missing;
        while (m) {
            SubpageIndex idx = __builtin_ctzll(m);
            m &= m - 1;
            c.pt.mark_valid(st->page, idx);
        }
        if (frame->complete)
            c.pal.page_completed(st->page);
        maybe_wake(r, c, at);
    });
}

void
MultiClientSimulator::page_fault(Run &r, Client &c, PageId page)
{
    const TraceEvent ev = c.cur_ev;
    ++r.res.page_faults;
    ++c.page_faults;
    r.c_page_faults->inc();
    if (cfg_.record_faults) {
        r.res.clustering.add(
            static_cast<double>(c.ref_index),
            static_cast<double>(r.res.page_faults));
    }
    SGMS_DPRINTF(Sim,
                 "client %u page fault #%llu on page %llu at ref %llu",
                 c.id,
                 static_cast<unsigned long long>(r.res.page_faults),
                 static_cast<unsigned long long>(page),
                 static_cast<unsigned long long>(c.ref_index));

    if (c.pt.full()) {
        PageTable::Frame victim_state;
        PageId victim = c.pt.evict(&victim_state);
        r.c_evictions->inc();
        PageId gv = r.gpage(victim, c.id);
        SGMS_TRACE_INSTANT(r.tracer, Gms, "evict", "gms", c.now,
                           static_cast<int64_t>(gv),
                           static_cast<int64_t>(cfg_.page_size),
                           static_cast<int64_t>(r.gms.server_of(gv)));
        r.gms.put_page(c.now, gv, cfg_.page_size, victim_state.dirty,
                       c.id);
    }

    PageTable::Frame &frame = c.pt.install(page);
    uint64_t fault_id = r.res.faults.size();
    frame.fault_id = fault_id;
    frame.last_touch = c.ref_index;

    SubpageIndex sp = r.geo.subpage_of(ev.addr);
    uint32_t byte_in_sub = ev.addr & (cfg_.subpage_size - 1);
    uint64_t missing = ~0ULL;
    if (r.geo.subpages_per_page() < 64)
        missing = (1ULL << r.geo.subpages_per_page()) - 1;

    // Pushed at fault start (the single-client kernel pushes it at
    // fault end): sp_wait / from_disk are filled in by the wake
    // continuation, so the final record content is identical, while
    // concurrent faults from other clients still get unique ids.
    if (cfg_.record_faults) {
        r.res.faults.push_back(
            FaultRecord{page, c.ref_index, c.now, 0, 0, false});
    }

    FetchPlan plan = c.policy->plan(r.geo, sp, byte_in_sub, missing);
    SGMS_TRACE_INSTANT(r.tracer, Policy, "plan", "policy", c.now,
                       static_cast<int64_t>(fault_id),
                       static_cast<int64_t>(plan.segments.size()),
                       static_cast<int64_t>(plan.total_bytes()));
    PageId gp = r.gpage(page, c.id);
    NodeId srv = r.gms.server_of(gp);
    bool degraded = false;
    if (!plan.from_disk && server_unavailable(r, c, srv)) {
        note_server_down(r, c, srv);
        degraded = true;
        ++r.res.degraded_fetches;
        r.c_degraded->inc();
        SGMS_TRACE_INSTANT(r.tracer, Gms, "degraded_lookup",
                           "reliability", c.now,
                           static_cast<int64_t>(fault_id),
                           static_cast<int64_t>(gp),
                           static_cast<int64_t>(srv));
    }
    if (plan.from_disk || degraded || !r.gms.in_global_memory(gp)) {
        Tick lat = cfg_.disk.access_latency(cfg_.page_size);
        r.c_disk_faults->inc();
        c.wait_page = page;
        c.wait_sp = sp;
        c.wait_fault_id = fault_id;
        begin_disk_sleep(r, c, lat, Cont::DiskPageFault);
        return;
    }
    issue_transfers(r, c, page, fault_id, plan, sp, byte_in_sub);
    park_fetch_wait(r, c, page, sp, fault_id, Cont::NetPageFault,
                    static_cast<int64_t>(plan.segments[0].bytes));
}

void
MultiClientSimulator::subpage_fault(Run &r, Client &c,
                                    PageTable::Frame &frame,
                                    PageId page)
{
    const TraceEvent ev = c.cur_ev;
    ++r.res.lazy_subpage_faults;
    ++c.sub_faults;
    r.c_subpage_faults->inc();

    SubpageIndex sp = r.geo.subpage_of(ev.addr);
    uint32_t byte_in_sub = ev.addr & (cfg_.subpage_size - 1);
    uint64_t missing = ~frame.valid.raw();
    if (r.geo.subpages_per_page() < 64)
        missing &= (1ULL << r.geo.subpages_per_page()) - 1;
    SGMS_DPRINTF(Sim,
                 "client %u subpage fault on page %llu subpage %u "
                 "at ref %llu",
                 c.id, static_cast<unsigned long long>(page), sp,
                 static_cast<unsigned long long>(c.ref_index));

    FetchPlan plan = c.policy->plan(r.geo, sp, byte_in_sub, missing);
    SGMS_ASSERT(!plan.from_disk);
    SGMS_TRACE_INSTANT(r.tracer, Policy, "plan", "policy", c.now,
                       static_cast<int64_t>(frame.fault_id),
                       static_cast<int64_t>(plan.segments.size()),
                       static_cast<int64_t>(plan.total_bytes()));
    PageId gp = r.gpage(page, c.id);
    NodeId srv = r.gms.server_of(gp);
    if (server_unavailable(r, c, srv)) {
        note_server_down(r, c, srv);
        ++r.res.degraded_fetches;
        r.c_degraded->inc();
        Tick lat = cfg_.disk.access_latency(cfg_.page_size);
        r.c_disk_faults->inc();
        c.wait_page = page;
        c.wait_sp = sp;
        c.wait_fault_id = frame.fault_id;
        begin_disk_sleep(r, c, lat, Cont::DiskSubpageDegraded);
        return;
    }
    issue_transfers(r, c, page, frame.fault_id, plan, sp, byte_in_sub);
    park_fetch_wait(r, c, page, sp, frame.fault_id,
                    Cont::NetSubpageFault,
                    static_cast<int64_t>(plan.segments[0].bytes));
}

SimResult
MultiClientSimulator::finish()
{
    SGMS_ASSERT(run_);
    Run &r = *run_;
    SGMS_ASSERT(r.active == 0);
    SimResult &res = r.res;

    uint64_t refs = 0;
    Tick exec = 0, sp_lat = 0, pwait = 0, recv = 0, emu = 0;
    Tick tlb_ovh = 0, blocked = 0, runtime = 0;
    for (Client &c : r.clients) {
        refs += c.ref_index;
        exec += c.exec_time;
        sp_lat += c.sp_latency;
        pwait += c.page_wait;
        recv += c.recv_overhead;
        emu += c.emulation_overhead;
        tlb_ovh += c.tlb_overhead;
        blocked += c.total_blocked;
        if (c.now > runtime)
            runtime = c.now;
        res.evictions += c.pt.evictions();
        res.emulated_accesses += c.pal.emulated();
        if (c.tlb) {
            TlbStats s = c.tlb->stats();
            res.tlb_stats.hits += s.hits;
            res.tlb_stats.misses += s.misses;
        }
    }
    res.refs = refs;
    res.runtime = runtime;
    res.exec_time = exec;
    res.sp_latency = sp_lat;
    res.page_wait = pwait;
    res.recv_overhead = recv;
    res.emulation_overhead = emu;
    res.tlb_overhead = tlb_ovh;
    res.putpages = r.gms.putpages();
    res.global_discards = r.gms.global_discards();
    res.net_stats = r.net.stats();
    // "Requester" busy totals generalize to the sum over all client
    // nodes; at N=1 that is exactly node 0.
    Tick wire = 0, dma = 0, cpu = 0;
    for (uint32_t i = 0; i < r.n; ++i) {
        wire += r.net.wire_to(i).total_busy();
        dma += r.net.dma(i).total_busy();
        cpu += r.net.cpu(i).total_busy();
    }
    res.requester_wire_busy = wire;
    res.requester_dma_busy = dma;
    res.requester_cpu_busy = cpu;
    res.server_failures = r.gms.server_failures();
    if (r.finj) {
        r.metrics.counter("gms.server_failures")
            .inc(res.server_failures);
    }

    double runtime_ns = ticks::to_ns(runtime);
    r.metrics.gauge("sim.runtime_ns").set(runtime_ns);
    r.metrics.gauge("sim.exec_ns").set(ticks::to_ns(exec));
    r.metrics.gauge("sim.blocked_ns").set(ticks::to_ns(blocked));
    r.metrics.gauge("sim.sp_latency_ns").set(ticks::to_ns(sp_lat));
    if (runtime > 0) {
        r.metrics.gauge("net.wire_busy")
            .set(static_cast<double>(wire) /
                 static_cast<double>(runtime));
        r.metrics.gauge("net.req_dma_busy")
            .set(static_cast<double>(dma) /
                 static_cast<double>(runtime));
        r.metrics.gauge("net.req_cpu_busy")
            .set(static_cast<double>(cpu) /
                 static_cast<double>(runtime));
    }
    if (cfg_.tlb_enabled) {
        r.metrics.counter("tlb.hits").inc(res.tlb_stats.hits);
        r.metrics.counter("tlb.misses").inc(res.tlb_stats.misses);
    }

    // Multi-client-only gauges, registered only at N>1 so N=1
    // snapshots stay byte-identical to the single-client kernel
    // (same discipline as the fault-injection-only counters).
    if (r.n > 1) {
        r.metrics.gauge("sim.clients")
            .set(static_cast<double>(r.n));
        r.metrics.gauge("sim.kernel_events")
            .set(static_cast<double>(r.eq.executed()));
        double cpu_max = 0, dma_max = 0, wire_max = 0;
        if (runtime > 0) {
            for (uint32_t s = 0; s < cfg_.gms.servers; ++s) {
                NodeId node = r.n + s;
                double d = static_cast<double>(runtime);
                cpu_max = std::max(
                    cpu_max, r.net.cpu(node).total_busy() / d);
                dma_max = std::max(
                    dma_max, r.net.dma(node).total_busy() / d);
                wire_max = std::max(
                    wire_max, r.net.wire_to(node).total_busy() / d);
            }
        }
        r.metrics.gauge("gms.server_cpu_util_max").set(cpu_max);
        r.metrics.gauge("gms.server_dma_util_max").set(dma_max);
        r.metrics.gauge("gms.server_wire_util_max").set(wire_max);
        if (cfg_.metrics_per_client) {
            for (Client &c : r.clients) {
                std::string p =
                    "client." + std::to_string(c.id) + ".";
                r.metrics.gauge(p + "runtime_ns")
                    .set(ticks::to_ns(c.now));
                r.metrics.gauge(p + "exec_ns")
                    .set(ticks::to_ns(c.exec_time));
                r.metrics.gauge(p + "blocked_ns")
                    .set(ticks::to_ns(c.total_blocked));
                r.metrics.gauge(p + "sp_latency_ns")
                    .set(ticks::to_ns(c.sp_latency));
                r.metrics.gauge(p + "page_faults")
                    .set(static_cast<double>(c.page_faults));
                r.metrics.gauge(p + "refs")
                    .set(static_cast<double>(c.ref_index));
            }
        }
    }
    res.metrics = r.metrics.snapshot();

    SimResult out = std::move(res);
    last_events_executed_ = r.eq.executed();
    run_.reset();
    return out;
}

} // namespace sgms
