/**
 * @file
 * Multi-client event kernel: N faulting clients in one timeline.
 *
 * The single-client simulator (core/simulator.h) runs the traced
 * program as the simulation's main thread and everything else as
 * events. This kernel generalizes that to N client nodes, each with
 * its own trace cursor, page table, replacement state, TLB, and PAL
 * emulator, all faulting against *shared* network stage resources and
 * GMS servers — so cross-client queueing, directory contention, and
 * server CPU/DMA saturation are emergent rather than the analytic
 * cluster_load knob.
 *
 * Clients are plain state machines stored in one dense vector indexed
 * by client id; a small binary heap orders runnable clients by
 * (resume time, id) and the shared EventQueue interleaves with them,
 * events winning ties. A client executes references run-ahead style
 * until it crosses the next pending event time or needs the shared
 * cluster (a fault), at which point it yields or parks; fault
 * completions wake it from inside the delivering event. At N=1 the
 * schedule this produces is exactly the single-client simulator's
 * drain/wait_until schedule, so results are byte-identical
 * (DESIGN.md §15 has the equivalence argument).
 *
 * Node layout: clients occupy nodes 0..N-1, GMS servers start at node
 * N. Page identity on the shared cluster is namespaced per client
 * (gpage = page * N + client), which reduces to the identity map at
 * N=1.
 */

#ifndef SGMS_SIM_MULTI_CLIENT_H
#define SGMS_SIM_MULTI_CLIENT_H

#include <memory>
#include <vector>

#include "core/sim_config.h"
#include "core/sim_result.h"
#include "mem/page_table.h"
#include "policy/fetch_policy.h"
#include "trace/trace.h"

namespace sgms
{

/** Runs N trace cursors against one shared simulated cluster. */
class MultiClientSimulator
{
  public:
    explicit MultiClientSimulator(SimConfig cfg);
    ~MultiClientSimulator();

    /**
     * Simulate every trace to completion and aggregate the results;
     * traces[i] drives client i and must stay alive for the call.
     * Reusable (state is per-run).
     */
    SimResult run(const std::vector<TraceSource *> &traces);

    // Staged form of run() for benchmarks and allocation probes:
    // begin() builds the run state and primes every client, drive()
    // executes up to `rounds` scheduler dispatches (one event or one
    // client step each) and returns false once all clients finished,
    // finish() aggregates and tears down.
    void begin(const std::vector<TraceSource *> &traces);
    bool drive(uint64_t rounds);
    SimResult finish();

    /** Events executed so far (sticky across finish()). */
    uint64_t events_executed() const;
    /** Events currently pending in the shared queue (0 after finish). */
    uint64_t events_pending() const;
    /** References executed so far across all clients. */
    uint64_t refs_executed() const;

    const SimConfig &config() const { return cfg_; }

  private:
    struct Run;
    struct Client;
    struct PendingFetch;
    enum class Phase : uint8_t;
    enum class Cont : uint8_t;

    void prime_client(Run &r, Client &c);
    void step(Run &r, Client &c);
    bool advance_after_ref(Run &r, Client &c, bool in_step);
    bool complete_ref_after_slow(Run &r, Client &c, bool in_step);
    bool yield_for_slow_path(Run &r, Client &c);
    void park_fetch_wait(Run &r, Client &c, PageId page,
                         SubpageIndex sp, uint64_t fault_id, Cont cont,
                         int64_t demand_bytes);
    void begin_disk_sleep(Run &r, Client &c, Tick lat, Cont cont);
    void finish_client(Run &r, Client &c);

    void page_fault(Run &r, Client &c, PageId page);
    void subpage_fault(Run &r, Client &c, PageTable::Frame &frame,
                       PageId page);
    void issue_transfers(Run &r, Client &c, PageId page,
                         uint64_t fault_id, const FetchPlan &plan,
                         SubpageIndex faulted, uint32_t byte_in_sub);
    void deliver(Run &r, Client &c, PageId page, uint64_t fault_id,
                 uint64_t mask, bool demand, Tick issued,
                 Tick blocked_at_issue, Tick delivered, Tick recv_cpu);
    void resolve_watch(Run &r, Client &c, PageTable::Frame &frame,
                       SubpageIndex touched);
    void maybe_wake(Run &r, Client &c, Tick at);
    void wake_from_fetch(Run &r, Client &c, Tick at);
    void finish_disk_wake(Run &r, Client &c);
    void post_fault_epilogue(Run &r, Client &c, PageTable::Frame &f);
    void resolve_epilogue(Run &r, Client &c, PageTable::Frame &f);

    // Reliability layer (active only when cfg_.faults is enabled).
    bool server_unavailable(Run &r, const Client &c, NodeId srv) const;
    void note_server_down(Run &r, Client &c, NodeId srv);
    void issue_transfers_reliable(Run &r, Client &c, PageId page,
                                  uint64_t fault_id,
                                  const FetchPlan &plan,
                                  SubpageIndex faulted,
                                  uint32_t byte_in_sub);
    void start_attempt(Run &r, std::shared_ptr<PendingFetch> st,
                       FetchPlan plan, Tick when);
    void on_fetch_timeout(Run &r, std::shared_ptr<PendingFetch> st,
                          uint64_t generation, Tick when);
    void degrade_to_disk(Run &r, std::shared_ptr<PendingFetch> st,
                         uint64_t missing, Tick when);
    void finish_if_complete(Run &r, PendingFetch &st);

    SimConfig cfg_;
    std::unique_ptr<Run> run_;
    uint64_t last_events_executed_ = 0;
};

} // namespace sgms

#endif // SGMS_SIM_MULTI_CLIENT_H
