#include "policy/fetch_policy.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/debug.h"

namespace sgms
{

uint32_t
FetchPlan::total_bytes() const
{
    uint32_t total = 0;
    for (const auto &seg : segments)
        total += seg.bytes;
    return total;
}

FetchPlan
FetchPolicy::plan(const PageGeometry &geo, SubpageIndex faulted,
                  uint32_t byte_in_sub, uint64_t missing_mask) const
{
    FetchPlan p = build_plan(geo, faulted, byte_in_sub, missing_mask);
    if (c_plans_) {
        c_plans_->inc();
        if (p.from_disk)
            c_disk_plans_->inc();
        for (const TransferSegment &s : p.segments) {
            if (s.demand) {
                c_demand_bytes_->inc(s.bytes);
            } else {
                (s.pipelined_recv ? c_pipelined_followons_
                                  : c_eager_followons_)
                    ->inc();
                c_followon_bytes_->inc(s.bytes);
            }
        }
    }
    SGMS_DPRINTF(Policy,
                 "%s: fault on subpage %u -> %zu segment(s), %u bytes%s",
                 name(), faulted, p.segments.size(), p.total_bytes(),
                 p.from_disk ? " (disk)" : "");
    return p;
}

void
FetchPolicy::bind_metrics(obs::MetricsRegistry &m)
{
    c_plans_ = &m.counter("policy.plans");
    c_disk_plans_ = &m.counter("policy.disk_plans");
    c_demand_bytes_ = &m.counter("policy.demand_bytes");
    c_eager_followons_ = &m.counter("policy.eager_followons");
    c_pipelined_followons_ = &m.counter("policy.pipelined_followons");
    c_followon_bytes_ = &m.counter("policy.followon_bytes");
}

const char *
pipeline_strategy_name(PipelineStrategy s)
{
    switch (s) {
      case PipelineStrategy::NeighborsThenRest:
        return "neighbors+rest";
      case PipelineStrategy::AllSubpages:
        return "all-subpages";
      case PipelineStrategy::DoubledFollowOn:
        return "doubled-followon";
      case PipelineStrategy::InitialDouble:
        return "initial-2x";
    }
    return "?";
}

namespace
{

/** Bytes carried by a subpage mask. */
uint32_t
mask_bytes(uint64_t mask, const PageGeometry &geo)
{
    return __builtin_popcountll(mask) * geo.subpage_size();
}

/** Segment helper. */
TransferSegment
seg(uint64_t mask, const PageGeometry &geo, bool demand,
    bool pipelined = false)
{
    return {mask, mask_bytes(mask, geo), demand, pipelined};
}

} // namespace

FetchPlan
DiskPolicy::build_plan(const PageGeometry &geo, SubpageIndex, uint32_t,
                 uint64_t missing_mask) const
{
    FetchPlan p;
    p.from_disk = true;
    p.segments.push_back(seg(missing_mask, geo, true));
    return p;
}

FetchPlan
FullPagePolicy::build_plan(const PageGeometry &geo, SubpageIndex, uint32_t,
                     uint64_t missing_mask) const
{
    FetchPlan p;
    p.segments.push_back(seg(missing_mask, geo, true));
    return p;
}

FetchPlan
LazySubpagePolicy::build_plan(const PageGeometry &geo, SubpageIndex faulted,
                        uint32_t, uint64_t missing_mask) const
{
    SGMS_ASSERT(missing_mask & (1ULL << faulted));
    FetchPlan p;
    p.segments.push_back(seg(1ULL << faulted, geo, true));
    return p;
}

FetchPlan
EagerFullpagePolicy::build_plan(const PageGeometry &geo, SubpageIndex faulted,
                          uint32_t, uint64_t missing_mask) const
{
    SGMS_ASSERT(missing_mask & (1ULL << faulted));
    FetchPlan p;
    uint64_t demand = 1ULL << faulted;
    p.segments.push_back(seg(demand, geo, true));
    uint64_t rest = missing_mask & ~demand;
    if (rest)
        p.segments.push_back(seg(rest, geo, false));
    return p;
}

FetchPlan
PipeliningPolicy::build_plan(const PageGeometry &geo, SubpageIndex faulted,
                       uint32_t byte_in_sub,
                       uint64_t missing_mask) const
{
    SGMS_ASSERT(missing_mask & (1ULL << faulted));
    const uint32_t n = geo.subpages_per_page();
    FetchPlan p;

    uint64_t demand = 1ULL << faulted;
    if (strategy_ == PipelineStrategy::InitialDouble && n > 1) {
        // Take the neighbour on the side of the faulted word along
        // for the ride: the preceding subpage if the fault is in the
        // first half, else the following one.
        bool first_half = byte_in_sub < geo.subpage_size() / 2;
        int neighbour = first_half ? static_cast<int>(faulted) - 1
                                   : static_cast<int>(faulted) + 1;
        if (neighbour < 0 || neighbour >= static_cast<int>(n))
            neighbour = first_half ? faulted + 1 : faulted - 1;
        demand |= 1ULL << neighbour;
    }
    demand &= missing_mask | (1ULL << faulted);
    p.segments.push_back(seg(demand, geo, true));

    uint64_t remaining = missing_mask & ~demand;
    auto take = [&](int idx) {
        if (idx < 0 || idx >= static_cast<int>(n))
            return;
        uint64_t bit = 1ULL << idx;
        if (!(remaining & bit))
            return;
        p.segments.push_back(seg(bit, geo, false, true));
        remaining &= ~bit;
    };

    switch (strategy_) {
      case PipelineStrategy::NeighborsThenRest:
        take(static_cast<int>(faulted) + 1);
        take(static_cast<int>(faulted) - 1);
        break;
      case PipelineStrategy::AllSubpages:
        for (uint32_t d = 1; d < n && remaining; ++d) {
            take(static_cast<int>(faulted) + static_cast<int>(d));
            take(static_cast<int>(faulted) - static_cast<int>(d));
        }
        break;
      case PipelineStrategy::DoubledFollowOn: {
        // One pipelined message carrying the next two subpages.
        uint64_t mask = 0;
        for (int idx = static_cast<int>(faulted) + 1;
             idx < static_cast<int>(n) &&
             __builtin_popcountll(mask) < 2;
             ++idx) {
            uint64_t bit = 1ULL << idx;
            if (remaining & bit)
                mask |= bit;
        }
        if (mask) {
            p.segments.push_back(seg(mask, geo, false, true));
            remaining &= ~mask;
        }
        break;
      }
      case PipelineStrategy::InitialDouble:
        break; // nothing pipelined beyond the doubled demand
    }

    if (remaining)
        p.segments.push_back(seg(remaining, geo, false));
    return p;
}

void
AdaptivePipeliningPolicy::observe_distance(int distance)
{
    if (distance < -MAX_DIST || distance > MAX_DIST || distance == 0)
        return;
    ++counts_[MAX_DIST + distance];
    ++observations_;
}

uint64_t
AdaptivePipeliningPolicy::distance_count(int distance) const
{
    if (distance < -MAX_DIST || distance > MAX_DIST)
        return 0;
    return counts_[MAX_DIST + distance];
}

FetchPlan
AdaptivePipeliningPolicy::build_plan(const PageGeometry &geo,
                               SubpageIndex faulted, uint32_t,
                               uint64_t missing_mask) const
{
    SGMS_ASSERT(missing_mask & (1ULL << faulted));
    const int n = static_cast<int>(geo.subpages_per_page());
    FetchPlan p;
    p.segments.push_back(seg(1ULL << faulted, geo, true));
    uint64_t remaining = missing_mask & ~(1ULL << faulted);

    // Candidate distances ordered by learned likelihood; before the
    // warmup, or for distances never observed, fall back to the
    // +-distance heuristic (which the paper's Figure 7 justifies).
    std::vector<int> order;
    for (int d = 1; d < n; ++d) {
        order.push_back(d);
        order.push_back(-d);
    }
    if (observations_ >= warmup_) {
        std::stable_sort(order.begin(), order.end(),
                         [this](int a, int b) {
                             return distance_count(a) >
                                    distance_count(b);
                         });
    }
    for (int d : order) {
        int idx = static_cast<int>(faulted) + d;
        if (idx < 0 || idx >= n)
            continue;
        uint64_t bit = 1ULL << idx;
        if (!(remaining & bit))
            continue;
        p.segments.push_back(seg(bit, geo, false, true));
        remaining &= ~bit;
    }
    if (remaining)
        p.segments.push_back(seg(remaining, geo, false));
    return p;
}

namespace
{

std::unique_ptr<FetchPolicy>
make_policy_by_name(const std::string &name)
{
    if (name == "disk")
        return std::make_unique<DiskPolicy>();
    if (name == "fullpage")
        return std::make_unique<FullPagePolicy>();
    if (name == "lazy")
        return std::make_unique<LazySubpagePolicy>();
    if (name == "eager")
        return std::make_unique<EagerFullpagePolicy>();
    if (name == "pipelining")
        return std::make_unique<PipeliningPolicy>(
            PipelineStrategy::NeighborsThenRest);
    if (name == "pipelining-all")
        return std::make_unique<PipeliningPolicy>(
            PipelineStrategy::AllSubpages);
    if (name == "pipelining-doubled")
        return std::make_unique<PipeliningPolicy>(
            PipelineStrategy::DoubledFollowOn);
    if (name == "pipelining-initial2x")
        return std::make_unique<PipeliningPolicy>(
            PipelineStrategy::InitialDouble);
    if (name == "pipelining-adaptive")
        return std::make_unique<AdaptivePipeliningPolicy>();
    fatal("unknown fetch policy '%s'", name.c_str());
}

} // namespace

std::unique_ptr<FetchPolicy>
make_fetch_policy(const std::string &name,
                  obs::MetricsRegistry *metrics)
{
    std::unique_ptr<FetchPolicy> policy = make_policy_by_name(name);
    if (metrics)
        policy->bind_metrics(*metrics);
    return policy;
}

} // namespace sgms
