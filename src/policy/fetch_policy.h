/**
 * @file
 * Fetch policies: what to transfer when a program faults.
 *
 * The paper's section 2.1 defines the design space:
 *  - full-page fetch (baseline GMS),
 *  - lazy subpage fetch (only the faulted subpage; neighbours fetched
 *    on their own later faults),
 *  - eager fullpage fetch (faulted subpage + rest of page as one
 *    large follow-on transfer),
 *  - subpage pipelining (faulted subpage + sequenced follow-on
 *    subpage messages), with the sequencing variants of section 4.3.
 *
 * A policy answers a fault with a FetchPlan: an ordered list of
 * transfer segments, the first of which is the demand segment the
 * program blocks on.
 */

#ifndef SGMS_POLICY_FETCH_POLICY_H
#define SGMS_POLICY_FETCH_POLICY_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/page.h"
#include "obs/metrics.h"

namespace sgms
{

/** One transfer segment of a fetch plan. */
struct TransferSegment
{
    /** Subpages this segment carries (bitmask); marked on arrival. */
    uint64_t subpage_mask = 0;

    /** Bytes on the wire (popcount(subpage_mask) * subpage size). */
    uint32_t bytes = 0;

    /** The program blocks on this segment (must be the first). */
    bool demand = false;

    /**
     * Follow-on subpage handled by the intelligent controller
     * (no receive-CPU cost in the paper's simulation model).
     */
    bool pipelined_recv = false;
};

/** What to transfer for one fault. */
struct FetchPlan
{
    /** Service from local disk instead of network memory. */
    bool from_disk = false;

    /** Segments in send order; segments[0] is the demand segment. */
    std::vector<TransferSegment> segments;

    /** Total bytes across all segments. */
    uint32_t total_bytes() const;
};

/** Strategy for ordering pipelined follow-on subpages. */
enum class PipelineStrategy
{
    /**
     * The paper's Figure 8 scheme: pipeline the +1 and -1 neighbour
     * subpages individually, then the remainder of the page as one
     * message.
     */
    NeighborsThenRest,

    /** Pipeline every remaining subpage, ordered by +-distance. */
    AllSubpages,

    /**
     * Section 4.3 variant: follow the faulted subpage with a single
     * pipelined transfer of twice the subpage size (the next 2
     * subpages), then the remainder.
     */
    DoubledFollowOn,

    /**
     * Section 4.3 variant: the *initial* demand transfer is twice
     * the subpage size, taking the preceding or following subpage
     * "along for the ride" depending on where in the subpage the
     * faulted word lies; the remainder follows as one message.
     */
    InitialDouble,
};

const char *pipeline_strategy_name(PipelineStrategy s);

/** Interface: map a fault to a transfer plan. */
class FetchPolicy
{
  public:
    virtual ~FetchPolicy() = default;

    /**
     * Build the plan for a fault (template method: dispatches to the
     * policy's build_plan, then records policy.* metrics and debug
     * output uniformly).
     *
     * @param geo          page geometry
     * @param faulted      subpage containing the faulted address
     * @param byte_in_sub  offset of the faulted byte inside that
     *                     subpage (used by InitialDouble)
     * @param missing_mask subpages not already valid in the frame
     *                     (all subpages for a fresh page fault)
     */
    FetchPlan plan(const PageGeometry &geo, SubpageIndex faulted,
                   uint32_t byte_in_sub, uint64_t missing_mask) const;

    /**
     * Register this policy's counters (policy.plans,
     * policy.eager_followons, policy.pipelined_followons, ...) with
     * @p m; until called, plan() skips metric accounting.
     */
    void bind_metrics(obs::MetricsRegistry &m);

    /**
     * Feedback hook: after a fault on subpage i, the first access to
     * a different subpage of the same page was at i + @p distance.
     * Stateless policies ignore this; AdaptivePipeliningPolicy uses
     * it to learn the follow-on order (the paper's section 4.3
     * "information about the likelihood of accessing particular
     * subpages").
     */
    virtual void observe_distance(int /* distance */) {}

    virtual const char *name() const = 0;

  protected:
    /** Policy-specific plan construction; see plan() for params. */
    virtual FetchPlan build_plan(const PageGeometry &geo,
                                 SubpageIndex faulted,
                                 uint32_t byte_in_sub,
                                 uint64_t missing_mask) const = 0;

  private:
    // Bound metrics (null until bind_metrics; mutated through the
    // pointers, so plan() stays const).
    obs::Counter *c_plans_ = nullptr;
    obs::Counter *c_disk_plans_ = nullptr;
    obs::Counter *c_demand_bytes_ = nullptr;
    obs::Counter *c_eager_followons_ = nullptr;
    obs::Counter *c_pipelined_followons_ = nullptr;
    obs::Counter *c_followon_bytes_ = nullptr;
};

/** Service every fault from the local disk (no network memory). */
class DiskPolicy : public FetchPolicy
{
  public:
    FetchPlan build_plan(const PageGeometry &geo, SubpageIndex faulted,
                         uint32_t byte_in_sub,
                         uint64_t missing_mask) const override;
    const char *name() const override { return "disk"; }
};

/** Baseline GMS: fetch the whole page as one demand transfer. */
class FullPagePolicy : public FetchPolicy
{
  public:
    FetchPlan build_plan(const PageGeometry &geo, SubpageIndex faulted,
                         uint32_t byte_in_sub,
                         uint64_t missing_mask) const override;
    const char *name() const override { return "fullpage"; }
};

/** Lazy subpage fetch: only the faulted subpage, nothing else. */
class LazySubpagePolicy : public FetchPolicy
{
  public:
    FetchPlan build_plan(const PageGeometry &geo, SubpageIndex faulted,
                         uint32_t byte_in_sub,
                         uint64_t missing_mask) const override;
    const char *name() const override { return "lazy"; }
};

/** Eager fullpage fetch: demand subpage + rest as one transfer. */
class EagerFullpagePolicy : public FetchPolicy
{
  public:
    FetchPlan build_plan(const PageGeometry &geo, SubpageIndex faulted,
                         uint32_t byte_in_sub,
                         uint64_t missing_mask) const override;
    const char *name() const override { return "eager"; }
};

/** Subpage pipelining with a configurable sequencing strategy. */
class PipeliningPolicy : public FetchPolicy
{
  public:
    explicit PipeliningPolicy(
        PipelineStrategy strategy = PipelineStrategy::NeighborsThenRest)
        : strategy_(strategy)
    {}

    FetchPlan build_plan(const PageGeometry &geo, SubpageIndex faulted,
                         uint32_t byte_in_sub,
                         uint64_t missing_mask) const override;
    const char *name() const override { return "pipelining"; }

    PipelineStrategy strategy() const { return strategy_; }

  private:
    PipelineStrategy strategy_;
};

/**
 * Adaptive subpage pipelining — the paper's future-work idea of
 * sequencing follow-on subpages by the observed likelihood of being
 * the next one accessed. It maintains an online histogram of
 * next-subpage distances (fed by observe_distance) and pipelines
 * every remaining subpage individually, most-likely distance first.
 * Until enough samples arrive it behaves like AllSubpages (+-
 * distance order).
 */
class AdaptivePipeliningPolicy : public FetchPolicy
{
  public:
    /** @param warmup samples required before the learned order kicks in */
    explicit AdaptivePipeliningPolicy(uint32_t warmup = 32)
        : warmup_(warmup)
    {}

    FetchPlan build_plan(const PageGeometry &geo, SubpageIndex faulted,
                         uint32_t byte_in_sub,
                         uint64_t missing_mask) const override;
    void observe_distance(int distance) override;
    const char *name() const override { return "pipelining-adaptive"; }

    /** Observations of a given distance so far. */
    uint64_t distance_count(int distance) const;
    uint64_t observations() const { return observations_; }

  private:
    static constexpr int MAX_DIST = 63;

    uint32_t warmup_;
    uint64_t observations_ = 0;
    /** counts_[MAX_DIST + d] = observations of distance d. */
    uint64_t counts_[2 * MAX_DIST + 1] = {};
};

/**
 * Factory by name: "disk", "fullpage", "lazy", "eager",
 * "pipelining" (NeighborsThenRest), "pipelining-all",
 * "pipelining-doubled", "pipelining-initial2x",
 * "pipelining-adaptive". When @p metrics is given, the policy's
 * counters are registered before it is returned.
 */
std::unique_ptr<FetchPolicy>
make_fetch_policy(const std::string &name,
                  obs::MetricsRegistry *metrics = nullptr);

} // namespace sgms

#endif // SGMS_POLICY_FETCH_POLICY_H
