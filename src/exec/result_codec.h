/**
 * @file
 * Lossless SimResult <-> JSON blob codec for the result cache.
 *
 * Unlike core/json_report.h — a reporting format with rounded
 * millisecond fields — this codec is a faithful serialization: every
 * field of SimResult round-trips exactly (ticks as integer
 * picoseconds, doubles printed with 17 significant digits), so a
 * cache hit is indistinguishable from re-running the simulation,
 * down to the last byte of any downstream report.
 *
 * Blobs carry kResultBlobSchema; a reader rejects any other version
 * (and any structural damage) by returning false, which the cache
 * treats as a miss.
 */

#ifndef SGMS_EXEC_RESULT_CODEC_H
#define SGMS_EXEC_RESULT_CODEC_H

#include <ostream>
#include <string>

#include "core/sim_result.h"

namespace sgms::exec
{

/**
 * Version of both the blob layout and the simulator's observable
 * result semantics. Bump whenever SimResult gains/changes fields OR
 * a simulator change alters results for an unchanged SimConfig —
 * the version participates in the cache key, so a bump invalidates
 * every cached point at once.
 */
inline constexpr uint32_t kResultBlobSchema = 1;

/** Serialize every field of @p r as one JSON object. */
void write_result_blob(std::ostream &os, const SimResult &r);

/** Convenience: write_result_blob into a string. */
std::string result_blob(const SimResult &r);

/**
 * Parse a blob produced by write_result_blob. Returns false (leaving
 * @p out default-constructed) on a parse error, a schema mismatch,
 * or missing required fields; never fatals, because the input may be
 * a truncated or corrupted cache file.
 */
bool read_result_blob(const std::string &text, SimResult &out);

} // namespace sgms::exec

#endif // SGMS_EXEC_RESULT_CODEC_H
