#include "exec/exec_options.h"

#include "exec/thread_pool.h"

namespace sgms::exec
{

namespace
{

unsigned
resolve_jobs(uint64_t requested)
{
    if (requested == 0)
        return ThreadPool::hardware_workers();
    return static_cast<unsigned>(requested);
}

} // namespace

ExecOptions
ExecOptions::from_env()
{
    ExecOptions eo;
    eo.jobs = resolve_jobs(env_u64("SGMS_JOBS", 1));
    eo.cache_dir = env_string("SGMS_CACHE_DIR", eo.cache_dir);
    eo.cache_enabled = env_u64("SGMS_CACHE", 0) != 0;
    return eo;
}

ExecOptions
ExecOptions::from_options(const Options &opts)
{
    ExecOptions eo = from_env();
    if (opts.has("jobs"))
        eo.jobs = resolve_jobs(opts.get_u64("jobs", 1));
    if (opts.has("cache-dir")) {
        eo.cache_dir = opts.get("cache-dir", eo.cache_dir);
        eo.cache_enabled = true;
    }
    if (opts.get_bool("no-cache"))
        eo.cache_enabled = false;
    return eo;
}

const char *
ExecOptions::help()
{
    return "execution: --jobs=N (0=all cores; SGMS_JOBS) "
           "--cache-dir=DIR (SGMS_CACHE_DIR; implies cache on)\n"
           "  --no-cache (SGMS_CACHE=1 enables; default off)";
}

} // namespace sgms::exec
