#include "exec/exec_options.h"

#include "exec/thread_pool.h"

namespace sgms::exec
{

namespace
{

unsigned
resolve_jobs(uint64_t requested)
{
    if (requested == 0)
        return ThreadPool::hardware_workers();
    return static_cast<unsigned>(requested);
}

} // namespace

ExecOptions
ExecOptions::from_env()
{
    ExecOptions eo;
    eo.jobs = resolve_jobs(env_u64("SGMS_JOBS", 1));
    // In the environment, 0 (or unset) means "stay in-process" —
    // there is no env spelling for "all cores as processes", since a
    // stray variable must never silently fork a fleet.
    eo.workers =
        static_cast<unsigned>(env_u64("SGMS_WORKERS", 0));
    eo.point_timeout_ms = env_u64("SGMS_POINT_TIMEOUT_MS", 0);
    eo.cache_dir = env_string("SGMS_CACHE_DIR", eo.cache_dir);
    eo.cache_enabled = env_u64("SGMS_CACHE", 0) != 0;
    eo.cache_max_bytes =
        env_u64("SGMS_CACHE_MAX_MB", 0) * 1024 * 1024;
    return eo;
}

ExecOptions
ExecOptions::from_options(const Options &opts)
{
    ExecOptions eo = from_env();
    if (opts.has("jobs"))
        eo.jobs = resolve_jobs(opts.get_u64("jobs", 1));
    if (opts.has("workers")) {
        // On the flag, asking for workers explicitly, 0 = all cores.
        eo.workers = resolve_jobs(opts.get_u64("workers", 0));
    }
    if (opts.has("point-timeout"))
        eo.point_timeout_ms = opts.get_u64("point-timeout", 0);
    if (opts.has("cache-dir")) {
        eo.cache_dir = opts.get("cache-dir", eo.cache_dir);
        eo.cache_enabled = true;
    }
    if (opts.get_bool("no-cache"))
        eo.cache_enabled = false;
    if (opts.has("cache-max-mb")) {
        eo.cache_max_bytes =
            opts.get_u64("cache-max-mb", 0) * 1024 * 1024;
    }
    if (opts.get_bool("cache-gc"))
        eo.cache_gc = true;
    return eo;
}

const char *
ExecOptions::help()
{
    return "execution: --jobs=N (0=all cores; SGMS_JOBS) "
           "--workers=N (forked processes; SGMS_WORKERS)\n"
           "  --point-timeout=MS (watchdog; SGMS_POINT_TIMEOUT_MS) "
           "--cache-dir=DIR (SGMS_CACHE_DIR; implies cache on)\n"
           "  --no-cache (SGMS_CACHE=1 enables; default off) "
           "--cache-max-mb=N (LRU bound; SGMS_CACHE_MAX_MB) "
           "--cache-gc";
}

} // namespace sgms::exec
