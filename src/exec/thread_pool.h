/**
 * @file
 * Work-stealing thread pool for the parallel execution engine.
 *
 * Each worker owns a deque of tasks: it pops work from the front of
 * its own deque and, when that runs dry, steals from the back of a
 * sibling's (classic Blumofe/Leiserson discipline, which keeps hot
 * tasks cache-local and steals the coldest ones). submit() deals new
 * tasks round-robin across the worker deques and returns a
 * std::future for the task's result; a bounded aggregate queue depth
 * applies backpressure by blocking submitters instead of buffering
 * unbounded closures.
 *
 * Shutdown is graceful: the destructor (or shutdown()) lets every
 * already-submitted task finish before the workers exit. The pool is
 * deliberately generic — it schedules std::function thunks, not
 * Experiments — so later subsystems (trace prefetchers, background
 * flushers) can share it.
 */

#ifndef SGMS_EXEC_THREAD_POOL_H
#define SGMS_EXEC_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sgms::exec
{

/** Counters the pool maintains; snapshot via ThreadPool::stats(). */
struct PoolStats
{
    uint64_t submitted = 0; ///< tasks accepted by submit()
    uint64_t executed = 0;  ///< tasks that ran to completion
    uint64_t stolen = 0;    ///< tasks taken from a sibling's deque
    uint64_t peak_queued = 0; ///< high-water mark of waiting tasks
};

class ThreadPool
{
  public:
    /**
     * @param workers        worker thread count (>= 1)
     * @param queue_capacity max waiting (unstarted) tasks before
     *                       submit() blocks; 0 = unbounded
     */
    explicit ThreadPool(unsigned workers, size_t queue_capacity = 0);

    /** Graceful: drains all submitted work, then joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Schedule @p fn and return a future for its result. Blocks while
     * the pool is at queue capacity. Submitting after shutdown() is a
     * programming error (panics).
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        enqueue([task]() { (*task)(); });
        return fut;
    }

    /** Block until every submitted task has completed. */
    void wait_idle();

    /** Finish all queued work and join the workers (idempotent). */
    void shutdown();

    unsigned worker_count() const
    {
        return static_cast<unsigned>(deques_.size());
    }

    /** Snapshot of the pool counters (safe to call any time). */
    PoolStats stats() const;

    /** A sensible default worker count for this machine. */
    static unsigned hardware_workers();

  private:
    struct Deque
    {
        std::deque<std::function<void()>> tasks;
    };

    void enqueue(std::function<void()> fn);
    void worker_main(unsigned index);
    bool take_task(unsigned index, std::function<void()> &out);

    // One mutex guards every deque plus the counters: tasks here are
    // whole simulations (milliseconds each), so scheduler contention
    // is noise and a single lock keeps steal/shutdown races simple.
    mutable std::mutex mutex_;
    std::condition_variable work_cv_;  ///< workers wait for tasks
    std::condition_variable idle_cv_;  ///< waiters wait for drain
    std::condition_variable space_cv_; ///< submitters wait for room
    std::vector<Deque> deques_;
    std::vector<std::thread> threads_;
    size_t queue_capacity_;
    size_t queued_ = 0;  ///< tasks waiting in some deque
    size_t running_ = 0; ///< tasks currently executing
    unsigned next_deque_ = 0;
    bool stopping_ = false;
    PoolStats stats_;
};

} // namespace sgms::exec

#endif // SGMS_EXEC_THREAD_POOL_H
