/**
 * @file
 * Execution-engine knobs and their CLI/environment wiring.
 *
 * Every driver resolves an ExecOptions the same way, layered
 * flag-over-environment-over-default:
 *
 *   --jobs=N        worker threads; 0 = all hardware threads.
 *                   Env: SGMS_JOBS. Default 1 (serial fast path).
 *   --workers=N     forked worker *processes*; takes precedence over
 *                   --jobs when nonzero. 0 on the flag means all
 *                   hardware threads. Env: SGMS_WORKERS (unset or 0 =
 *                   stay in-process). Output is byte-identical to the
 *                   serial path at any worker count.
 *   --point-timeout=MS  per-point wall-clock budget. In workers mode
 *                   a point over budget has its worker killed; in
 *                   serial/thread-pool mode the simulator checks the
 *                   budget cooperatively at trace-batch boundaries
 *                   and aborts the point. Either way the point is
 *                   surfaced as the same deterministic degraded
 *                   result and counted in exec.timeouts. Env:
 *                   SGMS_POINT_TIMEOUT_MS. Default 0 (no watchdog).
 *   --cache-dir=D   result-cache directory; giving it enables the
 *                   cache. Env: SGMS_CACHE_DIR. Default .sgms-cache/.
 *   --no-cache      disable the result cache for this run.
 *   SGMS_CACHE=1    enable the cache (0 disables); default off, so a
 *                   code change without a schema bump can never
 *                   silently serve stale results to a casual run.
 *   --cache-max-mb=N  size bound for the cache directory; least-
 *                   recently-used blobs are evicted after each store
 *                   to keep the directory under N MiB. Env:
 *                   SGMS_CACHE_MAX_MB. Default 0 (unbounded).
 *   --cache-gc      run one eviction pass at engine construction,
 *                   even when caching is off for the run.
 *
 * Benches (bench/bench_common.h) run under env control alone, so
 * `SGMS_JOBS=8 SGMS_CACHE=1 ./build/bench/fig9_summary` parallelizes
 * and caches any bench with no per-bench code.
 */

#ifndef SGMS_EXEC_EXEC_OPTIONS_H
#define SGMS_EXEC_EXEC_OPTIONS_H

#include <cstdint>
#include <string>

#include "common/options.h"

namespace sgms::exec
{

struct ExecOptions
{
    /** Worker threads for grid runs; 1 = serial in-caller. */
    unsigned jobs = 1;

    /** Forked worker processes; 0 = in-process (threads/serial). */
    unsigned workers = 0;

    /**
     * Per-point wall-clock budget (all modes; cooperative outside
     * workers mode); 0 = none.
     */
    uint64_t point_timeout_ms = 0;

    /** Consult/populate the on-disk result cache. */
    bool cache_enabled = false;

    /** Blob directory for the result cache. */
    std::string cache_dir = ".sgms-cache";

    /** Cache directory size bound in bytes; 0 = unbounded. */
    uint64_t cache_max_bytes = 0;

    /** Run one eviction pass up front, even with caching off. */
    bool cache_gc = false;

    /**
     * Environment layer only (SGMS_JOBS, SGMS_WORKERS,
     * SGMS_POINT_TIMEOUT_MS, SGMS_CACHE[_DIR], SGMS_CACHE_MAX_MB).
     */
    static ExecOptions from_env();

    /**
     * Flags layered over the environment: --jobs, --workers,
     * --point-timeout, --cache-dir, --no-cache, --cache-max-mb,
     * --cache-gc (see file header).
     */
    static ExecOptions from_options(const Options &opts);

    /** One-line help text for the flags above. */
    static const char *help();
};

} // namespace sgms::exec

#endif // SGMS_EXEC_EXEC_OPTIONS_H
