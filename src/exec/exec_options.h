/**
 * @file
 * Execution-engine knobs and their CLI/environment wiring.
 *
 * Every driver resolves an ExecOptions the same way, layered
 * flag-over-environment-over-default:
 *
 *   --jobs=N        worker threads; 0 = all hardware threads.
 *                   Env: SGMS_JOBS. Default 1 (serial fast path).
 *   --cache-dir=D   result-cache directory; giving it enables the
 *                   cache. Env: SGMS_CACHE_DIR. Default .sgms-cache/.
 *   --no-cache      disable the result cache for this run.
 *   SGMS_CACHE=1    enable the cache (0 disables); default off, so a
 *                   code change without a schema bump can never
 *                   silently serve stale results to a casual run.
 *
 * Benches (bench/bench_common.h) run under env control alone, so
 * `SGMS_JOBS=8 SGMS_CACHE=1 ./build/bench/fig9_summary` parallelizes
 * and caches any bench with no per-bench code.
 */

#ifndef SGMS_EXEC_EXEC_OPTIONS_H
#define SGMS_EXEC_EXEC_OPTIONS_H

#include <string>

#include "common/options.h"

namespace sgms::exec
{

struct ExecOptions
{
    /** Worker threads for grid runs; 1 = serial in-caller. */
    unsigned jobs = 1;

    /** Consult/populate the on-disk result cache. */
    bool cache_enabled = false;

    /** Blob directory for the result cache. */
    std::string cache_dir = ".sgms-cache";

    /** Environment layer only (SGMS_JOBS, SGMS_CACHE[_DIR]). */
    static ExecOptions from_env();

    /**
     * Flags layered over the environment: --jobs, --cache-dir,
     * --no-cache (see file header).
     */
    static ExecOptions from_options(const Options &opts);

    /** One-line help text for the flags above. */
    static const char *help();
};

} // namespace sgms::exec

#endif // SGMS_EXEC_EXEC_OPTIONS_H
