/**
 * @file
 * Pipe framing for the multi-process execution mode.
 *
 * The supervisor (parent) and its forked workers speak a minimal
 * length-prefixed binary protocol over anonymous pipes:
 *
 *   magic(4) | type(4) | index(8) | arg(8) | payload_len(8) | payload
 *
 * Task frames carry the experiment's *fingerprint* as payload — the
 * worker already holds the expanded point vector (it was forked from
 * the parent after expansion), so the fingerprint is a cross-check
 * that both sides agree on what point N is, not a serialization of
 * the experiment. Result frames carry the lossless SimResult blob
 * (exec/result_codec.h), so a result that crossed a pipe is
 * byte-identical to one computed in-process.
 *
 * Reads and writes loop over partial transfers and EINTR. A clean
 * EOF (pipe closed between frames) is distinct from a torn frame or
 * garbage bytes, so the supervisor can tell "worker exited" from
 * "worker died mid-reply".
 */

#ifndef SGMS_EXEC_IPC_H
#define SGMS_EXEC_IPC_H

#include <cstdint>
#include <string>

namespace sgms::exec
{

/** Frame kinds of the supervisor<->worker protocol. */
enum class FrameType : uint32_t
{
    Task = 1,   ///< parent -> worker: run point `index` (attempt `arg`)
    Result = 2, ///< worker -> parent: blob for point `index`
    Error = 3,  ///< worker -> parent: could not run point `index`
};

/** One protocol frame. */
struct IpcFrame
{
    FrameType type = FrameType::Task;
    uint64_t index = 0; ///< experiment point (serial grid index)
    uint64_t arg = 0;   ///< task: attempt number; result: attempt echoed
    std::string payload;
};

/** Outcome of read_frame. */
enum class IpcRead
{
    Ok,    ///< a complete frame was read
    Eof,   ///< clean end of stream before any frame byte
    Error, ///< torn frame, bad magic, oversized payload, or I/O error
};

/** Largest payload read_frame accepts (defends against garbage). */
inline constexpr uint64_t kIpcMaxPayload = 1ull << 30;

/**
 * Write one frame to @p fd. Loops over short writes; returns false
 * on any write error (e.g. EPIPE when the peer died) — callers must
 * ignore/mask SIGPIPE themselves.
 */
bool write_frame(int fd, const IpcFrame &frame);

/** Read one frame from @p fd (blocking). */
IpcRead read_frame(int fd, IpcFrame &out);

} // namespace sgms::exec

#endif // SGMS_EXEC_IPC_H
