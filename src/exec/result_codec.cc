#include "exec/result_codec.h"

#include <cstdio>
#include <sstream>

#include "common/json.h"
#include "core/json_report.h"

namespace sgms::exec
{

namespace
{

/** Shortest exact double: %.17g round-trips IEEE-754 binary64. */
std::string
fmt_double(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
num(std::ostream &os, const char *name, uint64_t v, bool comma = true)
{
    os << '"' << name << "\":" << v;
    if (comma)
        os << ',';
}

void
tick(std::ostream &os, const char *name, Tick v, bool comma = true)
{
    os << '"' << name << "\":" << v;
    if (comma)
        os << ',';
}

void
dbl(std::ostream &os, const char *name, double v, bool comma = true)
{
    os << '"' << name << "\":" << fmt_double(v);
    if (comma)
        os << ',';
}

void
str(std::ostream &os, const char *name, const std::string &v,
    bool comma = true)
{
    os << '"' << name << "\":\"" << json_escape(v) << '"';
    if (comma)
        os << ',';
}

} // namespace

void
write_result_blob(std::ostream &os, const SimResult &r)
{
    os << '{';
    num(os, "schema", kResultBlobSchema);
    str(os, "app", r.app);
    str(os, "policy", r.policy);
    num(os, "page_size", r.page_size);
    num(os, "subpage_size", r.subpage_size);
    num(os, "mem_pages", r.mem_pages);

    num(os, "refs", r.refs);
    num(os, "page_faults", r.page_faults);
    num(os, "lazy_subpage_faults", r.lazy_subpage_faults);
    num(os, "evictions", r.evictions);
    num(os, "putpages", r.putpages);
    num(os, "emulated_accesses", r.emulated_accesses);

    tick(os, "runtime", r.runtime);
    tick(os, "exec_time", r.exec_time);
    tick(os, "sp_latency", r.sp_latency);
    tick(os, "page_wait", r.page_wait);
    tick(os, "recv_overhead", r.recv_overhead);
    tick(os, "emulation_overhead", r.emulation_overhead);
    tick(os, "tlb_overhead", r.tlb_overhead);
    tick(os, "io_overlap", r.io_overlap);
    tick(os, "comp_overlap", r.comp_overlap);

    os << "\"faults\":[";
    for (size_t i = 0; i < r.faults.size(); ++i) {
        const FaultRecord &f = r.faults[i];
        if (i)
            os << ',';
        os << '{';
        num(os, "page", f.page);
        num(os, "ref_index", f.ref_index);
        tick(os, "at", f.at);
        tick(os, "sp_wait", f.sp_wait);
        tick(os, "page_wait", f.page_wait);
        os << "\"from_disk\":" << (f.from_disk ? "true" : "false")
           << '}';
    }
    os << "],";

    os << "\"clustering\":{";
    str(os, "name", r.clustering.name);
    os << "\"points\":[";
    for (size_t i = 0; i < r.clustering.points.size(); ++i) {
        if (i)
            os << ',';
        os << '[' << fmt_double(r.clustering.points[i].first) << ','
           << fmt_double(r.clustering.points[i].second) << ']';
    }
    os << "]},";

    os << "\"distance_bins\":[";
    {
        bool first = true;
        for (const auto &[key, count] :
             r.next_subpage_distance.bins()) {
            if (!first)
                os << ',';
            first = false;
            os << '[' << key << ',' << count << ']';
        }
    }
    os << "],";

    os << "\"net\":{";
    num(os, "messages", r.net_stats.messages);
    num(os, "bytes", r.net_stats.bytes);
    os << "\"messages_by_kind\":[";
    for (size_t k = 0; k < kMsgKindCount; ++k)
        os << (k ? "," : "") << r.net_stats.messages_by_kind[k];
    os << "],\"bytes_by_kind\":[";
    for (size_t k = 0; k < kMsgKindCount; ++k)
        os << (k ? "," : "") << r.net_stats.bytes_by_kind[k];
    os << "],";
    num(os, "dropped", r.net_stats.dropped);
    num(os, "corrupted", r.net_stats.corrupted);
    num(os, "duplicated", r.net_stats.duplicated, false);
    os << "},";

    os << "\"tlb\":{";
    num(os, "hits", r.tlb_stats.hits);
    num(os, "misses", r.tlb_stats.misses, false);
    os << "},";
    num(os, "global_discards", r.global_discards);

    num(os, "retries", r.retries);
    num(os, "timeouts", r.timeouts);
    num(os, "degraded_fetches", r.degraded_fetches);
    num(os, "duplicate_deliveries", r.duplicate_deliveries);
    num(os, "server_failures", r.server_failures);

    os << "\"metrics\":[";
    for (size_t i = 0; i < r.metrics.size(); ++i) {
        const obs::MetricSample &m = r.metrics[i];
        if (i)
            os << ',';
        os << '{';
        str(os, "name", m.name);
        num(os, "kind", static_cast<uint64_t>(m.kind));
        dbl(os, "value", m.value);
        num(os, "count", m.count);
        dbl(os, "mean", m.mean);
        dbl(os, "min", m.min);
        dbl(os, "max", m.max, false);
        os << '}';
    }
    os << "],";

    tick(os, "requester_wire_busy", r.requester_wire_busy);
    tick(os, "requester_dma_busy", r.requester_dma_busy);
    tick(os, "requester_cpu_busy", r.requester_cpu_busy, false);
    os << '}';
}

std::string
result_blob(const SimResult &r)
{
    std::ostringstream os;
    write_result_blob(os, r);
    return os.str();
}

bool
read_result_blob(const std::string &text, SimResult &out)
{
    out = SimResult();
    JsonValue doc;
    if (!JsonValue::parse(text, doc) || !doc.is_object())
        return false;
    if (doc.get_u64("schema") != kResultBlobSchema)
        return false;
    // Structural spine required; a blob missing any of these is
    // damaged, not merely old.
    for (const char *key : {"app", "policy", "faults", "clustering",
                            "distance_bins", "net", "tlb", "metrics",
                            "runtime"}) {
        if (!doc.has(key))
            return false;
    }

    SimResult r;
    r.app = doc.get_string("app");
    r.policy = doc.get_string("policy");
    r.page_size = static_cast<uint32_t>(doc.get_u64("page_size"));
    r.subpage_size =
        static_cast<uint32_t>(doc.get_u64("subpage_size"));
    r.mem_pages = static_cast<size_t>(doc.get_u64("mem_pages"));

    r.refs = doc.get_u64("refs");
    r.page_faults = doc.get_u64("page_faults");
    r.lazy_subpage_faults = doc.get_u64("lazy_subpage_faults");
    r.evictions = doc.get_u64("evictions");
    r.putpages = doc.get_u64("putpages");
    r.emulated_accesses = doc.get_u64("emulated_accesses");

    r.runtime = doc.get_i64("runtime");
    r.exec_time = doc.get_i64("exec_time");
    r.sp_latency = doc.get_i64("sp_latency");
    r.page_wait = doc.get_i64("page_wait");
    r.recv_overhead = doc.get_i64("recv_overhead");
    r.emulation_overhead = doc.get_i64("emulation_overhead");
    r.tlb_overhead = doc.get_i64("tlb_overhead");
    r.io_overlap = doc.get_i64("io_overlap");
    r.comp_overlap = doc.get_i64("comp_overlap");

    const JsonValue &faults = doc["faults"];
    if (!faults.is_array())
        return false;
    r.faults.reserve(faults.size());
    for (const JsonValue &f : faults.items()) {
        if (!f.is_object())
            return false;
        FaultRecord rec;
        rec.page = f.get_u64("page");
        rec.ref_index = f.get_u64("ref_index");
        rec.at = f.get_i64("at");
        rec.sp_wait = f.get_i64("sp_wait");
        rec.page_wait = f.get_i64("page_wait");
        rec.from_disk = f.get_bool("from_disk");
        r.faults.push_back(rec);
    }

    const JsonValue &clustering = doc["clustering"];
    if (!clustering.is_object() ||
        !clustering["points"].is_array()) {
        return false;
    }
    r.clustering.name = clustering.get_string("name");
    for (const JsonValue &p : clustering["points"].items()) {
        if (!p.is_array() || p.size() != 2)
            return false;
        r.clustering.add(p.items()[0].as_double(),
                         p.items()[1].as_double());
    }

    const JsonValue &bins = doc["distance_bins"];
    if (!bins.is_array())
        return false;
    for (const JsonValue &b : bins.items()) {
        if (!b.is_array() || b.size() != 2)
            return false;
        r.next_subpage_distance.add(b.items()[0].as_i64(),
                                    b.items()[1].as_u64());
    }

    const JsonValue &net = doc["net"];
    if (!net.is_object())
        return false;
    r.net_stats.messages = net.get_u64("messages");
    r.net_stats.bytes = net.get_u64("bytes");
    const JsonValue &mbk = net["messages_by_kind"];
    const JsonValue &bbk = net["bytes_by_kind"];
    if (mbk.size() != kMsgKindCount || bbk.size() != kMsgKindCount)
        return false;
    for (size_t k = 0; k < kMsgKindCount; ++k) {
        r.net_stats.messages_by_kind[k] = mbk.items()[k].as_u64();
        r.net_stats.bytes_by_kind[k] = bbk.items()[k].as_u64();
    }
    r.net_stats.dropped = net.get_u64("dropped");
    r.net_stats.corrupted = net.get_u64("corrupted");
    r.net_stats.duplicated = net.get_u64("duplicated");

    r.tlb_stats.hits = doc["tlb"].get_u64("hits");
    r.tlb_stats.misses = doc["tlb"].get_u64("misses");
    r.global_discards = doc.get_u64("global_discards");

    r.retries = doc.get_u64("retries");
    r.timeouts = doc.get_u64("timeouts");
    r.degraded_fetches = doc.get_u64("degraded_fetches");
    r.duplicate_deliveries = doc.get_u64("duplicate_deliveries");
    r.server_failures = doc.get_u64("server_failures");

    const JsonValue &metrics = doc["metrics"];
    if (!metrics.is_array())
        return false;
    r.metrics.reserve(metrics.size());
    for (const JsonValue &m : metrics.items()) {
        if (!m.is_object())
            return false;
        uint64_t kind = m.get_u64("kind", ~0ull);
        if (kind > static_cast<uint64_t>(
                       obs::MetricKind::Distribution)) {
            return false;
        }
        obs::MetricSample s;
        s.name = m.get_string("name");
        s.kind = static_cast<obs::MetricKind>(kind);
        s.value = m.get_double("value");
        s.count = m.get_u64("count");
        s.mean = m.get_double("mean");
        s.min = m.get_double("min");
        s.max = m.get_double("max");
        r.metrics.push_back(std::move(s));
    }

    r.requester_wire_busy = doc.get_i64("requester_wire_busy");
    r.requester_dma_busy = doc.get_i64("requester_dma_busy");
    r.requester_cpu_busy = doc.get_i64("requester_cpu_busy");

    out = std::move(r);
    return true;
}

} // namespace sgms::exec
