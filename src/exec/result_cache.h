/**
 * @file
 * Content-addressed, on-disk cache of simulation results.
 *
 * Each experiment point is a pure function of its configuration, so
 * its SimResult can be keyed by content: a stable 128-bit FNV-1a
 * hash over a canonical fingerprint of the full SimConfig, the trace
 * identity (app model, scale, seed), and the result-schema version
 * (exec/result_codec.h). Any change to any behavioral field — a
 * different subpage size, another fault-plan seed, a bumped schema —
 * produces a different key, so stale blobs are simply never looked
 * up; there is no invalidation protocol.
 *
 * Blobs live as one JSON file per key under the cache directory
 * (default `.sgms-cache/`). Writes go to a unique temp file in the
 * same directory followed by an atomic rename, so a concurrent or
 * killed run can never leave a half-written blob under a live key;
 * a corrupted or truncated blob fails to decode and reads as a miss.
 *
 * Size-bounded eviction: with a nonzero byte bound the cache keeps a
 * small append-only manifest (`manifest.tsv`: one "hex last-use-ms"
 * line per touch) and runs gc() after every store. gc() takes an
 * exclusive flock on `manifest.lock`, merges the manifest with a
 * directory scan (untracked blobs are adopted at their mtime), then
 * unlinks least-recently-used blobs until the directory is under the
 * bound and rewrites the manifest compacted. Because eviction is
 * unlink(2), a reader that already opened a blob keeps reading it to
 * the end — a blob is never yanked mid-read. Stale temp files older
 * than an hour are swept opportunistically.
 */

#ifndef SGMS_EXEC_RESULT_CACHE_H
#define SGMS_EXEC_RESULT_CACHE_H

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "core/experiment.h"
#include "core/sim_result.h"

namespace sgms::exec
{

/** 128-bit content hash, printable as 32 hex digits. */
struct CacheKey
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    std::string hex() const;

    bool
    operator==(const CacheKey &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
    bool operator!=(const CacheKey &o) const { return !(*this == o); }
};

/**
 * Canonical key=value fingerprint of everything that determines an
 * experiment's result. Exposed for tests and for `--explain-key`
 * style debugging; hash it with cache_key_of().
 */
std::string experiment_fingerprint(const Experiment &ex);

/** The cache key of @p ex (FNV-1a over its fingerprint). */
CacheKey cache_key_of(const Experiment &ex);

/** Hit/miss/store counts; all monotone over the cache's lifetime. */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stores = 0;
    uint64_t decode_failures = 0; ///< corrupted blobs read as misses
    uint64_t evictions = 0;       ///< blobs unlinked by gc()
};

class ResultCache
{
  public:
    /**
     * @param dir blob directory, created lazily on first store.
     * @param max_bytes size bound enforced by gc(); 0 = unbounded
     *        (gc() then only sweeps stale temp files).
     */
    explicit ResultCache(std::string dir, uint64_t max_bytes = 0);

    /**
     * Look up @p key. Missing file, undecodable blob, and I/O errors
     * all return nullopt; decode failures additionally count in
     * stats().decode_failures.
     */
    std::optional<SimResult> load(const CacheKey &key);

    /**
     * Persist @p r under @p key (atomic temp-file + rename). Failures
     * warn and continue: a cache that cannot write only costs speed.
     */
    void store(const CacheKey &key, const SimResult &r);

    /** Path the blob for @p key lives at (whether or not present). */
    std::string blob_path(const CacheKey &key) const;

    /**
     * One eviction pass (see file header): unlink LRU blobs until the
     * directory is under the byte bound, sweep stale temp files, and
     * compact the manifest. Safe to run concurrently with readers and
     * writers in other processes (serialized by flock).
     * @return blobs evicted by this pass.
     */
    uint64_t gc();

    const std::string &dir() const { return dir_; }
    uint64_t max_bytes() const { return max_bytes_; }

    CacheStats stats() const;

  private:
    /** Append a last-use record for @p key to the manifest. */
    void touch(const CacheKey &key);

    std::string dir_;
    uint64_t max_bytes_ = 0;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> stores_{0};
    std::atomic<uint64_t> decode_failures_{0};
    std::atomic<uint64_t> evictions_{0};
    std::atomic<uint64_t> tmp_counter_{0};
};

} // namespace sgms::exec

#endif // SGMS_EXEC_RESULT_CACHE_H
