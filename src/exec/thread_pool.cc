#include "exec/thread_pool.h"

#include "common/logging.h"

namespace sgms::exec
{

ThreadPool::ThreadPool(unsigned workers, size_t queue_capacity)
    : queue_capacity_(queue_capacity)
{
    if (workers == 0)
        fatal("ThreadPool needs at least one worker");
    deques_.resize(workers);
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { worker_main(i); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::enqueue(std::function<void()> fn)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (stopping_)
            panic("ThreadPool::submit after shutdown");
        if (queue_capacity_) {
            space_cv_.wait(lock, [this] {
                return queued_ < queue_capacity_ || stopping_;
            });
            if (stopping_)
                panic("ThreadPool::submit after shutdown");
        }
        deques_[next_deque_].tasks.push_back(std::move(fn));
        next_deque_ = (next_deque_ + 1) % deques_.size();
        ++queued_;
        ++stats_.submitted;
        if (queued_ > stats_.peak_queued)
            stats_.peak_queued = queued_;
    }
    work_cv_.notify_one();
}

bool
ThreadPool::take_task(unsigned index, std::function<void()> &out)
{
    // Caller holds mutex_. Own deque first (front = most recently
    // queued locality), then steal from siblings' backs.
    if (!deques_[index].tasks.empty()) {
        out = std::move(deques_[index].tasks.front());
        deques_[index].tasks.pop_front();
        return true;
    }
    for (size_t k = 1; k < deques_.size(); ++k) {
        unsigned victim =
            static_cast<unsigned>((index + k) % deques_.size());
        if (!deques_[victim].tasks.empty()) {
            out = std::move(deques_[victim].tasks.back());
            deques_[victim].tasks.pop_back();
            ++stats_.stolen;
            return true;
        }
    }
    return false;
}

void
ThreadPool::worker_main(unsigned index)
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [this, index, &task] {
                return take_task(index, task) || stopping_;
            });
            if (!task) {
                // stopping_ and nothing left anywhere: exit.
                return;
            }
            --queued_;
            ++running_;
            // Counted at dispatch, not completion: a submitter that
            // waits on the task's future (fulfilled inside task())
            // must see the counter include it, and the worker only
            // re-acquires the lock after the future resolves.
            ++stats_.executed;
        }
        space_cv_.notify_one();
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --running_;
            if (queued_ == 0 && running_ == 0)
                idle_cv_.notify_all();
        }
    }
}

void
ThreadPool::wait_idle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock,
                  [this] { return queued_ == 0 && running_ == 0; });
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_ && threads_.empty())
            return;
        stopping_ = true;
    }
    // Wake everyone: workers drain the remaining deques (take_task
    // still hands out work while any is queued), then see stopping_.
    work_cv_.notify_all();
    space_cv_.notify_all();
    for (auto &t : threads_) {
        if (t.joinable())
            t.join();
    }
    threads_.clear();
}

PoolStats
ThreadPool::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

unsigned
ThreadPool::hardware_workers()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace sgms::exec
