#include "exec/ipc.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

namespace sgms::exec
{

namespace
{

constexpr uint32_t kMagic = 0x53474d46; // "SGMF"

/** Fixed-size frame header, independent of host struct padding. */
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8;

void
put_u32(unsigned char *p, uint32_t v)
{
    std::memcpy(p, &v, sizeof(v));
}

void
put_u64(unsigned char *p, uint64_t v)
{
    std::memcpy(p, &v, sizeof(v));
}

uint32_t
get_u32(const unsigned char *p)
{
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

uint64_t
get_u64(const unsigned char *p)
{
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

bool
write_all(int fd, const void *buf, size_t len)
{
    const char *p = static_cast<const char *>(buf);
    while (len > 0) {
        ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

/** @return bytes read (== len), 0 on immediate EOF, -1 on error/torn. */
ssize_t
read_all(int fd, void *buf, size_t len)
{
    char *p = static_cast<char *>(buf);
    size_t got = 0;
    while (got < len) {
        ssize_t n = ::read(fd, p + got, len - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (n == 0)
            return got == 0 ? 0 : -1; // mid-buffer EOF = torn
        got += static_cast<size_t>(n);
    }
    return static_cast<ssize_t>(got);
}

} // namespace

bool
write_frame(int fd, const IpcFrame &frame)
{
    unsigned char header[kHeaderBytes];
    put_u32(header, kMagic);
    put_u32(header + 4, static_cast<uint32_t>(frame.type));
    put_u64(header + 8, frame.index);
    put_u64(header + 16, frame.arg);
    put_u64(header + 24, frame.payload.size());
    if (!write_all(fd, header, sizeof(header)))
        return false;
    if (!frame.payload.empty() &&
        !write_all(fd, frame.payload.data(), frame.payload.size())) {
        return false;
    }
    return true;
}

IpcRead
read_frame(int fd, IpcFrame &out)
{
    unsigned char header[kHeaderBytes];
    ssize_t n = read_all(fd, header, sizeof(header));
    if (n == 0)
        return IpcRead::Eof;
    if (n < 0)
        return IpcRead::Error;
    if (get_u32(header) != kMagic)
        return IpcRead::Error;
    uint32_t type = get_u32(header + 4);
    if (type < static_cast<uint32_t>(FrameType::Task) ||
        type > static_cast<uint32_t>(FrameType::Error)) {
        return IpcRead::Error;
    }
    uint64_t len = get_u64(header + 24);
    if (len > kIpcMaxPayload)
        return IpcRead::Error;
    out.type = static_cast<FrameType>(type);
    out.index = get_u64(header + 8);
    out.arg = get_u64(header + 16);
    out.payload.resize(len);
    if (len > 0 && read_all(fd, out.payload.data(), len) !=
                       static_cast<ssize_t>(len)) {
        return IpcRead::Error;
    }
    return IpcRead::Ok;
}

} // namespace sgms::exec
