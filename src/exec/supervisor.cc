#include "exec/supervisor.h"

#include <algorithm>
#include <cstdio>
#include <csignal>
#include <map>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.h"
#include "exec/ipc.h"
#include "exec/result_cache.h"
#include "exec/worker.h"

namespace sgms::exec
{

namespace
{

/**
 * A worker death must surface as an EPIPE write error in the parent,
 * not a fatal SIGPIPE; install SIG_IGN once, leaving any handler the
 * application set alone.
 */
void
ignore_sigpipe_once()
{
    static bool done = [] {
        struct sigaction sa;
        if (sigaction(SIGPIPE, nullptr, &sa) == 0 &&
            sa.sa_handler == SIG_DFL) {
            sa.sa_handler = SIG_IGN;
            sa.sa_flags = 0;
            sigemptyset(&sa.sa_mask);
            sigaction(SIGPIPE, &sa, nullptr);
        }
        return true;
    }();
    (void)done;
}

} // namespace

Supervisor::Supervisor(const std::vector<Experiment> &points,
                       Config cfg)
    : points_(points), cfg_(cfg)
{
    if (cfg_.workers == 0)
        cfg_.workers = 1;
    if (cfg_.max_attempts == 0)
        cfg_.max_attempts = 1;
    ignore_sigpipe_once();
}

Supervisor::~Supervisor()
{
    for (Worker &w : workers_)
        shutdown_worker(w, /*kill_first=*/w.busy);
}

void
Supervisor::spawn(Worker &w)
{
    int task_pipe[2];
    int result_pipe[2];
    if (::pipe(task_pipe) != 0)
        fatal("supervisor: pipe() failed");
    if (::pipe(result_pipe) != 0)
        fatal("supervisor: pipe() failed");

    // The child inherits stdio buffers; flush so nothing the parent
    // printed before the fork is replayed by a worker.
    std::fflush(stdout);
    std::fflush(stderr);

    pid_t pid = ::fork();
    if (pid < 0)
        fatal("supervisor: fork() failed");
    if (pid == 0) {
        // Child: drop every fd belonging to the parent side or to
        // sibling workers, keep only this worker's two pipe ends —
        // a sibling must see EOF when the *parent* closes its task
        // pipe, not wait on a copy held here.
        for (const Worker &other : workers_) {
            if (other.task_fd >= 0)
                ::close(other.task_fd);
            if (other.result_fd >= 0)
                ::close(other.result_fd);
        }
        ::close(task_pipe[1]);
        ::close(result_pipe[0]);
        worker_loop(task_pipe[0], result_pipe[1], points_);
        // worker_loop never returns.
    }

    ::close(task_pipe[0]);
    ::close(result_pipe[1]);
    w.pid = pid;
    w.task_fd = task_pipe[1];
    w.result_fd = result_pipe[0];
    w.busy = false;
}

void
Supervisor::shutdown_worker(Worker &w, bool kill_first)
{
    if (w.pid < 0)
        return;
    if (w.task_fd >= 0) {
        ::close(w.task_fd); // EOF: an idle worker exits on its own
        w.task_fd = -1;
    }
    if (kill_first)
        ::kill(w.pid, SIGKILL);
    int status = 0;
    while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
    }
    if (w.result_fd >= 0) {
        ::close(w.result_fd);
        w.result_fd = -1;
    }
    w.pid = -1;
    w.busy = false;
}

std::vector<Supervisor::Outcome>
Supervisor::run(
    const std::vector<size_t> &indices,
    const std::function<void(const Experiment &)> &on_dispatch)
{
    std::vector<Outcome> outcomes(indices.size());
    if (indices.empty())
        return outcomes;

    // Map a point index back to its outcome slot.
    std::map<size_t, size_t> slot_of;
    for (size_t k = 0; k < indices.size(); ++k) {
        SGMS_ASSERT(indices[k] < points_.size());
        SGMS_ASSERT(slot_of.emplace(indices[k], k).second);
    }

    std::deque<std::pair<size_t, uint64_t>> pending; // (index, attempt)
    for (size_t idx : indices)
        pending.emplace_back(idx, 0);
    size_t remaining = indices.size();

    workers_.resize(std::min<size_t>(cfg_.workers, indices.size()));

    auto finish = [&](size_t index, Outcome o) {
        outcomes[slot_of.at(index)] = std::move(o);
        ++stats_.completed;
        --remaining;
    };

    auto dispatch_to = [&](Worker &w) {
        auto [index, attempt] = pending.front();
        pending.pop_front();
        IpcFrame task;
        task.type = FrameType::Task;
        task.index = index;
        task.arg = attempt;
        task.payload = experiment_fingerprint(points_[index]);
        if (!write_frame(w.task_fd, task)) {
            // The worker died before taking the task (the write end
            // saw EPIPE). Reap it and fork a replacement now — an
            // idle worker's fd is never polled, so leaving the corpse
            // would retry this dead pipe forever. The task goes back;
            // the death does not count against the point's attempts.
            pending.emplace_front(index, attempt);
            ++stats_.crashes;
            shutdown_worker(w, /*kill_first=*/true);
            spawn(w);
            ++stats_.respawns;
            return;
        }
        // Progress only after the task is truly handed off, and only
        // on the first attempt — the write-failure requeue above and
        // crash retries must not double-fire the callback.
        if (attempt == 0 && on_dispatch)
            on_dispatch(points_[index]);
        ++stats_.dispatched;
        w.busy = true;
        w.index = index;
        w.attempt = attempt;
        if (cfg_.point_timeout_ms > 0) {
            w.deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(
                             cfg_.point_timeout_ms);
        }
    };

    // A worker died (either by itself or by our hand) while owning a
    // point; decide retry vs degraded outcome and refill the fleet.
    auto handle_death = [&](Worker &w, bool timed_out) {
        size_t index = w.index;
        uint64_t attempt = w.attempt;
        shutdown_worker(w, /*kill_first=*/true);
        if (timed_out) {
            ++stats_.timeouts;
            Outcome o;
            o.kind = Outcome::Kind::TimedOut;
            finish(index, std::move(o));
        } else {
            ++stats_.crashes;
            if (attempt + 1 < cfg_.max_attempts) {
                pending.emplace_front(index, attempt + 1);
            } else {
                Outcome o;
                o.kind = Outcome::Kind::Crashed;
                finish(index, std::move(o));
            }
        }
        if (!pending.empty()) {
            spawn(w);
            ++stats_.respawns;
        }
    };

    while (remaining > 0) {
        // Keep the fleet full: fork lazily, re-fork after deaths.
        for (Worker &w : workers_) {
            if (pending.empty())
                break;
            if (w.pid < 0)
                spawn(w);
            if (!w.busy)
                dispatch_to(w);
        }

        // Wait for the earliest of: a result, or a watchdog deadline.
        std::vector<struct pollfd> fds;
        std::vector<size_t> fd_worker;
        int timeout_ms = -1;
        auto now = std::chrono::steady_clock::now();
        for (size_t wi = 0; wi < workers_.size(); ++wi) {
            Worker &w = workers_[wi];
            if (!w.busy)
                continue;
            fds.push_back({w.result_fd, POLLIN, 0});
            fd_worker.push_back(wi);
            if (cfg_.point_timeout_ms > 0) {
                auto left =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(w.deadline - now)
                        .count();
                int ms = left <= 0 ? 0
                                   : static_cast<int>(std::min<
                                         long long>(left, 1 << 30));
                if (timeout_ms < 0 || ms < timeout_ms)
                    timeout_ms = ms;
            }
        }
        SGMS_ASSERT(!fds.empty()); // remaining > 0 implies work in flight

        int rc = ::poll(fds.data(), fds.size(), timeout_ms);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            fatal("supervisor: poll() failed");
        }

        for (size_t i = 0; i < fds.size(); ++i) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            Worker &w = workers_[fd_worker[i]];
            if (!w.busy)
                continue; // already handled this round
            IpcFrame frame;
            IpcRead st = read_frame(w.result_fd, frame);
            if (st == IpcRead::Ok &&
                frame.type == FrameType::Result &&
                frame.index == w.index) {
                Outcome o;
                o.kind = Outcome::Kind::Ok;
                o.blob = std::move(frame.payload);
                finish(w.index, std::move(o));
                w.busy = false;
            } else if (st == IpcRead::Ok &&
                       frame.type == FrameType::Error) {
                // Deterministic refusal (fingerprint mismatch): a
                // retry would refuse again.
                warn("exec worker refused point %llu",
                     static_cast<unsigned long long>(frame.index));
                ++stats_.crashes;
                Outcome o;
                o.kind = Outcome::Kind::Crashed;
                finish(w.index, std::move(o));
                w.busy = false;
            } else {
                // EOF, torn frame, or an off-protocol reply: the
                // worker is gone or unusable mid-point.
                handle_death(w, /*timed_out=*/false);
            }
        }

        if (cfg_.point_timeout_ms > 0) {
            now = std::chrono::steady_clock::now();
            for (Worker &w : workers_) {
                if (w.busy && now >= w.deadline)
                    handle_death(w, /*timed_out=*/true);
            }
        }
    }

    return outcomes;
}

} // namespace sgms::exec
