/**
 * @file
 * The forked worker's side of the multi-process execution mode.
 *
 * A worker is forked from the parent *after* the sweep grid was
 * expanded, so it holds the identical point vector by construction.
 * Its loop is deliberately tiny: read a Task frame naming a point
 * index, cross-check the parent's fingerprint against its own view
 * of that point, run the simulation, and reply with the lossless
 * result blob. On EOF (supervisor closed the task pipe) or any pipe
 * error it calls _exit — never exit() — so no inherited destructor
 * (static engines, thread-pool joins) runs in the child.
 *
 * Test hooks (read from the environment at loop start, all unset in
 * normal operation):
 *
 *   SGMS_TEST_WORKER_STALL_MS=N      sleep N ms before every point
 *                                    (drives the watchdog tests)
 *   SGMS_TEST_WORKER_CRASH_INDEX=I   _exit before replying to point
 *                                    I on its FIRST attempt only
 *                                    (drives respawn-and-retry)
 *   SGMS_TEST_WORKER_CRASH_ALWAYS=I  _exit on every attempt of point
 *                                    I (drives the degraded path)
 */

#ifndef SGMS_EXEC_WORKER_H
#define SGMS_EXEC_WORKER_H

#include <vector>

#include "core/experiment.h"

namespace sgms::exec
{

/** Exit status a worker uses for a deliberate test-hook crash. */
inline constexpr int kWorkerTestCrashStatus = 113;

/**
 * Serve tasks from @p task_fd, writing results to @p result_fd,
 * until EOF. Never returns; terminates the process with _exit.
 */
[[noreturn]] void
worker_loop(int task_fd, int result_fd,
            const std::vector<Experiment> &points);

} // namespace sgms::exec

#endif // SGMS_EXEC_WORKER_H
