#include "exec/result_cache.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.h"
#include "exec/result_codec.h"
#include "trace/binfmt.h"

namespace sgms::exec
{

namespace
{

/** Exact textual form of a double for fingerprinting. */
std::string
fp_double(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

class Fingerprint
{
  public:
    void
    add(const char *key, const std::string &value)
    {
        text_ += key;
        text_ += '=';
        text_ += value;
        text_ += '\n';
    }
    void
    add(const char *key, uint64_t value)
    {
        add(key, std::to_string(value));
    }
    void
    add_i(const char *key, int64_t value)
    {
        add(key, std::to_string(value));
    }
    void
    add(const char *key, double value)
    {
        add(key, fp_double(value));
    }
    void
    add(const char *key, bool value)
    {
        add(key, std::string(value ? "1" : "0"));
    }

    std::string take() { return std::move(text_); }

  private:
    std::string text_;
};

uint64_t
fnv1a(const std::string &s, uint64_t basis)
{
    constexpr uint64_t kPrime = 1099511628211ull;
    uint64_t h = basis;
    for (unsigned char c : s) {
        h ^= c;
        h *= kPrime;
    }
    return h;
}

constexpr const char *kManifestName = "manifest.tsv";
constexpr const char *kManifestLock = "manifest.lock";

/** A temp file this old was abandoned by a killed writer. */
constexpr int64_t kStaleTmpSeconds = 3600;

bool
is_hex_key(const std::string &stem)
{
    if (stem.size() != 32)
        return false;
    for (char c : stem) {
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    }
    return true;
}

int64_t
now_ms()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

/** Holds an exclusive flock on the manifest lock file while alive. */
class ManifestLock
{
  public:
    explicit ManifestLock(const std::string &dir)
    {
        std::string path = dir + "/" + kManifestLock;
        fd_ = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
        if (fd_ < 0)
            return;
        while (::flock(fd_, LOCK_EX) != 0) {
            if (errno != EINTR) {
                ::close(fd_);
                fd_ = -1;
                return;
            }
        }
    }
    ~ManifestLock()
    {
        if (fd_ >= 0)
            ::close(fd_); // releases the flock
    }
    bool held() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
};

} // namespace

std::string
CacheKey::hex() const
{
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

std::string
experiment_fingerprint(const Experiment &ex)
{
    // The fully resolved config (policy/subpage/mem_pages filled in)
    // is what the simulator actually sees; hash that, not the spec.
    SimConfig cfg = ex.config();

    Fingerprint fp;
    fp.add("schema", static_cast<uint64_t>(kResultBlobSchema));

    // Trace identity: traces are generated from (app, scale, seed),
    // or replayed from a baked SGMB file (--trace-bin), in which
    // case the file's header (reference count + payload hash,
    // written at bake time) is the content identity — a re-baked or
    // edited file is a different key, a renamed copy is not.
    fp.add("trace.app", ex.app);
    fp.add("trace.scale", ex.scale);
    fp.add("trace.seed", ex.seed);
    fp.add("trace.bin", ex.trace_bin.empty() ? "0" : "1");
    if (!ex.trace_bin.empty()) {
        BinTraceHeader hdr;
        std::string error;
        if (!read_bin_header(ex.trace_bin, hdr, error))
            fatal("--trace-bin file '%s': %s", ex.trace_bin.c_str(),
                  error.c_str());
        fp.add("trace.bin_refs", hdr.ref_count);
        fp.add("trace.bin_hash", hdr.payload_hash);
    }

    fp.add("cfg.page_size", static_cast<uint64_t>(cfg.page_size));
    fp.add("cfg.subpage_size",
           static_cast<uint64_t>(cfg.subpage_size));
    fp.add("cfg.mem_pages", static_cast<uint64_t>(cfg.mem_pages));
    fp.add("cfg.replacement", cfg.replacement);
    fp.add("cfg.policy", cfg.policy);
    fp.add_i("cfg.ns_per_ref", cfg.ns_per_ref);

    fp.add_i("net.fault_handle", cfg.net.fault_handle);
    fp.add("net.request_bytes",
           static_cast<uint64_t>(cfg.net.request_bytes));
    fp.add_i("net.send_cpu_request", cfg.net.send_cpu_request);
    fp.add_i("net.send_cpu_data", cfg.net.send_cpu_data);
    fp.add_i("net.dma_fixed", cfg.net.dma_fixed);
    fp.add_i("net.dma_per_byte", cfg.net.dma_per_byte);
    fp.add_i("net.wire_fixed", cfg.net.wire_fixed);
    fp.add_i("net.wire_per_byte", cfg.net.wire_per_byte);
    fp.add_i("net.request_proc", cfg.net.request_proc);
    fp.add_i("net.recv_fixed", cfg.net.recv_fixed);
    fp.add_i("net.recv_per_byte", cfg.net.recv_per_byte);
    fp.add_i("net.pipelined_recv_fixed",
             cfg.net.pipelined_recv_fixed);
    fp.add_i("net.pipelined_recv_per_byte",
             cfg.net.pipelined_recv_per_byte);
    fp.add("net.priority_scheduling", cfg.net.priority_scheduling);
    fp.add("net.preemptive_demand", cfg.net.preemptive_demand);

    fp.add_i("disk.base", cfg.disk.base);
    fp.add_i("disk.per_byte", cfg.disk.per_byte);

    fp.add("gms.servers", static_cast<uint64_t>(cfg.gms.servers));
    fp.add("gms.warm", cfg.gms.warm);
    fp.add("gms.putpage_traffic", cfg.gms.putpage_traffic);
    fp.add("gms.server_capacity_pages",
           cfg.gms.server_capacity_pages);

    fp.add("load.server_utilization",
           cfg.cluster_load.server_utilization);
    fp.add("load.subpage_bytes",
           static_cast<uint64_t>(cfg.cluster_load.subpage_bytes));
    fp.add("load.page_bytes",
           static_cast<uint64_t>(cfg.cluster_load.page_bytes));
    fp.add("load.seed", cfg.cluster_load.seed);

    fp.add("protection",
           static_cast<uint64_t>(cfg.protection));
    fp.add_i("pal.fast_load", cfg.pal.fast_load);
    fp.add_i("pal.slow_load", cfg.pal.slow_load);
    fp.add_i("pal.fast_store", cfg.pal.fast_store);
    fp.add_i("pal.slow_store", cfg.pal.slow_store);
    fp.add_i("pal.null_pal_call", cfg.pal.null_pal_call);
    fp.add_i("pal.l1_hit", cfg.pal.l1_hit);
    fp.add_i("pal.l2_hit", cfg.pal.l2_hit);
    fp.add_i("pal.l2_miss", cfg.pal.l2_miss);

    fp.add("faults.seed", cfg.faults.seed);
    for (size_t k = 0; k < kMsgKindCount; ++k) {
        std::string base =
            std::string("faults.") + msg_kind_name(
                static_cast<MsgKind>(k));
        fp.add((base + ".loss").c_str(), cfg.faults.loss_prob[k]);
        fp.add((base + ".corrupt").c_str(),
               cfg.faults.corrupt_prob[k]);
    }
    fp.add("faults.duplicate", cfg.faults.duplicate_prob);
    fp.add("faults.outages",
           static_cast<uint64_t>(cfg.faults.outages.size()));
    for (const auto &o : cfg.faults.outages) {
        fp.add("outage.server", static_cast<uint64_t>(o.server));
        fp.add_i("outage.fail_at", o.fail_at);
        fp.add_i("outage.recover_at", o.recover_at);
    }
    fp.add("retry.max_attempts",
           static_cast<uint64_t>(cfg.retry.max_attempts));
    fp.add("retry.timeout_multiplier",
           cfg.retry.timeout_multiplier);
    fp.add_i("retry.min_timeout", cfg.retry.min_timeout);
    fp.add("retry.backoff_base", cfg.retry.backoff_base);
    fp.add("retry.jitter_frac", cfg.retry.jitter_frac);
    fp.add_i("retry.quarantine", cfg.retry.quarantine);

    fp.add("tlb.enabled", cfg.tlb_enabled);
    fp.add("tlb.entries", static_cast<uint64_t>(cfg.tlb_entries));
    fp.add("tlb.assoc", static_cast<uint64_t>(cfg.tlb_assoc));
    fp.add_i("tlb.miss_cost", cfg.tlb_miss_cost);
    fp.add("record_faults", cfg.record_faults);
    // Multi-client keys are appended only when active so every
    // single-client fingerprint (and cached result) from before the
    // multi-client kernel stays valid.
    if (cfg.clients > 1) {
        fp.add("clients", static_cast<uint64_t>(cfg.clients));
        fp.add("metrics_per_client", cfg.metrics_per_client);
    }
    // cfg.timeline / cfg.tracer are pure observers of the run; the
    // engine refuses to serve cached results to traced runs instead
    // of keying on them.
    return fp.take();
}

CacheKey
cache_key_of(const Experiment &ex)
{
    std::string fp = experiment_fingerprint(ex);
    CacheKey key;
    key.hi = fnv1a(fp, 14695981039346656037ull); // standard offset
    key.lo = fnv1a(fp, 0x9ae16a3b2f90404full);   // independent basis
    return key;
}

ResultCache::ResultCache(std::string dir, uint64_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes)
{
    if (dir_.empty())
        fatal("ResultCache needs a directory");
}

std::string
ResultCache::blob_path(const CacheKey &key) const
{
    return dir_ + "/" + key.hex() + ".json";
}

std::optional<SimResult>
ResultCache::load(const CacheKey &key)
{
    std::ifstream in(blob_path(key), std::ios::binary);
    if (!in) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    SimResult r;
    if (!read_result_blob(text.str(), r)) {
        decode_failures_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (max_bytes_ > 0)
        touch(key); // a hit refreshes the blob's LRU position
    return r;
}

void
ResultCache::touch(const CacheKey &key)
{
    // A single short O_APPEND write per touch; concurrent appenders
    // from other processes interleave at line granularity. The
    // manifest is advisory — gc() falls back to mtimes for blobs it
    // has no record of — so a lost line only ages a blob, never
    // corrupts anything.
    std::string path = dir_ + "/" + kManifestName;
    int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND,
                    0644);
    if (fd < 0)
        return;
    std::string line =
        key.hex() + " " + std::to_string(now_ms()) + "\n";
    ssize_t n;
    do {
        n = ::write(fd, line.data(), line.size());
    } while (n < 0 && errno == EINTR);
    ::close(fd);
}

void
ResultCache::store(const CacheKey &key, const SimResult &r)
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        warn("result cache: cannot create %s: %s", dir_.c_str(),
             ec.message().c_str());
        return;
    }
    // Unique temp name per (process, store) so concurrent writers of
    // the same key never collide; last rename wins with equal bytes.
    uint64_t n = tmp_counter_.fetch_add(1, std::memory_order_relaxed);
    std::string tmp = blob_path(key) + ".tmp." +
                      std::to_string(::getpid()) + "." +
                      std::to_string(n);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("result cache: cannot write %s", tmp.c_str());
            return;
        }
        write_result_blob(out, r);
        out.flush();
        if (!out) {
            warn("result cache: short write to %s", tmp.c_str());
            std::remove(tmp.c_str());
            return;
        }
    }
    if (std::rename(tmp.c_str(), blob_path(key).c_str()) != 0) {
        warn("result cache: rename into %s failed",
             blob_path(key).c_str());
        std::remove(tmp.c_str());
        return;
    }
    stores_.fetch_add(1, std::memory_order_relaxed);
    if (max_bytes_ > 0) {
        touch(key);
        // Enforce the bound after every store, so the directory never
        // sits over budget between runs.
        gc();
    }
}

uint64_t
ResultCache::gc()
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(dir_, ec))
        return 0; // nothing cached yet

    ManifestLock lock(dir_);
    if (!lock.held()) {
        warn("result cache: cannot lock %s for gc", dir_.c_str());
        return 0;
    }

    // Last-use times from the manifest; a later line wins, and the
    // line number breaks ties between touches in the same ms.
    struct Use
    {
        int64_t ms = 0;
        uint64_t seq = 0;
    };
    std::map<std::string, Use> uses;
    {
        std::ifstream in(dir_ + "/" + kManifestName);
        std::string hex;
        int64_t ms;
        uint64_t seq = 1; // adopted blobs get seq 0: oldest tiebreak
        while (in >> hex >> ms) {
            if (is_hex_key(hex))
                uses[hex] = Use{ms, seq++};
        }
    }

    struct Blob
    {
        std::string hex;
        uint64_t size = 0;
        Use use;
    };
    std::vector<Blob> blobs;
    uint64_t total = 0;
    const int64_t now_s = now_ms() / 1000;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        std::string name = entry.path().filename().string();
        struct stat st;
        if (::stat(entry.path().c_str(), &st) != 0)
            continue;
        if (name.find(".tmp.") != std::string::npos) {
            if (now_s - static_cast<int64_t>(st.st_mtime) >
                kStaleTmpSeconds) {
                fs::remove(entry.path(), ec);
            }
            continue;
        }
        if (name.size() != 37 || name.substr(32) != ".json" ||
            !is_hex_key(name.substr(0, 32))) {
            continue; // manifest, lock file, strangers
        }
        Blob b;
        b.hex = name.substr(0, 32);
        b.size = static_cast<uint64_t>(st.st_size);
        auto it = uses.find(b.hex);
        if (it != uses.end()) {
            b.use = it->second;
        } else {
            // Adopted: another process (or an unbounded run) wrote it
            // without a manifest record; age it by mtime.
            b.use.ms = static_cast<int64_t>(st.st_mtime) * 1000;
            b.use.seq = 0;
        }
        total += b.size;
        blobs.push_back(std::move(b));
    }

    std::sort(blobs.begin(), blobs.end(),
              [](const Blob &a, const Blob &b) {
                  if (a.use.ms != b.use.ms)
                      return a.use.ms < b.use.ms;
                  return a.use.seq < b.use.seq;
              });

    uint64_t evicted = 0;
    size_t first_kept = 0;
    if (max_bytes_ > 0) {
        while (first_kept < blobs.size() && total > max_bytes_) {
            const Blob &b = blobs[first_kept];
            // unlink(2): a reader holding the blob open keeps its
            // data; only the name goes away.
            if (fs::remove(dir_ + "/" + b.hex + ".json", ec)) {
                total -= b.size;
                ++evicted;
            }
            ++first_kept;
        }
    }
    evictions_.fetch_add(evicted, std::memory_order_relaxed);

    // Compact the manifest to the survivors (atomic replace, still
    // under the lock, so concurrent touch() appends can only be lost
    // for this instant's races — which merely ages those blobs).
    std::string tmp = dir_ + "/" + std::string(kManifestName) +
                      ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::trunc);
        for (size_t i = first_kept; i < blobs.size(); ++i) {
            out << blobs[i].hex << " " << blobs[i].use.ms << "\n";
        }
    }
    std::string manifest = dir_ + "/" + kManifestName;
    if (std::rename(tmp.c_str(), manifest.c_str()) != 0)
        std::remove(tmp.c_str());
    return evicted;
}

CacheStats
ResultCache::stats() const
{
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.stores = stores_.load(std::memory_order_relaxed);
    s.decode_failures =
        decode_failures_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    return s;
}

} // namespace sgms::exec
