#include "exec/worker.h"

#include <cstdlib>
#include <thread>

#include <unistd.h>

#include "exec/ipc.h"
#include "exec/result_cache.h"
#include "exec/result_codec.h"

namespace sgms::exec
{

namespace
{

/** -1 when @p name is unset; else its integer value. */
int64_t
env_index(const char *name)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return -1;
    return std::strtoll(v, nullptr, 10);
}

} // namespace

void
worker_loop(int task_fd, int result_fd,
            const std::vector<Experiment> &points)
{
    const int64_t stall_ms = env_index("SGMS_TEST_WORKER_STALL_MS");
    const int64_t crash_once =
        env_index("SGMS_TEST_WORKER_CRASH_INDEX");
    const int64_t crash_always =
        env_index("SGMS_TEST_WORKER_CRASH_ALWAYS");

    for (;;) {
        IpcFrame task;
        IpcRead st = read_frame(task_fd, task);
        if (st == IpcRead::Eof)
            ::_exit(0); // supervisor closed the pipe: clean shutdown
        if (st != IpcRead::Ok || task.type != FrameType::Task)
            ::_exit(1);

        IpcFrame reply;
        reply.index = task.index;
        reply.arg = task.arg;
        if (task.index >= points.size() ||
            task.payload !=
                experiment_fingerprint(points[task.index])) {
            // Parent and worker disagree about what this point is;
            // refuse rather than return a result for the wrong key.
            reply.type = FrameType::Error;
            if (!write_frame(result_fd, reply))
                ::_exit(1);
            continue;
        }

        if (stall_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(stall_ms));
        }
        if ((crash_once == static_cast<int64_t>(task.index) &&
             task.arg == 0) ||
            crash_always == static_cast<int64_t>(task.index)) {
            ::_exit(kWorkerTestCrashStatus);
        }

        SimResult r = points[task.index].run();
        reply.type = FrameType::Result;
        reply.payload = result_blob(r);
        if (!write_frame(result_fd, reply))
            ::_exit(1); // parent died; nothing left to serve
    }
}

} // namespace sgms::exec
