/**
 * @file
 * Fork-based worker fleet for the execution engine.
 *
 * The Supervisor owns N forked copies of the current process, each
 * running exec::worker_loop over a pair of pipes. The parent ships
 * Task frames (point index + fingerprint) and collects Result frames
 * (lossless SimResult blobs); because every worker was forked after
 * the sweep was expanded, both sides hold the identical point vector
 * and only indices plus fingerprints cross the pipe.
 *
 * Process isolation is what buys failure handling:
 *
 *  - per-point watchdog: with a nonzero wall-clock budget, a point
 *    still running at its deadline gets its worker SIGKILLed; the
 *    point is reported TimedOut (the engine surfaces a degraded
 *    result) and a fresh worker is forked for the remaining work.
 *    A timed-out point is NOT retried — a runaway configuration
 *    would just run away again.
 *  - crash recovery: a worker that exits mid-point (segfault, abort,
 *    _exit) is reaped, a replacement is forked, and the point is
 *    retried once on the assumption the failure was transient; a
 *    second crash on the same point reports it Crashed (degraded).
 *
 * Results land in per-point outcome slots keyed by the serial index,
 * so completion order never affects output order. The supervisor is
 * single-threaded: dispatch, poll(2), watchdog and reaping all run on
 * the calling thread, which also keeps fork() away from any engine
 * worker threads.
 */

#ifndef SGMS_EXEC_SUPERVISOR_H
#define SGMS_EXEC_SUPERVISOR_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include <sys/types.h>

#include "core/experiment.h"

namespace sgms::exec
{

/** Fleet-level counters (monotone over the supervisor lifetime). */
struct SupervisorStats
{
    uint64_t dispatched = 0; ///< task frames sent (includes retries)
    uint64_t completed = 0;  ///< points with a final outcome
    uint64_t timeouts = 0;   ///< workers killed by the watchdog
    uint64_t crashes = 0;    ///< workers that died mid-point
    uint64_t respawns = 0;   ///< replacement workers forked
};

class Supervisor
{
  public:
    struct Config
    {
        /** Fleet size (clamped to the number of points to run). */
        unsigned workers = 2;
        /** Wall-clock budget per point in ms; 0 = no watchdog. */
        uint64_t point_timeout_ms = 0;
        /** Attempts per point before it is reported Crashed. */
        unsigned max_attempts = 2;
    };

    /** Final state of one dispatched point. */
    struct Outcome
    {
        enum class Kind
        {
            Ok,       ///< blob holds the worker's result
            TimedOut, ///< killed by the watchdog
            Crashed,  ///< worker died on every attempt
        };
        Kind kind = Kind::Crashed;
        std::string blob;
    };

    /**
     * @param points the expanded sweep (must outlive the supervisor);
     *               workers are forked lazily by run().
     */
    Supervisor(const std::vector<Experiment> &points, Config cfg);

    /** Kills and reaps any still-live workers. */
    ~Supervisor();

    Supervisor(const Supervisor &) = delete;
    Supervisor &operator=(const Supervisor &) = delete;

    /**
     * Run the points named by @p indices across the fleet; returns
     * one Outcome per entry of @p indices, in the same order.
     * @p on_dispatch (may be null) fires on the calling thread,
     * exactly once per point, when its first attempt is dispatched.
     */
    std::vector<Outcome>
    run(const std::vector<size_t> &indices,
        const std::function<void(const Experiment &)> &on_dispatch);

    const SupervisorStats &stats() const { return stats_; }

  private:
    struct Worker
    {
        pid_t pid = -1;
        int task_fd = -1;   ///< parent writes Task frames here
        int result_fd = -1; ///< parent reads Result frames here
        bool busy = false;
        size_t index = 0;    ///< point being worked on (when busy)
        uint64_t attempt = 0;
        std::chrono::steady_clock::time_point deadline;
    };

    void spawn(Worker &w);
    void shutdown_worker(Worker &w, bool kill_first);

    const std::vector<Experiment> &points_;
    Config cfg_;
    std::vector<Worker> workers_;
    SupervisorStats stats_;
};

} // namespace sgms::exec

#endif // SGMS_EXEC_SUPERVISOR_H
