#include "exec/parallel_runner.h"

#include <algorithm>
#include <future>

#include "common/logging.h"
#include "core/simulator.h"
#include "exec/result_codec.h"
#include "exec/supervisor.h"

namespace sgms::exec
{

namespace
{

bool
has_subpage_dimension(const std::string &policy)
{
    return policy != "fullpage" && policy != "disk";
}

bool
has_observers(const Experiment &ex)
{
    return ex.base.tracer != nullptr || ex.base.timeline != nullptr;
}

/**
 * Stand-in result for a point the fleet could not finish (watchdog
 * kill or repeated crash). Identity fields are filled from the spec
 * alone — no footprint computation, the point may be the very thing
 * that hangs — all measurements stay zero, and an `exec.degraded`
 * counter marks it for downstream consumers. Pure function of the
 * experiment, so reruns stay deterministic.
 */
SimResult
degraded_result(const Experiment &ex)
{
    SimResult r;
    r.app = ex.app;
    r.policy = ex.policy;
    r.page_size = ex.base.page_size;
    r.subpage_size = has_subpage_dimension(ex.policy)
                         ? ex.subpage_size
                         : ex.base.page_size;
    obs::MetricSample degraded;
    degraded.name = "exec.degraded";
    degraded.kind = obs::MetricKind::Counter;
    degraded.value = 1.0;
    r.metrics.push_back(std::move(degraded));
    return r;
}

} // namespace

std::vector<Experiment>
expand_sweep(const SweepSpec &spec)
{
    std::vector<Experiment> points;
    points.reserve(spec.point_count());
    for (const auto &app : spec.apps) {
        for (MemConfig mem : spec.mems) {
            for (const auto &policy : spec.policies) {
                std::vector<uint32_t> sizes =
                    has_subpage_dimension(policy)
                        ? spec.subpage_sizes
                        : std::vector<uint32_t>{spec.base.page_size};
                std::vector<uint32_t> nclients =
                    spec.clients.empty() ? std::vector<uint32_t>{1}
                                         : spec.clients;
                for (uint32_t sp : sizes) {
                    for (uint32_t nc : nclients) {
                        Experiment ex;
                        ex.app = app;
                        ex.scale = spec.scale;
                        ex.seed = spec.seed;
                        ex.policy = policy;
                        ex.subpage_size = sp;
                        ex.mem = mem;
                        ex.clients = nc;
                        ex.trace_bin = spec.trace_bin;
                        ex.base = spec.base;
                        points.push_back(std::move(ex));
                    }
                }
            }
        }
    }
    return points;
}

Engine::Engine(ExecOptions opts) : opts_(opts)
{
    if (opts_.jobs == 0)
        opts_.jobs = 1;
    if (opts_.cache_enabled) {
        cache_ = std::make_unique<ResultCache>(
            opts_.cache_dir, opts_.cache_max_bytes);
    }
    if (opts_.cache_gc) {
        // One-shot eviction pass, honored even when caching is off
        // for this run: `--cache-gc --no-cache` prunes a directory
        // without touching it otherwise.
        if (cache_) {
            cache_->gc();
        } else {
            ResultCache(opts_.cache_dir, opts_.cache_max_bytes).gc();
        }
    }
}

Engine::~Engine() = default;

ThreadPool &
Engine::pool()
{
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!pool_) {
        // Bound the waiting-task backlog to a few rounds per worker:
        // grids can be huge and closures capture whole Experiments.
        pool_ = std::make_unique<ThreadPool>(
            opts_.jobs, static_cast<size_t>(opts_.jobs) * 4);
    }
    return *pool_;
}

SimResult
Engine::execute_point(const Experiment &ex, bool &degraded)
{
    degraded = false;
    if (opts_.point_timeout_ms > 0) {
        Experiment budgeted = ex;
        budgeted.base.wall_budget_ms = opts_.point_timeout_ms;
        try {
            return budgeted.run();
        } catch (const SimTimeoutError &) {
            degraded = true;
            timeouts_.fetch_add(1, std::memory_order_relaxed);
            points_degraded_.fetch_add(1, std::memory_order_relaxed);
            return degraded_result(ex);
        }
    }
    return ex.run();
}

SimResult
Engine::run_point(const Experiment &ex)
{
    if (cache_ && !has_observers(ex)) {
        CacheKey key = cache_key_of(ex);
        if (auto hit = cache_->load(key)) {
            points_cached_.fetch_add(1, std::memory_order_relaxed);
            return std::move(*hit);
        }
        bool degraded = false;
        SimResult r = execute_point(ex, degraded);
        if (!degraded) {
            cache_->store(key, r);
            points_run_.fetch_add(1, std::memory_order_relaxed);
        }
        return r;
    }
    bool degraded = false;
    SimResult r = execute_point(ex, degraded);
    if (!degraded)
        points_run_.fetch_add(1, std::memory_order_relaxed);
    return r;
}

SimResult
Engine::run(const Experiment &ex)
{
    return run_point(ex);
}

std::vector<SimResult>
Engine::run_all_processes(const std::vector<Experiment> &points,
                          const Progress &progress)
{
    std::vector<SimResult> out(points.size());

    // The parent keeps its historical duties: cache consultation and
    // observer points (whose side effects would be lost in a child)
    // stay on the calling thread; only plain simulation work is
    // shipped to the fleet.
    std::vector<size_t> todo;
    todo.reserve(points.size());
    std::vector<CacheKey> keys(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
        const Experiment &ex = points[i];
        if (cache_ && !has_observers(ex)) {
            keys[i] = cache_key_of(ex);
            if (auto hit = cache_->load(keys[i])) {
                if (progress)
                    progress(ex);
                out[i] = std::move(*hit);
                points_cached_.fetch_add(
                    1, std::memory_order_relaxed);
                continue;
            }
        }
        if (has_observers(ex)) {
            if (progress)
                progress(ex);
            out[i] = ex.run();
            points_run_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        todo.push_back(i);
    }

    if (!todo.empty()) {
        Supervisor::Config cfg;
        cfg.workers = static_cast<unsigned>(
            std::min<size_t>(opts_.workers, todo.size()));
        cfg.point_timeout_ms = opts_.point_timeout_ms;
        Supervisor sup(points, cfg);
        std::vector<Supervisor::Outcome> outcomes =
            sup.run(todo, progress);

        for (size_t k = 0; k < todo.size(); ++k) {
            size_t i = todo[k];
            Supervisor::Outcome &o = outcomes[k];
            if (o.kind == Supervisor::Outcome::Kind::Ok) {
                SimResult r;
                if (read_result_blob(o.blob, r)) {
                    if (cache_ && !has_observers(points[i]))
                        cache_->store(keys[i], r);
                    out[i] = std::move(r);
                    points_run_.fetch_add(
                        1, std::memory_order_relaxed);
                    continue;
                }
                warn("exec: undecodable worker blob for point %zu",
                     i);
            }
            out[i] = degraded_result(points[i]);
            points_degraded_.fetch_add(1,
                                       std::memory_order_relaxed);
        }

        const SupervisorStats &ss = sup.stats();
        timeouts_.fetch_add(ss.timeouts, std::memory_order_relaxed);
        worker_crashes_.fetch_add(ss.crashes,
                                  std::memory_order_relaxed);
        worker_respawns_.fetch_add(ss.respawns,
                                   std::memory_order_relaxed);
    }
    return out;
}

std::vector<SimResult>
Engine::run_all(const std::vector<Experiment> &points,
                const Progress &progress)
{
    if (opts_.workers >= 1 && points.size() > 1)
        return run_all_processes(points, progress);

    std::vector<SimResult> out(points.size());

    if (opts_.jobs <= 1 || points.size() <= 1) {
        // Serial fast path: historical semantics, caller's thread.
        for (size_t i = 0; i < points.size(); ++i) {
            if (progress)
                progress(points[i]);
            out[i] = run_point(points[i]);
        }
        return out;
    }

    // Parallel: each task computes into its serial slot, so waiting
    // on the futures in any order yields the deterministic merge.
    std::atomic<uint64_t> progress_calls{0};
    std::vector<std::future<void>> done;
    done.reserve(points.size());
    ThreadPool &tp = pool();
    for (size_t i = 0; i < points.size(); ++i) {
        const Experiment &ex = points[i];
        SimResult *slot = &out[i];
        done.push_back(tp.submit([this, &ex, slot, &progress,
                                  &progress_calls] {
            if (progress) {
                progress(ex); // worker thread; see header contract
                progress_calls.fetch_add(1,
                                         std::memory_order_relaxed);
            }
            *slot = run_point(ex);
        }));
    }
    for (auto &f : done)
        f.get();
    // One callback per point, no more, no fewer — catches progress
    // wrappers that swallow or double-fire under concurrency.
    SGMS_ASSERT(!progress ||
                progress_calls.load() == points.size());
    return out;
}

std::vector<SimResult>
Engine::run_sweep(const SweepSpec &spec, const Progress &progress)
{
    return run_all(expand_sweep(spec), progress);
}

ExecStats
Engine::stats() const
{
    ExecStats s;
    s.points_run = points_run_.load(std::memory_order_relaxed);
    s.points_cached = points_cached_.load(std::memory_order_relaxed);
    s.points_degraded =
        points_degraded_.load(std::memory_order_relaxed);
    s.points_total =
        s.points_run + s.points_cached + s.points_degraded;
    s.timeouts = timeouts_.load(std::memory_order_relaxed);
    s.worker_crashes =
        worker_crashes_.load(std::memory_order_relaxed);
    s.worker_respawns =
        worker_respawns_.load(std::memory_order_relaxed);
    s.proc_workers = opts_.workers;
    {
        std::lock_guard<std::mutex> lock(pool_mutex_);
        if (pool_) {
            s.pool = pool_->stats();
            s.workers = pool_->worker_count();
        }
    }
    if (cache_)
        s.cache = cache_->stats();
    return s;
}

std::vector<obs::MetricSample>
Engine::metrics_snapshot() const
{
    ExecStats s = stats();
    obs::MetricsRegistry reg;
    reg.counter("exec.points_run").inc(s.points_run);
    reg.counter("exec.points_cached").inc(s.points_cached);
    reg.counter("exec.cache_stores").inc(s.cache.stores);
    reg.counter("exec.cache_decode_failures")
        .inc(s.cache.decode_failures);
    reg.counter("exec.cache_evictions").inc(s.cache.evictions);
    reg.counter("exec.points_degraded").inc(s.points_degraded);
    reg.counter("exec.timeouts").inc(s.timeouts);
    reg.counter("exec.worker_crashes").inc(s.worker_crashes);
    reg.counter("exec.worker_respawns").inc(s.worker_respawns);
    reg.counter("exec.tasks_stolen").inc(s.pool.stolen);
    reg.gauge("exec.pool_workers").set(s.workers);
    reg.gauge("exec.proc_workers").set(s.proc_workers);
    reg.gauge("exec.queue_peak")
        .set(static_cast<double>(s.pool.peak_queued));
    return reg.snapshot();
}

Engine &
Engine::shared()
{
    static Engine engine(ExecOptions::from_env());
    return engine;
}

} // namespace sgms::exec
