#include "exec/parallel_runner.h"

#include <future>

#include "common/logging.h"

namespace sgms::exec
{

namespace
{

bool
has_subpage_dimension(const std::string &policy)
{
    return policy != "fullpage" && policy != "disk";
}

bool
has_observers(const Experiment &ex)
{
    return ex.base.tracer != nullptr || ex.base.timeline != nullptr;
}

} // namespace

std::vector<Experiment>
expand_sweep(const SweepSpec &spec)
{
    std::vector<Experiment> points;
    points.reserve(spec.point_count());
    for (const auto &app : spec.apps) {
        for (MemConfig mem : spec.mems) {
            for (const auto &policy : spec.policies) {
                std::vector<uint32_t> sizes =
                    has_subpage_dimension(policy)
                        ? spec.subpage_sizes
                        : std::vector<uint32_t>{spec.base.page_size};
                for (uint32_t sp : sizes) {
                    Experiment ex;
                    ex.app = app;
                    ex.scale = spec.scale;
                    ex.seed = spec.seed;
                    ex.policy = policy;
                    ex.subpage_size = sp;
                    ex.mem = mem;
                    ex.base = spec.base;
                    points.push_back(std::move(ex));
                }
            }
        }
    }
    return points;
}

Engine::Engine(ExecOptions opts) : opts_(opts)
{
    if (opts_.jobs == 0)
        opts_.jobs = 1;
    if (opts_.cache_enabled)
        cache_ = std::make_unique<ResultCache>(opts_.cache_dir);
}

Engine::~Engine() = default;

ThreadPool &
Engine::pool()
{
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!pool_) {
        // Bound the waiting-task backlog to a few rounds per worker:
        // grids can be huge and closures capture whole Experiments.
        pool_ = std::make_unique<ThreadPool>(
            opts_.jobs, static_cast<size_t>(opts_.jobs) * 4);
    }
    return *pool_;
}

SimResult
Engine::run_point(const Experiment &ex)
{
    if (cache_ && !has_observers(ex)) {
        CacheKey key = cache_key_of(ex);
        if (auto hit = cache_->load(key)) {
            points_cached_.fetch_add(1, std::memory_order_relaxed);
            return std::move(*hit);
        }
        SimResult r = ex.run();
        cache_->store(key, r);
        points_run_.fetch_add(1, std::memory_order_relaxed);
        return r;
    }
    SimResult r = ex.run();
    points_run_.fetch_add(1, std::memory_order_relaxed);
    return r;
}

SimResult
Engine::run(const Experiment &ex)
{
    return run_point(ex);
}

std::vector<SimResult>
Engine::run_all(const std::vector<Experiment> &points,
                const Progress &progress)
{
    std::vector<SimResult> out(points.size());

    if (opts_.jobs <= 1 || points.size() <= 1) {
        // Serial fast path: historical semantics, caller's thread.
        for (size_t i = 0; i < points.size(); ++i) {
            if (progress)
                progress(points[i]);
            out[i] = run_point(points[i]);
        }
        return out;
    }

    // Parallel: each task computes into its serial slot, so waiting
    // on the futures in any order yields the deterministic merge.
    std::atomic<uint64_t> progress_calls{0};
    std::vector<std::future<void>> done;
    done.reserve(points.size());
    ThreadPool &tp = pool();
    for (size_t i = 0; i < points.size(); ++i) {
        const Experiment &ex = points[i];
        SimResult *slot = &out[i];
        done.push_back(tp.submit([this, &ex, slot, &progress,
                                  &progress_calls] {
            if (progress) {
                progress(ex); // worker thread; see header contract
                progress_calls.fetch_add(1,
                                         std::memory_order_relaxed);
            }
            *slot = run_point(ex);
        }));
    }
    for (auto &f : done)
        f.get();
    // One callback per point, no more, no fewer — catches progress
    // wrappers that swallow or double-fire under concurrency.
    SGMS_ASSERT(!progress ||
                progress_calls.load() == points.size());
    return out;
}

std::vector<SimResult>
Engine::run_sweep(const SweepSpec &spec, const Progress &progress)
{
    return run_all(expand_sweep(spec), progress);
}

ExecStats
Engine::stats() const
{
    ExecStats s;
    s.points_run = points_run_.load(std::memory_order_relaxed);
    s.points_cached = points_cached_.load(std::memory_order_relaxed);
    s.points_total = s.points_run + s.points_cached;
    {
        std::lock_guard<std::mutex> lock(pool_mutex_);
        if (pool_) {
            s.pool = pool_->stats();
            s.workers = pool_->worker_count();
        }
    }
    if (cache_)
        s.cache = cache_->stats();
    return s;
}

std::vector<obs::MetricSample>
Engine::metrics_snapshot() const
{
    ExecStats s = stats();
    obs::MetricsRegistry reg;
    reg.counter("exec.points_run").inc(s.points_run);
    reg.counter("exec.points_cached").inc(s.points_cached);
    reg.counter("exec.cache_stores").inc(s.cache.stores);
    reg.counter("exec.cache_decode_failures")
        .inc(s.cache.decode_failures);
    reg.counter("exec.tasks_stolen").inc(s.pool.stolen);
    reg.gauge("exec.pool_workers").set(s.workers);
    reg.gauge("exec.queue_peak")
        .set(static_cast<double>(s.pool.peak_queued));
    return reg.snapshot();
}

Engine &
Engine::shared()
{
    static Engine engine(ExecOptions::from_env());
    return engine;
}

} // namespace sgms::exec
