/**
 * @file
 * Parallel experiment engine: shard a grid of independent simulation
 * points across a work-stealing pool, merge results back into exact
 * serial order, and serve repeated points from the result cache.
 *
 * Every point is a pure function of its Experiment, so the engine
 * can schedule them in any order and still return a result vector
 * byte-identical to the historical serial `run_sweep` — results are
 * written into their precomputed slot (the serial index), which *is*
 * the deterministic merge; there is no reduction step to get wrong.
 *
 * Progress-callback contract: with jobs == 1 the callback fires on
 * the calling thread, in serial order, before each point — exactly
 * the historical behavior. With jobs > 1 it fires on WORKER threads,
 * concurrently and in completion order; callbacks must be
 * thread-safe (take a lock around printing, use atomics for
 * counting). The engine asserts that exactly one callback fired per
 * point. Cached points still get a callback: progress reports
 * points *delivered*, not simulations executed.
 *
 * Cache interaction: a point whose config carries run observers
 * (cfg.tracer / cfg.timeline) is never served from — or stored to —
 * the cache, since a cached result cannot replay their side effects.
 *
 * Multi-process mode: with opts.workers >= 1 the grid is sharded
 * across a fleet of forked worker processes instead of pool threads
 * (exec/supervisor.h). The parent still owns the serial point order,
 * consults the cache, and runs observer points inline; everything
 * else crosses a pipe as (index, fingerprint) and comes back as a
 * lossless result blob into its precomputed slot — output stays
 * byte-identical to serial at any worker count. Process isolation
 * additionally buys a per-point wall-clock watchdog and crash
 * recovery; a point that times out or crashes repeatedly yields a
 * *degraded* result: identity fields filled, everything else zero,
 * and an `exec.degraded` counter in its metrics. Progress fires on
 * the calling thread in this mode, exactly once per point.
 */

#ifndef SGMS_EXEC_PARALLEL_RUNNER_H
#define SGMS_EXEC_PARALLEL_RUNNER_H

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/sweep.h"
#include "exec/exec_options.h"
#include "exec/result_cache.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"

namespace sgms::exec
{

/**
 * Expand @p spec into its experiment points in the canonical serial
 * order (app-major, then mem, then policy, then subpage size) that
 * run_sweep has always used. Policies without a subpage dimension
 * ("fullpage", "disk") expand once per (app, mem).
 */
std::vector<Experiment> expand_sweep(const SweepSpec &spec);

/** Aggregate engine counters (monotone over the engine lifetime). */
struct ExecStats
{
    uint64_t points_total = 0;  ///< points delivered (run + cached)
    uint64_t points_run = 0;    ///< simulated for real
    uint64_t points_cached = 0; ///< served from the result cache
    unsigned workers = 0;       ///< pool size (0: never went parallel)
    PoolStats pool;             ///< zero until a parallel run happens
    CacheStats cache;           ///< zero when the cache is disabled

    // Multi-process mode (all zero when opts.workers == 0).
    uint64_t points_degraded = 0; ///< timed out or crashed points
    uint64_t timeouts = 0;        ///< workers killed by the watchdog
    uint64_t worker_crashes = 0;  ///< workers that died mid-point
    uint64_t worker_respawns = 0; ///< replacement workers forked
    unsigned proc_workers = 0;    ///< configured process-fleet size
};

class Engine
{
  public:
    using Progress = std::function<void(const Experiment &)>;

    explicit Engine(ExecOptions opts = ExecOptions{});
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Run (or fetch) a single point. */
    SimResult run(const Experiment &ex);

    /**
     * Run every point, returning results in input order. See the
     * file header for the progress contract.
     */
    std::vector<SimResult>
    run_all(const std::vector<Experiment> &points,
            const Progress &progress = nullptr);

    /** expand_sweep + run_all. */
    std::vector<SimResult>
    run_sweep(const SweepSpec &spec,
              const Progress &progress = nullptr);

    const ExecOptions &options() const { return opts_; }

    ExecStats stats() const;

    /**
     * exec.* counters as a metrics snapshot (obs/metrics.h):
     * exec.points_run, exec.points_cached, exec.cache_stores,
     * exec.cache_decode_failures, exec.cache_evictions,
     * exec.points_degraded, exec.timeouts, exec.worker_crashes,
     * exec.worker_respawns, exec.tasks_stolen, exec.pool_workers,
     * exec.proc_workers, exec.queue_peak.
     */
    std::vector<obs::MetricSample> metrics_snapshot() const;

    /**
     * Process-wide engine configured from the environment (SGMS_JOBS,
     * SGMS_WORKERS, SGMS_POINT_TIMEOUT_MS, SGMS_CACHE, SGMS_CACHE_DIR,
     * SGMS_CACHE_MAX_MB) at first use; what the benches' run_labeled
     * routes through.
     */
    static Engine &shared();

  private:
    SimResult run_point(const Experiment &ex);
    /**
     * Simulate @p ex, applying the cooperative wall budget when
     * opts_.point_timeout_ms is set (serial and thread-pool modes;
     * the process fleet has its own SIGKILL watchdog). On budget
     * exhaustion @p degraded is set and the deterministic degraded
     * result shape — the same one the supervisor path produces — is
     * returned; degraded results are never cached.
     */
    SimResult execute_point(const Experiment &ex, bool &degraded);
    std::vector<SimResult>
    run_all_processes(const std::vector<Experiment> &points,
                      const Progress &progress);
    ThreadPool &pool();

    ExecOptions opts_;
    std::unique_ptr<ResultCache> cache_;
    mutable std::mutex pool_mutex_; ///< guards lazy pool_ creation
    std::unique_ptr<ThreadPool> pool_;
    std::atomic<uint64_t> points_run_{0};
    std::atomic<uint64_t> points_cached_{0};
    std::atomic<uint64_t> points_degraded_{0};
    std::atomic<uint64_t> timeouts_{0};
    std::atomic<uint64_t> worker_crashes_{0};
    std::atomic<uint64_t> worker_respawns_{0};
};

} // namespace sgms::exec

#endif // SGMS_EXEC_PARALLEL_RUNNER_H
