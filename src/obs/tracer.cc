#include "obs/tracer.h"

#include <algorithm>

#include "common/logging.h"

namespace sgms::obs
{

const char *
span_category_name(SpanCategory c)
{
    switch (c) {
      case SpanCategory::Fault:
        return "fault";
      case SpanCategory::PageWait:
        return "page_wait";
      case SpanCategory::Block:
        return "block";
      case SpanCategory::Net:
        return "net";
      case SpanCategory::Gms:
        return "gms";
      case SpanCategory::Policy:
        return "policy";
    }
    return "?";
}

Tracer::Tracer(size_t capacity)
{
    if (capacity == 0)
        fatal("tracer: capacity must be >= 1");
    ring_.resize(capacity);
}

std::vector<Span>
Tracer::spans() const
{
    std::vector<Span> out;
    out.reserve(size_);
    // Oldest first: when the ring has wrapped, the oldest entry is
    // at next_ (the slot about to be overwritten).
    size_t begin = size_ < ring_.size() ? 0 : next_;
    for (size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(begin + i) % ring_.size()]);
    return out;
}

void
Tracer::clear()
{
    next_ = 0;
    size_ = 0;
    dropped_ = 0;
    std::fill(std::begin(count_by_cat_), std::end(count_by_cat_), 0);
}

} // namespace sgms::obs
