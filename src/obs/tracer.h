/**
 * @file
 * Low-overhead span tracing in simulated time.
 *
 * The Tracer records typed spans — fault lifetimes, per-message
 * network stage occupancies, GMS putpage/eviction activity, and
 * program block intervals — into a bounded ring buffer. Spans carry
 * simulated (not wall-clock) timestamps, so an exported trace is the
 * run's Figure-2 timeline at full resolution.
 *
 * Cost model: every instrumentation site goes through the
 * SGMS_TRACE_* macros, which compile to nothing when SGMS_OBS_TRACING
 * is 0 (CMake option SGMS_ENABLE_TRACING=OFF) and to a single null
 * pointer test when tracing is compiled in but no Tracer is attached.
 *
 * Exports: Chrome trace_event JSON (chrome://tracing, Perfetto) and a
 * human-readable per-fault timeline dump (obs/chrome_trace.h).
 */

#ifndef SGMS_OBS_TRACER_H
#define SGMS_OBS_TRACER_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sgms::obs
{

/** What a span describes; one Chrome trace category per value. */
enum class SpanCategory : uint8_t
{
    Fault,    ///< demand-fetch stall of one page/subpage fault
    PageWait, ///< later stall on a page's in-flight background data
    Block,    ///< any interval the traced program was blocked
    Net,      ///< one message's occupancy of one pipeline stage
    Gms,      ///< global-memory activity (putpage, discard, eviction)
    Policy,   ///< fetch-plan construction (instant)
};

constexpr size_t SPAN_CATEGORIES = 6;

const char *span_category_name(SpanCategory c);

/** One recorded span; `end == start` marks an instant event. */
struct Span
{
    /** Static event name (never freed; pass string literals). */
    const char *name = "";
    /** Static track (timeline row) name. */
    const char *track = "";
    Tick start = 0;
    Tick end = 0;
    /** Correlating id: fault id for fault spans, msg id for net. */
    uint64_t id = 0;
    /** Category-specific arguments (page id, bytes, ...). */
    int64_t arg0 = 0;
    int64_t arg1 = 0;
    SpanCategory cat = SpanCategory::Fault;

    Tick duration() const { return end - start; }
    bool instant() const { return end == start; }
};

/** Bounded recorder of spans; oldest are dropped when full. */
class Tracer
{
  public:
    static constexpr size_t DEFAULT_CAPACITY = 1 << 20;

    /** @param capacity ring size in spans (>= 1). */
    explicit Tracer(size_t capacity = DEFAULT_CAPACITY);

    void
    record(SpanCategory cat, const char *name, const char *track,
           Tick start, Tick end, uint64_t id = 0, int64_t arg0 = 0,
           int64_t arg1 = 0)
    {
        Span &s = ring_[next_];
        s.cat = cat;
        s.name = name;
        s.track = track;
        s.start = start;
        s.end = end;
        s.id = id;
        s.arg0 = arg0;
        s.arg1 = arg1;
        ++count_by_cat_[static_cast<size_t>(cat)];
        next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
        if (size_ < ring_.size())
            ++size_;
        else
            ++dropped_;
    }

    /** Instant-event shorthand. */
    void
    instant(SpanCategory cat, const char *name, const char *track,
            Tick at, uint64_t id = 0, int64_t arg0 = 0,
            int64_t arg1 = 0)
    {
        record(cat, name, track, at, at, id, arg0, arg1);
    }

    /** Retained spans, oldest first (start order within a track). */
    std::vector<Span> spans() const;

    /** Spans currently retained. */
    size_t size() const { return size_; }

    size_t capacity() const { return ring_.size(); }

    /** Spans lost to ring overflow since the last clear(). */
    uint64_t dropped() const { return dropped_; }

    /** Spans ever recorded in @p cat (including dropped ones). */
    uint64_t
    recorded(SpanCategory cat) const
    {
        return count_by_cat_[static_cast<size_t>(cat)];
    }

    void clear();

  private:
    std::vector<Span> ring_;
    size_t next_ = 0;
    size_t size_ = 0;
    uint64_t dropped_ = 0;
    uint64_t count_by_cat_[SPAN_CATEGORIES] = {};
};

} // namespace sgms::obs

/**
 * Instrumentation macros. `tr` is an `obs::Tracer *` (may be null).
 * With SGMS_OBS_TRACING defined to 0 the calls vanish entirely, so a
 * tracing-disabled build pays nothing — not even the null test.
 */
#ifndef SGMS_OBS_TRACING
#define SGMS_OBS_TRACING 1
#endif

#if SGMS_OBS_TRACING
#define SGMS_TRACE_SPAN(tr, cat, name, track, start, end, ...)          \
    do {                                                                \
        if (tr) {                                                       \
            (tr)->record(::sgms::obs::SpanCategory::cat, name, track,   \
                         start, end, ##__VA_ARGS__);                    \
        }                                                               \
    } while (0)
#define SGMS_TRACE_INSTANT(tr, cat, name, track, at, ...)               \
    do {                                                                \
        if (tr) {                                                       \
            (tr)->instant(::sgms::obs::SpanCategory::cat, name, track,  \
                          at, ##__VA_ARGS__);                           \
        }                                                               \
    } while (0)
#else
#define SGMS_TRACE_SPAN(tr, cat, name, track, start, end, ...) ((void)0)
#define SGMS_TRACE_INSTANT(tr, cat, name, track, at, ...) ((void)0)
#endif

#endif // SGMS_OBS_TRACER_H
