#include "obs/debug.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <mutex>

#include "common/logging.h"

namespace sgms::obs
{

namespace
{
uint32_t enabled_mask = 0;

bool
iequals(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}
} // namespace

const std::vector<std::pair<std::string, DebugFlag>> &
debug_flag_table()
{
    static const std::vector<std::pair<std::string, DebugFlag>> table = {
        {"Net", DebugFlag::Net},       {"Gms", DebugFlag::Gms},
        {"Policy", DebugFlag::Policy}, {"Tlb", DebugFlag::Tlb},
        {"Sim", DebugFlag::Sim},       {"Mem", DebugFlag::Mem},
    };
    return table;
}

uint32_t
set_debug_flags(uint32_t mask)
{
    uint32_t prev = enabled_mask;
    enabled_mask = mask;
    return prev;
}

uint32_t
debug_flags()
{
    return enabled_mask;
}

uint32_t
parse_debug_flags(const std::string &list)
{
    uint32_t mask = 0;
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string name = list.substr(pos, comma - pos);
        pos = comma + 1;
        while (!name.empty() &&
               std::isspace(static_cast<unsigned char>(name.front())))
            name.erase(name.begin());
        while (!name.empty() &&
               std::isspace(static_cast<unsigned char>(name.back())))
            name.pop_back();
        if (name.empty())
            continue;
        if (iequals(name, "all")) {
            for (const auto &[_, flag] : debug_flag_table())
                mask |= static_cast<uint32_t>(flag);
            continue;
        }
        bool found = false;
        for (const auto &[known, flag] : debug_flag_table()) {
            if (iequals(name, known)) {
                mask |= static_cast<uint32_t>(flag);
                found = true;
                break;
            }
        }
        if (!found) {
            std::string known;
            for (const auto &[n, _] : debug_flag_table())
                known += known.empty() ? n : "," + n;
            fatal("unknown debug flag '%s' (known: %s,all)",
                  name.c_str(), known.c_str());
        }
    }
    return mask;
}

void
debug_printf(const char *flag_name, const char *fmt, ...)
{
    std::lock_guard<std::mutex> lock(log_mutex());
    std::fprintf(stderr, "%s: ", flag_name);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
}

} // namespace sgms::obs
