/**
 * @file
 * gem5-style per-module debug logging.
 *
 * Modules print through SGMS_DPRINTF(Flag, fmt, ...); output appears
 * only when the flag is enabled, via set_debug_flags() /
 * parse_debug_flags("Net,Gms") (wired to --debug-flags and the
 * SGMS_DEBUG environment variable by obs::ObsSession). Lines are
 * prefixed with the flag name and serialized with the logging lock,
 * so interleaved module output stays line-atomic.
 */

#ifndef SGMS_OBS_DEBUG_H
#define SGMS_OBS_DEBUG_H

#include <cstdint>
#include <string>
#include <vector>

namespace sgms::obs
{

/** One bit per instrumented module. */
enum class DebugFlag : uint32_t
{
    Net = 1u << 0,    ///< network stages, message injection
    Gms = 1u << 1,    ///< global memory: putpage, discard
    Policy = 1u << 2, ///< fetch-plan construction
    Tlb = 1u << 3,    ///< TLB and PALcode emulation
    Sim = 1u << 4,    ///< simulator core: faults, evictions, waits
    Mem = 1u << 5,    ///< page table and replacement
};

/** Every known flag, for parsing and help text. */
const std::vector<std::pair<std::string, DebugFlag>> &debug_flag_table();

/** Replace the enabled-flag mask; returns the previous mask. */
uint32_t set_debug_flags(uint32_t mask);

/** Currently enabled mask. */
uint32_t debug_flags();

/**
 * Parse a comma-separated flag list ("Net,Gms", case-insensitive;
 * "all" enables everything). fatal() on an unknown name.
 */
uint32_t parse_debug_flags(const std::string &list);

inline bool
debug_enabled(DebugFlag f)
{
    return debug_flags() & static_cast<uint32_t>(f);
}

/** Implementation of SGMS_DPRINTF; do not call directly. */
void debug_printf(const char *flag_name, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace sgms::obs

/**
 * Print when debug flag @p flag is enabled. The flag test is inline
 * and the mask is a plain word, so a disabled flag costs one load
 * and branch.
 */
#define SGMS_DPRINTF(flag, ...)                                         \
    do {                                                                \
        if (::sgms::obs::debug_enabled(::sgms::obs::DebugFlag::flag))   \
            ::sgms::obs::debug_printf(#flag, __VA_ARGS__);              \
    } while (0)

#endif // SGMS_OBS_DEBUG_H
