/**
 * @file
 * Named metrics registry: counters, gauges, and distributions.
 *
 * Components register metrics by name at construction time
 * (convention: "<module>.<name>", e.g. "net.wire_busy",
 * "gms.putpages", "policy.followon_segments") and update them through
 * the returned references, which stay valid for the registry's
 * lifetime. At the end of a run the registry is snapshotted into
 * SimResult::metrics, printed as a table, or emitted as JSON —
 * replacing ad-hoc per-subsystem counter plumbing.
 */

#ifndef SGMS_OBS_METRICS_H
#define SGMS_OBS_METRICS_H

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.h"

namespace sgms::obs
{

/** Monotonically increasing event count. */
class Counter
{
  public:
    void inc(uint64_t n = 1) { value_ += n; }
    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/** Last-value metric (occupancy, utilization, sizes). */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Sampled distribution (wraps the Welford Accumulator). */
class Distribution
{
  public:
    void add(double x) { acc_.add(x); }
    const Accumulator &stats() const { return acc_; }
    void reset() { acc_ = Accumulator(); }

  private:
    Accumulator acc_;
};

/** What kind of metric a snapshot entry came from. */
enum class MetricKind : uint8_t
{
    Counter,
    Gauge,
    Distribution,
};

const char *metric_kind_name(MetricKind k);

/** One metric's value, decoupled from the live registry. */
struct MetricSample
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    /** Counter count, gauge value, or distribution sum. */
    double value = 0.0;
    // Distribution-only fields (zero otherwise).
    uint64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/**
 * Owner of named metrics. Registration is find-or-create, so two
 * components may share a metric; re-registering a name as a
 * different kind is a fatal error (it would silently split data).
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Distribution &distribution(const std::string &name);

    size_t size() const { return metrics_.size(); }

    /** All metrics, name-sorted, as detached samples. */
    std::vector<MetricSample> snapshot() const;

    /** Human-readable table of every metric. */
    void print(std::ostream &os) const;

    void clear() { metrics_.clear(); }

  private:
    struct Entry
    {
        MetricKind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Distribution> dist;
    };

    Entry &find_or_create(const std::string &name, MetricKind kind);

    std::map<std::string, Entry> metrics_;
};

/**
 * Emit samples as a JSON object: counters and gauges as numbers,
 * distributions as {count,sum,mean,min,max} objects.
 */
void write_metrics_json(std::ostream &os,
                        const std::vector<MetricSample> &samples);

/** Print samples as the same table MetricsRegistry::print uses. */
void print_metrics(std::ostream &os,
                   const std::vector<MetricSample> &samples);

} // namespace sgms::obs

#endif // SGMS_OBS_METRICS_H
