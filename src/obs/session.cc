#include "obs/session.h"

#include <cstdlib>
#include <iostream>

#include "common/logging.h"
#include "core/sim_config.h"
#include "core/sim_result.h"
#include "obs/chrome_trace.h"
#include "obs/debug.h"
#include "obs/metrics.h"

namespace sgms
{
namespace obs
{

namespace
{

void
apply_env_debug_flags()
{
    const char *env = std::getenv("SGMS_DEBUG");
    if (env && *env)
        set_debug_flags(parse_debug_flags(env));
}

} // namespace

ObsSession::ObsSession()
{
    apply_env_debug_flags();
}

ObsSession::ObsSession(const Options &opts)
{
    apply_env_debug_flags();
    if (opts.has("debug-flags"))
        set_debug_flags(parse_debug_flags(opts.get("debug-flags")));

    trace_path_ = opts.get("trace-out");
    metrics_ = opts.get_bool("metrics");
    timeline_ = opts.has("trace-timeline");
    timeline_faults_ = opts.get_u64("trace-timeline", 0);

    if (!trace_path_.empty() || timeline_) {
        uint64_t cap =
            opts.get_u64("trace-spans", Tracer::DEFAULT_CAPACITY);
        tracer_ = std::make_unique<Tracer>(cap);
        if (!SGMS_OBS_TRACING) {
            warn("tracing requested but compiled out "
                 "(SGMS_ENABLE_TRACING=OFF); traces will be empty");
        }
    }
}

void
ObsSession::configure(SimConfig &cfg) const
{
    if (tracer_)
        cfg.tracer = tracer_.get();
}

void
ObsSession::finish(const SimResult &res) const
{
    if (metrics_)
        print_metrics(std::cout, res.metrics);
    if (timeline_)
        write_fault_timeline(std::cout, *tracer_, timeline_faults_);
    if (tracer_ && !trace_path_.empty()) {
        write_chrome_trace_file(trace_path_, *tracer_);
        inform("wrote %llu spans to %s (open in Perfetto / "
               "chrome://tracing)",
               static_cast<unsigned long long>(tracer_->size()),
               trace_path_.c_str());
        if (tracer_->dropped()) {
            warn("trace ring overflowed: %llu oldest spans dropped "
                 "(raise --trace-spans)",
                 static_cast<unsigned long long>(tracer_->dropped()));
        }
    }
}

const char *
ObsSession::help()
{
    return "observability: --trace-out=PATH --trace-spans=N "
           "--trace-timeline[=N]\n  --metrics "
           "--debug-flags=Net,Gms,Policy,Tlb,Sim,Mem|all "
           "(or SGMS_DEBUG env)";
}

} // namespace obs
} // namespace sgms
