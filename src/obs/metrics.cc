#include "obs/metrics.h"

#include <cstdio>

#include "common/logging.h"
#include "common/table.h"

namespace sgms::obs
{

const char *
metric_kind_name(MetricKind k)
{
    switch (k) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Distribution:
        return "distribution";
    }
    return "?";
}

MetricsRegistry::Entry &
MetricsRegistry::find_or_create(const std::string &name, MetricKind kind)
{
    auto it = metrics_.find(name);
    if (it != metrics_.end()) {
        if (it->second.kind != kind) {
            fatal("metric '%s' registered as %s and %s", name.c_str(),
                  metric_kind_name(it->second.kind),
                  metric_kind_name(kind));
        }
        return it->second;
    }
    Entry e;
    e.kind = kind;
    switch (kind) {
      case MetricKind::Counter:
        e.counter = std::make_unique<Counter>();
        break;
      case MetricKind::Gauge:
        e.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::Distribution:
        e.dist = std::make_unique<Distribution>();
        break;
    }
    return metrics_.emplace(name, std::move(e)).first->second;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return *find_or_create(name, MetricKind::Counter).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return *find_or_create(name, MetricKind::Gauge).gauge;
}

Distribution &
MetricsRegistry::distribution(const std::string &name)
{
    return *find_or_create(name, MetricKind::Distribution).dist;
}

std::vector<MetricSample>
MetricsRegistry::snapshot() const
{
    std::vector<MetricSample> out;
    out.reserve(metrics_.size());
    for (const auto &[name, e] : metrics_) {
        MetricSample s;
        s.name = name;
        s.kind = e.kind;
        switch (e.kind) {
          case MetricKind::Counter:
            s.value = static_cast<double>(e.counter->value());
            break;
          case MetricKind::Gauge:
            s.value = e.gauge->value();
            break;
          case MetricKind::Distribution: {
            const Accumulator &a = e.dist->stats();
            s.value = a.sum();
            s.count = a.count();
            s.mean = a.mean();
            s.min = a.min();
            s.max = a.max();
            break;
          }
        }
        out.push_back(std::move(s));
    }
    return out;
}

void
MetricsRegistry::print(std::ostream &os) const
{
    print_metrics(os, snapshot());
}

namespace
{

std::string
fmt_value(double v)
{
    char buf[64];
    if (v == static_cast<double>(static_cast<int64_t>(v)))
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

void
print_metrics(std::ostream &os, const std::vector<MetricSample> &samples)
{
    Table t({"metric", "kind", "value", "count", "mean", "min", "max"});
    for (const auto &s : samples) {
        if (s.kind == MetricKind::Distribution) {
            t.add_row({s.name, metric_kind_name(s.kind),
                       fmt_value(s.value), Table::fmt_int(s.count),
                       fmt_value(s.mean), fmt_value(s.min),
                       fmt_value(s.max)});
        } else {
            t.add_row({s.name, metric_kind_name(s.kind),
                       fmt_value(s.value), "", "", "", ""});
        }
    }
    t.print(os);
}

void
write_metrics_json(std::ostream &os,
                   const std::vector<MetricSample> &samples)
{
    os << "{";
    bool first = true;
    for (const auto &s : samples) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << s.name << "\":";
        if (s.kind == MetricKind::Distribution) {
            char buf[256];
            std::snprintf(buf, sizeof(buf),
                          "{\"count\":%llu,\"sum\":%.9g,\"mean\":%.9g,"
                          "\"min\":%.9g,\"max\":%.9g}",
                          static_cast<unsigned long long>(s.count),
                          s.value, s.mean, s.min, s.max);
            os << buf;
        } else {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.9g", s.value);
            os << buf;
        }
    }
    os << "}";
}

} // namespace sgms::obs
