/**
 * @file
 * Trace exporters: Chrome trace_event JSON and a per-fault timeline.
 *
 * The JSON output is the "JSON Array Format" wrapped in an object
 * ({"traceEvents":[...]}), loadable by chrome://tracing and by
 * Perfetto's legacy importer. Simulated picoseconds are emitted as
 * fractional microseconds (the trace_event unit); durations survive
 * to sub-nanosecond resolution.
 *
 * Tracks are mapped to thread ids within a single process: each
 * distinct Span::track string becomes one named timeline row.
 */

#ifndef SGMS_OBS_CHROME_TRACE_H
#define SGMS_OBS_CHROME_TRACE_H

#include <ostream>
#include <string>
#include <vector>

#include "obs/tracer.h"

namespace sgms::obs
{

/** Emit every retained span of @p tracer as Chrome trace JSON. */
void write_chrome_trace(std::ostream &os, const Tracer &tracer);

/** As above, from an explicit span list (for filtered exports). */
void write_chrome_trace(std::ostream &os,
                        const std::vector<Span> &spans);

/** Write Chrome trace JSON to @p path; fatal() on I/O failure. */
void write_chrome_trace_file(const std::string &path,
                             const Tracer &tracer);

/**
 * Human-readable per-fault timeline: one block per fault id showing
 * its demand stall, later page-wait stalls, and the network-stage
 * spans of its transfer window — the Figure-2 view of a real run.
 * @p max_faults bounds the output (0 = all).
 */
void write_fault_timeline(std::ostream &os, const Tracer &tracer,
                          size_t max_faults = 0);

} // namespace sgms::obs

#endif // SGMS_OBS_CHROME_TRACE_H
