/**
 * @file
 * Observability session: one-stop CLI wiring for tracing, metrics,
 * and debug output.
 *
 * Examples and benches construct an ObsSession from their parsed
 * Options, call configure() on the SimConfig they are about to run,
 * and finish() with the result. The session owns the span Tracer and
 * understands these flags:
 *
 *   --trace-out=PATH      write a Chrome trace_event JSON file
 *   --trace-spans=N       tracer ring capacity (default 1M spans)
 *   --trace-timeline[=N]  print a per-fault timeline (first N faults)
 *   --metrics             print the metrics table after the run
 *   --debug-flags=A,B     enable SGMS_DPRINTF modules (Net, Gms,
 *                         Policy, Tlb, Sim, Mem, or "all")
 *
 * The SGMS_DEBUG environment variable is an alternative spelling of
 * --debug-flags (the flag wins when both are given).
 */

#ifndef SGMS_OBS_SESSION_H
#define SGMS_OBS_SESSION_H

#include <memory>
#include <string>

#include "common/options.h"
#include "obs/tracer.h"

namespace sgms
{

struct SimConfig;
struct SimResult;

namespace obs
{

class ObsSession
{
  public:
    /** No tracing, no metrics printing; debug flags still honor
     *  SGMS_DEBUG. */
    ObsSession();

    /** Parse the observability flags out of @p opts. */
    explicit ObsSession(const Options &opts);

    /** Point @p cfg at the session's tracer (if tracing is on). */
    void configure(SimConfig &cfg) const;

    /**
     * End-of-run reporting: print the metrics table and/or fault
     * timeline to stdout and write the Chrome trace file, as
     * requested by the flags.
     */
    void finish(const SimResult &res) const;

    bool tracing() const { return tracer_ != nullptr; }
    Tracer *tracer() const { return tracer_.get(); }
    bool metrics_requested() const { return metrics_; }
    const std::string &trace_path() const { return trace_path_; }

    /** Help text for the flags above (for --help output). */
    static const char *help();

  private:
    std::unique_ptr<Tracer> tracer_;
    std::string trace_path_;
    bool metrics_ = false;
    bool timeline_ = false;
    uint64_t timeline_faults_ = 0;
};

} // namespace obs
} // namespace sgms

#endif // SGMS_OBS_SESSION_H
