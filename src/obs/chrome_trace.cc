#include "obs/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

#include "common/logging.h"
#include "common/units.h"

namespace sgms::obs
{

namespace
{

/** Category-specific names for the generic span argument slots. */
struct ArgNames
{
    const char *id;
    const char *arg0;
    const char *arg1;
};

ArgNames
arg_names(SpanCategory cat)
{
    switch (cat) {
      case SpanCategory::Fault:
        return {"fault_id", "page", "bytes"};
      case SpanCategory::PageWait:
        return {"fault_id", "page", "subpage"};
      case SpanCategory::Block:
        return {"wait_id", "arg0", "arg1"};
      case SpanCategory::Net:
        return {"msg_id", "node", "kind"};
      case SpanCategory::Gms:
        return {"page", "bytes", "server"};
      case SpanCategory::Policy:
        return {"fault_id", "segments", "bytes"};
    }
    return {"id", "arg0", "arg1"};
}

/** Picoseconds to the trace_event unit (fractional microseconds). */
std::string
fmt_us(Tick t)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6f", ticks::to_us(t));
    return buf;
}

} // namespace

void
write_chrome_trace(std::ostream &os, const std::vector<Span> &spans)
{
    // Assign one thread id per distinct track, in first-seen order.
    std::map<std::string, int> tids;
    for (const Span &s : spans)
        tids.emplace(s.track, 0);
    int next_tid = 1;
    for (auto &[track, tid] : tids)
        tid = next_tid++;

    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    os << "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
          "\"args\":{\"name\":\"sgms\"}}";
    for (const auto &[track, tid] : tids) {
        os << ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << track
           << "\"}}";
    }
    for (const Span &s : spans) {
        ArgNames an = arg_names(s.cat);
        os << ",\n{\"name\":\"" << s.name << "\",\"cat\":\""
           << span_category_name(s.cat) << "\",\"pid\":0,\"tid\":"
           << tids[s.track] << ",\"ts\":" << fmt_us(s.start);
        if (s.instant())
            os << ",\"ph\":\"i\",\"s\":\"t\"";
        else
            os << ",\"ph\":\"X\",\"dur\":" << fmt_us(s.duration());
        os << ",\"args\":{\"" << an.id << "\":" << s.id << ",\""
           << an.arg0 << "\":" << s.arg0 << ",\"" << an.arg1
           << "\":" << s.arg1 << "}}";
    }
    os << "\n]}\n";
}

void
write_chrome_trace(std::ostream &os, const Tracer &tracer)
{
    write_chrome_trace(os, tracer.spans());
}

void
write_chrome_trace_file(const std::string &path, const Tracer &tracer)
{
    std::ofstream os(path);
    if (!os)
        fatal("trace export: cannot open '%s'", path.c_str());
    write_chrome_trace(os, tracer);
    if (tracer.dropped()) {
        warn("trace export: ring overflowed, %llu oldest spans lost "
             "(raise the tracer capacity for full runs)",
             static_cast<unsigned long long>(tracer.dropped()));
    }
}

void
write_fault_timeline(std::ostream &os, const Tracer &tracer,
                     size_t max_faults)
{
    std::vector<Span> spans = tracer.spans();
    std::stable_sort(spans.begin(), spans.end(),
                     [](const Span &a, const Span &b) {
                         return a.start < b.start;
                     });

    std::vector<const Span *> faults, net, waits;
    for (const Span &s : spans) {
        switch (s.cat) {
          case SpanCategory::Fault:
            faults.push_back(&s);
            break;
          case SpanCategory::Net:
            net.push_back(&s);
            break;
          case SpanCategory::PageWait:
            waits.push_back(&s);
            break;
          default:
            break;
        }
    }

    char buf[256];
    size_t shown = 0;
    for (const Span *f : faults) {
        if (max_faults && shown++ >= max_faults) {
            os << "... (" << faults.size() - max_faults
               << " more faults)\n";
            break;
        }
        std::snprintf(buf, sizeof(buf),
                      "fault #%llu  page %lld  %s  at %s  wait %s\n",
                      static_cast<unsigned long long>(f->id),
                      static_cast<long long>(f->arg0), f->name,
                      format_ms(f->start).c_str(),
                      format_us(f->duration()).c_str());
        os << buf;
        // The network activity inside this fault's stall window: the
        // request/demand pipeline the program was waiting on.
        for (const Span *n : net) {
            if (n->end <= f->start || n->start >= f->end)
                continue;
            std::snprintf(buf, sizeof(buf),
                          "  +%-12s %-14s %-11s %s  msg %llu\n",
                          format_us(n->start - f->start).c_str(),
                          n->track, n->name,
                          format_us(n->duration()).c_str(),
                          static_cast<unsigned long long>(n->id));
            os << buf;
        }
        for (const Span *w : waits) {
            if (w->id != f->id)
                continue;
            std::snprintf(buf, sizeof(buf),
                          "  later stall at %s for %s (subpage %lld)\n",
                          format_ms(w->start).c_str(),
                          format_us(w->duration()).c_str(),
                          static_cast<long long>(w->arg1));
            os << buf;
        }
    }
    if (tracer.dropped()) {
        os << "(ring overflowed: " << tracer.dropped()
           << " oldest spans lost)\n";
    }
}

} // namespace sgms::obs
