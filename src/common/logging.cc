#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace sgms
{

namespace
{
bool quiet_mode = false;

void
vreport(const char *level, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", level);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}
} // namespace

void
set_quiet(bool quiet)
{
    quiet_mode = quiet;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (quiet_mode)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
assert_fail(const char *expr, const char *file, int line)
{
    panic("assertion '%s' failed at %s:%d", expr, file, line);
}

} // namespace sgms
