#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace sgms
{

namespace
{
// Atomic so the inform() fast path can check it without taking the
// output lock; the lock still serializes the actual printing.
std::atomic<bool> quiet_mode{false};

void
vreport(const char *level, const char *fmt, va_list ap)
{
    std::lock_guard<std::mutex> lock(log_mutex());
    std::fprintf(stderr, "%s: ", level);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}
} // namespace

std::mutex &
log_mutex()
{
    static std::mutex mutex;
    return mutex;
}

bool
set_quiet(bool quiet)
{
    return quiet_mode.exchange(quiet);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (quiet_mode.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
assert_fail(const char *expr, const char *file, int line)
{
    panic("assertion '%s' failed at %s:%d", expr, file, line);
}

} // namespace sgms
