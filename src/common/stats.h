/**
 * @file
 * Small statistics helpers: running accumulators and histograms.
 */

#ifndef SGMS_COMMON_STATS_H
#define SGMS_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"

namespace sgms
{

/** Running min / max / mean / variance accumulator (Welford). */
class Accumulator
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++n_;
        if (n_ == 1) {
            min_ = max_ = x;
        } else {
            if (x < min_)
                min_ = x;
            if (x > max_)
                max_ = x;
        }
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        sum_ += x;
    }

    uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /** Sample variance (n-1 denominator). */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const;

    /** Merge another accumulator into this one. */
    void merge(const Accumulator &other);

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Integer-keyed histogram (sparse; suitable for subpage distances,
 * fault counts per window, etc.).
 */
class Histogram
{
  public:
    /** Add @p weight observations of @p key. */
    void
    add(int64_t key, uint64_t weight = 1)
    {
        bins_[key] += weight;
        total_ += weight;
    }

    uint64_t total() const { return total_; }

    /** Count observed at @p key (0 if never added). */
    uint64_t count(int64_t key) const;

    /** Fraction of observations at @p key. */
    double fraction(int64_t key) const;

    /** Sorted (key, count) pairs. */
    std::vector<std::pair<int64_t, uint64_t>> bins() const;

    /** Smallest key with cumulative fraction >= q (q in [0,1]). */
    int64_t quantile(double q) const;

    bool empty() const { return total_ == 0; }

    void
    clear()
    {
        bins_.clear();
        total_ = 0;
    }

  private:
    std::map<int64_t, uint64_t> bins_;
    uint64_t total_ = 0;
};

/**
 * A named (x, y) series, used to emit figure data (e.g.\ cumulative
 * faults over time) in both human-readable and CSV form.
 */
struct Series
{
    std::string name;
    std::vector<std::pair<double, double>> points;

    void
    add(double x, double y)
    {
        points.emplace_back(x, y);
    }

    /** Downsample to at most @p max_points, keeping endpoints. */
    Series downsampled(size_t max_points) const;
};

} // namespace sgms

#endif // SGMS_COMMON_STATS_H
