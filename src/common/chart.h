/**
 * @file
 * ASCII chart rendering for figure benches.
 *
 * The paper's figures are bar charts (Figs 3, 4, 8, 9), line plots
 * (Figs 1, 5, 6, 10), histograms (Fig 7), and a Gantt timeline
 * (Fig 2). These renderers draw terminal-friendly equivalents so the
 * bench output can be compared to the paper at a glance; the same
 * data is also printed as CSV for plotting.
 */

#ifndef SGMS_COMMON_CHART_H
#define SGMS_COMMON_CHART_H

#include <ostream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace sgms
{

/** One bar, possibly stacked from several labelled segments. */
struct Bar
{
    std::string label;
    /** (segment name, value) pairs, drawn bottom-up / left-to-right. */
    std::vector<std::pair<std::string, double>> segments;

    double total() const;
};

/** Horizontal bar chart with optional stacked segments. */
class BarChart
{
  public:
    BarChart(std::string title, std::string value_unit)
        : title_(std::move(title)), unit_(std::move(value_unit))
    {}

    /** Add a single-valued bar. */
    void add(const std::string &label, double value);

    /** Add a stacked bar. */
    void add(Bar bar);

    /** Render; bars are scaled to @p width characters at the maximum. */
    void print(std::ostream &os, int width = 60) const;

  private:
    std::string title_;
    std::string unit_;
    std::vector<Bar> bars_;
};

/** Multi-series (x, y) line plot on a character grid. */
class LinePlot
{
  public:
    LinePlot(std::string title, std::string x_label, std::string y_label)
        : title_(std::move(title)), x_label_(std::move(x_label)),
          y_label_(std::move(y_label))
    {}

    void add(Series series) { series_.push_back(std::move(series)); }

    void print(std::ostream &os, int width = 72, int height = 20) const;

    /** Emit all series as long-form CSV: series,x,y. */
    void print_csv(std::ostream &os) const;

  private:
    std::string title_;
    std::string x_label_;
    std::string y_label_;
    std::vector<Series> series_;
};

/** One busy interval on a Gantt row. */
struct GanttSpan
{
    Tick start;
    Tick end;
    char glyph;
};

/** Gantt / timeline chart (Figure 2 style). */
class GanttChart
{
  public:
    explicit GanttChart(std::string title) : title_(std::move(title)) {}

    /** Add a row (component) with its busy spans. */
    void add_row(const std::string &label, std::vector<GanttSpan> spans);

    void print(std::ostream &os, int width = 90) const;

  private:
    std::string title_;
    std::vector<std::pair<std::string, std::vector<GanttSpan>>> rows_;
};

} // namespace sgms

#endif // SGMS_COMMON_CHART_H
