/**
 * @file
 * Minimal command-line option parsing for the examples and tools.
 *
 * Supports `--key=value`, `--flag` (value "1"), and positional
 * arguments, plus typed getters with defaults. `apply_overrides`
 * (core/config_override.h) maps recognized keys onto a SimConfig so
 * every example exposes the full simulator configuration without
 * duplicating flag plumbing.
 */

#ifndef SGMS_COMMON_OPTIONS_H
#define SGMS_COMMON_OPTIONS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sgms
{

/** Parsed command line. */
class Options
{
  public:
    Options() = default;

    /** Parse argv; fatal() on malformed options (e.g. "--=x"). */
    Options(int argc, char **argv);

    /** True if --name was given. */
    bool has(const std::string &name) const;

    /** String value of --name, or @p fallback. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** Boolean: "--name", "--name=1/true/yes" are true. */
    bool get_bool(const std::string &name, bool fallback = false) const;

    double get_double(const std::string &name, double fallback) const;

    uint64_t get_u64(const std::string &name, uint64_t fallback) const;

    /** Size in bytes; accepts suffixed values ("1K", "8K"). */
    uint64_t get_bytes(const std::string &name,
                       uint64_t fallback) const;

    /** Non-option arguments, in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Option names that were never read (typo detection). */
    std::vector<std::string> unused() const;

  private:
    std::map<std::string, std::string> values_;
    mutable std::map<std::string, bool> read_;
    std::vector<std::string> positional_;
};

/**
 * Environment-variable getters used by the flag/env layering of the
 * execution engine (`--jobs` over SGMS_JOBS, `--cache-dir` over
 * SGMS_CACHE_DIR, ...): unset and empty both mean "use the fallback".
 */
std::string env_string(const char *name, const std::string &fallback);

/** fatal() on a set-but-malformed integer (mirrors get_u64). */
uint64_t env_u64(const char *name, uint64_t fallback);

} // namespace sgms

#endif // SGMS_COMMON_OPTIONS_H
