#include "common/options.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/units.h"

namespace sgms
{

Options::Options(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        if (body.empty())
            fatal("malformed option '%s'", arg.c_str());
        auto eq = body.find('=');
        if (eq == std::string::npos) {
            values_[body] = "1";
        } else {
            std::string key = body.substr(0, eq);
            if (key.empty())
                fatal("malformed option '%s'", arg.c_str());
            values_[key] = body.substr(eq + 1);
        }
    }
}

bool
Options::has(const std::string &name) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return false;
    read_[name] = true;
    return true;
}

std::string
Options::get(const std::string &name, const std::string &fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    read_[name] = true;
    return it->second;
}

bool
Options::get_bool(const std::string &name, bool fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    read_[name] = true;
    const std::string &v = it->second;
    return v == "1" || v == "true" || v == "yes" || v == "on";
}

double
Options::get_double(const std::string &name, double fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    read_[name] = true;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str())
        fatal("option --%s: bad number '%s'", name.c_str(),
              it->second.c_str());
    return v;
}

uint64_t
Options::get_u64(const std::string &name, uint64_t fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    read_[name] = true;
    char *end = nullptr;
    unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str())
        fatal("option --%s: bad integer '%s'", name.c_str(),
              it->second.c_str());
    return v;
}

uint64_t
Options::get_bytes(const std::string &name, uint64_t fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    read_[name] = true;
    return parse_bytes(it->second);
}

std::string
env_string(const char *name, const std::string &fallback)
{
    const char *v = std::getenv(name);
    return (v && *v) ? std::string(v) : fallback;
}

uint64_t
env_u64(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end)
        fatal("%s: bad integer '%s'", name, v);
    return parsed;
}

std::vector<std::string>
Options::unused() const
{
    std::vector<std::string> out;
    for (const auto &[key, value] : values_) {
        if (!read_.count(key))
            out.push_back(key);
    }
    return out;
}

} // namespace sgms
