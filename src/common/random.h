/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in SGMS (synthetic trace generation, page
 * placement) flows through Rng so that every experiment is exactly
 * reproducible from its seed. The generator is xoshiro256**, seeded
 * through SplitMix64 as its authors recommend.
 */

#ifndef SGMS_COMMON_RANDOM_H
#define SGMS_COMMON_RANDOM_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace sgms
{

/** Deterministic xoshiro256** PRNG. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (any value, including 0, is fine). */
    explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

    /** Re-initialize the state from a seed. */
    void
    reseed(uint64_t seed)
    {
        // SplitMix64 expansion of the seed into the 256-bit state.
        uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t *s = state_;
        const uint64_t result = rotl(s[1] * 5, 7) * 9;
        const uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        SGMS_ASSERT(bound != 0);
        // Lemire's unbiased bounded generation.
        uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        uint64_t l = static_cast<uint64_t>(m);
        if (l < bound) {
            uint64_t t = -bound % bound;
            while (l < t) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                l = static_cast<uint64_t>(m);
            }
        }
        return static_cast<uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        SGMS_ASSERT(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Approximately Zipf-distributed rank in [0, n), skew @p s.
     * Uses the inverse-CDF power-law approximation, which is accurate
     * enough for locality modelling and O(1) per draw.
     */
    uint64_t
    zipf(uint64_t n, double s = 0.8);

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

/**
 * Precomputed inverse-CDF table for fast Zipf sampling.
 *
 * Rng::zipf costs two std::pow calls per draw, which dominates trace
 * generation (one or more draws per reference). ZipfTable samples the
 * same distribution through a quantile lookup table, trading a little
 * tail resolution for a ~20x faster draw.
 */
class ZipfTable
{
  public:
    ZipfTable() = default;

    /** Build the table for ranks [0, n) with skew @p s. */
    ZipfTable(uint64_t n, double s);

    /** Draw a rank using @p rng for randomness. */
    uint64_t
    sample(Rng &rng) const
    {
        SGMS_ASSERT(!table_.empty());
        // Uniform index into the quantile table; linear within it.
        uint64_t r = rng.next();
        size_t idx = (r >> 52) & (TABLE_SIZE - 1); // top 12 bits
        return table_[idx];
    }

    uint64_t n() const { return n_; }
    double skew() const { return skew_; }
    bool valid() const { return !table_.empty(); }

  private:
    static constexpr size_t TABLE_SIZE = 4096;

    uint64_t n_ = 0;
    double skew_ = 0.0;
    std::vector<uint64_t> table_;
};

} // namespace sgms

#endif // SGMS_COMMON_RANDOM_H
