/**
 * @file
 * Status and error reporting, in the style of gem5's logging.hh.
 *
 * panic() is for internal invariant violations (simulator bugs): it
 * aborts. fatal() is for user errors (bad configuration): it exits
 * with an error code. warn()/inform() print to stderr and continue.
 *
 * All four accept printf-style format strings.
 */

#ifndef SGMS_COMMON_LOGGING_H
#define SGMS_COMMON_LOGGING_H

#include <cstdarg>
#include <mutex>

namespace sgms
{

/** Abort with a message; use for simulator bugs that should never occur. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a message; use for user/configuration errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about questionable but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Quiet mode suppresses inform() (benches use it for clean tables).
 * Returns the previous setting so callers can restore it.
 */
bool set_quiet(bool quiet);

/**
 * The lock serializing all log output (also used by obs/debug.h's
 * SGMS_DPRINTF), keeping concurrent lines atomic.
 */
std::mutex &log_mutex();

/** Helper for SGMS_ASSERT; panics with file/line context. */
[[noreturn]] void assert_fail(const char *expr, const char *file, int line);

/**
 * panic() unless the condition holds.
 * Prefer this over assert() for invariants that must hold in release
 * builds too.
 */
#define SGMS_ASSERT(cond)                                               \
    do {                                                                \
        if (!(cond))                                                    \
            ::sgms::assert_fail(#cond, __FILE__, __LINE__);             \
    } while (0)

} // namespace sgms

#endif // SGMS_COMMON_LOGGING_H
