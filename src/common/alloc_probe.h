/**
 * @file
 * Allocation-counting test hook.
 *
 * Binaries that want to assert "this code path does not touch the
 * heap" place SGMS_INSTALL_ALLOC_PROBE() at namespace scope in
 * exactly one translation unit; that overrides the global allocation
 * functions with counting forwards to malloc/free. The library itself
 * never installs the probe, so production binaries keep the default
 * allocator untouched.
 *
 * Usage in a test:
 *
 *   SGMS_INSTALL_ALLOC_PROBE();
 *   ...
 *   uint64_t before = sgms::alloc_probe_count();
 *   hot_path();
 *   EXPECT_EQ(sgms::alloc_probe_count(), before);
 *
 * The counter is process-wide; keep the measured section
 * single-threaded (or tolerate counts from other threads).
 */

#ifndef SGMS_COMMON_ALLOC_PROBE_H
#define SGMS_COMMON_ALLOC_PROBE_H

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace sgms
{

namespace detail
{

inline std::atomic<uint64_t> alloc_probe_count{0};

/** Shared implementation for the operator-new overrides. */
inline void *
alloc_probe_alloc(std::size_t size)
{
    alloc_probe_count.fetch_add(1, std::memory_order_relaxed);
    if (size == 0)
        size = 1;
    void *p = std::malloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

/** Shared implementation for the nothrow operator-new overrides. */
inline void *
alloc_probe_alloc_nothrow(std::size_t size) noexcept
{
    alloc_probe_count.fetch_add(1, std::memory_order_relaxed);
    if (size == 0)
        size = 1;
    return std::malloc(size);
}

} // namespace detail

/** Heap allocations since process start (probe-installed binaries). */
inline uint64_t
alloc_probe_count()
{
    return detail::alloc_probe_count.load(std::memory_order_relaxed);
}

} // namespace sgms

// clang-format off
#define SGMS_INSTALL_ALLOC_PROBE()                                     \
    void *operator new(std::size_t size)                               \
    {                                                                  \
        return sgms::detail::alloc_probe_alloc(size);                  \
    }                                                                  \
    void *operator new[](std::size_t size)                             \
    {                                                                  \
        return sgms::detail::alloc_probe_alloc(size);                  \
    }                                                                  \
    void operator delete(void *p) noexcept { std::free(p); }           \
    void operator delete[](void *p) noexcept { std::free(p); }         \
    void operator delete(void *p, std::size_t) noexcept               \
    {                                                                  \
        std::free(p);                                                  \
    }                                                                  \
    void operator delete[](void *p, std::size_t) noexcept             \
    {                                                                  \
        std::free(p);                                                  \
    }                                                                  \
    /* The nothrow forms must be replaced too: std::stable_sort's   */ \
    /* temporary buffer allocates via new(nothrow) and frees via the*/ \
    /* sized delete above, and mixing a default-allocator new with a*/ \
    /* malloc-backed delete trips ASan's alloc-dealloc matcher.     */ \
    void *operator new(std::size_t size, const std::nothrow_t &)       \
        noexcept                                                       \
    {                                                                  \
        return sgms::detail::alloc_probe_alloc_nothrow(size);          \
    }                                                                  \
    void *operator new[](std::size_t size, const std::nothrow_t &)     \
        noexcept                                                       \
    {                                                                  \
        return sgms::detail::alloc_probe_alloc_nothrow(size);          \
    }                                                                  \
    void operator delete(void *p, const std::nothrow_t &) noexcept     \
    {                                                                  \
        std::free(p);                                                  \
    }                                                                  \
    void operator delete[](void *p, const std::nothrow_t &) noexcept   \
    {                                                                  \
        std::free(p);                                                  \
    }                                                                  \
    static_assert(true, "require trailing semicolon")
// clang-format on

#endif // SGMS_COMMON_ALLOC_PROBE_H
