#include "common/units.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace sgms
{

std::string
format_bytes(uint64_t bytes)
{
    char buf[32];
    if (bytes >= (1ULL << 20) && bytes % (1ULL << 20) == 0)
        std::snprintf(buf, sizeof(buf), "%lluM",
                      static_cast<unsigned long long>(bytes >> 20));
    else if (bytes >= 1024 && bytes % 1024 == 0)
        std::snprintf(buf, sizeof(buf), "%lluK",
                      static_cast<unsigned long long>(bytes >> 10));
    else
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(bytes));
    return buf;
}

uint64_t
parse_bytes(const std::string &text)
{
    if (text.empty())
        fatal("parse_bytes: empty size string");
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str())
        fatal("parse_bytes: bad size string '%s'", text.c_str());
    uint64_t mult = 1;
    if (*end) {
        switch (std::toupper(static_cast<unsigned char>(*end))) {
          case 'B':
            mult = 1;
            break;
          case 'K':
            mult = 1024;
            break;
          case 'M':
            mult = 1024 * 1024;
            break;
          case 'G':
            mult = 1024ULL * 1024 * 1024;
            break;
          default:
            fatal("parse_bytes: bad size suffix in '%s'", text.c_str());
        }
    }
    return v * mult;
}

std::string
format_ms(Tick t, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f ms", precision,
                  ticks::to_ms(t));
    return buf;
}

std::string
format_us(Tick t, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f us", precision,
                  ticks::to_us(t));
    return buf;
}

} // namespace sgms
