/**
 * @file
 * Fundamental types and time units for the SGMS simulator.
 *
 * Simulated time is kept in integer picoseconds so that all of the
 * calibrated network-model rates (e.g.\ 51.6 ns per byte of ATM wire
 * time) are exact in integer arithmetic. A signed 64-bit tick counter
 * covers roughly 106 days of simulated time, far beyond any trace run.
 */

#ifndef SGMS_COMMON_TYPES_H
#define SGMS_COMMON_TYPES_H

#include <cstdint>

namespace sgms
{

/** Simulated time in picoseconds. */
using Tick = int64_t;

/** A virtual (or trace) byte address. */
using Addr = uint64_t;

/** Index of a virtual page (addr / page_size). */
using PageId = uint64_t;

/** Index of a subpage within its page (0-based). */
using SubpageIndex = uint32_t;

/** Identifier of a node in the simulated cluster. */
using NodeId = uint32_t;

/** Sentinel for "no tick" / unscheduled. */
constexpr Tick TICK_NONE = -1;

/** Largest representable tick, used as +infinity. */
constexpr Tick TICK_MAX = INT64_MAX;

namespace ticks
{

constexpr Tick PS = 1;
constexpr Tick NS = 1000 * PS;
constexpr Tick US = 1000 * NS;
constexpr Tick MS = 1000 * US;
constexpr Tick SEC = 1000 * MS;

/** Build a tick count from nanoseconds. */
constexpr Tick
from_ns(double ns)
{
    return static_cast<Tick>(ns * NS);
}

/** Build a tick count from microseconds. */
constexpr Tick
from_us(double us)
{
    return static_cast<Tick>(us * US);
}

/** Build a tick count from milliseconds. */
constexpr Tick
from_ms(double ms)
{
    return static_cast<Tick>(ms * MS);
}

/** Convert ticks to fractional nanoseconds. */
constexpr double
to_ns(Tick t)
{
    return static_cast<double>(t) / NS;
}

/** Convert ticks to fractional microseconds. */
constexpr double
to_us(Tick t)
{
    return static_cast<double>(t) / US;
}

/** Convert ticks to fractional milliseconds. */
constexpr double
to_ms(Tick t)
{
    return static_cast<double>(t) / MS;
}

} // namespace ticks

/** True iff @p v is a power of two (and nonzero). */
constexpr bool
is_pow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr uint32_t
log2_exact(uint64_t v)
{
    uint32_t r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

} // namespace sgms

#endif // SGMS_COMMON_TYPES_H
