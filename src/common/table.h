/**
 * @file
 * ASCII table and CSV emission for benches and reports.
 *
 * Every bench prints its paper table / figure data through these
 * helpers so that output formatting is uniform across the harness.
 */

#ifndef SGMS_COMMON_TABLE_H
#define SGMS_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace sgms
{

/** Column-aligned ASCII table builder. */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void add_row(std::vector<std::string> cells);

    /** Number of data rows. */
    size_t rows() const { return rows_.size(); }

    /** Render with box-drawing separators to @p os. */
    void print(std::ostream &os) const;

    /** Render as CSV (RFC-4180-ish quoting) to @p os. */
    void print_csv(std::ostream &os) const;

    /** Format helpers for numeric cells. */
    static std::string fmt(double v, int precision = 2);
    static std::string fmt_int(int64_t v);
    static std::string fmt_pct(double fraction, int precision = 0);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace sgms

#endif // SGMS_COMMON_TABLE_H
