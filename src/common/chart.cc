#include "common/chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace sgms
{

double
Bar::total() const
{
    double t = 0.0;
    for (const auto &[name, v] : segments)
        t += v;
    return t;
}

void
BarChart::add(const std::string &label, double value)
{
    bars_.push_back(Bar{label, {{"", value}}});
}

void
BarChart::add(Bar bar)
{
    bars_.push_back(std::move(bar));
}

void
BarChart::print(std::ostream &os, int width) const
{
    os << title_ << "\n";
    double max_total = 0.0;
    size_t label_w = 0;
    for (const auto &bar : bars_) {
        max_total = std::max(max_total, bar.total());
        label_w = std::max(label_w, bar.label.size());
    }
    if (max_total <= 0.0)
        max_total = 1.0;

    // Legend: one glyph per distinct segment name, in first-seen order.
    static const char glyphs[] = "#=+*o.%@";
    std::vector<std::string> seg_names;
    for (const auto &bar : bars_) {
        for (const auto &[name, v] : bar.segments) {
            if (!name.empty() &&
                std::find(seg_names.begin(), seg_names.end(), name) ==
                    seg_names.end()) {
                seg_names.push_back(name);
            }
        }
    }
    if (seg_names.size() > 1) {
        os << "  legend:";
        for (size_t i = 0; i < seg_names.size(); ++i)
            os << "  " << glyphs[i % (sizeof(glyphs) - 1)] << "="
               << seg_names[i];
        os << "\n";
    }

    for (const auto &bar : bars_) {
        os << "  " << bar.label
           << std::string(label_w - bar.label.size(), ' ') << " |";
        int drawn = 0;
        for (const auto &[name, v] : bar.segments) {
            auto it = std::find(seg_names.begin(), seg_names.end(), name);
            char g = name.empty()
                         ? '#'
                         : glyphs[(it - seg_names.begin()) %
                                  (sizeof(glyphs) - 1)];
            int cells = static_cast<int>(
                std::lround(v / max_total * width));
            for (int i = 0; i < cells; ++i)
                os << g;
            drawn += cells;
        }
        char buf[64];
        std::snprintf(buf, sizeof(buf), " %.3f %s", bar.total(),
                      unit_.c_str());
        os << std::string(std::max(0, width + 2 - drawn), ' ') << buf
           << "\n";
    }
}

void
LinePlot::print(std::ostream &os, int width, int height) const
{
    os << title_ << "\n";
    double xmin = 0, xmax = 0, ymin = 0, ymax = 0;
    bool first = true;
    for (const auto &s : series_) {
        for (const auto &[x, y] : s.points) {
            if (first) {
                xmin = xmax = x;
                ymin = ymax = y;
                first = false;
            } else {
                xmin = std::min(xmin, x);
                xmax = std::max(xmax, x);
                ymin = std::min(ymin, y);
                ymax = std::max(ymax, y);
            }
        }
    }
    if (first) {
        os << "  (no data)\n";
        return;
    }
    if (xmax == xmin)
        xmax = xmin + 1;
    if (ymax == ymin)
        ymax = ymin + 1;

    std::vector<std::string> grid(height, std::string(width, ' '));
    static const char glyphs[] = "*o+x#@%&";
    for (size_t si = 0; si < series_.size(); ++si) {
        char g = glyphs[si % (sizeof(glyphs) - 1)];
        for (const auto &[x, y] : series_[si].points) {
            int cx = static_cast<int>((x - xmin) / (xmax - xmin) *
                                      (width - 1));
            int cy = static_cast<int>((y - ymin) / (ymax - ymin) *
                                      (height - 1));
            cx = std::clamp(cx, 0, width - 1);
            cy = std::clamp(cy, 0, height - 1);
            grid[height - 1 - cy][cx] = g;
        }
    }

    os << "  legend:";
    for (size_t si = 0; si < series_.size(); ++si)
        os << "  " << glyphs[si % (sizeof(glyphs) - 1)] << "="
           << series_[si].name;
    os << "\n";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  y: %s  [%.4g .. %.4g]\n",
                  y_label_.c_str(), ymin, ymax);
    os << buf;
    for (const auto &row : grid)
        os << "  |" << row << "\n";
    os << "  +" << std::string(width, '-') << "\n";
    std::snprintf(buf, sizeof(buf), "  x: %s  [%.4g .. %.4g]\n",
                  x_label_.c_str(), xmin, xmax);
    os << buf;
}

void
LinePlot::print_csv(std::ostream &os) const
{
    os << "series,x,y\n";
    for (const auto &s : series_)
        for (const auto &[x, y] : s.points) {
            char buf[96];
            std::snprintf(buf, sizeof(buf), "%s,%.6g,%.6g\n",
                          s.name.c_str(), x, y);
            os << buf;
        }
}

void
GanttChart::add_row(const std::string &label, std::vector<GanttSpan> spans)
{
    rows_.emplace_back(label, std::move(spans));
}

void
GanttChart::print(std::ostream &os, int width) const
{
    os << title_ << "\n";
    Tick tmax = 0;
    size_t label_w = 0;
    for (const auto &[label, spans] : rows_) {
        label_w = std::max(label_w, label.size());
        for (const auto &s : spans)
            tmax = std::max(tmax, s.end);
    }
    if (tmax == 0)
        tmax = 1;

    for (const auto &[label, spans] : rows_) {
        std::string line(width, '.');
        for (const auto &s : spans) {
            int a = static_cast<int>(s.start * (width - 1) / tmax);
            int b = static_cast<int>(s.end * (width - 1) / tmax);
            b = std::max(b, a); // zero-length spans still get one cell
            for (int i = a; i <= b && i < width; ++i)
                line[i] = s.glyph;
        }
        os << "  " << label << std::string(label_w - label.size(), ' ')
           << " [" << line << "]\n";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  time axis: 0 .. %.3f ms\n",
                  ticks::to_ms(tmax));
    os << buf;
}

} // namespace sgms
