/**
 * @file
 * Small-buffer, move-only callable wrapper for hot-path callbacks.
 *
 * std::function heap-allocates any capture larger than ~16 bytes,
 * which puts an allocation on every event schedule and every network
 * stage hop. InlineFunction stores captures up to N bytes in place;
 * larger callables still work through a counted heap fallback, so
 * correctness never depends on a capture-size guess. The fallback
 * counter (inline_function_heap_fallbacks()) lets tests and benches
 * assert that the closures they care about really stay inline.
 */

#ifndef SGMS_COMMON_INLINE_FUNCTION_H
#define SGMS_COMMON_INLINE_FUNCTION_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#ifdef SGMS_DEBUG_FALLBACK
#include <cstdio>
#include <execinfo.h>
#include <typeinfo>
#endif

namespace sgms
{

namespace detail
{

/** Process-wide count of InlineFunction captures that spilled. */
inline std::atomic<uint64_t> inline_fn_heap_fallbacks{0};

} // namespace detail

/** Captures too large for their InlineFunction's inline buffer. */
inline uint64_t
inline_function_heap_fallbacks()
{
    return detail::inline_fn_heap_fallbacks.load(
        std::memory_order_relaxed);
}

template <typename Sig, size_t N> class InlineFunction;

template <typename R, typename... Args, size_t N>
class InlineFunction<R(Args...), N>
{
  public:
    InlineFunction() = default;
    InlineFunction(std::nullptr_t) {} // NOLINT: match std::function

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InlineFunction(F &&f) // NOLINT: implicit like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= N &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (storage_) Fn(std::forward<F>(f));
            ops_ = &inline_ops<Fn>;
        } else {
            // Spill: store a pointer to a heap-allocated callable.
            // Counted so tests can pin hot closures inline.
            ::new (storage_) Fn *(new Fn(std::forward<F>(f)));
            ops_ = &heap_ops<Fn>;
            detail::inline_fn_heap_fallbacks.fetch_add(
                1, std::memory_order_relaxed);
#ifdef SGMS_DEBUG_FALLBACK
            std::fprintf(stderr, "FALLBACK sizeof=%zu align=%zu nothrow=%d type=%s\n",
                         sizeof(Fn), alignof(Fn),
                         (int)std::is_nothrow_move_constructible_v<Fn>,
                         typeid(Fn).name());
            void *bt[16]; int n = backtrace(bt, 16);
            backtrace_symbols_fd(bt, n, 2);
#endif
        }
    }

    InlineFunction(InlineFunction &&other) noexcept
    {
        move_from(other);
    }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    R
    operator()(Args... args)
    {
        return ops_->invoke(storage_, std::forward<Args>(args)...);
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args &&...);
        void (*relocate)(void *dst, void *src); // move + destroy src
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr Ops inline_ops = {
        [](void *s, Args &&...args) -> R {
            return (*std::launder(reinterpret_cast<Fn *>(s)))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) {
            Fn *f = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
        },
        [](void *s) {
            std::launder(reinterpret_cast<Fn *>(s))->~Fn();
        },
    };

    template <typename Fn>
    static constexpr Ops heap_ops = {
        [](void *s, Args &&...args) -> R {
            return (**std::launder(reinterpret_cast<Fn **>(s)))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) {
            Fn **p = std::launder(reinterpret_cast<Fn **>(src));
            ::new (dst) Fn *(*p);
        },
        [](void *s) {
            delete *std::launder(reinterpret_cast<Fn **>(s));
        },
    };

    void
    reset()
    {
        if (ops_) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    void
    move_from(InlineFunction &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_)
            ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
    }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char storage_[N];
};

} // namespace sgms

#endif // SGMS_COMMON_INLINE_FUNCTION_H
