#include "common/json.h"

#include <cctype>
#include <cstdlib>

namespace sgms
{

namespace
{

const JsonValue &
null_value()
{
    static const JsonValue v;
    return v;
}

const std::string &
empty_string()
{
    static const std::string s;
    return s;
}

} // namespace

bool
JsonValue::as_bool(bool fallback) const
{
    return is_bool() ? bool_ : fallback;
}

double
JsonValue::as_double(double fallback) const
{
    if (!is_number())
        return fallback;
    char *end = nullptr;
    double v = std::strtod(scalar_.c_str(), &end);
    return end == scalar_.c_str() ? fallback : v;
}

int64_t
JsonValue::as_i64(int64_t fallback) const
{
    if (!is_number())
        return fallback;
    // Integral token: exact 64-bit parse; otherwise round-trip the
    // double (fractional values in a tick field are caller bugs).
    if (scalar_.find_first_of(".eE") == std::string::npos) {
        char *end = nullptr;
        long long v = std::strtoll(scalar_.c_str(), &end, 10);
        return end == scalar_.c_str() ? fallback : v;
    }
    return static_cast<int64_t>(as_double(
        static_cast<double>(fallback)));
}

uint64_t
JsonValue::as_u64(uint64_t fallback) const
{
    if (!is_number())
        return fallback;
    if (scalar_.empty() || scalar_[0] == '-')
        return fallback;
    if (scalar_.find_first_of(".eE") == std::string::npos) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(scalar_.c_str(), &end, 10);
        return end == scalar_.c_str() ? fallback : v;
    }
    return static_cast<uint64_t>(as_double(
        static_cast<double>(fallback)));
}

const std::string &
JsonValue::as_string() const
{
    return is_string() ? scalar_ : empty_string();
}

const JsonValue &
JsonValue::operator[](const std::string &key) const
{
    auto it = object_.find(key);
    return it == object_.end() ? null_value() : it->second;
}

bool
JsonValue::has(const std::string &key) const
{
    return object_.count(key) != 0;
}

uint64_t
JsonValue::get_u64(const std::string &key, uint64_t fallback) const
{
    return (*this)[key].as_u64(fallback);
}

int64_t
JsonValue::get_i64(const std::string &key, int64_t fallback) const
{
    return (*this)[key].as_i64(fallback);
}

double
JsonValue::get_double(const std::string &key, double fallback) const
{
    return (*this)[key].as_double(fallback);
}

bool
JsonValue::get_bool(const std::string &key, bool fallback) const
{
    return (*this)[key].as_bool(fallback);
}

std::string
JsonValue::get_string(const std::string &key,
                      const std::string &fallback) const
{
    const JsonValue &v = (*this)[key];
    return v.is_string() ? v.as_string() : fallback;
}

/** Single-pass recursive-descent parser over a string. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    bool
    parse_document(JsonValue &out)
    {
        skip_ws();
        if (!parse_value(out, 0))
            return false;
        skip_ws();
        return pos_ == text_.size(); // no trailing garbage
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    parse_value(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return false;
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{':
            return parse_object(out, depth);
          case '[':
            return parse_array(out, depth);
          case '"':
            out.kind_ = JsonValue::Kind::String;
            return parse_string(out.scalar_);
          case 't':
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = true;
            return consume_literal("true");
          case 'f':
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = false;
            return consume_literal("false");
          case 'n':
            out.kind_ = JsonValue::Kind::Null;
            return consume_literal("null");
          default:
            return parse_number(out);
        }
    }

    bool
    parse_object(JsonValue &out, int depth)
    {
        ++pos_; // '{'
        out.kind_ = JsonValue::Kind::Object;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skip_ws();
            if (peek() != '"')
                return false;
            std::string key;
            if (!parse_string(key))
                return false;
            skip_ws();
            if (peek() != ':')
                return false;
            ++pos_;
            skip_ws();
            JsonValue member;
            if (!parse_value(member, depth + 1))
                return false;
            out.object_.emplace(std::move(key), std::move(member));
            skip_ws();
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    parse_array(JsonValue &out, int depth)
    {
        ++pos_; // '['
        out.kind_ = JsonValue::Kind::Array;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skip_ws();
            JsonValue item;
            if (!parse_value(item, depth + 1))
                return false;
            out.array_.push_back(std::move(item));
            skip_ws();
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    parse_string(std::string &out)
    {
        ++pos_; // '"'
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (pos_ + 1 >= text_.size())
                    return false;
                char esc = text_[pos_ + 1];
                pos_ += 2;
                switch (esc) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return false;
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        int d = hex_digit(text_[pos_ + i]);
                        if (d < 0)
                            return false;
                        cp = cp * 16 + static_cast<unsigned>(d);
                    }
                    pos_ += 4;
                    append_utf8(out, cp);
                    break;
                  }
                  default:
                    return false;
                }
                continue;
            }
            // Raw control characters are invalid JSON, but our own
            // emitters always escape them; reject to catch garbage.
            if (static_cast<unsigned char>(c) < 0x20)
                return false;
            out += c;
            ++pos_;
        }
        return false; // unterminated
    }

    bool
    parse_number(JsonValue &out)
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return false;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        out.kind_ = JsonValue::Kind::Number;
        out.scalar_ = text_.substr(start, pos_ - start);
        return true;
    }

    bool
    consume_literal(const char *lit)
    {
        for (const char *p = lit; *p; ++p, ++pos_) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                return false;
        }
        return true;
    }

    static int
    hex_digit(char c)
    {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        return -1;
    }

    static void
    append_utf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            // Surrogate pairs are not combined (the emitters never
            // write astral-plane text); each half encodes separately.
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    void
    skip_ws()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    const std::string &text_;
    size_t pos_ = 0;
};

bool
JsonValue::parse(const std::string &text, JsonValue &out)
{
    out = JsonValue();
    JsonParser p(text);
    if (p.parse_document(out))
        return true;
    out = JsonValue();
    return false;
}

} // namespace sgms
