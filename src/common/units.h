/**
 * @file
 * Human-readable formatting/parsing of byte sizes and times.
 */

#ifndef SGMS_COMMON_UNITS_H
#define SGMS_COMMON_UNITS_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace sgms
{

/** Format a byte count as "256B", "1K", "8K", "4M", ... */
std::string format_bytes(uint64_t bytes);

/** Parse "256", "256B", "1K", "8k", "2M" into a byte count. */
uint64_t parse_bytes(const std::string &text);

/** Format ticks as a millisecond string, e.g. "1.48 ms". */
std::string format_ms(Tick t, int precision = 2);

/** Format ticks as a microsecond string, e.g. "520 us". */
std::string format_us(Tick t, int precision = 0);

} // namespace sgms

#endif // SGMS_COMMON_UNITS_H
