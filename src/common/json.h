/**
 * @file
 * Minimal JSON value model and recursive-descent parser.
 *
 * The repo writes JSON with hand-rolled emitters (core/json_report.h,
 * obs/chrome_trace.h); this is the matching reader, used by the
 * result cache (exec/result_cache.h) to load persisted blobs back.
 * Parsing never throws and never calls fatal(): a malformed document
 * simply fails to parse, because a corrupted cache file must degrade
 * to a cache miss, not kill the run.
 *
 * Numbers keep their raw token text so 64-bit integers (tick counts
 * in picoseconds) round-trip exactly instead of through a double.
 */

#ifndef SGMS_COMMON_JSON_H
#define SGMS_COMMON_JSON_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sgms
{

/** One parsed JSON value (a tagged union over the six JSON types). */
class JsonValue
{
  public:
    enum class Kind : uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return kind_; }
    bool is_null() const { return kind_ == Kind::Null; }
    bool is_bool() const { return kind_ == Kind::Bool; }
    bool is_number() const { return kind_ == Kind::Number; }
    bool is_string() const { return kind_ == Kind::String; }
    bool is_array() const { return kind_ == Kind::Array; }
    bool is_object() const { return kind_ == Kind::Object; }

    /** Value accessors; wrong-kind access returns the fallback. */
    bool as_bool(bool fallback = false) const;
    double as_double(double fallback = 0.0) const;
    int64_t as_i64(int64_t fallback = 0) const;
    uint64_t as_u64(uint64_t fallback = 0) const;
    const std::string &as_string() const; // "" when not a string

    /** Array element count (0 when not an array). */
    size_t size() const { return array_.size(); }
    const std::vector<JsonValue> &items() const { return array_; }

    /** Object member lookup; null-kind sentinel when missing. */
    const JsonValue &operator[](const std::string &key) const;
    bool has(const std::string &key) const;
    const std::map<std::string, JsonValue> &members() const
    {
        return object_;
    }

    // Typed object-member shorthands (fallback when absent/mistyped).
    uint64_t get_u64(const std::string &key, uint64_t fallback = 0) const;
    int64_t get_i64(const std::string &key, int64_t fallback = 0) const;
    double get_double(const std::string &key,
                      double fallback = 0.0) const;
    bool get_bool(const std::string &key, bool fallback = false) const;
    std::string get_string(const std::string &key,
                           const std::string &fallback = "") const;

    /**
     * Parse @p text into @p out. Returns false (leaving @p out null)
     * on any syntax error, trailing garbage, or over-deep nesting.
     */
    static bool parse(const std::string &text, JsonValue &out);

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::string scalar_; ///< number token or string payload
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;
};

} // namespace sgms

#endif // SGMS_COMMON_JSON_H
