#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace sgms
{

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    uint64_t n = n_ + other.n_;
    double delta = other.mean_ - mean_;
    double mean = mean_ + delta * other.n_ / static_cast<double>(n);
    m2_ = m2_ + other.m2_ +
          delta * delta * n_ * other.n_ / static_cast<double>(n);
    mean_ = mean;
    n_ = n;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

uint64_t
Histogram::count(int64_t key) const
{
    auto it = bins_.find(key);
    return it == bins_.end() ? 0 : it->second;
}

double
Histogram::fraction(int64_t key) const
{
    return total_ ? static_cast<double>(count(key)) / total_ : 0.0;
}

std::vector<std::pair<int64_t, uint64_t>>
Histogram::bins() const
{
    return {bins_.begin(), bins_.end()};
}

int64_t
Histogram::quantile(double q) const
{
    SGMS_ASSERT(q >= 0.0 && q <= 1.0);
    if (total_ == 0)
        return 0;
    uint64_t target = static_cast<uint64_t>(q * total_);
    uint64_t seen = 0;
    for (const auto &[key, cnt] : bins_) {
        seen += cnt;
        if (seen >= target)
            return key;
    }
    return bins_.rbegin()->first;
}

Series
Series::downsampled(size_t max_points) const
{
    if (points.size() <= max_points || max_points < 2)
        return *this;
    Series out;
    out.name = name;
    double step = static_cast<double>(points.size() - 1) /
                  static_cast<double>(max_points - 1);
    for (size_t i = 0; i < max_points; ++i) {
        size_t idx = static_cast<size_t>(i * step + 0.5);
        idx = std::min(idx, points.size() - 1);
        out.points.push_back(points[idx]);
    }
    return out;
}

} // namespace sgms
