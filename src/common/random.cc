#include "common/random.h"

#include <cmath>

namespace sgms
{

ZipfTable::ZipfTable(uint64_t n, double s) : n_(n), skew_(s)
{
    SGMS_ASSERT(n != 0);
    table_.resize(TABLE_SIZE);
    double one_minus_s = 1.0 - s;
    bool near_one = std::fabs(one_minus_s) < 1e-9;
    double top =
        near_one ? 0.0 : std::pow(static_cast<double>(n) + 1.0,
                                  one_minus_s);
    for (size_t i = 0; i < TABLE_SIZE; ++i) {
        // Midpoint of the quantile cell, so the table is unbiased.
        double u = (static_cast<double>(i) + 0.5) / TABLE_SIZE;
        double x;
        if (near_one) {
            x = std::pow(static_cast<double>(n) + 1.0, u);
        } else {
            x = std::pow(u * (top - 1.0) + 1.0, 1.0 / one_minus_s);
        }
        uint64_t r = static_cast<uint64_t>(x) - 1;
        table_[i] = r >= n ? n - 1 : r;
    }
}

uint64_t
Rng::zipf(uint64_t n, double s)
{
    SGMS_ASSERT(n != 0);
    if (n == 1)
        return 0;
    // Inverse-CDF approximation: for s != 1 the CDF of a continuous
    // power law on [1, n+1) is ((x^(1-s) - 1) / ((n+1)^(1-s) - 1)).
    double u = uniform();
    double one_minus_s = 1.0 - s;
    double x;
    if (std::fabs(one_minus_s) < 1e-9) {
        x = std::pow(static_cast<double>(n) + 1.0, u);
    } else {
        double top = std::pow(static_cast<double>(n) + 1.0, one_minus_s);
        x = std::pow(u * (top - 1.0) + 1.0, 1.0 / one_minus_s);
    }
    uint64_t r = static_cast<uint64_t>(x) - 1;
    return r >= n ? n - 1 : r;
}

} // namespace sgms
