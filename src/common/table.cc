#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace sgms
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    SGMS_ASSERT(!headers_.empty());
}

void
Table::add_row(std::vector<std::string> cells)
{
    SGMS_ASSERT(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto rule = [&]() {
        os << '+';
        for (size_t w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto emit = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << cells[c]
               << std::string(widths[c] - cells[c].size(), ' ') << " |";
        }
        os << '\n';
    };

    rule();
    emit(headers_);
    rule();
    for (const auto &row : rows_)
        emit(row);
    rule();
}

namespace
{
std::string
csv_quote(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char ch : s) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}
} // namespace

void
Table::print_csv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << csv_quote(cells[c]);
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::fmt_int(int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
}

std::string
Table::fmt_pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

} // namespace sgms
