/**
 * @file
 * Deterministic executor of a FaultPlan.
 *
 * The injector sits at two boundaries:
 *
 *  - Network::send asks fate() for each injected message. Drops take
 *    effect after the wire stage (the message burned sender CPU, DMA
 *    and wire time before vanishing); corruption after the receive
 *    stage (full delivery cost, payload discarded); duplicates
 *    deliver the same payload twice back-to-back.
 *
 *  - The simulator's server lookup asks server_down() before issuing
 *    a fetch, and any message to or from a node inside an outage
 *    window is dropped at injection.
 *
 * All randomness comes from two xoshiro256** streams seeded from the
 * plan (message fates and retry jitter), consumed in deterministic
 * event order — the same plan and seed reproduce the same run.
 */

#ifndef SGMS_FAULT_FAULT_INJECTOR_H
#define SGMS_FAULT_FAULT_INJECTOR_H

#include <cstdint>

#include "common/random.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"

namespace sgms::fault
{

/** What happens to one injected message. */
enum class MsgFate : uint8_t
{
    Deliver,   ///< normal delivery
    Drop,      ///< lost after the wire stage; never delivered
    Corrupt,   ///< delivered but discarded by the receiver
    Duplicate, ///< delivered twice
};

const char *msg_fate_name(MsgFate f);

class FaultInjector
{
  public:
    /**
     * @param plan    the fault schedule to execute
     * @param metrics optional registry for fault.* counters
     */
    explicit FaultInjector(const FaultPlan &plan,
                           obs::MetricsRegistry *metrics = nullptr);

    const FaultPlan &plan() const { return plan_; }

    /** True if the plan can ever inject anything. */
    bool enabled() const { return enabled_; }

    /**
     * Decide the fate of a message injected at @p now. Messages to
     * or from a node currently inside an outage window are dropped
     * unconditionally; otherwise the seeded per-kind probabilities
     * apply.
     */
    MsgFate fate(Tick now, MsgKind kind, NodeId src, NodeId dst);

    /** True if @p node is inside a scheduled outage at @p now. */
    bool server_down(NodeId node, Tick now) const;

    /**
     * When @p node is down at @p now, the time its current outage
     * ends (TICK_MAX if it never recovers); @p now itself otherwise.
     */
    Tick recovery_time(NodeId node, Tick now) const;

    /** Uniform [0,1) draw from the seeded jitter stream. */
    double jitter_draw() { return jitter_rng_.uniform(); }

    uint64_t dropped() const { return dropped_; }
    uint64_t corrupted() const { return corrupted_; }
    uint64_t duplicated() const { return duplicated_; }

  private:
    FaultPlan plan_;
    bool enabled_;
    Rng fate_rng_;
    Rng jitter_rng_;
    uint64_t dropped_ = 0;
    uint64_t corrupted_ = 0;
    uint64_t duplicated_ = 0;
    obs::Counter *c_dropped_ = nullptr;
    obs::Counter *c_corrupted_ = nullptr;
    obs::Counter *c_duplicated_ = nullptr;
    obs::Counter *c_outage_drops_ = nullptr;
};

} // namespace sgms::fault

#endif // SGMS_FAULT_FAULT_INJECTOR_H
