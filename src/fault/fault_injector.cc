#include "fault/fault_injector.h"

#include <algorithm>

namespace sgms::fault
{

const char *
msg_fate_name(MsgFate f)
{
    switch (f) {
      case MsgFate::Deliver:
        return "deliver";
      case MsgFate::Drop:
        return "drop";
      case MsgFate::Corrupt:
        return "corrupt";
      case MsgFate::Duplicate:
        return "duplicate";
    }
    return "?";
}

FaultInjector::FaultInjector(const FaultPlan &plan,
                             obs::MetricsRegistry *metrics)
    : plan_(plan), enabled_(plan.enabled()),
      // Decorrelate the two streams: fates and jitter must not
      // change each other's sequences as retries come and go.
      fate_rng_(plan.seed), jitter_rng_(plan.seed ^ 0x9e3779b97f4a7c15ULL)
{
    if (metrics) {
        c_dropped_ = &metrics->counter("fault.msgs_dropped");
        c_corrupted_ = &metrics->counter("fault.msgs_corrupted");
        c_duplicated_ = &metrics->counter("fault.msgs_duplicated");
        c_outage_drops_ = &metrics->counter("fault.outage_drops");
    }
}

MsgFate
FaultInjector::fate(Tick now, MsgKind kind, NodeId src, NodeId dst)
{
    if (!enabled_)
        return MsgFate::Deliver;
    if (server_down(src, now) || server_down(dst, now)) {
        ++dropped_;
        if (c_dropped_)
            c_dropped_->inc();
        if (c_outage_drops_)
            c_outage_drops_->inc();
        return MsgFate::Drop;
    }
    size_t k = static_cast<size_t>(kind);
    // One draw per configured hazard, in a fixed order, so a message
    // kind's fate sequence does not depend on other kinds' settings.
    if (plan_.loss_prob[k] > 0.0 &&
        fate_rng_.chance(plan_.loss_prob[k])) {
        ++dropped_;
        if (c_dropped_)
            c_dropped_->inc();
        return MsgFate::Drop;
    }
    if (plan_.corrupt_prob[k] > 0.0 &&
        fate_rng_.chance(plan_.corrupt_prob[k])) {
        ++corrupted_;
        if (c_corrupted_)
            c_corrupted_->inc();
        return MsgFate::Corrupt;
    }
    if (plan_.duplicate_prob > 0.0 &&
        fate_rng_.chance(plan_.duplicate_prob)) {
        ++duplicated_;
        if (c_duplicated_)
            c_duplicated_->inc();
        return MsgFate::Duplicate;
    }
    return MsgFate::Deliver;
}

bool
FaultInjector::server_down(NodeId node, Tick now) const
{
    for (const ServerOutage &o : plan_.outages) {
        if (o.server == node && o.covers(now))
            return true;
    }
    return false;
}

Tick
FaultInjector::recovery_time(NodeId node, Tick now) const
{
    Tick recover = now;
    for (const ServerOutage &o : plan_.outages) {
        if (o.server == node && o.covers(now))
            recover = std::max(recover, o.recover_at);
    }
    return recover;
}

} // namespace sgms::fault
