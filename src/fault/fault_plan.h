/**
 * @file
 * Declarative description of everything that goes wrong in a run.
 *
 * A FaultPlan is a seeded, deterministic schedule of network and
 * server failures: per-message-kind loss and corruption
 * probabilities, duplicate deliveries, and per-server fail/recover
 * windows in simulated time. The plan is pure data — the
 * FaultInjector (fault_injector.h) draws the actual outcomes from a
 * PRNG seeded by the plan, so the same plan + seed reproduces the
 * same faults event-for-event.
 *
 * The RetryPolicy describes how the GMS fetch protocol reacts:
 * per-attempt timeouts derived from the calibrated network model,
 * bounded retries with exponential backoff and seeded jitter, and
 * degradation to the local disk when retries are exhausted or the
 * owning server is down.
 *
 * Both parse from a compact "key=value,key=value" spec, exposed as
 * --faults=SPEC on every tool and as the SGMS_FAULTS environment
 * variable (the flag wins). See parse() for the key list.
 */

#ifndef SGMS_FAULT_FAULT_PLAN_H
#define SGMS_FAULT_FAULT_PLAN_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/params.h"

namespace sgms::fault
{

/** One scheduled outage of a server node, in simulated time. */
struct ServerOutage
{
    NodeId server = 0;          ///< node id (servers are 1..N)
    Tick fail_at = 0;           ///< start of the outage
    Tick recover_at = TICK_MAX; ///< end; TICK_MAX = never recovers

    bool
    covers(Tick t) const
    {
        return t >= fail_at && t < recover_at;
    }
};

/** Seeded fault schedule; all-zero (the default) means "off". */
struct FaultPlan
{
    /** Seed of the injector's PRNG streams. */
    uint64_t seed = 1;

    /** Per-kind probability a message is lost on the wire. */
    double loss_prob[kMsgKindCount] = {};

    /**
     * Per-kind probability a message arrives corrupted: it occupies
     * every stage and pays the receive cost, but the receiver
     * discards the payload, so the data never lands.
     */
    double corrupt_prob[kMsgKindCount] = {};

    /** Probability a delivered message is delivered a second time. */
    double duplicate_prob = 0.0;

    /** Scheduled server fail/recover windows. */
    std::vector<ServerOutage> outages;

    /** True if any probability is nonzero or any outage scheduled. */
    bool enabled() const;

    /** Set the loss probability of every message kind. */
    void set_loss(double p);

    /** Set the corruption probability of every message kind. */
    void set_corrupt(double p);

    /**
     * Parse a comma-separated "key=value" spec. Keys:
     *   seed=N                injector PRNG seed
     *   loss=P                loss probability, all kinds
     *   loss-<kind>=P         per-kind loss (request, demand,
     *                         background, putpage)
     *   corrupt=P             corruption probability, all kinds
     *   corrupt-<kind>=P      per-kind corruption
     *   duplicate=P           duplicate-delivery probability
     *   down=S:F[:R]          server node S fails at F ms and
     *                         recovers at R ms (omitted R = never);
     *                         repeatable
     * fatal() on unknown keys or malformed values.
     */
    static FaultPlan parse(const std::string &spec);
};

/** Timeout / retry / degradation policy for reliable fetches. */
struct RetryPolicy
{
    /** Total tries per fetch (first attempt + retries). */
    uint32_t max_attempts = 4;

    /**
     * Per-attempt timeout = multiplier x the calibrated analytic
     * latency of the attempt's transfer plan (NetParams::
     * demand_fetch_latency), clamped below by min_timeout. The
     * margin absorbs queueing behind other traffic without treating
     * ordinary congestion as loss.
     */
    double timeout_multiplier = 3.0;
    Tick min_timeout = ticks::from_us(500);

    /** Exponential backoff base between attempts. */
    double backoff_base = 2.0;

    /**
     * Jitter: the backoff delay is scaled by a uniform draw in
     * [1 - jitter_frac, 1 + jitter_frac] from the injector's seeded
     * stream, so retries are de-synchronized but reproducible.
     */
    double jitter_frac = 0.25;

    /**
     * How long a server stays marked failed in the GMS directory
     * after a fetch from it exhausted its retries (faults on its
     * pages go straight to disk until then).
     */
    Tick quarantine = ticks::from_ms(50);

    /** Per-attempt timeout for a plan of @p bytes total. */
    Tick timeout_for(const NetParams &net, uint32_t bytes) const;

    /**
     * Backoff delay before retry attempt @p attempt (2 = first
     * retry). @p jitter_u is a uniform [0,1) draw.
     */
    Tick backoff_delay(uint32_t attempt, Tick base_timeout,
                       double jitter_u) const;
};

} // namespace sgms::fault

#endif // SGMS_FAULT_FAULT_PLAN_H
