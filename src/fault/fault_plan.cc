#include "fault/fault_plan.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace sgms::fault
{

namespace
{

/** Map a per-kind key suffix onto a MsgKind, or -1 for "all". */
int
kind_of_suffix(const std::string &suffix)
{
    if (suffix.empty())
        return -1;
    for (size_t k = 0; k < kMsgKindCount; ++k) {
        if (suffix == msg_kind_name(static_cast<MsgKind>(k)))
            return static_cast<int>(k);
    }
    fatal("fault plan: unknown message kind '%s'", suffix.c_str());
    return -1;
}

double
parse_prob(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    double p = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end || p < 0.0 || p > 1.0) {
        fatal("fault plan: bad probability '%s=%s' (need 0..1)",
              key.c_str(), value.c_str());
    }
    return p;
}

uint64_t
parse_u64(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    uint64_t v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end)
        fatal("fault plan: bad integer '%s=%s'", key.c_str(),
              value.c_str());
    return v;
}

/** "S:F[:R]" with F/R in fractional milliseconds. */
ServerOutage
parse_outage(const std::string &value)
{
    ServerOutage o;
    size_t c1 = value.find(':');
    if (c1 == std::string::npos)
        fatal("fault plan: bad outage '%s' (need server:fail[:recover])",
              value.c_str());
    size_t c2 = value.find(':', c1 + 1);
    o.server = static_cast<NodeId>(
        parse_u64("down", value.substr(0, c1)));
    std::string fail = value.substr(
        c1 + 1, c2 == std::string::npos ? std::string::npos
                                        : c2 - c1 - 1);
    char *end = nullptr;
    double fail_ms = std::strtod(fail.c_str(), &end);
    if (end == fail.c_str() || *end || fail_ms < 0)
        fatal("fault plan: bad outage start '%s'", value.c_str());
    o.fail_at = ticks::from_ms(fail_ms);
    if (c2 != std::string::npos) {
        std::string rec = value.substr(c2 + 1);
        double rec_ms = std::strtod(rec.c_str(), &end);
        if (end == rec.c_str() || *end || rec_ms < fail_ms)
            fatal("fault plan: bad outage recovery '%s'",
                  value.c_str());
        o.recover_at = ticks::from_ms(rec_ms);
    }
    return o;
}

} // namespace

bool
FaultPlan::enabled() const
{
    if (duplicate_prob > 0.0 || !outages.empty())
        return true;
    for (size_t k = 0; k < kMsgKindCount; ++k) {
        if (loss_prob[k] > 0.0 || corrupt_prob[k] > 0.0)
            return true;
    }
    return false;
}

void
FaultPlan::set_loss(double p)
{
    std::fill(loss_prob, loss_prob + kMsgKindCount, p);
}

void
FaultPlan::set_corrupt(double p)
{
    std::fill(corrupt_prob, corrupt_prob + kMsgKindCount, p);
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        std::string tok = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        pos = comma == std::string::npos ? spec.size() : comma + 1;
        if (tok.empty())
            continue;
        size_t eq = tok.find('=');
        if (eq == std::string::npos)
            fatal("fault plan: token '%s' is not key=value",
                  tok.c_str());
        std::string key = tok.substr(0, eq);
        std::string value = tok.substr(eq + 1);
        if (key == "seed") {
            plan.seed = parse_u64(key, value);
        } else if (key == "loss") {
            plan.set_loss(parse_prob(key, value));
        } else if (key == "corrupt") {
            plan.set_corrupt(parse_prob(key, value));
        } else if (key == "duplicate") {
            plan.duplicate_prob = parse_prob(key, value);
        } else if (key == "down") {
            plan.outages.push_back(parse_outage(value));
        } else if (key.rfind("loss-", 0) == 0) {
            int k = kind_of_suffix(key.substr(5));
            plan.loss_prob[k] = parse_prob(key, value);
        } else if (key.rfind("corrupt-", 0) == 0) {
            int k = kind_of_suffix(key.substr(8));
            plan.corrupt_prob[k] = parse_prob(key, value);
        } else {
            fatal("fault plan: unknown key '%s'", key.c_str());
        }
    }
    return plan;
}

Tick
RetryPolicy::timeout_for(const NetParams &net, uint32_t bytes) const
{
    Tick expected = net.demand_fetch_latency(bytes);
    Tick timeout =
        static_cast<Tick>(timeout_multiplier *
                          static_cast<double>(expected));
    return std::max(timeout, min_timeout);
}

Tick
RetryPolicy::backoff_delay(uint32_t attempt, Tick base_timeout,
                           double jitter_u) const
{
    SGMS_ASSERT(attempt >= 2);
    double factor = 1.0;
    for (uint32_t i = 2; i < attempt; ++i)
        factor *= backoff_base;
    double scale =
        1.0 + jitter_frac * (2.0 * jitter_u - 1.0);
    double delay =
        static_cast<double>(base_timeout) * factor * scale;
    return std::max<Tick>(static_cast<Tick>(delay), 0);
}

} // namespace sgms::fault
