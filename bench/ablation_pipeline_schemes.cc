/**
 * @file
 * Section 4.3's pipelining-scheme exploration: the basic +1/-1
 * scheme vs pipelining every subpage, a doubled follow-on transfer,
 * and a position-dependent doubled initial transfer. The paper
 * found "all of the schemes showed various amounts of improvement
 * relative to the basic scheme" depending on configuration; this
 * bench reports them side by side, plus the prototype-controller
 * variant (68-91 us interrupt per pipelined subpage), for which
 * pipelining must NOT beat eager fetch.
 */

#include "bench/bench_common.h"

using namespace sgms;

int
main()
{
    double scale = scale_from_env(1.0);
    bench::banner("Ablation", "subpage pipelining schemes (section 4.3)",
                  scale);

    for (uint32_t sp : {1024u, 512u}) {
        char label[64];
        std::snprintf(label, sizeof(label), "%s subpages",
                      format_bytes(sp).c_str());
        bench::section(label);

        Experiment ex;
        ex.app = "modula3";
        ex.scale = scale;
        ex.mem = MemConfig::Half;
        ex.subpage_size = sp;

        const std::vector<const char *> schemes = {
            "pipelining", "pipelining-all", "pipelining-doubled",
            "pipelining-initial2x"};
        std::vector<Experiment> points;
        ex.policy = "fullpage";
        points.push_back(ex);
        ex.policy = "eager";
        points.push_back(ex);
        for (const char *pol : schemes) {
            ex.policy = pol;
            points.push_back(ex);
        }
        // Prototype controller: per-subpage interrupt cost. With
        // the basic +-1 scheme only two extra interrupts are paid;
        // pipelining every subpage pays one per subpage, which is
        // the configuration the paper's "does not outperform eager"
        // statement refers to.
        ex.base.net.pipelined_recv_fixed = ticks::from_us(60);
        ex.base.net.pipelined_recv_per_byte = ticks::from_ns(31);
        ex.policy = "pipelining";
        points.push_back(ex);
        ex.policy = "pipelining-all";
        points.push_back(ex);

        std::vector<SimResult> results = bench::run_batch(points);
        const SimResult &base = results[0];
        const SimResult &eager = results[1];

        Table t({"scheme", "runtime (ms)", "vs p_8192", "vs eager",
                 "page_wait (ms)"});
        auto add = [&](const char *name, const SimResult &r) {
            t.add_row({name, format_ms(r.runtime),
                       Table::fmt_pct(r.reduction_vs(base)),
                       Table::fmt_pct(r.reduction_vs(eager)),
                       format_ms(r.page_wait)});
        };
        add("eager (no pipelining)", eager);
        for (size_t k = 0; k < schemes.size(); ++k)
            add(schemes[k], results[2 + k]);
        add("pipelining (AN2 proto ctrl)",
            results[2 + schemes.size()]);
        add("pipelining-all (AN2 proto ctrl)",
            results[3 + schemes.size()]);

        t.print(std::cout);
        std::printf("expected: all smart-controller schemes improve "
                    "on eager; the AN2\nprototype controller's "
                    "interrupt cost erases the pipelining win\n"
                    "(paper: 'on our current prototype, software "
                    "pipelining does not\noutperform eager fullpage "
                    "fetch').\n");
    }
    return 0;
}
