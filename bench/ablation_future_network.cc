/**
 * @file
 * Tests the paper's closing prediction: "while for current
 * technological parameters our simulations indicate that the optimal
 * subpage size is about 2K, we might expect that size to decrease in
 * the future ... as the ratio of network speed to memory speed
 * increases."
 *
 * We sweep the subpage size under the calibrated AN2 (155 Mb/s), a
 * 4x network (OC-12-class) and a 16x network (~2.5 Gb/s), with fixed
 * costs improving more slowly (2x / 4x), and report the best subpage
 * size for each.
 */

#include "bench/bench_common.h"

using namespace sgms;

int
main()
{
    double scale = scale_from_env(1.0);
    bench::banner("Ablation",
                  "optimal subpage size vs network speed "
                  "(modula3, 1/2-mem)",
                  scale);

    struct Net
    {
        const char *name;
        NetParams params;
    };
    const Net nets[] = {
        {"AN2 155Mb/s (paper)", NetParams::an2()},
        {"4x bandwidth, 2x fixed", NetParams::future(4, 2)},
        {"16x bandwidth, 4x fixed", NetParams::future(16, 4)},
    };

    const std::vector<uint32_t> sp_sizes = {4096, 2048, 1024, 512,
                                            256};
    std::vector<Experiment> points;
    for (const auto &net : nets) {
        Experiment ex;
        ex.app = "modula3";
        ex.scale = scale;
        ex.mem = MemConfig::Half;
        ex.base.net = net.params;
        ex.policy = "fullpage";
        points.push_back(ex);
        ex.policy = "eager";
        for (uint32_t sp : sp_sizes) {
            ex.subpage_size = sp;
            points.push_back(ex);
        }
    }
    std::vector<SimResult> results = bench::run_batch(points);

    const size_t per_net = 1 + sp_sizes.size();
    for (size_t n = 0; n < std::size(nets); ++n) {
        bench::section(nets[n].name);
        const SimResult &base = results[n * per_net];

        Table t({"config", "runtime (ms)", "vs p_8192"});
        t.add_row({points[n * per_net].label(),
                   format_ms(base.runtime), "0%"});
        uint32_t best_size = 8192;
        Tick best_runtime = base.runtime;
        for (size_t k = 0; k < sp_sizes.size(); ++k) {
            const SimResult &r = results[n * per_net + 1 + k];
            t.add_row({points[n * per_net + 1 + k].label(),
                       format_ms(r.runtime),
                       Table::fmt_pct(r.reduction_vs(base))});
            if (r.runtime < best_runtime) {
                best_runtime = r.runtime;
                best_size = sp_sizes[k];
            }
        }
        t.print(std::cout);
        std::printf("best subpage size: %s\n",
                    format_bytes(best_size).c_str());
    }
    std::printf(
        "\nreading the result: the pure-latency analysis agrees with "
        "the paper's\nprediction (the 8K/256B fetch-latency ratio "
        "grows with bandwidth, making\nsmall subpages relatively "
        "cheaper — see FutureNetwork tests), but on\nthese traces "
        "the optimum stays pinned near 2K by spatial locality\n"
        "(record accesses crossing subpage boundaries), while the "
        "overall\nsubpage benefit compresses as every fetch becomes "
        "fixed-cost-bound.\nThe paper offered its 'size will "
        "decrease' expectation without data;\nthis is what our "
        "model says actually happens.\n");
    return 0;
}
