/**
 * @file
 * Tests the paper's closing prediction: "while for current
 * technological parameters our simulations indicate that the optimal
 * subpage size is about 2K, we might expect that size to decrease in
 * the future ... as the ratio of network speed to memory speed
 * increases."
 *
 * We sweep the subpage size under the calibrated AN2 (155 Mb/s), a
 * 4x network (OC-12-class) and a 16x network (~2.5 Gb/s), with fixed
 * costs improving more slowly (2x / 4x), and report the best subpage
 * size for each.
 */

#include "bench/bench_common.h"

using namespace sgms;

int
main()
{
    double scale = scale_from_env(1.0);
    bench::banner("Ablation",
                  "optimal subpage size vs network speed "
                  "(modula3, 1/2-mem)",
                  scale);

    struct Net
    {
        const char *name;
        NetParams params;
    };
    const Net nets[] = {
        {"AN2 155Mb/s (paper)", NetParams::an2()},
        {"4x bandwidth, 2x fixed", NetParams::future(4, 2)},
        {"16x bandwidth, 4x fixed", NetParams::future(16, 4)},
    };

    for (const auto &net : nets) {
        bench::section(net.name);
        Experiment ex;
        ex.app = "modula3";
        ex.scale = scale;
        ex.mem = MemConfig::Half;
        ex.base.net = net.params;
        ex.policy = "fullpage";
        SimResult base = bench::run_labeled(ex);

        Table t({"config", "runtime (ms)", "vs p_8192"});
        t.add_row({ex.label(), format_ms(base.runtime), "0%"});
        uint32_t best_size = 8192;
        Tick best_runtime = base.runtime;
        ex.policy = "eager";
        for (uint32_t sp : {4096u, 2048u, 1024u, 512u, 256u}) {
            ex.subpage_size = sp;
            SimResult r = bench::run_labeled(ex);
            t.add_row({ex.label(), format_ms(r.runtime),
                       Table::fmt_pct(r.reduction_vs(base))});
            if (r.runtime < best_runtime) {
                best_runtime = r.runtime;
                best_size = sp;
            }
        }
        t.print(std::cout);
        std::printf("best subpage size: %s\n",
                    format_bytes(best_size).c_str());
    }
    std::printf(
        "\nreading the result: the pure-latency analysis agrees with "
        "the paper's\nprediction (the 8K/256B fetch-latency ratio "
        "grows with bandwidth, making\nsmall subpages relatively "
        "cheaper — see FutureNetwork tests), but on\nthese traces "
        "the optimum stays pinned near 2K by spatial locality\n"
        "(record accesses crossing subpage boundaries), while the "
        "overall\nsubpage benefit compresses as every fetch becomes "
        "fixed-cost-bound.\nThe paper offered its 'size will "
        "decrease' expectation without data;\nthis is what our "
        "model says actually happens.\n");
    return 0;
}
