/**
 * @file
 * Regenerates Figure 5: sorted per-fault waiting times for different
 * subpage sizes (Modula-3, 1/2 memory, eager fullpage fetch).
 *
 * Each curve has three regions the paper identifies:
 *  - lower-right horizontal segment: best case — the fault waited
 *    only for its subpage transfer (right intercept = the subpage
 *    latency of Table 2);
 *  - upper-left horizontal segment: worst case — the fault stalled
 *    until the full page arrived (left intercept = fullpage time);
 *  - a small middle region with partial overlap.
 */

#include "bench/bench_common.h"

#include <algorithm>

using namespace sgms;

int
main(int argc, char **argv)
{
    obs::ObsSession obs = bench::obs_session(argc, argv);
    double scale = scale_from_env(1.0);
    bench::banner("Figure 5",
                  "sorted per-fault waiting times (Modula-3, 1/2-mem)",
                  scale);

    Experiment ex;
    ex.app = "modula3";
    ex.scale = scale;
    ex.mem = MemConfig::Half;

    LinePlot plot("per-fault total waiting time, sorted descending",
                  "fault rank", "wait (ms)");
    Table t({"config", "faults", "right intercept (ms)",
             "left intercept (ms)", "best-case seg", "worst-case seg",
             "middle"});

    auto run_one = [&](const std::string &policy, uint32_t sp) {
        ex.policy = policy;
        ex.subpage_size = sp;
        SimResult r = bench::run_labeled(ex, obs);
        std::vector<Tick> waits;
        waits.reserve(r.faults.size());
        for (const auto &f : r.faults)
            waits.push_back(f.total_wait());
        std::sort(waits.rbegin(), waits.rend());

        Series s;
        s.name = ex.label();
        for (size_t i = 0; i < waits.size(); ++i)
            s.add(static_cast<double>(i), ticks::to_ms(waits[i]));
        plot.add(s.downsampled(160));

        if (waits.empty())
            return;
        Tick right = waits.back();
        Tick left = waits.front();
        size_t best = 0, worst = 0;
        for (Tick w : waits) {
            if (w <= right * 1.15)
                ++best;
            if (w >= left * 0.85)
                ++worst;
        }
        double n = static_cast<double>(waits.size());
        double middle = std::max(0.0, 1.0 - best / n - worst / n);
        t.add_row({ex.label(), Table::fmt_int(waits.size()),
                   Table::fmt(ticks::to_ms(right), 2),
                   Table::fmt(ticks::to_ms(left), 2),
                   Table::fmt_pct(best / n), Table::fmt_pct(worst / n),
                   Table::fmt_pct(middle)});
    };

    run_one("fullpage", 8192);
    for (uint32_t sp : {4096u, 2048u, 1024u, 512u})
        run_one("eager", sp);

    t.print(std::cout);
    plot.print(std::cout, 76, 20);
    std::printf(
        "paper: right intercepts fall with subpage size (Table 2 "
        "subpage latencies),\n"
        "left intercepts sit at the fullpage time, and the best-case "
        "segment\nshrinks as subpages get smaller.\n");

    bench::section("csv");
    plot.print_csv(std::cout);
    return 0;
}
