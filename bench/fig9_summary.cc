/**
 * @file
 * Regenerates Figure 9: reduction in execution time for eager
 * fullpage fetch and subpage pipelining across all five
 * applications (1/2 memory, 1K subpages), plus section 4.4's
 * I/O-overlap share measurements.
 *
 * Paper bands: eager 20-44%, pipelining 30-54%; the I/O-overlap
 * share of the speedup ranges from 53% (Atom) to 83% (gdb); the
 * relative gain of pipelining is larger for the applications that
 * benefit least from eager fetch.
 */

#include "bench/bench_common.h"

using namespace sgms;

int
main()
{
    double scale = scale_from_env(1.0);
    bench::banner("Figure 9",
                  "runtime reduction, all applications "
                  "(1/2-mem, 1K subpages)",
                  scale);

    Table t({"app", "p_8192 (ms)", "eager", "pipelining",
             "io-overlap share", "faults"});
    BarChart chart("% reduction vs p_8192", "%");

    // The full app x policy grid as one batch: SGMS_JOBS=N runs the
    // 15 points concurrently with identical output.
    std::vector<Experiment> points;
    for (const auto &app : app_names()) {
        Experiment ex;
        ex.app = app;
        ex.scale = scale;
        ex.mem = MemConfig::Half;
        ex.subpage_size = 1024;
        for (const char *policy :
             {"fullpage", "eager", "pipelining"}) {
            ex.policy = policy;
            points.push_back(ex);
        }
    }
    std::vector<SimResult> batch = bench::run_batch(points);

    double min_eff = 1, max_eff = 0, min_pipe = 1, max_pipe = 0;
    size_t next = 0;
    for (const auto &app : app_names()) {
        SimResult &base = batch[next++];
        SimResult &eager = batch[next++];
        SimResult &pipe = batch[next++];

        double eff = eager.reduction_vs(base);
        double pr = pipe.reduction_vs(base);
        min_eff = std::min(min_eff, eff);
        max_eff = std::max(max_eff, eff);
        min_pipe = std::min(min_pipe, pr);
        max_pipe = std::max(max_pipe, pr);

        t.add_row({app, format_ms(base.runtime),
                   Table::fmt_pct(eff), Table::fmt_pct(pr),
                   Table::fmt_pct(eager.io_overlap_share()),
                   Table::fmt_int(base.page_faults)});
        chart.add(app + " eager", eff * 100);
        chart.add(app + " pipe ", pr * 100);
    }

    t.print(std::cout);
    chart.print(std::cout, 50);
    std::printf("eager range      : %.0f%%..%.0f%%  (paper: 20%%..44%%)\n",
                min_eff * 100, max_eff * 100);
    std::printf("pipelining range : %.0f%%..%.0f%%  (paper: 30%%..54%%)\n",
                min_pipe * 100, max_pipe * 100);
    std::printf("io-overlap share : paper 53%% (atom) .. 83%% (gdb)\n");
    return 0;
}
