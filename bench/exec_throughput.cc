/**
 * @file
 * Execution-engine throughput: points/sec for the same experiment
 * grid run three ways —
 *
 *   serial     jobs=1, cache off (the historical run_sweep path)
 *   parallel   jobs=N, cache off (work-stealing pool, deterministic
 *              merge; N = SGMS_JOBS or all hardware threads)
 *   processes  workers=N, cache off (forked fleet + pipe IPC)
 *   warm-cache jobs=N, every point served from the result cache
 *
 * Verifies along the way that all four produce byte-identical
 * result blobs and json_report output, and that the warm pass
 * simulates zero points. Then sweeps the parallelism degree for both
 * the thread pool and the process fleet, recording a points/sec
 * scaling curve. Emits a machine-readable summary (default
 * results/BENCH_exec.json) to track the perf trajectory in CI.
 *
 * Usage: exec_throughput [--scale=S] [--jobs=N] [--out=FILE]
 *                        [--keep-cache-dir=DIR]
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "bench/bench_common.h"
#include "core/json_report.h"
#include "core/sweep.h"
#include "exec/result_codec.h"
#include "obs/metrics.h"

using namespace sgms;

namespace
{

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::string
blobs_of(const std::vector<SimResult> &results)
{
    std::ostringstream os;
    for (const auto &r : results)
        exec::write_result_blob(os, r);
    return os.str();
}

std::string
report_of(const std::vector<SimResult> &results)
{
    std::ostringstream os;
    write_results_json(os, results, /*include_faults=*/true);
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    // Default scale keeps the 28-point grid CI-sized; SGMS_SCALE or
    // --scale raise it for steadier numbers on a quiet box.
    double scale = opts.get_double("scale", scale_from_env(0.1));
    unsigned jobs = static_cast<unsigned>(opts.get_u64(
        "jobs", env_u64("SGMS_JOBS", 0)));
    if (jobs == 0)
        jobs = exec::ThreadPool::hardware_workers();
    if (jobs < 2)
        jobs = 2; // exercise the pool even on a 1-core box
    std::string out_path = opts.get("out", "results/BENCH_exec.json");

    bench::banner("EXEC", "engine throughput: serial vs parallel vs "
                          "warm cache",
                  scale);

    SweepSpec spec;
    spec.apps = {"modula3", "gdb"};
    spec.policies = {"fullpage", "eager", "pipelining"};
    spec.subpage_sizes = {512, 1024, 2048};
    spec.mems = {MemConfig::Half, MemConfig::Quarter};
    spec.scale = scale;
    std::vector<Experiment> points = exec::expand_sweep(spec);
    std::printf("grid: %zu points, %u workers\n", points.size(),
                jobs);

    // Hermetic cache directory unless the caller wants to keep one.
    std::string cache_dir = opts.get("keep-cache-dir", "");
    bool scratch_cache = cache_dir.empty();
    if (scratch_cache) {
        cache_dir = (std::filesystem::temp_directory_path() /
                     ("sgms-exec-bench-" +
                      std::to_string(::getpid())))
                        .string();
    }

    bench::section("serial (jobs=1, cache off)");
    exec::ExecOptions serial_eo;
    serial_eo.jobs = 1;
    exec::Engine serial_engine(serial_eo);
    auto t0 = std::chrono::steady_clock::now();
    auto serial = serial_engine.run_all(points);
    double serial_s = seconds_since(t0);
    std::printf("%.2f s, %.2f points/s\n", serial_s,
                points.size() / serial_s);

    bench::section("parallel (cache off)");
    exec::ExecOptions par_eo;
    par_eo.jobs = jobs;
    exec::Engine par_engine(par_eo);
    t0 = std::chrono::steady_clock::now();
    auto parallel = par_engine.run_all(points);
    double parallel_s = seconds_since(t0);
    std::printf("%.2f s, %.2f points/s (%.2fx serial)\n", parallel_s,
                points.size() / parallel_s, serial_s / parallel_s);

    bench::section("processes (cache off)");
    exec::ExecOptions proc_eo;
    proc_eo.workers = jobs;
    exec::Engine proc_engine(proc_eo);
    t0 = std::chrono::steady_clock::now();
    auto procs = proc_engine.run_all(points);
    double procs_s = seconds_since(t0);
    exec::ExecStats proc_stats = proc_engine.stats();
    std::printf("%.2f s, %.2f points/s (%.2fx serial), "
                "%llu degraded\n",
                procs_s, points.size() / procs_s,
                serial_s / procs_s,
                static_cast<unsigned long long>(
                    proc_stats.points_degraded));

    bench::section("warm cache");
    exec::ExecOptions cache_eo;
    cache_eo.jobs = jobs;
    cache_eo.cache_enabled = true;
    cache_eo.cache_dir = cache_dir;
    {
        exec::Engine cold(cache_eo); // populate
        cold.run_all(points);
    }
    exec::Engine warm_engine(cache_eo);
    t0 = std::chrono::steady_clock::now();
    auto warm = warm_engine.run_all(points);
    double warm_s = seconds_since(t0);
    exec::ExecStats warm_stats = warm_engine.stats();
    std::printf("%.2f s, %.2f points/s (%.2fx serial), "
                "%llu/%zu points from cache\n",
                warm_s, points.size() / warm_s, serial_s / warm_s,
                static_cast<unsigned long long>(
                    warm_stats.points_cached),
                points.size());

    bool identical = blobs_of(serial) == blobs_of(parallel) &&
                     blobs_of(serial) == blobs_of(procs) &&
                     report_of(serial) == report_of(parallel) &&
                     report_of(serial) == report_of(procs) &&
                     report_of(serial) == report_of(warm) &&
                     proc_stats.points_degraded == 0;
    bool all_cached = warm_stats.points_cached == points.size() &&
                      warm_stats.points_run == 0;
    std::printf("byte-identical results (threads+processes): %s\n",
                identical ? "yes" : "NO");
    std::printf("warm pass simulated zero points: %s\n",
                all_cached ? "yes" : "NO");

    // Scaling curve: points/sec against the degree of parallelism,
    // for both execution modes. Stops at the fleet size used above.
    bench::section("scaling (points/s vs parallelism)");
    struct ScalePoint
    {
        const char *mode;
        unsigned n;
        double secs;
    };
    std::vector<ScalePoint> curve;
    Table st({"mode", "n", "seconds", "points/s", "speedup"});
    for (unsigned n = 1; n <= jobs; n *= 2) {
        for (const char *mode : {"threads", "processes"}) {
            exec::ExecOptions eo;
            if (std::string(mode) == "threads")
                eo.jobs = n;
            else
                eo.workers = n;
            exec::Engine engine(eo);
            t0 = std::chrono::steady_clock::now();
            auto r = engine.run_all(points);
            double secs = seconds_since(t0);
            identical = identical && blobs_of(r) == blobs_of(serial);
            curve.push_back({mode, n, secs});
            st.add_row({mode, Table::fmt_int(n),
                        Table::fmt(secs, 2),
                        Table::fmt(points.size() / secs, 2),
                        Table::fmt(serial_s / secs, 2) + "x"});
        }
    }
    st.print(std::cout);

    bench::section("engine metrics");
    obs::print_metrics(std::cout, par_engine.metrics_snapshot());
    obs::print_metrics(std::cout, proc_engine.metrics_snapshot());

    if (scratch_cache) {
        std::error_code ec;
        std::filesystem::remove_all(cache_dir, ec);
    }

    std::ofstream out(out_path);
    if (out) {
        char buf[1024];
        std::snprintf(
            buf, sizeof(buf),
            "{\"bench\":\"exec_throughput\",\"points\":%zu,"
            "\"scale\":%g,\"jobs\":%u,"
            "\"serial_s\":%.4f,\"parallel_s\":%.4f,"
            "\"processes_s\":%.4f,\"warm_cache_s\":%.4f,"
            "\"serial_pps\":%.3f,\"parallel_pps\":%.3f,"
            "\"processes_pps\":%.3f,\"warm_cache_pps\":%.3f,"
            "\"parallel_speedup\":%.3f,\"processes_speedup\":%.3f,"
            "\"warm_cache_speedup\":%.3f,"
            "\"identical\":%s,\"warm_all_cached\":%s,"
            "\"scaling\":[",
            points.size(), scale, jobs, serial_s, parallel_s,
            procs_s, warm_s, points.size() / serial_s,
            points.size() / parallel_s, points.size() / procs_s,
            points.size() / warm_s, serial_s / parallel_s,
            serial_s / procs_s, serial_s / warm_s,
            identical ? "true" : "false",
            all_cached ? "true" : "false");
        out << buf;
        for (size_t i = 0; i < curve.size(); ++i) {
            std::snprintf(buf, sizeof(buf),
                          "%s{\"mode\":\"%s\",\"n\":%u,"
                          "\"seconds\":%.4f,\"pps\":%.3f}",
                          i ? "," : "", curve[i].mode, curve[i].n,
                          curve[i].secs,
                          points.size() / curve[i].secs);
            out << buf;
        }
        out << "]}\n";
        std::printf("wrote %s\n", out_path.c_str());
    } else {
        warn("cannot write %s", out_path.c_str());
    }

    return (identical && all_cached) ? 0 : 1;
}
