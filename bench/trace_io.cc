/**
 * @file
 * Binary trace I/O: bake cost, startup-to-first-ref latency, and
 * replay throughput for the zero-copy SGMB pipeline —
 *
 *   bake      streaming the synthetic generator to a content-named
 *             SGMB file (trace store mapped tier, trace/binfmt.h):
 *             refs/sec written, including the fsync-free tmp+rename
 *   startup   time from "I want this trace" to the first reference
 *             delivered, heap tier (generate + materialize the whole
 *             trace up front) vs mapped tier (open + mmap a pre-baked
 *             file). The mapped tier's point: a pre-baked sweep
 *             starts replaying in microseconds instead of seconds
 *   replay    drain rate through next_batch: mmap cold (first pass
 *             faults the file in through the page cache) vs warm,
 *             next to heap replay and raw generation for reference
 *
 * The headline is startup_speedup (heap startup / mmap startup); the
 * default trace is 10M+ references so the number reflects real sweep
 * startup, and scripts/check.sh fails its perf smoke when the
 * speedup drops below 5x. JSON summary goes to
 * results/BENCH_trace_io.json.
 *
 * Usage: trace_io [--app=NAME] [--scale=S] [--seed=N] [--dir=DIR]
 *                 [--out=FILE]
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bench/bench_common.h"
#include "trace/apps.h"
#include "trace/binfmt.h"
#include "trace/mmap_trace.h"
#include "trace/trace_store.h"

using namespace sgms;

namespace
{

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Drain @p src to completion via next_batch; returns refs/sec. */
double
drain_rate(TraceSource &src)
{
    TraceEvent batch[512];
    uint64_t refs = 0;
    uint64_t sink = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (;;) {
        size_t n = src.next_batch(batch, 512);
        if (n == 0)
            break;
        refs += n;
        sink ^= batch[n - 1].addr;
    }
    double secs = seconds_since(t0);
    SGMS_ASSERT(sink != 1); // keep the reads alive
    return static_cast<double>(refs) / secs;
}

/**
 * Seconds from requesting (app, scale, seed) through the trace store
 * to the first reference coming back. The store is cleared first, so
 * this is what a fresh process pays before simulation can start.
 */
double
startup_to_first_ref(const std::string &app, double scale,
                     uint64_t seed)
{
    trace_store_clear();
    TraceEvent ev;
    auto t0 = std::chrono::steady_clock::now();
    auto trace = make_stored_app_trace(app, scale, seed);
    size_t n = trace->next_batch(&ev, 1);
    double secs = seconds_since(t0);
    SGMS_ASSERT(n == 1);
    return secs;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    std::string app = opts.get("app", "modula3");
    // modula3 is ~87M refs at scale 1.0; 0.15 keeps the startup
    // measurement above the 10M-reference floor while the bench
    // still finishes in seconds.
    double scale = opts.get_double("scale", scale_from_env(0.15));
    uint64_t seed = opts.get_u64("seed", 1);
    std::string dir =
        opts.get("dir", env_string("SGMS_TRACE_DIR", ".sgms-traces"));
    std::string out_path =
        opts.get("out", "results/BENCH_trace_io.json");

    bench::banner("TRACE_IO",
                  "binary trace pipeline: bake, startup, replay",
                  scale);

    bench::section("bake (stream generator -> SGMB file)");
    std::string path = baked_trace_path(dir, app, scale, seed);
    std::filesystem::remove(path); // measure a true cold bake
    auto t0 = std::chrono::steady_clock::now();
    bake_app_trace(app, scale, seed, dir);
    double bake_secs = seconds_since(t0);
    BinTraceHeader hdr;
    std::string error;
    if (!read_bin_header(path, hdr, error))
        fatal("baked file '%s' failed validation: %s", path.c_str(),
              error.c_str());
    double bake_ps = static_cast<double>(hdr.ref_count) / bake_secs;
    std::printf("%llu refs in %.2f s (%.0f refs/s) -> %s\n",
                static_cast<unsigned long long>(hdr.ref_count),
                bake_secs, bake_ps, path.c_str());
    if (hdr.ref_count < 10'000'000)
        warn("trace under 10M refs; raise --scale for a "
             "representative startup measurement");

    bench::section("startup-to-first-ref: heap vs mapped tier");
    trace_store_set_dir("");
    double startup_heap_s = startup_to_first_ref(app, scale, seed);
    trace_store_set_dir(dir);
    double startup_mmap_s = startup_to_first_ref(app, scale, seed);
    double startup_speedup = startup_heap_s / startup_mmap_s;
    std::printf("heap (generate+materialize): %.1f ms\n",
                startup_heap_s * 1e3);
    std::printf("mmap (open pre-baked file):  %.3f ms\n",
                startup_mmap_s * 1e3);
    std::printf("startup speedup: %.0fx (target >= 5x)\n",
                startup_speedup);

    bench::section("replay throughput (next_batch drain)");
    // The store is still on the mapped tier with the bake mapped in.
    auto cold_cursor = make_stored_app_trace(app, scale, seed);
    double mmap_cold_ps = drain_rate(*cold_cursor);
    auto warm_cursor = make_stored_app_trace(app, scale, seed);
    double mmap_warm_ps = drain_rate(*warm_cursor);
    trace_store_set_dir("");
    trace_store_clear();
    make_stored_app_trace(app, scale, seed); // materialize heap copy
    auto heap_cursor = make_stored_app_trace(app, scale, seed);
    double heap_ps = drain_rate(*heap_cursor);
    double gen_ps;
    {
        auto gen = make_app_trace(app, scale, seed);
        gen_ps = drain_rate(*gen);
    }
    trace_store_set_dir(dir);
    std::printf("mmap cold %.0f refs/s, mmap warm %.0f refs/s, "
                "heap %.0f refs/s, generate %.0f refs/s\n",
                mmap_cold_ps, mmap_warm_ps, heap_ps, gen_ps);

    TraceStoreStats ts = trace_store_stats();
    std::printf("trace store: %llu hits, %llu misses, %llu "
                "fallbacks, %.1f MiB heap, %.1f MiB mapped, "
                "%llu baked, %llu mapped files\n",
                static_cast<unsigned long long>(ts.hits),
                static_cast<unsigned long long>(ts.misses),
                static_cast<unsigned long long>(ts.fallbacks),
                static_cast<double>(ts.bytes) / (1024.0 * 1024.0),
                static_cast<double>(ts.mapped_bytes) /
                    (1024.0 * 1024.0),
                static_cast<unsigned long long>(ts.baked_files),
                static_cast<unsigned long long>(ts.mapped_files));

    std::ofstream out(out_path);
    if (out) {
        char buf[1024];
        std::snprintf(
            buf, sizeof(buf),
            "{\"bench\":\"trace_io\",\"app\":\"%s\",\"scale\":%g,"
            "\"seed\":%llu,\"refs\":%llu,"
            "\"bake_secs\":%.3f,\"bake_refs_per_sec\":%.0f,"
            "\"startup_heap_ms\":%.3f,\"startup_mmap_ms\":%.3f,"
            "\"startup_speedup\":%.1f,"
            "\"replay_mmap_cold_refs_per_sec\":%.0f,"
            "\"replay_mmap_warm_refs_per_sec\":%.0f,"
            "\"replay_heap_refs_per_sec\":%.0f,"
            "\"generate_refs_per_sec\":%.0f,"
            "\"mapped_bytes\":%llu}\n",
            app.c_str(), scale, static_cast<unsigned long long>(seed),
            static_cast<unsigned long long>(hdr.ref_count), bake_secs,
            bake_ps, startup_heap_s * 1e3, startup_mmap_s * 1e3,
            startup_speedup, mmap_cold_ps, mmap_warm_ps, heap_ps,
            gen_ps, static_cast<unsigned long long>(ts.mapped_bytes));
        out << buf;
        std::printf("wrote %s\n", out_path.c_str());
    } else {
        warn("cannot write %s", out_path.c_str());
    }
    return 0;
}
