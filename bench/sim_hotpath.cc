/**
 * @file
 * Hot-path throughput: refs/sec and events/sec for the subsystems on
 * the single-point critical path —
 *
 *   events   the allocation-free event kernel (pool-backed 4-ary
 *            heap, inline callbacks): schedule+dispatch rate
 *   lru      the intrusive replacement list: touch (move-to-front)
 *            rate for a resident working set
 *   trace    synthetic generation vs replay from the shared trace
 *            store (the store turns per-point regeneration into a
 *            bulk copy out of an immutable buffer)
 *   mix      end-to-end Experiment::run over the default app mix
 *            (all five apps x fullpage/eager/pipelining at 1 KiB
 *            subpages, half memory), cold (first materialization
 *            included) and warm (steady state)
 *   mc       the multi-client kernel (sim/multi_client.h): dispatch
 *            rate of one gdb point at 16 interleaved clients
 *
 * The warm mix refs/sec is the headline number; the JSON summary
 * (default results/BENCH_sim_hotpath.json) records it next to the
 * committed pre-PR baseline so CI can flag regressions
 * (scripts/check.sh fails the perf smoke when the current rate drops
 * more than 25% below the committed rate).
 *
 * Usage: sim_hotpath [--scale=S] [--out=FILE]
 */

#include <chrono>
#include <fstream>

#include "bench/bench_common.h"
#include "common/inline_function.h"
#include "mem/replacement.h"
#include "sim/event_queue.h"
#include "trace/apps.h"
#include "trace/trace_store.h"

using namespace sgms;

namespace
{

/**
 * Pre-PR single-pass mix rate (refs/sec) measured on the reference
 * box before the hot-path overhaul, with per-point trace
 * regeneration, std::function events, and std::list-based LRU. The
 * speedup_vs_baseline field in the JSON is relative to this.
 */
constexpr double BASELINE_MIX_REFS_PER_SEC = 30189308.0;

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Deterministic 64-bit mix (splitmix64 step) for access patterns. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Schedule/dispatch rate of the event kernel. */
double
bench_events(uint64_t total)
{
    EventQueue eq;
    uint64_t sink = 0;
    Tick t = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t done = 0; done < total;) {
        // A due batch interleaved with future events, like a fault
        // wave: 64 events across 8 distinct ticks.
        for (int i = 0; i < 64; ++i) {
            eq.schedule(t + (i & 7),
                        [&sink, i] { sink += static_cast<uint64_t>(i); });
        }
        t += 8;
        eq.run_until(t);
        done += 64;
    }
    eq.run_all();
    double secs = seconds_since(t0);
    SGMS_ASSERT(sink != 0);
    return static_cast<double>(eq.executed()) / secs;
}

/** Touch (move-to-front) rate of the intrusive LRU list. */
double
bench_lru(uint64_t touches, uint64_t pages)
{
    auto lru = make_replacement_policy("lru");
    lru->reserve(pages);
    for (uint64_t p = 0; p < pages; ++p)
        lru->insert(p);
    auto t0 = std::chrono::steady_clock::now();
    uint64_t s = 1;
    for (uint64_t i = 0; i < touches; ++i) {
        s = mix64(s);
        lru->touch(s % pages);
    }
    double secs = seconds_since(t0);
    return static_cast<double>(touches) / secs;
}

/** Drain @p src to completion via next_batch; returns refs/sec. */
double
drain_rate(TraceSource &src)
{
    TraceEvent batch[512];
    uint64_t refs = 0;
    uint64_t sink = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (;;) {
        size_t n = src.next_batch(batch, 512);
        if (n == 0)
            break;
        refs += n;
        sink ^= batch[n - 1].addr;
    }
    double secs = seconds_since(t0);
    SGMS_ASSERT(sink != 1); // keep the reads alive
    return static_cast<double>(refs) / secs;
}

struct MixRate
{
    double refs_per_sec = 0.0;
    uint64_t refs = 0;
    double secs = 0.0;
};

/** One pass over the default app mix through Experiment::run. */
MixRate
run_mix(double scale)
{
    const std::vector<std::string> &apps = app_names();
    const char *policies[] = {"fullpage", "eager", "pipelining"};
    MixRate m;
    auto t0 = std::chrono::steady_clock::now();
    for (const std::string &app : apps) {
        for (const char *policy : policies) {
            Experiment ex;
            ex.app = app;
            ex.scale = scale;
            ex.policy = policy;
            ex.subpage_size = 1024;
            ex.mem = MemConfig::Half;
            SimResult r = ex.run();
            m.refs += r.refs;
        }
    }
    m.secs = seconds_since(t0);
    m.refs_per_sec = static_cast<double>(m.refs) / m.secs;
    return m;
}

struct McRate
{
    double events_per_sec = 0.0;
    uint64_t events = 0;
    double secs = 0.0;
};

/**
 * Multi-client kernel dispatch rate: one gdb point at @p n clients
 * through the interleaved-timeline kernel (sim/multi_client.h).
 */
McRate
run_multi_client(double scale, uint32_t n)
{
    Experiment ex;
    ex.app = "gdb";
    ex.scale = scale;
    ex.policy = "eager";
    ex.subpage_size = 1024;
    ex.mem = MemConfig::Half;
    ex.clients = n;
    auto t0 = std::chrono::steady_clock::now();
    SimResult r = ex.run();
    McRate m;
    m.secs = seconds_since(t0);
    for (const auto &g : r.metrics)
        if (g.name == "sim.kernel_events")
            m.events = static_cast<uint64_t>(g.value);
    m.events_per_sec =
        m.secs > 0 ? static_cast<double>(m.events) / m.secs : 0.0;
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    // Default scale matches the committed baseline measurement; keep
    // them in sync or the speedup field compares unlike quantities.
    double scale = opts.get_double("scale", scale_from_env(0.05));
    std::string out_path =
        opts.get("out", "results/BENCH_sim_hotpath.json");

    bench::banner("HOTPATH",
                  "single-point hot path: events, lru, trace, mix",
                  scale);

    bench::section("event kernel (schedule+dispatch)");
    uint64_t fallbacks_before = inline_function_heap_fallbacks();
    double events_ps = bench_events(2'000'000);
    uint64_t fallbacks = inline_function_heap_fallbacks() -
                         fallbacks_before;
    std::printf("%.0f events/s, %llu heap fallbacks\n", events_ps,
                static_cast<unsigned long long>(fallbacks));

    bench::section("intrusive lru (touch)");
    double lru_ps = bench_lru(20'000'000, 4096);
    std::printf("%.0f touches/s\n", lru_ps);

    bench::section("trace: generation vs stored replay");
    double gen_ps;
    {
        auto gen = make_app_trace("modula3", scale, /*seed=*/1);
        gen_ps = drain_rate(*gen);
    }
    // First request materializes (excluded: rate measured on a
    // second, warm request).
    make_stored_app_trace("modula3", scale, /*seed=*/1);
    auto replay = make_stored_app_trace("modula3", scale, /*seed=*/1);
    double replay_ps = drain_rate(*replay);
    std::printf("generate %.0f refs/s, replay %.0f refs/s (%.1fx)\n",
                gen_ps, replay_ps, replay_ps / gen_ps);

    bench::section("mix: 5 apps x {fullpage,eager,pipelining}");
    MixRate cold = run_mix(scale);
    std::printf("cold: %.0f refs/s (%llu refs, %.2f s)\n",
                cold.refs_per_sec,
                static_cast<unsigned long long>(cold.refs),
                cold.secs);
    MixRate warm = run_mix(scale);
    std::printf("warm: %.0f refs/s (%llu refs, %.2f s)\n",
                warm.refs_per_sec,
                static_cast<unsigned long long>(warm.refs),
                warm.secs);
    double speedup = warm.refs_per_sec / BASELINE_MIX_REFS_PER_SEC;
    std::printf("speedup vs pre-overhaul baseline (%.0f refs/s): "
                "%.2fx\n",
                BASELINE_MIX_REFS_PER_SEC, speedup);

    bench::section("multi-client kernel (gdb, 16 clients)");
    McRate mc = run_multi_client(scale, 16);
    std::printf("%.0f events/s (%llu kernel events, %.2f s)\n",
                mc.events_per_sec,
                static_cast<unsigned long long>(mc.events), mc.secs);

    TraceStoreStats ts = trace_store_stats();
    std::printf("trace store: %llu hits, %llu misses, %llu "
                "fallbacks, %.1f MiB heap, %.1f MiB mapped\n",
                static_cast<unsigned long long>(ts.hits),
                static_cast<unsigned long long>(ts.misses),
                static_cast<unsigned long long>(ts.fallbacks),
                static_cast<double>(ts.bytes) / (1024.0 * 1024.0),
                static_cast<double>(ts.mapped_bytes) /
                    (1024.0 * 1024.0));

    std::ofstream out(out_path);
    if (out) {
        char buf[1024];
        std::snprintf(
            buf, sizeof(buf),
            "{\"bench\":\"sim_hotpath\",\"scale\":%g,"
            "\"baseline_refs_per_sec\":%.0f,"
            "\"mix_warm_refs_per_sec\":%.0f,"
            "\"mix_cold_refs_per_sec\":%.0f,"
            "\"mix_refs\":%llu,"
            "\"speedup_vs_baseline\":%.3f,"
            "\"events_per_sec\":%.0f,"
            "\"event_heap_fallbacks\":%llu,"
            "\"mc_events_per_sec\":%.0f,"
            "\"mc_kernel_events\":%llu,"
            "\"lru_touches_per_sec\":%.0f,"
            "\"trace_generate_refs_per_sec\":%.0f,"
            "\"trace_replay_refs_per_sec\":%.0f,"
            "\"trace_store\":{\"hits\":%llu,\"misses\":%llu,"
            "\"fallbacks\":%llu,\"bytes\":%llu,"
            "\"mapped_bytes\":%llu}}\n",
            scale, BASELINE_MIX_REFS_PER_SEC, warm.refs_per_sec,
            cold.refs_per_sec,
            static_cast<unsigned long long>(warm.refs), speedup,
            events_ps, static_cast<unsigned long long>(fallbacks),
            mc.events_per_sec,
            static_cast<unsigned long long>(mc.events), lru_ps,
            gen_ps, replay_ps,
            static_cast<unsigned long long>(ts.hits),
            static_cast<unsigned long long>(ts.misses),
            static_cast<unsigned long long>(ts.fallbacks),
            static_cast<unsigned long long>(ts.bytes),
            static_cast<unsigned long long>(ts.mapped_bytes));
        out << buf;
        std::printf("wrote %s\n", out_path.c_str());
    } else {
        warn("cannot write %s", out_path.c_str());
    }
    return 0;
}
