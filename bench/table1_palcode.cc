/**
 * @file
 * Regenerates Table 1: performance of PALcode load/store emulation.
 *
 * The numbers are the measured Alpha 250 costs the model is built
 * from (cycles at 266 MHz); the bench prints them alongside the
 * derived ratios the paper calls out, and then demonstrates the
 * model end-to-end: the measured slowdown of a memory-intensive
 * workload under software subpage protection (the paper reports
 * "less than 1%").
 */

#include "bench/bench_common.h"

#include "core/simulator.h"
#include "proto/palcode.h"

using namespace sgms;

int
main()
{
    double scale = scale_from_env(0.2);
    bench::banner("Table 1", "PALcode load/store emulation costs",
                  scale);

    PalCosts c = PalCosts::alpha250();
    auto cycles = [](Tick t) {
        // 266 MHz => 3.759 ns per cycle.
        return Table::fmt_int(
            static_cast<int64_t>(ticks::to_ns(t) / 3.759 + 0.5));
    };
    Table t({"Operation", "Cycles", "Time"});
    t.add_row({"fast load", cycles(c.fast_load),
               format_us(c.fast_load, 3)});
    t.add_row({"slow load", cycles(c.slow_load),
               format_us(c.slow_load, 3)});
    t.add_row({"fast store", cycles(c.fast_store),
               format_us(c.fast_store, 3)});
    t.add_row({"slow store", cycles(c.slow_store),
               format_us(c.slow_store, 3)});
    t.add_row({"null PAL call", cycles(c.null_pal_call),
               format_us(c.null_pal_call, 3)});
    t.add_row({"L1 cache hit", cycles(c.l1_hit),
               format_us(c.l1_hit, 3)});
    t.add_row({"L2 cache hit", cycles(c.l2_hit),
               format_us(c.l2_hit, 3)});
    t.add_row({"L2 miss", cycles(c.l2_miss),
               format_us(c.l2_miss, 3)});
    t.print(std::cout);

    std::printf("fast load vs L2 hit : %.1fx slower (paper: 6.5x)\n",
                static_cast<double>(c.fast_load) / c.l2_hit);
    std::printf("fast load vs L2 miss: %.1fx faster (paper: 1.6x)\n",
                static_cast<double>(c.l2_miss) / c.fast_load);

    bench::section(
        "end-to-end: software-protection slowdown (paper: <1%)");
    Table t2({"app", "hardware TLB", "software PAL", "emulated ops",
              "slowdown"});
    for (const char *app : {"modula3", "gdb"}) {
        Experiment hw;
        hw.app = app;
        hw.scale = scale;
        hw.policy = "eager";
        hw.subpage_size = 1024;
        hw.mem = MemConfig::Half;
        Experiment sw = hw;
        sw.base.protection = ProtectionMode::SoftwarePal;
        SimResult rh = hw.run();
        SimResult rs = sw.run();
        double slowdown =
            static_cast<double>(rs.runtime - rh.runtime) / rh.runtime;
        t2.add_row({app, format_ms(rh.runtime),
                    format_ms(rs.runtime),
                    Table::fmt_int(rs.emulated_accesses),
                    Table::fmt_pct(slowdown, 2)});
    }
    t2.print(std::cout);
    return 0;
}
