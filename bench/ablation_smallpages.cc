/**
 * @file
 * Ablation for section 2.1's claim: simply shrinking the page size
 * is worse than subpages, because (a) small pages divide TLB
 * coverage and raise the miss rate, and (b) spatial locality means
 * the full page is needed eventually, so fetching it piecemeal pays
 * the per-request fixed costs many times (the lazy-subpage-fetch
 * problem, citing [Lazowska et al. 1986]).
 *
 * Compared configurations (Modula-3, 1/2-mem):
 *   p_8192        : baseline GMS, 8K pages;
 *   sp_1024 eager : 8K pages, 1K subpages (the paper's proposal);
 *   lazy_1024     : 8K pages, lazy subpage fetch;
 *   small_1024    : true 1K pages (fullpage policy on 1K pages).
 * All runs model a 32-entry TLB so the coverage effect is visible.
 */

#include "bench/bench_common.h"

using namespace sgms;

int
main()
{
    double scale = scale_from_env(1.0);
    bench::banner("Ablation",
                  "small pages vs lazy subpages vs eager subpages",
                  scale);

    Table t({"config", "runtime (ms)", "vs p_8192", "page faults",
             "demand fetches", "tlb miss rate", "tlb overhead (ms)"});

    auto point = [&](uint32_t page, const std::string &policy,
                     uint32_t subpage) -> Experiment {
        Experiment ex;
        ex.app = "modula3";
        ex.scale = scale;
        ex.mem = MemConfig::Half;
        ex.policy = policy;
        ex.subpage_size = subpage;
        ex.base.page_size = page;
        ex.base.tlb_enabled = true;
        // 128 entries: with 8K pages this covers the hot set (the
        // realistic regime: low baseline miss rate); with 1K pages
        // the same TLB covers an eighth of the address range and
        // thrashes. The paper's DEC Alpha had 32 entries against a
        // much smaller hot set; what matters is the coverage ratio.
        ex.base.tlb_entries = 128;
        ex.base.tlb_assoc = 128;
        return ex;
    };

    const std::vector<std::string> labels = {
        "p_8192", "sp_1024 (eager)", "lazy_1024", "small_1024"};
    std::vector<Experiment> points = {
        point(8192, "fullpage", 8192), point(8192, "eager", 1024),
        point(8192, "lazy", 1024), point(1024, "fullpage", 1024)};
    std::vector<SimResult> results = bench::run_batch(points);
    for (size_t i = 0; i < results.size(); ++i)
        results[i].policy = labels[i];

    const SimResult &base = results[0];
    for (const SimResult &res : results) {
        const SimResult *r = &res;
        t.add_row({r->policy, format_ms(r->runtime),
                   Table::fmt_pct(r->reduction_vs(base)),
                   Table::fmt_int(r->page_faults),
                   Table::fmt_int(r->page_faults +
                                  r->lazy_subpage_faults),
                   Table::fmt_pct(r->tlb_stats.miss_rate(), 2),
                   format_ms(r->tlb_overhead)});
    }
    t.print(std::cout);

    std::printf("\nexpected: eager wins; lazy pays the per-request "
                "fixed cost for most\nsubpages of every page; small "
                "pages add TLB misses on top (coverage\n%lluK vs "
                "%lluK).\n",
                static_cast<unsigned long long>(128ull * 8192 >> 10),
                static_cast<unsigned long long>(128ull * 1024 >> 10));
    return 0;
}
