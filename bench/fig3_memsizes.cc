/**
 * @file
 * Regenerates Figure 3: Modula-3 runtime for disk_8192, p_8192 and
 * eager-fullpage subpage sizes 4096..256, at full, 1/2 and 1/4
 * memory (warm global cache).
 *
 * Paper shape checks:
 *  - GMS fullpage beats disk by 1.7-2.2x;
 *  - every subpage size beats fullpage;
 *  - subpage benefit grows as memory shrinks (1K: 16% -> 25% -> 38%);
 *  - 1K-2K subpages are the sweet spot.
 */

#include "bench/bench_common.h"

using namespace sgms;

int
main()
{
    double scale = scale_from_env(1.0);
    bench::banner("Figure 3",
                  "Modula-3 subpage performance at 3 memory sizes",
                  scale);

    for (MemConfig mem :
         {MemConfig::Full, MemConfig::Half, MemConfig::Quarter}) {
        bench::section(mem_config_name(mem));

        Experiment ex;
        ex.app = "modula3";
        ex.scale = scale;
        ex.mem = mem;

        // Batch the whole section: under SGMS_JOBS=N the points run
        // concurrently; the result order matches the build order.
        std::vector<Experiment> points;
        ex.policy = "disk";
        points.push_back(ex);
        ex.policy = "fullpage";
        points.push_back(ex);
        ex.policy = "eager";
        for (uint32_t sp : bench::paper_subpage_sizes()) {
            ex.subpage_size = sp;
            points.push_back(ex);
        }
        std::vector<SimResult> batch = bench::run_batch(points);

        std::vector<std::pair<std::string, SimResult>> results;
        for (size_t i = 0; i < points.size(); ++i) {
            results.emplace_back(points[i].label(),
                                 std::move(batch[i]));
        }

        const SimResult &fullpage = results[1].second;
        const SimResult &disk = results[0].second;

        BarChart chart(std::string("normalized runtime (") +
                           mem_config_name(mem) + ")",
                       "x p_8192");
        Table t({"config", "runtime (ms)", "faults",
                 "vs p_8192", "improvement"});
        for (const auto &[label, r] : results) {
            double norm = static_cast<double>(r.runtime) /
                          fullpage.runtime;
            chart.add(label, norm);
            t.add_row({label, format_ms(r.runtime),
                       Table::fmt_int(r.page_faults),
                       Table::fmt(norm, 3),
                       Table::fmt_pct(r.reduction_vs(fullpage))});
        }
        t.print(std::cout);
        chart.print(std::cout, 50);
        std::printf("GMS fullpage speedup over disk: %.2fx "
                    "(paper: 1.7-2.2x)\n",
                    fullpage.speedup_vs(disk));
        double best_speedup = 0;
        for (size_t i = 2; i < results.size(); ++i) {
            best_speedup = std::max(
                best_speedup, results[i].second.speedup_vs(disk));
        }
        std::printf("best subpage speedup over disk: %.2fx "
                    "(paper: up to 4x at 1/4-mem)\n",
                    best_speedup);
    }
    return 0;
}
