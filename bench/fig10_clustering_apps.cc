/**
 * @file
 * Regenerates Figure 10: temporal clustering of page faults for gdb
 * and Atom.
 *
 * Paper shape check: gdb's curve rises in steep jumps (most faults
 * land in high-fault-rate periods, giving it the biggest subpage
 * benefit), while Atom's curve climbs smoothly (uniformly low fault
 * rate, the smallest benefit).
 */

#include "bench/bench_common.h"

using namespace sgms;

int
main()
{
    double scale = scale_from_env(1.0);
    bench::banner("Figure 10",
                  "temporal clustering of page faults: gdb vs atom",
                  scale);

    Table t({"app", "faults", "refs", "burst fraction",
             "eager reduction"});
    LinePlot plot("cumulative faults vs normalized trace position",
                  "fraction of trace", "fraction of faults");

    for (const char *app : {"gdb", "atom"}) {
        Experiment ex;
        ex.app = app;
        ex.scale = scale;
        ex.mem = MemConfig::Half;
        ex.subpage_size = 1024;
        ex.policy = "fullpage";
        SimResult base = bench::run_labeled(ex);
        ex.policy = "eager";
        SimResult r = bench::run_labeled(ex);

        // Normalize both axes so the two traces (0.5M vs 73M refs)
        // are comparable on one plot, like the paper's two panels.
        Series s;
        s.name = app;
        for (const auto &[x, y] : r.clustering.points) {
            s.add(x / static_cast<double>(r.refs),
                  y / static_cast<double>(r.page_faults));
        }
        plot.add(s.downsampled(200));

        // Burst window: 2% of the trace.
        double burst = r.burst_fault_fraction(
            std::max<uint64_t>(r.refs / 50, 1));
        t.add_row({app, Table::fmt_int(r.page_faults),
                   Table::fmt_int(r.refs), Table::fmt_pct(burst),
                   Table::fmt_pct(r.reduction_vs(base))});
    }

    t.print(std::cout);
    plot.print(std::cout, 76, 18);
    std::printf("paper: gdb's faults arrive in steep bursts and it "
                "benefits more from\nsubpages than the smooth, "
                "low-rate atom trace.\n");
    return 0;
}
