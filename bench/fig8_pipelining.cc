/**
 * @file
 * Regenerates Figure 8: eager fullpage fetch vs subpage pipelining
 * (Modula-3, 1/2 memory), per subpage size.
 *
 * The pipelining scheme is the paper's basic one: faulted subpage,
 * then the +1 and -1 neighbours as individual pipelined subpages
 * (no receive-CPU cost, i.e. the intelligent controller), then the
 * remainder in one message.
 *
 * Paper shape checks: pipelining only attacks page_wait (it cannot
 * reduce the initial subpage latency); at 1K it cuts page_wait by
 * ~42%, about 10% of total runtime.
 */

#include "bench/bench_common.h"

using namespace sgms;

int
main()
{
    double scale = scale_from_env(1.0);
    bench::banner("Figure 8",
                  "eager fullpage fetch vs subpage pipelining "
                  "(Modula-3, 1/2-mem)",
                  scale);

    Experiment ex;
    ex.app = "modula3";
    ex.scale = scale;
    ex.mem = MemConfig::Half;
    ex.policy = "fullpage";

    std::vector<Experiment> points;
    points.push_back(ex);
    for (uint32_t sp : bench::paper_subpage_sizes()) {
        ex.subpage_size = sp;
        ex.policy = "eager";
        points.push_back(ex);
        ex.policy = "pipelining";
        points.push_back(ex);
    }
    std::vector<SimResult> results = bench::run_batch(points);
    const SimResult &base = results[0];

    BarChart chart("runtime components (normalized to p_8192)", "");
    Table t({"config", "exec", "sp_latency", "page_wait",
             "total vs p_8192", "page_wait cut vs eager"});

    for (size_t k = 0; k < bench::paper_subpage_sizes().size(); ++k) {
        uint32_t sp = bench::paper_subpage_sizes()[k];
        const SimResult &eager = results[1 + 2 * k];
        const SimResult &pipe = results[2 + 2 * k];

        double denom = static_cast<double>(base.runtime);
        for (const auto *r : {&eager, &pipe}) {
            std::string label =
                (r == &eager ? "eager " : "pipe  ") +
                format_bytes(sp);
            chart.add(Bar{label,
                          {{"exec", r->exec_time / denom},
                           {"sp_latency", r->sp_latency / denom},
                           {"page_wait", r->page_wait / denom}}});
            double pw_cut =
                r == &pipe && eager.page_wait
                    ? 1.0 - static_cast<double>(pipe.page_wait) /
                                eager.page_wait
                    : 0.0;
            t.add_row({label, Table::fmt_pct(r->exec_time / denom),
                       Table::fmt_pct(r->sp_latency / denom),
                       Table::fmt_pct(r->page_wait / denom),
                       Table::fmt_pct(static_cast<double>(r->runtime) /
                                      base.runtime),
                       r == &pipe ? Table::fmt_pct(pw_cut) : "-"});
        }
    }

    t.print(std::cout);
    chart.print(std::cout, 46);
    std::printf("paper @1K: pipelining cuts page_wait ~42%%, total "
                "runtime ~10%% vs eager;\nsp_latency is untouched by "
                "pipelining.\n");
    return 0;
}
