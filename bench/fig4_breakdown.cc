/**
 * @file
 * Regenerates Figure 4: Modula-3 at 1/2 memory, with runtime broken
 * into exec / sp_latency / page_wait per subpage size.
 *
 * Paper shape checks:
 *  - sp_latency falls steadily as subpages shrink (55% of runtime at
 *    4K down to 25% at 256B);
 *  - page_wait rises in exchange (2% at 4K to 35% at 256B);
 *  - both spatial and temporal effects drive the page_wait increase.
 */

#include "bench/bench_common.h"

using namespace sgms;

int
main(int argc, char **argv)
{
    obs::ObsSession obs = bench::obs_session(argc, argv);
    double scale = scale_from_env(1.0);
    bench::banner("Figure 4",
                  "Modula-3 1/2-mem runtime components by subpage size",
                  scale);

    Experiment ex;
    ex.app = "modula3";
    ex.scale = scale;
    ex.mem = MemConfig::Half;
    ex.policy = "fullpage";

    std::vector<Experiment> points;
    points.push_back(ex);
    ex.policy = "eager";
    for (uint32_t sp : bench::paper_subpage_sizes()) {
        ex.subpage_size = sp;
        points.push_back(ex);
    }
    std::vector<SimResult> results = bench::run_batch(points, obs);
    const SimResult &base = results[0];

    BarChart chart("runtime components (normalized to p_8192)", "");
    Table t({"config", "exec", "sp_latency", "page_wait", "other",
             "total vs p_8192"});

    auto add = [&](const std::string &label, const SimResult &r) {
        double denom = static_cast<double>(base.runtime);
        double exec = r.exec_time / denom;
        double sp = r.sp_latency / denom;
        double pw = r.page_wait / denom;
        double other = (r.recv_overhead + r.emulation_overhead +
                        r.tlb_overhead) /
                       denom;
        chart.add(Bar{label,
                      {{"exec", exec},
                       {"sp_latency", sp},
                       {"page_wait", pw}}});
        t.add_row({label, Table::fmt_pct(exec), Table::fmt_pct(sp),
                   Table::fmt_pct(pw), Table::fmt_pct(other),
                   Table::fmt_pct(exec + sp + pw + other)});
    };

    for (size_t i = 0; i < points.size(); ++i)
        add(points[i].label(), results[i]);

    t.print(std::cout);
    chart.print(std::cout, 50);
    std::printf("paper: sp_latency falls 55%%->25%% and page_wait "
                "rises 2%%->35%% from sp_4096 to sp_256\n");
    return 0;
}
