/**
 * @file
 * Ablation: how the subpage-latency win degrades on an unreliable
 * network (fault/fault_plan.h), a question outside the paper's
 * fault-free AN2 model.
 *
 *  - loss-rate sweep x fetch policy: every retry of a demand subpage
 *    costs a timeout (3x the calibrated fetch latency) plus backoff,
 *    so even sub-percent loss erodes the subpage advantage fast;
 *  - server outage windows: fetches that exhaust retries or hit a
 *    failed server degrade to local disk, trading the 0.5 ms network
 *    fetch for the ~10 ms disk access the paper set out to avoid.
 */

#include <map>

#include "bench/bench_common.h"
#include "fault/fault_plan.h"

using namespace sgms;

namespace
{

double
metric(const SimResult &r, const std::string &name)
{
    for (const auto &m : r.metrics)
        if (m.name == name)
            return m.value;
    return 0.0;
}

} // namespace

int
main()
{
    double scale = scale_from_env(1.0);
    bench::banner("Ablation", "faults: loss, retries, degradation",
                  scale);

    bench::section("message loss rate x policy (gdb, 1/2-mem, 1K)");
    const std::vector<double> losses = {0.0, 0.001, 0.01, 0.05,
                                        0.10};
    const std::vector<const char *> policies = {"fullpage", "eager",
                                                "pipelining"};
    std::vector<Experiment> points;
    for (double loss : losses) {
        for (const char *policy : policies) {
            Experiment ex;
            ex.app = "gdb";
            ex.scale = scale;
            ex.seed = 7;
            ex.mem = MemConfig::Half;
            ex.policy = policy;
            ex.subpage_size = 1024;
            if (loss > 0) {
                ex.base.faults.seed = 7;
                ex.base.faults.set_loss(loss);
            }
            points.push_back(ex);
        }
    }
    std::vector<SimResult> results = bench::run_batch(points);

    Table t({"loss", "policy", "runtime (ms)", "vs clean", "retries",
             "timeouts", "degraded"});
    std::map<std::string, Tick> clean;
    size_t i = 0;
    for (double loss : losses) {
        for (const char *policy : policies) {
            const SimResult &r = results[i++];
            if (loss == 0)
                clean[policy] = r.runtime;
            double vs = clean.count(policy)
                            ? 100.0 *
                                  (static_cast<double>(r.runtime) /
                                       clean[policy] -
                                   1.0)
                            : 0.0;
            t.add_row({Table::fmt(loss * 100, 1) + "%", policy,
                       format_ms(r.runtime),
                       "+" + Table::fmt(vs, 1) + "%",
                       Table::fmt_int(r.retries),
                       Table::fmt_int(r.timeouts),
                       Table::fmt_int(r.degraded_fetches)});
        }
    }
    t.print(std::cout);
    std::printf("expected: loss hurts subpage policies more per fault "
                "(more messages per page)\nbut they stay ahead until "
                "timeouts dominate the pipeline overlap.\n");

    bench::section("server outage windows (gdb, 1/2-mem, 1K eager)");
    Table t2({"outage", "runtime (ms)", "degraded", "server fails",
              "outage drops"});
    struct Case
    {
        const char *name;
        const char *spec;
    } cases[] = {
        {"none", ""},
        {"1 server, 50ms blip", "seed=7,down=1:100:150"},
        {"1 server, never recovers", "seed=7,down=1:100"},
        {"rolling: two servers", "seed=7,down=1:100:250,down=2:300:450"},
    };
    std::vector<Experiment> outage_points;
    for (const Case &c : cases) {
        Experiment ex;
        ex.app = "gdb";
        ex.scale = scale;
        ex.seed = 7;
        ex.mem = MemConfig::Half;
        ex.policy = "eager";
        ex.subpage_size = 1024;
        ex.base.gms.servers = 2;
        if (*c.spec)
            ex.base.faults = fault::FaultPlan::parse(c.spec);
        outage_points.push_back(ex);
    }
    std::vector<SimResult> outage_results =
        bench::run_batch(outage_points);
    for (size_t k = 0; k < std::size(cases); ++k) {
        const Case &c = cases[k];
        const SimResult &r = outage_results[k];
        t2.add_row({c.name, format_ms(r.runtime),
                    Table::fmt_int(r.degraded_fetches),
                    Table::fmt_int(r.server_failures),
                    Table::fmt_int(static_cast<uint64_t>(
                        metric(r, "fault.outage_drops")))});
    }
    t2.print(std::cout);
    std::printf("expected: every degraded fetch trades a ~0.5 ms "
                "network fetch for a disk access;\nthe directory "
                "quarantine stops the retry storm while a server is "
                "down.\n");
    return 0;
}
