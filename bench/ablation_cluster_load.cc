/**
 * @file
 * Ablation beyond the paper: how the subpage win holds up when the
 * GMS servers are not idle. Two ways of making them busy are put side
 * by side:
 *
 *   analytic   the cluster_load knob injects synthetic foreign
 *              getpage traffic at a target server utilization — the
 *              original single-client approximation
 *   emergent   the multi-client kernel (sim/multi_client.h) runs N
 *              real faulting clients against the shared servers, so
 *              the load is the clients' own fault traffic
 *
 * For each client count the emergent run's measured server
 *  utilization is fed back into the analytic knob, and the two mean
 * demand-subpage waits are compared. The divergence column is the
 * headline: it quantifies how much the open-loop approximation
 * misses — queueing correlation (clients fault in bursts, synthetic
 * load is smooth) makes the emergent waits longer at equal mean
 * utilization.
 */

#include "bench/bench_common.h"

using namespace sgms;

namespace
{

double
gauge_of(const SimResult &r, const std::string &name)
{
    for (const auto &m : r.metrics)
        if (m.name == name)
            return m.value;
    return 0.0;
}

double
mean_sp_wait_ms(const SimResult &r)
{
    return r.page_faults ? ticks::to_ms(r.sp_latency) /
                               static_cast<double>(r.page_faults)
                         : 0.0;
}

} // namespace

int
main()
{
    double scale = scale_from_env(1.0);
    bench::banner("Ablation",
                  "busy-cluster sensitivity (modula3, 1/2-mem)",
                  scale);

    const std::vector<double> loads = {0.0, 0.2, 0.4, 0.6};
    std::vector<Experiment> points;
    for (double load : loads) {
        Experiment ex;
        ex.app = "modula3";
        ex.scale = scale;
        ex.mem = MemConfig::Half;
        ex.base.cluster_load.server_utilization = load;
        ex.policy = "fullpage";
        points.push_back(ex);
        ex.policy = "eager";
        ex.subpage_size = 1024;
        points.push_back(ex);
    }
    std::vector<SimResult> results = bench::run_batch(points);

    Table t({"server load", "p_8192 (ms)", "sp_1024 (ms)",
             "improvement", "mean sp wait (ms)"});
    for (size_t i = 0; i < loads.size(); ++i) {
        const SimResult &base = results[2 * i];
        const SimResult &eager = results[2 * i + 1];
        double mean_sp =
            eager.page_faults
                ? ticks::to_ms(eager.sp_latency) / eager.page_faults
                : 0;
        t.add_row({Table::fmt_pct(loads[i]), format_ms(base.runtime),
                   format_ms(eager.runtime),
                   Table::fmt_pct(eager.reduction_vs(base)),
                   Table::fmt(mean_sp, 3)});
    }
    t.print(std::cout);
    std::printf("\nexpected: both configurations slow down as servers "
                "busy up, but the\nsubpage advantage persists (demand "
                "priority shields the small demand\ntransfers).\n");

    bench::section("analytic knob vs emergent multi-client contention");
    const std::vector<uint32_t> nclients = {1, 4, 8, 16};
    Table t3({"clients", "measured util", "emergent sp wait (ms)",
              "analytic sp wait (ms)", "divergence"});
    for (uint32_t n : nclients) {
        Experiment em;
        em.app = "modula3";
        em.scale = scale;
        em.mem = MemConfig::Half;
        em.policy = "eager";
        em.subpage_size = 1024;
        em.clients = n;
        SimResult emr = em.run();
        double util =
            std::max({gauge_of(emr, "gms.server_cpu_util_max"),
                      gauge_of(emr, "gms.server_dma_util_max"),
                      gauge_of(emr, "gms.server_wire_util_max")});

        // Closed loop: hand the emergent utilization to the analytic
        // knob and ask the single-client model for the same point.
        Experiment an;
        an.app = "modula3";
        an.scale = scale;
        an.mem = MemConfig::Half;
        an.policy = "eager";
        an.subpage_size = 1024;
        an.base.cluster_load.server_utilization = util;
        SimResult anr = an.run();

        double esp = mean_sp_wait_ms(emr);
        double asp = mean_sp_wait_ms(anr);
        double div = asp > 0 ? esp / asp - 1.0 : 0.0;
        t3.add_row({Table::fmt_int(n), Table::fmt_pct(util),
                    Table::fmt(esp, 3), Table::fmt(asp, 3),
                    Table::fmt_pct(div)});
    }
    t3.print(std::cout);
    std::printf("\ndivergence = emergent / analytic - 1 at equal mean "
                "server utilization.\nPositive divergence means real "
                "interleaved clients queue worse than the\nsmooth "
                "synthetic load predicts (bursty arrivals); the knob "
                "remains a\ncheap lower bound, not a substitute.\n");

    bench::section("adaptive pipelining (future-work extension)");
    const std::vector<const char *> policies = {
        "eager", "pipelining", "pipelining-all",
        "pipelining-adaptive"};
    Experiment ex;
    ex.app = "modula3";
    ex.scale = scale;
    ex.mem = MemConfig::Half;
    ex.subpage_size = 1024;
    std::vector<Experiment> adaptive_points;
    ex.policy = "fullpage";
    adaptive_points.push_back(ex);
    for (const char *pol : policies) {
        ex.policy = pol;
        adaptive_points.push_back(ex);
    }
    std::vector<SimResult> adaptive_results =
        bench::run_batch(adaptive_points);

    Table t2({"policy", "runtime (ms)", "vs p_8192"});
    const SimResult &abase = adaptive_results[0];
    for (size_t k = 0; k < policies.size(); ++k) {
        const SimResult &r = adaptive_results[1 + k];
        t2.add_row({policies[k], format_ms(r.runtime),
                    Table::fmt_pct(r.reduction_vs(abase))});
    }
    t2.print(std::cout);
    std::printf("expected: adaptive ordering matches or beats the "
                "static +-distance\norder once it has learned the "
                "workload's next-subpage distribution.\n");
    return 0;
}
