/**
 * @file
 * Ablation beyond the paper: how the subpage win holds up when the
 * GMS servers are not idle. Foreign getpage traffic (other active
 * cluster nodes) is injected at the servers at increasing
 * utilization, and we track the fullpage-vs-eager comparison plus
 * the adaptive pipelining extension.
 */

#include "bench/bench_common.h"

using namespace sgms;

int
main()
{
    double scale = scale_from_env(1.0);
    bench::banner("Ablation",
                  "busy-cluster sensitivity (modula3, 1/2-mem)",
                  scale);

    const std::vector<double> loads = {0.0, 0.2, 0.4, 0.6};
    std::vector<Experiment> points;
    for (double load : loads) {
        Experiment ex;
        ex.app = "modula3";
        ex.scale = scale;
        ex.mem = MemConfig::Half;
        ex.base.cluster_load.server_utilization = load;
        ex.policy = "fullpage";
        points.push_back(ex);
        ex.policy = "eager";
        ex.subpage_size = 1024;
        points.push_back(ex);
    }
    std::vector<SimResult> results = bench::run_batch(points);

    Table t({"server load", "p_8192 (ms)", "sp_1024 (ms)",
             "improvement", "mean sp wait (ms)"});
    for (size_t i = 0; i < loads.size(); ++i) {
        const SimResult &base = results[2 * i];
        const SimResult &eager = results[2 * i + 1];
        double mean_sp =
            eager.page_faults
                ? ticks::to_ms(eager.sp_latency) / eager.page_faults
                : 0;
        t.add_row({Table::fmt_pct(loads[i]), format_ms(base.runtime),
                   format_ms(eager.runtime),
                   Table::fmt_pct(eager.reduction_vs(base)),
                   Table::fmt(mean_sp, 3)});
    }
    t.print(std::cout);
    std::printf("\nexpected: both configurations slow down as servers "
                "busy up, but the\nsubpage advantage persists (demand "
                "priority shields the small demand\ntransfers).\n");

    bench::section("adaptive pipelining (future-work extension)");
    const std::vector<const char *> policies = {
        "eager", "pipelining", "pipelining-all",
        "pipelining-adaptive"};
    Experiment ex;
    ex.app = "modula3";
    ex.scale = scale;
    ex.mem = MemConfig::Half;
    ex.subpage_size = 1024;
    std::vector<Experiment> adaptive_points;
    ex.policy = "fullpage";
    adaptive_points.push_back(ex);
    for (const char *pol : policies) {
        ex.policy = pol;
        adaptive_points.push_back(ex);
    }
    std::vector<SimResult> adaptive_results =
        bench::run_batch(adaptive_points);

    Table t2({"policy", "runtime (ms)", "vs p_8192"});
    const SimResult &abase = adaptive_results[0];
    for (size_t k = 0; k < policies.size(); ++k) {
        const SimResult &r = adaptive_results[1 + k];
        t2.add_row({policies[k], format_ms(r.runtime),
                    Table::fmt_pct(r.reduction_vs(abase))});
    }
    t2.print(std::cout);
    std::printf("expected: adaptive ordering matches or beats the "
                "static +-distance\norder once it has learned the "
                "workload's next-subpage distribution.\n");
    return 0;
}
