/**
 * @file
 * Cluster-scale sweep: client count vs emergent saturation.
 *
 * Runs the multi-client kernel (sim/multi_client.h) with N faulting
 * clients sharing the default 4 GMS servers, doubling N until
 * --max-clients (default 1024). Contention here is *emergent* — the
 * clients queue on the same server CPU/DMA/wire stage resources — so
 * the interesting outputs are where the servers saturate (the knee:
 * first N whose max server-stage utilization exceeds 90%) and what
 * saturation does to the subpage win: per-fault demand latency for
 * sp_1024 (eager) vs p_8192 (fullpage) as the cluster fills up.
 *
 * The JSON summary (default results/BENCH_cluster.json) records the
 * scaling curve, the knee, and the kernel's multi-client events/sec
 * at N=256 (`mc_events_per_sec`), which scripts/check.sh compares
 * against the committed baseline as a perf smoke (>25% regression
 * fails).
 *
 * Usage: cluster_scale [--scale=S] [--max-clients=N] [--out=FILE]
 */

#include <chrono>
#include <fstream>
#include <sstream>

#include "bench/bench_common.h"
#include "common/inline_function.h"

using namespace sgms;

namespace
{

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct Point
{
    uint32_t clients = 0;
    std::string policy;
    double runtime_ms = 0.0;
    double mean_fault_ms = 0.0; ///< mean demand (subpage) wait
    double server_util = 0.0;   ///< max over server stage resources
    double wire_util = 0.0;
    uint64_t kernel_events = 0;
    double events_per_sec = 0.0;
    double refs_per_sec = 0.0;
};

double
gauge_of(const SimResult &r, const std::string &name)
{
    for (const auto &m : r.metrics)
        if (m.name == name)
            return m.value;
    return 0.0;
}

Point
run_point(const std::string &policy, uint32_t n, double scale)
{
    Experiment ex;
    ex.app = "gdb";
    ex.scale = scale;
    ex.policy = policy;
    ex.subpage_size = 1024;
    ex.mem = MemConfig::Half;
    ex.clients = n;

    auto t0 = std::chrono::steady_clock::now();
    SimResult r = ex.run();
    double secs = seconds_since(t0);

    Point p;
    p.clients = n;
    p.policy = policy;
    p.runtime_ms = ticks::to_ms(r.runtime);
    p.mean_fault_ms =
        r.page_faults
            ? ticks::to_ms(r.sp_latency) / static_cast<double>(r.page_faults)
            : 0.0;
    double cpu = gauge_of(r, "gms.server_cpu_util_max");
    double dma = gauge_of(r, "gms.server_dma_util_max");
    p.wire_util = gauge_of(r, "gms.server_wire_util_max");
    p.server_util = std::max({cpu, dma, p.wire_util});
    p.kernel_events =
        static_cast<uint64_t>(gauge_of(r, "sim.kernel_events"));
    p.events_per_sec =
        secs > 0 ? static_cast<double>(p.kernel_events) / secs : 0.0;
    p.refs_per_sec =
        secs > 0 ? static_cast<double>(r.refs) / secs : 0.0;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    double scale = opts.get_double("scale", scale_from_env(0.05));
    uint32_t max_clients = static_cast<uint32_t>(
        opts.get_double("max-clients", 1024));
    std::string out_path =
        opts.get("out", "results/BENCH_cluster.json");

    bench::banner("CLUSTER",
                  "client-count scaling: emergent server saturation "
                  "(gdb, 1/2-mem)",
                  scale);

    uint64_t fallbacks_before = inline_function_heap_fallbacks();
    std::vector<Point> eager, fullpage;
    uint32_t knee = 0;
    for (uint32_t n = 1; n <= max_clients; n *= 2) {
        eager.push_back(run_point("eager", n, scale));
        fullpage.push_back(run_point("fullpage", n, scale));
        const Point &e = eager.back();
        if (knee == 0 && e.server_util > 0.9)
            knee = n;
        std::printf("  n=%-5u sp_1024 %9.2f ms  p_8192 %9.2f ms  "
                    "util %.0f%%  %.2fM ev/s\n",
                    n, e.runtime_ms, fullpage.back().runtime_ms,
                    e.server_util * 100.0,
                    e.events_per_sec / 1e6);
        std::fflush(stdout);
    }
    uint64_t heap_fallbacks =
        inline_function_heap_fallbacks() - fallbacks_before;

    bench::section("subpage win vs contention");
    Table t({"clients", "p_8192 (ms)", "sp_1024 (ms)", "win",
             "mean sp wait (ms)", "server util", "wire util"});
    for (size_t i = 0; i < eager.size(); ++i) {
        const Point &e = eager[i];
        const Point &f = fullpage[i];
        double win = f.runtime_ms > 0
                         ? 1.0 - e.runtime_ms / f.runtime_ms
                         : 0.0;
        t.add_row({Table::fmt_int(e.clients),
                   Table::fmt(f.runtime_ms, 2),
                   Table::fmt(e.runtime_ms, 2), Table::fmt_pct(win),
                   Table::fmt(e.mean_fault_ms, 3),
                   Table::fmt_pct(e.server_util),
                   Table::fmt_pct(e.wire_util)});
    }
    t.print(std::cout);
    if (knee)
        std::printf("\nsaturation knee: n=%u (first client count "
                    "with max server-stage\nutilization > 90%%)\n",
                    knee);
    else
        std::printf("\nno saturation knee up to n=%u (max server "
                    "util stayed <= 90%%)\n",
                    max_clients);
    std::printf("inline-callback heap fallbacks during the sweep: "
                "%llu\n",
                static_cast<unsigned long long>(heap_fallbacks));

    // The perf-smoke reference point: kernel dispatch rate at the
    // largest measured N <= 256 (stable across --max-clients).
    double mc_events_per_sec = 0.0;
    for (const Point &p : eager)
        if (p.clients <= 256)
            mc_events_per_sec = p.events_per_sec;

    std::ofstream out(out_path);
    if (out) {
        std::ostringstream js;
        js << "{\"bench\":\"cluster_scale\",\"scale\":" << scale
           << ",\"app\":\"gdb\",\"max_clients\":" << max_clients
           << ",\"knee_clients\":" << knee
           << ",\"mc_events_per_sec\":"
           << static_cast<uint64_t>(mc_events_per_sec)
           << ",\"heap_fallbacks\":" << heap_fallbacks
           << ",\"points\":[";
        for (size_t i = 0; i < eager.size(); ++i) {
            const Point &e = eager[i];
            const Point &f = fullpage[i];
            if (i)
                js << ",";
            js << "{\"clients\":" << e.clients
               << ",\"runtime_ms_sp1024\":" << e.runtime_ms
               << ",\"runtime_ms_p8192\":" << f.runtime_ms
               << ",\"mean_sp_wait_ms\":" << e.mean_fault_ms
               << ",\"server_util\":" << e.server_util
               << ",\"wire_util\":" << e.wire_util
               << ",\"kernel_events\":" << e.kernel_events
               << ",\"events_per_sec\":"
               << static_cast<uint64_t>(e.events_per_sec) << "}";
        }
        js << "]}\n";
        out << js.str();
        std::printf("wrote %s\n", out_path.c_str());
    } else {
        warn("cannot write %s", out_path.c_str());
    }
    return 0;
}
