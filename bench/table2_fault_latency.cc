/**
 * @file
 * Regenerates Table 2: page-fault latencies for eager-fullpage fetch
 * from remote memory, per subpage size — the calibration anchor of
 * the whole reproduction.
 *
 * Columns:
 *  - Subpage latency: fault until the program resumes (demand
 *    subpage arrival).
 *  - Rest of page: fault until the entire page has arrived.
 *  - Overlapped execution potential: the window between the two
 *    arrivals minus the receive-CPU cost of the rest-of-page
 *    message, as a percentage of the fullpage latency.
 *  - Sender pipelining: how much sooner the whole page completes
 *    than a single fullpage transfer, thanks to cross-message stage
 *    overlap.
 */

#include "bench/bench_common.h"

#include "net/network.h"
#include "sim/event_queue.h"

using namespace sgms;

namespace
{

struct FetchTimes
{
    Tick subpage;
    Tick rest;
    Tick rest_recv_cpu;
};

FetchTimes
measure(uint32_t demand_bytes, uint32_t rest_bytes)
{
    EventQueue eq;
    NetParams params = NetParams::an2();
    Network net(eq, params, 0);
    FetchTimes ft{TICK_NONE, TICK_NONE, 0};
    Tick t0 = params.fault_handle;
    net.send(t0, {0, 1, params.request_bytes, MsgKind::Request, false,
                  [&](Tick when, Tick) {
                      net.send(when, {1, 0, demand_bytes,
                                      MsgKind::DemandData, false,
                                      [&](Tick d, Tick) {
                                          ft.subpage = d;
                                      }});
                      if (rest_bytes) {
                          net.send(when,
                                   {1, 0, rest_bytes,
                                    MsgKind::BackgroundData, false,
                                    [&](Tick d, Tick rc) {
                                        ft.rest = d;
                                        ft.rest_recv_cpu = rc;
                                    }});
                      }
                  }});
    eq.run_all();
    return ft;
}

} // namespace

int
main()
{
    bench::banner("Table 2",
                  "page-fault latencies for eager fullpage fetch",
                  1.0);

    // Paper's measured values for side-by-side comparison.
    struct PaperRow
    {
        uint32_t size;
        double sp, rest;
        int overlap_pct, pipeline_pct;
    };
    const PaperRow paper[] = {
        {256, 0.45, 1.49, 50, 0},  {512, 0.47, 1.46, 47, 1},
        {1024, 0.52, 1.38, 40, 7}, {2048, 0.66, 1.25, 23, 16},
        {4096, 0.94, 1.23, 1, 17},
    };

    FetchTimes full = measure(8192, 0);
    double full_ms = ticks::to_ms(full.subpage);

    Table t({"Subpage", "Subpage (ms)", "Rest of Page (ms)",
             "Overlapped Exec", "Sender Pipelining", "paper sp/rest",
             "paper ovl/pipe"});
    for (const auto &row : paper) {
        FetchTimes ft = measure(row.size, 8192 - row.size);
        double sp_ms = ticks::to_ms(ft.subpage);
        double rest_ms = ticks::to_ms(ft.rest);
        double overlap =
            (ticks::to_ms(ft.rest - ft.subpage - ft.rest_recv_cpu)) /
            full_ms;
        double pipelining = (full_ms - rest_ms) / full_ms;
        char paper_lat[48], paper_pot[48];
        std::snprintf(paper_lat, sizeof(paper_lat), "%.2f / %.2f",
                      row.sp, row.rest);
        std::snprintf(paper_pot, sizeof(paper_pot), "%d%% / %d%%",
                      row.overlap_pct, row.pipeline_pct);
        t.add_row({format_bytes(row.size), Table::fmt(sp_ms, 2),
                   Table::fmt(rest_ms, 2),
                   Table::fmt_pct(std::max(0.0, overlap)),
                   Table::fmt_pct(std::max(0.0, pipelining)),
                   paper_lat, paper_pot});
    }
    t.add_row({"fullpage", "-", Table::fmt(full_ms, 2), "-", "-",
               "- / 1.48", "-"});
    t.print(std::cout);

    bench::section("csv");
    t.print_csv(std::cout);
    return 0;
}
