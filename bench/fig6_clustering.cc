/**
 * @file
 * Regenerates Figure 6: temporal clustering of page faults for
 * Modula-3 (cumulative faults vs simulation events), plus the
 * burst-fraction metric that section 4.2 ties to I/O overlap: most
 * of the speedup happens in periods of high fault rate.
 */

#include "bench/bench_common.h"

using namespace sgms;

int
main()
{
    double scale = scale_from_env(1.0);
    bench::banner("Figure 6",
                  "temporal clustering of page faults (Modula-3)",
                  scale);

    Experiment ex;
    ex.app = "modula3";
    ex.scale = scale;
    ex.mem = MemConfig::Half;
    ex.policy = "eager";
    ex.subpage_size = 1024;
    SimResult r = bench::run_labeled(ex);

    LinePlot plot("cumulative page faults vs trace position",
                  "references", "faults");
    Series s = r.clustering;
    s.name = "modula3";
    plot.add(s.downsampled(200));
    plot.print(std::cout, 76, 18);

    bench::section("burst metrics");
    std::printf("faults: %llu over %llu references\n",
                static_cast<unsigned long long>(r.page_faults),
                static_cast<unsigned long long>(r.refs));
    for (uint64_t window : {100000ull, 500000ull}) {
        double frac = r.burst_fault_fraction(window);
        std::printf("fraction of faults in high-rate windows "
                    "(>=3x avg rate, %lluk refs): %.0f%%\n",
                    static_cast<unsigned long long>(window / 1000),
                    frac * 100);
    }
    std::printf("I/O overlap share of background transfers: %.0f%%\n",
                r.io_overlap_share() * 100);
    std::printf("paper: fault curve shows steep high-fault periods "
                "(phase changes)\nseparated by quiet compute; I/O "
                "overlap concentrates in those bursts.\n");

    bench::section("csv");
    LinePlot csv_plot("", "refs", "faults");
    csv_plot.add(r.clustering.downsampled(400));
    csv_plot.print_csv(std::cout);
    return 0;
}
