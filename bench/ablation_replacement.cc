/**
 * @file
 * Ablation: replacement-policy sensitivity. The paper's simulator
 * defaults to LRU but is "determined by a configurable memory
 * management module"; this bench shows how the fault counts and the
 * subpage win change under FIFO and Clock.
 */

#include "bench/bench_common.h"

using namespace sgms;

int
main()
{
    double scale = scale_from_env(1.0);
    bench::banner("Ablation", "replacement policy sensitivity", scale);

    const std::vector<const char *> repls = {"lru", "fifo", "clock"};
    const std::vector<MemConfig> mems = {MemConfig::Half,
                                         MemConfig::Quarter};
    std::vector<Experiment> points;
    for (const char *repl : repls) {
        for (MemConfig mem : mems) {
            Experiment ex;
            ex.app = "modula3";
            ex.scale = scale;
            ex.mem = mem;
            ex.base.replacement = repl;
            ex.policy = "fullpage";
            points.push_back(ex);
            ex.policy = "eager";
            ex.subpage_size = 1024;
            points.push_back(ex);
        }
    }
    std::vector<SimResult> results = bench::run_batch(points);

    Table t({"policy", "config", "faults", "runtime (ms)",
             "eager 1K vs p_8192"});
    size_t i = 0;
    for (const char *repl : repls) {
        for (MemConfig mem : mems) {
            const SimResult &base = results[i++];
            const SimResult &eager = results[i++];
            t.add_row({repl, mem_config_name(mem),
                       Table::fmt_int(base.page_faults),
                       format_ms(base.runtime),
                       Table::fmt_pct(eager.reduction_vs(base))});
        }
    }
    t.print(std::cout);
    std::printf("\nexpected: the subpage win is robust across "
                "replacement policies;\nfault counts shift (FIFO/"
                "Clock approximate LRU) but the eager-vs-\nfullpage "
                "comparison keeps its shape.\n");
    return 0;
}
