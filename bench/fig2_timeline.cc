/**
 * @file
 * Regenerates Figure 2: detailed remote page-fetch timelines for a
 * fault served with full 8K pages, 2K subpages, and 1K subpages
 * under eager fullpage fetch.
 *
 * Rows are the five components of the paper's timelines (Req-CPU,
 * Req-DMA, Wire, Srv-DMA, Srv-CPU); glyphs mark what occupies each:
 *   r = request message, D = demand subpage, b = rest of page,
 *   f = fault handling fixed cost on the requesting CPU.
 */

#include "bench/bench_common.h"

#include <map>

#include "net/network.h"
#include "net/timeline.h"
#include "sim/event_queue.h"

using namespace sgms;

namespace
{

void
show_timeline(uint32_t demand_bytes, uint32_t rest_bytes)
{
    EventQueue eq;
    NetParams params = NetParams::an2();
    TimelineRecorder rec;
    Network net(eq, params, 0, &rec);
    Tick demand_at = 0, rest_at = 0;

    Tick t0 = params.fault_handle;
    net.send(t0, {0, 1, params.request_bytes, MsgKind::Request, false,
                  [&](Tick when, Tick) {
                      net.send(when, {1, 0, demand_bytes,
                                      MsgKind::DemandData, false,
                                      [&](Tick d, Tick) {
                                          demand_at = d;
                                      }});
                      if (rest_bytes) {
                          net.send(when,
                                   {1, 0, rest_bytes,
                                    MsgKind::BackgroundData, false,
                                    [&](Tick d, Tick) {
                                        rest_at = d;
                                    }});
                      }
                  }});
    eq.run_all();

    char title[128];
    if (rest_bytes) {
        std::snprintf(title, sizeof(title),
                      "%s subpage + %s rest (eager fullpage fetch)",
                      format_bytes(demand_bytes).c_str(),
                      format_bytes(rest_bytes).c_str());
    } else {
        std::snprintf(title, sizeof(title), "%s fullpage fetch",
                      format_bytes(demand_bytes).c_str());
    }

    GanttChart chart(title);
    const Component order[] = {Component::ReqCpu, Component::ReqDma,
                               Component::Wire, Component::SrvDma,
                               Component::SrvCpu};
    std::map<Component, std::vector<GanttSpan>> rows;
    // Fault-handling fixed cost occupies the requesting CPU first.
    rows[Component::ReqCpu].push_back({0, t0, 'f'});
    for (const auto &e : rec.entries()) {
        char glyph = 'r';
        if (e.kind == MsgKind::DemandData)
            glyph = 'D';
        else if (e.kind == MsgKind::BackgroundData)
            glyph = 'b';
        rows[e.comp].push_back({e.start, e.end, glyph});
    }
    for (Component comp : order)
        chart.add_row(component_name(comp), rows[comp]);
    chart.print(std::cout, 96);
    std::printf("  program resumes at %s", format_ms(demand_at).c_str());
    if (rest_bytes)
        std::printf("; page complete at %s", format_ms(rest_at).c_str());
    std::printf("\n\n");
}

} // namespace

int
main()
{
    bench::banner("Figure 2", "remote page fetch timelines", 1.0);
    std::printf("glyphs: f=fault handling, r=request, D=demand "
                "subpage, b=rest of page\n\n");
    show_timeline(1024, 7168);
    show_timeline(2048, 6144);
    show_timeline(8192, 0);
    std::printf("paper: resumes at 0.52/0.66/1.48 ms, page complete "
                "at 1.38/1.25/1.48 ms\n");
    return 0;
}
