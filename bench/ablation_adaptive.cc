/**
 * @file
 * Ablation: adaptive subpage sequencing. The fixed pipelining policy
 * sends the remainder of a page in ascending subpage order behind
 * the demand segment; the adaptive variant reorders the follow-on
 * segments from the observed inter-subpage reference distances. This
 * bench runs both across all five application models and reports the
 * runtime delta, emitting a machine-readable summary (default
 * results/BENCH_adaptive.json) next to the human-readable table.
 *
 * Usage: ablation_adaptive [--scale=S] [--out=FILE]
 */

#include <fstream>

#include "bench/bench_common.h"
#include "trace/apps.h"

using namespace sgms;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    double scale = opts.get_double("scale", scale_from_env(1.0));
    std::string out_path =
        opts.get("out", "results/BENCH_adaptive.json");

    bench::banner("Ablation",
                  "adaptive vs fixed subpage sequencing", scale);

    const std::vector<std::string> &apps = app_names();
    std::vector<Experiment> points;
    for (const std::string &app : apps) {
        Experiment ex;
        ex.app = app;
        ex.scale = scale;
        ex.subpage_size = 1024;
        ex.mem = MemConfig::Half;
        ex.policy = "pipelining";
        points.push_back(ex);
        ex.policy = "pipelining-adaptive";
        points.push_back(ex);
    }
    std::vector<SimResult> results = bench::run_batch(points);

    Table t({"app", "fixed (ms)", "adaptive (ms)", "delta",
             "faults", "page_wait delta"});
    struct Row
    {
        std::string app;
        const SimResult *fixed;
        const SimResult *adaptive;
    };
    std::vector<Row> rows;
    for (size_t i = 0; i < apps.size(); ++i) {
        const SimResult &fixed = results[2 * i];
        const SimResult &adaptive = results[2 * i + 1];
        rows.push_back({apps[i], &fixed, &adaptive});
        double pw_delta =
            fixed.page_wait
                ? 1.0 - static_cast<double>(adaptive.page_wait) /
                            static_cast<double>(fixed.page_wait)
                : 0.0;
        t.add_row({apps[i], format_ms(fixed.runtime),
                   format_ms(adaptive.runtime),
                   Table::fmt_pct(adaptive.reduction_vs(fixed)),
                   Table::fmt_int(adaptive.page_faults),
                   Table::fmt_pct(pw_delta)});
    }
    t.print(std::cout);
    std::printf("\nexpected: adaptive sequencing helps apps whose "
                "follow-on subpage\norder deviates from ascending "
                "(learned from observe_distance) and\nmatches fixed "
                "sequencing where ascending is already right.\n");

    std::ofstream out(out_path);
    if (out) {
        out << "{\"bench\":\"ablation_adaptive\",\"scale\":" << scale
            << ",\"apps\":[";
        for (size_t i = 0; i < rows.size(); ++i) {
            char buf[512];
            std::snprintf(
                buf, sizeof(buf),
                "%s{\"app\":\"%s\","
                "\"fixed_runtime_ns\":%lld,"
                "\"adaptive_runtime_ns\":%lld,"
                "\"reduction\":%.4f,"
                "\"fixed_page_wait_ns\":%lld,"
                "\"adaptive_page_wait_ns\":%lld,"
                "\"page_faults\":%llu}",
                i ? "," : "", rows[i].app.c_str(),
                static_cast<long long>(rows[i].fixed->runtime),
                static_cast<long long>(rows[i].adaptive->runtime),
                rows[i].adaptive->reduction_vs(*rows[i].fixed),
                static_cast<long long>(rows[i].fixed->page_wait),
                static_cast<long long>(rows[i].adaptive->page_wait),
                static_cast<unsigned long long>(
                    rows[i].adaptive->page_faults));
            out << buf;
        }
        out << "]}\n";
        std::printf("wrote %s\n", out_path.c_str());
    } else {
        warn("cannot write %s", out_path.c_str());
    }
    return 0;
}
