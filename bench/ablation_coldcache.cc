/**
 * @file
 * Ablation: warm vs cold global cache. The paper's measurements
 * assume a warm global cache ("all pages are assumed to initially
 * reside in remote memory"). With a cold cache, first-touch faults
 * go to disk and only re-faults after eviction hit network memory,
 * so the subpage benefit concentrates in the refault traffic.
 */

#include "bench/bench_common.h"

using namespace sgms;

int
main()
{
    double scale = scale_from_env(1.0);
    bench::banner("Ablation", "warm vs cold global cache", scale);

    const std::vector<bool> warms = {true, false};
    const std::vector<MemConfig> mems = {MemConfig::Half,
                                         MemConfig::Quarter};
    std::vector<Experiment> points;
    for (bool warm : warms) {
        for (MemConfig mem : mems) {
            Experiment ex;
            ex.app = "modula3";
            ex.scale = scale;
            ex.mem = mem;
            ex.base.gms.warm = warm;
            ex.policy = "fullpage";
            points.push_back(ex);
            ex.policy = "eager";
            ex.subpage_size = 1024;
            points.push_back(ex);
        }
    }
    std::vector<SimResult> results = bench::run_batch(points);

    Table t({"cache", "config", "policy", "runtime (ms)",
             "disk faults", "remote faults", "eager vs p_8192"});
    size_t i = 0;
    for (bool warm : warms) {
        for (MemConfig mem : mems) {
            const SimResult &base = results[i++];
            const SimResult &eager = results[i++];

            uint64_t disk_faults = 0;
            for (const auto &f : eager.faults)
                disk_faults += f.from_disk;
            t.add_row({warm ? "warm" : "cold", mem_config_name(mem),
                       "eager 1K", format_ms(eager.runtime),
                       Table::fmt_int(disk_faults),
                       Table::fmt_int(eager.page_faults - disk_faults),
                       Table::fmt_pct(eager.reduction_vs(base))});
        }
    }
    t.print(std::cout);
    std::printf("\nexpected: cold-cache runs pay disk latency for "
                "first touches, so total\nruntimes rise and the "
                "relative subpage win shrinks (subpages only help\n"
                "network-memory faults).\n");
    return 0;
}
