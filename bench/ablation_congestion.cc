/**
 * @file
 * Ablation: network scheduling and cluster-size effects the paper's
 * congestion model glosses over.
 *
 *  - demand priority + preemption (default; ATM cell interleaving)
 *    vs strict per-message FIFO: in FIFO, demand subpages of a fault
 *    burst queue behind earlier rest-of-page transfers and the
 *    subpage win shrinks;
 *  - number of GMS servers: one server serializes all server-side
 *    DMA/CPU, several spread it.
 */

#include "bench/bench_common.h"

using namespace sgms;

int
main()
{
    double scale = scale_from_env(1.0);
    bench::banner("Ablation", "congestion: scheduling and servers",
                  scale);

    bench::section("wire scheduling (modula3, 1/2-mem, 1K eager)");
    const std::vector<const char *> mode_names = {
        "priority+preemption (default)", "priority only",
        "strict FIFO"};
    std::vector<Experiment> points;
    for (int mode = 0; mode < 3; ++mode) {
        Experiment ex;
        ex.app = "modula3";
        ex.scale = scale;
        ex.mem = MemConfig::Half;
        if (mode >= 1)
            ex.base.net.preemptive_demand = false;
        if (mode >= 2)
            ex.base.net.priority_scheduling = false;
        ex.policy = "fullpage";
        points.push_back(ex);
        ex.policy = "eager";
        ex.subpage_size = 1024;
        points.push_back(ex);
    }
    std::vector<SimResult> results = bench::run_batch(points);

    Table t({"scheduling", "p_8192 (ms)", "sp_1024 (ms)",
             "improvement", "mean sp wait (ms)"});
    for (int mode = 0; mode < 3; ++mode) {
        const SimResult &base = results[2 * mode];
        const SimResult &eager = results[2 * mode + 1];
        double mean_sp =
            eager.page_faults
                ? ticks::to_ms(eager.sp_latency) / eager.page_faults
                : 0;
        t.add_row({mode_names[mode], format_ms(base.runtime),
                   format_ms(eager.runtime),
                   Table::fmt_pct(eager.reduction_vs(base)),
                   Table::fmt(mean_sp, 3)});
    }
    t.print(std::cout);
    std::printf("expected: FIFO inflates the demand-subpage wait "
                "(queued behind rest-of-page\ntransfers) and costs "
                "several points of improvement.\n");

    bench::section("GMS server count (modula3, 1/4-mem, 1K eager, "
                   "strict FIFO)");
    // Run the server sweep under FIFO so server-side contention is
    // visible (demand preemption otherwise hides it).
    const std::vector<uint32_t> server_counts = {1, 2, 4, 8};
    std::vector<Experiment> server_points;
    for (uint32_t servers : server_counts) {
        Experiment ex;
        ex.app = "modula3";
        ex.scale = scale;
        ex.mem = MemConfig::Quarter;
        ex.policy = "eager";
        ex.subpage_size = 1024;
        ex.base.gms.servers = servers;
        ex.base.net.preemptive_demand = false;
        ex.base.net.priority_scheduling = false;
        server_points.push_back(ex);
    }
    std::vector<SimResult> server_results =
        bench::run_batch(server_points);

    Table t2({"servers", "sp_1024 (ms)", "mean sp wait (ms)"});
    for (size_t i = 0; i < server_counts.size(); ++i) {
        const SimResult &r = server_results[i];
        double mean_sp =
            r.page_faults
                ? ticks::to_ms(r.sp_latency) / r.page_faults
                : 0;
        t2.add_row({Table::fmt_int(server_counts[i]),
                    format_ms(r.runtime), Table::fmt(mean_sp, 3)});
    }
    t2.print(std::cout);
    return 0;
}
