/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * event queue, stage resources, page table, replacement policies,
 * RNG / Zipf sampling, trace generation, cache simulation, and a
 * complete remote fetch through the staged network. These guard the
 * simulator's own performance (it has to chew through hundreds of
 * millions of trace events per experiment).
 */

#include <benchmark/benchmark.h>

#include "cache/cache_sim.h"
#include "common/random.h"
#include "core/simulator.h"
#include "mem/page_table.h"
#include "mem/replacement.h"
#include "net/network.h"
#include "sim/event_queue.h"
#include "trace/apps.h"

using namespace sgms;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (Tick t = 0; t < 1000; ++t)
            eq.schedule(t * 7 % 997, [&] { ++sink; });
        eq.run_all();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_ZipfPow(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.zipf(12800, 1.1));
}
BENCHMARK(BM_ZipfPow);

void
BM_ZipfTable(benchmark::State &state)
{
    Rng rng(1);
    ZipfTable table(12800, 1.1);
    for (auto _ : state)
        benchmark::DoNotOptimize(table.sample(rng));
}
BENCHMARK(BM_ZipfTable);

void
BM_PageTableFindHit(benchmark::State &state)
{
    PageGeometry geo(8192, 1024);
    PageTable pt(geo, 0);
    for (PageId p = 0; p < 1024; ++p)
        pt.install(p);
    PageId p = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pt.find(p));
        p = (p + 7) & 1023;
    }
}
BENCHMARK(BM_PageTableFindHit);

void
BM_LruTouch(benchmark::State &state)
{
    LruPolicy lru;
    for (PageId p = 0; p < 1024; ++p)
        lru.insert(p);
    PageId p = 0;
    for (auto _ : state) {
        lru.touch(p);
        p = (p + 7) & 1023;
    }
}
BENCHMARK(BM_LruTouch);

void
BM_TraceGeneration(benchmark::State &state)
{
    auto trace = make_app_trace("modula3", 0.1, 1);
    TraceEvent ev;
    for (auto _ : state) {
        if (!trace->next(ev))
            trace->reset();
        benchmark::DoNotOptimize(ev.addr);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void
BM_CacheSimAccess(benchmark::State &state)
{
    CacheSim sim = CacheSim::alpha250();
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sim.access(rng.below(1 << 22)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheSimAccess);

void
BM_RemoteFetch8K(benchmark::State &state)
{
    // One complete staged-network demand fetch (request + 8K page).
    NetParams params = NetParams::an2();
    for (auto _ : state) {
        EventQueue eq;
        Network net(eq, params);
        Tick arrival = 0;
        net.send(0, {0, 1, params.request_bytes, MsgKind::Request,
                     false, [&](Tick when, Tick) {
                         net.send(when, {1, 0, 8192,
                                         MsgKind::DemandData, false,
                                         [&](Tick d, Tick) {
                                             arrival = d;
                                         }});
                     }});
        eq.run_all();
        benchmark::DoNotOptimize(arrival);
    }
}
BENCHMARK(BM_RemoteFetch8K);

void
BM_SimulatorEndToEnd(benchmark::State &state)
{
    // Whole-simulator throughput in trace events per second.
    SimConfig cfg;
    cfg.policy = "eager";
    cfg.subpage_size = 1024;
    cfg.mem_pages = 64;
    uint64_t refs = 0;
    for (auto _ : state) {
        auto trace = make_app_trace("gdb", 1.0, 1);
        Simulator sim(cfg);
        SimResult r = sim.run(*trace);
        refs += r.refs;
        benchmark::DoNotOptimize(r.runtime);
    }
    state.SetItemsProcessed(refs);
}
BENCHMARK(BM_SimulatorEndToEnd);

} // namespace

BENCHMARK_MAIN();
