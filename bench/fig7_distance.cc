/**
 * @file
 * Regenerates Figure 7: distribution of the distance (in subpages)
 * from the faulted subpage to the next *different* subpage accessed
 * on the same page, for 2K (a) and 1K (b) subpages.
 *
 * Paper shape check: strong spatial locality — the +1 neighbour
 * dominates, which is what motivates the pipelining order (+1, -1,
 * then the rest).
 */

#include "bench/bench_common.h"

using namespace sgms;

namespace
{

void
show(uint32_t subpage, double scale)
{
    Experiment ex;
    ex.app = "modula3";
    ex.scale = scale;
    ex.mem = MemConfig::Half;
    ex.policy = "eager";
    ex.subpage_size = subpage;
    SimResult r = bench::run_labeled(ex);

    char title[64];
    std::snprintf(title, sizeof(title),
                  "next-subpage distance, %s subpages",
                  format_bytes(subpage).c_str());
    bench::section(title);

    const Histogram &h = r.next_subpage_distance;
    Table t({"distance", "count", "fraction"});
    BarChart chart("fraction of next accesses by distance", "");
    for (const auto &[d, c] : h.bins()) {
        double f = h.fraction(d);
        if (f < 0.005)
            continue;
        char label[16];
        std::snprintf(label, sizeof(label), "%+lld",
                      static_cast<long long>(d));
        t.add_row({label, Table::fmt_int(c), Table::fmt_pct(f, 1)});
        chart.add(label, f * 100);
    }
    t.print(std::cout);
    chart.print(std::cout, 50);
    std::printf("+1 share: %.0f%% (paper: dominant)\n",
                h.fraction(1) * 100);
}

} // namespace

int
main()
{
    double scale = scale_from_env(1.0);
    bench::banner(
        "Figure 7",
        "distance to next accessed subpage on the same page", scale);
    show(2048, scale); // Figure 7a
    show(1024, scale); // Figure 7b
    return 0;
}
