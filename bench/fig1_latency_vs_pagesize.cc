/**
 * @file
 * Regenerates Figure 1: transfer latency vs page size for a disk
 * subsystem, a heavily-loaded Ethernet, a lightly-loaded Ethernet,
 * and an ATM network.
 *
 * The figure's four observations to check in the output:
 *  1. disk has high latency even for zero-length transfers;
 *  2. networks have much lower initial overhead, so the per-byte
 *     term dominates their curves;
 *  3. even on ATM, smaller transfers cut latency substantially;
 *  4. lightly-loaded Ethernet beats disk for very small transfers
 *     while loaded Ethernet is worse than disk for full pages.
 */

#include "bench/bench_common.h"

#include "net/params.h"

using namespace sgms;

int
main()
{
    bench::banner("Figure 1", "latency vs page size by medium", 1.0);

    struct Medium
    {
        const char *name;
        NetParams net;
        bool is_disk;
        DiskParams disk;
    };
    const Medium media[] = {
        {"disk", {}, true, DiskParams::random_access()},
        {"loaded-ethernet", NetParams::loaded_ethernet(), false, {}},
        {"ethernet", NetParams::ethernet(), false, {}},
        {"atm-an2", NetParams::an2(), false, {}},
    };

    LinePlot plot("Figure 1: latency vs transfer size", "bytes", "ms");
    Table t({"bytes", "disk (ms)", "loaded-eth (ms)", "eth (ms)",
             "atm (ms)"});
    std::vector<Series> series(4);
    for (int i = 0; i < 4; ++i)
        series[i].name = media[i].name;

    for (uint32_t bytes = 0; bytes <= 8192; bytes += 512) {
        std::vector<std::string> row = {Table::fmt_int(bytes)};
        for (int i = 0; i < 4; ++i) {
            Tick lat = media[i].is_disk
                           ? media[i].disk.access_latency(bytes)
                           : media[i].net.demand_fetch_latency(
                                 std::max<uint32_t>(bytes, 1));
            series[i].add(bytes, ticks::to_ms(lat));
            row.push_back(Table::fmt(ticks::to_ms(lat), 2));
        }
        t.add_row(row);
    }
    for (auto &s : series)
        plot.add(std::move(s));

    t.print(std::cout);
    plot.print(std::cout, 72, 18);

    bench::section("figure-1 observations");
    auto disk0 = DiskParams::random_access().access_latency(0);
    auto atm0 = NetParams::an2().demand_fetch_latency(1);
    std::printf("disk zero-length latency : %s (high)\n",
                format_ms(disk0).c_str());
    std::printf("atm  zero-length latency : %s (low)\n",
                format_ms(atm0).c_str());
    std::printf("eth beats disk at 256B   : %s\n",
                NetParams::ethernet().demand_fetch_latency(256) <
                        DiskParams::default_local().access_latency(256)
                    ? "yes (paper: yes)"
                    : "NO (paper: yes)");
    std::printf("loaded eth worse than disk at 8K: %s\n",
                NetParams::loaded_ethernet().demand_fetch_latency(
                    8192) >
                        DiskParams::default_local().access_latency(
                            8192)
                    ? "yes (paper: yes)"
                    : "NO (paper: yes)");

    bench::section("csv");
    plot.print_csv(std::cout);
    return 0;
}
