/**
 * @file
 * Ablation beyond the paper: finite global (network) memory. The
 * paper assumes idle nodes always have room; here the per-server
 * store is capped and the global cache starts cold, so refaults on
 * discarded pages fall through to disk. This quantifies how much
 * idle memory the cluster must actually contribute for the paper's
 * warm-cache behaviour to hold.
 */

#include "bench/bench_common.h"

using namespace sgms;

int
main()
{
    double scale = scale_from_env(1.0);
    bench::banner("Ablation",
                  "finite global memory (modula3, 1/4-mem, cold)",
                  scale);

    uint64_t fp = app_footprint_pages("modula3", scale);
    std::printf("application footprint: %llu pages\n\n",
                static_cast<unsigned long long>(fp));

    const std::vector<double> fracs = {0.05, 0.25, 0.5, 1.0};
    std::vector<Experiment> points;
    for (double frac : fracs) {
        uint64_t cap_per_server = std::max<uint64_t>(
            1, static_cast<uint64_t>(fp * frac) / 4);
        Experiment ex;
        ex.app = "modula3";
        ex.scale = scale;
        ex.mem = MemConfig::Quarter;
        ex.base.gms.warm = false;
        ex.base.gms.servers = 4;
        ex.base.gms.server_capacity_pages = cap_per_server;
        ex.policy = "fullpage";
        points.push_back(ex);
        ex.policy = "eager";
        ex.subpage_size = 1024;
        points.push_back(ex);
    }
    std::vector<SimResult> results = bench::run_batch(points);

    Table t({"global capacity", "runtime (ms)", "disk faults",
             "remote faults", "discards", "eager vs p_8192"});
    for (size_t i = 0; i < fracs.size(); ++i) {
        double frac = fracs[i];
        const SimResult &base = results[2 * i];
        const SimResult &eager = results[2 * i + 1];

        uint64_t disk_faults = 0;
        for (const auto &f : eager.faults)
            disk_faults += f.from_disk;
        char label[48];
        std::snprintf(label, sizeof(label),
                      "%.0f%% of footprint", frac * 100);
        t.add_row({label, format_ms(eager.runtime),
                   Table::fmt_int(disk_faults),
                   Table::fmt_int(eager.page_faults - disk_faults),
                   Table::fmt_int(eager.global_discards),
                   Table::fmt_pct(eager.reduction_vs(base))});
    }
    t.print(std::cout);
    std::printf("\nexpected: once the cluster's idle memory covers "
                "the footprint, cold-cache\nbehaviour converges to "
                "the paper's warm-cache results; with less idle\n"
                "memory, disk faults eat the subpage benefit.\n");
    return 0;
}
