/**
 * @file
 * Shared helpers for the table/figure benches.
 *
 * Every bench regenerates one table or figure from the paper. Output
 * convention: a header naming the experiment, the paper's reference
 * values where applicable, an ASCII rendering of the figure, and the
 * raw data as CSV so it can be re-plotted.
 *
 * SGMS_SCALE scales the synthetic traces (1.0 = the paper's trace
 * sizes; smaller values run proportionally faster with the same
 * qualitative shapes).
 */

#ifndef SGMS_BENCH_BENCH_COMMON_H
#define SGMS_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <iostream>
#include <string>

#include "common/chart.h"
#include "common/logging.h"
#include "common/options.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"
#include "core/experiment.h"
#include "obs/session.h"

namespace sgms::bench
{

/** Print the standard bench banner. */
inline void
banner(const std::string &id, const std::string &title, double scale)
{
    std::printf("==============================================================\n");
    std::printf("%s: %s\n", id.c_str(), title.c_str());
    std::printf("trace scale: %g (SGMS_SCALE to change; 1.0 = paper)\n",
                scale);
    std::printf("==============================================================\n");
}

/** Section separator inside a bench. */
inline void
section(const std::string &name)
{
    std::printf("\n--- %s ---\n", name.c_str());
}

/** Run one experiment and echo a progress line. */
inline SimResult
run_labeled(const Experiment &ex)
{
    SimResult r = ex.run();
    std::fflush(stdout);
    return r;
}

/**
 * Observability wiring for a bench: parse --trace-out / --metrics /
 * --debug-flags / ... from its command line.
 */
inline obs::ObsSession
obs_session(int argc, char **argv)
{
    Options opts(argc, argv);
    return obs::ObsSession(opts);
}

/**
 * Run one experiment under an observability session. The session's
 * tracer is cleared first, so a --trace-out file always holds the
 * spans of the most recent experiment of the bench.
 */
inline SimResult
run_labeled(const Experiment &ex, const obs::ObsSession &obs)
{
    if (obs.tracer())
        obs.tracer()->clear();
    SimResult r = ex.run(obs);
    std::fflush(stdout);
    return r;
}

/** The subpage sizes the paper sweeps. */
inline const std::vector<uint32_t> &
paper_subpage_sizes()
{
    static const std::vector<uint32_t> sizes = {4096, 2048, 1024, 512,
                                                256};
    return sizes;
}

} // namespace sgms::bench

#endif // SGMS_BENCH_BENCH_COMMON_H
