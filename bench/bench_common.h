/**
 * @file
 * Shared helpers for the table/figure benches.
 *
 * Every bench regenerates one table or figure from the paper. Output
 * convention: a header naming the experiment, the paper's reference
 * values where applicable, an ASCII rendering of the figure, and the
 * raw data as CSV so it can be re-plotted.
 *
 * SGMS_SCALE scales the synthetic traces (1.0 = the paper's trace
 * sizes; smaller values run proportionally faster with the same
 * qualitative shapes).
 */

#ifndef SGMS_BENCH_BENCH_COMMON_H
#define SGMS_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/chart.h"
#include "common/logging.h"
#include "common/options.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"
#include "core/experiment.h"
#include "exec/parallel_runner.h"
#include "obs/session.h"
#include "trace/trace_store.h"

namespace sgms::bench
{

/** Print the standard bench banner. */
inline void
banner(const std::string &id, const std::string &title, double scale)
{
    std::printf("==============================================================\n");
    std::printf("%s: %s\n", id.c_str(), title.c_str());
    std::printf("trace scale: %g (SGMS_SCALE to change; 1.0 = paper)\n",
                scale);
    std::printf("==============================================================\n");
}

/** Section separator inside a bench. */
inline void
section(const std::string &name)
{
    std::printf("\n--- %s ---\n", name.c_str());
}

/**
 * The process-wide execution engine, configured from the environment
 * (SGMS_JOBS, SGMS_CACHE, SGMS_CACHE_DIR). Every bench routes its
 * experiments through it, so `SGMS_CACHE=1 ./build/bench/fig3_*`
 * replays unchanged points from the result cache with zero per-bench
 * code, and batched sections parallelize under SGMS_JOBS=N.
 */
inline exec::Engine &
engine()
{
    return exec::Engine::shared();
}

/** Run one experiment (through the shared engine's cache). */
inline SimResult
run_labeled(const Experiment &ex)
{
    SimResult r = engine().run(ex);
    std::fflush(stdout);
    return r;
}

/**
 * Run a batch of experiments, results in input order. Under
 * SGMS_JOBS=N the points execute concurrently; output is identical
 * to running them one by one.
 */
inline std::vector<SimResult>
run_batch(const std::vector<Experiment> &points)
{
    std::vector<SimResult> out = engine().run_all(points);
    std::fflush(stdout);
    return out;
}

/**
 * Run a batch under an observability session. When the session is
 * actually tracing, points run serially on the calling thread via
 * ex.run(obs) — span capture and timelines cannot survive a worker
 * thread or process — otherwise the batch goes through the engine
 * like run_batch().
 */
inline std::vector<SimResult>
run_batch(const std::vector<Experiment> &points,
          const obs::ObsSession &obs)
{
    if (obs.tracing()) {
        std::vector<SimResult> out;
        out.reserve(points.size());
        for (const Experiment &ex : points) {
            if (obs.tracer())
                obs.tracer()->clear();
            out.push_back(ex.run(obs));
        }
        std::fflush(stdout);
        return out;
    }
    return run_batch(points);
}

/**
 * A progress callback that prints "  app label mem" lines without
 * interleaving: safe to hand to run_sweep/run_all at any job count
 * (the lock keeps each line atomic; see the sweep.h contract).
 */
inline std::function<void(const Experiment &)>
progress_printer()
{
    auto mutex = std::make_shared<std::mutex>();
    return [mutex](const Experiment &ex) {
        std::lock_guard<std::mutex> lock(*mutex);
        std::printf("  %s %s %s\n", ex.app.c_str(),
                    ex.label().c_str(), mem_config_name(ex.mem));
        std::fflush(stdout);
    };
}

/**
 * Observability wiring for a bench: parse --trace-out / --metrics /
 * --debug-flags / ... from its command line. Also honors
 * --trace-dir=DIR (SGMS_TRACE_DIR env), pointing the trace store's
 * mapped tier at DIR so every bench can replay baked traces.
 */
inline obs::ObsSession
obs_session(int argc, char **argv)
{
    Options opts(argc, argv);
    if (opts.has("trace-dir"))
        trace_store_set_dir(opts.get("trace-dir"));
    return obs::ObsSession(opts);
}

/**
 * Run one experiment under an observability session. The session's
 * tracer is cleared first, so a --trace-out file always holds the
 * spans of the most recent experiment of the bench.
 */
inline SimResult
run_labeled(const Experiment &ex, const obs::ObsSession &obs)
{
    if (obs.tracer())
        obs.tracer()->clear();
    SimResult r = ex.run(obs);
    std::fflush(stdout);
    return r;
}

/** The subpage sizes the paper sweeps. */
inline const std::vector<uint32_t> &
paper_subpage_sizes()
{
    static const std::vector<uint32_t> sizes = {4096, 2048, 1024, 512,
                                                256};
    return sizes;
}

} // namespace sgms::bench

#endif // SGMS_BENCH_BENCH_COMMON_H
