/**
 * @file
 * Tests for the staged network model, including the calibration
 * against the paper's Table 2 (page-fault latencies on the Alpha/AN2
 * prototype) — the central fidelity check of the whole reproduction.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/params.h"
#include "net/resource.h"
#include "net/timeline.h"
#include "sim/event_queue.h"

namespace sgms
{
namespace
{

TEST(MsgKinds, EveryEnumeratorHasAName)
{
    // kMsgKindCount is derived from kLastMsgKind; anyone extending
    // the enum must extend msg_kind_name (and priority_of) with it.
    static_assert(kMsgKindCount ==
                  static_cast<size_t>(MsgKind::PutPage) + 1);
    std::set<std::string> names;
    for (size_t k = 0; k < kMsgKindCount; ++k) {
        const char *n = msg_kind_name(static_cast<MsgKind>(k));
        ASSERT_NE(n, nullptr);
        EXPECT_STRNE(n, "?") << "MsgKind " << k << " lacks a name";
        names.insert(n);
    }
    // Names are distinct (a copy-pasted duplicate would alias
    // per-kind metrics).
    EXPECT_EQ(names.size(), kMsgKindCount);
}

TEST(EventQueue, OrdersByTime)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run_all();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoTieBreak)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(5, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(3); });
    eq.run_all();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(10, [&] { ++ran; });
    eq.schedule(20, [&] { ++ran; });
    eq.schedule(30, [&] { ++ran; });
    eq.run_until(20);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(eq.next_time(), 30);
    eq.run_until(100);
    EXPECT_EQ(ran, 3);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.next_time(), TICK_MAX);
}

TEST(EventQueue, CallbackCanSchedule)
{
    EventQueue eq;
    std::vector<Tick> times;
    eq.schedule(1, [&] {
        times.push_back(1);
        eq.schedule(2, [&] { times.push_back(2); });
    });
    eq.run_all();
    EXPECT_EQ(times, (std::vector<Tick>{1, 2}));
    EXPECT_EQ(eq.executed(), 2u);
}

TEST(StageResource, SerializesWork)
{
    EventQueue eq;
    StageResource res(eq, Component::Wire, 0, nullptr);
    std::vector<std::pair<Tick, Tick>> spans;
    auto record = [&](Tick s, Tick e) { spans.emplace_back(s, e); };
    res.submit(0, 100, 0, 1, MsgKind::DemandData, record);
    res.submit(0, 50, 0, 2, MsgKind::DemandData, record);
    eq.run_all();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0], (std::pair<Tick, Tick>{0, 100}));
    EXPECT_EQ(spans[1], (std::pair<Tick, Tick>{100, 150}));
    EXPECT_EQ(res.completed(), 2u);
    EXPECT_EQ(res.total_busy(), 150);
}

TEST(StageResource, PriorityAmongQueued)
{
    EventQueue eq;
    StageResource res(eq, Component::Wire, 0, nullptr);
    std::vector<int> order;
    res.submit(0, 100, 0, 1, MsgKind::BackgroundData,
               [&](Tick, Tick) { order.push_back(1); });
    // Both queued while item 1 runs; the high-priority one (3) must
    // be served before the earlier-submitted low-priority one (2).
    res.submit(0, 10, 0, 2, MsgKind::BackgroundData,
               [&](Tick, Tick) { order.push_back(2); });
    res.submit(0, 10, 5, 3, MsgKind::DemandData,
               [&](Tick, Tick) { order.push_back(3); });
    eq.run_all();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(StageResource, RecordsTimeline)
{
    EventQueue eq;
    TimelineRecorder rec;
    StageResource res(eq, Component::SrvDma, 7, &rec);
    res.submit(5, 20, 0, 42, MsgKind::DemandData, [](Tick, Tick) {});
    eq.run_all();
    ASSERT_EQ(rec.entries().size(), 1u);
    const auto &e = rec.entries()[0];
    EXPECT_EQ(e.comp, Component::SrvDma);
    EXPECT_EQ(e.node, 7u);
    EXPECT_EQ(e.msg_id, 42u);
    EXPECT_EQ(e.start, 5);
    EXPECT_EQ(e.end, 25);
}

class NetworkFixture : public ::testing::Test
{
  protected:
    EventQueue eq;
    NetParams params = NetParams::an2();

    /**
     * Model a complete demand fetch of @p demand_bytes with an
     * optional background remainder of @p rest_bytes, as the
     * simulator performs it: fault-handle on the requester, request
     * message to the server, then the server responds with the
     * demand message (and immediately queues the rest).
     * Returns {demand arrival, rest arrival}.
     */
    std::pair<Tick, Tick>
    run_fetch(uint32_t demand_bytes, uint32_t rest_bytes)
    {
        EventQueue eq; // fresh queue: each fetch starts at time zero
        Network net(eq, params, /*requester=*/0);
        Tick demand_at = TICK_NONE, rest_at = TICK_NONE;
        Tick t0 = params.fault_handle;
        net.send(t0, {0, 1, params.request_bytes, MsgKind::Request,
                      false, [&](Tick when, Tick) {
                          // Server now sends the demand subpage and,
                          // for eager fullpage fetch, the remainder
                          // right behind it.
                          net.send(when,
                                   {1, 0, demand_bytes,
                                    MsgKind::DemandData, false,
                                    [&](Tick d, Tick) { demand_at = d; }});
                          if (rest_bytes) {
                              net.send(when,
                                       {1, 0, rest_bytes,
                                        MsgKind::BackgroundData, false,
                                        [&](Tick d, Tick) {
                                            rest_at = d;
                                        }});
                          }
                      }});
        eq.run_all();
        return {demand_at, rest_at};
    }
};

TEST_F(NetworkFixture, FullPageFetchMatchesPaper)
{
    // Paper Table 2: a full 8K page fault takes 1.48 ms.
    auto [arrival, rest] = run_fetch(8192, 0);
    EXPECT_NEAR(ticks::to_ms(arrival), 1.48, 0.10);
    EXPECT_EQ(rest, TICK_NONE);
}

/** Paper Table 2 rows: size -> (subpage latency, rest-of-page). */
struct Table2Row
{
    uint32_t size;
    double subpage_ms;
    double rest_ms;
};

class Table2Calibration : public NetworkFixture,
                          public ::testing::WithParamInterface<Table2Row>
{};

TEST_P(Table2Calibration, MatchesWithin8Percent)
{
    const auto &row = GetParam();
    auto [sp, rest] = run_fetch(row.size, 8192 - row.size);
    EXPECT_NEAR(ticks::to_ms(sp), row.subpage_ms,
                row.subpage_ms * 0.08)
        << "subpage latency for " << row.size;
    EXPECT_NEAR(ticks::to_ms(rest), row.rest_ms, row.rest_ms * 0.08)
        << "rest-of-page latency for " << row.size;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable2, Table2Calibration,
    ::testing::Values(Table2Row{256, 0.45, 1.49},
                      Table2Row{512, 0.47, 1.46},
                      Table2Row{1024, 0.52, 1.38},
                      Table2Row{2048, 0.66, 1.25},
                      Table2Row{4096, 0.94, 1.23}));

TEST_F(NetworkFixture, SubpageLatencyMonotonicInSize)
{
    Tick prev = 0;
    for (uint32_t s : {256, 512, 1024, 2048, 4096, 8192}) {
        auto [sp, rest] = run_fetch(s, 0);
        EXPECT_GT(sp, prev) << "size " << s;
        prev = sp;
    }
}

TEST_F(NetworkFixture, SenderPipeliningBeatsSingleMessage)
{
    // Two 4K messages complete before one 8K message (Table 2:
    // rest-of-page 1.23 ms < fullpage 1.48 ms) because their stages
    // overlap.
    auto [sp_full, r0] = run_fetch(8192, 0);
    auto [sp4, rest4] = run_fetch(4096, 4096);
    (void)r0;
    (void)sp4;
    EXPECT_LT(rest4, sp_full);
}

TEST_F(NetworkFixture, OneKRestSlowerThanTwoK)
{
    // The paper's surprising result: with 1K subpages the *total*
    // page arrival is later than with 2K, because the small first
    // message leaves a "space on the wire".
    auto [sp1, rest1] = run_fetch(1024, 7168);
    auto [sp2, rest2] = run_fetch(2048, 6144);
    EXPECT_LT(sp1, sp2);
    EXPECT_GT(rest1, rest2);
}

TEST_F(NetworkFixture, AnalyticLatencyMatchesSimulatedIdle)
{
    // demand_fetch_latency() is the closed-form version of the idle
    // network path; the staged simulation must agree exactly.
    for (uint32_t s : {256u, 1024u, 8192u}) {
        auto [sp, rest] = run_fetch(s, 0);
        EXPECT_EQ(sp, params.demand_fetch_latency(s)) << s;
    }
}

TEST_F(NetworkFixture, StatsTrackKindsAndBytes)
{
    Network net(eq, params);
    net.send(0, {0, 1, 64, MsgKind::Request, false, nullptr});
    net.send(0, {1, 0, 1024, MsgKind::DemandData, false, nullptr});
    net.send(0, {1, 0, 7168, MsgKind::BackgroundData, false, nullptr});
    eq.run_all();
    const auto &st = net.stats();
    EXPECT_EQ(st.messages, 3u);
    EXPECT_EQ(st.bytes, 64u + 1024u + 7168u);
    EXPECT_EQ(st.messages_by_kind[static_cast<int>(MsgKind::Request)],
              1u);
    EXPECT_EQ(st.bytes_by_kind[static_cast<int>(MsgKind::DemandData)],
              1024u);
}

TEST_F(NetworkFixture, CongestionDelaysSecondFetch)
{
    // Two concurrent demand fetches from the same server contend on
    // every shared stage; the second must arrive later.
    Network net(eq, params);
    Tick a1 = 0, a2 = 0;
    net.send(0, {1, 0, 8192, MsgKind::DemandData, false,
                 [&](Tick d, Tick) { a1 = d; }});
    net.send(0, {1, 0, 8192, MsgKind::DemandData, false,
                 [&](Tick d, Tick) { a2 = d; }});
    eq.run_all();
    EXPECT_GT(a2, a1);
    // But thanks to pipelining it is much better than 2x serial.
    Tick serial = 2 * params.data_message_latency(8192);
    EXPECT_LT(a2, serial);
}

TEST_F(NetworkFixture, PipelinedRecvCostIsZeroByDefault)
{
    Network net(eq, params);
    Tick cost = -1;
    net.send(0, {1, 0, 1024, MsgKind::BackgroundData, true,
                 [&](Tick, Tick c) { cost = c; }});
    eq.run_all();
    EXPECT_EQ(cost, 0);
}

TEST_F(NetworkFixture, PrototypePipelinedRecvCostMatchesPaper)
{
    // Prototype AN2 controller: 68 us for a 256-byte pipelined
    // subpage, 91 us for 1K (section 4.3).
    params.pipelined_recv_fixed = ticks::from_us(60);
    params.pipelined_recv_per_byte = ticks::from_ns(31);
    Network net(eq, params);
    Tick c256 = 0, c1k = 0;
    net.send(0, {1, 0, 256, MsgKind::BackgroundData, true,
                 [&](Tick, Tick c) { c256 = c; }});
    net.send(0, {1, 0, 1024, MsgKind::BackgroundData, true,
                 [&](Tick, Tick c) { c1k = c; }});
    eq.run_all();
    EXPECT_NEAR(ticks::to_us(c256), 68, 2);
    EXPECT_NEAR(ticks::to_us(c1k), 91, 3);
}

TEST_F(NetworkFixture, TimelineCapturesAllComponents)
{
    TimelineRecorder rec;
    Network net(eq, params, 0, &rec);
    net.send(0, {1, 0, 8192, MsgKind::DemandData, false, nullptr});
    eq.run_all();
    bool seen[5] = {};
    for (const auto &e : rec.entries())
        seen[static_cast<int>(e.comp)] = true;
    EXPECT_TRUE(seen[static_cast<int>(Component::SrvCpu)]);
    EXPECT_TRUE(seen[static_cast<int>(Component::SrvDma)]);
    EXPECT_TRUE(seen[static_cast<int>(Component::Wire)]);
    EXPECT_TRUE(seen[static_cast<int>(Component::ReqDma)]);
    EXPECT_TRUE(seen[static_cast<int>(Component::ReqCpu)]);
}

TEST(NetParams, EthernetSlowerThanAtm)
{
    auto atm = NetParams::an2();
    auto eth = NetParams::ethernet();
    auto loaded = NetParams::loaded_ethernet();
    for (uint32_t s : {256u, 8192u}) {
        EXPECT_GT(eth.demand_fetch_latency(s),
                  atm.demand_fetch_latency(s));
        EXPECT_GT(loaded.demand_fetch_latency(s),
                  eth.demand_fetch_latency(s));
    }
}

TEST(NetParams, Figure1Crossover)
{
    // Figure 1: even Ethernet beats disk for very small transfers,
    // while loaded Ethernet is worse than disk for full pages.
    auto eth = NetParams::ethernet();
    auto loaded = NetParams::loaded_ethernet();
    auto disk = DiskParams::default_local();
    EXPECT_LT(eth.demand_fetch_latency(256), disk.access_latency(256));
    EXPECT_GT(loaded.demand_fetch_latency(8192),
              disk.access_latency(8192));
}

TEST(DiskParams, PaperLatencyRange)
{
    // "an average local disk access takes 4 to 14 ms on the same
    // system, depending on the nature of the access".
    EXPECT_NEAR(ticks::to_ms(DiskParams::sequential().access_latency(8192)),
                4.0, 0.5);
    EXPECT_NEAR(
        ticks::to_ms(DiskParams::random_access().access_latency(8192)),
        14.0, 0.5);
}

} // namespace
} // namespace sgms
