/**
 * @file
 * Tests for the parallel execution engine (src/exec/): thread pool
 * semantics, result-blob codec fidelity, cache keying and blob
 * robustness, and the engine's determinism + progress contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "core/json_report.h"
#include "core/sweep.h"
#include "exec/parallel_runner.h"
#include "exec/result_cache.h"
#include "exec/result_codec.h"
#include "exec/thread_pool.h"
#include "net/timeline.h"

namespace sgms
{
namespace
{

using exec::CacheKey;
using exec::Engine;
using exec::ExecOptions;
using exec::ResultCache;
using exec::ThreadPool;

/** Fresh, empty per-test cache directory under the gtest temp dir. */
std::string
scratch_dir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "sgms_exec_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::string
blobs_of(const std::vector<SimResult> &results)
{
    std::ostringstream os;
    for (const auto &r : results)
        exec::write_result_blob(os, r);
    return os.str();
}

std::string
report_of(const std::vector<SimResult> &results)
{
    std::ostringstream os;
    write_results_json(os, results, /*include_faults=*/true);
    return os.str();
}

// ---------------------------------------------------------------- pool

TEST(ThreadPool, SubmitReturnsFutureResults)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.worker_count(), 3u);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
    pool.wait_idle();
    exec::PoolStats s = pool.stats();
    EXPECT_EQ(s.submitted, 64u);
    EXPECT_EQ(s.executed, 64u);
}

TEST(ThreadPool, PropagatesTaskExceptionsThroughFutures)
{
    ThreadPool pool(2);
    auto fut = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(fut.get(), std::runtime_error);
    // The pool itself survives a throwing task.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DestructorDrainsSubmittedWork)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
        // No explicit wait: ~ThreadPool must finish everything.
    }
    EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, WaitIdleBlocksUntilAllTasksFinish)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&ran] {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            ran.fetch_add(1);
        });
    }
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, IdleWorkerStealsFromBusySiblingsDeque)
{
    ThreadPool pool(2);
    // Gate the first task so the worker that takes it stays busy
    // while 16 more tasks pile up round-robin across BOTH deques.
    // The free worker can only run the blocked worker's share by
    // stealing — we hold the gate until every fast task finished.
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    auto blocker = pool.submit([opened] { opened.wait(); });
    std::vector<std::future<void>> fast;
    for (int i = 0; i < 16; ++i)
        fast.push_back(pool.submit([] {}));
    for (auto &f : fast)
        f.wait();
    EXPECT_GE(pool.stats().stolen, 1u);
    gate.set_value();
    blocker.wait();
    pool.wait_idle();
    EXPECT_EQ(pool.stats().executed, 17u);
}

TEST(ThreadPool, BoundedQueueBlocksSubmitters)
{
    ThreadPool pool(1, /*queue_capacity=*/2);
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    pool.submit([opened] { opened.wait(); }); // occupies the worker
    std::atomic<int> submitted{0}, ran{0};
    std::thread submitter([&] {
        for (int i = 0; i < 6; ++i) {
            pool.submit([&ran] { ran.fetch_add(1); });
            submitted.fetch_add(1);
        }
    });
    // With the worker gated, only `queue_capacity` submits can land;
    // the rest must block rather than buffer unboundedly.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_LE(submitted.load(), 2);
    gate.set_value();
    submitter.join();
    pool.wait_idle();
    EXPECT_EQ(submitted.load(), 6);
    EXPECT_EQ(ran.load(), 6);
    EXPECT_LE(pool.stats().peak_queued, 2u);
}

TEST(ThreadPoolDeathTest, SubmitAfterShutdownPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ThreadPool pool(1);
    pool.shutdown();
    EXPECT_DEATH(pool.submit([] {}), "submit after shutdown");
}

// --------------------------------------------------------------- codec

/** A SimResult with every field (and nested array) populated. */
SimResult
rich_result()
{
    SimResult r;
    r.app = "app \"quoted\"\n";
    r.policy = "pipelining";
    r.page_size = 8192;
    r.subpage_size = 512;
    r.mem_pages = 321;
    r.refs = 123456789;
    r.page_faults = 1021;
    r.lazy_subpage_faults = 77;
    r.evictions = 5;
    r.putpages = 6;
    r.emulated_accesses = 7;
    r.runtime = 9007199254740993ll; // needs exact 64-bit decode
    r.exec_time = 123;
    r.sp_latency = 456;
    r.page_wait = 789;
    r.recv_overhead = 10;
    r.emulation_overhead = 11;
    r.tlb_overhead = 12;
    r.io_overlap = 13;
    r.comp_overlap = 14;
    r.faults.push_back({42, 9, 1000, 2000, 3000, true});
    r.faults.push_back({43, 10, 1001, 2001, 0, false});
    r.clustering.name = "clustering";
    r.clustering.add(0.1, 1); // 0.1 is not exact in binary: %.17g path
    r.clustering.add(2e6, 3.25);
    r.next_subpage_distance.add(-3, 2);
    r.next_subpage_distance.add(1, 9);
    r.net_stats.messages = 100;
    r.net_stats.bytes = 200;
    for (size_t k = 0; k < kMsgKindCount; ++k) {
        r.net_stats.messages_by_kind[k] = 10 + k;
        r.net_stats.bytes_by_kind[k] = 20 + k;
    }
    r.net_stats.dropped = 1;
    r.net_stats.corrupted = 2;
    r.net_stats.duplicated = 3;
    r.tlb_stats.hits = 5000;
    r.tlb_stats.misses = 60;
    r.global_discards = 4;
    r.retries = 3;
    r.timeouts = 2;
    r.degraded_fetches = 1;
    r.duplicate_deliveries = 8;
    r.server_failures = 1;
    r.metrics.push_back(
        {"a.counter", obs::MetricKind::Counter, 4.0, 0, 0, 0, 0});
    r.metrics.push_back(
        {"b.gauge", obs::MetricKind::Gauge, 0.125, 0, 0, 0, 0});
    r.metrics.push_back({"c.dist", obs::MetricKind::Distribution,
                         6.6e6, 3, 2.2e6, 1.0e6, 3.0e6});
    r.requester_wire_busy = 15;
    r.requester_dma_busy = 16;
    r.requester_cpu_busy = 17;
    return r;
}

TEST(ResultCodec, RoundTripsEveryFieldExactly)
{
    SimResult r = rich_result();
    std::string blob = exec::result_blob(r);
    SimResult back;
    ASSERT_TRUE(exec::read_result_blob(blob, back));
    // Byte-identical re-encode is the strongest equality we have
    // (SimResult has no operator==) and exactly what the cache needs.
    EXPECT_EQ(exec::result_blob(back), blob);
    // Spot-check the trickiest representations anyway.
    EXPECT_EQ(back.app, r.app);
    EXPECT_EQ(back.runtime, 9007199254740993ll);
    ASSERT_EQ(back.faults.size(), 2u);
    EXPECT_EQ(back.faults[0].page, 42u);
    EXPECT_TRUE(back.faults[0].from_disk);
    EXPECT_FALSE(back.faults[1].from_disk);
    ASSERT_EQ(back.clustering.points.size(), 2u);
    EXPECT_EQ(back.clustering.points[0].first, 0.1);
    EXPECT_EQ(back.next_subpage_distance.count(-3), 2u);
    EXPECT_EQ(back.net_stats.messages_by_kind[kMsgKindCount - 1],
              10 + kMsgKindCount - 1);
    ASSERT_EQ(back.metrics.size(), 3u);
    EXPECT_EQ(back.metrics[2].kind, obs::MetricKind::Distribution);
    EXPECT_EQ(back.metrics[2].count, 3u);
}

TEST(ResultCodec, EmptyResultRoundTrips)
{
    SimResult r;
    std::string blob = exec::result_blob(r);
    SimResult back;
    ASSERT_TRUE(exec::read_result_blob(blob, back));
    EXPECT_EQ(exec::result_blob(back), blob);
}

TEST(ResultCodec, RejectsDamagedBlobs)
{
    std::string good = exec::result_blob(rich_result());
    SimResult out;
    EXPECT_FALSE(exec::read_result_blob("", out));
    EXPECT_FALSE(exec::read_result_blob("not json at all", out));
    // Truncation at any of a few depths: parse fails, reader says no.
    EXPECT_FALSE(
        exec::read_result_blob(good.substr(0, good.size() / 2), out));
    EXPECT_FALSE(exec::read_result_blob(good.substr(0, 10), out));
    // Valid JSON, wrong schema version.
    std::string bumped = good;
    size_t pos = bumped.find("\"schema\":");
    ASSERT_NE(pos, std::string::npos);
    bumped.replace(pos, 10, "\"schema\":9");
    EXPECT_FALSE(exec::read_result_blob(bumped, out));
    // Valid JSON, not a result blob.
    EXPECT_FALSE(exec::read_result_blob("{\"schema\":1}", out));
    EXPECT_FALSE(exec::read_result_blob("[1,2,3]", out));
}

// --------------------------------------------------------------- cache

TEST(ResultCache, KeyIsStableAcrossIdenticalExperiments)
{
    Experiment a;
    a.app = "modula3";
    a.scale = 0.1;
    Experiment b = a;
    EXPECT_EQ(exec::cache_key_of(a), exec::cache_key_of(b));
    EXPECT_EQ(exec::cache_key_of(a).hex(),
              exec::cache_key_of(b).hex());
    EXPECT_EQ(exec::cache_key_of(a).hex().size(), 32u);
    EXPECT_EQ(exec::experiment_fingerprint(a),
              exec::experiment_fingerprint(b));
}

TEST(ResultCache, KeyChangesWhenAnyInputChanges)
{
    Experiment base;
    base.app = "modula3";
    base.scale = 0.1;
    base.policy = "eager";

    std::vector<Experiment> variants;
    auto vary = [&](auto &&mutate) {
        Experiment ex = base;
        mutate(ex);
        variants.push_back(ex);
    };
    vary([](Experiment &e) { e.app = "gdb"; });
    vary([](Experiment &e) { e.scale = 0.2; });
    vary([](Experiment &e) { e.seed = 2; });
    vary([](Experiment &e) { e.policy = "pipelining"; });
    vary([](Experiment &e) { e.subpage_size = 2048; });
    vary([](Experiment &e) { e.mem = MemConfig::Quarter; });
    vary([](Experiment &e) { e.base.net.wire_per_byte *= 2; });
    vary([](Experiment &e) { e.base.gms.servers += 1; });
    vary([](Experiment &e) { e.base.disk.base += 1; });
    vary([](Experiment &e) { e.base.faults.duplicate_prob = 0.5; });
    vary([](Experiment &e) { e.base.faults.seed += 1; });
    vary([](Experiment &e) { e.base.retry.max_attempts += 1; });
    vary([](Experiment &e) { e.base.tlb_entries += 1; });
    vary([](Experiment &e) { e.base.record_faults = false; });

    std::set<std::string> keys;
    keys.insert(exec::cache_key_of(base).hex());
    for (const Experiment &ex : variants)
        keys.insert(exec::cache_key_of(ex).hex());
    // Every variant — and the base — must land on its own key.
    EXPECT_EQ(keys.size(), variants.size() + 1);
}

TEST(ResultCache, StoreThenLoadRoundTrips)
{
    ResultCache cache(scratch_dir("roundtrip"));
    CacheKey key{0x1234, 0x5678};
    EXPECT_FALSE(cache.load(key).has_value()); // cold miss
    SimResult r = rich_result();
    cache.store(key, r);
    auto back = cache.load(key);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(exec::result_blob(*back), exec::result_blob(r));
    exec::CacheStats s = cache.stats();
    EXPECT_EQ(s.stores, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.decode_failures, 0u);
    // A different key is a different blob: no accidental aliasing.
    EXPECT_FALSE(cache.load(CacheKey{0x1234, 0x5679}).has_value());
}

TEST(ResultCache, CorruptedBlobReadsAsMissNotFatal)
{
    ResultCache cache(scratch_dir("corrupt"));
    CacheKey key{1, 2};
    cache.store(key, rich_result());
    {
        std::ofstream f(cache.blob_path(key),
                        std::ios::binary | std::ios::trunc);
        f << "{\"schema\":1, \x01\x02 definitely not json";
    }
    EXPECT_FALSE(cache.load(key).has_value());
    EXPECT_EQ(cache.stats().decode_failures, 1u);
}

TEST(ResultCache, TruncatedBlobReadsAsMissNotFatal)
{
    ResultCache cache(scratch_dir("truncated"));
    CacheKey key{3, 4};
    SimResult r = rich_result();
    cache.store(key, r);
    std::string blob = exec::result_blob(r);
    {
        // Simulate a torn write: the first half of a valid blob.
        std::ofstream f(cache.blob_path(key),
                        std::ios::binary | std::ios::trunc);
        f << blob.substr(0, blob.size() / 2);
    }
    EXPECT_FALSE(cache.load(key).has_value());
    EXPECT_EQ(cache.stats().decode_failures, 1u);
    // Re-store repairs it.
    cache.store(key, r);
    EXPECT_TRUE(cache.load(key).has_value());
}

// ------------------------------------------------------------ eviction

/** Bytes of result blobs currently in @p dir. */
uint64_t
blob_bytes(const std::string &dir)
{
    uint64_t total = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        if (e.is_regular_file() &&
            e.path().extension() == ".json") {
            total += e.file_size();
        }
    }
    return total;
}

TEST(ResultCache, EvictionKeepsTheDirectoryUnderTheBound)
{
    std::string dir = scratch_dir("bound");
    SimResult r = rich_result();
    uint64_t blob = exec::result_blob(r).size();
    // Room for two blobs and change; never three.
    ResultCache cache(dir, 2 * blob + blob / 2);
    for (uint64_t i = 0; i < 8; ++i) {
        cache.store(CacheKey{i, i}, r);
        // The bound holds after EVERY store, not just eventually.
        EXPECT_LE(blob_bytes(dir), cache.max_bytes()) << i;
    }
    EXPECT_EQ(cache.stats().stores, 8u);
    EXPECT_EQ(cache.stats().evictions, 6u);
    // The most recent key is still resident.
    EXPECT_TRUE(cache.load(CacheKey{7, 7}).has_value());
}

TEST(ResultCache, EvictionIsLruSoATouchedBlobSurvives)
{
    std::string dir = scratch_dir("lru");
    SimResult r = rich_result();
    uint64_t blob = exec::result_blob(r).size();
    ResultCache cache(dir, 2 * blob + blob / 2);
    CacheKey a{1, 1}, b{2, 2}, c{3, 3};
    cache.store(a, r);
    cache.store(b, r);
    ASSERT_TRUE(cache.load(a).has_value()); // touch: a newer than b
    cache.store(c, r);                      // forces one eviction
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_TRUE(cache.load(a).has_value());
    EXPECT_FALSE(cache.load(b).has_value()); // b was the LRU victim
    EXPECT_TRUE(cache.load(c).has_value());
}

TEST(ResultCache, EvictionNeverYanksABlobMidRead)
{
    std::string dir = scratch_dir("midread");
    SimResult r = rich_result();
    std::string blob = exec::result_blob(r);
    ResultCache cache(dir, 0); // unbounded writer
    CacheKey key{9, 9};
    cache.store(key, r);

    // A reader opens the blob...
    std::ifstream in(cache.blob_path(key), std::ios::binary);
    ASSERT_TRUE(in.good());

    // ...then gc (any process) unlinks it out from under them.
    ResultCache bounded(dir, 1); // bound smaller than any blob
    EXPECT_EQ(bounded.gc(), 1u);
    EXPECT_FALSE(std::filesystem::exists(cache.blob_path(key)));

    // POSIX unlink semantics: the open stream still reads the whole
    // blob, which still decodes.
    std::ostringstream got;
    got << in.rdbuf();
    EXPECT_EQ(got.str(), blob);
    SimResult back;
    EXPECT_TRUE(exec::read_result_blob(got.str(), back));
    EXPECT_EQ(exec::result_blob(back), blob);
}

TEST(ResultCache, GcAdoptsBlobsWrittenWithoutAManifest)
{
    // An unbounded cache appends no manifest records; a later bounded
    // gc() must still rank those blobs — by file mtime — instead of
    // ignoring (or worse, always evicting) them.
    std::string dir = scratch_dir("adopt");
    SimResult r = rich_result();
    uint64_t blob = exec::result_blob(r).size();
    ResultCache unbounded(dir, 0);
    CacheKey old_key{1, 0}, mid_key{2, 0}, new_key{3, 0};
    unbounded.store(old_key, r);
    unbounded.store(mid_key, r);
    unbounded.store(new_key, r);
    auto now = std::filesystem::file_time_type::clock::now();
    std::filesystem::last_write_time(unbounded.blob_path(old_key),
                                     now - std::chrono::hours(2));
    std::filesystem::last_write_time(unbounded.blob_path(mid_key),
                                     now - std::chrono::hours(1));

    ResultCache bounded(dir, blob + blob / 2); // room for one
    EXPECT_EQ(bounded.gc(), 2u);
    EXPECT_FALSE(bounded.load(old_key).has_value());
    EXPECT_FALSE(bounded.load(mid_key).has_value());
    EXPECT_TRUE(bounded.load(new_key).has_value());
}

// -------------------------------------------------------------- engine

/** The determinism grid: small but multi-policy, multi-size. */
SweepSpec
engine_spec()
{
    SweepSpec spec;
    spec.apps = {"gdb"};
    spec.policies = {"fullpage", "eager", "pipelining"};
    spec.subpage_sizes = {1024, 2048};
    spec.mems = {MemConfig::Half};
    spec.scale = 0.3;
    return spec;
}

TEST(Engine, ExpandSweepMatchesPointCountAndOrder)
{
    SweepSpec spec = engine_spec();
    std::vector<Experiment> points = exec::expand_sweep(spec);
    ASSERT_EQ(points.size(), spec.point_count());
    EXPECT_EQ(points[0].policy, "fullpage");
    EXPECT_EQ(points[1].policy, "eager");
    EXPECT_EQ(points[1].subpage_size, 1024u);
    EXPECT_EQ(points[2].subpage_size, 2048u);
    EXPECT_EQ(points[3].policy, "pipelining");
}

TEST(Engine, ParallelResultsAreByteIdenticalToSerial)
{
    SweepSpec spec = engine_spec();

    ExecOptions serial_eo;
    serial_eo.jobs = 1;
    Engine serial(serial_eo);
    std::vector<SimResult> s = serial.run_sweep(spec);

    ExecOptions par_eo;
    par_eo.jobs = 8; // more workers than points is fine
    Engine par(par_eo);
    std::vector<SimResult> p = par.run_sweep(spec);

    ASSERT_EQ(s.size(), spec.point_count());
    ASSERT_EQ(p.size(), s.size());
    // Bytes, not fields: the lossless blob covers every field, and
    // the report is what downstream tooling actually diffs.
    EXPECT_EQ(blobs_of(p), blobs_of(s));
    EXPECT_EQ(report_of(p), report_of(s));

    exec::ExecStats ps = par.stats();
    EXPECT_EQ(ps.points_run, s.size());
    EXPECT_EQ(ps.points_cached, 0u);
    EXPECT_EQ(ps.workers, 8u);
    EXPECT_EQ(ps.pool.executed, s.size());
}

TEST(Engine, SerialProgressRunsOnCallerThreadInOrder)
{
    std::vector<Experiment> points =
        exec::expand_sweep(engine_spec());
    Engine engine(ExecOptions{}); // jobs = 1
    std::vector<std::string> seen;
    std::thread::id caller = std::this_thread::get_id();
    bool all_on_caller = true;
    engine.run_all(points, [&](const Experiment &ex) {
        seen.push_back(ex.label());
        all_on_caller &= std::this_thread::get_id() == caller;
    });
    ASSERT_EQ(seen.size(), points.size());
    EXPECT_TRUE(all_on_caller);
    for (size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(seen[i], points[i].label()) << i;
}

TEST(Engine, ParallelProgressFiresOncePerPointFromWorkerThreads)
{
    std::vector<Experiment> points =
        exec::expand_sweep(engine_spec());
    ExecOptions eo;
    eo.jobs = 4;
    Engine engine(eo);
    std::mutex mu;
    std::multiset<std::string> seen;
    std::set<std::thread::id> threads;
    std::thread::id caller = std::this_thread::get_id();
    engine.run_all(points, [&](const Experiment &ex) {
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(ex.label());
        threads.insert(std::this_thread::get_id());
    });
    // Exactly once per point (multiset catches duplicates) ...
    ASSERT_EQ(seen.size(), points.size());
    for (const Experiment &ex : points)
        EXPECT_EQ(seen.count(ex.label()),
                  static_cast<size_t>(
                      std::count_if(points.begin(), points.end(),
                                    [&](const Experiment &p) {
                                        return p.label() == ex.label();
                                    })))
            << ex.label();
    // ... and never on the calling thread: the documented contract is
    // that jobs>1 callbacks arrive on worker threads.
    EXPECT_EQ(threads.count(caller), 0u);
    EXPECT_GE(threads.size(), 1u);
}

TEST(Engine, WarmCacheServesEveryPointWithoutSimulating)
{
    std::string dir = scratch_dir("engine_warm");
    std::vector<Experiment> points =
        exec::expand_sweep(engine_spec());

    ExecOptions eo;
    eo.jobs = 2;
    eo.cache_enabled = true;
    eo.cache_dir = dir;

    Engine cold(eo);
    std::vector<SimResult> first = cold.run_all(points);
    exec::ExecStats cs = cold.stats();
    EXPECT_EQ(cs.points_run, points.size());
    EXPECT_EQ(cs.points_cached, 0u);
    EXPECT_EQ(cs.cache.stores, points.size());

    Engine warm(eo);
    std::vector<SimResult> second = warm.run_all(points);
    exec::ExecStats ws = warm.stats();
    EXPECT_EQ(ws.points_run, 0u);
    EXPECT_EQ(ws.points_cached, points.size());
    EXPECT_EQ(ws.cache.hits, points.size());

    // Cache hits are indistinguishable from re-simulation.
    EXPECT_EQ(blobs_of(second), blobs_of(first));
    EXPECT_EQ(report_of(second), report_of(first));
}

TEST(Engine, CacheMissesWhenSeedChanges)
{
    std::string dir = scratch_dir("engine_seed");
    Experiment ex;
    ex.app = "modula3";
    ex.scale = 0.1;

    ExecOptions eo;
    eo.cache_enabled = true;
    eo.cache_dir = dir;
    Engine engine(eo);

    engine.run(ex); // miss + store
    engine.run(ex); // hit
    Experiment other = ex;
    other.seed = 99;
    engine.run(other); // different key: miss, simulate again

    exec::ExecStats s = engine.stats();
    EXPECT_EQ(s.points_run, 2u);
    EXPECT_EQ(s.points_cached, 1u);
    EXPECT_EQ(s.cache.stores, 2u);
}

TEST(Engine, ObservedRunsBypassTheCache)
{
    std::string dir = scratch_dir("engine_observed");
    Experiment ex;
    ex.app = "modula3";
    ex.scale = 0.1;

    ExecOptions eo;
    eo.cache_enabled = true;
    eo.cache_dir = dir;
    Engine engine(eo);
    engine.run(ex); // populates the cache for the plain config

    // Attach an observer: the cached result cannot replay its side
    // effects, so the engine must simulate — and must not store.
    TimelineRecorder recorder;
    Experiment observed = ex;
    observed.base.timeline = &recorder;
    engine.run(observed);
    EXPECT_FALSE(recorder.entries().empty());

    exec::ExecStats s = engine.stats();
    EXPECT_EQ(s.points_run, 2u);
    EXPECT_EQ(s.points_cached, 0u);
    EXPECT_EQ(s.cache.stores, 1u);
}

TEST(Engine, BoundedCacheEvictsAndReportsTheMetric)
{
    std::string dir = scratch_dir("engine_evict");
    std::vector<Experiment> points =
        exec::expand_sweep(engine_spec());

    ExecOptions eo;
    eo.jobs = 1;
    eo.cache_enabled = true;
    eo.cache_dir = dir;
    eo.cache_max_bytes = 1; // smaller than any blob: evict everything
    Engine engine(eo);
    engine.run_all(points);

    exec::ExecStats s = engine.stats();
    EXPECT_EQ(s.cache.stores, points.size());
    EXPECT_GE(s.cache.evictions, points.size());
    EXPECT_LE(blob_bytes(dir), eo.cache_max_bytes);

    bool found = false;
    for (const auto &m : engine.metrics_snapshot()) {
        if (m.name == "exec.cache_evictions") {
            found = true;
            EXPECT_GE(m.value, static_cast<double>(points.size()));
        }
    }
    EXPECT_TRUE(found);
}

} // namespace
} // namespace sgms
