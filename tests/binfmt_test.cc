/**
 * @file
 * Tests for the SGMB binary trace pipeline: the format itself
 * (trace/binfmt.h), mmap replay (trace/mmap_trace.h), the trace
 * store's mapped tier (trace/trace_store.h), and the end-to-end
 * guarantee that heap, streamed, and mapped replay produce
 * byte-identical Experiment results.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "exec/result_codec.h"
#include "trace/apps.h"
#include "trace/binfmt.h"
#include "trace/mmap_trace.h"
#include "trace/trace.h"
#include "trace/trace_file.h"
#include "trace/trace_store.h"

namespace sgms
{
namespace
{

std::vector<TraceEvent>
drain(TraceSource &src)
{
    std::vector<TraceEvent> out;
    TraceEvent ev;
    while (src.next(ev))
        out.push_back(ev);
    return out;
}

void
expect_same_events(const std::vector<TraceEvent> &a,
                   const std::vector<TraceEvent> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].addr, b[i].addr) << "at index " << i;
        ASSERT_EQ(a[i].write, b[i].write) << "at index " << i;
    }
}

std::string
slurp(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

/** Overwrite @p len bytes of @p path at @p off (corruption helper). */
void
corrupt(const std::string &path, long off, const void *bytes,
        size_t len)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, off, SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(bytes, 1, len, f), len);
    std::fclose(f);
}

void
truncate_to(const std::string &path, uint64_t size)
{
    std::filesystem::resize_file(path, size);
}

/** A varied little trace exercising both flags and wide addresses. */
VectorTrace
sample_trace(uint64_t n = 1000)
{
    VectorTrace t;
    for (uint64_t i = 0; i < n; ++i)
        t.push(i * 4093 + (i << 33), i % 3 == 0);
    return t;
}

class BinFmtTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/sgms_binfmt_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    std::string
    path(const char *name) const
    {
        return dir_ + "/" + name;
    }

    /** Write a known-valid SGMB file and return its path. */
    std::string
    valid_file(const char *name = "valid.sgmb", uint64_t refs = 100)
    {
        VectorTrace t = sample_trace(refs);
        std::string p = path(name);
        write_bin_trace(t, p, "testapp", 0.5, 7);
        return p;
    }

    std::string dir_;
};

TEST(BinFmt, PackUnpackRoundTrip)
{
    TraceEvent ev{0x123456789abcull, true};
    TraceEvent back = unpack_trace_event(pack_trace_event(ev));
    EXPECT_EQ(back.addr, ev.addr);
    EXPECT_EQ(back.write, ev.write);
    ev.write = false;
    back = unpack_trace_event(pack_trace_event(ev));
    EXPECT_EQ(back.addr, ev.addr);
    EXPECT_FALSE(back.write);
    // The top usable address bit survives.
    TraceEvent top{(1ull << 62), true};
    EXPECT_EQ(unpack_trace_event(pack_trace_event(top)).addr, top.addr);
}

TEST_F(BinFmtTest, WriteReadRoundTripWithMetadata)
{
    VectorTrace t = sample_trace();
    std::string p = path("rt.sgmb");
    uint64_t n = write_bin_trace(t, p, "modula3", 0.25, 42);
    EXPECT_EQ(n, 1000u);

    BinTraceHeader hdr;
    std::string error;
    ASSERT_TRUE(read_bin_header(p, hdr, error)) << error;
    EXPECT_EQ(hdr.version, kBinTraceVersion);
    EXPECT_EQ(hdr.ref_count, 1000u);
    EXPECT_EQ(hdr.app, "modula3");
    EXPECT_EQ(hdr.scale, 0.25);
    EXPECT_EQ(hdr.seed, 42u);

    auto file = MappedTraceFile::open(p);
    EXPECT_EQ(file->payload_hash(), hdr.payload_hash);
    MmapReplayTrace replay(file);
    expect_same_events(drain(t), drain(replay));
}

TEST_F(BinFmtTest, AppNameTruncatedTo15Bytes)
{
    VectorTrace t = sample_trace(4);
    std::string p = path("longname.sgmb");
    write_bin_trace(t, p, "a-very-long-application-name", 1.0, 1);
    BinTraceHeader hdr;
    std::string error;
    ASSERT_TRUE(read_bin_header(p, hdr, error)) << error;
    EXPECT_EQ(hdr.app, "a-very-long-app");
}

TEST_F(BinFmtTest, ConverterTextToBinToTextIsIdentical)
{
    VectorTrace t;
    t.push(0xdeadbeef);
    t.push(0x10, true);
    t.push(0xffffffffffull);
    std::string text1 = path("a.txt");
    std::string bin = path("a.sgmb");
    std::string text2 = path("b.txt");
    write_trace_text(t, text1);

    auto src = open_trace(text1);
    write_bin_trace(*src, bin);
    auto back = open_trace(bin);
    write_trace_text(*back, text2);

    EXPECT_EQ(slurp(text1), slurp(text2));
}

TEST_F(BinFmtTest, OpenTraceSniffsAllThreeFormats)
{
    VectorTrace t = sample_trace(64);
    auto expected = drain(t);

    std::string text = path("t.txt");
    std::string sgmt = path("t.sgmt");
    std::string sgmb = path("t.sgmb");
    write_trace_text(t, text);
    write_trace_binary(t, sgmt);
    write_bin_trace(t, sgmb);

    for (const std::string &p : {text, sgmt, sgmb}) {
        auto src = open_trace(p);
        expect_same_events(expected, drain(*src));
    }
    // SGMB specifically gets the zero-copy mmap cursor.
    auto src = open_trace(sgmb);
    EXPECT_NE(dynamic_cast<MmapReplayTrace *>(src.get()), nullptr);
}

TEST_F(BinFmtTest, RejectsBadMagic)
{
    std::string p = valid_file();
    corrupt(p, 0, "NOPE", 4);
    std::string error;
    EXPECT_FALSE(MappedTraceFile::try_open(p, error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST_F(BinFmtTest, RejectsUnknownVersion)
{
    std::string p = valid_file();
    uint32_t v = 99;
    corrupt(p, 4, &v, sizeof(v));
    std::string error;
    EXPECT_FALSE(MappedTraceFile::try_open(p, error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST_F(BinFmtTest, RejectsForeignEndianness)
{
    std::string p = valid_file();
    uint32_t swapped = 0x04030201;
    corrupt(p, 8, &swapped, sizeof(swapped));
    std::string error;
    EXPECT_FALSE(MappedTraceFile::try_open(p, error));
    EXPECT_NE(error.find("endian"), std::string::npos) << error;
}

TEST_F(BinFmtTest, RejectsUnexpectedRecordSize)
{
    std::string p = valid_file();
    uint32_t rs = 12;
    corrupt(p, 12, &rs, sizeof(rs));
    std::string error;
    EXPECT_FALSE(MappedTraceFile::try_open(p, error));
    EXPECT_NE(error.find("record size"), std::string::npos) << error;
}

TEST_F(BinFmtTest, RejectsTruncatedHeader)
{
    std::string p = valid_file();
    truncate_to(p, 32);
    std::string error;
    EXPECT_FALSE(MappedTraceFile::try_open(p, error));
    EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST_F(BinFmtTest, RejectsTruncatedPayload)
{
    std::string p = valid_file("trunc.sgmb", 100);
    truncate_to(p, kBinTraceHeaderBytes + 99 * kBinTraceRecordBytes + 3);
    std::string error;
    EXPECT_FALSE(MappedTraceFile::try_open(p, error));
    EXPECT_NE(error.find("size mismatch"), std::string::npos) << error;
}

TEST_F(BinFmtTest, RejectsTrailingGarbage)
{
    std::string p = valid_file();
    std::ofstream(p, std::ios::app | std::ios::binary) << "extra";
    std::string error;
    EXPECT_FALSE(MappedTraceFile::try_open(p, error));
    EXPECT_NE(error.find("size mismatch"), std::string::npos) << error;
}

TEST_F(BinFmtTest, RejectsImplausibleRefCount)
{
    std::string p = valid_file();
    uint64_t huge = UINT64_MAX / 2;
    corrupt(p, 16, &huge, sizeof(huge));
    std::string error;
    EXPECT_FALSE(MappedTraceFile::try_open(p, error));
    EXPECT_NE(error.find("implausible"), std::string::npos) << error;
}

TEST_F(BinFmtTest, RejectsMissingFile)
{
    BinTraceHeader hdr;
    std::string error;
    EXPECT_FALSE(read_bin_header(path("nonexistent.sgmb"), hdr, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(MappedTraceFile::try_open(path("nonexistent.sgmb"),
                                           error));
}

TEST_F(BinFmtTest, FatalPathsDieCleanly)
{
    std::string p = valid_file();
    corrupt(p, 0, "NOPE", 4);
    EXPECT_DEATH({ MappedTraceFile::open(p); }, "magic");
    EXPECT_DEATH({ make_mapped_trace(p); }, "magic");
    // FileTrace refuses SGMB files with a pointer to the right API.
    std::string good = valid_file("good.sgmb");
    EXPECT_DEATH({ FileTrace f(good); }, "open_trace");
}

TEST_F(BinFmtTest, MultiCursorConcurrentReplayIsIdentical)
{
    VectorTrace t = sample_trace(20000);
    auto expected = drain(t);
    std::string p = path("mc.sgmb");
    write_bin_trace(t, p);

    auto file = MappedTraceFile::open(p);
    constexpr int kThreads = 4;
    std::vector<std::vector<TraceEvent>> got(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&file, &got, i] {
            MmapReplayTrace cursor(file);
            TraceEvent batch[97]; // odd size: exercise partial tails
            size_t n;
            while ((n = cursor.next_batch(batch, 97)) > 0)
                got[i].insert(got[i].end(), batch, batch + n);
        });
    }
    for (auto &th : threads)
        th.join();
    for (int i = 0; i < kThreads; ++i)
        expect_same_events(expected, got[i]);
}

TEST_F(BinFmtTest, CursorSeekAndReset)
{
    VectorTrace t = sample_trace(100);
    auto expected = drain(t);
    std::string p = path("seek.sgmb");
    write_bin_trace(t, p);

    MmapReplayTrace cursor(MappedTraceFile::open(p));
    cursor.seek(40);
    EXPECT_EQ(cursor.position(), 40u);
    auto tail = drain(cursor);
    ASSERT_EQ(tail.size(), 60u);
    EXPECT_EQ(tail[0].addr, expected[40].addr);
    cursor.reset();
    EXPECT_EQ(cursor.position(), 0u);
    expect_same_events(expected, drain(cursor));
}

TEST_F(BinFmtTest, TextReaderBatchesMatchPerRefReads)
{
    // Comments, blank lines, and a final line with no newline.
    std::string p = path("hand.txt");
    {
        std::ofstream f(p);
        f << "# hand-written trace\n";
        f << "R 100\n\nW 200\n";
        for (int i = 0; i < 500; ++i)
            f << (i % 2 ? "W " : "R ") << std::hex << (i * 8192) << "\n";
        f << "R deadbeef"; // no trailing newline
    }
    FileTrace per_ref(p);
    auto expected = drain(per_ref);
    ASSERT_EQ(expected.size(), 503u);
    EXPECT_EQ(expected.back().addr, 0xdeadbeefull);

    FileTrace batched(p);
    std::vector<TraceEvent> got;
    TraceEvent batch[7];
    size_t n;
    while ((n = batched.next_batch(batch, 7)) > 0)
        got.insert(got.end(), batch, batch + n);
    expect_same_events(expected, got);
}

/**
 * Trace-store fixture: every test gets a private mapped-tier
 * directory and leaves the store in the default heap configuration.
 */
class TraceStoreTierTest : public BinFmtTest
{
  protected:
    void
    SetUp() override
    {
        BinFmtTest::SetUp();
        trace_store_set_enabled(true);
        trace_store_set_dir("");
        trace_store_set_budget_bytes(256ull << 20);
        trace_store_clear();
    }

    void
    TearDown() override
    {
        trace_store_set_enabled(true);
        trace_store_set_dir("");
        trace_store_set_budget_bytes(256ull << 20);
        trace_store_clear();
        BinFmtTest::TearDown();
    }
};

TEST_F(TraceStoreTierTest, MappedTierServesAndReplaysIdentically)
{
    trace_store_set_dir(dir_);
    TraceStoreStats before = trace_store_stats();
    auto stored = make_stored_app_trace("gdb", 0.02, 3);
    TraceStoreStats after = trace_store_stats();
    EXPECT_EQ(after.baked_files - before.baked_files, 1u);
    EXPECT_EQ(after.mapped_files - before.mapped_files, 1u);
    EXPECT_GT(after.mapped_bytes, 0u);

    auto reference = make_app_trace("gdb", 0.02, 3);
    expect_same_events(drain(*reference), drain(*stored));
}

TEST_F(TraceStoreTierTest, BakedFileReusedAcrossClears)
{
    trace_store_set_dir(dir_);
    make_stored_app_trace("gdb", 0.02, 3);
    TraceStoreStats baked_once = trace_store_stats();

    // clear() drops the in-process mapping, approximating a fresh
    // process (or a forked worker starting over): the file on disk
    // must be reused, not re-baked.
    trace_store_clear();
    auto stored = make_stored_app_trace("gdb", 0.02, 3);
    TraceStoreStats again = trace_store_stats();
    EXPECT_EQ(again.baked_files, baked_once.baked_files);
    EXPECT_EQ(again.mapped_files - baked_once.mapped_files, 1u);
    EXPECT_GT(drain(*stored).size(), 0u);
}

TEST_F(TraceStoreTierTest, CorruptBakeIsRebaked)
{
    trace_store_set_dir(dir_);
    make_stored_app_trace("gdb", 0.02, 3);
    std::string p = baked_trace_path(dir_, "gdb", 0.02, 3);
    truncate_to(p, kBinTraceHeaderBytes + 8); // stale truncated copy
    trace_store_clear();

    TraceStoreStats before = trace_store_stats();
    auto stored = make_stored_app_trace("gdb", 0.02, 3);
    TraceStoreStats after = trace_store_stats();
    EXPECT_EQ(after.baked_files - before.baked_files, 1u);
    auto reference = make_app_trace("gdb", 0.02, 3);
    expect_same_events(drain(*reference), drain(*stored));
}

TEST_F(TraceStoreTierTest, BiggerThanBudgetTraceReplaysMapped)
{
    // A budget no trace fits in: the heap tier alone would stream
    // every request, but the mapped tier is file-backed and exempt.
    trace_store_set_budget_bytes(4096);
    trace_store_set_dir(dir_);

    TraceStoreStats before = trace_store_stats();
    auto stored = make_stored_app_trace("gdb", 0.02, 3);
    TraceStoreStats after = trace_store_stats();
    EXPECT_EQ(after.fallbacks, before.fallbacks);
    EXPECT_EQ(after.mapped_files - before.mapped_files, 1u);
    EXPECT_EQ(after.bytes, 0u); // nothing on the heap, nothing budgeted

    auto reference = make_app_trace("gdb", 0.02, 3);
    expect_same_events(drain(*reference), drain(*stored));

    // Same request without the mapped tier falls back to streaming.
    trace_store_set_dir("");
    trace_store_clear();
    auto streamed = make_stored_app_trace("gdb", 0.02, 3);
    TraceStoreStats fb = trace_store_stats();
    EXPECT_GT(fb.fallbacks, after.fallbacks);
    reference->reset();
    expect_same_events(drain(*reference), drain(*streamed));
}

TEST_F(TraceStoreTierTest, MappedRequestsHitTheCachedMapping)
{
    trace_store_set_dir(dir_);
    make_stored_app_trace("gdb", 0.02, 3);
    TraceStoreStats first = trace_store_stats();
    auto again = make_stored_app_trace("gdb", 0.02, 3);
    TraceStoreStats second = trace_store_stats();
    EXPECT_EQ(second.hits - first.hits, 1u);
    EXPECT_EQ(second.mapped_files, first.mapped_files);
    EXPECT_EQ(second.mapped_bytes, first.mapped_bytes);
    EXPECT_GT(drain(*again).size(), 0u);
}

/**
 * The pipeline's central promise: full Experiment::run results are
 * byte-identical whether the trace came from the heap store, a
 * streaming generator, or an mmap'd bake — for every app model.
 */
TEST_F(TraceStoreTierTest, ExperimentResultsByteIdenticalAcrossTiers)
{
    for (const std::string &app : app_names()) {
        Experiment ex;
        ex.app = app;
        ex.scale = 0.02;
        ex.seed = 1;
        ex.policy = "eager";
        ex.subpage_size = 1024;
        ex.mem = MemConfig::Half;

        // Heap tier (default store).
        trace_store_set_dir("");
        trace_store_set_budget_bytes(256ull << 20);
        trace_store_clear();
        std::string heap_blob = exec::result_blob(ex.run());

        // Streaming fallback (budget forces it).
        trace_store_set_budget_bytes(0);
        trace_store_clear();
        std::string stream_blob = exec::result_blob(ex.run());

        // Mapped tier.
        trace_store_set_budget_bytes(256ull << 20);
        trace_store_set_dir(dir_);
        trace_store_clear();
        std::string mmap_blob = exec::result_blob(ex.run());

        EXPECT_EQ(heap_blob, stream_blob) << app;
        EXPECT_EQ(heap_blob, mmap_blob) << app;
        trace_store_set_dir("");
    }
}

/** --trace-bin end to end: an experiment replaying an SGMB file. */
TEST_F(TraceStoreTierTest, ExperimentTraceBinMatchesMappedReplay)
{
    std::string p = bake_app_trace("gdb", 0.02, 3, dir_);

    Experiment file_ex;
    file_ex.app = "gdb-file"; // label only; the file is the trace
    file_ex.scale = 0.02;
    file_ex.seed = 3;
    file_ex.policy = "eager";
    file_ex.subpage_size = 1024;
    file_ex.mem = MemConfig::Half;
    file_ex.trace_bin = p;
    SimResult from_file = file_ex.run();

    Experiment synth_ex = file_ex;
    synth_ex.app = "gdb";
    synth_ex.trace_bin.clear();
    trace_store_set_dir("");
    trace_store_clear();
    SimResult from_synth = synth_ex.run();

    // Identity fields differ (the app label), but every measurement
    // must match: the file holds exactly the generator's references.
    EXPECT_EQ(from_file.refs, from_synth.refs);
    EXPECT_EQ(from_file.page_faults, from_synth.page_faults);
    EXPECT_EQ(from_file.runtime, from_synth.runtime);
    EXPECT_EQ(from_file.exec_time, from_synth.exec_time);
    EXPECT_EQ(from_file.mem_pages, from_synth.mem_pages);
}

} // namespace
} // namespace sgms
