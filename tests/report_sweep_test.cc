/**
 * @file
 * Tests for the JSON report writer, the grid-sweep driver, and the
 * future-network parameter scaling.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/json_report.h"
#include "core/sweep.h"
#include "net/params.h"

namespace sgms
{
namespace
{

SimResult
tiny_result()
{
    SimResult r;
    r.app = "test\"app";
    r.policy = "eager";
    r.page_size = 8192;
    r.subpage_size = 1024;
    r.refs = 100;
    r.page_faults = 2;
    r.runtime = ticks::from_ms(1.5);
    r.exec_time = ticks::from_ms(0.5);
    r.sp_latency = ticks::from_ms(1.0);
    r.next_subpage_distance.add(1, 5);
    r.next_subpage_distance.add(-1, 2);
    r.faults.push_back({7, 3, 0, ticks::from_ms(0.5), 0, false});
    r.faults.push_back({9, 50, 0, ticks::from_ms(0.5), 0, true});
    return r;
}

TEST(JsonReport, EscapesStrings)
{
    EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
    EXPECT_EQ(json_escape("a\nb"), "a\\nb");
    EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
    EXPECT_EQ(json_escape("plain"), "plain");
}

TEST(JsonReport, EscapesEveryControlCharacter)
{
    for (int c = 0; c < 0x20; ++c) {
        std::string in(1, static_cast<char>(c));
        std::string out = json_escape(in);
        // Every control char must be escaped to *something*...
        ASSERT_GE(out.size(), 2u) << "char " << c << " unescaped";
        EXPECT_EQ(out[0], '\\') << "char " << c;
        // ... and the named short escapes are used where they exist.
        if (c == '\n')
            EXPECT_EQ(out, "\\n");
        else if (c == '\t')
            EXPECT_EQ(out, "\\t");
        else {
            char want[8];
            std::snprintf(want, sizeof(want), "\\u%04x", c);
            EXPECT_EQ(out, want) << "char " << c;
        }
    }
    // Quotes and backslashes, alone and interleaved with text.
    EXPECT_EQ(json_escape("\"\\\""), "\\\"\\\\\\\"");
    EXPECT_EQ(json_escape("C:\\path\\\"x\""),
              "C:\\\\path\\\\\\\"x\\\"");
    // DEL (0x7f) and 8-bit bytes pass through untouched (the report
    // never escapes above 0x1f).
    EXPECT_EQ(json_escape("\x7f"), "\x7f");
}

TEST(JsonReport, PythonRoundTripsFullReport)
{
    if (std::system("python3 -c 'pass' >/dev/null 2>&1") != 0)
        GTEST_SKIP() << "python3 not available";

    SimResult r = tiny_result();
    r.app = "quote\"back\\slash\nnewline\ttab\x01!";
    r.retries = 3;
    r.timeouts = 2;
    r.degraded_fetches = 1;
    r.net_stats.dropped = 4;
    r.metrics.push_back({"fault.msgs_dropped",
                         obs::MetricKind::Counter, 4.0, 0, 0, 0, 0});
    r.metrics.push_back({"gms.retry_delay_ns",
                         obs::MetricKind::Distribution, 6.0e6, 3,
                         2.0e6, 1.0e6, 3.0e6});

    std::string path = ::testing::TempDir() + "report_roundtrip.json";
    {
        std::ofstream os(path);
        write_results_json(os, {r, tiny_result()},
                           /*include_faults=*/true);
    }
    // json.loads must accept the file and recover the exact strings
    // and counters we wrote, proving the escaping is real JSON.
    std::string script =
        "import json,sys\n"
        "rs=json.load(open(sys.argv[1]))\n"
        "assert len(rs)==2, len(rs)\n"
        "r=rs[0]\n"
        "assert r['app']=='quote\"back\\\\slash\\nnewline\\ttab"
        "\\x01!', repr(r['app'])\n"
        "assert r['retries']==3 and r['timeouts']==2\n"
        "assert r['degraded_fetches']==1\n"
        "assert r['msgs_dropped']==4\n"
        "assert r['metrics']['fault.msgs_dropped']==4\n"
        "assert r['metrics']['gms.retry_delay_ns']['count']==3\n"
        "assert len(r['faults'])==2\n"
        "assert rs[1]['app']=='test\"app'\n";
    std::string spath = ::testing::TempDir() + "report_roundtrip.py";
    {
        std::ofstream os(spath);
        os << script;
    }
    std::string cmd = "python3 " + spath + " " + path;
    EXPECT_EQ(std::system(cmd.c_str()), 0);
    std::remove(path.c_str());
    std::remove(spath.c_str());
}

TEST(JsonReport, EmitsCoreFields)
{
    std::ostringstream os;
    write_result_json(os, tiny_result());
    std::string j = os.str();
    EXPECT_NE(j.find("\"app\":\"test\\\"app\""), std::string::npos);
    EXPECT_NE(j.find("\"policy\":\"eager\""), std::string::npos);
    EXPECT_NE(j.find("\"page_faults\":2"), std::string::npos);
    EXPECT_NE(j.find("\"runtime_ms\":1.5"), std::string::npos);
    EXPECT_NE(j.find("\"distance_histogram\":{\"-1\":2,\"1\":5}"),
              std::string::npos);
    // Faults excluded by default.
    EXPECT_EQ(j.find("\"faults\":"), std::string::npos);
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j.back(), '}');
}

TEST(JsonReport, IncludesFaultsOnRequest)
{
    std::ostringstream os;
    write_result_json(os, tiny_result(), /*include_faults=*/true);
    std::string j = os.str();
    EXPECT_NE(j.find("\"faults\":[{"), std::string::npos);
    EXPECT_NE(j.find("\"from_disk\":true"), std::string::npos);
    EXPECT_NE(j.find("\"page\":7"), std::string::npos);
}

TEST(JsonReport, ArrayForm)
{
    std::ostringstream os;
    write_results_json(os, {tiny_result(), tiny_result()});
    std::string j = os.str();
    EXPECT_EQ(j.front(), '[');
    EXPECT_NE(j.find("},\n{"), std::string::npos);
}

TEST(Sweep, PointCountAccountsForSubpageDimension)
{
    SweepSpec spec;
    spec.apps = {"gdb", "modula3"};
    spec.policies = {"fullpage", "eager", "pipelining"};
    spec.subpage_sizes = {1024, 2048};
    spec.mems = {MemConfig::Half, MemConfig::Quarter};
    // fullpage: 2 apps x 2 mems x 1 = 4; eager & pipelining:
    // 2 x 2 x 2 = 8 each.
    EXPECT_EQ(spec.point_count(), 20u);
}

TEST(Sweep, RunsEveryPointAndLabelsResults)
{
    SweepSpec spec;
    spec.apps = {"gdb"};
    spec.policies = {"fullpage", "eager"};
    spec.subpage_sizes = {1024, 2048};
    spec.mems = {MemConfig::Half};
    spec.scale = 0.5;
    // Per the run_sweep contract the callback may fire from worker
    // threads when SGMS_JOBS > 1, so the counter must be atomic.
    std::atomic<int> progress_calls{0};
    auto results = run_sweep(
        spec, [&](const Experiment &) { ++progress_calls; });
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(progress_calls.load(), 3);
    EXPECT_EQ(results[0].app, "gdb");
    EXPECT_EQ(results[0].policy, "fullpage");
    EXPECT_EQ(results[0].subpage_size, 8192u);
    EXPECT_EQ(results[1].policy, "eager");
    EXPECT_EQ(results[1].subpage_size, 1024u);
    EXPECT_EQ(results[2].subpage_size, 2048u);
    // The eager runs must beat fullpage (sanity of the sweep data).
    EXPECT_LT(results[1].runtime, results[0].runtime);
}

TEST(FutureNetwork, ScalesPerByteRates)
{
    NetParams base = NetParams::an2();
    NetParams fast = NetParams::future(4, 2);
    EXPECT_EQ(fast.wire_per_byte, base.wire_per_byte / 4);
    EXPECT_EQ(fast.dma_per_byte, base.dma_per_byte / 4);
    EXPECT_EQ(fast.recv_fixed, base.recv_fixed / 2);
    EXPECT_EQ(fast.recv_per_byte, base.recv_per_byte); // memory speed
    EXPECT_LT(fast.demand_fetch_latency(8192),
              base.demand_fetch_latency(8192));
}

TEST(FutureNetwork, LargeTransfersBecomeRelativelyMoreExpensive)
{
    // The paper's closing prediction rests on this: as the network
    // outpaces memory, the 8K fetch becomes memory-copy-bound while
    // small fetches keep shrinking with the fixed costs — so the
    // 8K / 256B latency ratio *grows*, pushing the optimal subpage
    // size down.
    NetParams base = NetParams::an2();
    NetParams fast = NetParams::future(16, 4);
    double ratio_base =
        static_cast<double>(base.demand_fetch_latency(8192)) /
        base.demand_fetch_latency(256);
    double ratio_fast =
        static_cast<double>(fast.demand_fetch_latency(8192)) /
        fast.demand_fetch_latency(256);
    EXPECT_GT(ratio_fast, ratio_base);
}

} // namespace
} // namespace sgms
