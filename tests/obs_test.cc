/**
 * @file
 * Observability smoke tests: the tracer ring, Chrome trace export,
 * the metrics registry and its JSON round-trip through json_report,
 * debug-flag parsing, and the span/sp_latency accounting invariant.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <sstream>
#include <string>

#include "common/logging.h"
#include "core/json_report.h"
#include "core/simulator.h"
#include "obs/chrome_trace.h"
#include "obs/debug.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "trace/synthetic.h"

namespace sgms
{
namespace
{

// ---------------------------------------------------------------
// Minimal JSON syntax validator (no values kept): enough to assert
// the exporters emit well-formed documents without a JSON library.
// ---------------------------------------------------------------

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skip_ws();
        if (!value())
            return false;
        skip_ws();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skip_ws();
            if (!string())
                return false;
            skip_ws();
            if (peek() != ':')
                return false;
            ++pos_;
            skip_ws();
            if (!value())
                return false;
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skip_ws();
            if (!value())
                return false;
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char *lit)
    {
        size_t n = std::string(lit).size();
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skip_ws()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    size_t pos_ = 0;
};

/** The quickstart workload: small, but exercises every span type. */
WorkloadSpec
smoke_workload()
{
    WorkloadSpec spec;
    spec.name = "obs-smoke";
    spec.hot_pages = 8;

    PhaseSpec sweep;
    sweep.kind = PhaseSpec::Kind::SweepScan;
    sweep.page_lo = 8;
    sweep.page_hi = 72;
    sweep.refs = 64 * 10000;
    sweep.hot_frac = 1.0 - 1.0 / 10000;
    spec.phases.push_back(sweep);

    PhaseSpec dense;
    dense.kind = PhaseSpec::Kind::DenseScan;
    dense.page_lo = 72;
    dense.page_hi = 88;
    dense.stride = 64;
    dense.hot_frac = 0.9;
    dense.refs = 16 * 128 * 10;
    spec.phases.push_back(dense);
    return spec;
}

SimResult
run_traced(obs::Tracer &tracer)
{
    SimConfig cfg;
    cfg.policy = "eager";
    cfg.subpage_size = 1024;
    cfg.mem_pages = 44;
    cfg.tracer = &tracer;
    SyntheticTrace trace(smoke_workload(), /*seed=*/42);
    Simulator sim(cfg);
    return sim.run(trace);
}

TEST(Tracer, RingOverflowDropsOldest)
{
    obs::Tracer tr(4);
    for (int i = 0; i < 10; ++i) {
        tr.record(obs::SpanCategory::Net, "m", "t", i * 10, i * 10 + 5,
                  static_cast<uint64_t>(i));
    }
    EXPECT_EQ(tr.size(), 4u);
    EXPECT_EQ(tr.capacity(), 4u);
    EXPECT_EQ(tr.dropped(), 6u);
    EXPECT_EQ(tr.recorded(obs::SpanCategory::Net), 10u);
    auto spans = tr.spans();
    ASSERT_EQ(spans.size(), 4u);
    // Oldest retained first: ids 6..9.
    EXPECT_EQ(spans.front().id, 6u);
    EXPECT_EQ(spans.back().id, 9u);
    tr.clear();
    EXPECT_EQ(tr.size(), 0u);
    EXPECT_EQ(tr.dropped(), 0u);
}

// The sim-driven span tests require the instrumentation macros to be
// compiled in (SGMS_ENABLE_TRACING=ON, the default).
#if SGMS_OBS_TRACING

TEST(Tracer, SimRunRecordsEveryCategory)
{
    obs::Tracer tracer;
    SimResult r = run_traced(tracer);
    ASSERT_GT(r.page_faults, 0u);
    for (size_t c = 0; c < obs::SPAN_CATEGORIES; ++c) {
        EXPECT_GT(tracer.recorded(static_cast<obs::SpanCategory>(c)),
                  0u)
            << "no spans in category "
            << obs::span_category_name(
                   static_cast<obs::SpanCategory>(c));
    }
}

TEST(Tracer, DemandSpansSumToSpLatency)
{
    obs::Tracer tracer;
    SimResult r = run_traced(tracer);
    Tick sum = 0;
    uint64_t demand_spans = 0;
    for (const auto &s : tracer.spans()) {
        if (s.cat == obs::SpanCategory::Fault) {
            sum += s.duration();
            ++demand_spans;
        }
    }
    ASSERT_GT(demand_spans, 0u);
    ASSERT_GT(r.sp_latency, 0u);
    // The simulator emits one Fault span per sp_latency increment,
    // so the sum matches exactly — assert the 1% acceptance bound
    // and then exactness.
    double rel = std::abs(static_cast<double>(sum) -
                          static_cast<double>(r.sp_latency)) /
                 static_cast<double>(r.sp_latency);
    EXPECT_LT(rel, 0.01);
    EXPECT_EQ(sum, r.sp_latency);
}

TEST(Tracer, ChromeExportIsValidJson)
{
    obs::Tracer tracer;
    SimResult r = run_traced(tracer);
    (void)r;
    std::ostringstream os;
    obs::write_chrome_trace(os, tracer);
    std::string json = os.str();
    EXPECT_TRUE(JsonChecker(json).valid()) << "invalid trace JSON";
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Every category shows up as a cat attribute at least once.
    for (size_t c = 0; c < obs::SPAN_CATEGORIES; ++c) {
        std::string needle =
            std::string("\"cat\":\"") +
            obs::span_category_name(static_cast<obs::SpanCategory>(c)) +
            "\"";
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle;
    }
}

TEST(Tracer, FaultTimelineMentionsFaults)
{
    obs::Tracer tracer;
    run_traced(tracer);
    std::ostringstream os;
    obs::write_fault_timeline(os, tracer, 2);
    EXPECT_NE(os.str().find("fault"), std::string::npos);
    EXPECT_NE(os.str().find("demand"), std::string::npos);
}

#endif // SGMS_OBS_TRACING

TEST(Metrics, RegistryFindsAndSnapshots)
{
    obs::MetricsRegistry reg;
    obs::Counter &c = reg.counter("a.count");
    c.inc();
    c.inc(2);
    EXPECT_EQ(c.value(), 3u);
    // find-or-create returns the same object.
    EXPECT_EQ(&reg.counter("a.count"), &c);
    reg.gauge("a.gauge").set(1.5);
    obs::Distribution &d = reg.distribution("a.dist");
    d.add(1.0);
    d.add(3.0);

    auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    bool saw_counter = false;
    for (const auto &m : snap) {
        if (m.name == "a.count") {
            saw_counter = true;
            EXPECT_EQ(m.kind, obs::MetricKind::Counter);
            EXPECT_DOUBLE_EQ(m.value, 3.0);
        }
    }
    EXPECT_TRUE(saw_counter);
}

TEST(Metrics, JsonRoundTripsThroughReport)
{
    obs::Tracer tracer;
    SimResult r = run_traced(tracer);
    ASSERT_FALSE(r.metrics.empty());

    // The metrics block alone is valid JSON...
    std::ostringstream ms;
    obs::write_metrics_json(ms, r.metrics);
    EXPECT_TRUE(JsonChecker(ms.str()).valid());

    // ...and survives embedding in the full result report.
    std::ostringstream os;
    write_result_json(os, r);
    std::string json = os.str();
    EXPECT_TRUE(JsonChecker(json).valid()) << "invalid report JSON";
    std::string expect = "\"sim.page_faults\":" +
                         std::to_string(r.page_faults);
    EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
    EXPECT_NE(json.find(expect), std::string::npos);
    EXPECT_NE(json.find("\"net.messages\":"), std::string::npos);
    EXPECT_NE(json.find("\"sim.fault_wait_ns\":"), std::string::npos);
}

TEST(Debug, FlagParsing)
{
    uint32_t mask = obs::parse_debug_flags("Net,gms, POLICY");
    EXPECT_TRUE(mask & static_cast<uint32_t>(obs::DebugFlag::Net));
    EXPECT_TRUE(mask & static_cast<uint32_t>(obs::DebugFlag::Gms));
    EXPECT_TRUE(mask & static_cast<uint32_t>(obs::DebugFlag::Policy));
    EXPECT_FALSE(mask & static_cast<uint32_t>(obs::DebugFlag::Sim));
    EXPECT_EQ(obs::parse_debug_flags(""), 0u);

    uint32_t all = obs::parse_debug_flags("all");
    for (const auto &[name, flag] : obs::debug_flag_table())
        EXPECT_TRUE(all & static_cast<uint32_t>(flag)) << name;

    uint32_t prev = obs::set_debug_flags(mask);
    EXPECT_TRUE(obs::debug_enabled(obs::DebugFlag::Net));
    EXPECT_FALSE(obs::debug_enabled(obs::DebugFlag::Tlb));
    obs::set_debug_flags(prev);
}

TEST(Logging, SetQuietReturnsPrevious)
{
    bool orig = set_quiet(true);
    EXPECT_TRUE(set_quiet(false));
    EXPECT_FALSE(set_quiet(orig));
}

} // namespace
} // namespace sgms
