/**
 * @file
 * Tests for finite global-memory capacity and the resource
 * utilization statistics.
 */

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "gms/gms.h"
#include "trace/trace.h"

namespace sgms
{
namespace
{

TEST(GmsCapacity, UnlimitedByDefault)
{
    EventQueue eq;
    Network net(eq, NetParams::an2());
    GmsCluster gms(net, GmsConfig{2, false, false, 0}, 0);
    for (PageId p = 0; p < 10000; ++p)
        gms.put_page(0, p, 8192, false);
    EXPECT_EQ(gms.global_discards(), 0u);
    for (PageId p = 0; p < 10000; ++p)
        ASSERT_TRUE(gms.in_global_memory(p));
}

TEST(GmsCapacity, DropsOldestWhenFull)
{
    EventQueue eq;
    Network net(eq, NetParams::an2());
    GmsCluster gms(net, GmsConfig{1, false, false, 3}, 0);
    // One server, capacity 3: pages 0..4 evicted in order.
    for (PageId p = 0; p < 5; ++p)
        gms.put_page(0, p, 8192, false);
    EXPECT_EQ(gms.global_discards(), 2u);
    EXPECT_FALSE(gms.in_global_memory(0));
    EXPECT_FALSE(gms.in_global_memory(1));
    EXPECT_TRUE(gms.in_global_memory(2));
    EXPECT_TRUE(gms.in_global_memory(3));
    EXPECT_TRUE(gms.in_global_memory(4));
    EXPECT_EQ(gms.stored_on(1), 3u);
}

TEST(GmsCapacity, RepeatedPutDoesNotDuplicate)
{
    EventQueue eq;
    Network net(eq, NetParams::an2());
    GmsCluster gms(net, GmsConfig{1, false, false, 2}, 0);
    gms.put_page(0, 7, 8192, false);
    gms.put_page(0, 7, 8192, false);
    gms.put_page(0, 8, 8192, false);
    EXPECT_EQ(gms.global_discards(), 0u);
    EXPECT_EQ(gms.stored_on(1), 2u);
    EXPECT_TRUE(gms.in_global_memory(7));
    EXPECT_TRUE(gms.in_global_memory(8));
}

TEST(GmsCapacity, DroppedPageFaultsFromDiskInSimulator)
{
    // Cold cache, tiny global memory: cycling through pages forces
    // some refaults back to disk.
    VectorTrace t;
    for (int round = 0; round < 3; ++round)
        for (Addr p = 0; p < 8; ++p)
            t.push(p * 8192);
    SimConfig cfg;
    cfg.policy = "fullpage";
    cfg.mem_pages = 2;
    cfg.gms.warm = false;
    cfg.gms.servers = 1;
    cfg.gms.server_capacity_pages = 2;
    Simulator sim(cfg);
    SimResult r = sim.run(t);
    EXPECT_GT(r.global_discards, 0u);
    uint64_t disk_faults = 0;
    for (const auto &f : r.faults)
        disk_faults += f.from_disk;
    // First touches (8) from disk plus refaults whose copy was
    // discarded.
    EXPECT_GT(disk_faults, 8u);

    // With ample global capacity the refaults stay remote.
    SimConfig big = cfg;
    big.gms.server_capacity_pages = 100;
    auto t2 = t;
    SimResult rb = Simulator(big).run(t2);
    uint64_t disk_faults_big = 0;
    for (const auto &f : rb.faults)
        disk_faults_big += f.from_disk;
    EXPECT_EQ(disk_faults_big, 8u);
    EXPECT_LT(rb.runtime, r.runtime);
}

TEST(Utilization, TrackedForRequesterResources)
{
    VectorTrace t;
    for (Addr p = 0; p < 16; ++p)
        t.push(p * 8192);
    SimConfig cfg;
    cfg.policy = "eager";
    cfg.subpage_size = 1024;
    Simulator sim(cfg);
    SimResult r = sim.run(t);
    EXPECT_GT(r.requester_wire_busy, 0);
    EXPECT_GT(r.requester_dma_busy, 0);
    EXPECT_GT(r.requester_cpu_busy, 0);
    EXPECT_LE(r.requester_wire_busy, r.runtime);
    double util = r.wire_utilization();
    EXPECT_GT(util, 0.0);
    EXPECT_LT(util, 1.0);
    // 16 pages of 8K each crossed the wire; occupancy must be at
    // least the pure serialization time of those bytes.
    Tick min_wire = 16 * (NetParams::an2().wire_per_byte * 8192);
    EXPECT_GE(r.requester_wire_busy, min_wire);
}

} // namespace
} // namespace sgms
