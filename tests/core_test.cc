/**
 * @file
 * Tests for the trace-driven simulator core: fault timing, time
 * accounting, policies end-to-end, eviction/putpage flow, software
 * protection, TLB, and the per-fault instrumentation behind the
 * paper's figures.
 */

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/sim_config.h"
#include "core/simulator.h"
#include "trace/trace.h"

namespace sgms
{
namespace
{

constexpr Tick STEP = ticks::from_ns(12);

SimConfig
base_config(const std::string &policy, uint32_t subpage = 1024)
{
    SimConfig cfg;
    cfg.policy = policy;
    cfg.subpage_size =
        (policy == "fullpage" || policy == "disk") ? 8192 : subpage;
    return cfg;
}

/** A trace touching addresses in order. */
VectorTrace
trace_of(std::initializer_list<Addr> addrs, bool writes = false)
{
    VectorTrace t;
    for (Addr a : addrs)
        t.push(a, writes);
    return t;
}

TEST(SimCore, SingleFaultFullpageMatchesAnalyticLatency)
{
    auto t = trace_of({0});
    Simulator sim(base_config("fullpage"));
    SimResult r = sim.run(t);
    EXPECT_EQ(r.refs, 1u);
    EXPECT_EQ(r.page_faults, 1u);
    NetParams net = NetParams::an2();
    EXPECT_EQ(r.sp_latency, net.demand_fetch_latency(8192));
    EXPECT_EQ(r.runtime, r.sp_latency + STEP);
    EXPECT_EQ(r.exec_time, STEP);
    // Paper: ~1.48 ms for a remote 8K fault.
    EXPECT_NEAR(ticks::to_ms(r.sp_latency), 1.48, 0.1);
}

TEST(SimCore, SingleFaultEagerSubpageLatency)
{
    auto t = trace_of({0});
    Simulator sim(base_config("eager", 1024));
    SimResult r = sim.run(t);
    NetParams net = NetParams::an2();
    EXPECT_EQ(r.sp_latency, net.demand_fetch_latency(1024));
    // Paper: ~.52 ms for a 1K subpage fault.
    EXPECT_NEAR(ticks::to_ms(r.sp_latency), 0.52, 0.06);
    EXPECT_EQ(r.page_wait, 0);
}

TEST(SimCore, EagerBlocksOnRestWhenTouchedImmediately)
{
    // Touch subpage 0 (fault) then subpage 1 right away: the second
    // reference must stall until the rest-of-page transfer lands.
    auto t = trace_of({0, 1024});
    Simulator sim(base_config("eager", 1024));
    SimResult r = sim.run(t);
    EXPECT_EQ(r.page_faults, 1u);
    EXPECT_GT(r.page_wait, 0);
    // Total wait is within the paper's rest-of-page 1.38 ms ballpark
    // (minus the 12ns of execution between the two accesses).
    EXPECT_NEAR(ticks::to_ms(r.sp_latency + r.page_wait), 1.38, 0.15);
    EXPECT_EQ(r.runtime, r.exec_time + r.sp_latency + r.page_wait +
                             r.recv_overhead);
}

TEST(SimCore, EagerDoesNotBlockWhenTouchedLate)
{
    // Touch subpage 0, execute ~2 ms worth of references on the
    // first subpage, then touch subpage 1: by then the rest of the
    // page has arrived and there is no page_wait.
    VectorTrace t;
    t.push(0);
    for (int i = 0; i < 170000; ++i)
        t.push(8 * (i % 100)); // stay within subpage 0
    t.push(1024);
    Simulator sim(base_config("eager", 1024));
    SimResult r = sim.run(t);
    EXPECT_EQ(r.page_faults, 1u);
    EXPECT_EQ(r.page_wait, 0);
    // The rest-of-page receive interrupt steals CPU from the running
    // program exactly once.
    EXPECT_GT(r.recv_overhead, 0);
}

TEST(SimCore, ComponentsPartitionRuntime)
{
    // Random-ish workload over several pages with limited memory.
    VectorTrace t;
    for (int i = 0; i < 5000; ++i)
        t.push((i * 7919) % (64 * 8192));
    SimConfig cfg = base_config("eager", 1024);
    cfg.mem_pages = 16;
    Simulator sim(cfg);
    SimResult r = sim.run(t);
    EXPECT_EQ(r.runtime,
              r.exec_time + r.sp_latency + r.page_wait +
                  r.recv_overhead + r.emulation_overhead +
                  r.tlb_overhead);
    EXPECT_GT(r.page_faults, 16u);
    EXPECT_GT(r.evictions, 0u);
}

TEST(SimCore, DiskPolicyUsesDiskLatency)
{
    auto t = trace_of({0, 8192});
    SimConfig cfg = base_config("disk");
    Simulator sim(cfg);
    SimResult r = sim.run(t);
    EXPECT_EQ(r.page_faults, 2u);
    EXPECT_EQ(r.sp_latency,
              2 * cfg.disk.access_latency(8192));
    EXPECT_EQ(r.net_stats.messages, 0u);
    ASSERT_EQ(r.faults.size(), 2u);
    EXPECT_TRUE(r.faults[0].from_disk);
}

TEST(SimCore, ColdCacheFirstTouchFromDiskThenRemote)
{
    // Cold global cache: first fault on a page goes to disk; after
    // eviction the page lives in network memory, so the refault is
    // serviced remotely (and much faster).
    VectorTrace t;
    t.push(0);          // fault page 0 (disk)
    t.push(8192);       // fault page 1 (disk), evicts page 0
    t.push(2 * 8192);   // fault page 2 (disk), evicts page 1
    t.push(0);          // refault page 0: now in global memory
    SimConfig cfg = base_config("fullpage");
    cfg.mem_pages = 2;
    cfg.gms.warm = false;
    Simulator sim(cfg);
    SimResult r = sim.run(t);
    ASSERT_EQ(r.faults.size(), 4u);
    EXPECT_TRUE(r.faults[0].from_disk);
    EXPECT_TRUE(r.faults[1].from_disk);
    EXPECT_TRUE(r.faults[2].from_disk);
    EXPECT_FALSE(r.faults[3].from_disk);
    EXPECT_LT(r.faults[3].sp_wait, r.faults[0].sp_wait);
}

TEST(SimCore, LruEvictionOrder)
{
    // Capacity 2; touch pages 0,1, then 2 -> evicts 0; touching 0
    // again must fault.
    auto t = trace_of({0, 8192, 2 * 8192, 0});
    SimConfig cfg = base_config("fullpage");
    cfg.mem_pages = 2;
    Simulator sim(cfg);
    SimResult r = sim.run(t);
    EXPECT_EQ(r.page_faults, 4u);
    EXPECT_EQ(r.evictions, 2u);
}

TEST(SimCore, PutPageOnlyForDirtyVictims)
{
    // Page 0 written, page 1 read-only; both evicted.
    VectorTrace t;
    t.push(0, true);        // dirty page 0
    t.push(8192, false);    // clean page 1
    t.push(2 * 8192);       // evicts page 0 (LRU) -> putpage
    t.push(3 * 8192);       // evicts page 1 -> clean, no traffic
    SimConfig cfg = base_config("fullpage");
    cfg.mem_pages = 2;
    Simulator sim(cfg);
    SimResult r = sim.run(t);
    EXPECT_EQ(r.evictions, 2u);
    EXPECT_EQ(r.putpages, 1u);
    EXPECT_EQ(r.net_stats.messages_by_kind[static_cast<int>(
                  MsgKind::PutPage)],
              1u);
}

TEST(SimCore, LazyPolicyRefetchesSubpages)
{
    // Lazy: fault on subpage 0 fetches only it; touching subpage 1
    // is a *new* subpage fault, not a page fault.
    auto t = trace_of({0, 1024, 2048});
    Simulator sim(base_config("lazy", 1024));
    SimResult r = sim.run(t);
    EXPECT_EQ(r.page_faults, 1u);
    EXPECT_EQ(r.lazy_subpage_faults, 2u);
    NetParams net = NetParams::an2();
    EXPECT_EQ(r.sp_latency, 3 * net.demand_fetch_latency(1024));
    // Lazy ships only what was touched.
    EXPECT_EQ(r.net_stats.bytes_by_kind[static_cast<int>(
                  MsgKind::DemandData)],
              3 * 1024u);
}

TEST(SimCore, PipeliningDeliversNeighborBeforeRest)
{
    // Fault subpage 3, then touch +1 (subpage 4) immediately: with
    // pipelining the +1 subpage arrives long before the rest of the
    // page would, so the wait is much shorter than under eager.
    auto t = trace_of({3 * 1024, 4 * 1024});
    Simulator eager_sim(base_config("eager", 1024));
    Simulator pipe_sim(base_config("pipelining", 1024));
    auto t2 = t;
    SimResult re = eager_sim.run(t);
    SimResult rp = pipe_sim.run(t2);
    EXPECT_EQ(re.page_faults, 1u);
    EXPECT_EQ(rp.page_faults, 1u);
    EXPECT_EQ(re.sp_latency, rp.sp_latency);
    EXPECT_LT(rp.page_wait, re.page_wait / 2);
}

TEST(SimCore, PipelinedSubpagesHaveNoReceiveCost)
{
    // With the intelligent controller (paper's simulation
    // assumption) the pipelined follow-on subpages steal no CPU.
    VectorTrace t;
    t.push(0);
    for (int i = 0; i < 200000; ++i)
        t.push(8 * (i % 50));
    SimConfig cfg = base_config("pipelining-all", 1024);
    Simulator sim(cfg);
    SimResult r = sim.run(t);
    EXPECT_EQ(r.recv_overhead, 0);

    // The prototype's AN2 controller, by contrast, pays an interrupt
    // per pipelined subpage (68-91 us each).
    SimConfig proto = cfg;
    proto.net.pipelined_recv_fixed = ticks::from_us(60);
    proto.net.pipelined_recv_per_byte = ticks::from_ns(31);
    auto t2 = t;
    Simulator sim2(proto);
    SimResult r2 = sim2.run(t2);
    EXPECT_GT(r2.recv_overhead, 0);
}

TEST(SimCore, SoftwarePalChargesEmulation)
{
    // Touch subpage 0 (fault), then access it again while the page
    // is still incomplete: under SoftwarePal each such access pays
    // the PAL emulation cost; under HardwareTlb it is free.
    VectorTrace t;
    t.push(0);
    for (int i = 0; i < 100; ++i)
        t.push(8 * i);
    SimConfig hw = base_config("eager", 1024);
    SimConfig sw = hw;
    sw.protection = ProtectionMode::SoftwarePal;
    auto t2 = t;
    SimResult rh = Simulator(hw).run(t);
    SimResult rs = Simulator(sw).run(t2);
    EXPECT_EQ(rh.emulation_overhead, 0);
    EXPECT_EQ(rh.emulated_accesses, 0u);
    EXPECT_GT(rs.emulation_overhead, 0);
    EXPECT_GT(rs.emulated_accesses, 50u);
    // First emulated access is slow, later same-page ones fast.
    PalCosts c;
    EXPECT_EQ(rs.emulation_overhead,
              c.slow_load +
                  static_cast<Tick>(rs.emulated_accesses - 1) *
                      c.fast_load);
}

TEST(SimCore, SoftwarePalSlowdownUnderOnePercent)
{
    // The paper: "emulation slowed execution by less than 1% for the
    // workloads we examined".
    Experiment hw;
    hw.app = "modula3";
    hw.scale = 0.05;
    hw.policy = "eager";
    hw.subpage_size = 1024;
    hw.mem = MemConfig::Half;
    Experiment sw = hw;
    sw.base.protection = ProtectionMode::SoftwarePal;
    SimResult rh = hw.run();
    SimResult rs = sw.run();
    EXPECT_GT(rs.emulated_accesses, 0u);
    double slowdown =
        static_cast<double>(rs.runtime - rh.runtime) / rh.runtime;
    EXPECT_LT(slowdown, 0.01);
    EXPECT_GE(slowdown, 0.0);
}

TEST(SimCore, TlbMissesCharged)
{
    VectorTrace t;
    // Sweep far more pages than the TLB holds, repeatedly.
    for (int round = 0; round < 10; ++round)
        for (Addr p = 0; p < 64; ++p)
            t.push(p * 8192);
    SimConfig cfg = base_config("fullpage");
    cfg.tlb_enabled = true;
    cfg.tlb_entries = 32;
    cfg.tlb_assoc = 32;
    Simulator sim(cfg);
    SimResult r = sim.run(t);
    EXPECT_GT(r.tlb_stats.misses, 64u * 9);
    EXPECT_EQ(r.tlb_overhead,
              static_cast<Tick>(r.tlb_stats.misses) *
                  cfg.tlb_miss_cost);
}

TEST(SimCore, FaultRecordsCarryWaits)
{
    auto t = trace_of({0, 1024});
    Simulator sim(base_config("eager", 1024));
    SimResult r = sim.run(t);
    ASSERT_EQ(r.faults.size(), 1u);
    EXPECT_EQ(r.faults[0].page, 0u);
    EXPECT_EQ(r.faults[0].ref_index, 0u);
    EXPECT_EQ(r.faults[0].sp_wait, r.sp_latency);
    EXPECT_EQ(r.faults[0].page_wait, r.page_wait);
    EXPECT_EQ(r.faults[0].total_wait(), r.sp_latency + r.page_wait);
}

TEST(SimCore, DistanceHistogramRecordsNeighbor)
{
    // Fault subpage 2, later touch subpage 3 -> distance +1; on a
    // second page fault subpage 5, later touch 3 -> distance -2.
    auto t = trace_of({2 * 1024, 3 * 1024,
                       8192 + 5 * 1024, 8192 + 3 * 1024,
                       8192 + 6 * 1024});
    Simulator sim(base_config("eager", 1024));
    SimResult r = sim.run(t);
    EXPECT_EQ(r.next_subpage_distance.count(1), 1u);
    EXPECT_EQ(r.next_subpage_distance.count(-2), 1u);
    // Only the FIRST different subpage counts: the access to +1
    // after -2 on page 1 must not add another sample.
    EXPECT_EQ(r.next_subpage_distance.total(), 2u);
}

TEST(SimCore, ClusteringSeriesMonotonic)
{
    VectorTrace t;
    for (int i = 0; i < 32; ++i)
        t.push(i * 8192);
    Simulator sim(base_config("fullpage"));
    SimResult r = sim.run(t);
    ASSERT_EQ(r.clustering.points.size(), 32u);
    for (size_t i = 1; i < r.clustering.points.size(); ++i) {
        EXPECT_GE(r.clustering.points[i].first,
                  r.clustering.points[i - 1].first);
        EXPECT_EQ(r.clustering.points[i].second,
                  static_cast<double>(i + 1));
    }
}

TEST(SimCore, DeterministicAcrossRuns)
{
    Experiment ex;
    ex.app = "gdb";
    ex.scale = 0.5;
    ex.policy = "pipelining";
    ex.subpage_size = 512;
    ex.mem = MemConfig::Quarter;
    SimResult a = ex.run();
    SimResult b = ex.run();
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.page_faults, b.page_faults);
    EXPECT_EQ(a.sp_latency, b.sp_latency);
    EXPECT_EQ(a.page_wait, b.page_wait);
    EXPECT_EQ(a.net_stats.bytes, b.net_stats.bytes);
}

TEST(SimCore, ImprovementHelpers)
{
    SimResult base;
    base.runtime = 1000;
    SimResult faster;
    faster.runtime = 800;
    EXPECT_DOUBLE_EQ(faster.speedup_vs(base), 1.25);
    EXPECT_DOUBLE_EQ(faster.reduction_vs(base), 0.2);
}

TEST(SimCore, SubpageRefsAllShippedBytesAccounted)
{
    // Under eager, total demand+background bytes per fault equal the
    // page size (the whole page is always shipped eventually).
    VectorTrace t;
    for (int i = 0; i < 20; ++i)
        t.push(i * 8192 + (i % 8) * 1024);
    Simulator sim(base_config("eager", 1024));
    SimResult r = sim.run(t);
    uint64_t data_bytes =
        r.net_stats.bytes_by_kind[static_cast<int>(
            MsgKind::DemandData)] +
        r.net_stats.bytes_by_kind[static_cast<int>(
            MsgKind::BackgroundData)];
    EXPECT_EQ(data_bytes, r.page_faults * 8192u);
}

TEST(SimCore, MemPagesOneRejected)
{
    SimConfig cfg;
    cfg.mem_pages = 1;
    EXPECT_DEATH({ Simulator sim(cfg); }, "mem_pages");
}

TEST(ExperimentRunner, LabelsMatchPaperNotation)
{
    Experiment ex;
    ex.policy = "disk";
    EXPECT_EQ(ex.label(), "disk_8192");
    ex.policy = "fullpage";
    EXPECT_EQ(ex.label(), "p_8192");
    ex.policy = "eager";
    ex.subpage_size = 1024;
    EXPECT_EQ(ex.label(), "sp_1024");
    ex.policy = "pipelining";
    EXPECT_EQ(ex.label(), "sp_1024 (pipelining)");
}

TEST(ExperimentRunner, MemoryConfigsFromFootprint)
{
    EXPECT_EQ(mem_pages_for(MemConfig::Full, 1000), 0u);
    EXPECT_EQ(mem_pages_for(MemConfig::Half, 1000), 500u);
    EXPECT_EQ(mem_pages_for(MemConfig::Quarter, 1000), 250u);
    EXPECT_EQ(mem_pages_for(MemConfig::Quarter, 4), 2u);
}

TEST(ExperimentRunner, FootprintMemoized)
{
    uint64_t a = app_footprint_pages("gdb", 0.5);
    uint64_t b = app_footprint_pages("gdb", 0.5);
    EXPECT_EQ(a, b);
    EXPECT_GT(a, 10u);
}

TEST(SimCore, FullpageVsEagerEndToEnd)
{
    // End-to-end sanity on a real app model: eager with 1K subpages
    // beats fullpage, and both beat disk (paper's headline).
    Experiment ex;
    ex.app = "gdb";
    ex.scale = 1.0;
    ex.mem = MemConfig::Half;
    ex.policy = "disk";
    SimResult disk = ex.run();
    ex.policy = "fullpage";
    SimResult full = ex.run();
    ex.policy = "eager";
    ex.subpage_size = 1024;
    SimResult eager = ex.run();
    EXPECT_LT(full.runtime, disk.runtime);
    EXPECT_LT(eager.runtime, full.runtime);
    EXPECT_GT(disk.speedup_vs(disk), 0.99);
    EXPECT_GT(eager.speedup_vs(disk), 1.5); // "up to 4x" at best
}

} // namespace
} // namespace sgms
