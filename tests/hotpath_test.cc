/**
 * @file
 * Tests for the hot-path overhaul: the allocation-free event kernel
 * (FIFO tie-break, pool reuse, inline callbacks), the intrusive
 * LRU/FIFO order list (property-checked against a reference
 * implementation), batched trace replay, the shared trace store
 * (stored replay is byte-identical to streaming generation, safe to
 * replay concurrently), and the cooperative per-point wall budget.
 *
 * This binary installs the allocation probe, so it can also assert
 * that steady-state event scheduling and replacement churn perform
 * zero heap allocations.
 */

#include <gtest/gtest.h>

#include <list>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/alloc_probe.h"
#include "common/inline_function.h"
#include "core/experiment.h"
#include "core/simulator.h"
#include "exec/parallel_runner.h"
#include "exec/result_codec.h"
#include "mem/replacement.h"
#include "sim/event_queue.h"
#include "trace/apps.h"
#include "trace/trace.h"
#include "trace/trace_store.h"

SGMS_INSTALL_ALLOC_PROBE();

namespace sgms
{
namespace
{

/** Deterministic 64-bit generator (splitmix64). */
struct Rng
{
    uint64_t state;
    uint64_t
    next()
    {
        uint64_t x = (state += 0x9e3779b97f4a7c15ULL);
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }
};

// ---------------------------------------------------------------
// Event kernel
// ---------------------------------------------------------------

TEST(EventKernel, FifoTieBreakAtOneTick)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run_all();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventKernel, StableAcrossInterleavedTicks)
{
    // Mixed ticks scheduled out of order: execution must sort by
    // time and, within a tick, by schedule order.
    EventQueue eq;
    std::vector<std::pair<Tick, int>> order;
    int seq = 0;
    for (Tick t : {7, 3, 7, 3, 5, 7, 3}) {
        int s = seq++;
        eq.schedule(t, [&order, t, s] { order.push_back({t, s}); });
    }
    eq.run_all();
    ASSERT_EQ(order.size(), 7u);
    // Sorted by tick; same-tick runs keep ascending schedule seq.
    for (size_t i = 1; i < order.size(); ++i) {
        EXPECT_LE(order[i - 1].first, order[i].first);
        if (order[i - 1].first == order[i].first) {
            EXPECT_LT(order[i - 1].second, order[i].second);
        }
    }
}

TEST(EventKernel, CallbackMayScheduleAtCurrentTick)
{
    // An event at tick T scheduling another at T runs it after the
    // already-queued same-tick events (FIFO by schedule order).
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(0);
        eq.schedule(10, [&] { order.push_back(2); });
    });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.run_all();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventKernel, PropertyMatchesReferenceOrdering)
{
    // Random schedule/run churn: dispatch order must match a stable
    // sort of (tick, schedule-seq) computed by a reference model.
    Rng rng{42};
    EventQueue eq;
    std::vector<std::pair<Tick, int>> expected;
    std::vector<std::pair<Tick, int>> got;
    int seq = 0;
    Tick floor = 0;
    for (int round = 0; round < 50; ++round) {
        int n = 1 + static_cast<int>(rng.next() % 20);
        for (int i = 0; i < n; ++i) {
            Tick when = floor + static_cast<Tick>(rng.next() % 100);
            int s = seq++;
            expected.push_back({when, s});
            eq.schedule(when,
                        [&got, when, s] { got.push_back({when, s}); });
        }
        floor += static_cast<Tick>(rng.next() % 50);
        eq.run_until(floor);
    }
    eq.run_all();
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first ||
                                (a.first == b.first &&
                                 a.second < b.second);
                     });
    EXPECT_EQ(got, expected);
    EXPECT_EQ(eq.executed(), expected.size());
}

TEST(EventKernel, PoolSlotsAreRecycled)
{
    // Steady churn at bounded concurrency must not grow the pool
    // beyond the high-water mark of outstanding events.
    EventQueue eq;
    uint64_t sink = 0;
    Tick t = 0;
    for (int round = 0; round < 1000; ++round) {
        for (int i = 0; i < 8; ++i)
            eq.schedule(t + i, [&sink] { ++sink; });
        t += 8;
        eq.run_until(t);
    }
    EXPECT_EQ(sink, 8000u);
    EXPECT_LE(eq.pool_capacity(), 16u);
}

TEST(EventKernel, SteadyStateSchedulesWithoutAllocating)
{
    EventQueue eq;
    uint64_t sink = 0;
    Tick t = 0;
    auto wave = [&] {
        for (int i = 0; i < 32; ++i)
            eq.schedule(t + (i & 3), [&sink] { ++sink; });
        t += 4;
        eq.run_until(t);
    };
    // Warm up: grows the heap, pool, and free list to steady size.
    for (int i = 0; i < 4; ++i)
        wave();
    uint64_t before = alloc_probe_count();
    for (int i = 0; i < 256; ++i)
        wave();
    EXPECT_EQ(alloc_probe_count(), before);
    EXPECT_EQ(sink, 32u * 260u);
}

TEST(EventKernel, InlineCallbacksSkipTheHeap)
{
    // A capture that fits the inline buffer must not take the heap
    // fallback; an oversized one must (and still work).
    uint64_t small_before = inline_function_heap_fallbacks();
    EventQueue eq;
    uint64_t sink = 0;
    std::array<uint64_t, 8> a{};
    a[7] = 7;
    eq.schedule(1, [&sink, a] { sink += a[7]; });
    eq.run_all();
    EXPECT_EQ(sink, 7u);
    EXPECT_EQ(inline_function_heap_fallbacks(), small_before);

    std::array<uint64_t, 64> big{};
    big[63] = 9;
    InlineFunction<void(), 120> f([&sink, big] { sink += big[63]; });
    EXPECT_EQ(inline_function_heap_fallbacks(), small_before + 1);
    f();
    EXPECT_EQ(sink, 16u);
}

// ---------------------------------------------------------------
// Intrusive order list / replacement policies
// ---------------------------------------------------------------

/** Reference LRU/FIFO over std::list + map, the pre-overhaul shape. */
class ReferenceOrderPolicy
{
  public:
    explicit ReferenceOrderPolicy(bool lru) : lru_(lru) {}

    void
    insert(PageId page)
    {
        if (lru_) {
            order_.push_front(page);
            pos_[page] = order_.begin();
        } else {
            order_.push_back(page);
            pos_[page] = std::prev(order_.end());
        }
    }

    void
    touch(PageId page)
    {
        if (!lru_)
            return;
        order_.splice(order_.begin(), order_, pos_[page]);
    }

    void
    erase(PageId page)
    {
        order_.erase(pos_[page]);
        pos_.erase(page);
    }

    PageId
    victim()
    {
        PageId page = lru_ ? order_.back() : order_.front();
        erase(page);
        return page;
    }

    size_t size() const { return order_.size(); }
    bool contains(PageId p) const { return pos_.count(p) != 0; }

  private:
    bool lru_;
    std::list<PageId> order_;
    std::unordered_map<PageId, std::list<PageId>::iterator> pos_;
};

void
order_property_check(const char *name, bool lru, uint64_t page_base)
{
    auto policy = make_replacement_policy(name);
    ReferenceOrderPolicy ref(lru);
    Rng rng{1234};
    std::vector<PageId> resident;
    PageId next_page = page_base;
    for (int step = 0; step < 20000; ++step) {
        uint64_t op = rng.next() % 100;
        if (resident.empty() || op < 40) {
            PageId p = next_page++;
            policy->insert(p);
            ref.insert(p);
            resident.push_back(p);
        } else if (op < 70) {
            PageId p = resident[rng.next() % resident.size()];
            policy->touch(p);
            ref.touch(p);
        } else if (op < 85) {
            size_t i = rng.next() % resident.size();
            PageId p = resident[i];
            policy->erase(p);
            ref.erase(p);
            resident[i] = resident.back();
            resident.pop_back();
        } else {
            ASSERT_EQ(policy->victim(), ref.victim());
            // Rebuild the resident set cheaply: drop the evicted one.
            for (size_t i = 0; i < resident.size(); ++i) {
                if (!ref.contains(resident[i])) {
                    resident[i] = resident.back();
                    resident.pop_back();
                    break;
                }
            }
        }
        ASSERT_EQ(policy->size(), ref.size());
    }
    // Drain both completely: full eviction order must agree.
    while (ref.size() > 0)
        ASSERT_EQ(policy->victim(), ref.victim());
}

TEST(OrderList, LruMatchesReferenceModel)
{
    order_property_check("lru", /*lru=*/true, /*page_base=*/0);
}

TEST(OrderList, FifoMatchesReferenceModel)
{
    order_property_check("fifo", /*lru=*/false, /*page_base=*/0);
}

TEST(OrderList, OverflowPagesBeyondDenseLimit)
{
    // Page ids above the dense limit (1<<17) exercise the hash path.
    order_property_check("lru", /*lru=*/true,
                         /*page_base=*/1ULL << 40);
}

TEST(OrderList, MixedDenseAndOverflowIds)
{
    PageOrderList list;
    PageId dense = 5;
    PageId sparse = (1ULL << 30) + 3;
    list.push_front(dense);
    list.push_front(sparse);
    EXPECT_TRUE(list.contains(dense));
    EXPECT_TRUE(list.contains(sparse));
    list.move_front(dense);
    EXPECT_EQ(list.pop_back(), sparse);
    EXPECT_EQ(list.pop_back(), dense);
    EXPECT_TRUE(list.empty());
}

TEST(OrderList, SteadyChurnDoesNotAllocate)
{
    auto lru = make_replacement_policy("lru");
    lru->reserve(1024);
    for (PageId p = 0; p < 1024; ++p)
        lru->insert(p);
    Rng rng{7};
    uint64_t before = alloc_probe_count();
    for (int i = 0; i < 50000; ++i) {
        lru->touch(rng.next() % 1024);
        if (i % 16 == 0) {
            PageId v = lru->victim();
            lru->insert(v); // reuses the freed node
        }
    }
    EXPECT_EQ(alloc_probe_count(), before);
}

// ---------------------------------------------------------------
// Batched replay + shared trace store
// ---------------------------------------------------------------

TEST(BatchedReplay, NextBatchMatchesNextForAllSources)
{
    auto streamed = make_app_trace("gdb", 0.01, /*seed=*/3);
    auto batched = make_app_trace("gdb", 0.01, /*seed=*/3);
    TraceEvent ev;
    TraceEvent batch[97]; // deliberately not a divisor of the length
    uint64_t refs = 0;
    for (;;) {
        size_t n = batched->next_batch(batch, 97);
        for (size_t i = 0; i < n; ++i) {
            ASSERT_TRUE(streamed->next(ev));
            ASSERT_EQ(ev.addr, batch[i].addr);
            ASSERT_EQ(ev.write, batch[i].write);
        }
        refs += n;
        if (n == 0)
            break;
    }
    EXPECT_FALSE(streamed->next(ev));
    EXPECT_GT(refs, 0u);
}

TEST(TraceStore, StoredReplayIsIdenticalToStreaming)
{
    auto streamed = make_app_trace("atom", 0.01, /*seed=*/2);
    auto stored = make_stored_app_trace("atom", 0.01, /*seed=*/2);
    EXPECT_EQ(stored->size_hint(), streamed->size_hint());
    TraceEvent a, b;
    uint64_t n = 0;
    for (;;) {
        bool ga = streamed->next(a);
        bool gb = stored->next(b);
        ASSERT_EQ(ga, gb);
        if (!ga)
            break;
        ASSERT_EQ(a.addr, b.addr);
        ASSERT_EQ(a.write, b.write);
        ++n;
    }
    EXPECT_EQ(n, streamed->size_hint());
}

TEST(TraceStore, RepeatRequestsShareOneBuffer)
{
    TraceStoreStats before = trace_store_stats();
    auto first = make_stored_app_trace("ld", 0.01, /*seed=*/9);
    auto second = make_stored_app_trace("ld", 0.01, /*seed=*/9);
    TraceStoreStats after = trace_store_stats();
    // At most one materialization for the pair; the second request
    // (and possibly both, if another test warmed this key) hits.
    EXPECT_GE(after.hits, before.hits + 1);
    EXPECT_LE(after.misses, before.misses + 1);
    // Same immutable buffer behind both cursors.
    auto *ra = dynamic_cast<ReplayTrace *>(first.get());
    auto *rb = dynamic_cast<ReplayTrace *>(second.get());
    ASSERT_NE(ra, nullptr);
    ASSERT_NE(rb, nullptr);
    EXPECT_EQ(ra->buffer().get(), rb->buffer().get());
}

TEST(TraceStore, ConcurrentReplayIsSafeAndComplete)
{
    // Two threads materialize-or-hit the same key and replay the
    // shared buffer through private cursors. Under TSan this also
    // checks the store's locking discipline.
    constexpr int THREADS = 4;
    std::vector<uint64_t> sums(THREADS, 0);
    std::vector<uint64_t> counts(THREADS, 0);
    std::vector<std::thread> ts;
    for (int i = 0; i < THREADS; ++i) {
        ts.emplace_back([i, &sums, &counts] {
            auto t = make_stored_app_trace("render", 0.01, /*seed=*/5);
            TraceEvent batch[128];
            for (;;) {
                size_t n = t->next_batch(batch, 128);
                if (n == 0)
                    break;
                counts[i] += n;
                for (size_t k = 0; k < n; ++k)
                    sums[i] += batch[k].addr + batch[k].write;
            }
        });
    }
    for (auto &t : ts)
        t.join();
    for (int i = 1; i < THREADS; ++i) {
        EXPECT_EQ(counts[i], counts[0]);
        EXPECT_EQ(sums[i], sums[0]);
    }
    EXPECT_GT(counts[0], 0u);
}

TEST(TraceStore, ExperimentViaStoreMatchesStreamedSimulation)
{
    // End to end: Experiment::run (stored trace) must be
    // byte-identical to simulating the streaming generator directly.
    Experiment ex;
    ex.app = "modula3";
    ex.scale = 0.01;
    ex.policy = "pipelining";
    ex.subpage_size = 1024;
    ex.mem = MemConfig::Half;

    SimResult via_store = ex.run();
    Simulator sim(ex.config());
    auto streamed = make_app_trace(ex.app, ex.scale, ex.seed);
    SimResult via_stream = sim.run(*streamed);
    via_stream.app = ex.app;

    std::ostringstream a, b;
    exec::write_result_blob(a, via_store);
    exec::write_result_blob(b, via_stream);
    EXPECT_EQ(a.str(), b.str());
}

TEST(VectorTraceHint, MaterializingCtorHonorsSizeHint)
{
    auto src = make_app_trace("gdb", 0.01, /*seed=*/1);
    VectorTrace vt(*src);
    EXPECT_EQ(vt.events().size(), src->size_hint());
    EXPECT_EQ(vt.size_hint(), src->size_hint());
    // Source is left rewound.
    TraceEvent ev;
    EXPECT_TRUE(src->next(ev));
}

// ---------------------------------------------------------------
// Cooperative wall budget
// ---------------------------------------------------------------

TEST(WallBudget, TinyBudgetAbortsTheRun)
{
    Experiment ex;
    ex.app = "modula3";
    ex.scale = 0.05;
    ex.policy = "fullpage";
    ex.base.wall_budget_ms = 1;
    try {
        ex.run();
        FAIL() << "expected SimTimeoutError";
    } catch (const SimTimeoutError &e) {
        EXPECT_EQ(e.budget_ms(), 1u);
        EXPECT_GT(e.refs_done(), 0u);
    }
}

TEST(WallBudget, GenerousBudgetKeepsResultsIdentical)
{
    Experiment ex;
    ex.app = "gdb";
    ex.scale = 0.01;
    ex.policy = "eager";
    ex.subpage_size = 1024;
    SimResult plain = ex.run();
    ex.base.wall_budget_ms = 3'600'000;
    SimResult budgeted = ex.run();
    std::ostringstream a, b;
    exec::write_result_blob(a, plain);
    exec::write_result_blob(b, budgeted);
    EXPECT_EQ(a.str(), b.str());
}

TEST(WallBudget, EngineDegradesTimedOutPointsDeterministically)
{
    exec::ExecOptions eo;
    eo.jobs = 1;
    eo.point_timeout_ms = 1;
    exec::Engine engine(eo);

    Experiment ex;
    ex.app = "modula3";
    ex.scale = 0.05;
    ex.policy = "pipelining";
    ex.subpage_size = 1024;
    ex.mem = MemConfig::Half;

    SimResult r1 = engine.run(ex);
    SimResult r2 = engine.run(ex);
    exec::ExecStats stats = engine.stats();
    EXPECT_EQ(stats.timeouts, 2u);
    EXPECT_EQ(stats.points_degraded, 2u);
    EXPECT_EQ(stats.points_run, 0u);

    // Degraded shape: identity filled, measurements zero, marked.
    EXPECT_EQ(r1.app, "modula3");
    EXPECT_EQ(r1.runtime, 0);
    EXPECT_EQ(r1.refs, 0u);
    bool marked = false;
    for (const auto &m : r1.metrics)
        marked |= m.name == "exec.degraded" && m.value == 1.0;
    EXPECT_TRUE(marked);

    // Pure function of the experiment: reruns are byte-identical.
    std::ostringstream a, b;
    exec::write_result_blob(a, r1);
    exec::write_result_blob(b, r2);
    EXPECT_EQ(a.str(), b.str());
}

TEST(WallBudget, ThreadPoolModeCountsTimeouts)
{
    exec::ExecOptions eo;
    eo.jobs = 2;
    eo.point_timeout_ms = 1;
    exec::Engine engine(eo);
    std::vector<Experiment> points(2);
    for (size_t i = 0; i < points.size(); ++i) {
        points[i].app = "modula3";
        points[i].scale = 0.05;
        points[i].policy = i == 0 ? "fullpage" : "pipelining";
        points[i].subpage_size = 1024;
        points[i].mem = MemConfig::Half;
    }
    std::vector<SimResult> out = engine.run_all(points);
    ASSERT_EQ(out.size(), 2u);
    exec::ExecStats stats = engine.stats();
    EXPECT_EQ(stats.timeouts, 2u);
    EXPECT_EQ(stats.points_degraded, 2u);
}

// ---------------------------------------------------------------
// Reserve plumbing
// ---------------------------------------------------------------

TEST(Reserve, PageTableReserveKeepsSemantics)
{
    PageGeometry geo(8192, 1024);
    PageTable pt(geo, /*mem_pages=*/16, "lru");
    pt.reserve(1024);
    for (PageId p = 0; p < 8; ++p)
        pt.install(p);
    EXPECT_NE(pt.find(3), nullptr);
    EXPECT_EQ(pt.find(99), nullptr);
    pt.touch(3);
    EXPECT_EQ(pt.resident(), 8u);
}

} // namespace
} // namespace sgms
