/**
 * @file
 * Tests for the extension features: adaptive pipelining (the paper's
 * future-work sequencing-by-likelihood) and the busy-cluster load
 * injector.
 */

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "gms/cluster_load.h"
#include "policy/fetch_policy.h"
#include "trace/trace.h"

namespace sgms
{
namespace
{

const PageGeometry GEO(8192, 1024);

TEST(AdaptivePolicy, FallsBackToDistanceOrderBeforeWarmup)
{
    AdaptivePipeliningPolicy pol(/*warmup=*/8);
    FetchPlan p = pol.plan(GEO, 3, 0, 0xff);
    ASSERT_EQ(p.segments.size(), 8u);
    // Same order as AllSubpages: 3, 4, 2, 5, 1, 6, 0, 7.
    std::vector<uint64_t> expect = {3, 4, 2, 5, 1, 6, 0, 7};
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(p.segments[i].subpage_mask, 1ULL << expect[i]);
}

TEST(AdaptivePolicy, LearnsDominantDistance)
{
    AdaptivePipeliningPolicy pol(/*warmup=*/8);
    // Workload in which the next touched subpage is faulted-2.
    for (int i = 0; i < 20; ++i)
        pol.observe_distance(-2);
    for (int i = 0; i < 3; ++i)
        pol.observe_distance(1);
    EXPECT_EQ(pol.observations(), 23u);
    EXPECT_EQ(pol.distance_count(-2), 20u);

    FetchPlan p = pol.plan(GEO, 4, 0, 0xff);
    // First pipelined segment must now be distance -2 (subpage 2),
    // second the +1 neighbour (subpage 5).
    ASSERT_GE(p.segments.size(), 3u);
    EXPECT_EQ(p.segments[0].subpage_mask, 1ULL << 4);
    EXPECT_EQ(p.segments[1].subpage_mask, 1ULL << 2);
    EXPECT_EQ(p.segments[2].subpage_mask, 1ULL << 5);
}

TEST(AdaptivePolicy, IgnoresOutOfRangeAndZeroDistances)
{
    AdaptivePipeliningPolicy pol;
    pol.observe_distance(0);
    pol.observe_distance(1000);
    pol.observe_distance(-1000);
    EXPECT_EQ(pol.observations(), 0u);
}

TEST(AdaptivePolicy, CoversAllMissingSubpages)
{
    AdaptivePipeliningPolicy pol(0);
    for (int i = 0; i < 10; ++i)
        pol.observe_distance(3);
    for (SubpageIndex f = 0; f < 8; ++f) {
        FetchPlan p = pol.plan(GEO, f, 0, 0xff);
        uint64_t covered = 0;
        for (const auto &seg : p.segments)
            covered |= seg.subpage_mask;
        EXPECT_EQ(covered, 0xffULL);
    }
}

TEST(AdaptivePolicy, SimulatorFeedsObservations)
{
    // Drive a simulator run whose next-subpage accesses are always
    // +2; the policy must see those observations.
    SimConfig cfg;
    cfg.policy = "pipelining-adaptive";
    cfg.subpage_size = 1024;
    VectorTrace t;
    for (int i = 0; i < 12; ++i) {
        t.push(i * 8192 + 1024);     // fault subpage 1
        t.push(i * 8192 + 3 * 1024); // then touch subpage 3 (+2)
    }
    Simulator sim(cfg);
    SimResult r = sim.run(t);
    EXPECT_EQ(r.page_faults, 12u);
    EXPECT_EQ(r.next_subpage_distance.count(2), 12u);
    // With learning, later faults pipeline +2 right after the demand
    // subpage, so late-fault page_waits shrink relative to eager.
    SimConfig eager = cfg;
    eager.policy = "eager";
    auto t2 = t;
    SimResult re = Simulator(eager).run(t2);
    EXPECT_LT(r.page_wait, re.page_wait);
}

TEST(ClusterLoad, DisabledInjectsNothing)
{
    EventQueue eq;
    Network net(eq, NetParams::an2());
    ClusterLoad load(eq, net, ClusterLoadConfig{}, 4, 0);
    eq.run_until(ticks::from_ms(100));
    EXPECT_EQ(load.injected(), 0u);
    EXPECT_EQ(net.stats().messages, 0u);
}

TEST(ClusterLoad, InjectsAtConfiguredRate)
{
    EventQueue eq;
    Network net(eq, NetParams::an2());
    ClusterLoadConfig cfg;
    cfg.server_utilization = 0.5;
    ClusterLoad load(eq, net, cfg, 2, 0);
    // Run 100 ms of simulated time.
    eq.run_until(ticks::from_ms(100));
    // DMA work per fetch ~ 0.167 ms at 8K; at 50% utilization each
    // of 2 servers does ~0.1 s * 0.5 / 0.167 ms ~ 300 fetches.
    EXPECT_GT(load.injected(), 400u);
    EXPECT_LT(load.injected(), 800u);
    // Two messages per fetch (subpage + rest).
    EXPECT_EQ(net.stats().messages, 2 * load.injected());
}

TEST(ClusterLoad, SaturationRejected)
{
    EventQueue eq;
    Network net(eq, NetParams::an2());
    ClusterLoadConfig cfg;
    cfg.server_utilization = 0.99;
    EXPECT_DEATH({ ClusterLoad load(eq, net, cfg, 2, 0); },
                 "saturate");
}

TEST(ClusterLoad, SlowsRemoteFaultsInSimulator)
{
    VectorTrace t;
    for (int i = 0; i < 50; ++i)
        t.push(i * 8192);
    SimConfig idle;
    idle.policy = "eager";
    idle.subpage_size = 1024;
    SimConfig busy = idle;
    busy.cluster_load.server_utilization = 0.6;
    auto t2 = t;
    SimResult ri = Simulator(idle).run(t);
    SimResult rb = Simulator(busy).run(t2);
    EXPECT_GT(rb.runtime, ri.runtime);
    EXPECT_GT(rb.sp_latency, ri.sp_latency);
}

TEST(ClusterLoad, DeterministicForSeed)
{
    auto run = [](uint64_t seed) {
        VectorTrace t;
        for (int i = 0; i < 30; ++i)
            t.push(i * 8192);
        SimConfig cfg;
        cfg.policy = "eager";
        cfg.subpage_size = 1024;
        cfg.cluster_load.server_utilization = 0.4;
        cfg.cluster_load.seed = seed;
        Simulator sim(cfg);
        return sim.run(t).runtime;
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8));
}

} // namespace
} // namespace sgms
