/**
 * @file
 * Tests for the Options parser and the SimConfig override mapping.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/options.h"
#include "core/config_override.h"

namespace sgms
{
namespace
{

Options
parse(std::vector<const char *> args)
{
    args.insert(args.begin(), "prog");
    return Options(static_cast<int>(args.size()),
                   const_cast<char **>(args.data()));
}

TEST(Options, KeyValueAndFlags)
{
    Options o = parse({"--policy=eager", "--tlb", "pos1", "pos2"});
    EXPECT_TRUE(o.has("policy"));
    EXPECT_EQ(o.get("policy"), "eager");
    EXPECT_TRUE(o.get_bool("tlb"));
    EXPECT_FALSE(o.has("missing"));
    EXPECT_EQ(o.get("missing", "dflt"), "dflt");
    ASSERT_EQ(o.positional().size(), 2u);
    EXPECT_EQ(o.positional()[0], "pos1");
    EXPECT_EQ(o.positional()[1], "pos2");
}

TEST(Options, TypedGetters)
{
    Options o = parse({"--a=2.5", "--b=42", "--c=8K", "--d=yes",
                       "--e=off"});
    EXPECT_DOUBLE_EQ(o.get_double("a", 0), 2.5);
    EXPECT_EQ(o.get_u64("b", 0), 42u);
    EXPECT_EQ(o.get_bytes("c", 0), 8192u);
    EXPECT_TRUE(o.get_bool("d"));
    EXPECT_FALSE(o.get_bool("e"));
    EXPECT_DOUBLE_EQ(o.get_double("zz", 7.5), 7.5);
    EXPECT_EQ(o.get_u64("zz", 9), 9u);
    EXPECT_EQ(o.get_bytes("zz", 11), 11u);
}

TEST(Options, UnusedDetection)
{
    Options o = parse({"--used=1", "--typo=1"});
    o.get("used");
    auto unused = o.unused();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "typo");
}

TEST(Options, EmptyCommandLine)
{
    Options o = parse({});
    EXPECT_TRUE(o.positional().empty());
    EXPECT_TRUE(o.unused().empty());
}

TEST(ConfigOverride, AppliesRecognizedKeys)
{
    Options o = parse({"--subpage=2K", "--policy=pipelining",
                       "--mem-pages=128", "--replacement=clock",
                       "--servers=8", "--cold", "--no-putpage",
                       "--global-capacity=1000",
                       "--cluster-load=0.3", "--software-pal",
                       "--tlb=64", "--fifo-network",
                       "--ns-per-ref=10"});
    SimConfig cfg;
    apply_config_overrides(cfg, o);
    EXPECT_EQ(cfg.subpage_size, 2048u);
    EXPECT_EQ(cfg.policy, "pipelining");
    EXPECT_EQ(cfg.mem_pages, 128u);
    EXPECT_EQ(cfg.replacement, "clock");
    EXPECT_EQ(cfg.gms.servers, 8u);
    EXPECT_FALSE(cfg.gms.warm);
    EXPECT_FALSE(cfg.gms.putpage_traffic);
    EXPECT_EQ(cfg.gms.server_capacity_pages, 1000u);
    EXPECT_DOUBLE_EQ(cfg.cluster_load.server_utilization, 0.3);
    EXPECT_EQ(cfg.protection, ProtectionMode::SoftwarePal);
    EXPECT_TRUE(cfg.tlb_enabled);
    EXPECT_EQ(cfg.tlb_entries, 64u);
    EXPECT_FALSE(cfg.net.priority_scheduling);
    EXPECT_FALSE(cfg.net.preemptive_demand);
    EXPECT_EQ(cfg.ns_per_ref, ticks::from_ns(10));
}

TEST(ConfigOverride, DefaultsUntouched)
{
    Options o = parse({});
    SimConfig cfg;
    SimConfig before = cfg;
    apply_config_overrides(cfg, o);
    EXPECT_EQ(cfg.page_size, before.page_size);
    EXPECT_EQ(cfg.policy, before.policy);
    EXPECT_TRUE(cfg.gms.warm);
    EXPECT_TRUE(cfg.net.priority_scheduling);
    EXPECT_EQ(cfg.protection, ProtectionMode::HardwareTlb);
}

TEST(ConfigOverride, ProtoControllerCosts)
{
    Options o = parse({"--proto-controller"});
    SimConfig cfg;
    apply_config_overrides(cfg, o);
    EXPECT_EQ(cfg.net.pipelined_recv_fixed, ticks::from_us(60));
    EXPECT_EQ(cfg.net.pipelined_recv_per_byte, ticks::from_ns(31));
}

} // namespace
} // namespace sgms
