/**
 * @file
 * Unit tests for src/common: types, units, rng, stats, tables, charts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/chart.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"
#include "common/units.h"

namespace sgms
{
namespace
{

TEST(Types, TickConversionsRoundTrip)
{
    EXPECT_EQ(ticks::from_us(1), 1000 * ticks::NS);
    EXPECT_EQ(ticks::from_ms(1.5), 1500 * ticks::US);
    EXPECT_DOUBLE_EQ(ticks::to_ms(ticks::from_ms(0.52)), 0.52);
    EXPECT_DOUBLE_EQ(ticks::to_us(ticks::from_us(68)), 68.0);
    EXPECT_DOUBLE_EQ(ticks::to_ns(ticks::from_ns(51.6)), 51.6);
}

TEST(Types, Pow2Helpers)
{
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(256));
    EXPECT_TRUE(is_pow2(8192));
    EXPECT_FALSE(is_pow2(0));
    EXPECT_FALSE(is_pow2(3));
    EXPECT_FALSE(is_pow2(8191));
    EXPECT_EQ(log2_exact(1), 0u);
    EXPECT_EQ(log2_exact(256), 8u);
    EXPECT_EQ(log2_exact(8192), 13u);
}

TEST(Units, FormatBytes)
{
    EXPECT_EQ(format_bytes(256), "256B");
    EXPECT_EQ(format_bytes(1024), "1K");
    EXPECT_EQ(format_bytes(8192), "8K");
    EXPECT_EQ(format_bytes(1 << 20), "1M");
    EXPECT_EQ(format_bytes(1536), "1536B");
}

TEST(Units, ParseBytes)
{
    EXPECT_EQ(parse_bytes("256"), 256u);
    EXPECT_EQ(parse_bytes("256B"), 256u);
    EXPECT_EQ(parse_bytes("1K"), 1024u);
    EXPECT_EQ(parse_bytes("8k"), 8192u);
    EXPECT_EQ(parse_bytes("2M"), 2u << 20);
}

TEST(Units, ParseFormatRoundTrip)
{
    for (uint64_t v : {256ull, 512ull, 1024ull, 2048ull, 4096ull,
                       8192ull}) {
        EXPECT_EQ(parse_bytes(format_bytes(v)), v);
    }
}

TEST(Units, FormatTime)
{
    EXPECT_EQ(format_ms(ticks::from_ms(1.48)), "1.48 ms");
    EXPECT_EQ(format_us(ticks::from_us(68)), "68 us");
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng r(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(3);
    bool lo = false, hi = false;
    for (int i = 0; i < 10000; ++i) {
        uint64_t v = r.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        lo |= v == 5;
        hi |= v == 8;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ZipfSkewsLow)
{
    Rng r(11);
    uint64_t low = 0, n = 100000;
    for (uint64_t i = 0; i < n; ++i)
        if (r.zipf(1000, 0.9) < 100)
            ++low;
    // With skew 0.9, the first 10% of ranks should get well over
    // half the mass.
    EXPECT_GT(static_cast<double>(low) / n, 0.5);
}

TEST(Rng, ZipfBounds)
{
    Rng r(13);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.zipf(50, 0.8), 50u);
    EXPECT_EQ(r.zipf(1, 0.8), 0u);
}

TEST(Accumulator, Basics)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.add(2.0);
    a.add(4.0);
    a.add(6.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
    EXPECT_DOUBLE_EQ(a.variance(), 4.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 2.0);
}

TEST(Accumulator, MergeMatchesCombined)
{
    Rng r(5);
    Accumulator a, b, all;
    for (int i = 0; i < 500; ++i) {
        double x = r.uniform() * 10;
        a.add(x);
        all.add(x);
    }
    for (int i = 0; i < 300; ++i) {
        double x = r.uniform() * 3 - 5;
        b.add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_NEAR(a.min(), all.min(), 1e-12);
    EXPECT_NEAR(a.max(), all.max(), 1e-12);
}

TEST(Histogram, CountsAndFractions)
{
    Histogram h;
    h.add(1, 3);
    h.add(2);
    h.add(-1, 6);
    EXPECT_EQ(h.total(), 10u);
    EXPECT_EQ(h.count(1), 3u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.count(-1), 6u);
    EXPECT_EQ(h.count(99), 0u);
    EXPECT_DOUBLE_EQ(h.fraction(-1), 0.6);
    EXPECT_DOUBLE_EQ(h.fraction(7), 0.0);
}

TEST(Histogram, BinsSorted)
{
    Histogram h;
    h.add(5);
    h.add(-3);
    h.add(0);
    auto bins = h.bins();
    ASSERT_EQ(bins.size(), 3u);
    EXPECT_EQ(bins[0].first, -3);
    EXPECT_EQ(bins[1].first, 0);
    EXPECT_EQ(bins[2].first, 5);
}

TEST(Histogram, Quantile)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.add(i);
    EXPECT_EQ(h.quantile(0.5), 50);
    EXPECT_EQ(h.quantile(1.0), 100);
    EXPECT_LE(h.quantile(0.0), 1);
}

TEST(Series, Downsample)
{
    Series s;
    s.name = "t";
    for (int i = 0; i < 1000; ++i)
        s.add(i, 2 * i);
    Series d = s.downsampled(11);
    ASSERT_EQ(d.points.size(), 11u);
    EXPECT_DOUBLE_EQ(d.points.front().first, 0);
    EXPECT_DOUBLE_EQ(d.points.back().first, 999);
    // Short series pass through untouched.
    Series tiny;
    tiny.add(1, 1);
    EXPECT_EQ(tiny.downsampled(10).points.size(), 1u);
}

TEST(Table, PrintAligned)
{
    Table t({"a", "long header"});
    t.add_row({"1", "2"});
    t.add_row({"333", "4"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("| a   | long header |"), std::string::npos);
    EXPECT_NE(out.find("| 333 | 4           |"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, Csv)
{
    Table t({"x", "y"});
    t.add_row({"a,b", "q\"u"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "x,y\n\"a,b\",\"q\"\"u\"\n");
}

TEST(Table, Format)
{
    EXPECT_EQ(Table::fmt(1.234, 2), "1.23");
    EXPECT_EQ(Table::fmt_int(-42), "-42");
    EXPECT_EQ(Table::fmt_pct(0.25), "25%");
    EXPECT_EQ(Table::fmt_pct(0.125, 1), "12.5%");
}

TEST(Chart, BarChartRenders)
{
    BarChart c("title", "ms");
    c.add("disk_8192", 10.0);
    c.add(Bar{"sp_1024", {{"exec", 3.0}, {"wait", 1.0}}});
    std::ostringstream os;
    c.print(os, 40);
    std::string out = os.str();
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("disk_8192"), std::string::npos);
    EXPECT_NE(out.find("legend"), std::string::npos);
}

TEST(Chart, LinePlotRendersAndCsv)
{
    LinePlot p("plot", "x", "y");
    Series s;
    s.name = "curve";
    s.add(0, 0);
    s.add(1, 5);
    p.add(s);
    std::ostringstream os;
    p.print(os);
    EXPECT_NE(os.str().find("curve"), std::string::npos);
    std::ostringstream csv;
    p.print_csv(csv);
    EXPECT_NE(csv.str().find("curve,0,0"), std::string::npos);
    EXPECT_NE(csv.str().find("curve,1,5"), std::string::npos);
}

TEST(Chart, GanttRenders)
{
    GanttChart g("timeline");
    g.add_row("Wire", {{0, ticks::from_us(50), 'w'}});
    g.add_row("Req-CPU", {{ticks::from_us(50), ticks::from_us(80), 'c'}});
    std::ostringstream os;
    g.print(os, 40);
    std::string out = os.str();
    EXPECT_NE(out.find("Wire"), std::string::npos);
    EXPECT_NE(out.find('w'), std::string::npos);
    EXPECT_NE(out.find("time axis"), std::string::npos);
}

TEST(Chart, EmptyLinePlot)
{
    LinePlot p("empty", "x", "y");
    std::ostringstream os;
    p.print(os);
    EXPECT_NE(os.str().find("(no data)"), std::string::npos);
}

TEST(Histogram, QuantileEmptyIsZero)
{
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.quantile(0.0), 0);
    EXPECT_EQ(h.quantile(0.5), 0);
    EXPECT_EQ(h.quantile(1.0), 0);
}

TEST(Histogram, QuantileExtremes)
{
    Histogram h;
    h.add(-5, 10);
    h.add(0, 10);
    h.add(7, 10);
    // q=0 is the smallest key, q=1 the largest.
    EXPECT_EQ(h.quantile(0.0), -5);
    EXPECT_EQ(h.quantile(1.0), 7);
    EXPECT_EQ(h.quantile(0.5), 0);
}

TEST(Histogram, QuantileSingleBin)
{
    Histogram h;
    h.add(42, 3);
    EXPECT_EQ(h.quantile(0.0), 42);
    EXPECT_EQ(h.quantile(0.25), 42);
    EXPECT_EQ(h.quantile(1.0), 42);
}

TEST(Series, DownsampledPreservesEndpoints)
{
    Series s;
    s.name = "long";
    for (int i = 0; i < 1000; ++i)
        s.add(i, 2.0 * i);
    Series d = s.downsampled(16);
    ASSERT_EQ(d.points.size(), 16u);
    EXPECT_EQ(d.name, "long");
    EXPECT_EQ(d.points.front(), s.points.front());
    EXPECT_EQ(d.points.back(), s.points.back());
}

TEST(Series, DownsampledSmallSeriesUnchanged)
{
    Series s;
    s.add(0, 1);
    s.add(1, 2);
    s.add(2, 3);
    Series d = s.downsampled(10);
    ASSERT_EQ(d.points.size(), 3u);
    EXPECT_EQ(d.points, s.points);
    // max_points < 2 is a no-op rather than a degenerate series.
    EXPECT_EQ(s.downsampled(1).points.size(), 3u);
}

} // namespace
} // namespace sgms
