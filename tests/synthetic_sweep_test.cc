/**
 * @file
 * Focused tests for SweepScan semantics (multi-touch visits, pass
 * offsets, jitter) and the hot-region reference distribution —
 * the properties the figure shapes depend on.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/synthetic.h"

namespace sgms
{
namespace
{

std::vector<TraceEvent>
drain(TraceSource &src)
{
    std::vector<TraceEvent> out;
    TraceEvent ev;
    while (src.next(ev))
        out.push_back(ev);
    return out;
}

WorkloadSpec
sweep_spec(uint32_t touches, uint32_t pass, uint64_t refs,
           uint32_t jitter = 0)
{
    WorkloadSpec w;
    w.name = "t";
    w.hot_pages = 0;
    PhaseSpec ph;
    ph.kind = PhaseSpec::Kind::SweepScan;
    ph.page_lo = 4;
    ph.page_hi = 8;
    ph.refs = refs;
    ph.hot_frac = 0;
    ph.sweep_pass = pass;
    ph.sweep_touches = touches;
    ph.sweep_step = 1024;
    ph.sweep_jitter = jitter;
    w.phases.push_back(ph);
    return w;
}

TEST(SweepScan, MultiTouchVisitsConsecutiveSubpages)
{
    // touches=2, pass=0: each page visited with offsets at subpages
    // 0 then 1 before moving to the next page.
    SyntheticTrace t(sweep_spec(2, 0, 8), 1);
    auto events = drain(t);
    ASSERT_EQ(events.size(), 8u);
    for (int p = 0; p < 4; ++p) {
        EXPECT_EQ(events[2 * p].addr, (4u + p) * 8192 + 0 * 1024);
        EXPECT_EQ(events[2 * p + 1].addr, (4u + p) * 8192 + 1 * 1024);
    }
}

TEST(SweepScan, PassAdvancesByTouchesTimesStep)
{
    // With touches=2, pass=1 starts at subpage 2 (so consecutive
    // passes touch consecutive subpage groups: +1 locality).
    SyntheticTrace t(sweep_spec(2, 1, 4), 1);
    auto events = drain(t);
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].addr % 8192, 2 * 1024u);
    EXPECT_EQ(events[1].addr % 8192, 3 * 1024u);
}

TEST(SweepScan, OffsetWrapsAroundPage)
{
    // pass=9, touches=1, step=1K on an 8K page: offset 9*1024 % 8192
    // = subpage 1.
    SyntheticTrace t(sweep_spec(1, 9, 1), 1);
    auto events = drain(t);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].addr % 8192, 1024u);
}

TEST(SweepScan, JitterStaysWithinBound)
{
    SyntheticTrace t(sweep_spec(1, 0, 400, /*jitter=*/64), 5);
    TraceEvent ev;
    while (t.next(ev)) {
        EXPECT_LT(ev.addr % 8192, 64u); // subpage 0 + jitter < 64
    }
}

TEST(SweepScan, WrapRestartsAtRegionStart)
{
    // 4 pages, 6 refs at touches=1: pages 4,5,6,7 then wrap to 4,5.
    SyntheticTrace t(sweep_spec(1, 0, 6), 1);
    auto events = drain(t);
    ASSERT_EQ(events.size(), 6u);
    EXPECT_EQ(events[4].addr / 8192, 4u);
    EXPECT_EQ(events[5].addr / 8192, 5u);
}

TEST(HotRegion, ZipfConcentratesOnFewLines)
{
    WorkloadSpec w;
    w.name = "t";
    w.hot_pages = 16;
    w.hot_zipf_skew = 1.1;
    PhaseSpec ph;
    ph.kind = PhaseSpec::Kind::Compute;
    ph.page_lo = ph.page_hi = 0; // hot-only
    ph.refs = 100000;
    ph.hot_frac = 1.0;
    w.phases.push_back(ph);
    SyntheticTrace t(w, 3);

    std::map<uint64_t, uint64_t> line_counts;
    TraceEvent ev;
    while (t.next(ev))
        ++line_counts[ev.addr / 64];

    // Top 5% of lines must capture the majority of references (this
    // is what makes the cache-calibration land near 12 ns).
    std::vector<uint64_t> counts;
    for (const auto &[line, c] : line_counts)
        counts.push_back(c);
    std::sort(counts.rbegin(), counts.rend());
    uint64_t top = 0, total = 0;
    size_t top_n = std::max<size_t>(1, counts.size() / 20);
    for (size_t i = 0; i < counts.size(); ++i) {
        total += counts[i];
        if (i < top_n)
            top += counts[i];
    }
    EXPECT_GT(static_cast<double>(top) / total, 0.5);
}

TEST(HotRegion, TouchesAllHotPages)
{
    // Scattering must spread the hot mass across all hot pages so
    // they stay LRU-warm.
    WorkloadSpec w;
    w.name = "t";
    w.hot_pages = 8;
    PhaseSpec ph;
    ph.kind = PhaseSpec::Kind::Compute;
    ph.page_lo = ph.page_hi = 0;
    ph.refs = 50000;
    ph.hot_frac = 1.0;
    w.phases.push_back(ph);
    SyntheticTrace t(w, 7);
    std::set<PageId> pages;
    TraceEvent ev;
    while (t.next(ev))
        pages.insert(ev.addr / 8192);
    EXPECT_EQ(pages.size(), 8u);
}

TEST(ZipfTableAccuracy, MatchesPowSampler)
{
    // The table-based sampler must produce (nearly) the same
    // distribution as the exact pow-based one.
    Rng a(3), b(3);
    ZipfTable table(1000, 0.8);
    uint64_t table_low = 0, pow_low = 0;
    const int N = 200000;
    for (int i = 0; i < N; ++i) {
        if (table.sample(a) < 100)
            ++table_low;
        if (b.zipf(1000, 0.8) < 100)
            ++pow_low;
    }
    EXPECT_NEAR(static_cast<double>(table_low) / N,
                static_cast<double>(pow_low) / N, 0.02);
}

TEST(ZipfTableAccuracy, BoundsRespected)
{
    Rng rng(5);
    ZipfTable table(7, 1.2);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(table.sample(rng), 7u);
    ZipfTable one(1, 0.8);
    EXPECT_EQ(one.sample(rng), 0u);
}

} // namespace
} // namespace sgms
