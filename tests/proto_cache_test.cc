/**
 * @file
 * Tests for the PALcode emulation cost model (Table 1) and the cache
 * simulator used to calibrate the 12 ns/event simulation clock.
 */

#include <gtest/gtest.h>

#include "cache/cache_sim.h"
#include "proto/palcode.h"
#include "trace/apps.h"
#include "trace/trace.h"

namespace sgms
{
namespace
{

TEST(PalCosts, Table1Values)
{
    PalCosts c = PalCosts::alpha250();
    EXPECT_EQ(c.fast_load, ticks::from_ns(195));
    EXPECT_EQ(c.slow_load, ticks::from_ns(361));
    EXPECT_EQ(c.fast_store, ticks::from_ns(241));
    EXPECT_EQ(c.slow_store, ticks::from_ns(383));
    EXPECT_EQ(c.null_pal_call, ticks::from_ns(56));
    EXPECT_EQ(c.l1_hit, ticks::from_ns(11));
    EXPECT_EQ(c.l2_hit, ticks::from_ns(30));
    EXPECT_EQ(c.l2_miss, ticks::from_ns(315));
}

TEST(PalCosts, PaperRatios)
{
    // Table 1 commentary: "a fast load is 6.5 times slower than an
    // L2 cache hit, and 1.6 times faster than an L2 miss".
    PalCosts c;
    double vs_l2_hit = static_cast<double>(c.fast_load) / c.l2_hit;
    double vs_l2_miss = static_cast<double>(c.l2_miss) / c.fast_load;
    EXPECT_NEAR(vs_l2_hit, 6.5, 0.2);
    EXPECT_NEAR(vs_l2_miss, 1.6, 0.1);
}

TEST(PalEmulator, FastWhenSamePageSlowOtherwise)
{
    PalEmulator pal;
    const PalCosts &c = pal.costs();
    EXPECT_EQ(pal.access_cost(1, false), c.slow_load); // first: slow
    EXPECT_EQ(pal.access_cost(1, false), c.fast_load);
    EXPECT_EQ(pal.access_cost(1, true), c.fast_store);
    EXPECT_EQ(pal.access_cost(2, true), c.slow_store); // page change
    EXPECT_EQ(pal.access_cost(2, false), c.fast_load);
    EXPECT_EQ(pal.emulated(), 5u);
}

TEST(PalEmulator, PageCompletionDropsAffinity)
{
    PalEmulator pal;
    pal.access_cost(1, false);
    pal.page_completed(1);
    EXPECT_EQ(pal.access_cost(1, false), pal.costs().slow_load);
    // Completing an unrelated page does not drop affinity.
    pal.page_completed(99);
    EXPECT_EQ(pal.access_cost(1, false), pal.costs().fast_load);
}

TEST(CacheArray, DirectMappedConflicts)
{
    CacheArray c({1024, 32, 1}); // 32 lines, direct-mapped
    EXPECT_FALSE(c.access(0));
    EXPECT_TRUE(c.access(0));
    EXPECT_TRUE(c.access(31)); // same line
    EXPECT_FALSE(c.access(1024)); // maps to the same set, evicts
    EXPECT_FALSE(c.access(0));
}

TEST(CacheArray, AssociativityAvoidsConflicts)
{
    CacheArray c({1024, 32, 2});
    EXPECT_FALSE(c.access(0));
    EXPECT_FALSE(c.access(1024)); // other way of the same set
    EXPECT_TRUE(c.access(0));
    EXPECT_TRUE(c.access(1024));
}

TEST(CacheSim, LevelsReportedCorrectly)
{
    CacheSim sim({1024, 32, 1}, {4096, 32, 1});
    EXPECT_EQ(sim.access(0), CacheLevel::Memory);
    EXPECT_EQ(sim.access(0), CacheLevel::L1);
    EXPECT_EQ(sim.access(32), CacheLevel::Memory); // separate line
    EXPECT_EQ(sim.access(0), CacheLevel::L1);
    // 2048 conflicts with 0 in the 1K L1 (both map to set 0) but not
    // in the 4K L2, so after it evicts 0 from L1 the re-access to 0
    // hits in L2.
    EXPECT_EQ(sim.access(2048), CacheLevel::Memory);
    EXPECT_EQ(sim.access(0), CacheLevel::L2);
    EXPECT_EQ(sim.access(0), CacheLevel::L1);
    const auto &st = sim.stats();
    EXPECT_EQ(st.l1_hits, 3u);
    EXPECT_EQ(st.l2_hits, 1u);
    EXPECT_EQ(st.misses, 3u);
}

TEST(CacheStats, AverageAccessTime)
{
    CacheStats s;
    s.l1_hits = 90;
    s.l2_hits = 9;
    s.misses = 1;
    // 90*11 + 9*30 + 1*315 = 990 + 270 + 315 = 1575 / 100 = 15.75
    EXPECT_EQ(s.average_access_time(), ticks::from_ns(15.75));
    CacheStats empty;
    EXPECT_EQ(empty.average_access_time(), 0);
}

TEST(CacheSim, CalibrationNearPaperTwelveNs)
{
    // Section 3.2: "we calculated the average time per trace event
    // ... to be about 12 nanoseconds". Run the application models
    // through the Alpha 250 cache hierarchy and check the average
    // lands in that neighbourhood.
    double total_ns = 0;
    int n = 0;
    for (const char *app : {"modula3", "atom", "gdb"}) {
        CacheSim sim = CacheSim::alpha250();
        auto trace = make_app_trace(app, 0.05, 3);
        Tick avg = sim.calibrate(*trace);
        EXPECT_GT(ticks::to_ns(avg), 5.0) << app;
        EXPECT_LT(ticks::to_ns(avg), 25.0) << app;
        total_ns += ticks::to_ns(avg);
        ++n;
    }
    EXPECT_NEAR(total_ns / n, 12.0, 6.0);
}

} // namespace
} // namespace sgms
