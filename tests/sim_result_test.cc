/**
 * @file
 * Unit tests for SimResult's derived metrics (used by the figure
 * benches and the reproduction checks).
 */

#include <gtest/gtest.h>

#include "core/sim_result.h"

namespace sgms
{
namespace
{

FaultRecord
fault_at(uint64_t ref_index, Tick sp_wait, Tick page_wait = 0)
{
    return FaultRecord{0, ref_index, 0, sp_wait, page_wait, false};
}

TEST(SimResultMetrics, TotalWait)
{
    FaultRecord f = fault_at(0, 100, 50);
    EXPECT_EQ(f.total_wait(), 150);
}

TEST(SimResultMetrics, BestCaseFraction)
{
    SimResult r;
    // Six faults at the minimum wait, four at ~3x it.
    for (int i = 0; i < 6; ++i)
        r.faults.push_back(fault_at(i, 1000));
    for (int i = 0; i < 4; ++i)
        r.faults.push_back(fault_at(10 + i, 3000));
    EXPECT_DOUBLE_EQ(r.best_case_fraction(), 0.6);
    // With a slack of 4x everything is "best case".
    EXPECT_DOUBLE_EQ(r.best_case_fraction(4.0), 1.0);
}

TEST(SimResultMetrics, BestCaseFractionEmpty)
{
    SimResult r;
    EXPECT_DOUBLE_EQ(r.best_case_fraction(), 0.0);
}

TEST(SimResultMetrics, BurstFractionAllUniform)
{
    // Faults evenly spread: no window is 3x the average.
    SimResult r;
    r.refs = 100000;
    for (uint64_t i = 0; i < 100; ++i)
        r.faults.push_back(fault_at(i * 1000, 1));
    EXPECT_DOUBLE_EQ(r.burst_fault_fraction(10000), 0.0);
}

TEST(SimResultMetrics, BurstFractionAllClustered)
{
    // All faults inside one tiny region of the trace.
    SimResult r;
    r.refs = 1000000;
    for (uint64_t i = 0; i < 100; ++i)
        r.faults.push_back(fault_at(500000 + i, 1));
    EXPECT_DOUBLE_EQ(r.burst_fault_fraction(10000), 1.0);
}

TEST(SimResultMetrics, BurstFractionMixed)
{
    SimResult r;
    r.refs = 1000000;
    // 50 clustered faults + 50 spread out; window 10k refs.
    for (uint64_t i = 0; i < 50; ++i)
        r.faults.push_back(fault_at(i * 19000, 1));
    for (uint64_t i = 0; i < 50; ++i)
        r.faults.push_back(fault_at(960000 + i * 10, 1));
    double frac = r.burst_fault_fraction(10000);
    EXPECT_GT(frac, 0.4);
    EXPECT_LT(frac, 0.6);
}

TEST(SimResultMetrics, BurstFractionDegenerate)
{
    SimResult r;
    EXPECT_DOUBLE_EQ(r.burst_fault_fraction(1000), 0.0);
    r.refs = 100;
    r.faults.push_back(fault_at(0, 1));
    EXPECT_DOUBLE_EQ(r.burst_fault_fraction(0), 0.0);
    // A single fault never counts as a burst (threshold >= 2).
    EXPECT_DOUBLE_EQ(r.burst_fault_fraction(100), 0.0);
}

TEST(SimResultMetrics, IoOverlapShare)
{
    SimResult r;
    EXPECT_DOUBLE_EQ(r.io_overlap_share(), 0.0);
    r.io_overlap = 300;
    r.comp_overlap = 100;
    EXPECT_DOUBLE_EQ(r.io_overlap_share(), 0.75);
}

TEST(SimResultMetrics, SpeedupAndReduction)
{
    SimResult base, r;
    base.runtime = 2000;
    r.runtime = 1000;
    EXPECT_DOUBLE_EQ(r.speedup_vs(base), 2.0);
    EXPECT_DOUBLE_EQ(r.reduction_vs(base), 0.5);
    EXPECT_DOUBLE_EQ(base.reduction_vs(r), -1.0);
    SimResult zero;
    EXPECT_DOUBLE_EQ(zero.speedup_vs(base), 0.0);
    EXPECT_DOUBLE_EQ(zero.reduction_vs(zero), 0.0);
}

} // namespace
} // namespace sgms
