/**
 * @file
 * Tests for the multi-process execution mode (src/exec/ipc.h,
 * worker.h, supervisor.h, and the engine's workers path): pipe
 * framing, byte-identity with the serial path, crash recovery, the
 * per-point watchdog, and degraded-result determinism.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/json_report.h"
#include "core/sweep.h"
#include "exec/ipc.h"
#include "exec/parallel_runner.h"
#include "exec/result_codec.h"
#include "exec/worker.h"

namespace sgms
{
namespace
{

using exec::Engine;
using exec::ExecOptions;
using exec::FrameType;
using exec::IpcFrame;
using exec::IpcRead;

/** Sets an environment variable for one scope, then unsets it. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const std::string &value)
        : name_(name)
    {
        ::setenv(name, value.c_str(), 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }

  private:
    const char *name_;
};

/** A pipe whose ends close automatically. */
struct Pipe
{
    int rd = -1;
    int wr = -1;
    Pipe()
    {
        int fds[2];
        EXPECT_EQ(::pipe(fds), 0);
        rd = fds[0];
        wr = fds[1];
    }
    ~Pipe()
    {
        if (rd >= 0)
            ::close(rd);
        if (wr >= 0)
            ::close(wr);
    }
    void
    close_wr()
    {
        ::close(wr);
        wr = -1;
    }
};

std::string
blobs_of(const std::vector<SimResult> &results)
{
    std::ostringstream os;
    for (const auto &r : results)
        exec::write_result_blob(os, r);
    return os.str();
}

std::string
report_of(const std::vector<SimResult> &results)
{
    std::ostringstream os;
    write_results_json(os, results, /*include_faults=*/true);
    return os.str();
}

/** Same grid exec_test.cc uses for engine determinism. */
SweepSpec
workers_spec()
{
    SweepSpec spec;
    spec.apps = {"gdb"};
    spec.policies = {"fullpage", "eager", "pipelining"};
    spec.subpage_sizes = {1024, 2048};
    spec.mems = {MemConfig::Half};
    spec.scale = 0.3;
    return spec;
}

double
metric_value(const SimResult &r, const std::string &name)
{
    for (const auto &m : r.metrics)
        if (m.name == name)
            return m.value;
    return 0.0;
}

// ----------------------------------------------------------------- ipc

TEST(Ipc, FramesRoundTripOverARealPipe)
{
    Pipe p;
    IpcFrame task;
    task.type = FrameType::Task;
    task.index = 42;
    task.arg = 7;
    task.payload = "fingerprint\nwith=lines\n";
    ASSERT_TRUE(exec::write_frame(p.wr, task));

    IpcFrame result;
    result.type = FrameType::Result;
    result.index = 43;
    result.arg = 0;
    result.payload = std::string("binary\0bytes", 12);
    ASSERT_TRUE(exec::write_frame(p.wr, result));

    IpcFrame error;
    error.type = FrameType::Error;
    error.index = 44;
    error.arg = 1;
    ASSERT_TRUE(exec::write_frame(p.wr, error)); // empty payload

    IpcFrame out;
    ASSERT_EQ(exec::read_frame(p.rd, out), IpcRead::Ok);
    EXPECT_EQ(out.type, FrameType::Task);
    EXPECT_EQ(out.index, 42u);
    EXPECT_EQ(out.arg, 7u);
    EXPECT_EQ(out.payload, task.payload);

    ASSERT_EQ(exec::read_frame(p.rd, out), IpcRead::Ok);
    EXPECT_EQ(out.type, FrameType::Result);
    EXPECT_EQ(out.payload, result.payload);

    ASSERT_EQ(exec::read_frame(p.rd, out), IpcRead::Ok);
    EXPECT_EQ(out.type, FrameType::Error);
    EXPECT_TRUE(out.payload.empty());

    // Writer closed with nothing in flight: clean EOF, not an error.
    p.close_wr();
    EXPECT_EQ(exec::read_frame(p.rd, out), IpcRead::Eof);
}

TEST(Ipc, TornFrameIsAnErrorNotEof)
{
    // One complete frame, then a prefix of a second (valid magic,
    // cut off mid-header), then the writer dies. The reader must
    // distinguish "mid-frame EOF" from the clean EOF above.
    Pipe p;
    IpcFrame ok;
    ok.type = FrameType::Task;
    ok.payload = "abc";
    ASSERT_TRUE(exec::write_frame(p.wr, ok));
    unsigned char half[12] = {0x46, 0x4d, 0x47, 0x53, 1, 0, 0, 0,
                              9, 9, 9, 9}; // "SGMF" LE + type=Task
    ASSERT_EQ(::write(p.wr, half, sizeof(half)),
              static_cast<ssize_t>(sizeof(half)));
    p.close_wr();
    IpcFrame out;
    ASSERT_EQ(exec::read_frame(p.rd, out), IpcRead::Ok);
    EXPECT_EQ(out.payload, "abc");
    EXPECT_EQ(exec::read_frame(p.rd, out), IpcRead::Error);
}

TEST(Ipc, RejectsGarbageMagicAndOversizePayload)
{
    Pipe p;
    // 32 bytes of garbage: wrong magic.
    std::string junk(32, 'Z');
    ASSERT_EQ(::write(p.wr, junk.data(), junk.size()),
              static_cast<ssize_t>(junk.size()));
    IpcFrame out;
    EXPECT_EQ(exec::read_frame(p.rd, out), IpcRead::Error);

    // Correct magic + type but an absurd payload length: rejected
    // before any attempt to allocate it.
    Pipe p2;
    unsigned char hdr[32] = {};
    hdr[0] = 0x46; // "SGMF" little-endian: 0x53474d46
    hdr[1] = 0x4d;
    hdr[2] = 0x47;
    hdr[3] = 0x53;
    hdr[4] = 2; // FrameType::Result
    for (int i = 24; i < 32; ++i)
        hdr[i] = 0xff; // payload_len = 2^64-1
    ASSERT_EQ(::write(p2.wr, hdr, sizeof(hdr)),
              static_cast<ssize_t>(sizeof(hdr)));
    EXPECT_EQ(exec::read_frame(p2.rd, out), IpcRead::Error);
}

// -------------------------------------------------------------- engine

TEST(Workers, ResultsAreByteIdenticalToSerialAtAnyFleetSize)
{
    SweepSpec spec = workers_spec();

    ExecOptions serial_eo;
    serial_eo.jobs = 1;
    Engine serial(serial_eo);
    std::vector<SimResult> s = serial.run_sweep(spec);

    for (unsigned workers : {1u, 2u, 8u}) {
        ExecOptions eo;
        eo.workers = workers; // more workers than points is fine
        Engine engine(eo);
        std::vector<SimResult> w = engine.run_sweep(spec);
        ASSERT_EQ(w.size(), s.size());
        EXPECT_EQ(blobs_of(w), blobs_of(s)) << workers << " workers";
        EXPECT_EQ(report_of(w), report_of(s));

        exec::ExecStats es = engine.stats();
        EXPECT_EQ(es.points_run, s.size());
        EXPECT_EQ(es.points_degraded, 0u);
        EXPECT_EQ(es.worker_crashes, 0u);
        EXPECT_EQ(es.timeouts, 0u);
        EXPECT_EQ(es.proc_workers, workers);
    }
}

TEST(Workers, ProgressFiresOncePerPointOnCallingThread)
{
    std::vector<Experiment> points =
        exec::expand_sweep(workers_spec());
    ExecOptions eo;
    eo.workers = 3;
    Engine engine(eo);
    std::vector<std::string> seen;
    std::thread::id caller = std::this_thread::get_id();
    bool all_on_caller = true;
    engine.run_all(points, [&](const Experiment &ex) {
        seen.push_back(ex.label());
        all_on_caller &= std::this_thread::get_id() == caller;
    });
    // Exactly once per point, on the parent thread (dispatch order
    // may differ from serial order; the multiset of labels may not,
    // and this grid's labels are unique).
    ASSERT_EQ(seen.size(), points.size());
    EXPECT_TRUE(all_on_caller);
    std::multiset<std::string> got(seen.begin(), seen.end());
    std::multiset<std::string> want;
    for (const Experiment &ex : points)
        want.insert(ex.label());
    EXPECT_EQ(got, want);
}

TEST(Workers, RecoversFromAWorkerKilledMidPoint)
{
    SweepSpec spec = workers_spec();
    ExecOptions serial_eo;
    serial_eo.jobs = 1;
    Engine serial(serial_eo);
    std::vector<SimResult> s = serial.run_sweep(spec);

    // The worker owning point 1 _exits before replying, first
    // attempt only; the supervisor must reap it, respawn, retry,
    // and still produce byte-identical output.
    ScopedEnv crash("SGMS_TEST_WORKER_CRASH_INDEX", "1");
    ExecOptions eo;
    eo.workers = 2;
    Engine engine(eo);
    std::vector<SimResult> w = engine.run_sweep(spec);

    EXPECT_EQ(blobs_of(w), blobs_of(s));
    exec::ExecStats es = engine.stats();
    EXPECT_EQ(es.points_degraded, 0u);
    EXPECT_GE(es.worker_crashes, 1u);
    EXPECT_GE(es.worker_respawns, 1u);
}

TEST(Workers, PointCrashingOnEveryAttemptDegradesDeterministically)
{
    SweepSpec spec = workers_spec();
    ScopedEnv crash("SGMS_TEST_WORKER_CRASH_ALWAYS", "2");

    auto run_once = [&spec]() {
        ExecOptions eo;
        eo.workers = 2;
        Engine engine(eo);
        std::vector<SimResult> w = engine.run_sweep(spec);
        exec::ExecStats es = engine.stats();
        EXPECT_EQ(es.points_degraded, 1u);
        EXPECT_GE(es.worker_crashes, 2u); // both attempts died
        return w;
    };
    std::vector<SimResult> first = run_once();

    // The degraded slot is point 2 — identity filled, marked, every
    // measurement zero — and the other points are untouched.
    std::vector<Experiment> points = exec::expand_sweep(spec);
    ASSERT_EQ(first.size(), points.size());
    const SimResult &deg = first[2];
    EXPECT_EQ(deg.app, points[2].app);
    EXPECT_EQ(deg.policy, points[2].policy);
    EXPECT_EQ(deg.subpage_size, points[2].subpage_size);
    EXPECT_EQ(deg.runtime, 0);
    EXPECT_EQ(metric_value(deg, "exec.degraded"), 1.0);
    EXPECT_EQ(metric_value(first[0], "exec.degraded"), 0.0);
    EXPECT_GT(first[0].runtime, 0);

    // Degradation is deterministic: a second run is byte-identical.
    std::vector<SimResult> second = run_once();
    EXPECT_EQ(blobs_of(second), blobs_of(first));
}

TEST(Workers, WatchdogKillsOverBudgetPointsDeterministically)
{
    SweepSpec spec = workers_spec();
    // Every point stalls far past the budget: the watchdog must kill
    // every worker, degrade every point, and terminate promptly.
    ScopedEnv stall("SGMS_TEST_WORKER_STALL_MS", "30000");

    auto run_once = [&spec]() {
        ExecOptions eo;
        eo.workers = 2;
        eo.point_timeout_ms = 200;
        Engine engine(eo);
        std::vector<SimResult> w = engine.run_sweep(spec);
        exec::ExecStats es = engine.stats();
        EXPECT_EQ(es.points_degraded, w.size());
        EXPECT_EQ(es.timeouts, w.size()); // one kill per point
        return w;
    };
    std::vector<SimResult> first = run_once();
    for (const SimResult &r : first) {
        EXPECT_EQ(r.runtime, 0);
        EXPECT_EQ(metric_value(r, "exec.degraded"), 1.0);
    }
    // Timed-out points yield the same bytes on every run.
    std::vector<SimResult> second = run_once();
    EXPECT_EQ(blobs_of(second), blobs_of(first));
}

TEST(Workers, WatchdogSparesPointsWithinBudget)
{
    SweepSpec spec = workers_spec();
    ExecOptions serial_eo;
    serial_eo.jobs = 1;
    Engine serial(serial_eo);
    std::vector<SimResult> s = serial.run_sweep(spec);

    // Generous budget: nothing should be killed.
    ExecOptions eo;
    eo.workers = 2;
    eo.point_timeout_ms = 120000;
    Engine engine(eo);
    std::vector<SimResult> w = engine.run_sweep(spec);
    EXPECT_EQ(blobs_of(w), blobs_of(s));
    EXPECT_EQ(engine.stats().timeouts, 0u);
}

TEST(Workers, SharesTheResultCacheWithTheParent)
{
    std::string dir = ::testing::TempDir() + "sgms_workers_cache";
    std::filesystem::remove_all(dir);
    SweepSpec spec = workers_spec();

    ExecOptions eo;
    eo.workers = 2;
    eo.cache_enabled = true;
    eo.cache_dir = dir;
    Engine cold(eo);
    std::vector<SimResult> first = cold.run_sweep(spec);
    exec::ExecStats cs = cold.stats();
    EXPECT_EQ(cs.points_run, first.size());
    EXPECT_EQ(cs.cache.stores, first.size());

    // A second engine — workers mode again — consults the cache in
    // the parent and dispatches nothing.
    Engine warm(eo);
    std::vector<SimResult> second = warm.run_sweep(spec);
    EXPECT_EQ(blobs_of(second), blobs_of(first));
    exec::ExecStats ws = warm.stats();
    EXPECT_EQ(ws.points_cached, first.size());
    EXPECT_EQ(ws.points_run, 0u);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace sgms
