/**
 * @file
 * Property tests for the staged network model: conservation (every
 * message is delivered exactly once), resource exclusivity (no two
 * occupancies of one stage overlap), latency lower bounds, and the
 * preemption mechanics of demand priority.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/random.h"
#include "net/network.h"
#include "net/resource.h"
#include "net/timeline.h"
#include "sim/event_queue.h"

namespace sgms
{
namespace
{

struct RandomTrafficResult
{
    uint64_t sent = 0;
    uint64_t delivered = 0;
    std::vector<TimelineEntry> timeline;
    std::vector<Tick> delivery_times;
};

RandomTrafficResult
run_random_traffic(uint64_t seed, bool preemption, int messages)
{
    EventQueue eq;
    NetParams params = NetParams::an2();
    params.preemptive_demand = preemption;
    params.priority_scheduling = true;
    TimelineRecorder rec;
    Network net(eq, params, 0, &rec);
    Rng rng(seed);

    RandomTrafficResult out;
    Tick now = 0;
    for (int i = 0; i < messages; ++i) {
        now += rng.below(ticks::from_us(200));
        eq.run_until(now);
        MsgKind kind;
        switch (rng.below(4)) {
          case 0:
            kind = MsgKind::Request;
            break;
          case 1:
            kind = MsgKind::DemandData;
            break;
          case 2:
            kind = MsgKind::BackgroundData;
            break;
          default:
            kind = MsgKind::PutPage;
            break;
        }
        NodeId src, dst;
        if (kind == MsgKind::Request || kind == MsgKind::PutPage) {
            src = 0;
            dst = 1 + static_cast<NodeId>(rng.below(3));
        } else {
            src = 1 + static_cast<NodeId>(rng.below(3));
            dst = 0;
        }
        uint32_t bytes =
            static_cast<uint32_t>(256 << rng.below(6)); // 256..8K
        ++out.sent;
        net.send(now, {src, dst, bytes, kind, false,
                       [&out](Tick d, Tick) {
                           ++out.delivered;
                           out.delivery_times.push_back(d);
                       }});
    }
    eq.run_all();
    out.timeline = rec.entries();
    return out;
}

class NetProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(NetProperty, EveryMessageDeliveredExactlyOnce)
{
    for (bool preempt : {false, true}) {
        auto r = run_random_traffic(GetParam(), preempt, 400);
        EXPECT_EQ(r.sent, 400u);
        EXPECT_EQ(r.delivered, r.sent)
            << "preemption=" << preempt;
    }
}

TEST_P(NetProperty, StageOccupanciesNeverOverlap)
{
    for (bool preempt : {false, true}) {
        auto r = run_random_traffic(GetParam(), preempt, 400);
        // Group timeline entries by (component, node); within each
        // resource, busy intervals must not overlap.
        std::map<std::pair<int, NodeId>, std::vector<TimelineEntry>>
            by_resource;
        for (const auto &e : r.timeline) {
            by_resource[{static_cast<int>(e.comp), e.node}].push_back(
                e);
        }
        for (auto &[key, entries] : by_resource) {
            std::sort(entries.begin(), entries.end(),
                      [](const TimelineEntry &a,
                         const TimelineEntry &b) {
                          return a.start < b.start;
                      });
            for (size_t i = 1; i < entries.size(); ++i) {
                EXPECT_GE(entries[i].start, entries[i - 1].end)
                    << "overlap on component " << key.first
                    << " node " << key.second << " preempt "
                    << preempt;
            }
        }
    }
}

TEST_P(NetProperty, DeliveriesRespectMinimumLatency)
{
    auto r = run_random_traffic(GetParam(), true, 200);
    NetParams p = NetParams::an2();
    // No message can be delivered faster than a 256-byte message on
    // an idle network (smallest payload used in the generator is
    // 256B except requests at 64B).
    Tick floor = p.send_cpu_data +
                 2 * (p.dma_fixed + p.dma_per_byte * 64) +
                 p.wire_fixed + p.wire_per_byte * 64;
    for (Tick d : r.delivery_times)
        EXPECT_GE(d, floor);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetProperty,
                         ::testing::Values(1, 7, 42, 1234, 99999));

TEST(Preemption, DemandPreemptsInFlightBackground)
{
    EventQueue eq;
    StageResource res(eq, Component::Wire, 0, nullptr,
                      /*preemption=*/true);
    std::vector<std::pair<int, Tick>> completions;
    // Long background item starts at t=0 (duration 1000).
    res.submit(0, 1000, 0, 1, MsgKind::BackgroundData,
               [&](Tick, Tick end) { completions.push_back({1, end}); });
    // Demand item arrives at t=100 with higher priority.
    eq.schedule(100, [&] {
        res.submit(100, 50, 2, 2, MsgKind::DemandData,
                   [&](Tick, Tick end) {
                       completions.push_back({2, end});
                   });
    });
    eq.run_all();
    ASSERT_EQ(completions.size(), 2u);
    // Demand completes first at 150; background resumes and finishes
    // its remaining 900 at 1050.
    EXPECT_EQ(completions[0].first, 2);
    EXPECT_EQ(completions[0].second, 150);
    EXPECT_EQ(completions[1].first, 1);
    EXPECT_EQ(completions[1].second, 1050);
    EXPECT_EQ(res.total_busy(), 1050);
}

TEST(Preemption, DisabledMeansFifo)
{
    EventQueue eq;
    StageResource res(eq, Component::Wire, 0, nullptr,
                      /*preemption=*/false);
    std::vector<std::pair<int, Tick>> completions;
    res.submit(0, 1000, 0, 1, MsgKind::BackgroundData,
               [&](Tick, Tick end) { completions.push_back({1, end}); });
    eq.schedule(100, [&] {
        res.submit(100, 50, 2, 2, MsgKind::DemandData,
                   [&](Tick, Tick end) {
                       completions.push_back({2, end});
                   });
    });
    eq.run_all();
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_EQ(completions[0].first, 1);
    EXPECT_EQ(completions[0].second, 1000);
    EXPECT_EQ(completions[1].second, 1050);
}

TEST(Preemption, DemandNeverPreemptsDemand)
{
    EventQueue eq;
    StageResource res(eq, Component::Wire, 0, nullptr, true);
    std::vector<int> order;
    res.submit(0, 1000, 2, 1, MsgKind::DemandData,
               [&](Tick, Tick) { order.push_back(1); });
    eq.schedule(100, [&] {
        res.submit(100, 50, 3, 2, MsgKind::Request,
                   [&](Tick, Tick) { order.push_back(2); });
    });
    eq.run_all();
    // DemandData is not preemptible, so the in-flight item finishes.
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Preemption, RepeatedPreemptionResumesCorrectly)
{
    EventQueue eq;
    StageResource res(eq, Component::Wire, 0, nullptr, true);
    Tick bg_end = 0;
    std::vector<Tick> demand_ends;
    res.submit(0, 1000, 0, 1, MsgKind::BackgroundData,
               [&](Tick, Tick end) { bg_end = end; });
    for (Tick t : {100, 300, 500}) {
        eq.schedule(t, [&, t] {
            res.submit(t, 50, 2, 10 + t, MsgKind::DemandData,
                       [&](Tick, Tick end) {
                           demand_ends.push_back(end);
                       });
        });
    }
    eq.run_all();
    ASSERT_EQ(demand_ends.size(), 3u);
    EXPECT_EQ(demand_ends[0], 150);
    EXPECT_EQ(demand_ends[1], 350);
    EXPECT_EQ(demand_ends[2], 550);
    // Background did 100+150+150 before/between demands; total work
    // 1000 plus 150 of demand-induced delay => ends at 1150.
    EXPECT_EQ(bg_end, 1150);
}

TEST(Preemption, QueuedBackgroundResumeOrderStable)
{
    EventQueue eq;
    StageResource res(eq, Component::Wire, 0, nullptr, true);
    std::vector<int> order;
    res.submit(0, 100, 0, 1, MsgKind::BackgroundData,
               [&](Tick, Tick) { order.push_back(1); });
    res.submit(0, 100, 0, 2, MsgKind::BackgroundData,
               [&](Tick, Tick) { order.push_back(2); });
    eq.schedule(50, [&] {
        res.submit(50, 10, 2, 3, MsgKind::DemandData,
                   [&](Tick, Tick) { order.push_back(3); });
    });
    eq.run_all();
    // Demand at 50 preempts item 1; item 1's remainder must resume
    // BEFORE item 2 (original arrival order).
    EXPECT_EQ(order, (std::vector<int>{3, 1, 2}));
}

} // namespace
} // namespace sgms
