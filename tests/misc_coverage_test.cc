/**
 * @file
 * Coverage for smaller behaviours not exercised elsewhere: event
 * queue misuse, experiment config normalization, trace text format
 * tolerance, histogram quantile edges, page-table erase, and the
 * network presets' internal consistency.
 */

#include <gtest/gtest.h>

#include <fstream>

#include "common/stats.h"
#include "core/experiment.h"
#include "mem/page_table.h"
#include "net/params.h"
#include "sim/event_queue.h"
#include "trace/trace_file.h"

namespace sgms
{
namespace
{

TEST(EventQueueMisuse, RunOneOnEmptyDies)
{
    EventQueue eq;
    EXPECT_DEATH({ eq.run_one(); }, "assertion");
}

TEST(EventQueueMisuse, SchedulingInThePastDies)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run_all();
    EXPECT_DEATH({ eq.schedule(50, [] {}); }, "assertion");
}

TEST(ExperimentConfig, FullpageForcesSubpageEqualPage)
{
    Experiment ex;
    ex.policy = "fullpage";
    ex.subpage_size = 1024; // must be ignored
    ex.app = "gdb";
    ex.scale = 0.2;
    SimConfig cfg = ex.config();
    EXPECT_EQ(cfg.subpage_size, cfg.page_size);
    ex.policy = "disk";
    EXPECT_EQ(ex.config().subpage_size, ex.config().page_size);
    ex.policy = "eager";
    EXPECT_EQ(ex.config().subpage_size, 1024u);
}

TEST(ExperimentConfig, MemPagesDeriveFromFootprint)
{
    Experiment ex;
    ex.app = "gdb";
    ex.scale = 0.5;
    ex.mem = MemConfig::Half;
    uint64_t fp = app_footprint_pages("gdb", 0.5);
    EXPECT_EQ(ex.config().mem_pages, std::max<size_t>(2, fp / 2));
    ex.mem = MemConfig::Full;
    EXPECT_EQ(ex.config().mem_pages, 0u);
}

TEST(TraceText, LowercaseAndCommentsTolerated)
{
    std::string path = "/tmp/sgms_misc_trace.txt";
    {
        std::ofstream f(path);
        f << "# comment line\n\nr ff\nw 1a2b\n";
    }
    FileTrace t(path);
    TraceEvent ev;
    ASSERT_TRUE(t.next(ev));
    EXPECT_EQ(ev.addr, 0xffu);
    EXPECT_FALSE(ev.write);
    ASSERT_TRUE(t.next(ev));
    EXPECT_EQ(ev.addr, 0x1a2bu);
    EXPECT_TRUE(ev.write);
    EXPECT_FALSE(t.next(ev));
    std::remove(path.c_str());
}

TEST(HistogramQuantiles, SingleBinAndWeights)
{
    Histogram h;
    h.add(42, 10);
    EXPECT_EQ(h.quantile(0.0), 42);
    EXPECT_EQ(h.quantile(0.5), 42);
    EXPECT_EQ(h.quantile(1.0), 42);
    h.add(100, 90);
    EXPECT_EQ(h.quantile(0.05), 42);
    EXPECT_EQ(h.quantile(0.5), 100);
}

TEST(PageTableErase, RemovesFromPolicyToo)
{
    PageGeometry geo(8192, 1024);
    PageTable pt(geo, 2);
    pt.install(1);
    pt.install(2);
    pt.erase(1);
    EXPECT_EQ(pt.resident(), 1u);
    EXPECT_FALSE(pt.full());
    // Victim selection must not return the erased page.
    pt.install(3);
    EXPECT_EQ(pt.evict(), 2u);
    EXPECT_EQ(pt.evict(), 3u);
}

TEST(NetPresets, ComponentNamesComplete)
{
    EXPECT_STREQ(component_name(Component::ReqCpu), "Req-CPU");
    EXPECT_STREQ(component_name(Component::Wire), "Wire");
    EXPECT_STREQ(component_name(Component::SrvCpu), "Srv-CPU");
    EXPECT_STREQ(msg_kind_name(MsgKind::Request), "request");
    EXPECT_STREQ(msg_kind_name(MsgKind::PutPage), "putpage");
}

TEST(NetPresets, DataMessageLatencyComposition)
{
    NetParams p = NetParams::an2();
    // data_message_latency is the five-stage sum; demand adds the
    // fault handling and request path on top.
    Tick data = p.data_message_latency(1024);
    Tick demand = p.demand_fetch_latency(1024);
    EXPECT_GT(demand, data + p.fault_handle);
    EXPECT_GT(demand - data - p.fault_handle, p.request_proc);
}

TEST(NetPresets, An2WireRateIs155Mbps)
{
    NetParams p = NetParams::an2();
    // 8 bits / 155 Mb/s = 51.6 ns per byte.
    EXPECT_NEAR(ticks::to_ns(p.wire_per_byte), 51.6, 0.1);
}

TEST(MemConfigNames, AllNamed)
{
    EXPECT_STREQ(mem_config_name(MemConfig::Full), "full-mem");
    EXPECT_STREQ(mem_config_name(MemConfig::Half), "1/2-mem");
    EXPECT_STREQ(mem_config_name(MemConfig::Quarter), "1/4-mem");
}

} // namespace
} // namespace sgms
