/**
 * @file
 * Tests for the multi-client event kernel (sim/multi_client.h) and
 * its trace plumbing: rotated/seekable cursors, N=1 byte-identity
 * with the single-client simulator, same-seed determinism at larger
 * client counts (including through the exec engine at any --jobs /
 * --workers), emergent contention, fault-injection interaction, and
 * zero steady-state allocations at N=256.
 *
 * This binary installs the allocation probe (common/alloc_probe.h).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/alloc_probe.h"
#include "core/experiment.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "exec/parallel_runner.h"
#include "exec/result_cache.h"
#include "exec/result_codec.h"
#include "fault/fault_plan.h"
#include "sim/event_queue.h"
#include "sim/multi_client.h"
#include "trace/apps.h"
#include "trace/synthetic.h"
#include "trace/trace.h"

SGMS_INSTALL_ALLOC_PROBE();

namespace sgms
{
namespace
{

using exec::result_blob;

// ---------------------------------------------------------------
// Trace cursors: skip() and RotatedTrace
// ---------------------------------------------------------------

VectorTrace
counting_trace(uint64_t n)
{
    VectorTrace t;
    for (uint64_t i = 0; i < n; ++i)
        t.push(i * 64, /*write=*/false);
    return t;
}

std::vector<Addr>
drain(TraceSource &t)
{
    std::vector<Addr> out;
    TraceEvent ev;
    while (t.next(ev))
        out.push_back(ev.addr);
    return out;
}

TEST(TraceSkip, VectorTraceSkipsInO1)
{
    VectorTrace t = counting_trace(10);
    t.skip(3);
    TraceEvent ev;
    ASSERT_TRUE(t.next(ev));
    EXPECT_EQ(ev.addr, 3u * 64);
    t.skip(100); // past the end clamps
    EXPECT_FALSE(t.next(ev));
}

TEST(TraceSkip, DefaultImplementationDiscardsEvents)
{
    // SyntheticTrace has no skip override; the base-class default
    // must read-and-discard to the same position.
    auto a = make_app_trace("gdb", 0.1, 7);
    auto b = make_app_trace("gdb", 0.1, 7);
    TraceEvent ev;
    for (int i = 0; i < 1000; ++i)
        ASSERT_TRUE(a->next(ev));
    b->skip(1000);
    std::vector<Addr> rest_a = drain(*a);
    std::vector<Addr> rest_b = drain(*b);
    EXPECT_EQ(rest_a, rest_b);
}

TEST(RotatedTraceTest, OffsetZeroIsIdentity)
{
    auto base = std::make_unique<VectorTrace>(counting_trace(8));
    RotatedTrace rot(std::move(base), 0);
    EXPECT_EQ(rot.offset(), 0u);
    std::vector<Addr> got = drain(rot);
    ASSERT_EQ(got.size(), 8u);
    for (uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(got[i], i * 64);
}

TEST(RotatedTraceTest, RotatesAndWraps)
{
    auto base = std::make_unique<VectorTrace>(counting_trace(8));
    RotatedTrace rot(std::move(base), 3);
    std::vector<Addr> got = drain(rot);
    ASSERT_EQ(got.size(), 8u); // same length, rotated
    for (uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(got[i], ((3 + i) % 8) * 64);
    // reset() replays the same rotation.
    rot.reset();
    EXPECT_EQ(drain(rot), got);
}

TEST(RotatedTraceTest, OffsetReducesModuloLength)
{
    auto base = std::make_unique<VectorTrace>(counting_trace(8));
    RotatedTrace rot(std::move(base), 8 * 5 + 2);
    EXPECT_EQ(rot.offset(), 2u);
    EXPECT_EQ(rot.size_hint(), 8u);
}

// ---------------------------------------------------------------
// Event heap at 10k+ concurrent in-flight events
// ---------------------------------------------------------------

TEST(EventKernel, TenThousandInFlightStaysAllocationFree)
{
    EventQueue eq;
    uint64_t sink = 0;
    Tick t = 0;
    auto wave = [&](uint32_t width) {
        for (uint32_t i = 0; i < width; ++i)
            eq.schedule(t + 1 + (i % 97), [&sink] { ++sink; });
        t += 200;
        eq.run_until(t);
    };
    wave(12000); // grows heap + pool to steady size
    uint64_t before = alloc_probe_count();
    for (int round = 0; round < 8; ++round)
        wave(12000);
    EXPECT_EQ(alloc_probe_count(), before);
    EXPECT_EQ(sink, 12000u * 9);
}

// ---------------------------------------------------------------
// N=1 byte-identity with the single-client simulator
// ---------------------------------------------------------------

/** Fault-heavy workload with evictions (obs/fault smoke shape). */
WorkloadSpec
mc_workload()
{
    WorkloadSpec spec;
    spec.name = "mc-smoke";
    spec.hot_pages = 8;

    PhaseSpec sweep;
    sweep.kind = PhaseSpec::Kind::SweepScan;
    sweep.page_lo = 8;
    sweep.page_hi = 72;
    sweep.refs = 64 * 4000;
    sweep.hot_frac = 1.0 - 1.0 / 4000;
    spec.phases.push_back(sweep);

    PhaseSpec dense;
    dense.kind = PhaseSpec::Kind::DenseScan;
    dense.page_lo = 72;
    dense.page_hi = 88;
    dense.stride = 64;
    dense.hot_frac = 0.9;
    dense.refs = 16 * 128 * 10;
    spec.phases.push_back(dense);
    return spec;
}

SimResult
run_single(const SimConfig &cfg, uint64_t seed = 42)
{
    SyntheticTrace trace(mc_workload(), seed);
    Simulator sim(cfg);
    return sim.run(trace);
}

SimResult
run_multi(SimConfig cfg, uint32_t n, uint64_t seed = 42)
{
    cfg.clients = n;
    std::vector<SyntheticTrace> traces;
    traces.reserve(n);
    for (uint32_t c = 0; c < n; ++c)
        traces.emplace_back(mc_workload(), seed);
    std::vector<TraceSource *> ptrs;
    for (auto &t : traces)
        ptrs.push_back(&t);
    MultiClientSimulator sim(cfg);
    return sim.run(ptrs);
}

SimConfig
mc_config(const std::string &policy, uint32_t subpage = 1024)
{
    SimConfig cfg;
    cfg.policy = policy;
    cfg.subpage_size =
        (policy == "fullpage" || policy == "disk") ? 8192 : subpage;
    cfg.mem_pages = 44;
    return cfg;
}

TEST(MultiClientIdentity, ByteIdenticalAtNOneAcrossPolicies)
{
    for (const char *policy :
         {"fullpage", "eager", "pipelining", "pipelining-all", "lazy",
          "disk"}) {
        SCOPED_TRACE(policy);
        SimConfig cfg = mc_config(policy);
        SimResult s = run_single(cfg);
        SimResult m = run_multi(cfg, 1);
        // Bytes, not fields: the lossless blob covers every field
        // including per-fault records and the metric snapshot.
        EXPECT_EQ(result_blob(m), result_blob(s));
    }
}

TEST(MultiClientIdentity, ByteIdenticalWithTlbAndSoftwarePal)
{
    SimConfig cfg = mc_config("eager");
    cfg.tlb_enabled = true;
    cfg.tlb_entries = 16;
    cfg.tlb_assoc = 4;
    EXPECT_EQ(result_blob(run_multi(cfg, 1)),
              result_blob(run_single(cfg)));

    SimConfig pal = mc_config("pipelining");
    pal.protection = ProtectionMode::SoftwarePal;
    EXPECT_EQ(result_blob(run_multi(pal, 1)),
              result_blob(run_single(pal)));
}

TEST(MultiClientIdentity, ByteIdenticalWithClusterLoadKnob)
{
    SimConfig cfg = mc_config("eager");
    cfg.cluster_load.server_utilization = 0.5;
    EXPECT_EQ(result_blob(run_multi(cfg, 1)),
              result_blob(run_single(cfg)));
}

TEST(MultiClientIdentity, ByteIdenticalUnderFaultInjection)
{
    fault::FaultPlan plan;
    plan.seed = 5;
    plan.set_loss(0.08);
    plan.duplicate_prob = 0.02;
    plan.outages.push_back(
        {1, ticks::from_ms(5), ticks::from_ms(60)});
    for (const char *policy : {"eager", "pipelining", "fullpage"}) {
        SCOPED_TRACE(policy);
        SimConfig cfg = mc_config(policy);
        cfg.faults = plan;
        EXPECT_EQ(result_blob(run_multi(cfg, 1)),
                  result_blob(run_single(cfg)));
    }
}

TEST(MultiClientIdentity, ExperimentRouteIsByteIdenticalAtNOne)
{
    // Experiment::run() must produce the same bytes whether clients
    // is left at 1 (single-client simulator) or the multi-client
    // kernel runs one client (goldens stay green either way).
    Experiment ex;
    ex.app = "gdb";
    ex.scale = 0.3;
    ex.policy = "eager";
    ex.subpage_size = 1024;
    ex.mem = MemConfig::Half;
    SimResult s = ex.run();

    SimConfig cfg = ex.config();
    cfg.clients = 1;
    auto traces = ex.client_traces(1);
    std::vector<TraceSource *> ptrs{traces[0].get()};
    MultiClientSimulator sim(cfg);
    SimResult m = sim.run(ptrs);
    m.app = ex.app;
    EXPECT_EQ(result_blob(m), result_blob(s));
}

// ---------------------------------------------------------------
// Multi-client determinism and aggregation
// ---------------------------------------------------------------

TEST(MultiClient, SameSeedIsByteIdenticalAtManyClientCounts)
{
    for (uint32_t n : {2u, 16u, 256u}) {
        SCOPED_TRACE(n);
        SimConfig cfg = mc_config("eager");
        SimResult a = run_multi(cfg, n);
        SimResult b = run_multi(cfg, n);
        EXPECT_EQ(result_blob(a), result_blob(b));
    }
}

TEST(MultiClient, AggregatesPerClientTalliesInClientOrder)
{
    SimConfig cfg = mc_config("eager");
    SimResult one = run_multi(cfg, 1);
    SimResult two = run_multi(cfg, 2);
    // Both clients replay the full trace: refs double, faults at
    // least double (contention can only add work), runtime grows.
    EXPECT_EQ(two.refs, 2 * one.refs);
    EXPECT_GE(two.page_faults, 2 * one.page_faults);
    EXPECT_GE(two.runtime, one.runtime);
}

double
gauge_of(const SimResult &r, const std::string &name)
{
    for (const auto &m : r.metrics)
        if (m.name == name)
            return m.value;
    return -1.0;
}

TEST(MultiClient, PublishesKernelGaugesOnlyAboveOneClient)
{
    SimConfig cfg = mc_config("eager");
    SimResult one = run_multi(cfg, 1);
    EXPECT_EQ(gauge_of(one, "sim.clients"), -1.0);

    SimResult four = run_multi(cfg, 4);
    EXPECT_EQ(gauge_of(four, "sim.clients"), 4.0);
    EXPECT_GT(gauge_of(four, "sim.kernel_events"), 0.0);
    double cpu = gauge_of(four, "gms.server_cpu_util_max");
    double wire = gauge_of(four, "gms.server_wire_util_max");
    EXPECT_GE(cpu, 0.0);
    EXPECT_LE(cpu, 1.0);
    EXPECT_GE(wire, 0.0);
    EXPECT_LE(wire, 1.0);
}

TEST(MultiClient, PerClientMetricsAreOptIn)
{
    SimConfig cfg = mc_config("eager");
    SimResult agg = run_multi(cfg, 4);
    EXPECT_EQ(gauge_of(agg, "client.0.refs"), -1.0);

    cfg.metrics_per_client = true;
    SimResult per = run_multi(cfg, 4);
    EXPECT_GT(gauge_of(per, "client.0.refs"), 0.0);
    EXPECT_GT(gauge_of(per, "client.3.refs"), 0.0);
    EXPECT_GT(gauge_of(per, "client.2.runtime_ns"), 0.0);
    // The aggregate counters are still the shared ones.
    EXPECT_EQ(per.refs, agg.refs);
}

TEST(MultiClient, ContentionIsEmergent)
{
    // More clients on the same servers: per-client fault service
    // time can only grow (queueing), so the makespan grows faster
    // than the single-client runtime.
    SimConfig cfg = mc_config("eager");
    SimResult one = run_multi(cfg, 1);
    SimResult sixteen = run_multi(cfg, 16);
    EXPECT_GT(sixteen.runtime, one.runtime);
    // Shared-wire accounting shows cross-client traffic.
    EXPECT_GE(sixteen.net_stats.messages,
              16 * one.net_stats.messages);
}

// ---------------------------------------------------------------
// Fault injection at N>1: outage while many clients are in flight
// ---------------------------------------------------------------

TEST(MultiClientFaults, ServerOutageWhileManyClientsInFlight)
{
    // Servers start at node N: take down the first server from the
    // start so early faults from every client hit the outage.
    SimConfig cfg = mc_config("eager");
    cfg.faults.seed = 9;
    cfg.faults.outages.push_back(
        {8, 0, ticks::from_ms(40)});
    SimResult r = run_multi(cfg, 8);
    SimResult one = run_multi(mc_config("eager"), 1);
    EXPECT_EQ(r.refs, 8 * one.refs); // every client completed
    EXPECT_GT(r.server_failures, 0u);
    EXPECT_GT(r.retries + r.degraded_fetches, 0u);

    // Same seed reproduces the same interleaving, bit for bit.
    SimResult again = run_multi(cfg, 8);
    EXPECT_EQ(result_blob(again), result_blob(r));
}

TEST(MultiClientFaults, LossAndDuplicatesCompleteAtN16)
{
    SimConfig cfg = mc_config("pipelining");
    cfg.faults.seed = 5;
    cfg.faults.set_loss(0.05);
    cfg.faults.duplicate_prob = 0.02;
    SimResult r = run_multi(cfg, 16);
    SimResult one = run_multi(mc_config("pipelining"), 1);
    EXPECT_EQ(r.refs, 16 * one.refs);
    EXPECT_GT(r.net_stats.dropped, 0u);
    EXPECT_GT(r.retries, 0u);
}

// ---------------------------------------------------------------
// Exec engine: --clients axis, any --jobs / --workers
// ---------------------------------------------------------------

std::vector<std::string>
blobs_of(const std::vector<SimResult> &rs)
{
    std::vector<std::string> out;
    for (const auto &r : rs)
        out.push_back(result_blob(r));
    return out;
}

SweepSpec
clients_spec()
{
    SweepSpec spec;
    spec.apps = {"gdb"};
    spec.policies = {"eager"};
    spec.subpage_sizes = {1024};
    spec.mems = {MemConfig::Half};
    spec.clients = {1, 4};
    spec.scale = 0.3;
    return spec;
}

TEST(MultiClientEngine, ExpandSweepAddsClientsAxisInnermost)
{
    SweepSpec spec = clients_spec();
    std::vector<Experiment> points = exec::expand_sweep(spec);
    ASSERT_EQ(points.size(), spec.point_count());
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].clients, 1u);
    EXPECT_EQ(points[1].clients, 4u);
}

TEST(MultiClientEngine, JobsAndWorkersAreByteIdenticalToSerial)
{
    SweepSpec spec = clients_spec();

    exec::ExecOptions serial_eo;
    serial_eo.jobs = 1;
    serial_eo.cache_enabled = false;
    exec::Engine serial(serial_eo);
    std::vector<SimResult> s = serial.run_sweep(spec);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_GT(s[1].refs, s[0].refs); // the clients axis did run

    exec::ExecOptions par_eo;
    par_eo.jobs = 4;
    par_eo.cache_enabled = false;
    exec::Engine par(par_eo);
    EXPECT_EQ(blobs_of(par.run_sweep(spec)), blobs_of(s));

    exec::ExecOptions w_eo;
    w_eo.workers = 2;
    w_eo.cache_enabled = false;
    exec::Engine workers(w_eo);
    EXPECT_EQ(blobs_of(workers.run_sweep(spec)), blobs_of(s));
}

TEST(MultiClientEngine, FingerprintSeparatesClientCounts)
{
    Experiment a;
    a.app = "gdb";
    a.scale = 0.3;
    Experiment b = a;
    b.clients = 4;
    EXPECT_NE(exec::experiment_fingerprint(a),
              exec::experiment_fingerprint(b));
    Experiment c = b;
    c.base.metrics_per_client = true;
    EXPECT_NE(exec::experiment_fingerprint(b),
              exec::experiment_fingerprint(c));
}

// ---------------------------------------------------------------
// Zero steady-state allocations at N=256
// ---------------------------------------------------------------

TEST(MultiClientAlloc, SteadyStateIsAllocationFreeAt256Clients)
{
    // Per-client trace: a warm prefix touching 64 distinct pages
    // (all faults, event traffic, page-table growth), then a long
    // steady tail cycling over the now-resident set. Full memory, so
    // the tail is pure fast-path hits interleaved by the scheduler.
    constexpr uint32_t N = 256;
    constexpr uint64_t PAGES = 64;
    constexpr uint64_t CYCLES = 40; // > 2 batch refills per client
    std::vector<VectorTrace> traces(N);
    for (uint32_t c = 0; c < N; ++c) {
        for (uint64_t p = 0; p < PAGES; ++p)
            traces[c].push(p * 8192, false);
        for (uint64_t k = 0; k < CYCLES; ++k)
            for (uint64_t p = 0; p < PAGES; ++p)
                traces[c].push(p * 8192 + (k % 8) * 512, false);
    }
    std::vector<TraceSource *> ptrs;
    for (auto &t : traces)
        ptrs.push_back(&t);

    SimConfig cfg;
    cfg.policy = "eager";
    cfg.subpage_size = 1024;
    cfg.mem_pages = 0; // full-mem: faults only in the warm prefix
    cfg.record_faults = false;
    cfg.clients = N;
    cfg.footprint_pages_hint = PAGES;

    MultiClientSimulator sim(cfg);
    sim.begin(ptrs);
    // Warm: drive until every client is past its faulting prefix and
    // the event queue has fully drained.
    // One dispatch at a time: a coarser chunk could cross from the
    // warm phase straight to completion (a finished fault leaves a
    // client's whole remaining tail runnable in one dispatch).
    const uint64_t warm_refs = N * (PAGES + PAGES * 4);
    while (sim.refs_executed() < warm_refs ||
           sim.events_pending() > 0) {
        ASSERT_TRUE(sim.drive(1));
    }
    uint64_t fallbacks_before = inline_function_heap_fallbacks();
    uint64_t before = alloc_probe_count();
    while (sim.drive(8192)) {
    }
    EXPECT_EQ(alloc_probe_count(), before);
    EXPECT_EQ(inline_function_heap_fallbacks(), fallbacks_before);

    SimResult r = sim.finish();
    EXPECT_EQ(r.refs, N * (PAGES + CYCLES * PAGES));
    EXPECT_EQ(r.page_faults, N * PAGES);
}

} // namespace
} // namespace sgms
