/**
 * @file
 * End-to-end reproduction checks: the paper's qualitative results
 * must hold on the synthetic workloads at reduced scale. These are
 * the "shape" assertions of EXPERIMENTS.md in executable form.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/experiment.h"

namespace sgms
{
namespace
{

constexpr double SCALE = 0.25;

/** Cache of results shared across tests in this binary. */
SimResult &
cached(const std::string &app, const std::string &policy, uint32_t sp,
       MemConfig mem)
{
    static std::map<std::string, SimResult> cache;
    std::string key = app + "/" + policy + "/" + std::to_string(sp) +
                      "/" + mem_config_name(mem);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    Experiment ex;
    ex.app = app;
    ex.scale = SCALE;
    ex.policy = policy;
    ex.subpage_size = sp;
    ex.mem = mem;
    return cache.emplace(key, ex.run()).first->second;
}

TEST(Reproduction, GmsBeatsDiskWithinPaperBand)
{
    // Figure 3 / prior-work check: fullpage GMS speedup over disk is
    // 1.7-2.2x for Modula-3 across memory configurations.
    for (MemConfig mem :
         {MemConfig::Full, MemConfig::Half, MemConfig::Quarter}) {
        const SimResult &disk = cached("modula3", "disk", 8192, mem);
        const SimResult &full =
            cached("modula3", "fullpage", 8192, mem);
        double speedup = full.speedup_vs(disk);
        EXPECT_GT(speedup, 1.5) << mem_config_name(mem);
        EXPECT_LT(speedup, 2.5) << mem_config_name(mem);
    }
}

TEST(Reproduction, SubpagesBeatDiskUpTo4x)
{
    const SimResult &disk =
        cached("modula3", "disk", 8192, MemConfig::Quarter);
    const SimResult &sub =
        cached("modula3", "eager", 1024, MemConfig::Quarter);
    double speedup = sub.speedup_vs(disk);
    EXPECT_GT(speedup, 3.0);
    EXPECT_LT(speedup, 4.6);
}

TEST(Reproduction, EverySubpageSizeBeatsFullpage)
{
    // Figure 3: all subpage sizes improve on p_8192 in every memory
    // configuration.
    for (MemConfig mem :
         {MemConfig::Full, MemConfig::Half, MemConfig::Quarter}) {
        const SimResult &base =
            cached("modula3", "fullpage", 8192, mem);
        for (uint32_t sp : {4096u, 2048u, 1024u, 512u, 256u}) {
            const SimResult &r = cached("modula3", "eager", sp, mem);
            EXPECT_LT(r.runtime, base.runtime)
                << mem_config_name(mem) << " sp_" << sp;
        }
    }
}

TEST(Reproduction, BenefitGrowsWithMemoryPressure)
{
    // Figure 3: 1K improvement rises from full-mem through 1/4-mem
    // (paper: 16% -> 25% -> 38%).
    double imp[3];
    MemConfig mems[] = {MemConfig::Full, MemConfig::Half,
                        MemConfig::Quarter};
    for (int i = 0; i < 3; ++i) {
        const SimResult &base =
            cached("modula3", "fullpage", 8192, mems[i]);
        const SimResult &r =
            cached("modula3", "eager", 1024, mems[i]);
        imp[i] = r.reduction_vs(base);
    }
    EXPECT_LT(imp[0], imp[1]);
    EXPECT_LT(imp[1], imp[2]);
    EXPECT_GT(imp[0], 0.08);
    EXPECT_LT(imp[2], 0.50);
}

TEST(Reproduction, MidSizedSubpagesAreOptimal)
{
    // The paper: "Over all the applications, subpage sizes of 1K or
    // 2K were best". Check 1K/2K beat both extremes at 1/2-mem.
    const SimResult &sp4096 =
        cached("modula3", "eager", 4096, MemConfig::Half);
    const SimResult &sp2048 =
        cached("modula3", "eager", 2048, MemConfig::Half);
    const SimResult &sp1024 =
        cached("modula3", "eager", 1024, MemConfig::Half);
    Tick best_mid = std::min(sp2048.runtime, sp1024.runtime);
    EXPECT_LT(best_mid, sp4096.runtime);
}

TEST(Reproduction, SpLatencyFallsAndPageWaitRisesWithSmallerSubpages)
{
    // Figure 4's two opposing trends.
    const SimResult &sp4096 =
        cached("modula3", "eager", 4096, MemConfig::Half);
    const SimResult &sp256 =
        cached("modula3", "eager", 256, MemConfig::Half);
    EXPECT_LT(sp256.sp_latency, sp4096.sp_latency);
    EXPECT_GT(sp256.page_wait, sp4096.page_wait);
}

TEST(Reproduction, PipeliningBeatsEagerForAllApps)
{
    // Figure 9: pipelining adds to eager for every application.
    for (const auto &app : app_names()) {
        const SimResult &base =
            cached(app, "fullpage", 8192, MemConfig::Half);
        const SimResult &eager =
            cached(app, "eager", 1024, MemConfig::Half);
        const SimResult &pipe =
            cached(app, "pipelining", 1024, MemConfig::Half);
        EXPECT_LT(eager.runtime, base.runtime) << app;
        EXPECT_LE(pipe.runtime, eager.runtime) << app;
    }
}

TEST(Reproduction, ImprovementsWithinPaperBands)
{
    // Figure 9 bands at 1/2-mem, 1K subpages: eager 20-44%,
    // pipelining 30-54% (we allow a modest margin around them).
    for (const auto &app : app_names()) {
        const SimResult &base =
            cached(app, "fullpage", 8192, MemConfig::Half);
        const SimResult &eager =
            cached(app, "eager", 1024, MemConfig::Half);
        const SimResult &pipe =
            cached(app, "pipelining", 1024, MemConfig::Half);
        double e = eager.reduction_vs(base);
        double p = pipe.reduction_vs(base);
        EXPECT_GT(e, 0.12) << app;
        EXPECT_LT(e, 0.50) << app;
        EXPECT_GT(p, 0.20) << app;
        EXPECT_LT(p, 0.60) << app;
    }
}

TEST(Reproduction, MostBenefitFromIoOverlap)
{
    // Section 4.4: the I/O share of overlapped background transfer
    // time ranges roughly 53-83%, highest for gdb.
    double gdb_share = cached("gdb", "eager", 1024, MemConfig::Half)
                           .io_overlap_share();
    double atom_share =
        cached("atom", "eager", 1024, MemConfig::Half)
            .io_overlap_share();
    EXPECT_GT(gdb_share, 0.5);
    EXPECT_GE(gdb_share, atom_share - 0.05);
}

TEST(Reproduction, PlusOneDistanceDominates)
{
    // Figure 7: the next accessed subpage is overwhelmingly +1.
    for (uint32_t sp : {2048u, 1024u}) {
        const SimResult &r =
            cached("modula3", "eager", sp, MemConfig::Half);
        const Histogram &h = r.next_subpage_distance;
        ASSERT_GT(h.total(), 0u);
        double plus1 = h.fraction(1);
        EXPECT_GT(plus1, 0.35) << sp;
        for (const auto &[d, c] : h.bins()) {
            if (d != 1) {
                EXPECT_GE(plus1, h.fraction(d)) << "distance " << d;
            }
        }
    }
}

TEST(Reproduction, GdbMoreClusteredThanAtom)
{
    // Figure 10: gdb's faults are bursty, atom's spread out.
    const SimResult &gdb =
        cached("gdb", "eager", 1024, MemConfig::Half);
    const SimResult &atom =
        cached("atom", "eager", 1024, MemConfig::Half);
    double gdb_burst = gdb.burst_fault_fraction(
        std::max<uint64_t>(gdb.refs / 50, 1));
    double atom_burst = atom.burst_fault_fraction(
        std::max<uint64_t>(atom.refs / 50, 1));
    EXPECT_GT(gdb_burst, atom_burst);
}

TEST(Reproduction, FaultCountsScaleWithMemoryPressure)
{
    // Section 4's fault-count ranges: every app faults more at 1/4
    // than at full memory, with app-specific ratios (modula3 ~7x,
    // ld ~1.6x).
    for (const auto &app : app_names()) {
        const SimResult &full =
            cached(app, "fullpage", 8192, MemConfig::Full);
        const SimResult &quarter =
            cached(app, "fullpage", 8192, MemConfig::Quarter);
        EXPECT_GT(quarter.page_faults, full.page_faults) << app;
    }
    double m3_ratio =
        static_cast<double>(
            cached("modula3", "fullpage", 8192, MemConfig::Quarter)
                .page_faults) /
        cached("modula3", "fullpage", 8192, MemConfig::Full)
            .page_faults;
    double ld_ratio =
        static_cast<double>(
            cached("ld", "fullpage", 8192, MemConfig::Quarter)
                .page_faults) /
        cached("ld", "fullpage", 8192, MemConfig::Full).page_faults;
    EXPECT_GT(m3_ratio, 4.0);
    EXPECT_LT(ld_ratio, 2.2);
}

TEST(Reproduction, LazySubpagesLoseToEager)
{
    // Section 2.1: lazy subpage fetch performs poorly because the
    // program eventually touches many subpages of each page.
    const SimResult &eager =
        cached("modula3", "eager", 1024, MemConfig::Half);
    const SimResult &lazy =
        cached("modula3", "lazy", 1024, MemConfig::Half);
    EXPECT_GT(lazy.runtime, eager.runtime);
}

} // namespace
} // namespace sgms
