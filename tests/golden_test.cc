/**
 * @file
 * Golden snapshot tests: exact deterministic outputs of two fixed
 * configurations. These pin the simulator's end-to-end behaviour:
 * any change to the trace generators, the network model, the memory
 * system or the policies that alters results will trip them. If a
 * change is *intentional* (e.g. recalibration), update the numbers
 * and note it in the commit.
 */

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace sgms
{
namespace
{

TEST(Golden, GdbEager1KHalfMem)
{
    Experiment ex;
    ex.app = "gdb";
    ex.scale = 1.0;
    ex.seed = 7;
    ex.policy = "eager";
    ex.subpage_size = 1024;
    ex.mem = MemConfig::Half;
    SimResult r = ex.run();
    EXPECT_EQ(r.refs, 500000u);
    EXPECT_EQ(r.page_faults, 533u);
    // Regenerated 2026-08: the old golden (1909 messages / 6939968
    // bytes) predates dirty-page tracking on the write fast path and
    // was short exactly 35 putpage messages (35 * 8192 bytes = 286720;
    // per-kind counts are Request 533, DemandData 533, BackgroundData
    // 533, PutPage 345). refs/page_faults/runtime were unaffected.
    EXPECT_EQ(r.net_stats.messages, 1944u);
    EXPECT_EQ(r.net_stats.bytes, 7226688u);
    EXPECT_NEAR(ticks::to_ms(r.runtime), 562.27, 0.01);
}

TEST(Golden, Modula3Pipelining2KQuarterMem)
{
    Experiment ex;
    ex.app = "modula3";
    ex.scale = 0.1;
    ex.seed = 3;
    ex.policy = "pipelining";
    ex.subpage_size = 2048;
    ex.mem = MemConfig::Quarter;
    SimResult r = ex.run();
    EXPECT_EQ(r.refs, 8700000u);
    EXPECT_EQ(r.page_faults, 513u);
    EXPECT_EQ(r.net_stats.messages, 2677u);
    EXPECT_EQ(r.net_stats.bytes, 6840384u);
    EXPECT_NEAR(ticks::to_ms(r.runtime), 482.50, 0.01);
}

TEST(Golden, SingleFaultLatenciesExact)
{
    // The calibrated demand-fetch latencies, in exact ticks.
    NetParams p = NetParams::an2();
    EXPECT_EQ(p.demand_fetch_latency(1024), 546268800);  // 0.5463 ms
    EXPECT_EQ(p.demand_fetch_latency(8192), 1460905600); // 1.4609 ms
    EXPECT_EQ(p.demand_fetch_latency(256), 448272000);   // 0.4483 ms
}

} // namespace
} // namespace sgms
