/**
 * @file
 * Tests for the trace module: sources, file formats, synthetic
 * generation, and the application models' documented properties.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "trace/apps.h"
#include "trace/synthetic.h"
#include "trace/trace.h"
#include "trace/trace_file.h"

namespace sgms
{
namespace
{

std::vector<TraceEvent>
drain(TraceSource &src, uint64_t max = UINT64_MAX)
{
    std::vector<TraceEvent> out;
    TraceEvent ev;
    while (out.size() < max && src.next(ev))
        out.push_back(ev);
    return out;
}

TEST(VectorTrace, RoundTripAndReset)
{
    VectorTrace t;
    t.push(0x100);
    t.push(0x200, true);
    auto events = drain(t);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].addr, 0x100u);
    EXPECT_FALSE(events[0].write);
    EXPECT_TRUE(events[1].write);
    TraceEvent ev;
    EXPECT_FALSE(t.next(ev));
    t.reset();
    EXPECT_TRUE(t.next(ev));
    EXPECT_EQ(ev.addr, 0x100u);
}

TEST(Footprint, CountsDistinctPages)
{
    VectorTrace t;
    t.push(0);
    t.push(8191);
    t.push(8192);
    t.push(3 * 8192 + 17);
    t.push(8192); // repeat
    EXPECT_EQ(measure_footprint_pages(t, 8192), 3u);
    // And the source is rewound afterwards.
    EXPECT_EQ(drain(t).size(), 5u);
}

class TraceFileTest : public ::testing::Test
{
  protected:
    std::string
    temp_path(const char *suffix)
    {
        return std::string("/tmp/sgms_trace_test_") + suffix;
    }

    void
    TearDown() override
    {
        std::remove(temp_path("bin").c_str());
        std::remove(temp_path("txt").c_str());
    }
};

TEST_F(TraceFileTest, BinaryRoundTrip)
{
    VectorTrace t;
    for (uint64_t i = 0; i < 1000; ++i)
        t.push(i * 4093 + (i << 33), i % 3 == 0);
    write_trace_binary(t, temp_path("bin"));
    FileTrace f(temp_path("bin"));
    EXPECT_EQ(f.size_hint(), 1000u);
    auto a = drain(t);
    auto b = drain(f);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].write, b[i].write);
    }
}

TEST_F(TraceFileTest, TextRoundTrip)
{
    VectorTrace t;
    t.push(0xdeadbeef);
    t.push(0x10, true);
    t.push(0xffffffffffull);
    write_trace_text(t, temp_path("txt"));
    FileTrace f(temp_path("txt"));
    auto b = drain(f);
    ASSERT_EQ(b.size(), 3u);
    EXPECT_EQ(b[0].addr, 0xdeadbeefu);
    EXPECT_FALSE(b[0].write);
    EXPECT_EQ(b[1].addr, 0x10u);
    EXPECT_TRUE(b[1].write);
    EXPECT_EQ(b[2].addr, 0xffffffffffull);
}

TEST_F(TraceFileTest, FileTraceReset)
{
    VectorTrace t;
    t.push(1);
    t.push(2);
    write_trace_binary(t, temp_path("bin"));
    FileTrace f(temp_path("bin"));
    EXPECT_EQ(drain(f).size(), 2u);
    f.reset();
    EXPECT_EQ(drain(f).size(), 2u);
}

TEST(Synthetic, DeterministicAcrossResets)
{
    WorkloadSpec w;
    w.name = "t";
    w.hot_pages = 4;
    PhaseSpec ph;
    ph.kind = PhaseSpec::Kind::Compute;
    ph.page_lo = 4;
    ph.page_hi = 40;
    ph.refs = 5000;
    w.phases.push_back(ph);
    SyntheticTrace a(w, 77);
    auto first = drain(a);
    a.reset();
    auto second = drain(a);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].addr, second[i].addr);
        EXPECT_EQ(first[i].write, second[i].write);
    }
    EXPECT_EQ(first.size(), 5000u);
}

TEST(Synthetic, DenseScanSequentialAndWrapping)
{
    WorkloadSpec w;
    w.name = "t";
    w.hot_pages = 0;
    PhaseSpec ph;
    ph.kind = PhaseSpec::Kind::DenseScan;
    ph.page_lo = 2;
    ph.page_hi = 3;
    ph.stride = 1024;
    ph.refs = 16; // exactly two passes of the 8 subpage-strides
    ph.hot_frac = 0;
    w.phases.push_back(ph);
    SyntheticTrace t(w, 1);
    auto events = drain(t);
    ASSERT_EQ(events.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(events[i].addr, 2 * 8192 + (i % 8) * 1024u);
}

TEST(Synthetic, SweepScanAdvancesOffsetByPass)
{
    WorkloadSpec w;
    w.name = "t";
    w.hot_pages = 0;
    for (int pass = 0; pass < 3; ++pass) {
        PhaseSpec ph;
        ph.kind = PhaseSpec::Kind::SweepScan;
        ph.page_lo = 10;
        ph.page_hi = 14;
        ph.refs = 4;
        ph.hot_frac = 0;
        ph.sweep_pass = pass;
        ph.sweep_step = 1024;
        ph.sweep_jitter = 0;
        w.phases.push_back(ph);
    }
    SyntheticTrace t(w, 1);
    auto events = drain(t);
    ASSERT_EQ(events.size(), 12u);
    for (int pass = 0; pass < 3; ++pass) {
        for (int p = 0; p < 4; ++p) {
            Addr a = events[pass * 4 + p].addr;
            EXPECT_EQ(a / 8192, 10u + p);
            EXPECT_EQ(a % 8192, pass * 1024u);
        }
    }
}

TEST(Synthetic, SparseScanVisitsPagesInOrder)
{
    WorkloadSpec w;
    w.name = "t";
    w.hot_pages = 0;
    PhaseSpec ph;
    ph.kind = PhaseSpec::Kind::SparseScan;
    ph.page_lo = 5;
    ph.page_hi = 8;
    ph.touches_per_page = 2;
    ph.refs = 6;
    ph.hot_frac = 0;
    w.phases.push_back(ph);
    SyntheticTrace t(w, 3);
    auto events = drain(t);
    ASSERT_EQ(events.size(), 6u);
    EXPECT_EQ(events[0].addr / 8192, 5u);
    EXPECT_EQ(events[1].addr / 8192, 5u);
    EXPECT_EQ(events[2].addr / 8192, 6u);
    EXPECT_EQ(events[3].addr / 8192, 6u);
    EXPECT_EQ(events[4].addr / 8192, 7u);
    EXPECT_EQ(events[5].addr / 8192, 7u);
}

TEST(Synthetic, ComputeStaysInRegion)
{
    WorkloadSpec w;
    w.name = "t";
    w.hot_pages = 2;
    PhaseSpec ph;
    ph.kind = PhaseSpec::Kind::Compute;
    ph.page_lo = 10;
    ph.page_hi = 20;
    ph.refs = 10000;
    ph.hot_frac = 0.3;
    w.phases.push_back(ph);
    SyntheticTrace t(w, 5);
    TraceEvent ev;
    uint64_t hot = 0, region = 0;
    while (t.next(ev)) {
        PageId p = ev.addr / 8192;
        if (p < 2)
            ++hot;
        else if (p >= 10 && p < 20)
            ++region;
        else
            FAIL() << "address outside hot and region: " << ev.addr;
    }
    EXPECT_NEAR(static_cast<double>(hot) / 10000, 0.3, 0.03);
    EXPECT_EQ(hot + region, 10000u);
}

TEST(Synthetic, WriteFractionRespected)
{
    WorkloadSpec w;
    w.name = "t";
    w.hot_pages = 0;
    PhaseSpec ph;
    ph.kind = PhaseSpec::Kind::Compute;
    ph.page_lo = 0;
    ph.page_hi = 4;
    ph.refs = 20000;
    ph.write_frac = 0.25;
    ph.hot_frac = 0;
    w.phases.push_back(ph);
    SyntheticTrace t(w, 9);
    TraceEvent ev;
    uint64_t writes = 0;
    while (t.next(ev))
        writes += ev.write;
    EXPECT_NEAR(static_cast<double>(writes) / 20000, 0.25, 0.02);
}

TEST(Synthetic, EmptySpecProducesNothing)
{
    WorkloadSpec w;
    w.name = "empty";
    SyntheticTrace t(w, 1);
    TraceEvent ev;
    EXPECT_FALSE(t.next(ev));
}

TEST(Synthetic, SkipsZeroRefPhases)
{
    WorkloadSpec w;
    w.name = "t";
    w.hot_pages = 0;
    PhaseSpec empty;
    empty.kind = PhaseSpec::Kind::Compute;
    empty.page_lo = 0;
    empty.page_hi = 2;
    empty.refs = 0;
    PhaseSpec real = empty;
    real.refs = 5;
    w.phases.push_back(empty);
    w.phases.push_back(real);
    w.phases.push_back(empty);
    SyntheticTrace t(w, 1);
    EXPECT_EQ(drain(t).size(), 5u);
}

TEST(WorkloadSpec, TotalsAndSpan)
{
    WorkloadSpec w;
    w.hot_pages = 10;
    PhaseSpec a;
    a.refs = 100;
    a.page_lo = 0;
    a.page_hi = 5;
    PhaseSpec b;
    b.refs = 50;
    b.page_lo = 20;
    b.page_hi = 30;
    w.phases = {a, b};
    EXPECT_EQ(w.total_refs(), 150u);
    EXPECT_EQ(w.page_span(), 30u);
}

class AppModelTest : public ::testing::TestWithParam<std::string>
{};

TEST_P(AppModelTest, FootprintMatchesSpanAtSmallScale)
{
    // Every page in the layout is eventually touched, so the
    // footprint equals the span (the paper's full-mem fault count is
    // exactly the footprint).
    auto trace = make_app_trace(GetParam(), 0.05, 7);
    uint64_t span = trace->spec().page_span();
    uint64_t fp = measure_footprint_pages(*trace, 8192);
    EXPECT_GT(fp, 0u);
    // Hot/Compute interleaving is probabilistic; allow a tiny slack.
    EXPECT_GE(fp, span * 9 / 10);
    EXPECT_LE(fp, span);
}

TEST_P(AppModelTest, DeterministicForSeed)
{
    auto a = make_app_trace(GetParam(), 0.02, 3);
    auto b = make_app_trace(GetParam(), 0.02, 3);
    TraceEvent ea, eb;
    for (int i = 0; i < 20000; ++i) {
        bool ra = a->next(ea);
        bool rb = b->next(eb);
        ASSERT_EQ(ra, rb);
        if (!ra)
            break;
        ASSERT_EQ(ea.addr, eb.addr);
        ASSERT_EQ(ea.write, eb.write);
    }
}

TEST_P(AppModelTest, RefCountScalesLinearly)
{
    auto small = make_app_spec(GetParam(), 0.02);
    auto big = make_app_spec(GetParam(), 0.04);
    double ratio = static_cast<double>(big.total_refs()) /
                   static_cast<double>(small.total_refs());
    EXPECT_NEAR(ratio, 2.0, 0.35);
}

INSTANTIATE_TEST_SUITE_P(Apps, AppModelTest,
                         ::testing::Values("modula3", "ld", "atom",
                                           "render", "gdb"));

TEST(AppModels, PaperTraceSizesAtFullScale)
{
    // Reference counts at scale 1 match the paper's reported trace
    // sizes (87M / 102M / 73M / 245M / 0.5M).
    EXPECT_NEAR(make_modula3_spec(1.0).total_refs() / 1e6, 87, 5);
    EXPECT_NEAR(make_ld_spec(1.0).total_refs() / 1e6, 102, 6);
    EXPECT_NEAR(make_atom_spec(1.0).total_refs() / 1e6, 73, 5);
    EXPECT_NEAR(make_render_spec(1.0).total_refs() / 1e6, 245, 13);
    EXPECT_NEAR(make_gdb_spec(1.0).total_refs() / 1e6, 0.5, 0.1);
}

TEST(AppModels, RegistryComplete)
{
    EXPECT_EQ(app_names().size(), 5u);
    for (const auto &name : app_names())
        EXPECT_EQ(make_app_spec(name, 0.1).name, name);
}

} // namespace
} // namespace sgms
