/**
 * @file
 * Unit and property tests for src/mem: geometry, bitmaps, page table,
 * replacement policies, TLB.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.h"
#include "mem/page.h"
#include "mem/page_table.h"
#include "mem/replacement.h"
#include "mem/tlb.h"

namespace sgms
{
namespace
{

TEST(PageGeometry, PaperConfiguration)
{
    // 8K pages with 1K subpages, the paper's headline configuration.
    PageGeometry geo(8192, 1024);
    EXPECT_EQ(geo.subpages_per_page(), 8u);
    EXPECT_EQ(geo.page_of(0), 0u);
    EXPECT_EQ(geo.page_of(8191), 0u);
    EXPECT_EQ(geo.page_of(8192), 1u);
    EXPECT_EQ(geo.subpage_of(0), 0u);
    EXPECT_EQ(geo.subpage_of(1023), 0u);
    EXPECT_EQ(geo.subpage_of(1024), 1u);
    EXPECT_EQ(geo.subpage_of(8191), 7u);
    // Subpage index is relative to the page, not global.
    EXPECT_EQ(geo.subpage_of(8192 + 2048), 2u);
    EXPECT_EQ(geo.page_base(3), 3u * 8192);
    EXPECT_EQ(geo.subpage_offset(5), 5u * 1024);
}

TEST(PageGeometry, PrototypeValidBitGranularity)
{
    // The Alpha prototype kept one valid bit per 256-byte block:
    // 32 subpages per 8K page.
    PageGeometry geo(8192, 256);
    EXPECT_EQ(geo.subpages_per_page(), 32u);
}

TEST(PageGeometry, DegenerateFullPage)
{
    PageGeometry geo(8192, 8192);
    EXPECT_EQ(geo.subpages_per_page(), 1u);
    EXPECT_EQ(geo.subpage_of(8191), 0u);
}

class PageGeometryAllSizes : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(PageGeometryAllSizes, SubpageInverseMapping)
{
    // Property: for every address, page_base + subpage_offset of its
    // (page, subpage) lands back in the same subpage.
    uint32_t sub = GetParam();
    PageGeometry geo(8192, sub);
    Rng rng(1234);
    for (int i = 0; i < 2000; ++i) {
        Addr a = rng.below(1ULL << 40);
        Addr back = geo.page_base(geo.page_of(a)) +
                    geo.subpage_offset(geo.subpage_of(a));
        EXPECT_EQ(geo.page_of(back), geo.page_of(a));
        EXPECT_EQ(geo.subpage_of(back), geo.subpage_of(a));
        EXPECT_LE(back, a);
        EXPECT_LT(a - back, sub);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PageGeometryAllSizes,
                         ::testing::Values(256, 512, 1024, 2048, 4096,
                                           8192));

TEST(SubpageBitmap, SetTestClear)
{
    SubpageBitmap b;
    EXPECT_FALSE(b.test(0));
    b.set(0);
    b.set(31);
    EXPECT_TRUE(b.test(0));
    EXPECT_TRUE(b.test(31));
    EXPECT_FALSE(b.test(1));
    EXPECT_EQ(b.popcount(), 2u);
    b.clear(0);
    EXPECT_FALSE(b.test(0));
    EXPECT_EQ(b.popcount(), 1u);
}

TEST(SubpageBitmap, CompleteDetection)
{
    SubpageBitmap b;
    for (uint32_t i = 0; i < 8; ++i) {
        EXPECT_FALSE(b.complete(8));
        b.set(i);
    }
    EXPECT_TRUE(b.complete(8));
    // 64-wide fill works without shifting UB.
    SubpageBitmap full;
    full.fill(64);
    EXPECT_TRUE(full.complete(64));
    EXPECT_EQ(full.popcount(), 64u);
}

TEST(SubpageBitmap, FillPartial)
{
    SubpageBitmap b;
    b.fill(8);
    EXPECT_TRUE(b.complete(8));
    EXPECT_EQ(b.raw(), 0xffu);
    b.reset();
    EXPECT_EQ(b.popcount(), 0u);
}

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy p;
    p.insert(1);
    p.insert(2);
    p.insert(3);
    p.touch(1); // order now: 1, 3, 2 (MRU..LRU)
    EXPECT_EQ(p.victim(), 2u);
    EXPECT_EQ(p.victim(), 3u);
    EXPECT_EQ(p.victim(), 1u);
    EXPECT_EQ(p.size(), 0u);
}

TEST(Lru, EraseRemoves)
{
    LruPolicy p;
    p.insert(1);
    p.insert(2);
    p.erase(1);
    EXPECT_EQ(p.size(), 1u);
    EXPECT_EQ(p.victim(), 2u);
}

TEST(Fifo, EvictsInArrivalOrder)
{
    FifoPolicy p;
    p.insert(1);
    p.insert(2);
    p.insert(3);
    p.touch(1); // FIFO ignores touches
    EXPECT_EQ(p.victim(), 1u);
    EXPECT_EQ(p.victim(), 2u);
    EXPECT_EQ(p.victim(), 3u);
}

TEST(Clock, GivesSecondChance)
{
    ClockPolicy p;
    p.insert(1);
    p.insert(2);
    p.insert(3);
    // All have their reference bit set from insertion; a full sweep
    // clears them, so the first victim is the first inserted.
    EXPECT_EQ(p.victim(), 1u);
    p.touch(2); // re-referenced: 2 survives the next sweep
    EXPECT_EQ(p.victim(), 3u);
    EXPECT_EQ(p.victim(), 2u);
}

TEST(Clock, ReusesDeadSlots)
{
    ClockPolicy p;
    for (PageId i = 0; i < 8; ++i)
        p.insert(i);
    for (int i = 0; i < 4; ++i)
        p.victim();
    for (PageId i = 100; i < 104; ++i)
        p.insert(i);
    EXPECT_EQ(p.size(), 8u);
    std::set<PageId> evicted;
    for (int i = 0; i < 8; ++i)
        evicted.insert(p.victim());
    EXPECT_EQ(evicted.size(), 8u);
}

TEST(ReplacementFactory, KnownNames)
{
    EXPECT_STREQ(make_replacement_policy("lru")->name(), "lru");
    EXPECT_STREQ(make_replacement_policy("fifo")->name(), "fifo");
    EXPECT_STREQ(make_replacement_policy("clock")->name(), "clock");
}

class ReplacementProperty
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(ReplacementProperty, VictimIsAlwaysTracked)
{
    // Property: under random insert/touch/victim traffic, every
    // victim was previously inserted and never double-evicted.
    auto p = make_replacement_policy(GetParam());
    Rng rng(99);
    std::set<PageId> tracked;
    PageId next = 0;
    for (int i = 0; i < 5000; ++i) {
        double r = rng.uniform();
        if (r < 0.45 || tracked.empty()) {
            p->insert(next);
            tracked.insert(next);
            ++next;
        } else if (r < 0.8) {
            // touch a random tracked page
            auto it = tracked.begin();
            std::advance(it, rng.below(tracked.size()));
            p->touch(*it);
        } else {
            PageId v = p->victim();
            ASSERT_TRUE(tracked.count(v)) << "policy " << GetParam();
            tracked.erase(v);
        }
        ASSERT_EQ(p->size(), tracked.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Policies, ReplacementProperty,
                         ::testing::Values("lru", "fifo", "clock"));

TEST(PageTable, InstallFindEvict)
{
    PageGeometry geo(8192, 1024);
    PageTable pt(geo, 2);
    EXPECT_EQ(pt.find(7), nullptr);
    pt.install(7);
    ASSERT_NE(pt.find(7), nullptr);
    EXPECT_FALSE(pt.full());
    pt.install(8);
    EXPECT_TRUE(pt.full());
    pt.touch(7); // 8 becomes LRU
    EXPECT_EQ(pt.evict(), 8u);
    EXPECT_EQ(pt.find(8), nullptr);
    EXPECT_EQ(pt.evictions(), 1u);
}

TEST(PageTable, UnlimitedCapacity)
{
    PageGeometry geo(8192, 1024);
    PageTable pt(geo, 0);
    for (PageId p = 0; p < 10000; ++p)
        pt.install(p);
    EXPECT_FALSE(pt.full());
    EXPECT_EQ(pt.resident(), 10000u);
}

TEST(PageTable, MarkValidTracksCompletion)
{
    PageGeometry geo(8192, 1024);
    PageTable pt(geo, 4);
    auto &f = pt.install(3);
    f.inflight = 0xff;
    for (uint32_t i = 0; i < 8; ++i) {
        EXPECT_FALSE(pt.find(3)->complete);
        EXPECT_TRUE(pt.find(3)->subpage_inflight(i));
        EXPECT_TRUE(pt.mark_valid(3, i));
        EXPECT_FALSE(pt.find(3)->subpage_inflight(i));
    }
    EXPECT_TRUE(pt.find(3)->complete);
}

TEST(PageTable, MarkValidOnEvictedPageDropped)
{
    PageGeometry geo(8192, 1024);
    PageTable pt(geo, 1);
    pt.install(3);
    pt.evict();
    EXPECT_FALSE(pt.mark_valid(3, 0));
    EXPECT_FALSE(pt.mark_all_valid(3));
}

TEST(PageTable, MarkAllValid)
{
    PageGeometry geo(8192, 256);
    PageTable pt(geo, 4);
    pt.install(5);
    EXPECT_TRUE(pt.mark_all_valid(5));
    EXPECT_TRUE(pt.find(5)->complete);
    EXPECT_EQ(pt.find(5)->valid.popcount(), 32u);
}

TEST(Tlb, HitsAfterFill)
{
    Tlb tlb(4, 4, 8192);
    EXPECT_FALSE(tlb.access(0));
    EXPECT_TRUE(tlb.access(0));
    EXPECT_TRUE(tlb.access(8191));
    EXPECT_FALSE(tlb.access(8192));
    EXPECT_EQ(tlb.stats().hits, 2u);
    EXPECT_EQ(tlb.stats().misses, 2u);
}

TEST(Tlb, LruEvictionWithinSet)
{
    Tlb tlb(2, 2, 8192); // one set of two ways
    tlb.access(0 * 8192);
    tlb.access(1 * 8192);
    tlb.access(0 * 8192);     // 1 becomes LRU... no: 1 older than 0 now
    tlb.access(2 * 8192);     // evicts page 1
    EXPECT_TRUE(tlb.access(0 * 8192));
    EXPECT_FALSE(tlb.access(1 * 8192));
}

TEST(Tlb, FlushDropsEverything)
{
    Tlb tlb(8, 2, 8192);
    for (Addr a = 0; a < 4; ++a)
        tlb.access(a * 8192);
    tlb.flush();
    for (Addr a = 0; a < 4; ++a)
        EXPECT_FALSE(tlb.access(a * 8192));
}

TEST(Tlb, CoverageScalesWithPageSize)
{
    // The section 2.1 argument: a 32-entry TLB covers 256K with 8K
    // pages but only 32K with 1K pages.
    Tlb big(32, 4, 8192);
    Tlb small(32, 4, 1024);
    EXPECT_EQ(big.coverage(), 32u * 8192);
    EXPECT_EQ(small.coverage(), 32u * 1024);

    // Working set of 64K: fits the 8K-page TLB (8 pages) but
    // thrashes nothing; with 1K pages it needs 64 translations in 32
    // entries and must miss on every round.
    auto sweep = [](Tlb &tlb) {
        for (int round = 0; round < 10; ++round)
            for (Addr a = 0; a < 64 * 1024; a += 512)
                tlb.access(a);
        return tlb.stats().miss_rate();
    };
    double rate_big = sweep(big);
    double rate_small = sweep(small);
    EXPECT_LT(rate_big, 0.01);
    EXPECT_GT(rate_small, 0.2);
}

} // namespace
} // namespace sgms
