/**
 * @file
 * Tests for the global memory cluster substrate.
 */

#include <gtest/gtest.h>

#include <map>

#include "gms/gms.h"
#include "net/network.h"
#include "sim/event_queue.h"

namespace sgms
{
namespace
{

class GmsTest : public ::testing::Test
{
  protected:
    EventQueue eq;
    NetParams params = NetParams::an2();
};

TEST_F(GmsTest, PlacementIsStableAndInRange)
{
    Network net(eq, params);
    GmsCluster gms(net, GmsConfig{4, true, true}, 0);
    for (PageId p = 0; p < 1000; ++p) {
        NodeId n1 = gms.server_of(p);
        NodeId n2 = gms.server_of(p);
        EXPECT_EQ(n1, n2);
        EXPECT_GE(n1, 1u);
        EXPECT_LE(n1, 4u);
    }
}

TEST_F(GmsTest, PlacementBalancesAcrossServers)
{
    Network net(eq, params);
    GmsCluster gms(net, GmsConfig{4, true, true}, 0);
    std::map<NodeId, int> counts;
    for (PageId p = 0; p < 8000; ++p)
        ++counts[gms.server_of(p)];
    ASSERT_EQ(counts.size(), 4u);
    for (const auto &[node, count] : counts) {
        EXPECT_GT(count, 1600);
        EXPECT_LT(count, 2400);
    }
}

TEST_F(GmsTest, WarmCacheHoldsEverything)
{
    Network net(eq, params);
    GmsCluster gms(net, GmsConfig{2, true, true}, 0);
    EXPECT_TRUE(gms.in_global_memory(0));
    EXPECT_TRUE(gms.in_global_memory(123456));
}

TEST_F(GmsTest, ColdCacheFillsOnEviction)
{
    Network net(eq, params);
    GmsCluster gms(net, GmsConfig{2, false, true}, 0);
    EXPECT_FALSE(gms.in_global_memory(7));
    gms.put_page(0, 7, 8192, true);
    EXPECT_TRUE(gms.in_global_memory(7));
    EXPECT_FALSE(gms.in_global_memory(8));
}

TEST_F(GmsTest, PutPageSendsTrafficForDirtyOnly)
{
    Network net(eq, params);
    GmsCluster gms(net, GmsConfig{2, true, true}, 0);
    gms.put_page(0, 1, 8192, /*dirty=*/false);
    EXPECT_EQ(net.stats().messages, 0u);
    gms.put_page(0, 2, 8192, /*dirty=*/true);
    EXPECT_EQ(net.stats().messages, 1u);
    EXPECT_EQ(net.stats().bytes_by_kind[static_cast<int>(
                  MsgKind::PutPage)],
              8192u);
    EXPECT_EQ(gms.putpages(), 1u);
    eq.run_all();
}

TEST_F(GmsTest, PutPageTrafficCanBeDisabled)
{
    Network net(eq, params);
    GmsCluster gms(net, GmsConfig{2, true, false}, 0);
    gms.put_page(0, 1, 8192, true);
    EXPECT_EQ(net.stats().messages, 0u);
    // Cold-cache bookkeeping still updated.
    EXPECT_TRUE(gms.in_global_memory(1));
}

TEST_F(GmsTest, SingleServerConfiguration)
{
    Network net(eq, params);
    GmsCluster gms(net, GmsConfig{1, true, true}, 0);
    for (PageId p = 0; p < 100; ++p)
        EXPECT_EQ(gms.server_of(p), 1u);
}

} // namespace
} // namespace sgms
