/**
 * @file
 * Tests for fetch policies (section 2.1's design space).
 */

#include <gtest/gtest.h>

#include "policy/fetch_policy.h"

namespace sgms
{
namespace
{

const PageGeometry GEO_1K(8192, 1024);  // 8 subpages
const PageGeometry GEO_2K(8192, 2048);  // 4 subpages
const PageGeometry GEO_FULL(8192, 8192); // 1 subpage

uint64_t
all_mask(const PageGeometry &geo)
{
    return (1ULL << geo.subpages_per_page()) - 1;
}

/** Sum of subpage masks across segments. */
uint64_t
covered(const FetchPlan &p)
{
    uint64_t m = 0;
    for (const auto &seg : p.segments)
        m |= seg.subpage_mask;
    return m;
}

TEST(DiskPolicy, WholePageFromDisk)
{
    DiskPolicy pol;
    FetchPlan p = pol.plan(GEO_1K, 3, 0, all_mask(GEO_1K));
    EXPECT_TRUE(p.from_disk);
    ASSERT_EQ(p.segments.size(), 1u);
    EXPECT_TRUE(p.segments[0].demand);
    EXPECT_EQ(p.segments[0].subpage_mask, all_mask(GEO_1K));
    EXPECT_EQ(p.total_bytes(), 8192u);
}

TEST(FullPagePolicy, SingleDemandTransfer)
{
    FullPagePolicy pol;
    FetchPlan p = pol.plan(GEO_1K, 5, 100, all_mask(GEO_1K));
    EXPECT_FALSE(p.from_disk);
    ASSERT_EQ(p.segments.size(), 1u);
    EXPECT_TRUE(p.segments[0].demand);
    EXPECT_EQ(p.total_bytes(), 8192u);
}

TEST(LazyPolicy, OnlyFaultedSubpage)
{
    LazySubpagePolicy pol;
    FetchPlan p = pol.plan(GEO_1K, 5, 0, all_mask(GEO_1K));
    ASSERT_EQ(p.segments.size(), 1u);
    EXPECT_EQ(p.segments[0].subpage_mask, 1ULL << 5);
    EXPECT_EQ(p.segments[0].bytes, 1024u);
    EXPECT_TRUE(p.segments[0].demand);
}

TEST(LazyPolicy, PartialMissingMask)
{
    LazySubpagePolicy pol;
    // Page already has subpages 0-3; faulting on 6.
    FetchPlan p = pol.plan(GEO_1K, 6, 0, 0xf0);
    ASSERT_EQ(p.segments.size(), 1u);
    EXPECT_EQ(p.segments[0].subpage_mask, 1ULL << 6);
}

TEST(EagerPolicy, DemandPlusRest)
{
    EagerFullpagePolicy pol;
    FetchPlan p = pol.plan(GEO_1K, 2, 0, all_mask(GEO_1K));
    ASSERT_EQ(p.segments.size(), 2u);
    EXPECT_TRUE(p.segments[0].demand);
    EXPECT_EQ(p.segments[0].subpage_mask, 1ULL << 2);
    EXPECT_EQ(p.segments[0].bytes, 1024u);
    EXPECT_FALSE(p.segments[1].demand);
    EXPECT_FALSE(p.segments[1].pipelined_recv);
    EXPECT_EQ(p.segments[1].subpage_mask,
              all_mask(GEO_1K) & ~(1ULL << 2));
    EXPECT_EQ(p.segments[1].bytes, 7 * 1024u);
    EXPECT_EQ(covered(p), all_mask(GEO_1K));
}

TEST(EagerPolicy, WholePageWhenSubpageEqualsPage)
{
    EagerFullpagePolicy pol;
    FetchPlan p = pol.plan(GEO_FULL, 0, 0, all_mask(GEO_FULL));
    ASSERT_EQ(p.segments.size(), 1u);
    EXPECT_EQ(p.total_bytes(), 8192u);
}

TEST(EagerPolicy, PartialMissingOnlyFetchesMissing)
{
    EagerFullpagePolicy pol;
    FetchPlan p = pol.plan(GEO_1K, 1, 0, 0x0f);
    EXPECT_EQ(covered(p), 0x0fULL);
    EXPECT_EQ(p.total_bytes(), 4 * 1024u);
}

TEST(PipeliningBasic, NeighborsThenRest)
{
    PipeliningPolicy pol(PipelineStrategy::NeighborsThenRest);
    FetchPlan p = pol.plan(GEO_1K, 3, 0, all_mask(GEO_1K));
    // demand(3), +1 -> 4, -1 -> 2, rest
    ASSERT_EQ(p.segments.size(), 4u);
    EXPECT_EQ(p.segments[0].subpage_mask, 1ULL << 3);
    EXPECT_TRUE(p.segments[0].demand);
    EXPECT_EQ(p.segments[1].subpage_mask, 1ULL << 4);
    EXPECT_TRUE(p.segments[1].pipelined_recv);
    EXPECT_EQ(p.segments[2].subpage_mask, 1ULL << 2);
    EXPECT_TRUE(p.segments[2].pipelined_recv);
    EXPECT_FALSE(p.segments[3].pipelined_recv);
    EXPECT_EQ(covered(p), all_mask(GEO_1K));
    EXPECT_EQ(p.total_bytes(), 8192u);
}

TEST(PipeliningBasic, EdgeSubpageZero)
{
    PipeliningPolicy pol(PipelineStrategy::NeighborsThenRest);
    FetchPlan p = pol.plan(GEO_1K, 0, 0, all_mask(GEO_1K));
    // No -1 neighbour; +1 only.
    ASSERT_EQ(p.segments.size(), 3u);
    EXPECT_EQ(p.segments[1].subpage_mask, 1ULL << 1);
    EXPECT_EQ(covered(p), all_mask(GEO_1K));
}

TEST(PipeliningBasic, EdgeLastSubpage)
{
    PipeliningPolicy pol(PipelineStrategy::NeighborsThenRest);
    FetchPlan p = pol.plan(GEO_1K, 7, 0, all_mask(GEO_1K));
    ASSERT_EQ(p.segments.size(), 3u);
    EXPECT_EQ(p.segments[1].subpage_mask, 1ULL << 6);
    EXPECT_EQ(covered(p), all_mask(GEO_1K));
}

TEST(PipeliningAll, EverySubpageIndividually)
{
    PipeliningPolicy pol(PipelineStrategy::AllSubpages);
    FetchPlan p = pol.plan(GEO_1K, 3, 0, all_mask(GEO_1K));
    ASSERT_EQ(p.segments.size(), 8u);
    // Order after demand(3): 4, 2, 5, 1, 6, 0, 7 (by +- distance).
    std::vector<uint64_t> expect = {3, 4, 2, 5, 1, 6, 0, 7};
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(p.segments[i].subpage_mask, 1ULL << expect[i]) << i;
    for (size_t i = 1; i < 8; ++i)
        EXPECT_TRUE(p.segments[i].pipelined_recv);
    EXPECT_EQ(covered(p), all_mask(GEO_1K));
}

TEST(PipeliningDoubled, TwoSubpageFollowOn)
{
    PipeliningPolicy pol(PipelineStrategy::DoubledFollowOn);
    FetchPlan p = pol.plan(GEO_1K, 2, 0, all_mask(GEO_1K));
    ASSERT_EQ(p.segments.size(), 3u);
    EXPECT_EQ(p.segments[0].subpage_mask, 1ULL << 2);
    // Follow-on carries the next two subpages in one message.
    EXPECT_EQ(p.segments[1].subpage_mask, (1ULL << 3) | (1ULL << 4));
    EXPECT_EQ(p.segments[1].bytes, 2048u);
    EXPECT_TRUE(p.segments[1].pipelined_recv);
    EXPECT_EQ(covered(p), all_mask(GEO_1K));
}

TEST(PipeliningInitialDouble, TakesFollowingWhenFaultInSecondHalf)
{
    PipeliningPolicy pol(PipelineStrategy::InitialDouble);
    FetchPlan p = pol.plan(GEO_1K, 3, 900, all_mask(GEO_1K));
    // Fault near the end of subpage 3: ship 3 and 4 together.
    EXPECT_EQ(p.segments[0].subpage_mask, (1ULL << 3) | (1ULL << 4));
    EXPECT_EQ(p.segments[0].bytes, 2048u);
    EXPECT_TRUE(p.segments[0].demand);
    EXPECT_EQ(covered(p), all_mask(GEO_1K));
}

TEST(PipeliningInitialDouble, TakesPrecedingWhenFaultInFirstHalf)
{
    PipeliningPolicy pol(PipelineStrategy::InitialDouble);
    FetchPlan p = pol.plan(GEO_1K, 3, 100, all_mask(GEO_1K));
    EXPECT_EQ(p.segments[0].subpage_mask, (1ULL << 2) | (1ULL << 3));
}

TEST(PipeliningInitialDouble, EdgeFallsBackToOtherSide)
{
    PipeliningPolicy pol(PipelineStrategy::InitialDouble);
    // First half of subpage 0: no preceding neighbour, takes +1.
    FetchPlan p = pol.plan(GEO_1K, 0, 10, all_mask(GEO_1K));
    EXPECT_EQ(p.segments[0].subpage_mask, (1ULL << 0) | (1ULL << 1));
    // Second half of last subpage: no following, takes -1.
    FetchPlan q = pol.plan(GEO_1K, 7, 1000, all_mask(GEO_1K));
    EXPECT_EQ(q.segments[0].subpage_mask, (1ULL << 6) | (1ULL << 7));
}

class AllPoliciesCoverMissing
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(AllPoliciesCoverMissing, PlanNeverExceedsMissing)
{
    // Property: for every faulted subpage and missing mask, the plan
    // (a) includes the faulted subpage in its demand segment,
    // (b) never ships a subpage that is not missing (except the
    //     faulted one itself), and
    // (c) bytes always match the mask popcount.
    auto pol = make_fetch_policy(GetParam());
    bool lazy = std::string(GetParam()) == "lazy";
    for (SubpageIndex f = 0; f < 8; ++f) {
        for (uint64_t missing = 1; missing < 256; ++missing) {
            if (!(missing & (1ULL << f)))
                continue;
            FetchPlan p = pol->plan(GEO_1K, f, 512, missing);
            ASSERT_FALSE(p.segments.empty());
            EXPECT_TRUE(p.segments[0].demand);
            EXPECT_TRUE(p.segments[0].subpage_mask & (1ULL << f));
            for (size_t i = 1; i < p.segments.size(); ++i)
                EXPECT_FALSE(p.segments[i].demand);
            uint64_t cov = covered(p);
            EXPECT_EQ(cov & ~missing & ~(1ULL << f), 0u)
                << "policy " << GetParam() << " f=" << f
                << " missing=" << missing;
            if (!lazy) {
                EXPECT_EQ(cov | (1ULL << f), missing | (1ULL << f));
            }
            for (const auto &seg : p.segments) {
                EXPECT_EQ(seg.bytes,
                          __builtin_popcountll(seg.subpage_mask) *
                              1024u);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Policies, AllPoliciesCoverMissing,
                         ::testing::Values("fullpage", "lazy", "eager",
                                           "pipelining",
                                           "pipelining-all",
                                           "pipelining-doubled",
                                           "pipelining-initial2x"));

TEST(PolicyFactory, NamesAndStrategies)
{
    EXPECT_STREQ(make_fetch_policy("disk")->name(), "disk");
    EXPECT_STREQ(make_fetch_policy("eager")->name(), "eager");
    auto p = make_fetch_policy("pipelining-doubled");
    auto *pp = dynamic_cast<PipeliningPolicy *>(p.get());
    ASSERT_NE(pp, nullptr);
    EXPECT_EQ(pp->strategy(), PipelineStrategy::DoubledFollowOn);
    EXPECT_STREQ(pipeline_strategy_name(pp->strategy()),
                 "doubled-followon");
}

TEST(PolicyGeometry2K, EagerWith2KSubpages)
{
    EagerFullpagePolicy pol;
    FetchPlan p = pol.plan(GEO_2K, 1, 0, all_mask(GEO_2K));
    ASSERT_EQ(p.segments.size(), 2u);
    EXPECT_EQ(p.segments[0].bytes, 2048u);
    EXPECT_EQ(p.segments[1].bytes, 6144u);
}

} // namespace
} // namespace sgms
