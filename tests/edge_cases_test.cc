/**
 * @file
 * Edge-case and failure-injection tests across modules: malformed
 * inputs must fail loudly (fatal/death), degenerate configurations
 * must behave sensibly, and late/stale events must be dropped.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/options.h"
#include "common/units.h"
#include "core/simulator.h"
#include "mem/page.h"
#include "mem/tlb.h"
#include "trace/synthetic.h"
#include "trace/trace_file.h"

namespace sgms
{
namespace
{

TEST(DeathTests, BadPageGeometry)
{
    EXPECT_DEATH({ PageGeometry geo(8192, 3000); }, "power");
    EXPECT_DEATH({ PageGeometry geo(8192, 16384); }, "larger");
    EXPECT_DEATH({ PageGeometry geo(1 << 20, 4096); }, "64 subpages");
}

TEST(DeathTests, BadTlbGeometry)
{
    EXPECT_DEATH({ Tlb tlb(33, 4, 8192); }, "power");
    EXPECT_DEATH({ Tlb tlb(16, 32, 8192); }, "associativity");
}

TEST(DeathTests, BadParseBytes)
{
    EXPECT_DEATH({ parse_bytes("abc"); }, "bad size");
    EXPECT_DEATH({ parse_bytes("12Q"); }, "suffix");
    EXPECT_DEATH({ parse_bytes(""); }, "empty");
}

TEST(DeathTests, UnknownPolicyAndReplacement)
{
    EXPECT_DEATH({ make_fetch_policy("nonsense"); }, "unknown");
    EXPECT_DEATH({ make_replacement_policy("nonsense"); }, "unknown");
}

TEST(DeathTests, MalformedOption)
{
    const char *argv[] = {"prog", "--=x"};
    EXPECT_DEATH({ Options o(2, const_cast<char **>(argv)); },
                 "malformed");
}

TEST(DeathTests, MissingTraceFile)
{
    EXPECT_DEATH({ FileTrace t("/nonexistent/path/trace.bin"); },
                 "cannot open");
}

TEST(DeathTests, CorruptTextTrace)
{
    std::string path = "/tmp/sgms_corrupt_trace.txt";
    {
        std::ofstream f(path);
        f << "R 100\nX zzz\n";
    }
    EXPECT_DEATH(
        {
            FileTrace t(path);
            TraceEvent ev;
            while (t.next(ev)) {
            }
        },
        "bad");
    std::remove(path.c_str());
}

TEST(DeathTests, TruncatedBinaryTrace)
{
    std::string path = "/tmp/sgms_truncated_trace.bin";
    {
        VectorTrace t;
        t.push(1);
        t.push(2);
        write_trace_binary(t, path);
    }
    // Chop the last record in half.
    {
        std::FILE *f = std::fopen(path.c_str(), "r+");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        long size = std::ftell(f);
        ASSERT_EQ(0, ftruncate(fileno(f), size - 4));
        std::fclose(f);
    }
    EXPECT_DEATH(
        {
            FileTrace t(path);
            TraceEvent ev;
            while (t.next(ev)) {
            }
        },
        "truncated");
    std::remove(path.c_str());
}

TEST(EdgeCases, SingleReferenceTrace)
{
    VectorTrace t;
    t.push(12345);
    SimConfig cfg;
    cfg.policy = "eager";
    cfg.subpage_size = 256;
    Simulator sim(cfg);
    SimResult r = sim.run(t);
    EXPECT_EQ(r.refs, 1u);
    EXPECT_EQ(r.page_faults, 1u);
    EXPECT_GT(r.runtime, 0);
}

TEST(EdgeCases, EmptyTrace)
{
    VectorTrace t;
    SimConfig cfg;
    Simulator sim(cfg);
    SimResult r = sim.run(t);
    EXPECT_EQ(r.refs, 0u);
    EXPECT_EQ(r.page_faults, 0u);
    EXPECT_EQ(r.runtime, 0);
}

TEST(EdgeCases, SimulatorReusableAcrossRuns)
{
    Simulator sim(SimConfig{});
    for (int i = 0; i < 3; ++i) {
        VectorTrace t;
        for (Addr p = 0; p < 4; ++p)
            t.push(p * 8192);
        SimResult r = sim.run(t);
        EXPECT_EQ(r.page_faults, 4u) << "run " << i;
    }
}

TEST(EdgeCases, SmallestSubpageLargestPage)
{
    // 16K pages with 256B subpages = 64 subpages (the bitmap limit).
    SimConfig cfg;
    cfg.page_size = 16384;
    cfg.subpage_size = 256;
    cfg.policy = "pipelining-all";
    VectorTrace t;
    for (int i = 0; i < 64; ++i)
        t.push(i * 256);
    Simulator sim(cfg);
    SimResult r = sim.run(t);
    EXPECT_EQ(r.page_faults, 1u);
    EXPECT_EQ(r.refs, 64u);
}

TEST(EdgeCases, HugeSparseAddressesUseOverflowPath)
{
    // Addresses far beyond the dense page-table limit exercise the
    // overflow hash map.
    VectorTrace t;
    t.push(0);
    t.push(1ULL << 45);
    t.push((1ULL << 45) + 8192);
    t.push(1ULL << 60);          // evicts page 0 (capacity 3)
    t.push(0);                   // refault, evicting another page
    SimConfig cfg;
    cfg.policy = "eager";
    cfg.subpage_size = 1024;
    cfg.mem_pages = 3;
    Simulator sim(cfg);
    SimResult r = sim.run(t);
    EXPECT_EQ(r.page_faults, 5u);
    EXPECT_EQ(r.evictions, 2u);
}

TEST(EdgeCases, TlbChargesCoexistWithInflightTransfers)
{
    // Regression: a TLB refill advances the clock mid-iteration; if
    // pending transfer events are not drained before the subsequent
    // fault injects new messages, the stage resources see
    // submissions "in the past" (this used to trip the preemption
    // bookkeeping).
    SimConfig cfg;
    cfg.policy = "eager";
    cfg.subpage_size = 1024;
    cfg.tlb_enabled = true;
    cfg.tlb_entries = 4;
    cfg.tlb_assoc = 4;
    cfg.mem_pages = 8;
    VectorTrace t;
    for (int round = 0; round < 3; ++round)
        for (Addr p = 0; p < 32; ++p)
            t.push(p * 8192 + round * 1024);
    Simulator sim(cfg);
    SimResult r = sim.run(t); // must not panic
    EXPECT_GT(r.tlb_overhead, 0);
    EXPECT_GT(r.page_faults, 32u);
}

TEST(EdgeCases, ZeroRefPhaseBetweenScans)
{
    WorkloadSpec w;
    w.name = "t";
    w.hot_pages = 0;
    PhaseSpec a;
    a.kind = PhaseSpec::Kind::DenseScan;
    a.page_lo = 0;
    a.page_hi = 1;
    a.refs = 4;
    a.hot_frac = 0;
    PhaseSpec empty = a;
    empty.refs = 0;
    w.phases = {a, empty, a};
    SyntheticTrace t(w, 1);
    TraceEvent ev;
    int n = 0;
    while (t.next(ev))
        ++n;
    EXPECT_EQ(n, 8);
}

} // namespace
} // namespace sgms
