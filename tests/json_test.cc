/**
 * @file
 * Tests for the minimal JSON parser (common/json.h) the result
 * cache decodes its blobs with.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/json.h"

namespace sgms
{
namespace
{

JsonValue
must_parse(const std::string &text)
{
    JsonValue v;
    EXPECT_TRUE(JsonValue::parse(text, v)) << text;
    return v;
}

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(must_parse("null").is_null());
    EXPECT_TRUE(must_parse("true").as_bool());
    EXPECT_FALSE(must_parse("false").as_bool(true));
    EXPECT_EQ(must_parse("42").as_u64(), 42u);
    EXPECT_EQ(must_parse("-7").as_i64(), -7);
    EXPECT_DOUBLE_EQ(must_parse("2.5e3").as_double(), 2500.0);
    EXPECT_EQ(must_parse("\"hi\"").as_string(), "hi");
}

TEST(Json, BigIntegersAreExact)
{
    // 2^53 + 1 is not representable as a double; the raw-token path
    // must keep it exact for tick counts.
    EXPECT_EQ(must_parse("9007199254740993").as_u64(),
              9007199254740993ull);
    EXPECT_EQ(must_parse("-9007199254740993").as_i64(),
              -9007199254740993ll);
    EXPECT_EQ(must_parse("9223372036854775807").as_i64(),
              INT64_MAX);
}

TEST(Json, WrongKindAccessFallsBack)
{
    JsonValue v = must_parse("\"text\"");
    EXPECT_EQ(v.as_u64(5), 5u);
    EXPECT_EQ(v.as_i64(-5), -5);
    EXPECT_DOUBLE_EQ(v.as_double(1.5), 1.5);
    EXPECT_FALSE(v.as_bool(false));
    EXPECT_EQ(must_parse("3").as_string(), "");
    // Negative numbers refuse the unsigned accessor.
    EXPECT_EQ(must_parse("-3").as_u64(99), 99u);
}

TEST(Json, ParsesNestedStructures)
{
    JsonValue v = must_parse(
        "{\"a\":[1,2,{\"b\":true}],\"c\":{\"d\":null},\"e\":-1}");
    ASSERT_TRUE(v.is_object());
    EXPECT_TRUE(v.has("a"));
    ASSERT_TRUE(v["a"].is_array());
    ASSERT_EQ(v["a"].size(), 3u);
    EXPECT_EQ(v["a"].items()[1].as_u64(), 2u);
    EXPECT_TRUE(v["a"].items()[2]["b"].as_bool());
    EXPECT_TRUE(v["c"]["d"].is_null());
    EXPECT_EQ(v.get_i64("e"), -1);
    // Missing members are null-kind sentinels, safely chainable.
    EXPECT_TRUE(v["missing"]["deeper"].is_null());
    EXPECT_EQ(v.get_u64("missing", 17), 17u);
}

TEST(Json, ParsesStringEscapes)
{
    JsonValue v = must_parse(
        "\"q\\\" b\\\\ s\\/ n\\n t\\t u\\u0041 c\\u0001\"");
    EXPECT_EQ(v.as_string(),
              std::string("q\" b\\ s/ n\n t\t u") + "A c\x01");
}

TEST(Json, ParsesUnicodeEscapes)
{
    EXPECT_EQ(must_parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
    EXPECT_EQ(must_parse("\"\\u20ac\"").as_string(),
              "\xe2\x82\xac");
}

TEST(Json, ToleratesWhitespace)
{
    JsonValue v = must_parse("  {\n\t\"a\" : [ 1 , 2 ]\r\n}  ");
    EXPECT_EQ(v["a"].size(), 2u);
}

TEST(Json, EmptyContainers)
{
    EXPECT_TRUE(must_parse("{}").is_object());
    EXPECT_EQ(must_parse("{}").members().size(), 0u);
    EXPECT_TRUE(must_parse("[]").is_array());
    EXPECT_EQ(must_parse("[]").size(), 0u);
}

TEST(Json, RejectsMalformedDocuments)
{
    for (const char *bad : {
             "",                    // empty
             "{",                   // unterminated object
             "[1,2",                // unterminated array
             "\"abc",               // unterminated string
             "{\"a\":}",            // missing value
             "{\"a\" 1}",           // missing colon
             "{a:1}",               // unquoted key
             "[1,]",                // trailing comma
             "truth",               // bad literal
             "nul",                 // bad literal
             "01x",                 // trailing garbage
             "1 2",                 // two documents
             "{} []",               // trailing document
             "\"\\q\"",             // unknown escape
             "\"\\u12g4\"",         // bad hex
             "\"\n\"",              // raw control char
             "+1",                  // leading plus
             "1.",                  // dangling fraction
             "1e",                  // dangling exponent
             "-",                   // bare minus
         }) {
        JsonValue v;
        EXPECT_FALSE(JsonValue::parse(bad, v)) << bad;
        EXPECT_TRUE(v.is_null()) << bad;
    }
}

TEST(Json, RejectsOverDeepNesting)
{
    std::string deep(200, '[');
    deep += std::string(200, ']');
    JsonValue v;
    EXPECT_FALSE(JsonValue::parse(deep, v));
    // ... but reasonable nesting is fine.
    std::string ok(40, '[');
    ok += std::string(40, ']');
    EXPECT_TRUE(JsonValue::parse(ok, v));
}

} // namespace
} // namespace sgms
