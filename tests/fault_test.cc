/**
 * @file
 * Fault-injection and reliability-layer tests: plan parsing, injector
 * determinism, timeout/retry/backoff arithmetic, and whole-run
 * properties — every policy survives lossy networks and server
 * outages, the same seed reproduces the same run, duplicates are
 * suppressed, and the reliable fetch path is timing-transparent when
 * no fault actually fires.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/sim_config.h"
#include "core/sim_result.h"
#include "core/simulator.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "obs/tracer.h"
#include "trace/synthetic.h"

namespace sgms
{
namespace
{

using fault::FaultInjector;
using fault::FaultPlan;
using fault::MsgFate;
using fault::RetryPolicy;
using fault::ServerOutage;

// ---------------------------------------------------------------
// Plan parsing

TEST(FaultPlan, DefaultIsDisabled)
{
    FaultPlan p;
    EXPECT_FALSE(p.enabled());
    EXPECT_FALSE(FaultPlan::parse("").enabled());
    EXPECT_FALSE(FaultPlan::parse("seed=42").enabled());
}

TEST(FaultPlan, ParseFullSpec)
{
    FaultPlan p = FaultPlan::parse(
        "seed=9,loss=0.05,loss-demand=0.2,corrupt=0.01,"
        "corrupt-putpage=0.3,duplicate=0.02,down=1:10:50,down=2:5");
    EXPECT_TRUE(p.enabled());
    EXPECT_EQ(p.seed, 9u);
    EXPECT_DOUBLE_EQ(
        p.loss_prob[static_cast<size_t>(MsgKind::Request)], 0.05);
    EXPECT_DOUBLE_EQ(
        p.loss_prob[static_cast<size_t>(MsgKind::DemandData)], 0.2);
    EXPECT_DOUBLE_EQ(
        p.corrupt_prob[static_cast<size_t>(MsgKind::Request)], 0.01);
    EXPECT_DOUBLE_EQ(
        p.corrupt_prob[static_cast<size_t>(MsgKind::PutPage)], 0.3);
    EXPECT_DOUBLE_EQ(p.duplicate_prob, 0.02);
    ASSERT_EQ(p.outages.size(), 2u);
    EXPECT_EQ(p.outages[0].server, 1u);
    EXPECT_EQ(p.outages[0].fail_at, ticks::from_ms(10));
    EXPECT_EQ(p.outages[0].recover_at, ticks::from_ms(50));
    EXPECT_EQ(p.outages[1].server, 2u);
    EXPECT_EQ(p.outages[1].recover_at, TICK_MAX);
}

TEST(FaultPlanDeathTest, RejectsUnknownKeysAndBadValues)
{
    EXPECT_EXIT(FaultPlan::parse("bogus=1"),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(FaultPlan::parse("loss=notanumber"),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(FaultPlan::parse("loss=1.5"),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(FaultPlan::parse("loss-nosuchkind=0.1"),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(FaultPlan::parse("down=1:50:10"), // recover < fail
                ::testing::ExitedWithCode(1), "");
}

TEST(FaultPlan, OutageCovers)
{
    ServerOutage o{2, ticks::from_ms(10), ticks::from_ms(20)};
    EXPECT_FALSE(o.covers(ticks::from_ms(9)));
    EXPECT_TRUE(o.covers(ticks::from_ms(10)));
    EXPECT_TRUE(o.covers(ticks::from_ms(19)));
    EXPECT_FALSE(o.covers(ticks::from_ms(20)));
    ServerOutage forever{1, ticks::from_ms(5)};
    EXPECT_TRUE(forever.covers(TICK_MAX - 1));
}

// ---------------------------------------------------------------
// Retry policy arithmetic

TEST(RetryPolicyTest, TimeoutScalesWithCalibratedLatencyAndFloors)
{
    RetryPolicy rp;
    NetParams net = NetParams::an2();
    // Large plans: multiplier x the analytic fetch latency.
    EXPECT_EQ(rp.timeout_for(net, 8192),
              static_cast<Tick>(rp.timeout_multiplier *
                                net.demand_fetch_latency(8192)));
    // The floor binds for tiny transfers with a tiny multiplier.
    RetryPolicy tight;
    tight.timeout_multiplier = 0.001;
    EXPECT_EQ(tight.timeout_for(net, 256), tight.min_timeout);
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyWithBoundedJitter)
{
    RetryPolicy rp;
    Tick base = ticks::from_ms(1);
    // Jitter draw 0.5 means scale exactly 1.0.
    Tick d2 = rp.backoff_delay(2, base, 0.5);
    Tick d3 = rp.backoff_delay(3, base, 0.5);
    Tick d4 = rp.backoff_delay(4, base, 0.5);
    EXPECT_EQ(d2, base);
    EXPECT_EQ(d3, 2 * base);
    EXPECT_EQ(d4, 4 * base);
    // Jitter stays within [1 - f, 1 + f].
    Tick lo = rp.backoff_delay(2, base, 0.0);
    Tick hi = rp.backoff_delay(2, base, 1.0 - 1e-12);
    EXPECT_GE(lo, static_cast<Tick>((1.0 - rp.jitter_frac) * base));
    EXPECT_LE(hi, static_cast<Tick>((1.0 + rp.jitter_frac) * base) + 1);
}

// ---------------------------------------------------------------
// Injector determinism

TEST(FaultInjectorTest, SameSeedSameFates)
{
    FaultPlan p;
    p.seed = 77;
    p.set_loss(0.3);
    p.set_corrupt(0.1);
    p.duplicate_prob = 0.1;
    FaultInjector a(p), b(p);
    int non_deliver = 0;
    for (int i = 0; i < 2000; ++i) {
        MsgKind k = static_cast<MsgKind>(i % kMsgKindCount);
        MsgFate fa = a.fate(i, k, 0, 1);
        MsgFate fb = b.fate(i, k, 0, 1);
        ASSERT_EQ(fa, fb) << "diverged at draw " << i;
        if (fa != MsgFate::Deliver)
            ++non_deliver;
    }
    // With these probabilities a large minority must be faulted.
    EXPECT_GT(non_deliver, 200);
    EXPECT_EQ(a.dropped(), b.dropped());
    EXPECT_EQ(a.corrupted(), b.corrupted());
    EXPECT_EQ(a.duplicated(), b.duplicated());
}

TEST(FaultInjectorTest, OutageDropsEverythingTouchingTheServer)
{
    FaultPlan p;
    p.outages.push_back({2, ticks::from_ms(10), ticks::from_ms(20)});
    FaultInjector inj(p);
    Tick in = ticks::from_ms(15), out = ticks::from_ms(25);
    EXPECT_EQ(inj.fate(in, MsgKind::Request, 0, 2), MsgFate::Drop);
    EXPECT_EQ(inj.fate(in, MsgKind::DemandData, 2, 0), MsgFate::Drop);
    EXPECT_EQ(inj.fate(in, MsgKind::Request, 0, 1),
              MsgFate::Deliver);
    EXPECT_EQ(inj.fate(out, MsgKind::Request, 0, 2),
              MsgFate::Deliver);
    EXPECT_TRUE(inj.server_down(2, in));
    EXPECT_FALSE(inj.server_down(2, out));
    EXPECT_EQ(inj.recovery_time(2, in), ticks::from_ms(20));
}

// ---------------------------------------------------------------
// Whole-run properties

/** Small but fault-heavy synthetic workload (obs-test's smoke). */
WorkloadSpec
fault_workload()
{
    WorkloadSpec spec;
    spec.name = "fault-smoke";
    spec.hot_pages = 8;

    PhaseSpec sweep;
    sweep.kind = PhaseSpec::Kind::SweepScan;
    sweep.page_lo = 8;
    sweep.page_hi = 72;
    sweep.refs = 64 * 10000;
    sweep.hot_frac = 1.0 - 1.0 / 10000;
    spec.phases.push_back(sweep);

    PhaseSpec dense;
    dense.kind = PhaseSpec::Kind::DenseScan;
    dense.page_lo = 72;
    dense.page_hi = 88;
    dense.stride = 64;
    dense.hot_frac = 0.9;
    dense.refs = 16 * 128 * 10;
    spec.phases.push_back(dense);
    return spec;
}

SimResult
run_with_faults(const std::string &policy, const FaultPlan &plan,
                obs::Tracer *tracer = nullptr)
{
    SimConfig cfg;
    cfg.policy = policy;
    cfg.subpage_size = 1024;
    cfg.mem_pages = 44;
    cfg.faults = plan;
    cfg.tracer = tracer;
    SyntheticTrace trace(fault_workload(), /*seed=*/42);
    Simulator sim(cfg);
    return sim.run(trace);
}

double
metric_value(const SimResult &r, const std::string &name)
{
    for (const auto &m : r.metrics)
        if (m.name == name)
            return m.value;
    return -1.0;
}

FaultPlan
stress_plan()
{
    FaultPlan plan;
    plan.seed = 5;
    plan.set_loss(0.08);
    plan.duplicate_prob = 0.02;
    plan.outages.push_back({1, ticks::from_ms(5), ticks::from_ms(60)});
    return plan;
}

TEST(FaultSim, EveryPolicyCompletesUnderLossAndOutages)
{
    const char *policies[] = {"fullpage",       "lazy",
                              "eager",          "pipelining",
                              "pipelining-all", "pipelining-adaptive"};
    for (const char *policy : policies) {
        SCOPED_TRACE(policy);
        SimResult r = run_with_faults(policy, stress_plan());
        // The run consumed the whole trace and made progress.
        EXPECT_EQ(r.refs, 64u * 10000 + 16 * 128 * 10);
        EXPECT_GT(r.page_faults, 0u);
        EXPECT_GT(r.runtime, 0u);
        // Faults actually happened and the protocol reacted.
        EXPECT_GT(r.net_stats.dropped, 0u);
        EXPECT_GT(r.retries, 0u);
        EXPECT_GT(r.timeouts, 0u);
        // ... and all of it is visible in the metrics snapshot.
        EXPECT_GT(metric_value(r, "fault.msgs_dropped"), 0.0);
        EXPECT_GT(metric_value(r, "gms.retries"), 0.0);
        EXPECT_GT(metric_value(r, "gms.timeouts"), 0.0);
    }
}

TEST(FaultSim, SameSeedReproducesTheRunExactly)
{
    SimResult a = run_with_faults("pipelining", stress_plan());
    SimResult b = run_with_faults("pipelining", stress_plan());
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.page_faults, b.page_faults);
    EXPECT_EQ(a.net_stats.messages, b.net_stats.messages);
    EXPECT_EQ(a.net_stats.bytes, b.net_stats.bytes);
    EXPECT_EQ(a.net_stats.dropped, b.net_stats.dropped);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.degraded_fetches, b.degraded_fetches);
    EXPECT_EQ(a.duplicate_deliveries, b.duplicate_deliveries);
    EXPECT_EQ(a.server_failures, b.server_failures);
}

TEST(FaultSim, DifferentSeedDiffers)
{
    FaultPlan p1 = stress_plan();
    FaultPlan p2 = stress_plan();
    p2.seed = 6;
    SimResult a = run_with_faults("eager", p1);
    SimResult b = run_with_faults("eager", p2);
    // Same loss rate, different draws: the drop pattern moves.
    EXPECT_NE(a.runtime, b.runtime);
}

TEST(FaultSim, ReliablePathIsTimingTransparentWithoutFaults)
{
    // An enabled plan whose faults essentially never fire must give
    // the exact fault-free timing: the timeout/retry machinery may
    // not perturb a healthy run.
    FaultPlan never;
    never.duplicate_prob = 1e-15;
    ASSERT_TRUE(never.enabled());
    SimResult faulted = run_with_faults("pipelining", never);
    SimResult clean = run_with_faults("pipelining", FaultPlan{});
    EXPECT_EQ(faulted.runtime, clean.runtime);
    EXPECT_EQ(faulted.page_faults, clean.page_faults);
    EXPECT_EQ(faulted.net_stats.messages, clean.net_stats.messages);
    EXPECT_EQ(faulted.retries, 0u);
    EXPECT_EQ(faulted.timeouts, 0u);
}

TEST(FaultSim, DisabledPlanRegistersNoFaultMetrics)
{
    SimResult r = run_with_faults("eager", FaultPlan{});
    for (const auto &m : r.metrics) {
        EXPECT_NE(m.name.rfind("fault.", 0), 0u) << m.name;
        EXPECT_NE(m.name, "gms.retries");
        EXPECT_NE(m.name, "gms.timeouts");
        EXPECT_NE(m.name, "gms.degraded_fetches");
    }
}

TEST(FaultSim, DuplicatesAreDeliveredOnceAndCounted)
{
    FaultPlan plan;
    plan.seed = 11;
    plan.duplicate_prob = 0.5;
    SimResult r = run_with_faults("eager", plan);
    SimResult clean = run_with_faults("eager", FaultPlan{});
    EXPECT_GT(r.net_stats.duplicated, 0u);
    EXPECT_GT(r.duplicate_deliveries, 0u);
    // Duplicate payloads are suppressed: no double-counted faults,
    // and the run still services exactly the same reference stream.
    EXPECT_EQ(r.refs, clean.refs);
    EXPECT_EQ(r.page_faults, clean.page_faults);
}

TEST(FaultSim, OutagesDegradeToDiskAndRecover)
{
    FaultPlan plan;
    plan.seed = 3;
    // Both servers down over the middle of the run, one recovers.
    plan.outages.push_back({1, ticks::from_ms(2), ticks::from_ms(80)});
    plan.outages.push_back({2, ticks::from_ms(2)}); // never recovers
    SimResult r = run_with_faults("pipelining", plan);
    EXPECT_EQ(r.refs, 64u * 10000 + 16 * 128 * 10);
    EXPECT_GT(r.degraded_fetches, 0u);
    EXPECT_GT(r.server_failures, 0u);
    EXPECT_GT(metric_value(r, "gms.degraded_fetches"), 0.0);
}

#if SGMS_OBS_TRACING

TEST(FaultSim, RetryAndDegradationSpansAppearInTrace)
{
    obs::Tracer tracer;
    FaultPlan plan = stress_plan();
    SimResult r = run_with_faults("pipelining", plan, &tracer);
    ASSERT_GT(r.retries, 0u);
    bool saw_timeout = false, saw_backoff = false;
    bool saw_fault_instant = false, saw_degraded = false;
    for (const auto &s : tracer.spans()) {
        std::string name = s.name;
        std::string track = s.track;
        if (name == "timeout")
            saw_timeout = true;
        if (name == "retry_backoff")
            saw_backoff = true;
        if (track == "faults" &&
            (name == "drop" || name == "duplicate"))
            saw_fault_instant = true;
        if (name == "degraded_disk" || name == "degraded_lookup" ||
            name == "server_failed")
            saw_degraded = true;
    }
    EXPECT_TRUE(saw_timeout);
    EXPECT_TRUE(saw_backoff);
    EXPECT_TRUE(saw_fault_instant);
    EXPECT_TRUE(saw_degraded);
}

#endif // SGMS_OBS_TRACING

} // namespace
} // namespace sgms
